GO ?= go

.PHONY: build test race vet staticcheck promtest check bench benchcheck chaoscheck crashcheck fuzz scalecheck obscheck paritycheck growcheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs only where the binary is installed (CI installs it;
# local builds without it still pass `make check`).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# promtest pins the /metrics exporter to the Prometheus text
# exposition-format grammar.
promtest:
	$(GO) test ./internal/obs/ -run 'TestWriteProm|TestPromName'

race:
	$(GO) test -race ./...

# Full verification: static analysis, the exporter grammar tests, and
# the whole suite (including the transport/cdd fault-injection tests)
# under the race detector.
check: vet staticcheck promtest race

# chaoscheck runs the self-healing chaos suite (CI job `repair`): the
# repair-supervisor and delta-resync tests — including the faultnet
# kill/partition/readmit scenarios in internal/cdd — under the race
# detector, plus the coherence chaos suite (partitioned writers and
# caching readers on overlapping lock groups: zero stale reads,
# lease auto-release of dead holders) run twice.
chaoscheck:
	$(GO) test -run 'TestRepair|TestResync' -race ./...
	$(GO) test -run 'TestCoherence' -race -count=2 ./internal/cdd/

# crashcheck runs the crash-consistency suite (CI job `crash`): the
# fault-injection VFS tests, superblock/reopen edge cases, intent and
# checkpoint persistence, the in-process power-cut recovery harness
# (torn writes, lying fsync), and the real SIGKILL/restart drill over
# raidxnode processes — all under the race detector, twice.
crashcheck:
	$(GO) test -run 'TestCrash|TestFaultFS|TestSuperblock|TestInspect|TestFileReopen|TestFileWasClean|TestFileBlank|TestFileConcurrent|TestLogSave|TestLogLoad|TestRepairLocal|TestRepairCheckpoint|TestRepairStateDir' -race -count=2 ./...

# fuzz gives each parser fuzzer a short budget: snapshot merging and
# superblock decoding must never panic on arbitrary bytes, and
# Reed-Solomon encode/reconstruct must round-trip every geometry and
# erasure pattern the fuzzer can reach.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzLogMerge -fuzztime 20s ./internal/intent/
	$(GO) test -run '^$$' -fuzz FuzzSuperblockDecode -fuzztime 20s ./internal/store/
	$(GO) test -run '^$$' -fuzz FuzzRSRoundTrip -fuzztime 20s ./internal/parity/

bench:
	$(GO) test -bench=. -benchmem ./...

# benchcheck runs the allocation-pinned regression tests: AllocsPerRun
# limits on the hot paths (transport round trips, remote device I/O, the
# engine's stripe fan-out, and coherent cache-hit reads — which must
# stay at 0 remote calls and <= 2 allocs). A hot-path allocation
# regression fails here before it shows up in the benchmarks. Must run
# without -race — the race runtime allocates on its own account.
benchcheck:
	$(GO) test -run 'TestAllocs|TestFloor' -count=1 -v ./internal/transport/ ./internal/cdd/ ./internal/core/ ./internal/raid/ ./internal/parity/

# paritycheck runs the parity-kernel shard (CI job `parity`): the full
# kernel/RS suite under the race detector, the portable purego build of
# the same tests (exercising the safe word path the asm replaces), and
# the throughput floor + allocation pins without -race.
paritycheck:
	$(GO) test -race -count=1 ./internal/parity/
	$(GO) test -tags purego -count=1 ./internal/parity/
	$(GO) test -run 'TestAllocs|TestFloor' -count=1 -v ./internal/parity/ ./internal/raid/

# obscheck runs the observability-plane shard (CI job `obs`): the
# whole obs package (labeled instruments, time-series sampler, cluster
# merge, SLO burn tracker, exporter grammar) under the race detector,
# the QoS live-gauge tests, and the end-to-end SLO feedback chaos
# drill — a background storm over real TCP whose burn feedback must
# step the Background QoS rate down until the foreground p99 recovers.
obscheck:
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -race -count=1 -run 'TestLiveRateGauges|TestTenantLabeledGauges' ./internal/qos/
	$(GO) test -race -count=1 -run 'TestSLOChaos' -v ./internal/cdd/

# growcheck runs the online-membership shard (CI job `grow`): the
# epoch/remap property tests (every geometry pair up to 64 nodes), the
# migration engine drills (live traffic, pause/resume, crash resume,
# shrink, source failover, the deterministic vclock schedule), the
# supervisor rebalance jobs and their mutual exclusion with recovery, the
# epoch fence over the wire, and the TCP grow chaos drills with
# partitions and node kills — all under the race detector, twice. The
# real-process SIGKILL resume drill runs once (it builds binaries).
growcheck:
	$(GO) test -run 'TestEpoch|TestOSM|TestMigration|TestSupervisedGrow|TestRebalance|TestGrowChaos|TestFileEpoch' -race -count=2 ./internal/layout/ ./internal/core/ ./internal/repair/ ./internal/cdd/ ./internal/store/
	$(GO) test -run 'TestGrowCrash' -race -count=1 ./cmd/raidxnode/

# scalecheck runs the serving-at-scale shard (CI job `scale`): the
# coherence protocol and session tests, the QoS scheduler, the workload
# runner, and a reduced `raidxbench scale` sweep over real TCP.
scalecheck:
	$(GO) test -run 'TestLockModes|TestLease|TestRevocation|TestBeatReset|TestSession|TestCoherence' -race ./internal/cdd/
	$(GO) test -race ./internal/qos/ ./internal/workload/
	$(GO) run ./cmd/raidxbench scale -clients 50,200 -totalops 20000
