GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full verification: static analysis plus the whole suite (including
# the transport/cdd fault-injection tests) under the race detector.
check: vet race

bench:
	$(GO) test -bench=. -benchmem ./...
