package raidx

// One benchmark per table and figure of the paper's evaluation section.
// Each iteration runs the full deterministic virtual-time experiment;
// the paper-facing quantities (aggregate MB/s, virtual elapsed seconds,
// improvement factors) are reported as custom metrics, while ns/op and
// B/op describe the simulation's own cost.
//
//	go test -bench=. -benchmem
//
// Scales are trimmed relative to `cmd/raidxbench` so the whole suite
// finishes quickly; EXPERIMENTS.md records full-scale runs.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/analytic"
	"repro/internal/andrew"
	"repro/internal/bench"
	"repro/internal/chkpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/reliab"
	"repro/internal/workload"
)

// benchParams is the 12-node Trojans calibration.
func benchParams() cluster.Params { return cluster.DefaultParams() }

// BenchmarkTable2Analytic evaluates the closed-form Table 2 model.
func BenchmarkTable2Analytic(b *testing.B) {
	in := analytic.DefaultInputs()
	var rows []analytic.Row
	for i := 0; i < b.N; i++ {
		rows = analytic.Table2(in)
	}
	b.ReportMetric(analytic.SmallWriteAdvantage(in), "raidx/raid5-small-write-x")
	b.ReportMetric(analytic.ChainedWriteImprovement(in), "raidx/chained-large-write-x")
	if len(rows) != 5 {
		b.Fatal("missing rows")
	}
}

// figure5 benchmarks one Figure 5 panel for every system.
func figure5(b *testing.B, pattern bench.Pattern) {
	cfg := bench.Config{LargeBytes: 2 << 20, SmallOps: 16}
	for _, sys := range bench.PaperSystems() {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				r, err := bench.Bandwidth(benchParams(), sys, pattern, 12, cfg)
				if err != nil {
					b.Fatal(err)
				}
				mbps = r.MBps
			}
			b.ReportMetric(mbps, "MB/s-aggregate")
		})
	}
}

// BenchmarkFigure5LargeRead reproduces Figure 5(a).
func BenchmarkFigure5LargeRead(b *testing.B) { figure5(b, bench.LargeRead) }

// BenchmarkFigure5SmallRead reproduces Figure 5(b).
func BenchmarkFigure5SmallRead(b *testing.B) { figure5(b, bench.SmallRead) }

// BenchmarkFigure5LargeWrite reproduces Figure 5(c).
func BenchmarkFigure5LargeWrite(b *testing.B) { figure5(b, bench.LargeWrite) }

// BenchmarkFigure5SmallWrite reproduces Figure 5(d).
func BenchmarkFigure5SmallWrite(b *testing.B) { figure5(b, bench.SmallWrite) }

// BenchmarkTable3Improvement reproduces Table 3's 1-vs-12-client
// improvement factors for RAID-x and NFS.
func BenchmarkTable3Improvement(b *testing.B) {
	cfg := bench.Config{LargeBytes: 2 << 20, SmallOps: 16}
	for _, sys := range []bench.System{bench.RAIDx, bench.NFS} {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			var rows []bench.Table3Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = bench.Table3(benchParams(), []bench.System{sys}, 12, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range rows {
				b.ReportMetric(r.Improvement, fmt.Sprintf("%s-improve-x", r.Pattern))
			}
		})
	}
}

// BenchmarkFigure6Andrew reproduces Figure 6 at 8 clients per system.
func BenchmarkFigure6Andrew(b *testing.B) {
	cfg := andrew.DefaultConfig()
	for _, sys := range bench.PaperSystems() {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			var r bench.AndrewResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = bench.RunAndrew(benchParams(), sys, 8, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Total.Seconds(), "vsec-total")
			b.ReportMetric(r.Phase["Copy"].Seconds(), "vsec-copy")
			b.ReportMetric(r.Phase["Make"].Seconds(), "vsec-make")
		})
	}
}

// BenchmarkFigure7Checkpoint reproduces the Figure 7 schemes.
func BenchmarkFigure7Checkpoint(b *testing.B) {
	cfg := chkpt.Config{Processes: 12, ImageBytes: 2 << 20, Slots: 3, LocalImages: true}
	for _, scheme := range chkpt.Schemes() {
		scheme := scheme
		b.Run(string(scheme), func(b *testing.B) {
			var r chkpt.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = bench.RunCheckpoint(benchParams(), scheme, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Makespan.Seconds()*1e3, "vms-makespan")
			b.ReportMetric(r.MaxWrite.Seconds()*1e3, "vms-maxC")
			b.ReportMetric(r.MaxSync.Seconds()*1e3, "vms-maxS")
		})
	}
}

// BenchmarkAblationMirrorMode: background vs foreground mirror writes
// (DESIGN.md ablation 1).
func BenchmarkAblationMirrorMode(b *testing.B) {
	cfg := bench.Config{LargeBytes: 2 << 20, SmallOps: 16}
	for _, mode := range []struct {
		name string
		opt  core.Options
	}{
		{"background", core.Options{}},
		{"foreground", core.Options{ForegroundMirror: true}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				r, err := bench.BandwidthOpt(benchParams(), bench.RAIDx, bench.LargeWrite, 12, cfg, mode.opt)
				if err != nil {
					b.Fatal(err)
				}
				mbps = r.MBps
			}
			b.ReportMetric(mbps, "MB/s-aggregate")
		})
	}
}

// BenchmarkAblationGatherVsScatter: clustered mirror groups vs
// per-block images, measured as time-to-full-redundancy (DESIGN.md
// ablation 2).
func BenchmarkAblationGatherVsScatter(b *testing.B) {
	cfg := bench.Config{LargeBytes: 2 << 20, SmallOps: 16, FlushTimed: true}
	for _, mode := range []struct {
		name string
		opt  core.Options
	}{
		{"gathered", core.Options{}},
		{"scattered", core.Options{ScatterMirror: true}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				r, err := bench.BandwidthOpt(benchParams(), bench.RAIDx, bench.LargeWrite, 12, cfg, mode.opt)
				if err != nil {
					b.Fatal(err)
				}
				mbps = r.MBps
			}
			b.ReportMetric(mbps, "MB/s-to-redundancy")
		})
	}
}

// BenchmarkAblationNbyK: parallelism n vs pipelining depth k at fixed
// n*k = 12 disks (DESIGN.md ablation 3, paper Section 3).
func BenchmarkAblationNbyK(b *testing.B) {
	cfg := bench.Config{LargeBytes: 2 << 20, SmallOps: 16}
	for _, geo := range []struct{ n, k int }{{12, 1}, {6, 2}, {4, 3}} {
		geo := geo
		b.Run(fmt.Sprintf("%dx%d", geo.n, geo.k), func(b *testing.B) {
			p := benchParams()
			p.Nodes, p.DisksPerNode = geo.n, geo.k
			var mbps float64
			for i := 0; i < b.N; i++ {
				r, err := bench.Bandwidth(p, bench.RAIDx, bench.LargeWrite, geo.n, cfg)
				if err != nil {
					b.Fatal(err)
				}
				mbps = r.MBps
			}
			b.ReportMetric(mbps, "MB/s-aggregate")
		})
	}
}

// BenchmarkAblationStaggerDepth: staggering depth vs striped
// parallelism in checkpointing (DESIGN.md ablation 4, paper Section 6).
func BenchmarkAblationStaggerDepth(b *testing.B) {
	for _, slots := range []int{1, 3, 12} {
		slots := slots
		b.Run(fmt.Sprintf("slots%d", slots), func(b *testing.B) {
			cfg := chkpt.Config{Processes: 12, ImageBytes: 2 << 20, Slots: slots, LocalImages: true}
			var r chkpt.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = bench.RunCheckpoint(benchParams(), chkpt.StripedStaggered, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Makespan.Seconds()*1e3, "vms-makespan")
			b.ReportMetric(r.MaxWrite.Seconds()*1e3, "vms-maxC")
		})
	}
}

// BenchmarkAblationLockGranularity: FS allocation groups as lock-group
// granularity (DESIGN.md ablation 5) — Andrew at 8 clients.
func BenchmarkAblationLockGranularity(b *testing.B) {
	cfg := andrew.DefaultConfig()
	for _, groups := range []int{1, 16} {
		groups := groups
		b.Run(fmt.Sprintf("groups%d", groups), func(b *testing.B) {
			var r bench.AndrewResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = bench.RunAndrewOpts(benchParams(), bench.RAIDx, 8, cfg, bench.AndrewOpts{FSGroups: groups})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Total.Seconds(), "vsec-total")
		})
	}
}

// BenchmarkAblationBalancedReads: hot-spot reads with and without the
// Section 7 load-balancing extension (DESIGN.md ablation 6).
func BenchmarkAblationBalancedReads(b *testing.B) {
	cfg := bench.Config{LargeBytes: 2 << 20, SmallOps: 32}
	for _, mode := range []struct {
		name string
		opt  core.Options
	}{
		{"primary-only", core.Options{}},
		{"balanced", core.Options{BalanceReads: true}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var r bench.MixedResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = bench.MixedReadWrite(benchParams(), mode.opt, 6, 6, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.ReadMBps, "MB/s-readers")
			// The engine's own registry reports how the balanced reads
			// split between the image and data copies.
			b.ReportMetric(float64(r.MirrorReads), "mirror-reads")
			b.ReportMetric(float64(r.DataReads), "data-reads")
		})
	}
}

// BenchmarkTransactions: the OLTP-style mixed workload (paper Section 7
// application class), reporting throughput and tail latency.
func BenchmarkTransactions(b *testing.B) {
	p := benchParams()
	cfg := workload.OLTP(p.DiskBlocks * int64(p.Nodes) / 4)
	cfg.Ops = 32
	for _, sys := range bench.PaperSystems() {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			var r bench.TxnResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = bench.Transactions(p, sys, 12, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.OpsPerSec, "ops/s")
			b.ReportMetric(r.Lat.Percentile(99).Seconds()*1e3, "vms-p99")
		})
	}
}

// BenchmarkReliability: Monte Carlo MTTDL per architecture on the 4x3
// grid.
func BenchmarkReliability(b *testing.B) {
	var rows []reliab.Row
	for i := 0; i < b.N; i++ {
		rows = reliab.Compare(4, 3, 256, 10000*time.Hour, 10*time.Hour, 100)
	}
	for _, r := range rows {
		b.ReportMetric(r.Simulated.Hours()/24, fmt.Sprintf("%s-mttdl-days", r.Arch))
	}
}
