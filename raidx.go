// Package raidx is the public API of the RAID-x reproduction: a
// distributed disk array for I/O-centric cluster computing built on
// orthogonal striping and mirroring (OSM), after Hwang, Jin & Ho,
// "RAID-x: A New Distributed Disk Array for I/O-Centric Cluster
// Computing" (HPDC 2000).
//
// The package re-exports the building blocks:
//
//   - Array engines: RAID-x (the paper's contribution) plus the RAID-0,
//     RAID-5, RAID-10, and chained-declustering baselines, all over the
//     same Dev block-device interface.
//   - Devices: in-memory disks with a calibrated timing model, remote
//     disks served by cooperative disk drivers over TCP, and simulated
//     cluster device views for deterministic experiments.
//   - A block file system (with CDD lock-group consistency) and the
//     Andrew benchmark that drives it.
//   - Striped/staggered coordinated checkpointing.
//   - The benchmark harness that regenerates every table and figure of
//     the paper's evaluation.
//
// Quick start (see examples/quickstart):
//
//	devs := raidx.NewMemDevs(4, 4096, 32<<10) // 4 disks x 4096 blocks x 32 KB
//	arr, err := raidx.NewRAIDx(devs, 4, 1, raidx.Options{})
//	arr.WriteBlocks(ctx, 0, data)
package raidx

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/andrew"
	"repro/internal/bench"
	"repro/internal/cdd"
	"repro/internal/chkpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/faultnet"
	"repro/internal/fsim"
	"repro/internal/intent"
	"repro/internal/layout"
	"repro/internal/nfssim"
	"repro/internal/obs"
	"repro/internal/parity"
	"repro/internal/qos"
	"repro/internal/raid"
	"repro/internal/reliab"
	"repro/internal/repair"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/vol"
	"repro/internal/workload"
)

// Core array types.
type (
	// Array is the logical block device every engine exposes.
	Array = raid.Array
	// Dev is the block device interface engines consume.
	Dev = raid.Dev
	// Rebuilder is implemented by arrays that can reconstruct a
	// replaced disk.
	Rebuilder = raid.Rebuilder
	// Verifier is implemented by arrays that can check redundancy.
	Verifier = raid.Verifier
	// Options tunes the RAID-x engine (ablations).
	Options = core.Options
	// RAIDx is the OSM array engine.
	RAIDx = core.RAIDx
	// OSM is the orthogonal striping and mirroring address map.
	OSM = layout.OSM
)

// ErrDataLoss reports unrecoverable data (too many failures).
var ErrDataLoss = raid.ErrDataLoss

// DiskModel is the disk timing model.
type DiskModel = disk.Model

// Disk is a simulated or in-memory disk.
type Disk = disk.Disk

// NewRAIDx builds the paper's array: an n-by-k OSM grid over devs
// (devs[j] is global disk j, on node j mod nodes).
func NewRAIDx(devs []Dev, nodes, disksPerNode int, opt Options) (*RAIDx, error) {
	return core.New(devs, nodes, disksPerNode, opt)
}

// NewRAID0 builds a striping-only baseline array.
func NewRAID0(devs []Dev) (Array, error) { return raid.NewRAID0(devs) }

// NewRAID5 builds a rotated-parity baseline array.
func NewRAID5(devs []Dev) (Array, error) { return raid.NewRAID5(devs) }

// NewRAID10 builds a striped-mirror baseline array.
func NewRAID10(devs []Dev) (Array, error) { return raid.NewRAID10(devs) }

// NewChained builds a chained-declustering baseline array.
func NewChained(devs []Dev) (Array, error) { return raid.NewChained(devs) }

// NewOSM exposes the OSM address arithmetic directly.
func NewOSM(nodes, disksPerNode int, diskBlocks int64) OSM {
	return layout.NewOSM(nodes, disksPerNode, diskBlocks)
}

// NewMemDisk creates one in-memory disk with no timing (pure data).
func NewMemDisk(id string, blockSize int, blocks int64) *Disk {
	return disk.New(nil, id, store.NewMem(blockSize, blocks), disk.DefaultModel())
}

// NewMemDevs creates n in-memory disks ready to back any engine.
func NewMemDevs(n int, blocks int64, blockSize int) []Dev {
	devs := make([]Dev, n)
	for i := range devs {
		devs[i] = NewMemDisk(fmt.Sprintf("d%d", i), blockSize, blocks)
	}
	return devs
}

// Cluster simulation.
type (
	// ClusterParams describes the simulated testbed.
	ClusterParams = cluster.Params
	// Cluster is the simulated testbed.
	Cluster = cluster.Cluster
)

// TrojansParams returns the calibration of the paper's 12-node USC
// Trojans cluster (one SCSI disk per node, switched Fast Ethernet).
func TrojansParams() ClusterParams { return cluster.DefaultParams() }

// NewSimCluster builds a simulated cluster on a fresh virtual clock.
func NewSimCluster(p ClusterParams) *Cluster { return cluster.New(p) }

// WithProc attaches a simulated process to a context so storage
// operations charge virtual time.
func WithProc(ctx context.Context, p *vclock.Proc) context.Context {
	return vclock.With(ctx, p)
}

// Cooperative disk drivers over TCP.
type (
	// Node is a CDD storage node (manager + transport server).
	Node = cdd.Node
	// NodeClient is a CDD client connection to a remote node.
	NodeClient = cdd.NodeClient
	// RemoteDev is a remote disk masquerading as a local device.
	RemoteDev = cdd.RemoteDev
	// LockRange is a lock-group table range.
	LockRange = cdd.Range
	// LockTable is the consistency module's lock-group table.
	LockTable = cdd.Table
	// LockMode selects shared or exclusive lock-group grants.
	LockMode = cdd.Mode
	// Session is a coherent client session: lock-group grants, a
	// grant-guarded read cache, and group-commit write-back.
	Session = cdd.Session
	// SessionConfig tunes a session's cache, write-back, and heartbeat.
	SessionConfig = cdd.SessionConfig
	// CachedDev is a session's coherently cached view of a remote disk.
	CachedDev = cdd.CachedDev
)

// Lock-group grant modes.
const (
	// LockShared grants concurrent read access to a lock group.
	LockShared = cdd.Shared
	// LockExclusive grants sole read/write access to a lock group.
	LockExclusive = cdd.Exclusive
)

// ErrStaleLease reports a write-back flush refused because the
// session's lease safety window closed: the dirty batch is held until
// a heartbeat renews the lease or confirms it lost.
var ErrStaleLease = cdd.ErrStaleLease

// NewSession opens a coherent session on a connected node. The owner
// string identifies the client in the server's lock-group table.
func NewSession(c *NodeClient, owner string, cfg SessionConfig) *Session {
	return cdd.NewSession(c, owner, cfg)
}

// BlockLockRange maps a block extent of one disk to its lock-group
// table range.
func BlockLockRange(disk uint32, block, count int64) LockRange {
	return cdd.BlockLockRange(disk, block, count)
}

// ListenAndServe starts a CDD node exporting disks on addr.
func ListenAndServe(addr string, disks []*Disk) (*Node, error) {
	return cdd.ListenAndServe(addr, disks)
}

// Connect dials a CDD node with default retry/deadline policy.
func Connect(addr string) (*NodeClient, error) { return cdd.Connect(addr) }

// Fault tolerance: retry policy, custom dialers, fault injection.
type (
	// RetryPolicy tunes per-call deadlines, the retry budget, backoff,
	// and the suspect-node heartbeat interval.
	RetryPolicy = cdd.RetryPolicy
	// ConnectOptions configure a CDD client connection.
	ConnectOptions = cdd.Options
	// DialFunc lets callers interpose on connection establishment
	// (e.g. a FaultNetwork dialer).
	DialFunc = transport.DialFunc
	// FaultNetwork injects latency, errors, stalls, and partitions
	// into client connections for fault-tolerance testing.
	FaultNetwork = faultnet.Network
)

// ConnectWith dials a CDD node with explicit options; ctx bounds the
// dial and the initial handshake.
func ConnectWith(ctx context.Context, addr string, opts ConnectOptions) (*NodeClient, error) {
	return cdd.ConnectWith(ctx, addr, opts)
}

// DefaultRetryPolicy returns the production retry/deadline defaults.
func DefaultRetryPolicy() RetryPolicy { return cdd.DefaultRetryPolicy() }

// NewFaultNetwork creates a reproducible network fault injector.
func NewFaultNetwork(seed int64) *FaultNetwork { return faultnet.New(seed) }

// NewLockTable creates an empty lock-group table.
func NewLockTable() *LockTable { return cdd.NewTable() }

// File system.
type (
	// FS is a mounted file system.
	FS = fsim.FS
	// File is an open file handle.
	File = fsim.File
	// FSOptions configure Mkfs.
	FSOptions = fsim.Options
	// Locker is the FS consistency service.
	Locker = fsim.Locker
)

// Mkfs formats an array and mounts it.
func Mkfs(ctx context.Context, arr Array, lk Locker, owner string, opts FSOptions) (*FS, error) {
	return fsim.Mkfs(ctx, arr, lk, owner, opts)
}

// Mount opens an existing volume.
func Mount(ctx context.Context, arr Array, lk Locker, owner string) (*FS, error) {
	return fsim.Mount(ctx, arr, lk, owner)
}

// NewTableLocker adapts a lock table to the FS Locker interface.
func NewTableLocker(t *LockTable) *fsim.TableLocker { return fsim.NewTableLocker(t) }

// Workloads and experiments.
type (
	// AndrewConfig sizes the Andrew benchmark.
	AndrewConfig = andrew.Config
	// CheckpointConfig shapes a coordinated checkpoint round.
	CheckpointConfig = chkpt.Config
	// CheckpointScheme selects a checkpointing discipline.
	CheckpointScheme = chkpt.Scheme
	// BenchSystem names an I/O subsystem under test.
	BenchSystem = bench.System
	// BenchPattern is a Figure 5 access pattern.
	BenchPattern = bench.Pattern
)

// NFSServer is the centralized-server baseline.
type NFSServer = nfssim.Server

// NewNFSServer creates the NFS-like central server on a cluster node.
func NewNFSServer(c *Cluster, node int) (*NFSServer, error) {
	return nfssim.NewServer(c, node)
}

// Request tracing (Options.Trace wires a Tracer into the engine; CDD
// nodes carry their own, reachable via NodeClient.TraceSpans).
type (
	// Tracer records sampled per-request spans into a fixed ring.
	Tracer = trace.Tracer
	// TraceConfig sizes a Tracer (ring, sampling, slow log).
	TraceConfig = trace.Config
	// TraceSpan is one timed section of a traced operation.
	TraceSpan = trace.Span
	// TraceRecord is one assembled trace (root plus spans).
	TraceRecord = trace.Trace
)

// NewTracer creates a Tracer; zero cfg fields take the defaults.
func NewTracer(cfg TraceConfig) *Tracer { return trace.New(cfg) }

// WriteTraceWaterfall renders one assembled trace as an indented tree.
func WriteTraceWaterfall(w io.Writer, tr TraceRecord) { trace.WriteWaterfall(w, tr) }

// Byte-granular access and integrity tooling.

// ByteDevice adapts any Array to byte-addressed I/O with
// read-modify-write at block edges.
type ByteDevice = raid.ByteDevice

// NewByteDevice wraps an array for byte-granular access.
func NewByteDevice(arr Array) *ByteDevice { return raid.NewByteDevice(arr) }

// FsckReport summarizes a file-system consistency check.
type FsckReport = fsim.FsckReport

// Workload generation and reliability analysis.
type (
	// WorkloadConfig shapes a synthetic transactional mix.
	WorkloadConfig = workload.Config
	// Latencies aggregates per-operation latency percentiles.
	Latencies = workload.Latencies
	// ReliabilityRow is one architecture's MTTDL summary.
	ReliabilityRow = reliab.Row
)

// OLTPWorkload returns an e-commerce-like mix over the working set.
func OLTPWorkload(workingSetBlocks int64) WorkloadConfig { return workload.OLTP(workingSetBlocks) }

// MiningWorkload returns a data-mining-like mix.
func MiningWorkload(workingSetBlocks int64) WorkloadConfig { return workload.Mining(workingSetBlocks) }

// QoS admission control: token-bucket scheduling with service classes
// and per-tenant fair shares (DESIGN.md section 13).
type (
	// QoSClass is a service class (Foreground or Background).
	QoSClass = qos.Class
	// QoSConfig sets per-class rates and the burst window.
	QoSConfig = qos.Config
	// QoSScheduler admits I/O against class and tenant token buckets.
	QoSScheduler = qos.Scheduler
)

// QoS service classes.
const (
	// Foreground is latency-sensitive client traffic.
	Foreground = qos.Foreground
	// Background is bulk maintenance traffic (repair, resync).
	Background = qos.Background
)

// NewQoS creates a QoS admission scheduler.
func NewQoS(cfg QoSConfig) *QoSScheduler { return qos.New(cfg) }

// Observability plane: time-series sampling, cluster aggregation, and
// SLO burn-rate feedback into QoS (DESIGN.md section 14).
type (
	// MetricsRegistry holds a process's counters, gauges, histograms,
	// and labeled instrument families.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time JSON-serializable registry dump.
	MetricsSnapshot = obs.Snapshot
	// Sampler snapshots a registry into fixed time-series rings.
	Sampler = obs.Sampler
	// SamplerConfig sets the sampling interval, ring capacity, and
	// rate windows.
	SamplerConfig = obs.SamplerConfig
	// SLOTracker evaluates multi-window burn rates against a latency
	// and error-budget objective and steps a QoS actuator.
	SLOTracker = obs.SLOTracker
	// SLOConfig names the instruments, objective, and actuator of an SLO.
	SLOConfig = obs.SLOConfig
	// SLOActuator is the feedback surface an SLO tracker drives; the
	// QoS scheduler's background class implements it.
	SLOActuator = obs.Actuator
)

// NewMetricsRegistry creates an empty instrument registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSampler attaches a background time-series sampler to a registry.
func NewSampler(r *MetricsRegistry, cfg SamplerConfig) *Sampler { return obs.NewSampler(r, cfg) }

// NewSLOTracker builds a burn-rate tracker; call Start to evaluate
// periodically.
func NewSLOTracker(cfg SLOConfig) *SLOTracker { return obs.NewSLOTracker(cfg) }

// MergeSnapshots aggregates per-node registry snapshots into one
// cluster view: counters and gauges sum, histograms merge bucket-wise.
func MergeSnapshots(snaps ...MetricsSnapshot) MetricsSnapshot { return obs.MergeSnapshots(snaps...) }

// CompareReliability builds the MTTDL table for an n-by-k cluster.
func CompareReliability(nodes, disksPerNode int, diskBlocks int64, mttf, mttr time.Duration, trials int) []ReliabilityRow {
	return reliab.Compare(nodes, disksPerNode, diskBlocks, mttf, mttr, trials)
}

// NewAFRAID builds the lazily-redundant RAID-5 variant (Savage &
// Wilkes), a design-space baseline the paper cites.
func NewAFRAID(devs []Dev) (*raid.AFRAID, error) { return raid.NewAFRAID(devs) }

// Parity kernels and the erasure-coded tier (DESIGN.md section 15).
type (
	// RSArray is the Reed-Solomon erasure-coded engine: k data + m
	// parity shards per stripe over k+m devices, tolerating any m
	// simultaneous failures.
	RSArray = raid.RSArray
	// RSCode is the raw GF(2^8) Reed-Solomon encoder the engine is
	// built on, usable standalone over caller-owned shard buffers.
	RSCode = parity.RS
	// VolumePool carves one shared set of devices into per-volume
	// windows, each volume running its own redundancy policy.
	VolumePool = vol.Pool
	// Volume is one policy-carrying array over a VolumePool.
	Volume = vol.Volume
	// VolumePolicy names a volume's redundancy scheme:
	// mirror | raid5 | rs(k,m).
	VolumePolicy = vol.Policy
)

// NewRS builds an erasure-coded array over len(devs) devices with m
// parity shards per stripe (k = len(devs)-m data shards).
func NewRS(devs []Dev, m int) (*RSArray, error) { return raid.NewRS(devs, m) }

// NewRSCode builds a systematic Reed-Solomon code with k data and m
// parity shards (k+m <= 255).
func NewRSCode(k, m int) (*RSCode, error) { return parity.NewRS(k, m) }

// NewVolumePool builds a per-volume-policy pool over shared devices;
// reg may be nil.
func NewVolumePool(devs []Dev, reg *MetricsRegistry) (*VolumePool, error) {
	return vol.NewPool(devs, reg)
}

// ParseVolumePolicy parses "mirror", "raid5", or "rs(k,m)".
func ParseVolumePolicy(s string) (VolumePolicy, error) { return vol.ParsePolicy(s) }

// XorParity xors src into dst (dst[i] ^= src[i]) with the compiled
// word/SIMD kernel — the primitive behind every parity scheme here.
func XorParity(dst, src []byte) { parity.XorInto(dst, src) }

// ParityKernelName identifies the compiled kernel path, e.g.
// "unsafe64+avx2".
func ParityKernelName() string { return parity.KernelName() }

// Sparer manages hot-spare disks with automatic failover + rebuild.
type Sparer = raid.Sparer

// NewSparer creates a hot-spare pool for a RAID-x array.
func NewSparer(arr *RAIDx, spares []Dev) *Sparer { return raid.NewSparer(arr, spares) }

// Self-healing: write-intent logging, delta resync, and the automatic
// repair supervisor (DESIGN.md section 11).
type (
	// IntentLog is the per-device, region-granular dirty bitmap the
	// engine marks when a mirror write misses a device (Options.Intent
	// wires one into the engine).
	IntentLog = intent.Log
	// IntentRegion is one contiguous dirty range of physical blocks.
	IntentRegion = intent.Region
	// RepairSupervisor drives array members through the repair state
	// machine: hot-spare failover, rate-limited resumable rebuilds,
	// and delta resyncs from the intent log.
	RepairSupervisor = repair.Supervisor
	// RepairConfig tunes the supervisor.
	RepairConfig = repair.Config
	// RepairState is one node of the per-device repair state machine.
	RepairState = repair.State
	// RepairStatus is the supervisor's queryable status snapshot.
	RepairStatus = repair.Status
	// RepairDevStatus is the supervisor's view of one member.
	RepairDevStatus = repair.DevStatus
	// RebuildProgress checkpoints an interrupted rebuild for resume.
	RebuildProgress = core.RebuildProgress
	// ResyncStats reports what a delta resync moved.
	ResyncStats = core.ResyncStats
	// ScrubStats reports what a sampled scrub checked and repaired.
	ScrubStats = core.ScrubStats
)

// Repair state machine nodes (see DESIGN.md section 11).
const (
	RepairHealthy    = repair.StateHealthy
	RepairSuspect    = repair.StateSuspect
	RepairDegraded   = repair.StateDegraded
	RepairRebuilding = repair.StateRebuilding
	RepairResyncing  = repair.StateResyncing
)

// DefaultIntentRegionBlocks is the default dirty-region granularity.
const DefaultIntentRegionBlocks = intent.DefaultRegionBlocks

// NewIntentLog creates a dirty-region log covering devices members of
// deviceBlocks physical blocks each; regionBlocks <= 0 takes
// DefaultIntentRegionBlocks.
func NewIntentLog(devices int, deviceBlocks, regionBlocks int64) *IntentLog {
	return intent.NewLog(devices, deviceBlocks, regionBlocks)
}

// NewRepairSupervisor builds (but does not start) a repair supervisor
// over the array. sp may be nil: failed members then wait for manual
// repair while readmitted ones still get automatic delta resyncs.
func NewRepairSupervisor(arr *RAIDx, sp *Sparer, cfg RepairConfig) *RepairSupervisor {
	return repair.New(arr, sp, cfg)
}

// CopyArray migrates the contents of src onto dst (array
// reconfiguration, e.g. 4x3 -> 6x2 as in the paper's Section 6).
func CopyArray(ctx context.Context, dst, src Array) error { return raid.Copy(ctx, dst, src) }
