package raidx

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestPublicAPILifecycle exercises the façade end to end: build, write,
// flush, verify, fail, degraded read, rebuild.
func TestPublicAPILifecycle(t *testing.T) {
	ctx := context.Background()
	devs := NewMemDevs(4, 256, 1024)
	arr, err := NewRAIDx(devs, 4, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32*arr.BlockSize())
	rand.New(rand.NewSource(1)).Read(data)
	if err := arr.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := arr.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := arr.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	devs[1].(*Disk).Fail()
	got := make([]byte, len(data))
	if err := arr.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read mismatch")
	}
	if err := devs[1].(*Disk).Replace(); err != nil {
		t.Fatal(err)
	}
	if err := arr.Rebuild(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := arr.Verify(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIBaselines builds every baseline through the façade.
func TestPublicAPIBaselines(t *testing.T) {
	builders := map[string]func([]Dev) (Array, error){
		"raid0":   NewRAID0,
		"raid5":   NewRAID5,
		"raid10":  NewRAID10,
		"chained": NewChained,
	}
	ctx := context.Background()
	for name, build := range builders {
		arr, err := build(NewMemDevs(4, 64, 512))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		buf := make([]byte, 4*arr.BlockSize())
		rand.New(rand.NewSource(2)).Read(buf)
		if err := arr.WriteBlocks(ctx, 0, buf); err != nil {
			t.Fatalf("%s write: %v", name, err)
		}
		got := make([]byte, len(buf))
		if err := arr.ReadBlocks(ctx, 0, got); err != nil {
			t.Fatalf("%s read: %v", name, err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatalf("%s round trip mismatch", name)
		}
	}
}

// TestPublicAPIFilesystem mounts an FS through the façade.
func TestPublicAPIFilesystem(t *testing.T) {
	ctx := context.Background()
	arr, err := NewRAIDx(NewMemDevs(4, 512, 1024), 4, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mkfs(ctx, arr, NewTableLocker(NewLockTable()), "t", FSOptions{MaxInodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll(ctx, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/a/b/x", []byte("façade")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ctx, "/a/b/x")
	if err != nil || string(got) != "façade" {
		t.Fatalf("got %q, %v", got, err)
	}
}

// TestPublicAPITCP covers the CDD path through the façade.
func TestPublicAPITCP(t *testing.T) {
	disks := []*Disk{NewMemDisk("d0", 512, 64)}
	node, err := ListenAndServe("127.0.0.1:0", disks)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	c, err := Connect(node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dev := c.Dev(0)
	ctx := context.Background()
	data := bytes.Repeat([]byte{0x42}, 512)
	if err := dev.WriteBlocks(ctx, 3, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := dev.ReadBlocks(ctx, 3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP round trip mismatch")
	}
}

// TestPublicAPIOSMLayout sanity-checks the exported address arithmetic.
func TestPublicAPIOSMLayout(t *testing.T) {
	lay := NewOSM(4, 3, 12)
	if lay.TotalDisks() != 12 || lay.GroupSize() != 3 {
		t.Fatalf("geometry: %d disks, groups of %d", lay.TotalDisks(), lay.GroupSize())
	}
	for b := int64(0); b < lay.DataBlocks(); b++ {
		if lay.NodeOfDisk(lay.DataLoc(b).Disk) == lay.NodeOfDisk(lay.MirrorLoc(b).Disk) {
			t.Fatalf("block %d not orthogonal", b)
		}
	}
}

// TestPublicAPIFaultTolerance exercises the exported retry/fault
// surface: ConnectWith through a FaultNetwork dialer, call deadlines,
// and recovery after healing.
func TestPublicAPIFaultTolerance(t *testing.T) {
	disks := []*Disk{NewMemDisk("d0", 512, 64)}
	node, err := ListenAndServe("127.0.0.1:0", disks)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	fnet := NewFaultNetwork(1)
	pol := DefaultRetryPolicy()
	pol.CallTimeout = 100 * time.Millisecond
	pol.BaseBackoff = time.Millisecond
	c, err := ConnectWith(context.Background(), node.Addr(), ConnectOptions{
		Retry:  pol,
		Dialer: fnet.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dev := c.Dev(0)
	ctx := context.Background()
	data := bytes.Repeat([]byte{0x7a}, 512)
	if err := dev.WriteBlocks(ctx, 5, data); err != nil {
		t.Fatal(err)
	}
	fnet.Stall(node.Addr())
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := dev.ReadBlocks(short, 5, make([]byte, 512)); err == nil {
		t.Fatal("read through a stalled network succeeded")
	}
	fnet.HealAll()
	deadline := time.Now().Add(5 * time.Second)
	got := make([]byte, 512)
	for {
		if err := dev.ReadBlocks(ctx, 5, got); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("read never recovered after heal: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-heal read mismatch")
	}
}
