package qos

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// tenantRate reads a tenant bucket's current rate (test helper).
func tenantRate(s *Scheduler, name string) int64 {
	s.mu.Lock()
	ts := s.tenants[name]
	s.mu.Unlock()
	if ts == nil {
		return -1
	}
	ts.b.mu.Lock()
	defer ts.b.mu.Unlock()
	return ts.b.rate
}

// TestBackgroundRateCap drives background admissions and checks the
// achieved rate stays near the configured cap.
func TestBackgroundRateCap(t *testing.T) {
	s := New(Config{BackgroundBytesPerSec: 1 << 20, BurstWindow: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	const chunk = 64 << 10
	start := time.Now()
	var total int64
	for time.Since(start) < 400*time.Millisecond {
		if err := s.Wait(ctx, Background, "", chunk); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		total += chunk
	}
	rate := float64(total) / time.Since(start).Seconds()
	if rate > 2.0*(1<<20) {
		t.Fatalf("background rate %.0f B/s blew past the 1 MiB/s cap", rate)
	}
	if rate < 0.3*(1<<20) {
		t.Fatalf("background rate %.0f B/s fell far below the 1 MiB/s cap", rate)
	}
}

// TestUnlimitedClassNeverBlocks checks rate 0 admits instantly.
func TestUnlimitedClassNeverBlocks(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if err := s.Wait(ctx, Foreground, "t1", 1<<20); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("unlimited admissions took %v", d)
	}
	if got := s.TenantBytes()["t1"]; got != 1000<<20 {
		t.Fatalf("tenant bytes = %d, want %d", got, int64(1000)<<20)
	}
}

// TestOversizedAdmission checks an I/O larger than the burst window is
// admitted (via debt) rather than deadlocking.
func TestOversizedAdmission(t *testing.T) {
	s := New(Config{BackgroundBytesPerSec: 1 << 20, BurstWindow: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Wait(ctx, Background, "", 1<<20); err != nil {
		t.Fatalf("oversized admission: %v", err)
	}
}

// TestWaitHonorsContext checks cancellation unblocks a waiter.
func TestWaitHonorsContext(t *testing.T) {
	s := New(Config{ForegroundBytesPerSec: 1024, BurstWindow: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// An oversized admission lands immediately but leaves the bucket in
	// deep debt; the next admission must block until the debt is paid —
	// far longer than the 50 ms deadline.
	if err := s.Wait(context.Background(), Foreground, "", 1<<20); err != nil {
		t.Fatalf("debt admission: %v", err)
	}
	err := s.Wait(ctx, Foreground, "", 1)
	if err == nil {
		t.Fatal("expected context error while bucket is in debt")
	}
}

// TestTenantFairShares runs greedy tenants concurrently and checks
// admitted bytes stay near-equal (Jain's index close to 1).
func TestTenantFairShares(t *testing.T) {
	s := New(Config{ForegroundBytesPerSec: 4 << 20, BurstWindow: 5 * time.Millisecond, Obs: obs.NewRegistry()})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	tenants := []string{"a", "b", "c", "d"}
	// Register everyone up front so shares are equal from the start.
	for _, tn := range tenants {
		if err := s.Wait(ctx, Foreground, tn, 1); err != nil {
			t.Fatalf("prime %s: %v", tn, err)
		}
	}
	var wg sync.WaitGroup
	stop := time.Now().Add(300 * time.Millisecond)
	for _, tn := range tenants {
		wg.Add(1)
		go func(tn string) {
			defer wg.Done()
			for time.Now().Before(stop) {
				if s.Wait(ctx, Foreground, tn, 16<<10) != nil {
					return
				}
			}
		}(tn)
	}
	wg.Wait()

	got := s.TenantBytes()
	var sum, sumSq float64
	for _, tn := range tenants {
		v := float64(got[tn])
		if v == 0 {
			t.Fatalf("tenant %s admitted nothing: %v", tn, got)
		}
		sum += v
		sumSq += v * v
	}
	jain := sum * sum / (float64(len(tenants)) * sumSq)
	if jain < 0.8 {
		t.Fatalf("Jain fairness %.3f < 0.8 across %v", jain, got)
	}
}

// TestTenantExpiryRestoresShares checks idle tenants are expired —
// their slice returns to the active tenants instead of shrinking every
// share forever — while their cumulative byte counts survive and a
// returning tenant resumes from them.
func TestTenantExpiryRestoresShares(t *testing.T) {
	s := New(Config{ForegroundBytesPerSec: 8 << 20, BurstWindow: time.Millisecond, TenantIdle: 50 * time.Millisecond})
	ctx := context.Background()
	for _, tn := range []string{"a", "b"} {
		if err := s.Wait(ctx, Foreground, tn, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := tenantRate(s, "a"); got != 4<<20 {
		t.Fatalf("share with 2 tenants = %d, want %d", got, 4<<20)
	}

	// b goes idle past TenantIdle; a's next admission sweeps it out.
	time.Sleep(120 * time.Millisecond)
	if err := s.Wait(ctx, Foreground, "a", 1); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	_, bAlive := s.tenants["b"]
	retired := s.retired["b"]
	s.mu.Unlock()
	if bAlive || retired != 1 {
		t.Fatalf("idle tenant not expired: alive=%v retiredBytes=%d", bAlive, retired)
	}
	if got := tenantRate(s, "a"); got != 8<<20 {
		t.Fatalf("share after expiry = %d, want full rate %d", got, 8<<20)
	}
	if got := s.TenantBytes(); got["a"] != 2 || got["b"] != 1 {
		t.Fatalf("TenantBytes = %v, want a:2 b:1", got)
	}

	// b returns: its count resumes and the shares split again.
	if err := s.Wait(ctx, Foreground, "b", 1); err != nil {
		t.Fatal(err)
	}
	if got := s.TenantBytes()["b"]; got != 2 {
		t.Fatalf("returning tenant bytes = %d, want 2", got)
	}
	if got := tenantRate(s, "b"); got != 4<<20 {
		t.Fatalf("share after return = %d, want %d", got, 4<<20)
	}
}

// TestRetuneRaceUnderWaiters drives concurrent admissions against one
// tenant while tenant churn retunes shares via setRate — a -race
// canary for the bucket's rate/burst access discipline.
func TestRetuneRaceUnderWaiters(t *testing.T) {
	s := New(Config{ForegroundBytesPerSec: 64 << 20, BurstWindow: time.Millisecond, TenantIdle: 20 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stop := time.Now().Add(200 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				if s.Wait(ctx, Foreground, "steady", 4<<10) != nil {
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(stop); i++ {
			if s.Wait(ctx, Foreground, fmt.Sprintf("churn-%d", i%8), 1) != nil {
				return
			}
		}
	}()
	wg.Wait()
}

// TestPaceShape checks the Pace adapter admits through the scheduler.
func TestPaceShape(t *testing.T) {
	s := New(Config{BackgroundBytesPerSec: 8 << 20})
	pace := s.Pace(Background, "repair")
	if err := pace(context.Background(), 4096); err != nil {
		t.Fatalf("pace: %v", err)
	}
	if v := s.admittedBG.Value(); v != 0 {
		// no registry: counter is nil and Value() is 0 — just ensure no panic
		t.Fatalf("unexpected counter value %d", v)
	}
}

// TestLiveRateGauges pins the PR-8 fix: qos.fg_rate_bps / qos.bg_rate_bps
// report the scheduler's *live* bucket rates (not the construction-time
// config), so SLO feedback re-tuning is visible in snapshots.
func TestLiveRateGauges(t *testing.T) {
	r := obs.NewRegistry()
	s := New(Config{ForegroundBytesPerSec: 32 << 20, BackgroundBytesPerSec: 8 << 20, Obs: r})

	g := r.Snapshot().Gauges
	if g["qos.fg_rate_bps"] != 32<<20 || g["qos.bg_rate_bps"] != 8<<20 {
		t.Fatalf("initial gauges fg=%d bg=%d, want configured rates", g["qos.fg_rate_bps"], g["qos.bg_rate_bps"])
	}

	// The SLO actuator surface: rate changes land in the gauges.
	s.SetBackgroundRate(2 << 20)
	if got := s.BackgroundRate(); got != 2<<20 {
		t.Fatalf("BackgroundRate = %d, want %d", got, 2<<20)
	}
	s.SetForegroundRate(16 << 20)
	if got := s.ForegroundRate(); got != 16<<20 {
		t.Fatalf("ForegroundRate = %d, want %d", got, 16<<20)
	}
	g = r.Snapshot().Gauges
	if g["qos.bg_rate_bps"] != 2<<20 {
		t.Errorf("bg gauge after SetBackgroundRate = %d, want %d", g["qos.bg_rate_bps"], 2<<20)
	}
	if g["qos.fg_rate_bps"] != 16<<20 {
		t.Errorf("fg gauge after SetForegroundRate = %d, want %d", g["qos.fg_rate_bps"], 16<<20)
	}
}

// TestTenantLabeledGauges checks the per-tenant labeled exports: each
// active tenant gets qos.tenant_share_bps{tenant=...} and
// qos.tenant_bytes{tenant=...}; expiry deletes the share gauge but the
// cumulative byte gauge survives (it is still the true total).
func TestTenantLabeledGauges(t *testing.T) {
	r := obs.NewRegistry()
	s := New(Config{ForegroundBytesPerSec: 8 << 20, BurstWindow: time.Millisecond, TenantIdle: 50 * time.Millisecond, Obs: r})
	ctx := context.Background()
	for _, tn := range []string{"a", "b"} {
		if err := s.Wait(ctx, Foreground, tn, 100); err != nil {
			t.Fatal(err)
		}
	}
	g := r.Snapshot().Gauges
	shareA := obs.LabelName("qos.tenant_share_bps", "tenant", "a")
	bytesB := obs.LabelName("qos.tenant_bytes", "tenant", "b")
	if g[shareA] != 4<<20 {
		t.Fatalf("share{a} = %d, want %d (half of fg)", g[shareA], 4<<20)
	}
	if g[bytesB] != 100 {
		t.Fatalf("bytes{b} = %d, want 100", g[bytesB])
	}

	// b idles out; a's next admission sweeps it.
	time.Sleep(120 * time.Millisecond)
	if err := s.Wait(ctx, Foreground, "a", 1); err != nil {
		t.Fatal(err)
	}
	g = r.Snapshot().Gauges
	if _, ok := g[obs.LabelName("qos.tenant_share_bps", "tenant", "b")]; ok {
		t.Error("expired tenant's share gauge not deleted")
	}
	if g[shareA] != 8<<20 {
		t.Errorf("share{a} after expiry = %d, want full rate", g[shareA])
	}
	if g[bytesB] != 100 {
		t.Errorf("bytes{b} after expiry = %d, want cumulative 100 kept", g[bytesB])
	}
}
