// Package qos provides token-bucket admission control for the array's
// I/O classes. It generalizes the fixed-rate pacing scattered through
// resync and repair into one scheduler with two classes — Foreground
// (client reads/writes) and Background (repair, resync, scrub) — plus
// per-tenant fair shares inside the foreground class, so one hot
// tenant cannot starve the rest and a rebuild cannot collapse serving
// throughput.
//
// The bucket uses a debt model: an admission larger than the burst
// window waits until the bucket is as full as it can usefully get,
// then drives the balance negative; later admissions pay the debt
// down. That admits arbitrarily large single I/Os while keeping the
// long-run rate exact.
package qos

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// Class labels an admission stream.
type Class int

const (
	// Foreground is client-facing I/O.
	Foreground Class = iota
	// Background is maintenance I/O: repair, resync, scrub.
	Background
)

// String names the class for metrics and logs.
func (c Class) String() string {
	if c == Background {
		return "background"
	}
	return "foreground"
}

// Config sets the scheduler's rates.
type Config struct {
	// ForegroundBytesPerSec caps client I/O (0 = unlimited).
	ForegroundBytesPerSec int64
	// BackgroundBytesPerSec caps maintenance I/O (0 = unlimited).
	BackgroundBytesPerSec int64
	// BurstWindow is how much of the rate a bucket may accumulate while
	// idle (<= 0: 100 ms of the rate).
	BurstWindow time.Duration
	// TenantIdle is how long a tenant may go without an admission before
	// its share is reclaimed and redistributed (<= 0: 10 s). Expired
	// tenants keep their cumulative byte counts; a returning tenant
	// resumes from them.
	TenantIdle time.Duration
	// Obs receives per-class and per-tenant counters (nil: none).
	Obs *obs.Registry
}

// bucket is one token bucket with the debt model.
type bucket struct {
	mu     sync.Mutex
	rate   int64 // tokens (bytes) per second; 0 = unlimited
	burst  int64
	tokens int64 // may go negative (debt)
	last   time.Time
}

func newBucket(rate int64, window time.Duration) *bucket {
	if window <= 0 {
		window = 100 * time.Millisecond
	}
	burst := int64(float64(rate) * window.Seconds())
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// setRate retunes the bucket in place.
func (b *bucket) setRate(rate int64, window time.Duration) {
	if window <= 0 {
		window = 100 * time.Millisecond
	}
	b.mu.Lock()
	b.refillLocked(time.Now())
	b.rate = rate
	b.burst = int64(float64(rate) * window.Seconds())
	if b.burst < 1 {
		b.burst = 1
	}
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

func (b *bucket) refillLocked(now time.Time) {
	if b.rate <= 0 {
		return
	}
	dt := now.Sub(b.last)
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens += int64(float64(b.rate) * dt.Seconds())
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// limited reports whether the bucket currently enforces a rate.
func (b *bucket) limited() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate > 0
}

// limits reports the bucket's live rate and burst — the values the
// qos.*_rate_bps gauges export. Read under the bucket lock so a
// concurrent setRate (SLO feedback re-tuning) is never half-seen.
func (b *bucket) limits() (rate, burst int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate, b.burst
}

// wait blocks until n bytes are admitted or ctx is done. Admissions
// larger than the burst window wait for min(n, burst) and take the
// rest as debt. rate and burst are only ever read under b.mu — setRate
// may retune the bucket concurrently.
func (b *bucket) wait(ctx context.Context, n int64) error {
	if n <= 0 {
		return ctx.Err()
	}
	for {
		b.mu.Lock()
		if b.rate <= 0 {
			b.mu.Unlock()
			return ctx.Err()
		}
		now := time.Now()
		b.refillLocked(now)
		need := n
		if need > b.burst {
			need = b.burst
		}
		if b.tokens >= need {
			b.tokens -= n // may go negative: debt for oversized admissions
			b.mu.Unlock()
			return nil
		}
		deficit := need - b.tokens
		rate := b.rate
		b.mu.Unlock()
		d := time.Duration(float64(deficit) / float64(rate) * float64(time.Second))
		if d < time.Millisecond {
			d = time.Millisecond
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

type tenantState struct {
	b      *bucket
	bytes  int64
	last   time.Time // most recent admission attempt
	bytesG *obs.GaugeVal
}

// Scheduler admits I/O by class and, within the foreground class, by
// tenant fair share: each active tenant gets an equal slice of the
// foreground rate, recomputed as tenants come and go. Tenants idle
// longer than TenantIdle are expired so departed tenants stop diluting
// the shares of the ones still running (their cumulative byte counts
// are retained in retired).
type Scheduler struct {
	cfg Config
	fg  *bucket
	bg  *bucket

	mu      sync.Mutex
	fgRate  int64 // live class rates: cfg seeds them, Set*Rate re-tunes
	bgRate  int64
	tenants map[string]*tenantState
	retired map[string]int64 // admitted bytes of expired tenants

	admittedFG, admittedBG *obs.Counter
	waitsFG, waitsBG       *obs.Counter
	shareG, bytesG         *obs.GaugeVec
}

// New creates a scheduler from cfg and registers its gauges. The
// qos.fg_rate_bps / qos.bg_rate_bps gauges (and their *_burst_bytes
// companions) read the live bucket limits under the bucket lock, so
// re-tuning (SetBackgroundRate from SLO feedback) is visible in /stats
// immediately — they do NOT echo the construction-time config.
func New(cfg Config) *Scheduler {
	if cfg.TenantIdle <= 0 {
		cfg.TenantIdle = 10 * time.Second
	}
	s := &Scheduler{
		cfg:     cfg,
		fg:      newBucket(cfg.ForegroundBytesPerSec, cfg.BurstWindow),
		bg:      newBucket(cfg.BackgroundBytesPerSec, cfg.BurstWindow),
		fgRate:  cfg.ForegroundBytesPerSec,
		bgRate:  cfg.BackgroundBytesPerSec,
		tenants: map[string]*tenantState{},
		retired: map[string]int64{},
	}
	if r := cfg.Obs; r != nil {
		s.admittedFG = r.Counter("qos.fg_bytes")
		s.admittedBG = r.Counter("qos.bg_bytes")
		s.waitsFG = r.Counter("qos.fg_waits")
		s.waitsBG = r.Counter("qos.bg_waits")
		s.shareG = r.GaugeVec("qos.tenant_share_bps", "tenant")
		s.bytesG = r.GaugeVec("qos.tenant_bytes", "tenant")
		r.RegisterGauge("qos.fg_rate_bps", func() int64 { rate, _ := s.fg.limits(); return rate })
		r.RegisterGauge("qos.bg_rate_bps", func() int64 { rate, _ := s.bg.limits(); return rate })
		r.RegisterGauge("qos.fg_burst_bytes", func() int64 { _, burst := s.fg.limits(); return burst })
		r.RegisterGauge("qos.bg_burst_bytes", func() int64 { _, burst := s.bg.limits(); return burst })
		r.RegisterGauge("qos.tenants", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.tenants))
		})
	}
	return s
}

// BackgroundRate reports the live Background class rate in bytes/sec.
// Together with SetBackgroundRate it satisfies obs.Actuator, the SLO
// feedback surface.
func (s *Scheduler) BackgroundRate() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bgRate
}

// SetBackgroundRate re-tunes the Background class rate in place (0 =
// unlimited). In-flight waits observe the new rate on their next refill.
func (s *Scheduler) SetBackgroundRate(bps int64) {
	s.mu.Lock()
	s.bgRate = bps
	s.mu.Unlock()
	s.bg.setRate(bps, s.cfg.BurstWindow)
}

// ForegroundRate reports the live Foreground class rate in bytes/sec.
func (s *Scheduler) ForegroundRate() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fgRate
}

// SetForegroundRate re-tunes the Foreground class rate and every active
// tenant's share of it.
func (s *Scheduler) SetForegroundRate(bps int64) {
	s.mu.Lock()
	s.fgRate = bps
	s.retuneLocked()
	s.mu.Unlock()
	s.fg.setRate(bps, s.cfg.BurstWindow)
}

// tenant returns (creating if needed) the per-tenant bucket, expiring
// idle tenants and resizing every remaining slice to rate/len(tenants)
// when the set changes.
func (s *Scheduler) tenant(name string) *tenantState {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	changed := s.sweepLocked(now, name)
	ts, ok := s.tenants[name]
	if !ok {
		ts = &tenantState{
			b:      newBucket(0, s.cfg.BurstWindow),
			bytes:  s.retired[name],
			bytesG: s.bytesG.With(name),
		}
		ts.bytesG.Set(ts.bytes)
		delete(s.retired, name)
		s.tenants[name] = ts
		changed = true
	}
	ts.last = now
	if changed {
		s.retuneLocked()
	}
	return ts
}

// sweepLocked expires tenants whose last admission predates TenantIdle
// (keep is never expired), moving their byte counts to retired. It
// reports whether the tenant set changed.
func (s *Scheduler) sweepLocked(now time.Time, keep string) bool {
	cut := now.Add(-s.cfg.TenantIdle)
	changed := false
	for n, t := range s.tenants {
		if n != keep && t.last.Before(cut) {
			s.retired[n] += t.bytes
			delete(s.tenants, n)
			// The share gauge goes with the tenant; the cumulative byte
			// gauge stays (it is still the tenant's true total).
			s.shareG.Delete(n)
			changed = true
		}
	}
	return changed
}

// retuneLocked resizes every active tenant's slice to an equal share of
// the live foreground rate.
func (s *Scheduler) retuneLocked() {
	if s.fgRate <= 0 || len(s.tenants) == 0 {
		return
	}
	share := s.fgRate / int64(len(s.tenants))
	for n, t := range s.tenants {
		t.b.setRate(share, s.cfg.BurstWindow)
		s.shareG.With(n).Set(share)
	}
}

// Wait blocks until n bytes of class-c I/O are admitted. tenant may be
// empty (class-level admission only; background I/O typically is).
func (s *Scheduler) Wait(ctx context.Context, c Class, tenant string, n int) error {
	if n <= 0 {
		return ctx.Err()
	}
	if c == Background {
		if s.bg.limited() {
			s.waitsBG.Inc()
		}
		if err := s.bg.wait(ctx, int64(n)); err != nil {
			return err
		}
		s.admittedBG.Add(int64(n))
		return nil
	}
	var ts *tenantState
	if tenant != "" {
		ts = s.tenant(tenant)
		if err := ts.b.wait(ctx, int64(n)); err != nil {
			return err
		}
	}
	if s.fg.limited() {
		s.waitsFG.Inc()
	}
	if err := s.fg.wait(ctx, int64(n)); err != nil {
		return err
	}
	s.admittedFG.Add(int64(n))
	if ts != nil {
		s.mu.Lock()
		ts.bytes += int64(n)
		ts.bytesG.Set(ts.bytes)
		ts.last = time.Now()
		s.mu.Unlock()
	}
	return nil
}

// Pace adapts one (class, tenant) stream to the core.PaceFunc shape —
// func(ctx, bytes) error — so repair, resync, and scrub route through
// admission control without importing this package.
func (s *Scheduler) Pace(c Class, tenant string) func(ctx context.Context, bytes int) error {
	return func(ctx context.Context, bytes int) error {
		return s.Wait(ctx, c, tenant, bytes)
	}
}

// TenantBytes snapshots cumulative admitted bytes per tenant — the
// input to fairness measurement (e.g. Jain's index). Expired tenants
// are included from their retained counts.
func (s *Scheduler) TenantBytes() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.tenants)+len(s.retired))
	for n, v := range s.retired {
		out[n] = v
	}
	for n, t := range s.tenants {
		out[n] = t.bytes
	}
	return out
}
