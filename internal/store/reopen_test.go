package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// The reopen edge cases: every way an image on disk can fail to be the
// image the caller thinks it is opening must be detected at OpenFile,
// before a single data block is trusted.

func TestFileReopenForeignImage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notours.img")
	// A legacy headerless image: raw data from byte 0, no magic.
	if err := os.WriteFile(path, bytes.Repeat([]byte{0x55}, 512*16), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenFile(path, 512, 16)
	if !errors.Is(err, ErrForeignImage) {
		t.Fatalf("err = %v, want ErrForeignImage", err)
	}
}

func TestFileReopenTornSuperblock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	s, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CloseClean(); err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the checksummed header region.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenFile(path, 512, 16)
	if !errors.Is(err, ErrCorruptSuperblock) {
		t.Fatalf("err = %v, want ErrCorruptSuperblock", err)
	}
}

func TestFileReopenGeometryMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	s, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CloseClean(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int64{{512, 32}, {1024, 16}, {256, 8}} {
		_, err := OpenFile(path, int(bad[0]), bad[1])
		if !errors.Is(err, ErrGeometryMismatch) {
			t.Fatalf("open %dx%d: err = %v, want ErrGeometryMismatch", bad[0], bad[1], err)
		}
	}
	// The true geometry still opens.
	s, err = OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}

func TestFileReopenTruncatedImage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	s, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CloseClean(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, SuperSize+512*8); err != nil {
		t.Fatal(err)
	}
	_, err = OpenFile(path, 512, 16)
	if !errors.Is(err, ErrTruncatedImage) {
		t.Fatalf("err = %v, want ErrTruncatedImage", err)
	}
	// Shorter than the header itself is also a truncation, not foreign.
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	_, err = OpenFile(path, 512, 16)
	if !errors.Is(err, ErrTruncatedImage) {
		t.Fatalf("10-byte file: err = %v, want ErrTruncatedImage", err)
	}
}

func TestFileReopenForeignArray(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	a1, a2 := newUUID(), newUUID()
	s, err := OpenFileFS(OS, path, 512, 16, FileOptions{ArrayUUID: a1})
	if err != nil {
		t.Fatal(err)
	}
	if s.ArrayUUID() != a1 {
		t.Fatal("array UUID not stamped at format")
	}
	if err := s.CloseClean(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileFS(OS, path, 512, 16, FileOptions{ArrayUUID: a2}); err == nil {
		t.Fatal("image from another array mounted silently")
	}
	// Opening without claiming an array identity still works.
	s, err = OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}

func TestFileWasCleanLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	s, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !s.WasClean() {
		t.Fatal("fresh image reports unclean")
	}
	dev := s.DeviceUUID()
	// Plain Close is crash-equivalent: the in-use mark stays on disk.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.WasClean() {
		t.Fatal("reopen after crash-close reports clean")
	}
	if s.DeviceUUID() != dev {
		t.Fatal("device identity changed across reopen")
	}
	if err := s.CloseClean(); err != nil {
		t.Fatal(err)
	}
	s, err = OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.WasClean() {
		t.Fatal("reopen after CloseClean reports unclean")
	}
}

func TestFileBlankDiscardsDataDurably(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	s, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	oldDev := s.DeviceUUID()
	data := bytes.Repeat([]byte{0xCD}, 512)
	if err := s.WriteBlock(3, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Blank(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := s.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("blanked store still holds data")
	}
	if s.DeviceUUID() == oldDev {
		t.Fatal("blank kept the old device identity")
	}
	if err := s.CloseClean(); err != nil {
		t.Fatal(err)
	}
	// The satellite bug this guards: a "replaced" file-backed disk whose
	// old contents resurrect on restart.
	s, err = OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("blanked contents resurrected across reopen")
	}
}

// TestFileConcurrentWriteSync drives WriteBlock, ReadBlock, and Sync
// from many goroutines under -race: block I/O must not race the
// superblock lock or each other.
func TestFileConcurrentWriteSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	const blocks = 64
	s, err := OpenFile(path, 512, blocks)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(g + 1)}, 512)
			got := make([]byte, 512)
			for i := 0; i < 50; i++ {
				b := int64((g*50 + i) % blocks)
				if err := s.WriteBlock(b, buf); err != nil {
					t.Error(err)
					return
				}
				if err := s.ReadBlock(b, got); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if err := s.Sync(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.CloseClean(); err != nil {
		t.Fatal(err)
	}
	if sb, _, err := InspectSuperblock(OS, path); err != nil || !sb.Clean {
		t.Fatalf("after concurrent storm: clean=%v err=%v", sb.Clean, err)
	}
}
