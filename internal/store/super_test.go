package store

import (
	"path/filepath"
	"testing"
)

func TestSuperblockRoundTrip(t *testing.T) {
	sb := Superblock{
		Version:    SuperVersion,
		BlockSize:  32 << 10,
		Blocks:     4096,
		ArrayUUID:  newUUID(),
		DeviceUUID: newUUID(),
		Clean:      true,
	}
	got, err := decodeSuperblock(sb.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != sb {
		t.Fatalf("round trip: got %+v, want %+v", got, sb)
	}
	sb.Clean = false
	if got, err = decodeSuperblock(sb.encode()); err != nil || got.Clean {
		t.Fatalf("unclean round trip: %+v, %v", got, err)
	}
}

func TestSuperblockDetectsCorruption(t *testing.T) {
	sb := Superblock{Version: SuperVersion, BlockSize: 512, Blocks: 8, DeviceUUID: newUUID()}
	enc := sb.encode()
	// Every single-bit flip in the header must be caught by the checksum
	// (or, for the magic word, read as a foreign file) — a torn or
	// bit-rotted superblock must never decode as a different geometry.
	for i := 0; i < len(enc); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 1 << bit
			if _, err := decodeSuperblock(mut); err == nil {
				t.Fatalf("flip of byte %d bit %d decoded cleanly", i, bit)
			}
		}
	}
	if _, err := decodeSuperblock(enc[:superHeaderLen-1]); err == nil {
		t.Fatal("short header decoded cleanly")
	}
}

func TestSuperblockNewerVersionRejected(t *testing.T) {
	sb := Superblock{Version: SuperVersion + 1, BlockSize: 512, Blocks: 8}
	if _, err := decodeSuperblock(sb.encode()); err == nil {
		t.Fatal("future format version accepted")
	}
}

func TestInspectSuperblock(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "disk.img")
	s, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	sb, size, err := InspectSuperblock(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Clean {
		t.Fatal("open image inspects as clean")
	}
	if want := int64(SuperSize + 512*16); size != want {
		t.Fatalf("size = %d, want %d", size, want)
	}
	if sb.BlockSize != 512 || sb.Blocks != 16 || sb.DeviceUUID != s.DeviceUUID() {
		t.Fatalf("inspected %+v", sb)
	}
	if err := s.CloseClean(); err != nil {
		t.Fatal(err)
	}
	if sb, _, err = InspectSuperblock(OS, path); err != nil || !sb.Clean {
		t.Fatalf("after CloseClean: clean=%v err=%v", sb.Clean, err)
	}
	if _, _, err := InspectSuperblock(OS, filepath.Join(dir, "missing.img")); err == nil {
		t.Fatal("missing image inspected cleanly")
	}
}

// FuzzSuperblockDecode: decoding arbitrary bytes must never panic, and
// anything that does decode must re-encode to an identical header
// (decode is the inverse of encode on the accepted set).
func FuzzSuperblockDecode(f *testing.F) {
	f.Add([]byte{})
	sb := Superblock{Version: SuperVersion, BlockSize: 4096, Blocks: 128,
		ArrayUUID: newUUID(), DeviceUUID: newUUID(), Clean: true}
	f.Add(sb.encode())
	sb.Clean = false
	f.Add(sb.encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeSuperblock(data)
		if err != nil {
			return
		}
		re, err := decodeSuperblock(got.encode())
		if err != nil || re != got {
			t.Fatalf("decode/encode not idempotent: %+v vs %+v (%v)", got, re, err)
		}
	})
}
