package store

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	s, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := bytes.Repeat([]byte{0xAB}, 512)
	if err := s.WriteBlock(7, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := s.ReadBlock(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestFileStoreHolesReadZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	s, err := OpenFile(path, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := bytes.Repeat([]byte{0xFF}, 256)
	if err := s.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	s, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x3C}, 512)
	if err := s.WriteBlock(2, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := make([]byte, 512)
	if err := s2.ReadBlock(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across reopen")
	}
}

func TestFileStoreGeometryMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	s, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenFile(path, 512, 32); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestFileStoreBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	s, err := OpenFile(path, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ReadBlock(4, make([]byte, 512)); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := s.WriteBlock(0, make([]byte, 100)); err == nil {
		t.Fatal("short buffer accepted")
	}
}
