package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// File is a file-backed BlockStore: a checksummed superblock followed by
// one flat data region, block b at offset SuperSize + b*BlockSize. The
// data region is truncated to full size at format, so holes read as
// zeros (sparse on file systems that support it). File gives raidxnode
// persistent disks — the durable counterpart of Mem.
//
// Durability discipline:
//
//   - Opening marks the image in use (clean flag cleared, synced) before
//     any data write, so a later reopen can tell a crash from a clean
//     shutdown.
//   - WriteBlock is volatile until Sync returns — the same contract as a
//     disk with a write-back cache. Callers that need durability call
//     Sync at their barrier points.
//   - CloseClean syncs the data, then sets the clean flag, then syncs
//     again: the flag can never claim durability ahead of the data.
type File struct {
	// mu serializes superblock transitions (open/in-use, clean-close,
	// blank) against each other; block I/O is positional and needs no
	// lock of its own.
	mu        sync.Mutex
	fs        FS
	f         VFile
	blockSize int
	blocks    int64
	sb        Superblock
	wasClean  bool
	closed    bool
}

// FileOptions tune OpenFileFS beyond the geometry.
type FileOptions struct {
	// ArrayUUID, when nonzero, is stamped into a freshly formatted image
	// and verified against an existing one, so a disk image from another
	// array cannot be silently mounted into this one.
	ArrayUUID [16]byte
	// Epoch, when nonzero, is the cluster's array-layout epoch
	// generation. A fresh image is stamped with it. An existing image
	// whose recorded epoch LAGS it opens fine — a node reopening after
	// missing a rebalance (or mid-migration) is expected to be behind,
	// and the resume/resync path catches it up. An image whose recorded
	// epoch is AHEAD fails with ErrEpochAhead: the caller's cluster
	// description is stale and placements computed from it would be
	// wrong. Zero skips the check (callers that do not track epochs).
	Epoch uint64
}

// OpenFile creates (or reopens) a file-backed store at path on the real
// file system. See OpenFileFS.
func OpenFile(path string, blockSize int, blocks int64) (*File, error) {
	return OpenFileFS(OS, path, blockSize, blocks, FileOptions{})
}

// OpenFileFS creates (or reopens) a file-backed store at path through
// fs with the given geometry. A zero-length file is formatted: the
// superblock is written and the data region truncated to full size,
// with the create made durable via file sync + directory sync.
// Reopening an existing image validates the superblock — a foreign
// file fails with ErrForeignImage, a torn header with
// ErrCorruptSuperblock, a geometry lie with ErrGeometryMismatch, a
// short file with ErrTruncatedImage — and records whether the previous
// close was clean (WasClean) before marking the image in use again.
func OpenFileFS(fs FS, path string, blockSize int, blocks int64, opts FileOptions) (*File, error) {
	if blockSize <= 0 || blocks < 0 {
		return nil, fmt.Errorf("store: bad geometry %dx%d", blockSize, blocks)
	}
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &File{fs: fs, f: f, blockSize: blockSize, blocks: blocks}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size == 0 {
		if err := s.format(path, opts); err != nil {
			f.Close()
			return nil, err
		}
		return s, nil
	}
	if err := s.validate(path, size, opts); err != nil {
		f.Close()
		return nil, err
	}
	// Mark in use: a crash from here on is detectable at the next open.
	// Legacy headers upgrade to the current version here (the rewrite
	// happens regardless), which also makes the epoch field recordable.
	s.sb.Version = SuperVersion
	s.sb.Clean = false
	if err := writeSuper(s.f, &s.sb); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// format initializes a fresh image: superblock (in-use), full-size data
// region, then the sync + dir-sync barrier that makes the create durable.
func (s *File) format(path string, opts FileOptions) error {
	s.sb = Superblock{
		Version:    SuperVersion,
		BlockSize:  s.blockSize,
		Blocks:     s.blocks,
		ArrayUUID:  opts.ArrayUUID,
		DeviceUUID: newUUID(),
		ArrayEpoch: opts.Epoch,
		Clean:      false,
	}
	if _, err := s.f.WriteAt(s.sb.encode(), 0); err != nil {
		return err
	}
	if err := s.f.Truncate(SuperSize + int64(s.blockSize)*s.blocks); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	if err := s.fs.SyncDir(filepath.Dir(path)); err != nil {
		return err
	}
	s.wasClean = true // fresh image: nothing to recover
	return nil
}

// validate decodes and checks an existing image's superblock.
func (s *File) validate(path string, size int64, opts FileOptions) error {
	if size < superHeaderLen {
		return fmt.Errorf("%w: %s is %d bytes", ErrTruncatedImage, path, size)
	}
	hdr := make([]byte, superHeaderLen)
	if _, err := s.f.ReadAt(hdr, 0); err != nil {
		return err
	}
	sb, err := decodeSuperblock(hdr)
	if err != nil {
		if errors.Is(err, ErrForeignImage) {
			// A raw pre-superblock image is exactly blockSize*blocks long
			// and starts with data; give the operator a hint.
			return fmt.Errorf("%w: %s (legacy headerless images must be recreated)", ErrForeignImage, path)
		}
		return fmt.Errorf("%s: %w", path, err)
	}
	if sb.BlockSize != s.blockSize || sb.Blocks != s.blocks {
		return fmt.Errorf("%w: %s is %dx%d, want %dx%d",
			ErrGeometryMismatch, path, sb.BlockSize, sb.Blocks, s.blockSize, s.blocks)
	}
	if want := SuperSize + int64(sb.BlockSize)*sb.Blocks; size < want {
		return fmt.Errorf("%w: %s is %d bytes, superblock says %d", ErrTruncatedImage, path, size, want)
	}
	var zero [16]byte
	if opts.ArrayUUID != zero && sb.ArrayUUID != zero && sb.ArrayUUID != opts.ArrayUUID {
		return fmt.Errorf("store: %s belongs to array %s, not %s",
			path, UUIDString(sb.ArrayUUID), UUIDString(opts.ArrayUUID))
	}
	if opts.Epoch != 0 && sb.ArrayEpoch > opts.Epoch {
		return fmt.Errorf("%w: %s records epoch %d, cluster at %d",
			ErrEpochAhead, path, sb.ArrayEpoch, opts.Epoch)
	}
	s.sb = sb
	s.wasClean = sb.Clean
	return nil
}

// BlockSize implements BlockStore.
func (s *File) BlockSize() int { return s.blockSize }

// NumBlocks implements BlockStore.
func (s *File) NumBlocks() int64 { return s.blocks }

// WasClean reports whether the image had been closed cleanly before
// this open. False means the previous holder crashed (or was killed)
// while the image was in use: unsynced writes may be lost or torn, and
// the repair layer should treat the recorded dirty regions as stale.
func (s *File) WasClean() bool { return s.wasClean }

// DeviceUUID reports the image's device identity (assigned at format,
// regenerated by Blank).
func (s *File) DeviceUUID() [16]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sb.DeviceUUID
}

// ArrayUUID reports the array identity stamped on the image (zero when
// the image was formatted without one).
func (s *File) ArrayUUID() [16]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sb.ArrayUUID
}

// Epoch reports the array-layout epoch generation recorded on the
// image. Note this is the epoch at the last superblock write, not the
// cluster's — a reopened image may lag.
func (s *File) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sb.ArrayEpoch
}

// SetEpoch durably raises the image's recorded array epoch — called
// when the cluster's rebalance coordinator broadcasts a new generation.
// Lower generations are ignored; the record never rolls back.
func (s *File) SetEpoch(gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || gen <= s.sb.ArrayEpoch {
		return nil
	}
	s.sb.ArrayEpoch = gen
	return writeSuper(s.f, &s.sb)
}

func (s *File) check(b int64, buf []byte) error {
	if len(buf) != s.blockSize {
		return &SizeError{Got: len(buf), Want: s.blockSize}
	}
	if b < 0 || b >= s.blocks {
		return &RangeError{Block: b, Max: s.blocks}
	}
	return nil
}

// ReadBlock implements BlockStore.
func (s *File) ReadBlock(b int64, buf []byte) error {
	if err := s.check(b, buf); err != nil {
		return err
	}
	_, err := s.f.ReadAt(buf, SuperSize+b*int64(s.blockSize))
	return err
}

// WriteBlock implements BlockStore. The write is volatile until Sync.
func (s *File) WriteBlock(b int64, data []byte) error {
	if err := s.check(b, data); err != nil {
		return err
	}
	_, err := s.f.WriteAt(data, SuperSize+b*int64(s.blockSize))
	return err
}

// Sync flushes the backing file to stable storage — the durability
// barrier for everything written before it.
func (s *File) Sync() error { return s.f.Sync() }

// Blank implements Blanker: the data region is zeroed (truncate down
// and back up, so the file goes sparse again), the device takes a new
// identity, and the result is synced. Used when the image stands in for
// a hot-swapped blank replacement disk: the old contents must not
// resurrect on restart.
func (s *File) Blank() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Truncate(SuperSize); err != nil {
		return err
	}
	if err := s.f.Truncate(SuperSize + int64(s.blockSize)*s.blocks); err != nil {
		return err
	}
	s.sb.DeviceUUID = newUUID()
	s.sb.Clean = false
	return writeSuper(s.f, &s.sb)
}

// Close releases the backing file WITHOUT marking it clean — from the
// superblock's point of view this is indistinguishable from a crash.
// Graceful shutdown paths should use CloseClean.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

// CloseClean syncs the data region, marks the superblock clean, syncs
// again, and closes. A reopen after CloseClean reports WasClean.
func (s *File) CloseClean() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		s.closed = true
		s.f.Close()
		return err
	}
	s.sb.Clean = true
	if err := writeSuper(s.f, &s.sb); err != nil {
		s.closed = true
		s.f.Close()
		return err
	}
	s.closed = true
	return s.f.Close()
}
