package store

import (
	"fmt"
	"os"
	"sync"
)

// File is a file-backed BlockStore: one flat file, block b at offset
// b*BlockSize. The file is truncated to full size at open, so holes
// read as zeros (sparse on file systems that support it). File gives
// raidxnode persistent disks — the durable counterpart of Mem.
type File struct {
	mu        sync.Mutex
	f         *os.File
	blockSize int
	blocks    int64
}

// OpenFile creates (or reopens) a file-backed store at path with the
// given geometry. Reopening an existing file validates its size.
func OpenFile(path string, blockSize int, blocks int64) (*File, error) {
	if blockSize <= 0 || blocks < 0 {
		return nil, fmt.Errorf("store: bad geometry %dx%d", blockSize, blocks)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	want := int64(blockSize) * blocks
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	switch info.Size() {
	case want:
		// Reopened with matching geometry.
	case 0:
		if err := f.Truncate(want); err != nil {
			f.Close()
			return nil, err
		}
	default:
		f.Close()
		return nil, fmt.Errorf("store: %s is %d bytes, want %d (geometry mismatch)", path, info.Size(), want)
	}
	return &File{f: f, blockSize: blockSize, blocks: blocks}, nil
}

// BlockSize implements BlockStore.
func (s *File) BlockSize() int { return s.blockSize }

// NumBlocks implements BlockStore.
func (s *File) NumBlocks() int64 { return s.blocks }

func (s *File) check(b int64, buf []byte) error {
	if len(buf) != s.blockSize {
		return &SizeError{Got: len(buf), Want: s.blockSize}
	}
	if b < 0 || b >= s.blocks {
		return &RangeError{Block: b, Max: s.blocks}
	}
	return nil
}

// ReadBlock implements BlockStore.
func (s *File) ReadBlock(b int64, buf []byte) error {
	if err := s.check(b, buf); err != nil {
		return err
	}
	_, err := s.f.ReadAt(buf, b*int64(s.blockSize))
	return err
}

// WriteBlock implements BlockStore.
func (s *File) WriteBlock(b int64, data []byte) error {
	if err := s.check(b, data); err != nil {
		return err
	}
	_, err := s.f.WriteAt(data, b*int64(s.blockSize))
	return err
}

// Sync flushes the backing file to stable storage.
func (s *File) Sync() error { return s.f.Sync() }

// Close releases the backing file.
func (s *File) Close() error { return s.f.Close() }
