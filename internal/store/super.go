package store

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// The superblock is the first SuperSize bytes of every file-backed disk
// image: a checksummed header that lets reopen distinguish our images
// from foreign files, detect geometry lies, and tell a clean shutdown
// from a crash. Data blocks start at offset SuperSize.
//
// On-disk layout (big-endian), CRC32-C over bytes [0, superCRCOff):
//
//	off  0  magic   u32  "RXSB"
//	off  4  version u32
//	off  8  blockSize u32
//	off 12  flags   u32  (bit 0: clean shutdown)
//	off 16  blocks  u64
//	off 24  array UUID   [16]
//	off 40  device UUID  [16]
//	off 56  array epoch u64  (version >= 2)
//	off 64  crc32c  u32
//
// Version 1 headers lack the array-epoch field: their CRC sits at
// offset 56 and the epoch decodes as 0. They are still read (and
// re-encoded bit-identically), and upgrade to version 2 the next time
// the holder rewrites the superblock.
//
// The rest of the SuperSize region is zero. The whole header fits in
// one sector, so a torn superblock write is detected by the checksum
// rather than producing a silently half-updated header.
const (
	// SuperMagic is "RXSB" (RAID-x superblock).
	SuperMagic = 0x52585342
	// SuperVersion is the current format version.
	SuperVersion = 2
	// SuperSize is the reserved superblock region at the head of an
	// image file; block 0 lives at this offset.
	SuperSize = 4096

	superHeaderLen = 68
	superCRCOff    = 64
	superFlagClean = 1 << 0

	// Version-1 layout, kept readable.
	superV1HeaderLen = 60
	superV1CRCOff    = 56
)

// Superblock errors, distinguishable by errors.Is for callers that want
// to react differently to a foreign file versus a torn header.
var (
	// ErrForeignImage: the file exists but does not carry our magic —
	// it is not a raidx disk image (or predates the superblock format).
	ErrForeignImage = errors.New("store: not a raidx disk image (bad superblock magic)")
	// ErrCorruptSuperblock: magic matched but the checksum did not —
	// a torn superblock write or on-media corruption.
	ErrCorruptSuperblock = errors.New("store: superblock checksum mismatch (torn or corrupt)")
	// ErrGeometryMismatch: the image's recorded geometry differs from
	// what the caller asked to open.
	ErrGeometryMismatch = errors.New("store: geometry mismatch")
	// ErrTruncatedImage: the file is shorter than its superblock says.
	ErrTruncatedImage = errors.New("store: image truncated")
	// ErrEpochAhead: the image's recorded array epoch is NEWER than the
	// cluster epoch the caller opened with — the operator is assembling
	// an array from a stale cluster description (or mixing images across
	// rebalances). The reverse — an image whose epoch lags the cluster's
	// — is accepted: that is exactly the reopen-mid-migration case, and
	// the resume path delta-resyncs it.
	ErrEpochAhead = errors.New("store: image array epoch ahead of cluster epoch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Superblock is the decoded image header.
type Superblock struct {
	Version    uint32
	BlockSize  int
	Blocks     int64
	ArrayUUID  [16]byte
	DeviceUUID [16]byte
	// ArrayEpoch is the layout-epoch generation the array had reached
	// when this image last had its superblock written (0 on version-1
	// images and pre-rebalance arrays). An image may lag the cluster's
	// epoch — a node that was down through a rebalance — but must never
	// be ahead of it.
	ArrayEpoch uint64
	// Clean reports whether the image was closed through CloseClean:
	// false on a freshly opened (in-use) image and after a crash.
	Clean bool
}

// encode serializes the superblock header with its checksum, in the
// layout of sb.Version (so decode∘encode is the identity on both
// current and legacy headers).
func (sb *Superblock) encode() []byte {
	hlen, crcOff := superHeaderLen, superCRCOff
	if sb.Version == 1 {
		hlen, crcOff = superV1HeaderLen, superV1CRCOff
	}
	b := make([]byte, hlen)
	binary.BigEndian.PutUint32(b[0:], SuperMagic)
	binary.BigEndian.PutUint32(b[4:], sb.Version)
	binary.BigEndian.PutUint32(b[8:], uint32(sb.BlockSize))
	var flags uint32
	if sb.Clean {
		flags |= superFlagClean
	}
	binary.BigEndian.PutUint32(b[12:], flags)
	binary.BigEndian.PutUint64(b[16:], uint64(sb.Blocks))
	copy(b[24:40], sb.ArrayUUID[:])
	copy(b[40:56], sb.DeviceUUID[:])
	if sb.Version != 1 {
		binary.BigEndian.PutUint64(b[56:64], sb.ArrayEpoch)
	}
	binary.BigEndian.PutUint32(b[crcOff:], crc32.Checksum(b[:crcOff], castagnoli))
	return b
}

// decodeSuperblock validates and decodes a superblock header (current
// or version-1 layout).
func decodeSuperblock(b []byte) (Superblock, error) {
	if len(b) < superV1HeaderLen {
		return Superblock{}, fmt.Errorf("%w: %d-byte header", ErrForeignImage, len(b))
	}
	if binary.BigEndian.Uint32(b[0:4]) != SuperMagic {
		return Superblock{}, ErrForeignImage
	}
	version := binary.BigEndian.Uint32(b[4:8])
	crcOff := superCRCOff
	switch {
	case version == 1:
		crcOff = superV1CRCOff
	case version == SuperVersion:
		if len(b) < superHeaderLen {
			return Superblock{}, fmt.Errorf("%w: %d-byte v%d header", ErrCorruptSuperblock, len(b), version)
		}
	default:
		return Superblock{}, fmt.Errorf("store: superblock version %d not supported (max %d)", version, SuperVersion)
	}
	want := binary.BigEndian.Uint32(b[crcOff:])
	if crc32.Checksum(b[:crcOff], castagnoli) != want {
		return Superblock{}, ErrCorruptSuperblock
	}
	sb := Superblock{
		Version:   version,
		BlockSize: int(binary.BigEndian.Uint32(b[8:12])),
		Blocks:    int64(binary.BigEndian.Uint64(b[16:24])),
		Clean:     binary.BigEndian.Uint32(b[12:16])&superFlagClean != 0,
	}
	copy(sb.ArrayUUID[:], b[24:40])
	copy(sb.DeviceUUID[:], b[40:56])
	if version != 1 {
		sb.ArrayEpoch = binary.BigEndian.Uint64(b[56:64])
	}
	if sb.BlockSize <= 0 || sb.Blocks < 0 {
		return Superblock{}, fmt.Errorf("%w: superblock geometry %dx%d", ErrCorruptSuperblock, sb.BlockSize, sb.Blocks)
	}
	return sb, nil
}

// writeSuper writes the superblock header to f and issues the sync
// barrier, so the header transition is durable before the caller moves
// on (the in-use mark must hit disk before any data write; the clean
// mark must hit disk only after the data has).
func writeSuper(f VFile, sb *Superblock) error {
	if _, err := f.WriteAt(sb.encode(), 0); err != nil {
		return err
	}
	return f.Sync()
}

// InspectSuperblock reads an image's superblock without opening the
// store (and without marking it in use). raidxctl's `super` command and
// the crash harness use it to audit images at rest. The second return
// is the image file size in bytes.
func InspectSuperblock(fs FS, path string) (Superblock, int64, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return Superblock{}, 0, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return Superblock{}, 0, err
	}
	hdr := make([]byte, superHeaderLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return Superblock{}, size, fmt.Errorf("%w: %v", ErrForeignImage, err)
	}
	sb, err := decodeSuperblock(hdr)
	return sb, size, err
}

// newUUID fills a random (version 4) UUID.
func newUUID() (u [16]byte) {
	if _, err := rand.Read(u[:]); err != nil {
		panic("store: uuid entropy: " + err.Error())
	}
	u[6] = (u[6] & 0x0f) | 0x40
	u[8] = (u[8] & 0x3f) | 0x80
	return u
}

// UUIDString formats a UUID for display.
func UUIDString(u [16]byte) string {
	return fmt.Sprintf("%x-%x-%x-%x-%x", u[0:4], u[4:6], u[6:8], u[8:10], u[10:16])
}
