package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// openFault opens a File store at path through a fresh FaultFS over the
// real file system rooted in a temp dir.
func openFault(t *testing.T, blocks int64) (*FaultFS, *File, string) {
	t.Helper()
	ffs := NewFaultFS(OS)
	path := filepath.Join(t.TempDir(), "disk.img")
	s, err := OpenFileFS(ffs, path, 512, blocks, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ffs, s, path
}

func TestFaultFSCrashDropsUnsyncedWrites(t *testing.T) {
	ffs, s, path := openFault(t, 16)
	durable := bytes.Repeat([]byte{0xAA}, 512)
	volatile := bytes.Repeat([]byte{0xBB}, 512)
	if err := s.WriteBlock(1, durable); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock(2, volatile); err != nil {
		t.Fatal(err)
	}
	// Before the crash the process reads its own unsynced writes back.
	got := make([]byte, 512)
	if err := s.ReadBlock(2, got); err != nil || !bytes.Equal(got, volatile) {
		t.Fatalf("read-own-write: %v", err)
	}
	if ffs.UnsyncedBytes() == 0 {
		t.Fatal("volatile write not tracked")
	}

	ffs.Crash()
	if err := s.ReadBlock(1, got); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle: err = %v, want ErrCrashed", err)
	}

	s2, err := OpenFileFS(ffs, path, 512, 16, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.WasClean() {
		t.Fatal("crashed image reopened clean")
	}
	if err := s2.ReadBlock(1, got); err != nil || !bytes.Equal(got, durable) {
		t.Fatalf("synced block lost: %v", err)
	}
	if err := s2.ReadBlock(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("unsynced block survived the crash")
	}
}

func TestFaultFSSyncLies(t *testing.T) {
	ffs, s, path := openFault(t, 16)
	ffs.SetSyncLies(true)
	data := bytes.Repeat([]byte{0xCC}, 512)
	if err := s.WriteBlock(5, data); err != nil {
		t.Fatal(err)
	}
	// The lying sync reports success; the caller believes it is durable.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	ffs.Crash()
	ffs.SetSyncLies(false)
	s2, err := OpenFileFS(ffs, path, 512, 16, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := make([]byte, 512)
	if err := s2.ReadBlock(5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("data synced through a lying fsync survived the crash")
	}
}

func TestFaultFSCrashTorn(t *testing.T) {
	ffs := NewFaultFS(OS)
	path := filepath.Join(t.TempDir(), "torn.dat")
	f, err := ffs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xEE}, 100)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	// Make the create durable but not the write, then tear.
	if err := ffs.SyncDir(filepath.Dir(path)); err != nil {
		t.Fatal(err)
	}
	ffs.CrashTorn()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 50 || !bytes.Equal(raw, payload[:50]) {
		t.Fatalf("torn write left %d durable bytes, want the 50-byte prefix", len(raw))
	}
}

func TestFaultFSRenameNeedsDirSync(t *testing.T) {
	base := t.TempDir()
	ffs := NewFaultFS(OS)
	target := filepath.Join(base, "state.json")

	// First generation, fully durable via the atomic-write discipline.
	if err := WriteFileAtomic(ffs, target, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if ffs.PendingRenames() != 0 {
		t.Fatal("dir-synced rename still pending")
	}
	ffs.Crash()
	if raw, err := ReadFileFS(ffs, target); err != nil || string(raw) != "v1" {
		t.Fatalf("durable v1 lost: %q %v", raw, err)
	}

	// Second generation with a lying directory sync: the rename must
	// revert and the previous content must reappear intact.
	ffs.SetDirSyncLies(true)
	if err := WriteFileAtomic(ffs, target, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if ffs.PendingRenames() == 0 {
		t.Fatal("un-dir-synced rename not tracked")
	}
	ffs.Crash()
	ffs.SetDirSyncLies(false)
	raw, err := ReadFileFS(ffs, target)
	if err != nil || string(raw) != "v1" {
		t.Fatalf("after crashed replace: %q %v, want the old v1 back", raw, err)
	}
}

func TestFaultFSShortWrites(t *testing.T) {
	ffs, s, _ := openFault(t, 16)
	ffs.SetShortWrites(true)
	err := s.WriteBlock(0, bytes.Repeat([]byte{0x11}, 512))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
	ffs.SetShortWrites(false)
	// Only the first half landed in the cache; the tail reads as zero.
	got := make([]byte, 512)
	if err := s.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x11 || got[511] != 0 {
		t.Fatalf("short write recorded wrong: head %#x tail %#x", got[0], got[511])
	}
}

func TestFaultFSOpErrorInjection(t *testing.T) {
	ffs, s, _ := openFault(t, 16)
	boom := fmt.Errorf("injected EIO")
	ffs.SetOpError(FaultWrite, boom)
	if err := s.WriteBlock(0, make([]byte, 512)); !errors.Is(err, boom) {
		t.Fatalf("persistent injection: %v", err)
	}
	ffs.SetOpError(FaultWrite, nil)
	if err := s.WriteBlock(0, make([]byte, 512)); err != nil {
		t.Fatalf("disarmed injection still fires: %v", err)
	}

	// One-shot: exactly the 2nd next sync fails, then everything heals.
	ffs.FailNthOp(FaultSync, 2, boom)
	if err := s.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := s.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync 2: %v, want injected error", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync 3: %v", err)
	}
	if n := ffs.Counts(FaultSync); n < 3 {
		t.Fatalf("sync count = %d", n)
	}
}

// TestFaultFSAtomicSnapshotAlwaysWholeFile: under repeated crashes at
// every injection point, a reader after recovery sees either the old
// snapshot or the new one, never a torn mix — the property the intent
// log and repair checkpoints rely on.
func TestFaultFSAtomicSnapshotAlwaysWholeFile(t *testing.T) {
	base := t.TempDir()
	target := filepath.Join(base, "snap")
	old := bytes.Repeat([]byte{0xA0}, 100)
	new_ := bytes.Repeat([]byte{0xB1}, 300)

	for failAt := int64(1); failAt <= 8; failAt++ {
		for _, op := range []FaultOp{FaultWrite, FaultSync, FaultRename, FaultSyncDir} {
			ffs := NewFaultFS(OS)
			if err := WriteFileAtomic(ffs, target, old); err != nil {
				t.Fatal(err)
			}
			boom := fmt.Errorf("injected at %v/%d", op, failAt)
			ffs.FailNthOp(op, failAt, boom)
			err := WriteFileAtomic(ffs, target, new_)
			ffs.Crash()
			got, rerr := ReadFileFS(ffs, target)
			if rerr != nil {
				t.Fatalf("%v/%d: snapshot unreadable after crash: %v", op, failAt, rerr)
			}
			if !bytes.Equal(got, old) && !bytes.Equal(got, new_) {
				t.Fatalf("%v/%d (write err %v): torn snapshot, %d bytes", op, failAt, err, len(got))
			}
			os.Remove(target)
		}
	}
}
