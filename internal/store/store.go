// Package store provides the raw block storage that disks are built on.
// A BlockStore holds real bytes — every array engine in this repository
// moves actual data through these stores, so data integrity is checkable
// end to end (reads return exactly what was written, reconstruction
// really reconstructs, parity is really XOR-ed).
package store

import (
	"fmt"
	"sync"
)

// BlockStore is fixed-block-size random-access storage.
type BlockStore interface {
	// BlockSize reports the size of one block in bytes.
	BlockSize() int
	// NumBlocks reports the store capacity in blocks.
	NumBlocks() int64
	// ReadBlock fills buf (which must be exactly BlockSize bytes) with
	// block b. Unwritten blocks read as zeros.
	ReadBlock(b int64, buf []byte) error
	// WriteBlock stores data (exactly BlockSize bytes) as block b.
	WriteBlock(b int64, data []byte) error
}

// Blanker is implemented by stores that can erase themselves in place.
// disk.Replace blanks through it so that "install a fresh zeroed disk"
// actually destroys the old contents on the backing medium — replacing
// a file-backed store with a fresh in-memory one would only forget the
// data until the next restart.
type Blanker interface {
	// Blank zeroes the store's contents durably.
	Blank() error
}

// RangeError reports an out-of-range block access.
type RangeError struct {
	Block int64
	Max   int64
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("store: block %d out of range [0,%d)", e.Block, e.Max)
}

// SizeError reports a buffer whose length is not the block size.
type SizeError struct {
	Got  int
	Want int
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("store: buffer is %d bytes, want %d", e.Got, e.Want)
}

// Mem is an in-memory BlockStore. Blocks are allocated lazily on first
// write; unwritten blocks read as zeros. Mem is safe for concurrent use.
type Mem struct {
	mu        sync.RWMutex
	blockSize int
	blocks    []([]byte)
}

// NewMem creates an in-memory store with n blocks of blockSize bytes.
func NewMem(blockSize int, n int64) *Mem {
	if blockSize <= 0 {
		panic("store: block size must be positive")
	}
	if n < 0 {
		panic("store: negative block count")
	}
	return &Mem{blockSize: blockSize, blocks: make([][]byte, n)}
}

// BlockSize implements BlockStore.
func (m *Mem) BlockSize() int { return m.blockSize }

// NumBlocks implements BlockStore.
func (m *Mem) NumBlocks() int64 { return int64(len(m.blocks)) }

// ReadBlock implements BlockStore.
func (m *Mem) ReadBlock(b int64, buf []byte) error {
	if len(buf) != m.blockSize {
		return &SizeError{Got: len(buf), Want: m.blockSize}
	}
	if b < 0 || b >= int64(len(m.blocks)) {
		return &RangeError{Block: b, Max: int64(len(m.blocks))}
	}
	m.mu.RLock()
	src := m.blocks[b]
	m.mu.RUnlock()
	if src == nil {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, src)
	return nil
}

// WriteBlock implements BlockStore.
func (m *Mem) WriteBlock(b int64, data []byte) error {
	if len(data) != m.blockSize {
		return &SizeError{Got: len(data), Want: m.blockSize}
	}
	if b < 0 || b >= int64(len(m.blocks)) {
		return &RangeError{Block: b, Max: int64(len(m.blocks))}
	}
	m.mu.Lock()
	dst := m.blocks[b]
	if dst == nil {
		dst = make([]byte, m.blockSize)
		m.blocks[b] = dst
	}
	copy(dst, data)
	m.mu.Unlock()
	return nil
}

// Blank implements Blanker: every block reverts to reading as zeros.
func (m *Mem) Blank() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	clear(m.blocks)
	return nil
}

// AllocatedBlocks reports how many blocks have been written at least
// once (useful in tests and capacity accounting).
func (m *Mem) AllocatedBlocks() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, b := range m.blocks {
		if b != nil {
			n++
		}
	}
	return n
}
