package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FaultFS is a deterministic fault-injection FS, modeled on the layered
// VFS injectors of log-structured stores (rockyardkv's FaultInjectionFS
// is the direct exemplar). It wraps any base FS and enforces the real
// durability contract the OS only enforces when the power actually
// fails:
//
//   - Writes land in a volatile overlay (the "page cache") and reach
//     the base FS only at Sync. Crash drops everything unsynced.
//   - A crash can tear the most recent in-flight write: a prefix
//     becomes durable, the rest vanishes (CrashTorn).
//   - Sync can lie (SetSyncLies): it reports success while leaving the
//     data volatile — the firmware/VM-cache pathology.
//   - File creates and renames are volatile until SyncDir on the parent
//     directory, and SyncDir can lie too (SetDirSyncLies). Fsyncing a
//     file does NOT make its directory entry durable.
//   - Any operation kind can be made to fail persistently (SetOpError)
//     or exactly on its nth next call (FailNthOp), and short writes can
//     be injected (SetShortWrites).
//
// After Crash/CrashTorn every open handle is dead (ErrCrashed); reopen
// through the same FaultFS to see the surviving durable state, exactly
// as a restarted process would.
//
// All methods are safe for concurrent use; one mutex serializes the
// file system, which is plenty for tests.
type FaultFS struct {
	base FS

	mu       sync.Mutex
	gen      uint64
	overlays map[string][]writeRec
	creates  map[string]bool
	renames  []renameRec
	lastPath string // path holding the most recent unsynced write

	syncLies    bool
	dirSyncLies bool
	shortWrites bool
	errs        map[FaultOp]*inject
	counts      map[FaultOp]int64
}

// FaultOp names an operation kind for injection and counting.
type FaultOp uint8

const (
	FaultOpen FaultOp = iota
	FaultRead
	FaultWrite
	FaultSync
	FaultRename
	FaultRemove
	FaultSyncDir
	FaultTruncate
)

// ErrCrashed is returned by every operation on a handle that was open
// across a simulated crash.
var ErrCrashed = errors.New("store: file handle lost in simulated crash")

type writeRec struct {
	off  int64
	data []byte
}

type renameRec struct {
	oldPath, newPath string
	savedTarget      []byte // durable content newPath had (nil: none)
	targetExisted    bool
}

type inject struct {
	err     error
	after   int64 // >0: countdown to a one-shot failure; 0: every call
	oneShot bool
}

// NewFaultFS wraps base in a fault injector with no faults armed.
func NewFaultFS(base FS) *FaultFS {
	return &FaultFS{
		base:     base,
		overlays: make(map[string][]writeRec),
		creates:  make(map[string]bool),
		errs:     make(map[FaultOp]*inject),
		counts:   make(map[FaultOp]int64),
	}
}

// SetOpError arranges for every subsequent op of the given kind to fail
// with err; nil disarms it.
func (fs *FaultFS) SetOpError(op FaultOp, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err == nil {
		delete(fs.errs, op)
		return
	}
	fs.errs[op] = &inject{err: err}
}

// FailNthOp arranges for exactly the nth next op of the given kind
// (1 = the very next) to fail with err, then disarms itself.
func (fs *FaultFS) FailNthOp(op FaultOp, n int64, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.errs[op] = &inject{err: err, after: n, oneShot: true}
}

// SetSyncLies makes VFile.Sync report success without flushing: data
// stays volatile and a later crash loses it even though the caller was
// told it was durable.
func (fs *FaultFS) SetSyncLies(v bool) {
	fs.mu.Lock()
	fs.syncLies = v
	fs.mu.Unlock()
}

// SetDirSyncLies makes SyncDir report success without committing the
// directory's pending creates and renames.
func (fs *FaultFS) SetDirSyncLies(v bool) {
	fs.mu.Lock()
	fs.dirSyncLies = v
	fs.mu.Unlock()
}

// SetShortWrites makes every WriteAt record only the first half of its
// data and return io.ErrShortWrite — the torn-write anomaly observed at
// the op itself rather than at a crash.
func (fs *FaultFS) SetShortWrites(v bool) {
	fs.mu.Lock()
	fs.shortWrites = v
	fs.mu.Unlock()
}

// Counts reports how many operations of the given kind have been issued.
func (fs *FaultFS) Counts(op FaultOp) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.counts[op]
}

// UnsyncedBytes reports how much written data is currently volatile —
// what a crash right now would lose.
func (fs *FaultFS) UnsyncedBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for _, recs := range fs.overlays {
		for _, r := range recs {
			n += int64(len(r.data))
		}
	}
	return n
}

// PendingRenames reports how many renames are not yet made durable by a
// directory sync.
func (fs *FaultFS) PendingRenames() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.renames)
}

// Crash simulates a power cut: all unsynced writes vanish, un-dir-synced
// creates disappear, un-dir-synced renames revert, and every open handle
// dies. The durable state remains for subsequent reopens.
func (fs *FaultFS) Crash() { fs.crash(false) }

// CrashTorn is Crash, except the most recent unsynced write is torn: its
// first half becomes durable, the rest is lost — the partial-write
// anomaly recovery code must survive.
func (fs *FaultFS) CrashTorn() { fs.crash(true) }

// opErr counts op and returns the injected error, if one fires. Caller
// holds fs.mu.
func (fs *FaultFS) opErr(op FaultOp) error {
	fs.counts[op]++
	inj := fs.errs[op]
	if inj == nil {
		return nil
	}
	if inj.after > 0 {
		inj.after--
		if inj.after > 0 {
			return nil
		}
		err := inj.err
		if inj.oneShot {
			delete(fs.errs, op)
		}
		return err
	}
	return inj.err
}

// OpenFile implements FS. A file created here is volatile until its
// parent directory is synced.
func (fs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (VFile, error) {
	name = filepath.Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.opErr(FaultOpen); err != nil {
		return nil, err
	}
	existed := true
	if probe, err := fs.base.OpenFile(name, os.O_RDONLY, 0); err == nil {
		probe.Close()
	} else {
		existed = false
	}
	f, err := fs.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if !existed && flag&os.O_CREATE != 0 {
		fs.creates[name] = true
	}
	if flag&os.O_TRUNC != 0 {
		// Truncation discards the volatile overlay along with the bytes.
		delete(fs.overlays, name)
		if fs.lastPath == name {
			fs.lastPath = ""
		}
	}
	return &faultFile{fs: fs, base: f, path: name, gen: fs.gen}, nil
}

// Rename implements FS: effective immediately, durable only after
// SyncDir on the parent of newpath. The overlay (page cache) follows
// the file.
func (fs *FaultFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.opErr(FaultRename); err != nil {
		return err
	}
	rec := renameRec{oldPath: oldpath, newPath: newpath}
	if saved, err := readBaseFile(fs.base, newpath); err == nil {
		rec.savedTarget = saved
		rec.targetExisted = true
	}
	if err := fs.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	// The replaced target's cache dies with it; the source's moves along.
	delete(fs.overlays, newpath)
	if recs, ok := fs.overlays[oldpath]; ok {
		fs.overlays[newpath] = recs
		delete(fs.overlays, oldpath)
	}
	if fs.lastPath == oldpath {
		fs.lastPath = newpath
	}
	if fs.creates[oldpath] {
		delete(fs.creates, oldpath)
		fs.creates[newpath] = true
	}
	fs.renames = append(fs.renames, rec)
	return nil
}

// Remove implements FS.
func (fs *FaultFS) Remove(name string) error {
	name = filepath.Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.opErr(FaultRemove); err != nil {
		return err
	}
	if err := fs.base.Remove(name); err != nil {
		return err
	}
	delete(fs.overlays, name)
	delete(fs.creates, name)
	if fs.lastPath == name {
		fs.lastPath = ""
	}
	return nil
}

// MkdirAll implements FS.
func (fs *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return fs.base.MkdirAll(path, perm)
}

// SyncDir implements FS: commits the directory's pending creates and
// renames — unless it is lying.
func (fs *FaultFS) SyncDir(dir string) error {
	dir = filepath.Clean(dir)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.opErr(FaultSyncDir); err != nil {
		return err
	}
	if fs.dirSyncLies {
		return nil
	}
	for name := range fs.creates {
		if filepath.Dir(name) == dir {
			delete(fs.creates, name)
		}
	}
	kept := fs.renames[:0]
	for _, r := range fs.renames {
		if filepath.Dir(r.newPath) != dir {
			kept = append(kept, r)
		}
	}
	fs.renames = kept
	return fs.base.SyncDir(dir)
}

// crash implements Crash/CrashTorn. Everything here mutates only the
// durable (base) state; the volatile state is simply discarded.
func (fs *FaultFS) crash(torn bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.gen++
	if torn && fs.lastPath != "" {
		if recs := fs.overlays[fs.lastPath]; len(recs) > 0 {
			last := recs[len(recs)-1]
			half := last.data[:len(last.data)/2]
			if len(half) > 0 {
				writeBaseFile(fs.base, fs.lastPath, last.off, half)
			}
		}
	}
	// Revert un-dir-synced renames newest-first, tracking pending
	// creates back to the names they will wear after the revert.
	for i := len(fs.renames) - 1; i >= 0; i-- {
		r := fs.renames[i]
		fs.base.Rename(r.newPath, r.oldPath)
		if fs.creates[r.newPath] {
			delete(fs.creates, r.newPath)
			fs.creates[r.oldPath] = true
		}
		if r.targetExisted {
			restoreBaseFile(fs.base, r.newPath, r.savedTarget)
		}
	}
	// Un-dir-synced creates never had a durable directory entry.
	for name := range fs.creates {
		fs.base.Remove(name)
	}
	fs.renames = nil
	fs.creates = make(map[string]bool)
	fs.overlays = make(map[string][]writeRec)
	fs.lastPath = ""
}

// readBaseFile snapshots a base file's full content (for rename-undo).
func readBaseFile(base FS, path string) ([]byte, error) {
	return ReadFileFS(base, path)
}

// writeBaseFile applies bytes directly to the durable image.
func writeBaseFile(base FS, path string, off int64, data []byte) {
	f, err := base.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return
	}
	f.WriteAt(data, off)
	f.Sync()
	f.Close()
}

// restoreBaseFile recreates a file with the given durable content.
func restoreBaseFile(base FS, path string, content []byte) {
	f, err := base.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	if len(content) > 0 {
		f.WriteAt(content, 0)
	}
	f.Sync()
	f.Close()
}

// faultFile is one open handle through the injector.
type faultFile struct {
	fs   *FaultFS
	base VFile
	path string
	gen  uint64
}

func (f *faultFile) dead() bool { return f.gen != f.fs.gen }

// overlaySize reports the volatile logical size of f. fs.mu held.
func (f *faultFile) logicalSize() (int64, error) {
	size, err := f.base.Size()
	if err != nil {
		return 0, err
	}
	for _, r := range f.fs.overlays[f.path] {
		if end := r.off + int64(len(r.data)); end > size {
			size = end
		}
	}
	return size, nil
}

// ReadAt merges the durable bytes with the volatile overlay — a process
// that wrote without syncing still reads its own writes back.
func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.dead() {
		return 0, ErrCrashed
	}
	if err := f.fs.opErr(FaultRead); err != nil {
		return 0, err
	}
	n, err := f.base.ReadAt(p, off)
	if err != nil && err != io.EOF {
		return n, err
	}
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
	for _, r := range f.fs.overlays[f.path] {
		lo, hi := r.off, r.off+int64(len(r.data))
		if hi <= off || lo >= off+int64(len(p)) {
			continue
		}
		s, d := int64(0), lo-off
		if d < 0 {
			s, d = -d, 0
		}
		copy(p[d:], r.data[s:min64(int64(len(r.data)), s+int64(len(p))-d)])
	}
	size, serr := f.logicalSize()
	if serr != nil {
		return 0, serr
	}
	if off >= size {
		return 0, io.EOF
	}
	if size-off < int64(len(p)) {
		return int(size - off), io.EOF
	}
	return len(p), nil
}

// WriteAt records the write in the volatile overlay. With short writes
// armed, only the first half is recorded and io.ErrShortWrite returned.
func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.dead() {
		return 0, ErrCrashed
	}
	if err := f.fs.opErr(FaultWrite); err != nil {
		return 0, err
	}
	data := append([]byte(nil), p...)
	short := false
	if f.fs.shortWrites && len(p) > 1 {
		data = data[:len(data)/2]
		short = true
	}
	f.fs.overlays[f.path] = append(f.fs.overlays[f.path], writeRec{off: off, data: data})
	f.fs.lastPath = f.path
	if short {
		return len(data), io.ErrShortWrite
	}
	return len(p), nil
}

// Truncate passes through to the durable image immediately (it is only
// used at format time, before any data is at risk) and trims the
// overlay to the new size.
func (f *faultFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.dead() {
		return ErrCrashed
	}
	if err := f.fs.opErr(FaultTruncate); err != nil {
		return err
	}
	if err := f.base.Truncate(size); err != nil {
		return err
	}
	recs := f.fs.overlays[f.path][:0]
	for _, r := range f.fs.overlays[f.path] {
		if r.off >= size {
			continue
		}
		if end := r.off + int64(len(r.data)); end > size {
			r.data = r.data[:size-r.off]
		}
		recs = append(recs, r)
	}
	if len(recs) == 0 {
		delete(f.fs.overlays, f.path)
	} else {
		f.fs.overlays[f.path] = recs
	}
	return nil
}

func (f *faultFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.dead() {
		return 0, ErrCrashed
	}
	return f.logicalSize()
}

// Sync flushes f's overlay to the durable image — unless the sync has
// been armed to fail or to lie.
func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.dead() {
		return ErrCrashed
	}
	if err := f.fs.opErr(FaultSync); err != nil {
		return err
	}
	if f.fs.syncLies {
		return nil
	}
	for _, r := range f.fs.overlays[f.path] {
		if _, err := f.base.WriteAt(r.data, r.off); err != nil {
			return err
		}
	}
	delete(f.fs.overlays, f.path)
	if f.fs.lastPath == f.path {
		f.fs.lastPath = ""
	}
	return f.base.Sync()
}

// Close closes the handle. The overlay survives — the page cache does
// not drop dirty data when a process closes a file.
func (f *faultFile) Close() error {
	f.fs.mu.Lock()
	dead := f.dead()
	f.fs.mu.Unlock()
	if dead {
		return nil
	}
	return f.base.Close()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
