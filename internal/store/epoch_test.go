package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestFileEpochLifecycle: the epoch stamps at format, raises
// monotonically via SetEpoch, persists across reopen, and gates the
// ahead/behind cases the right way around.
func TestFileEpochLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "disk.img")
	s, err := OpenFileFS(OS, path, 512, 16, FileOptions{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("formatted epoch = %d, want 1", got)
	}
	if err := s.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetEpoch(2); err != nil { // rollback attempt: ignored
		t.Fatal(err)
	}
	if err := s.CloseClean(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the cluster AHEAD of the image: the mid-migration /
	// missed-rebalance case — must open, preserving the lagging record.
	s, err = OpenFileFS(OS, path, 512, 16, FileOptions{Epoch: 7})
	if err != nil {
		t.Fatalf("lagging image refused: %v", err)
	}
	if got := s.Epoch(); got != 3 {
		t.Fatalf("epoch after lagging reopen = %d, want 3", got)
	}
	if !s.WasClean() {
		t.Fatal("clean close lost")
	}
	if err := s.CloseClean(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the cluster BEHIND the image: typed refusal.
	if _, err := OpenFileFS(OS, path, 512, 16, FileOptions{Epoch: 2}); !errors.Is(err, ErrEpochAhead) {
		t.Fatalf("epoch-ahead image opened: %v", err)
	}
	// Zero epoch skips the check (legacy callers).
	s, err = OpenFileFS(OS, path, 512, 16, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 3 {
		t.Fatalf("epoch after unchecked reopen = %d, want 3", got)
	}
	s.CloseClean()

	sb, _, err := InspectSuperblock(OS, path)
	if err != nil || sb.ArrayEpoch != 3 || sb.Version != SuperVersion {
		t.Fatalf("inspect: %+v, %v", sb, err)
	}
}

// TestFileEpochV1Upgrade: a version-1 image (no epoch field) opens,
// reads as epoch 0, and upgrades to the current header version on the
// open's in-use superblock write.
func TestFileEpochV1Upgrade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v1.img")
	// Hand-build a version-1 image: legacy header plus full data region.
	sb := Superblock{Version: 1, BlockSize: 512, Blocks: 16, DeviceUUID: newUUID(), Clean: true}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(sb.encode(), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(SuperSize + 512*16); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenFileFS(OS, path, 512, 16, FileOptions{Epoch: 5})
	if err != nil {
		t.Fatalf("v1 image refused: %v", err)
	}
	if !s.WasClean() {
		t.Fatal("v1 clean flag lost")
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("v1 epoch = %d, want 0", got)
	}
	if err := s.SetEpoch(5); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseClean(); err != nil {
		t.Fatal(err)
	}
	got, _, err := InspectSuperblock(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != SuperVersion || got.ArrayEpoch != 5 || !got.Clean {
		t.Fatalf("after upgrade: %+v", got)
	}
	if got.DeviceUUID != sb.DeviceUUID {
		t.Fatal("upgrade changed the device identity")
	}
}
