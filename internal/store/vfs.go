package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the small virtual file system the durable stores are built on.
// It exists so every durability claim in this repository is testable:
// the OS implementation talks to the real kernel, while FaultFS wraps
// any FS and injects torn writes, lying fsyncs, crash-lost data, and
// rename-durability anomalies deterministically.
//
// Durability contract (matching POSIX, and enforced by FaultFS):
//
//   - WriteAt data is volatile until VFile.Sync returns.
//   - A created file or a Rename is volatile until SyncDir on the
//     parent directory returns — fsyncing the file alone does not make
//     its directory entry durable.
//   - A crash may tear the most recent in-flight write (a prefix lands,
//     the rest does not).
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (VFile, error)
	// Rename atomically replaces newpath with oldpath. Durable only
	// after SyncDir on the parent.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates the directory path and its parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir flushes the directory entries of dir — the barrier that
	// makes prior creates and renames in dir durable.
	SyncDir(dir string) error
}

// VFile is one open file: positional I/O plus the sync barrier.
type VFile interface {
	io.ReaderAt
	io.WriterAt
	// Truncate changes the file size (extensions read as zeros).
	Truncate(size int64) error
	// Size reports the current file size.
	Size() (int64, error)
	// Sync flushes all buffered writes to stable storage.
	Sync() error
	Close() error
}

// OS is the real file system.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (VFile, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is unsupported on some file systems; a sync error
	// on a directory handle is still worth surfacing — the atomic-write
	// discipline depends on it.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

type osFile struct{ f *os.File }

func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Close() error                             { return o.f.Close() }

func (o osFile) Size() (int64, error) {
	info, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// ReadFileFS reads the whole of path through fs. A missing file returns
// os.ErrNotExist (wrapped by the FS implementation).
func ReadFileFS(fs FS, path string) ([]byte, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	n, err := f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return buf[:n], nil
}

// WriteFileAtomic durably replaces path with data using the full
// crash-safe discipline: write to a temp file, fsync it, rename over
// path, fsync the directory. After a crash, readers see either the old
// contents or the new contents, never a mixture or a torn tail.
func WriteFileAtomic(fs FS, path string, data []byte) error {
	tmp := path + ".tmp"
	// A stale temp file from a previous crash is garbage; drop it.
	_ = fs.Remove(tmp)
	f, err := fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}
