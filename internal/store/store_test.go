package store

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMemReadUnwrittenIsZero(t *testing.T) {
	m := NewMem(16, 4)
	buf := bytes.Repeat([]byte{0xff}, 16)
	if err := m.ReadBlock(2, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestMemWriteReadRoundTrip(t *testing.T) {
	m := NewMem(8, 10)
	data := []byte("abcdefgh")
	if err := m.WriteBlock(7, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := m.ReadBlock(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestMemWriteDoesNotAliasCallerBuffer(t *testing.T) {
	m := NewMem(4, 2)
	data := []byte{1, 2, 3, 4}
	if err := m.WriteBlock(0, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99 // mutate the caller's buffer after the write
	got := make([]byte, 4)
	if err := m.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("store aliased caller buffer: got[0] = %d, want 1", got[0])
	}
}

func TestMemRangeErrors(t *testing.T) {
	m := NewMem(4, 2)
	buf := make([]byte, 4)
	var re *RangeError
	if err := m.ReadBlock(2, buf); !errors.As(err, &re) {
		t.Fatalf("read block 2: got %v, want RangeError", err)
	}
	if err := m.WriteBlock(-1, buf); !errors.As(err, &re) {
		t.Fatalf("write block -1: got %v, want RangeError", err)
	}
}

func TestMemSizeErrors(t *testing.T) {
	m := NewMem(4, 2)
	var se *SizeError
	if err := m.ReadBlock(0, make([]byte, 3)); !errors.As(err, &se) {
		t.Fatalf("short read buf: got %v, want SizeError", err)
	}
	if err := m.WriteBlock(0, make([]byte, 5)); !errors.As(err, &se) {
		t.Fatalf("long write buf: got %v, want SizeError", err)
	}
}

func TestMemAllocatedBlocks(t *testing.T) {
	m := NewMem(4, 8)
	if m.AllocatedBlocks() != 0 {
		t.Fatalf("fresh store allocated = %d, want 0", m.AllocatedBlocks())
	}
	buf := make([]byte, 4)
	for _, b := range []int64{1, 3, 3} {
		if err := m.WriteBlock(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	if m.AllocatedBlocks() != 2 {
		t.Fatalf("allocated = %d, want 2", m.AllocatedBlocks())
	}
}

// Property: for any sequence of writes, reading any block returns the
// last value written to it (or zeros).
func TestMemLastWriteWinsProperty(t *testing.T) {
	const blocks = 16
	f := func(ops []struct {
		Block uint8
		Val   uint8
	}) bool {
		m := NewMem(4, blocks)
		last := map[int64]uint8{}
		for _, op := range ops {
			b := int64(op.Block % blocks)
			data := bytes.Repeat([]byte{op.Val}, 4)
			if err := m.WriteBlock(b, data); err != nil {
				return false
			}
			last[b] = op.Val
		}
		for b := int64(0); b < blocks; b++ {
			got := make([]byte, 4)
			if err := m.ReadBlock(b, got); err != nil {
				return false
			}
			want := bytes.Repeat([]byte{last[b]}, 4)
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
