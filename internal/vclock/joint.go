package vclock

import "time"

// UseJoint serves one request that must hold a server on every listed
// resource for the same interval — the model used for a network transfer,
// which occupies the sender's transmit NIC and the receiver's receive NIC
// simultaneously. Service starts when all resources have a free server,
// and the caller sleeps until it completes. It returns the start time.
func UseJoint(p *Proc, d time.Duration, rs ...*Resource) time.Duration {
	start := ReserveJoint(p.Sim(), d, rs...)
	p.SleepUntil(start + d)
	return start
}

// ReserveJoint reserves one server on every listed resource for the same
// interval without blocking the caller (background transfers). It
// returns the start time of the reserved interval.
func ReserveJoint(s *Sim, d time.Duration, rs ...*Resource) time.Duration {
	if d < 0 {
		d = 0
	}
	start := s.now
	idx := make([]int, len(rs))
	for k, r := range rs {
		i := r.earliest()
		idx[k] = i
		if r.free[i] > start {
			start = r.free[i]
		}
	}
	for k, r := range rs {
		r.free[idx[k]] = start + d
		r.busy += d
		r.ops++
	}
	return start
}
