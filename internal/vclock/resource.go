package vclock

import (
	"fmt"
	"time"
)

// Resource models a FCFS service center with a fixed number of servers
// (capacity), such as a disk arm, a NIC direction, or a CPU. Requests
// are served in the order they arrive; each request occupies one server
// for its service duration.
//
// Use charges the calling process (it sleeps for queueing delay plus
// service time). Reserve charges the resource without blocking the
// caller, modelling background work such as delayed mirror writes: the
// resource stays busy and later foreground requests queue behind the
// reservation, but the reserving process continues immediately.
type Resource struct {
	s    *Sim
	name string
	// free[i] is the virtual time at which server i becomes idle.
	free []time.Duration
	// busy accumulates total service time for utilization reporting.
	busy time.Duration
	// ops counts requests (Use + Reserve).
	ops int64
}

// NewResource creates a resource with the given number of parallel
// servers. Capacity must be at least 1.
func NewResource(s *Sim, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("vclock: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{s: s, name: name, free: make([]time.Duration, capacity)}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// earliest returns the index of the server that frees up first.
func (r *Resource) earliest() int {
	best := 0
	for i := 1; i < len(r.free); i++ {
		if r.free[i] < r.free[best] {
			best = i
		}
	}
	return best
}

// Use blocks the process until a server is available, then holds it for
// d. It returns the virtual time at which service started (after any
// queueing delay).
func (r *Resource) Use(p *Proc, d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	i := r.earliest()
	start := r.free[i]
	if now := r.s.now; start < now {
		start = now
	}
	r.free[i] = start + d
	r.busy += d
	r.ops++
	p.SleepUntil(start + d)
	return start
}

// Reserve occupies a server for d without blocking the caller. The work
// is queued FCFS exactly as Use would queue it; subsequent requests wait
// behind it. It returns the time at which the reserved work will finish.
func (r *Resource) Reserve(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	i := r.earliest()
	start := r.free[i]
	if now := r.s.now; start < now {
		start = now
	}
	r.free[i] = start + d
	r.busy += d
	r.ops++
	return start + d
}

// DrainTime reports the virtual time at which all queued and reserved
// work completes.
func (r *Resource) DrainTime() time.Duration {
	t := r.free[0]
	for _, f := range r.free[1:] {
		if f > t {
			t = f
		}
	}
	if now := r.s.now; t < now {
		t = now
	}
	return t
}

// Drain blocks the process until all currently queued work (including
// reservations) has completed. Work enqueued while draining extends the
// wait.
func (r *Resource) Drain(p *Proc) {
	for {
		t := r.DrainTime()
		if t <= p.Now() {
			return
		}
		p.SleepUntil(t)
	}
}

// Backlog reports how long a request arriving now would wait before
// service begins (the earliest server's remaining queue).
func (r *Resource) Backlog() time.Duration {
	free := r.free[r.earliest()]
	if free <= r.s.now {
		return 0
	}
	return free - r.s.now
}

// BusyTime reports accumulated service time across all servers.
func (r *Resource) BusyTime() time.Duration { return r.busy }

// Ops reports the number of requests served or reserved.
func (r *Resource) Ops() int64 { return r.ops }

// Utilization reports busy time divided by (elapsed time x capacity),
// using the simulator's current time as the window end.
func (r *Resource) Utilization() float64 {
	elapsed := r.s.now
	if elapsed <= 0 {
		return 0
	}
	return float64(r.busy) / (float64(elapsed) * float64(len(r.free)))
}

// Gate is a wait/notify point: processes park on Wait until another
// process calls Signal (wake one) or Broadcast (wake all).
type Gate struct {
	s       *Sim
	name    string
	waiters []*Proc
}

// NewGate creates a gate owned by s. The name appears in deadlock
// diagnostics.
func NewGate(s *Sim, name string) *Gate {
	return &Gate{s: s, name: name}
}

// Wait parks the calling process until signalled.
func (g *Gate) Wait(p *Proc) {
	g.waiters = append(g.waiters, p)
	p.park("gate:" + g.name)
}

// Signal wakes the longest-waiting process, if any, at the current time.
// It reports whether a process was woken.
func (g *Gate) Signal() bool {
	if len(g.waiters) == 0 {
		return false
	}
	p := g.waiters[0]
	g.waiters = g.waiters[1:]
	g.s.schedule(g.s.now, p)
	return true
}

// Broadcast wakes all waiting processes at the current time and returns
// how many were woken.
func (g *Gate) Broadcast() int {
	n := len(g.waiters)
	for _, p := range g.waiters {
		g.s.schedule(g.s.now, p)
	}
	g.waiters = nil
	return n
}

// Waiting reports the number of parked processes.
func (g *Gate) Waiting() int { return len(g.waiters) }

// Barrier synchronizes a fixed party of processes, mirroring the
// MPI_Barrier() coordination the paper's benchmark clients use. The
// barrier is reusable: after all n processes arrive, it resets for the
// next round.
type Barrier struct {
	n       int
	arrived int
	gate    *Gate
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(s *Sim, name string, n int) *Barrier {
	if n < 1 {
		panic("vclock: barrier party size < 1")
	}
	return &Barrier{n: n, gate: NewGate(s, "barrier:"+name)}
}

// Wait blocks until all n parties have called Wait for the current
// round.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gate.Broadcast()
		return
	}
	b.gate.Wait(p)
}

// Mutex is a FCFS mutual-exclusion lock for simulated processes.
type Mutex struct {
	held bool
	gate *Gate
}

// NewMutex creates an unlocked mutex.
func NewMutex(s *Sim, name string) *Mutex {
	return &Mutex{gate: NewGate(s, "mutex:"+name)}
}

// Lock acquires the mutex, parking the process while it is held.
func (m *Mutex) Lock(p *Proc) {
	for m.held {
		m.gate.Wait(p)
	}
	m.held = true
}

// Unlock releases the mutex and wakes one waiter.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("vclock: unlock of unlocked mutex")
	}
	m.held = false
	m.gate.Signal()
}
