package vclock

import "context"

type ctxKey struct{}

// With returns a context carrying the simulated process p. Components
// that can run both in real time and in virtual time (disks, transports,
// array engines) extract the process with From to decide which clock to
// charge.
func With(ctx context.Context, p *Proc) context.Context {
	return context.WithValue(ctx, ctxKey{}, p)
}

// From extracts the simulated process from ctx, if any.
func From(ctx context.Context) (*Proc, bool) {
	p, ok := ctx.Value(ctxKey{}).(*Proc)
	return p, ok
}
