package vclock

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures the simulator's event rate: one
// process sleeping b.N times.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures FCFS queueing with 16 processes
// sharing one resource.
func BenchmarkResourceContention(b *testing.B) {
	s := New()
	r := NewResource(s, "disk", 1)
	per := b.N/16 + 1
	for i := 0; i < 16; i++ {
		s.Spawn("c", func(p *Proc) {
			for j := 0; j < per; j++ {
				r.Use(p, time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkForkJoin measures Spawn+Gate fan-out/fan-in cost.
func BenchmarkForkJoin(b *testing.B) {
	s := New()
	s.Spawn("parent", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			gate := NewGate(s, "join")
			remaining := 4
			for c := 0; c < 4; c++ {
				s.Spawn("child", func(cp *Proc) {
					remaining--
					if remaining == 0 {
						gate.Broadcast()
					}
				})
			}
			gate.Wait(p)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
