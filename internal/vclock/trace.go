package vclock

import (
	"fmt"
	"strings"
	"time"
)

// TraceKind classifies trace events.
type TraceKind uint8

// Trace event kinds.
const (
	TraceResume TraceKind = iota // a process was given the CPU
	TraceSleep                   // a process scheduled a wakeup
	TracePark                    // a process parked on a gate
	TraceFinish                  // a process finished
)

func (k TraceKind) String() string {
	switch k {
	case TraceResume:
		return "resume"
	case TraceSleep:
		return "sleep"
	case TracePark:
		return "park"
	case TraceFinish:
		return "finish"
	}
	return "?"
}

// TraceEvent is one recorded scheduler event.
type TraceEvent struct {
	At    time.Duration
	Kind  TraceKind
	Proc  string
	Extra string
}

func (e TraceEvent) String() string {
	s := fmt.Sprintf("%12v %-7s %s", e.At, e.Kind, e.Proc)
	if e.Extra != "" {
		s += " (" + e.Extra + ")"
	}
	return s
}

// Trace is a bounded ring buffer of scheduler events, attached to a
// simulator with EnableTrace. It exists for debugging simulations: when
// a benchmark behaves unexpectedly, the trace shows exactly which
// process ran when and where everyone parked.
type Trace struct {
	cap    int
	events []TraceEvent
	start  int
	total  int64
}

// EnableTrace attaches a ring buffer of capacity n events and returns
// it. Must be called before Run.
func (s *Sim) EnableTrace(n int) *Trace {
	if n < 1 {
		n = 1024
	}
	s.trace = &Trace{cap: n}
	return s.trace
}

func (t *Trace) add(ev TraceEvent) {
	if t == nil {
		return
	}
	t.total++
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.start] = ev
	t.start = (t.start + 1) % t.cap
}

// Total reports how many events were recorded (including evicted ones).
func (t *Trace) Total() int64 { return t.total }

// Events returns the retained events in order.
func (t *Trace) Events() []TraceEvent {
	out := make([]TraceEvent, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Dump renders the retained events, newest last.
func (t *Trace) Dump() string {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
