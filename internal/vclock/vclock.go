// Package vclock implements a deterministic discrete-event simulation
// clock with cooperative processes, FCFS resources, gates, and barriers.
//
// The simulator reproduces the timing behaviour of the USC Trojans
// cluster testbed (disks, NICs, CPUs) without real hardware: client
// workloads run as Procs, and every disk or network operation charges
// virtual time on a Resource. Exactly one Proc executes at any instant,
// and wakeups are ordered by (time, sequence number), so every run is
// bit-for-bit reproducible.
//
// A Proc is backed by a goroutine, but control is handed off explicitly:
// the scheduler resumes one Proc, which runs until it sleeps, parks, or
// finishes, then control returns to the scheduler. Because only one Proc
// runs at a time, simulation state needs no locking.
package vclock

import (
	"fmt"
	"sort"
	"time"
)

// event is a scheduled wakeup for a parked Proc.
type event struct {
	at  time.Duration
	seq uint64
	p   *Proc
}

// Sim is a discrete-event simulator instance. Create one with New, add
// processes with Spawn, and execute them with Run.
type Sim struct {
	now     time.Duration
	seq     uint64
	heap    []event
	yield   chan struct{}
	live    int
	running *Proc
	parked  map[*Proc]string
	started bool
	trace   *Trace
}

// New returns an empty simulator positioned at virtual time zero.
func New() *Sim {
	return &Sim{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]string),
	}
}

// Now reports the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Proc is a simulated process. All methods must be called from within
// the process's own function body (they suspend the calling goroutine).
type Proc struct {
	s      *Sim
	name   string
	resume chan struct{}
	done   bool
}

// Name returns the name given to Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator that owns this process.
func (p *Proc) Sim() *Sim { return p.s }

// Now reports the current virtual time.
func (p *Proc) Now() time.Duration { return p.s.now }

// Spawn registers fn as a new process. It may be called before Run or
// from inside a running process; the new process starts at the current
// virtual time, after the caller next yields.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{s: s, name: name, resume: make(chan struct{})}
	s.live++
	s.schedule(s.now, p)
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		s.live--
		s.running = nil
		s.trace.add(TraceEvent{At: s.now, Kind: TraceFinish, Proc: p.name})
		s.yield <- struct{}{}
	}()
	return p
}

// schedule enqueues a wakeup for p at time at.
func (s *Sim) schedule(at time.Duration, p *Proc) {
	s.seq++
	ev := event{at: at, seq: s.seq, p: p}
	s.heap = append(s.heap, ev)
	s.up(len(s.heap) - 1)
}

func (s *Sim) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Sim) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s.less(l, small) {
			small = l
		}
		if r < n && s.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		s.heap[i], s.heap[small] = s.heap[small], s.heap[i]
		i = small
	}
}

func (s *Sim) less(i, j int) bool {
	if s.heap[i].at != s.heap[j].at {
		return s.heap[i].at < s.heap[j].at
	}
	return s.heap[i].seq < s.heap[j].seq
}

func (s *Sim) pop() event {
	ev := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	if last > 0 {
		s.down(0)
	}
	return ev
}

// Run executes the simulation until every process has finished. It
// returns a DeadlockError if processes remain parked with no pending
// wakeups (for example, a Gate.Wait that is never signalled).
func (s *Sim) Run() error {
	if s.started {
		return fmt.Errorf("vclock: Run called twice")
	}
	s.started = true
	for {
		if len(s.heap) == 0 {
			if s.live == 0 {
				return nil
			}
			return s.deadlock()
		}
		ev := s.pop()
		if ev.at < s.now {
			panic("vclock: time went backwards")
		}
		s.now = ev.at
		s.running = ev.p
		delete(s.parked, ev.p)
		s.trace.add(TraceEvent{At: s.now, Kind: TraceResume, Proc: ev.p.name})
		ev.p.resume <- struct{}{}
		<-s.yield
	}
}

func (s *Sim) deadlock() error {
	var names []string
	for p, where := range s.parked {
		names = append(names, fmt.Sprintf("%s (parked at %s)", p.name, where))
	}
	sort.Strings(names)
	return &DeadlockError{Now: s.now, Procs: names}
}

// DeadlockError reports that Run stopped with live processes parked and
// no scheduled wakeups.
type DeadlockError struct {
	Now   time.Duration
	Procs []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("vclock: deadlock at t=%v: %d process(es) parked: %v", e.Now, len(e.Procs), e.Procs)
}

// Sleep suspends the process for d of virtual time. Negative durations
// are treated as zero; Sleep(0) yields to other runnable processes at
// the same timestamp.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.s.trace.add(TraceEvent{At: p.s.now, Kind: TraceSleep, Proc: p.name, Extra: d.String()})
	p.s.schedule(p.s.now+d, p)
	p.s.running = nil
	p.s.yield <- struct{}{}
	<-p.resume
}

// SleepUntil suspends the process until virtual time t (a no-op if t is
// in the past).
func (p *Proc) SleepUntil(t time.Duration) {
	p.Sleep(t - p.s.now)
}

// Yield lets other processes scheduled at the same instant run.
func (p *Proc) Yield() { p.Sleep(0) }

// park suspends the process indefinitely; some other process must wake
// it via Gate or Barrier. where is used for deadlock diagnostics.
func (p *Proc) park(where string) {
	p.s.trace.add(TraceEvent{At: p.s.now, Kind: TracePark, Proc: p.name, Extra: where})
	p.s.parked[p] = where
	p.s.running = nil
	p.s.yield <- struct{}{}
	<-p.resume
}
