package vclock

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var at time.Duration
	s.Spawn("a", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", at)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("sim ended at %v, want 5ms", s.Now())
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	s := New()
	s.Spawn("a", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	s := New()
	var order []string
	for _, n := range []string{"a", "b", "c"} {
		n := n
		s.Spawn(n, func(p *Proc) {
			for i := 0; i < 3; i++ {
				order = append(order, fmt.Sprintf("%s%d@%v", n, i, p.Now()))
				p.Sleep(time.Millisecond)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"a0@0s", "b0@0s", "c0@0s",
		"a1@1ms", "b1@1ms", "c1@1ms",
		"a2@2ms", "b2@2ms", "c2@2ms",
	}
	if len(order) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, order[i], want[i], order)
		}
	}
}

func TestSpawnFromWithinProcess(t *testing.T) {
	s := New()
	var childRan bool
	var childStart time.Duration
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		p.Sim().Spawn("child", func(c *Proc) {
			childStart = c.Now()
			childRan = true
		})
		p.Sleep(time.Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
	if childStart != 2*time.Millisecond {
		t.Fatalf("child started at %v, want 2ms", childStart)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	g := NewGate(s, "never")
	s.Spawn("stuck", func(p *Proc) {
		g.Wait(p)
	})
	err := s.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(dl.Procs) != 1 {
		t.Fatalf("deadlock names = %v, want one entry", dl.Procs)
	}
}

func TestRunTwiceFails(t *testing.T) {
	s := New()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

func TestResourceFCFSQueueing(t *testing.T) {
	s := New()
	r := NewResource(s, "disk", 1)
	ends := map[string]time.Duration{}
	s.Spawn("a", func(p *Proc) {
		r.Use(p, 10*time.Millisecond)
		ends["a"] = p.Now()
	})
	s.Spawn("b", func(p *Proc) {
		p.Sleep(time.Millisecond) // arrives second
		r.Use(p, 10*time.Millisecond)
		ends["b"] = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ends["a"] != 10*time.Millisecond {
		t.Errorf("a finished at %v, want 10ms", ends["a"])
	}
	if ends["b"] != 20*time.Millisecond {
		t.Errorf("b finished at %v, want 20ms (queued behind a)", ends["b"])
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	s := New()
	r := NewResource(s, "nic", 2)
	ends := make([]time.Duration, 3)
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			ends[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run together, the third queues behind the first free server.
	if ends[0] != 10*time.Millisecond || ends[1] != 10*time.Millisecond {
		t.Errorf("first two finished at %v,%v, want 10ms,10ms", ends[0], ends[1])
	}
	if ends[2] != 20*time.Millisecond {
		t.Errorf("third finished at %v, want 20ms", ends[2])
	}
}

func TestReserveDelaysForegroundWork(t *testing.T) {
	s := New()
	r := NewResource(s, "disk", 1)
	var fgEnd, reserveEnd time.Duration
	s.Spawn("bg-then-fg", func(p *Proc) {
		reserveEnd = r.Reserve(30 * time.Millisecond) // background write
		if p.Now() != 0 {
			t.Errorf("Reserve blocked the caller until %v", p.Now())
		}
		r.Use(p, 10*time.Millisecond) // foreground op queues behind it
		fgEnd = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if reserveEnd != 30*time.Millisecond {
		t.Errorf("reservation completes at %v, want 30ms", reserveEnd)
	}
	if fgEnd != 40*time.Millisecond {
		t.Errorf("foreground op finished at %v, want 40ms", fgEnd)
	}
}

func TestDrainWaitsForReservations(t *testing.T) {
	s := New()
	r := NewResource(s, "disk", 1)
	var drained time.Duration
	s.Spawn("a", func(p *Proc) {
		r.Reserve(25 * time.Millisecond)
		r.Drain(p)
		drained = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if drained != 25*time.Millisecond {
		t.Fatalf("drained at %v, want 25ms", drained)
	}
}

func TestDrainWithNoWorkReturnsImmediately(t *testing.T) {
	s := New()
	r := NewResource(s, "disk", 1)
	s.Spawn("a", func(p *Proc) {
		r.Drain(p)
		if p.Now() != 0 {
			t.Errorf("empty drain advanced to %v", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceStats(t *testing.T) {
	s := New()
	r := NewResource(s, "disk", 1)
	s.Spawn("a", func(p *Proc) {
		r.Use(p, 10*time.Millisecond)
		p.Sleep(10 * time.Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if r.BusyTime() != 10*time.Millisecond {
		t.Errorf("busy = %v, want 10ms", r.BusyTime())
	}
	if r.Ops() != 1 {
		t.Errorf("ops = %d, want 1", r.Ops())
	}
	if got := r.Utilization(); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
}

func TestGateSignalWakesOne(t *testing.T) {
	s := New()
	g := NewGate(s, "g")
	var woken []string
	for _, n := range []string{"w1", "w2"} {
		n := n
		s.Spawn(n, func(p *Proc) {
			g.Wait(p)
			woken = append(woken, n)
		})
	}
	s.Spawn("signaller", func(p *Proc) {
		p.Sleep(time.Millisecond)
		if !g.Signal() {
			t.Error("signal found no waiters")
		}
		p.Sleep(time.Millisecond)
		g.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woken) != 2 || woken[0] != "w1" {
		t.Fatalf("woken order = %v, want [w1 w2]", woken)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	s := New()
	b := NewBarrier(s, "sync", 3)
	var releases []time.Duration
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i) * 10 * time.Millisecond)
			b.Wait(p)
			releases = append(releases, p.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(releases) != 3 {
		t.Fatalf("releases = %v, want 3 entries", releases)
	}
	for _, r := range releases {
		if r != 20*time.Millisecond {
			t.Fatalf("release at %v, want 20ms (last arrival)", r)
		}
	}
}

func TestBarrierIsReusable(t *testing.T) {
	s := New()
	b := NewBarrier(s, "sync", 2)
	var rounds int
	for i := 0; i < 2; i++ {
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for r := 0; r < 3; r++ {
				b.Wait(p)
				if p.Name() == "p0" {
					rounds++
				}
				p.Sleep(time.Millisecond)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("completed %d rounds, want 3", rounds)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	s := New()
	m := NewMutex(s, "m")
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Millisecond)
			inside--
			m.Unlock()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
}

func TestSleepUntilPast(t *testing.T) {
	s := New()
	s.Spawn("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.SleepUntil(5 * time.Millisecond) // in the past: no-op
		if p.Now() != 10*time.Millisecond {
			t.Errorf("now = %v, want 10ms", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUseJointWaitsForBothResources(t *testing.T) {
	s := New()
	tx := NewResource(s, "tx", 1)
	rx := NewResource(s, "rx", 1)
	s.Spawn("load", func(p *Proc) {
		// Pre-load rx only.
		rx.Reserve(20 * time.Millisecond)
		start := UseJoint(p, 10*time.Millisecond, tx, rx)
		if start != 20*time.Millisecond {
			t.Errorf("joint start at %v, want 20ms (later of the two)", start)
		}
		if p.Now() != 30*time.Millisecond {
			t.Errorf("joint use finished at %v, want 30ms", p.Now())
		}
		// Both resources were held for the same interval.
		if tx.DrainTime() != 30*time.Millisecond || rx.DrainTime() != 30*time.Millisecond {
			t.Errorf("drain times %v/%v, want 30ms/30ms", tx.DrainTime(), rx.DrainTime())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveJointDoesNotBlock(t *testing.T) {
	s := New()
	a := NewResource(s, "a", 1)
	b := NewResource(s, "b", 1)
	s.Spawn("p", func(p *Proc) {
		end := ReserveJoint(s, 15*time.Millisecond, a, b)
		if p.Now() != 0 {
			t.Errorf("ReserveJoint blocked until %v", p.Now())
		}
		if end != 0 {
			t.Errorf("reservation start %v, want 0", end)
		}
		// A subsequent Use on either queues behind the reservation.
		a.Use(p, time.Millisecond)
		if p.Now() != 16*time.Millisecond {
			t.Errorf("queued use finished at %v, want 16ms", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBacklogReporting(t *testing.T) {
	s := New()
	r := NewResource(s, "r", 1)
	s.Spawn("p", func(p *Proc) {
		if r.Backlog() != 0 {
			t.Errorf("idle backlog = %v", r.Backlog())
		}
		r.Reserve(25 * time.Millisecond)
		if r.Backlog() != 25*time.Millisecond {
			t.Errorf("backlog = %v, want 25ms", r.Backlog())
		}
		p.Sleep(10 * time.Millisecond)
		if r.Backlog() != 15*time.Millisecond {
			t.Errorf("backlog after 10ms = %v, want 15ms", r.Backlog())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRecordsSchedulerEvents(t *testing.T) {
	s := New()
	tr := s.EnableTrace(100)
	g := NewGate(s, "g")
	s.Spawn("worker", func(p *Proc) {
		p.Sleep(time.Millisecond)
		g.Wait(p)
	})
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		g.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[TraceKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[TraceResume] == 0 || kinds[TraceSleep] == 0 || kinds[TracePark] == 0 || kinds[TraceFinish] != 2 {
		t.Fatalf("kind counts = %v", kinds)
	}
	if tr.Dump() == "" {
		t.Fatal("empty dump")
	}
	// Events must be time-ordered.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestTraceRingEviction(t *testing.T) {
	s := New()
	tr := s.EnableTrace(4)
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("retained %d events, want 4", got)
	}
	if tr.Total() <= 4 {
		t.Fatalf("total = %d, want > 4", tr.Total())
	}
}
