package reliab

import (
	"testing"
	"time"

	"repro/internal/layout"
)

func TestFatalPairsRAID10(t *testing.T) {
	geo := layout.Geometry{Disks: 8, DiskBlocks: 64}
	fatal := FatalPairs(layout.NewRAID10(geo), 8)
	// Exactly the 4 mirror pairs are fatal.
	if got := CountFatal(fatal); got != 4 {
		t.Fatalf("raid10 fatal pairs = %d, want 4", got)
	}
	for i := 0; i < 8; i += 2 {
		if !fatal[i][i+1] || !fatal[i+1][i] {
			t.Fatalf("pair (%d,%d) not fatal", i, i+1)
		}
	}
	if fatal[0][2] {
		t.Fatal("cross-pair marked fatal")
	}
}

func TestFatalPairsChained(t *testing.T) {
	geo := layout.Geometry{Disks: 8, DiskBlocks: 64}
	fatal := FatalPairs(layout.NewChained(geo), 8)
	// Adjacent pairs around the ring: 8.
	if got := CountFatal(fatal); got != 8 {
		t.Fatalf("chained fatal pairs = %d, want 8", got)
	}
	if !fatal[7][0] {
		t.Fatal("ring wrap pair (7,0) not fatal")
	}
	if fatal[0][4] {
		t.Fatal("non-adjacent pair marked fatal")
	}
}

func TestFatalPairsRAIDxRespectNodes(t *testing.T) {
	// 4 nodes x 3 disks: pairs on the same node are never fatal
	// (orthogonality); cross-node pairs generally are.
	lay := layout.NewOSM(4, 3, 64)
	fatal := FatalPairs(lay, 12)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if i != j && lay.NodeOfDisk(i) == lay.NodeOfDisk(j) && fatal[i][j] {
				t.Fatalf("same-node pair (%d,%d) marked fatal", i, j)
			}
		}
	}
	// RAID-x flat (k=1) behaves like RAID-5 for pair coverage.
	flat := FatalPairs(layout.NewOSM(12, 1, 2048), 12)
	if got, want := CountFatal(flat), 12*11/2; got != want {
		t.Fatalf("flat raidx fatal pairs = %d, want %d", got, want)
	}
}

func TestAnalyticOrdering(t *testing.T) {
	mttf, mttr := 10000*time.Hour, 10*time.Hour
	r0 := Analytic(RAID0, 12, 0, mttf, mttr)
	r5 := Analytic(RAID5, 12, 11, mttf, mttr)
	r10 := Analytic(RAID10, 12, 1, mttf, mttr)
	if !(r0 < r5 && r5 < r10) {
		t.Fatalf("ordering wrong: raid0=%v raid5=%v raid10=%v", r0, r5, r10)
	}
}

func TestSimulateMatchesAnalyticRAID5(t *testing.T) {
	const n = 8
	mttf, mttr := 5000*time.Hour, 20*time.Hour
	fatal := AllPairsFatal(n)
	sim := Simulate(fatal, mttf, mttr, 400, 7)
	ana := Analytic(RAID5, n, n-1, mttf, mttr)
	ratio := sim.MTTDL.Hours() / ana.Hours()
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("simulated %v vs analytic %v (ratio %.2f) diverge", sim.MTTDL, ana, ratio)
	}
}

func TestCompareTable(t *testing.T) {
	rows := Compare(4, 3, 64, 5000*time.Hour, 10*time.Hour, 100)
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	get := func(a Arch) Row {
		for _, r := range rows {
			if r.Arch == a {
				return r
			}
		}
		t.Fatalf("missing %s", a)
		return Row{}
	}
	// RAID-0 is worst; every redundant architecture beats it by orders
	// of magnitude.
	if get(RAID0).Simulated*10 > get(RAID5).Simulated {
		t.Fatalf("raid0 %v not clearly worse than raid5 %v", get(RAID0).Simulated, get(RAID5).Simulated)
	}
	// RAID-10 has the fewest fatal pairs, hence the best MTTDL.
	if get(RAID10).Simulated < get(RAID5).Simulated {
		t.Fatalf("raid10 %v not better than raid5 %v", get(RAID10).Simulated, get(RAID5).Simulated)
	}
	// RAID-x with k=3 excludes same-node pairs, so it beats RAID-5.
	if get(RAIDx).FatalPairs >= get(RAID5).FatalPairs {
		t.Fatalf("raidx fatal pairs %d not below raid5 %d", get(RAIDx).FatalPairs, get(RAID5).FatalPairs)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	fatal := AllPairsFatal(6)
	a := Simulate(fatal, 1000*time.Hour, 10*time.Hour, 50, 3)
	b := Simulate(fatal, 1000*time.Hour, 10*time.Hour, 50, 3)
	if a.MTTDL != b.MTTDL {
		t.Fatal("simulation not deterministic for fixed seed")
	}
}
