// Package reliab quantifies the fault-coverage column of the paper's
// Table 2: mean time to data loss (MTTDL) for each architecture, both
// in closed form and by Monte Carlo simulation over the *exact* set of
// fatal disk pairs derived from each layout.
//
// A pair of disks (i, j) is fatal if some block keeps both of its
// copies on exactly {i, j} — losing both before a repair completes
// loses data. RAID-5 loses data on any second failure; RAID-10 only
// when a mirror pair dies together; chained declustering when two
// adjacent disks die; RAID-x when the two disks are on different nodes
// (images never share a node with their data), so a deeper n-by-k array
// tolerates whole-node failures that flat mirroring cannot.
package reliab

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/layout"
)

// Arch names an architecture for the closed forms.
type Arch string

// Architectures covered by the analysis.
const (
	RAID0   Arch = "raid0"
	RAID5   Arch = "raid5"
	RAID10  Arch = "raid10"
	Chained Arch = "chained"
	RAIDx   Arch = "raidx"
)

// FatalPairs scans every logical block of a mirrored layout and marks
// the disk pairs that hold both copies of at least one block.
func FatalPairs(l layout.Mirrorer, disks int) [][]bool {
	fatal := make([][]bool, disks)
	for i := range fatal {
		fatal[i] = make([]bool, disks)
	}
	for b := int64(0); b < l.DataBlocks(); b++ {
		d := l.DataLoc(b).Disk
		m := l.MirrorLoc(b).Disk
		fatal[d][m] = true
		fatal[m][d] = true
	}
	return fatal
}

// AllPairsFatal builds the RAID-5/RAID-0 matrix: any two failures (or
// any one, for RAID-0, handled by MTTR=∞ semantics in the caller) lose
// data.
func AllPairsFatal(disks int) [][]bool {
	fatal := make([][]bool, disks)
	for i := range fatal {
		fatal[i] = make([]bool, disks)
		for j := range fatal[i] {
			fatal[i][j] = i != j
		}
	}
	return fatal
}

// CountFatal reports how many unordered fatal pairs a matrix holds.
func CountFatal(fatal [][]bool) int {
	n := 0
	for i := range fatal {
		for j := i + 1; j < len(fatal); j++ {
			if fatal[i][j] {
				n++
			}
		}
	}
	return n
}

// Analytic returns the closed-form MTTDL. mttf is a single disk's mean
// time to failure, mttr the repair (rebuild) time. fatalPerDisk is the
// average number of disks whose co-failure with a given disk loses data
// (n-1 for RAID-5, 1 for RAID-10, 2 for chained, and layout-dependent
// for RAID-x).
func Analytic(arch Arch, disks int, fatalPerDisk float64, mttf, mttr time.Duration) time.Duration {
	n := float64(disks)
	f := mttf.Hours()
	r := mttr.Hours()
	var hours float64
	switch arch {
	case RAID0:
		// Any single failure loses data.
		hours = f / n
	default:
		// First failure at rate n/MTTF; during the repair window the
		// fatalPerDisk co-disks each fail with probability ~MTTR/MTTF.
		if fatalPerDisk <= 0 {
			return time.Duration(math.MaxInt64)
		}
		hours = f * f / (n * fatalPerDisk * r)
	}
	if hours > float64(math.MaxInt64)/float64(time.Hour) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(hours * float64(time.Hour))
}

// SimResult is a Monte Carlo estimate.
type SimResult struct {
	MTTDL  time.Duration
	Trials int
}

// Simulate estimates MTTDL by Monte Carlo: disks fail at exponential
// rate 1/mttf and are repaired mttr after failing; data is lost when a
// fatal pair is simultaneously down. Deterministically seeded.
func Simulate(fatal [][]bool, mttf, mttr time.Duration, trials int, seed int64) SimResult {
	rng := rand.New(rand.NewSource(seed))
	disks := len(fatal)
	var total float64
	for t := 0; t < trials; t++ {
		total += oneTrial(rng, fatal, disks, mttf.Hours(), mttr.Hours())
	}
	hours := total / float64(trials)
	return SimResult{MTTDL: time.Duration(hours * float64(time.Hour)), Trials: trials}
}

// oneTrial runs until data loss and returns the elapsed hours.
func oneTrial(rng *rand.Rand, fatal [][]bool, disks int, mttfH, mttrH float64) float64 {
	// nextFail[i]: absolute hour of disk i's next failure;
	// repairAt[i] > now means disk i is down until then.
	nextFail := make([]float64, disks)
	repairAt := make([]float64, disks)
	for i := range nextFail {
		nextFail[i] = rng.ExpFloat64() * mttfH
		repairAt[i] = -1
	}
	now := 0.0
	for {
		// Earliest upcoming failure among healthy disks.
		victim, at := -1, math.MaxFloat64
		for i := range nextFail {
			if repairAt[i] > now {
				continue // already down
			}
			if nextFail[i] < at {
				victim, at = i, nextFail[i]
			}
		}
		now = at
		// Complete any repairs that finished before this failure.
		for i := range repairAt {
			if repairAt[i] >= 0 && repairAt[i] <= now {
				repairAt[i] = -1
				nextFail[i] = now + rng.ExpFloat64()*mttfH
			}
		}
		// Is any fatal partner currently down?
		for j := range fatal[victim] {
			if fatal[victim][j] && repairAt[j] > now {
				return now
			}
		}
		// Survived: the disk is under repair until now + MTTR.
		repairAt[victim] = now + mttrH
	}
}

// Row is one architecture's reliability summary.
type Row struct {
	Arch       Arch
	FatalPairs int
	Analytic   time.Duration
	Simulated  time.Duration
}

func (r Row) String() string {
	return fmt.Sprintf("%-8s fatal-pairs=%-3d analytic=%-12s simulated=%s",
		r.Arch, r.FatalPairs, fmtDur(r.Analytic), fmtDur(r.Simulated))
}

func fmtDur(d time.Duration) string {
	h := d.Hours()
	switch {
	case h > 24*365:
		return fmt.Sprintf("%.1fy", h/(24*365))
	case h > 24:
		return fmt.Sprintf("%.1fd", h/24)
	default:
		return fmt.Sprintf("%.1fh", h)
	}
}

// Compare builds the reliability table for an n-by-k cluster with the
// given disk MTTF and rebuild time.
func Compare(nodes, disksPerNode int, diskBlocks int64, mttf, mttr time.Duration, trials int) []Row {
	n := nodes * disksPerNode
	geo := layout.Geometry{Disks: n, DiskBlocks: diskBlocks}
	var rows []Row

	add := func(arch Arch, fatal [][]bool) {
		pairs := CountFatal(fatal)
		perDisk := 0.0
		if n > 0 {
			perDisk = 2 * float64(pairs) / float64(n)
		}
		rows = append(rows, Row{
			Arch:       arch,
			FatalPairs: pairs,
			Analytic:   Analytic(arch, n, perDisk, mttf, mttr),
			Simulated:  Simulate(fatal, mttf, mttr, trials, 42).MTTDL,
		})
	}

	// RAID-0: any failure is fatal; model as zero redundancy.
	rows = append(rows, Row{
		Arch:      RAID0,
		Analytic:  Analytic(RAID0, n, 0, mttf, mttr),
		Simulated: simulateRAID0(n, mttf, trials),
	})
	add(RAID5, AllPairsFatal(n))
	if n%2 == 0 {
		add(RAID10, FatalPairs(layout.NewRAID10(geo), n))
	}
	add(Chained, FatalPairs(layout.NewChained(geo), n))
	add(RAIDx, FatalPairs(layout.NewOSM(nodes, disksPerNode, diskBlocks), n))
	return rows
}

// simulateRAID0: time to first failure of any disk.
func simulateRAID0(disks int, mttf time.Duration, trials int) time.Duration {
	rng := rand.New(rand.NewSource(42))
	var total float64
	for t := 0; t < trials; t++ {
		min := math.MaxFloat64
		for i := 0; i < disks; i++ {
			if f := rng.ExpFloat64() * mttf.Hours(); f < min {
				min = f
			}
		}
		total += min
	}
	return time.Duration(total / float64(trials) * float64(time.Hour))
}
