package parity

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func mkShards(rng *rand.Rand, k, m, size int) (data, parity, all [][]byte, present []bool) {
	all = make([][]byte, k+m)
	for i := range all {
		all[i] = make([]byte, size)
	}
	data, parity = all[:k], all[k:]
	for _, d := range data {
		rng.Read(d)
	}
	present = make([]bool, k+m)
	for i := range present {
		present[i] = true
	}
	return
}

// TestRSRoundTripGeometries encodes and reconstructs across the
// geometry space: every (k,m) with k ≤ 12, m ≤ 4 plus a few large
// shapes, dropping a random set of exactly m shards each time. Each
// construction branch (XOR row, P+Q, systematic Vandermonde) is
// covered.
func TestRSRoundTripGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	type geom struct{ k, m int }
	var geoms []geom
	for k := 1; k <= 12; k++ {
		for m := 1; m <= 4; m++ {
			geoms = append(geoms, geom{k, m})
		}
	}
	geoms = append(geoms, geom{17, 3}, geom{32, 4}, geom{100, 5}, geom{250, 5})
	for _, g := range geoms {
		rs, err := NewRS(g.k, g.m)
		if err != nil {
			t.Fatalf("NewRS(%d,%d): %v", g.k, g.m, err)
		}
		size := 97 // odd, forces tails
		data, parity, all, present := mkShards(rng, g.k, g.m, size)
		if err := rs.Encode(data, parity); err != nil {
			t.Fatalf("rs(%d,%d) encode: %v", g.k, g.m, err)
		}
		want := make([][]byte, len(all))
		for i, s := range all {
			want[i] = append([]byte(nil), s...)
		}
		// Drop exactly m random shards.
		for _, idx := range rng.Perm(g.k + g.m)[:g.m] {
			present[idx] = false
			rng.Read(all[idx]) // scribble: must be fully recomputed
		}
		if err := rs.Reconstruct(all, present); err != nil {
			t.Fatalf("rs(%d,%d) reconstruct: %v", g.k, g.m, err)
		}
		for i := range all {
			if !bytes.Equal(all[i], want[i]) {
				t.Fatalf("rs(%d,%d) shard %d differs at %d", g.k, g.m, i, FirstDiff(all[i], want[i]))
			}
		}
	}
}

// TestRSMDSExhaustive proves the any-m-erasures property by brute
// force on small codes: for every subset of exactly m dropped shards,
// reconstruction must be bit-exact. This is the test that would catch
// a non-MDS generator (e.g. the classic [I;V] Vandermonde mistake).
func TestRSMDSExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, g := range []struct{ k, m int }{{3, 2}, {5, 2}, {4, 3}, {5, 4}, {8, 2}, {6, 3}} {
		rs, err := NewRS(g.k, g.m)
		if err != nil {
			t.Fatal(err)
		}
		n := g.k + g.m
		data, parity, all, _ := mkShards(rng, g.k, g.m, 64)
		if err := rs.Encode(data, parity); err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, n)
		for i, s := range all {
			want[i] = append([]byte(nil), s...)
		}
		// Enumerate all C(n, m) erasure patterns via bitmask.
		for mask := 0; mask < 1<<n; mask++ {
			if popcount(mask) != g.m {
				continue
			}
			work := make([][]byte, n)
			present := make([]bool, n)
			for i := 0; i < n; i++ {
				work[i] = append([]byte(nil), want[i]...)
				present[i] = mask&(1<<i) == 0
				if !present[i] {
					rng.Read(work[i])
				}
			}
			if err := rs.Reconstruct(work, present); err != nil {
				t.Fatalf("rs(%d,%d) mask %b: %v", g.k, g.m, mask, err)
			}
			for i := 0; i < n; i++ {
				if !bytes.Equal(work[i], want[i]) {
					t.Fatalf("rs(%d,%d) mask %b shard %d wrong", g.k, g.m, mask, i)
				}
			}
		}
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// TestRSUpdateMatchesReencode checks the small-write delta path: after
// Update with delta = old^new on one shard, parity must equal a full
// re-encode of the updated data.
func TestRSUpdateMatchesReencode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, g := range []struct{ k, m int }{{4, 1}, {8, 2}, {6, 3}} {
		rs, err := NewRS(g.k, g.m)
		if err != nil {
			t.Fatal(err)
		}
		data, parity, _, _ := mkShards(rng, g.k, g.m, 128)
		if err := rs.Encode(data, parity); err != nil {
			t.Fatal(err)
		}
		for shard := 0; shard < g.k; shard++ {
			newData := make([]byte, 128)
			rng.Read(newData)
			delta := append([]byte(nil), data[shard]...)
			XorInto(delta, newData)
			rs.Update(parity, shard, delta)
			copy(data[shard], newData)

			wantParity := make([][]byte, g.m)
			for j := range wantParity {
				wantParity[j] = make([]byte, 128)
			}
			if err := rs.Encode(data, wantParity); err != nil {
				t.Fatal(err)
			}
			for j := range parity {
				if !bytes.Equal(parity[j], wantParity[j]) {
					t.Fatalf("rs(%d,%d) shard %d parity %d: delta-update != re-encode", g.k, g.m, shard, j)
				}
			}
		}
	}
}

// TestRSVandermondeMatchesGeneric pins the fast-path rows: the m==1
// and m==2 constructions must behave like codes, not just like ad-hoc
// XOR — i.e. reconstruct anything the generic decoder claims.
// Additionally the rowKind classification must match the row content.
func TestRSRowKinds(t *testing.T) {
	rs1, _ := NewRS(7, 1)
	if rs1.rowKind[0] != rowXOR {
		t.Fatalf("m=1 row kind = %v, want rowXOR", rs1.rowKind[0])
	}
	rs2, _ := NewRS(7, 2)
	if rs2.rowKind[0] != rowXOR || rs2.rowKind[1] != rowPow2 {
		t.Fatalf("m=2 row kinds = %v, want [rowXOR rowPow2]", rs2.rowKind)
	}
	// Horner row must equal a generic evaluation of the same
	// coefficients.
	rng := rand.New(rand.NewSource(13))
	data := make([][]byte, 7)
	for i := range data {
		data[i] = make([]byte, 77)
		rng.Read(data[i])
	}
	fast := make([]byte, 77)
	rs2.encodeRow(1, fast, data)
	slow := make([]byte, 77)
	galMul(slow, data[0], rs2.rows[1][0])
	for i := 1; i < 7; i++ {
		GalMulXor(slow, data[i], rs2.rows[1][i])
	}
	if !bytes.Equal(fast, slow) {
		t.Fatalf("Horner Q != generic Q at %d", FirstDiff(fast, slow))
	}
}

func TestRSErrors(t *testing.T) {
	if _, err := NewRS(0, 1); err == nil {
		t.Error("NewRS(0,1) should fail")
	}
	if _, err := NewRS(1, 0); err == nil {
		t.Error("NewRS(1,0) should fail")
	}
	if _, err := NewRS(254, 2); err == nil {
		t.Error("NewRS(254,2) should fail (k+m > 255)")
	}
	rs, err := NewRS(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 8), make([]byte, 7)}
	parity := [][]byte{make([]byte, 8), make([]byte, 8)}
	if err := rs.Encode(data, parity); err == nil {
		t.Error("mismatched shard length should fail")
	}
	all := make([][]byte, 6)
	present := make([]bool, 6)
	for i := range all {
		all[i] = make([]byte, 8)
	}
	present[0], present[1], present[2] = true, true, true // only 3 of 4 data
	if err := rs.Reconstruct(all, present); !errors.Is(err, ErrShortShards) {
		t.Errorf("reconstruct with 3 < k shards: err = %v, want ErrShortShards", err)
	}
}

// FuzzRSRoundTrip drives encode → erase ≤m shards → reconstruct with
// fuzzer-chosen geometry, content, and erasure pattern; reconstruction
// must always be bit-exact.
func FuzzRSRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(64), []byte("seed data for shards"))
	f.Add(uint8(1), uint8(1), uint16(1), []byte{0})
	f.Add(uint8(10), uint8(4), uint16(97), []byte("abcdefghijklmnopqrstuvwxyz0123456789"))
	f.Fuzz(func(t *testing.T, kb, mb uint8, sz uint16, seed []byte) {
		k := int(kb)%16 + 1
		m := int(mb)%5 + 1
		size := int(sz)%300 + 1
		rs, err := NewRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(seed) == 0 {
			seed = []byte{0xA5}
		}
		all := make([][]byte, k+m)
		for i := range all {
			all[i] = make([]byte, size)
			for j := range all[i] {
				all[i][j] = seed[(i*7+j)%len(seed)]
			}
		}
		if err := rs.Encode(all[:k], all[k:]); err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, len(all))
		for i, s := range all {
			want[i] = append([]byte(nil), s...)
		}
		// Erasure pattern from the seed: drop up to m shards.
		present := make([]bool, k+m)
		for i := range present {
			present[i] = true
		}
		drops := int(seed[0]) % (m + 1)
		for d := 0; d < drops; d++ {
			idx := int(seed[(d+1)%len(seed)]) % (k + m)
			if present[idx] {
				present[idx] = false
				for j := range all[idx] {
					all[idx][j] = ^all[idx][j]
				}
			}
		}
		if err := rs.Reconstruct(all, present); err != nil {
			t.Fatal(err)
		}
		for i := range all {
			if !bytes.Equal(all[i], want[i]) {
				t.Fatalf("rs(%d,%d) shard %d differs after reconstruct", k, m, i)
			}
		}
	})
}
