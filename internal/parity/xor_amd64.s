//go:build !purego

#include "textflag.h"

// func xorSSE2(dst, src *byte, n int)
// n > 0 and a multiple of 64. Unaligned loads throughout (MOVOU):
// callers hand us arbitrary slice interiors.
TEXT ·xorSSE2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

sse2loop:
	MOVOU (SI), X0
	MOVOU 16(SI), X1
	MOVOU 32(SI), X2
	MOVOU 48(SI), X3
	MOVOU (DI), X4
	MOVOU 16(DI), X5
	MOVOU 32(DI), X6
	MOVOU 48(DI), X7
	PXOR  X4, X0
	PXOR  X5, X1
	PXOR  X6, X2
	PXOR  X7, X3
	MOVOU X0, (DI)
	MOVOU X1, 16(DI)
	MOVOU X2, 32(DI)
	MOVOU X3, 48(DI)
	ADDQ  $64, SI
	ADDQ  $64, DI
	SUBQ  $64, CX
	JNE   sse2loop
	RET

// func xorAVX2(dst, src *byte, n int)
// n > 0 and a multiple of 128. VZEROUPPER before returning keeps the
// SSE code that follows out of the AVX transition penalty.
TEXT ·xorAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

avx2loop:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VPXOR   64(DI), Y2, Y2
	VPXOR   96(DI), Y3, Y3
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $128, CX
	JNE     avx2loop
	VZEROUPPER
	RET

// func x86HasAVX2() bool
// CPUID.1:ECX.OSXSAVE, then XGETBV XCR0[2:1] (OS saves XMM+YMM), then
// CPUID.(7,0):EBX.AVX2.
TEXT ·x86HasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	BTL  $27, CX
	JCC  noavx2
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx2
	MOVL $7, AX
	XORL CX, CX
	CPUID
	BTL  $5, BX
	JCC  noavx2
	MOVB $1, ret+0(FP)
	RET

noavx2:
	MOVB $0, ret+0(FP)
	RET
