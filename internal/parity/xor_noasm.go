//go:build !amd64 || purego

package parity

// No SIMD tier on this build: simdXor stays nil and XorInto runs the
// portable word kernels end to end.
