//go:build (amd64 || arm64 || ppc64 || ppc64le || s390x) && !purego

package parity

import "unsafe"

// fastPath reports whether the unsafe word-access kernels are compiled
// in. Exported indirectly through KernelName for benchmarks and bug
// reports.
const fastPath = true

// load64 and store64 move one 64-bit word at byte offset i of b,
// without bounds checks and without alignment requirements. They are
// only built on architectures where the hardware tolerates unaligned
// word access (the same set the Go runtime itself relies on for
// unaligned loads in package bytes/hash); everywhere else the safe
// variants in word_safe.go are used. Callers must guarantee i+8 <=
// len(b) — the exported kernels establish that with a single bounds
// check up front, which is what makes the unrolled loops fast.
func load64(b []byte, i int) uint64 {
	return *(*uint64)(unsafe.Pointer(uintptr(unsafe.Pointer(unsafe.SliceData(b))) + uintptr(i)))
}

func store64(b []byte, i int, v uint64) {
	*(*uint64)(unsafe.Pointer(uintptr(unsafe.Pointer(unsafe.SliceData(b))) + uintptr(i))) = v
}
