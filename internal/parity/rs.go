package parity

import (
	"errors"
	"fmt"
)

// RS is a systematic Reed-Solomon code over GF(2^8): k data shards, m
// parity shards, any m erasures recoverable (MDS). The generator rows
// depend on m:
//
//   - m == 1: the single parity row is all ones — plain XOR parity,
//     identical to RAID-5's, so the whole encode is the XOR kernel.
//   - m == 2: the RAID-6 P+Q construction — P row all ones, Q row
//     [2^0, 2^1, ..., 2^(k-1)]. Any k×k submatrix of [I; P; Q] is
//     invertible for k ≤ 255 (distinct powers of the generator), and Q
//     evaluates Horner-style with the word-parallel mul2 kernel, so
//     encode throughput stays XOR-class instead of table-lookup-class.
//   - m >= 3: systematic Vandermonde — build the (k+m)×k Vandermonde
//     matrix V over the distinct points α^0..α^(k+m-1) and normalize
//     by the inverse of its top k×k block. Any k rows of the result
//     are a product of two invertible matrices, which is the MDS
//     property. (The naive [I ; V] stacking does NOT have it — this is
//     Plank's classic correction.)
//
// All three agree on the API: rows[j][i] is the coefficient of data
// shard i in parity shard j.
type RS struct {
	k, m int
	rows [][]byte // m × k generator coefficients (parity part only)

	// per-row fast-path classification, fixed at construction
	rowKind []rowKind
}

type rowKind uint8

const (
	rowGeneric rowKind = iota
	rowXOR             // all coefficients 1: parity is a plain XOR fold
	rowPow2            // coefficients [2^0..2^(k-1)]: Horner with mul2Into
)

// ErrShortShards is returned by Reconstruct when fewer than k shards
// are present — more than m erasures means data loss at this layer.
var ErrShortShards = errors.New("parity: too few shards present to reconstruct")

// NewRS builds a code with k data and m parity shards. k+m must be at
// most 255 (the field has 255 distinct nonzero evaluation points).
func NewRS(k, m int) (*RS, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("parity: rs(%d,%d): k and m must be >= 1", k, m)
	}
	if k+m > 255 {
		return nil, fmt.Errorf("parity: rs(%d,%d): k+m must be <= 255", k, m)
	}
	r := &RS{k: k, m: m}
	switch {
	case m == 1:
		row := make([]byte, k)
		for i := range row {
			row[i] = 1
		}
		r.rows = [][]byte{row}
	case m == 2:
		p := make([]byte, k)
		q := make([]byte, k)
		for i := 0; i < k; i++ {
			p[i] = 1
			q[i] = gfExp[i]
		}
		r.rows = [][]byte{p, q}
	default:
		n := k + m
		v := make([][]byte, n)
		for row := 0; row < n; row++ {
			v[row] = make([]byte, k)
			for col := 0; col < k; col++ {
				v[row][col] = gfExp[(row*col)%255]
			}
		}
		topInv, err := matInvert(v[:k])
		if err != nil {
			return nil, fmt.Errorf("parity: rs(%d,%d): %w", k, m, err)
		}
		r.rows = make([][]byte, m)
		for j := 0; j < m; j++ {
			r.rows[j] = matMulRow(v[k+j], topInv)
		}
	}
	r.rowKind = make([]rowKind, m)
	for j, row := range r.rows {
		r.rowKind[j] = classifyRow(row)
	}
	return r, nil
}

func classifyRow(row []byte) rowKind {
	xor, pow2 := true, true
	for i, c := range row {
		if c != 1 {
			xor = false
		}
		if c != gfExp[i%255] {
			pow2 = false
		}
	}
	switch {
	case xor:
		return rowXOR
	case pow2:
		return rowPow2
	default:
		return rowGeneric
	}
}

// K and M report the code geometry.
func (r *RS) K() int { return r.k }
func (r *RS) M() int { return r.m }

// Rows exposes the generator coefficients (parity rows only); callers
// must not mutate the returned slices. The raid engine uses it for
// delta parity updates on the small-write path.
func (r *RS) Rows() [][]byte { return r.rows }

// Encode computes the m parity shards from the k data shards, in
// place: parity[j] is overwritten. All shards must be the same length.
// data slices are read-only; nothing is allocated, so callers can pass
// pooled bufpool blocks or sub-slices of the user's buffer (the
// zero-copy write path does exactly that).
func (r *RS) Encode(data, parity [][]byte) error {
	if err := r.checkShards(data, parity); err != nil {
		return err
	}
	for j, out := range parity {
		r.encodeRow(j, out, data)
	}
	return nil
}

func (r *RS) encodeRow(j int, out []byte, data [][]byte) {
	switch r.rowKind[j] {
	case rowXOR:
		copy(out, data[0])
		for i := 1; i < r.k; i++ {
			XorInto(out, data[i])
		}
	case rowPow2:
		// Horner: Σ d_i·2^i = d_0 ^ 2·(d_1 ^ 2·(d_2 ^ ...)) — one
		// word-parallel mul2 + one XOR per data shard.
		copy(out, data[r.k-1])
		for i := r.k - 2; i >= 0; i-- {
			mul2Into(out)
			XorInto(out, data[i])
		}
	default:
		row := r.rows[j]
		galMul(out, data[0], row[0])
		for i := 1; i < r.k; i++ {
			GalMulXor(out, data[i], row[i])
		}
	}
}

// Update applies a data-shard delta to all parity shards in place:
// parity[j] ^= rows[j][shard]·delta. This is the read-modify-write
// small-write path — the caller reads old data, XORs new data over it
// to form delta, and avoids touching the other k-1 data shards.
func (r *RS) Update(parity [][]byte, shard int, delta []byte) {
	for j, out := range parity {
		GalMulXor(out, delta, r.rows[j][shard])
	}
}

// Reconstruct fills in the missing shards in place. shards holds all
// k+m shards in order (data first, then parity); present[i] reports
// whether shards[i] holds valid content. Missing shards must still be
// backed by full-length scratch buffers — Reconstruct overwrites them.
// At least k shards must be present or ErrShortShards is returned.
func (r *RS) Reconstruct(shards [][]byte, present []bool) error {
	n := r.k + r.m
	if len(shards) != n || len(present) != n {
		return fmt.Errorf("parity: rs(%d,%d): want %d shards, got %d (present %d)", r.k, r.m, n, len(shards), len(present))
	}
	size := -1
	have := 0
	for i, s := range shards {
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("parity: shard %d length %d != %d", i, len(s), size)
		}
		if present[i] {
			have++
		}
	}
	if have < r.k {
		return fmt.Errorf("%w: %d of %d present, need %d", ErrShortShards, have, n, r.k)
	}

	dataMissing := false
	for i := 0; i < r.k; i++ {
		if !present[i] {
			dataMissing = true
			break
		}
	}
	if dataMissing {
		if err := r.decodeData(shards, present); err != nil {
			return err
		}
	}
	// All data is now valid; recompute any missing parity directly.
	for j := 0; j < r.m; j++ {
		if !present[r.k+j] {
			r.encodeRow(j, shards[r.k+j], shards[:r.k])
		}
	}
	return nil
}

// decodeData solves for the missing data shards from any k present
// shards: invert the k×k matrix formed by the present shards' rows of
// the systematic generator [I ; rows], then each missing data shard i
// is the inverse's row i dotted with the chosen shards. Gaussian
// elimination on a ≤255×255 byte matrix is microseconds — negligible
// against the block I/O that surrounds a degraded read.
func (r *RS) decodeData(shards [][]byte, present []bool) error {
	chosen := make([]int, 0, r.k)
	for i := 0; i < r.k+r.m && len(chosen) < r.k; i++ {
		if present[i] {
			chosen = append(chosen, i)
		}
	}
	mat := make([][]byte, r.k)
	for ri, idx := range chosen {
		row := make([]byte, r.k)
		if idx < r.k {
			row[idx] = 1
		} else {
			copy(row, r.rows[idx-r.k])
		}
		mat[ri] = row
	}
	inv, err := matInvert(mat)
	if err != nil {
		return fmt.Errorf("parity: reconstruct: %w", err)
	}
	for i := 0; i < r.k; i++ {
		if present[i] {
			continue
		}
		out := shards[i]
		galMul(out, shards[chosen[0]], inv[i][0])
		for c := 1; c < r.k; c++ {
			GalMulXor(out, shards[chosen[c]], inv[i][c])
		}
	}
	return nil
}

// matInvert returns the inverse of a square matrix over GF(2^8) via
// Gauss-Jordan elimination. The input is not modified.
func matInvert(m [][]byte) ([][]byte, error) {
	n := len(m)
	// Augmented [work | inv], starting as [m | I].
	work := make([][]byte, n)
	inv := make([][]byte, n)
	for i := 0; i < n; i++ {
		work[i] = append([]byte(nil), m[i]...)
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for row := col; row < n; row++ {
			if work[row][col] != 0 {
				pivot = row
				break
			}
		}
		if pivot == -1 {
			return nil, errors.New("singular matrix")
		}
		work[col], work[pivot] = work[pivot], work[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if d := work[col][col]; d != 1 {
			di := gfInv(d)
			scaleRow(work[col], di)
			scaleRow(inv[col], di)
		}
		for row := 0; row < n; row++ {
			if row == col || work[row][col] == 0 {
				continue
			}
			f := work[row][col]
			addScaledRow(work[row], work[col], f)
			addScaledRow(inv[row], inv[col], f)
		}
	}
	return inv, nil
}

func scaleRow(row []byte, c byte) {
	for i := range row {
		row[i] = gfMul(row[i], c)
	}
}

// addScaledRow computes dst ^= c·src element-wise.
func addScaledRow(dst, src []byte, c byte) {
	for i := range dst {
		dst[i] ^= gfMul(src[i], c)
	}
}

// matMulRow returns row·m for a 1×n row vector and n×n matrix.
func matMulRow(row []byte, m [][]byte) []byte {
	n := len(row)
	out := make([]byte, len(m[0]))
	for j := range out {
		var acc byte
		for i := 0; i < n; i++ {
			acc ^= gfMul(row[i], m[i][j])
		}
		out[j] = acc
	}
	return out
}

func (r *RS) checkShards(data, parity [][]byte) error {
	if len(data) != r.k || len(parity) != r.m {
		return fmt.Errorf("parity: rs(%d,%d): got %d data + %d parity shards", r.k, r.m, len(data), len(parity))
	}
	size := len(data[0])
	for i, s := range data {
		if len(s) != size {
			return fmt.Errorf("parity: data shard %d length %d != %d", i, len(s), size)
		}
	}
	for j, s := range parity {
		if len(s) != size {
			return fmt.Errorf("parity: parity shard %d length %d != %d", j, len(s), size)
		}
	}
	return nil
}
