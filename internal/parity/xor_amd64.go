//go:build !purego

package parity

// The amd64 SIMD tier sits above the word kernels: XorInto hands the
// bulk of each buffer (rounded down to the lane-block size) to one of
// these routines and finishes the tail with the portable word loop.
// SSE2 is architectural baseline on amd64 so it needs no detection;
// AVX2 is picked at init when the CPU has it and the OS saves YMM
// state. The purego build tag drops this file (and the .s file)
// entirely, leaving the portable kernels.

// xorSSE2 XORs n bytes of src into dst, 64 bytes per iteration.
// n must be a positive multiple of 64. dst == src is allowed; any
// other overlap is not.
//
//go:noescape
func xorSSE2(dst, src *byte, n int)

// xorAVX2 XORs n bytes of src into dst, 128 bytes per iteration.
// n must be a positive multiple of 128. Same aliasing contract.
//
//go:noescape
func xorAVX2(dst, src *byte, n int)

// x86HasAVX2 reports CPU AVX2 support with OS-enabled YMM state
// (OSXSAVE + XGETBV), the full check — CPUID alone is not enough on a
// kernel that doesn't save extended state.
func x86HasAVX2() bool

func init() {
	if x86HasAVX2() {
		simdXor, simdChunk, kernelSuffix = xorAVX2, 128, "+avx2"
	} else {
		simdXor, simdChunk, kernelSuffix = xorSSE2, 64, "+sse2"
	}
}
