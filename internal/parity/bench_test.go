package parity

import (
	"math/rand"
	"testing"
)

// Benchmarks mirror the `raidxbench parity` subcommand: the byte-loop
// "before" row, the word-parallel kernel, and the RS codec at the
// geometries the vol package ships (rs(8,2) default cold tier).

func benchBufs(n int) (dst, src []byte) {
	rng := rand.New(rand.NewSource(42))
	dst = make([]byte, n)
	src = make([]byte, n)
	rng.Read(dst)
	rng.Read(src)
	return
}

func BenchmarkXorBytewise64K(b *testing.B) {
	dst, src := benchBufs(64 << 10)
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		XorIntoBytewise(dst, src)
	}
}

func BenchmarkXorKernel64K(b *testing.B) {
	dst, src := benchBufs(64 << 10)
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		XorInto(dst, src)
	}
}

func BenchmarkXorKernel4K(b *testing.B) {
	dst, src := benchBufs(4 << 10)
	b.SetBytes(4 << 10)
	for i := 0; i < b.N; i++ {
		XorInto(dst, src)
	}
}

func BenchmarkGalMulXor64K(b *testing.B) {
	dst, src := benchBufs(64 << 10)
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		GalMulXor(dst, src, 29)
	}
}

func benchRSEncode(b *testing.B, k, m, shard int) {
	rs, err := NewRS(k, m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	data := make([][]byte, k)
	parity := make([][]byte, m)
	for i := range data {
		data[i] = make([]byte, shard)
		rng.Read(data[i])
	}
	for j := range parity {
		parity[j] = make([]byte, shard)
	}
	b.SetBytes(int64(k * shard)) // data throughput, the standard RS metric
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rs.Encode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSEncode8x2(b *testing.B)  { benchRSEncode(b, 8, 2, 64<<10) }
func BenchmarkRSEncode10x4(b *testing.B) { benchRSEncode(b, 10, 4, 64<<10) }
func BenchmarkRSEncode4x1(b *testing.B)  { benchRSEncode(b, 4, 1, 64<<10) }

func BenchmarkRSReconstruct8x2(b *testing.B) {
	rs, err := NewRS(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	all := make([][]byte, 10)
	for i := range all {
		all[i] = make([]byte, 64<<10)
		rng.Read(all[i])
	}
	if err := rs.Encode(all[:8], all[8:]); err != nil {
		b.Fatal(err)
	}
	present := make([]bool, 10)
	for i := range present {
		present[i] = true
	}
	present[2], present[5] = false, false
	b.SetBytes(int64(8 * 64 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rs.Reconstruct(all, present); err != nil {
			b.Fatal(err)
		}
	}
}
