package parity

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d) — the field used by Linux md raid6 and every mainstream RS
// implementation, so on-disk parity is comparable against external
// tools. The bulk kernels use the split 4-bit table idiom: for a fixed
// coefficient c, c·x = lo[x & 0xf] ^ hi[x >> 4], two 16-entry tables
// per coefficient. That is the scalar form of the PSHUFB/TBL
// vectorization used by SIMD RS libraries; in pure Go it keeps both
// tables for the active coefficient in L1 and lets the compiler keep
// them in registers across the 8-way unrolled loop.

var (
	gfExp [512]byte // α^i, doubled so mul can skip the mod 255
	gfLog [256]byte // log_α(x); gfLog[0] unused
	// mulLo[c][v] = c·v and mulHi[c][v] = c·(v<<4) for v in [0,16):
	// 8 KiB total, built once at init.
	mulLo [256][16]byte
	mulHi [256][16]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		x = mulBy2(x)
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for c := 0; c < 256; c++ {
		for v := 0; v < 16; v++ {
			mulLo[c][v] = gfMulBitwise(byte(c), byte(v))
			mulHi[c][v] = gfMulBitwise(byte(c), byte(v<<4))
		}
	}
}

// mulBy2 multiplies a single byte by 2 in the field.
func mulBy2(b byte) byte {
	r := b << 1
	if b&0x80 != 0 {
		r ^= 0x1d
	}
	return r
}

// gfMulBitwise is the shift-and-add reference multiply, used only to
// build tables and as the oracle in equivalence tests.
func gfMulBitwise(a, b byte) byte {
	var r byte
	for b != 0 {
		if b&1 != 0 {
			r ^= a
		}
		a = mulBy2(a)
		b >>= 1
	}
	return r
}

// gfMul multiplies two field elements via the log/exp tables.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfInv returns the multiplicative inverse; a must be nonzero.
func gfInv(a byte) byte {
	return gfExp[255-int(gfLog[a])]
}

// GalMulXor computes dst[i] ^= c·src[i] for i < len(src) — the RS
// multiply-accumulate kernel. c == 0 and c == 1 dispatch to the cheap
// forms; the general case runs the split nibble tables 8 bytes per
// unrolled iteration.
func GalMulXor(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		XorInto(dst, src)
		return
	}
	n := len(src)
	if n == 0 {
		return
	}
	_ = dst[n-1]
	lo, hi := &mulLo[c], &mulHi[c]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= lo[src[i]&0xf] ^ hi[src[i]>>4]
		dst[i+1] ^= lo[src[i+1]&0xf] ^ hi[src[i+1]>>4]
		dst[i+2] ^= lo[src[i+2]&0xf] ^ hi[src[i+2]>>4]
		dst[i+3] ^= lo[src[i+3]&0xf] ^ hi[src[i+3]>>4]
		dst[i+4] ^= lo[src[i+4]&0xf] ^ hi[src[i+4]>>4]
		dst[i+5] ^= lo[src[i+5]&0xf] ^ hi[src[i+5]>>4]
		dst[i+6] ^= lo[src[i+6]&0xf] ^ hi[src[i+6]>>4]
		dst[i+7] ^= lo[src[i+7]&0xf] ^ hi[src[i+7]>>4]
	}
	for ; i < n; i++ {
		dst[i] ^= lo[src[i]&0xf] ^ hi[src[i]>>4]
	}
}

// galMul computes dst[i] = c·src[i] for i < len(src), overwriting dst.
func galMul(dst, src []byte, c byte) {
	switch c {
	case 0:
		clearBytes(dst[:len(src)])
		return
	case 1:
		copy(dst, src)
		return
	}
	n := len(src)
	if n == 0 {
		return
	}
	_ = dst[n-1]
	lo, hi := &mulLo[c], &mulHi[c]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] = lo[src[i]&0xf] ^ hi[src[i]>>4]
		dst[i+1] = lo[src[i+1]&0xf] ^ hi[src[i+1]>>4]
		dst[i+2] = lo[src[i+2]&0xf] ^ hi[src[i+2]>>4]
		dst[i+3] = lo[src[i+3]&0xf] ^ hi[src[i+3]>>4]
		dst[i+4] = lo[src[i+4]&0xf] ^ hi[src[i+4]>>4]
		dst[i+5] = lo[src[i+5]&0xf] ^ hi[src[i+5]>>4]
		dst[i+6] = lo[src[i+6]&0xf] ^ hi[src[i+6]>>4]
		dst[i+7] = lo[src[i+7]&0xf] ^ hi[src[i+7]>>4]
	}
	for ; i < n; i++ {
		dst[i] = lo[src[i]&0xf] ^ hi[src[i]>>4]
	}
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
