package parity

import (
	"math/rand"
	"testing"

	"repro/internal/race"
)

// TestAllocsParityKernels pins the kernels at zero allocations per
// call — they must be safe to run per-stripe on the hot path over
// pooled buffers. Runs in `make benchcheck`; meaningless under -race
// (the race runtime allocates on its own account).
func TestAllocsParityKernels(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(50))
	dst := make([]byte, 64<<10)
	src := make([]byte, 64<<10)
	rng.Read(src)

	rs, err := NewRS(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, 8)
	parity := make([][]byte, 2)
	for i := range data {
		data[i] = make([]byte, 4096)
		rng.Read(data[i])
	}
	for j := range parity {
		parity[j] = make([]byte, 4096)
	}

	cases := []struct {
		name string
		fn   func()
	}{
		{"XorInto", func() { XorInto(dst, src) }},
		{"mul2Into", func() { mul2Into(dst) }},
		{"GalMulXor", func() { GalMulXor(dst, src, 29) }},
		{"Encode", func() {
			if err := rs.Encode(data, parity); err != nil {
				t.Fatal(err)
			}
		}},
		{"Update", func() { rs.Update(parity, 3, data[0]) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(100, c.fn); n > 0 {
			t.Errorf("%s allocates %.0f per call, want 0", c.name, n)
		}
	}
}

// TestFloorParityThroughput is the benchcheck regression floor: the
// word-parallel kernel must beat the byte loop by a wide margin, and
// RS(8,2) encode must stay in hundreds-of-MB/s territory even on a
// throttled CI host. The real numbers (≥8× and ≥1 GB/s on the bench
// host) are recorded by `raidxbench parity` in BENCH_PR9.json; the
// floors here are deliberately conservative so the test never flakes
// on shared hardware while still catching a kernel that silently
// degrades to byte-at-a-time.
func TestFloorParityThroughput(t *testing.T) {
	if race.Enabled {
		t.Skip("throughput floors are not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("skipping throughput floor in -short mode")
	}
	const n = 64 << 10
	dst, src := benchBufs(n)

	bytewise := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			XorIntoBytewise(dst, src)
		}
	})
	kernel := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			XorInto(dst, src)
		}
	})
	mbps := func(r testing.BenchmarkResult) float64 {
		return float64(n) * float64(r.N) / r.T.Seconds() / 1e6
	}
	ratio := mbps(kernel) / mbps(bytewise)
	t.Logf("xor kernel (%s): %.0f MB/s, byte loop: %.0f MB/s, speedup %.1fx",
		KernelName(), mbps(kernel), mbps(bytewise), ratio)
	// The portable safe64 path (purego, or an arch without the unsafe
	// fast path) only manages ~2x over the compiler-optimized byte
	// loop; the floor there just pins "still word-parallel".
	floor := 3.0
	if !fastPath && simdXor == nil {
		floor = 1.5
	}
	if ratio < floor {
		t.Errorf("XOR kernel only %.1fx over byte loop, floor is %.1fx", ratio, floor)
	}

	enc := testing.Benchmark(func(b *testing.B) { benchRSEncode(b, 8, 2, n) })
	encMBps := float64(8*n) * float64(enc.N) / enc.T.Seconds() / 1e6
	t.Logf("rs(8,2) encode: %.0f MB/s", encMBps)
	if encMBps < 300 {
		t.Errorf("rs(8,2) encode %.0f MB/s, floor is 300 MB/s", encMBps)
	}
}
