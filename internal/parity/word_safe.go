//go:build !((amd64 || arm64 || ppc64 || ppc64le || s390x) && !purego)

package parity

import "encoding/binary"

// fastPath reports whether the unsafe word-access kernels are compiled
// in; this file is the portable fallback (strict-alignment targets, or
// any target with the `purego` build tag). The kernels stay
// word-parallel — binary.LittleEndian compiles to byte loads that the
// compiler fuses where legal — they just never form an unaligned
// pointer.
const fastPath = false

func load64(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[i:])
}

func store64(b []byte, i int, v uint64) {
	binary.LittleEndian.PutUint64(b[i:], v)
}
