// Package parity implements the redundancy kernels every parity scheme
// in this repo is built from: word-parallel XOR, GF(2^8) multiply-
// accumulate via split 4-bit lookup tables, and a systematic
// Reed-Solomon code over those primitives (DESIGN.md §15).
//
// The kernels operate in place over caller-owned buffers — typically
// pooled blocks from internal/bufpool — and never allocate. Memory
// contract: destination and source slices must not overlap (the one
// exception is dst == src element-aliasing in XorInto, which is well
// defined and zeroes dst). No alignment is required: on targets that
// tolerate unaligned word access an unsafe load/store fast path is
// compiled in (word_unsafe.go); elsewhere, or under the `purego` build
// tag, a portable encoding/binary path is used. Both process 8×8 bytes
// per unrolled iteration with a byte tail, so throughput does not
// depend on buffer alignment — only the fast path's constant factor
// does.
package parity

// simdXor, when non-nil, XORs a positive multiple of simdChunk bytes
// of src into dst using vector registers; XorInto hands it the bulk of
// each buffer and finishes the tail with the word loops. Set by the
// per-arch init in xor_amd64.go; nil on other targets and under
// purego.
var (
	simdXor      func(dst, src *byte, n int)
	simdChunk    int
	kernelSuffix string
)

// KernelName identifies the compiled word-access path, for benchmark
// output and bug reports: "unsafe64" when the unaligned fast path is
// built in, "safe64" for the portable fallback, with a "+sse2"/"+avx2"
// suffix when a SIMD bulk tier is active.
func KernelName() string {
	if fastPath {
		return "unsafe64" + kernelSuffix
	}
	return "safe64" + kernelSuffix
}

// XorInto xors src into dst: dst[i] ^= src[i] for i < len(src).
// len(dst) must be >= len(src). This is the hot kernel behind every
// parity computation, delta update, and reconstruction in the repo —
// 8 unrolled 64-bit lanes per iteration, then a word loop, then a
// byte tail, so odd lengths and unaligned sub-slices pay only at the
// edges.
func XorInto(dst, src []byte) {
	n := len(src)
	if n == 0 {
		return
	}
	_ = dst[n-1] // one bounds check for the whole kernel
	i := 0
	if simdXor != nil && n >= simdChunk {
		i = n &^ (simdChunk - 1)
		simdXor(&dst[0], &src[0], i)
	}
	for ; i+64 <= n; i += 64 {
		store64(dst, i, load64(dst, i)^load64(src, i))
		store64(dst, i+8, load64(dst, i+8)^load64(src, i+8))
		store64(dst, i+16, load64(dst, i+16)^load64(src, i+16))
		store64(dst, i+24, load64(dst, i+24)^load64(src, i+24))
		store64(dst, i+32, load64(dst, i+32)^load64(src, i+32))
		store64(dst, i+40, load64(dst, i+40)^load64(src, i+40))
		store64(dst, i+48, load64(dst, i+48)^load64(src, i+48))
		store64(dst, i+56, load64(dst, i+56)^load64(src, i+56))
	}
	for ; i+8 <= n; i += 8 {
		store64(dst, i, load64(dst, i)^load64(src, i))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XorIntoBytewise is the pre-kernel reference implementation: one byte
// per iteration. It exists as the correctness oracle for the
// equivalence tests and as the "before" row in the parity benchmarks;
// production code must use XorInto.
func XorIntoBytewise(dst, src []byte) {
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] ^= v
	}
}

// mul2Into multiplies every byte of p by 2 in GF(2^8) (polynomial
// 0x11d), in place, eight lanes per word. This is the Horner step that
// makes the RAID-6-style Q parity row run at XOR-like speed: the
// per-lane carry of the ·2 is computed SIMD-within-a-register —
// extract each lane's top bit, shift, and conditionally fold the
// reduction polynomial back in. Lane arithmetic never crosses byte
// boundaries, so the trick is endian-agnostic.
func mul2Into(p []byte) {
	const hiBits = 0x8080808080808080
	n := len(p)
	i := 0
	for ; i+8 <= n; i += 8 {
		x := load64(p, i)
		hi := x & hiBits
		store64(p, i, ((x^hi)<<1)^((hi>>7)*0x1d))
	}
	for ; i < n; i++ {
		p[i] = mulBy2(p[i])
	}
}

// FirstDiff returns the index of the first byte where a and b differ,
// comparing word-at-a-time, or -1 if they are equal. If one slice is a
// prefix of the other the index of the first missing byte is returned.
// Verify and scrub paths use it to locate a corruption without a second
// byte-loop pass after bytes.Equal fails.
func FirstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		if load64(a, i) != load64(b, i) {
			break // differing byte is inside this word; byte scan finds it
		}
	}
	for ; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
