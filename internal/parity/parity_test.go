package parity

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestXorKernelEquivalence checks the word-parallel kernel against the
// byte-loop oracle across lengths that exercise every tail shape (0,
// 1, 7, 8, 9, 63, 64, 65, ...) and across unaligned sub-slices, so
// both the unrolled body and the edges are covered on whatever word
// path this build compiled in.
func TestXorKernelEquivalence(t *testing.T) {
	t.Logf("kernel: %s", KernelName())
	rng := rand.New(rand.NewSource(1))
	lengths := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 127, 128, 129, 255, 256, 1000, 4096, 65536}
	for _, n := range lengths {
		for off := 0; off < 9; off++ {
			dst := make([]byte, n+off+16)
			src := make([]byte, n+off+16)
			rng.Read(dst)
			rng.Read(src)
			want := append([]byte(nil), dst...)
			if n > 0 {
				XorIntoBytewise(want[off:off+n], src[off:off+n])
			}
			XorInto(dst[off:off+n], src[off:off+n])
			if !bytes.Equal(dst, want) {
				t.Fatalf("XorInto mismatch at n=%d off=%d (first diff %d)", n, off, FirstDiff(dst, want))
			}
		}
	}
}

func TestXorIntoSelfZeroes(t *testing.T) {
	b := make([]byte, 777)
	rand.New(rand.NewSource(2)).Read(b)
	XorInto(b, b)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, v)
		}
	}
}

// TestMul2Equivalence checks the SWAR ·2 kernel against the per-byte
// reference across odd lengths and offsets.
func TestMul2Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 7, 8, 9, 16, 31, 255, 4096} {
		for off := 0; off < 9; off++ {
			b := make([]byte, n+off)
			rng.Read(b)
			want := make([]byte, n)
			for i := 0; i < n; i++ {
				want[i] = mulBy2(b[off+i])
			}
			mul2Into(b[off : off+n])
			if !bytes.Equal(b[off:off+n], want) {
				t.Fatalf("mul2Into mismatch at n=%d off=%d", n, off)
			}
		}
	}
}

// TestGFTables cross-checks the log/exp multiply and the nibble tables
// against the bitwise reference over the full 256×256 operand space.
func TestGFTables(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := gfMulBitwise(byte(a), byte(b))
			if got := gfMul(byte(a), byte(b)); got != want {
				t.Fatalf("gfMul(%d,%d) = %d, want %d", a, b, got, want)
			}
			if got := mulLo[a][b&0xf] ^ mulHi[a][b>>4]; got != want {
				t.Fatalf("nibble mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a·a⁻¹ = %d for a=%d", got, a)
		}
	}
}

// TestGalMulEquivalence checks the bulk multiply kernels against the
// scalar reference for every coefficient, on an odd length with an
// unaligned offset so tails are in play.
func TestGalMulEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := make([]byte, 203)
	rng.Read(src)
	for c := 0; c < 256; c++ {
		dst := make([]byte, len(src))
		rng.Read(dst)
		want := make([]byte, len(src))
		for i := range src {
			want[i] = dst[i] ^ gfMulBitwise(byte(c), src[i])
		}
		GalMulXor(dst[:], src, byte(c))
		if !bytes.Equal(dst, want) {
			t.Fatalf("GalMulXor c=%d mismatch at %d", c, FirstDiff(dst, want))
		}
		out := make([]byte, len(src))
		rng.Read(out) // must be fully overwritten
		for i := range src {
			want[i] = gfMulBitwise(byte(c), src[i])
		}
		galMul(out, src, byte(c))
		if !bytes.Equal(out, want) {
			t.Fatalf("galMul c=%d mismatch at %d", c, FirstDiff(out, want))
		}
	}
}

func TestFirstDiff(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", -1},
		{"abc", "abc", -1},
		{"abc", "abd", 2},
		{"abc", "ab", 2},
		{"ab", "abc", 2},
		{"xbc", "abc", 0},
		{"aaaaaaaaaaaaaaaab", "aaaaaaaaaaaaaaaac", 16},
	}
	for _, c := range cases {
		if got := FirstDiff([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("FirstDiff(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Long-buffer sweep: a single flipped byte at every position.
	base := make([]byte, 300)
	rand.New(rand.NewSource(5)).Read(base)
	other := append([]byte(nil), base...)
	for i := range base {
		other[i] ^= 0x40
		if got := FirstDiff(base, other); got != i {
			t.Fatalf("FirstDiff flipped@%d = %d", i, got)
		}
		other[i] = base[i]
	}
}

// TestKernelsRaceParallel drives the in-place kernels from many
// goroutines sharing read-only sources — the pattern the raid engines
// use under par.ForEach — so `make race` covers the unsafe word path.
func TestKernelsRaceParallel(t *testing.T) {
	src := make([]byte, 8192)
	rand.New(rand.NewSource(6)).Read(src)
	rs, err := NewRS(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("group", func(t *testing.T) {
		for g := 0; g < 8; g++ {
			t.Run("", func(t *testing.T) {
				t.Parallel()
				dst := make([]byte, len(src))
				data := make([][]byte, 4)
				parity := make([][]byte, 2)
				for i := range data {
					data[i] = src[i*2048 : (i+1)*2048]
				}
				for j := range parity {
					parity[j] = make([]byte, 2048)
				}
				for iter := 0; iter < 50; iter++ {
					XorInto(dst, src)
					mul2Into(dst)
					GalMulXor(dst, src, 7)
					if err := rs.Encode(data, parity); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	})
}
