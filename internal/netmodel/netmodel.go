// Package netmodel models the Trojans cluster's interconnect: a
// non-blocking Fast Ethernet switch with one full-duplex 100 Mbps port
// per node. Each node owns two NIC resources (transmit and receive); a
// message occupies the sender's TX and the receiver's RX servers for its
// serialization time, so per-port saturation — the effect that caps a
// centralized NFS server at roughly the link rate — emerges naturally.
package netmodel

import (
	"context"
	"fmt"
	"time"

	"repro/internal/vclock"
)

// Params describes the interconnect.
type Params struct {
	// LinkBps is the per-direction bandwidth of one switch port in
	// bytes per second (Fast Ethernet: 12.5e6).
	LinkBps float64
	// Latency is the one-way propagation plus switching delay.
	Latency time.Duration
	// PerMessage is fixed protocol/processing overhead charged on the
	// NICs per message (interrupts, TCP/IP stack).
	PerMessage time.Duration
}

// FastEthernet returns parameters for the paper's 100 Mbps switched
// network, including late-90s protocol stack overheads.
func FastEthernet() Params {
	return Params{
		LinkBps:    12.5e6,
		Latency:    100 * time.Microsecond,
		PerMessage: 150 * time.Microsecond,
	}
}

// Network is the cluster interconnect.
type Network struct {
	params Params
	ports  []*Port
}

// Port is one node's full-duplex attachment to the switch. Each
// direction has a foreground lane and a background lane: deferred
// mirror pushes ride the background lane at low priority, using
// capacity the foreground traffic leaves spare, so they never delay
// synchronous requests — the CDD's "hide mirroring overhead in the
// background" discipline. Flush-style accounting happens at the disks,
// which carry the corresponding deferred reservations.
type Port struct {
	Node int
	TX   *vclock.Resource
	RX   *vclock.Resource
	TXBG *vclock.Resource
	RXBG *vclock.Resource
}

// New builds a network with n ports on simulator s.
func New(s *vclock.Sim, n int, params Params) *Network {
	if n < 1 {
		panic("netmodel: need at least one node")
	}
	net := &Network{params: params}
	for i := 0; i < n; i++ {
		net.ports = append(net.ports, &Port{
			Node: i,
			TX:   vclock.NewResource(s, fmt.Sprintf("nic%d.tx", i), 1),
			RX:   vclock.NewResource(s, fmt.Sprintf("nic%d.rx", i), 1),
			TXBG: vclock.NewResource(s, fmt.Sprintf("nic%d.txbg", i), 1),
			RXBG: vclock.NewResource(s, fmt.Sprintf("nic%d.rxbg", i), 1),
		})
	}
	return net
}

// Nodes reports the number of ports.
func (n *Network) Nodes() int { return len(n.ports) }

// Port returns node i's port (for utilization reporting).
func (n *Network) Port(i int) *Port { return n.ports[i] }

// Params returns the interconnect parameters.
func (n *Network) Params() Params { return n.params }

// serialization is the NIC occupancy time for a message of the given
// payload size.
func (n *Network) serialization(bytes int) time.Duration {
	return n.params.PerMessage + time.Duration(float64(bytes)/n.params.LinkBps*float64(time.Second))
}

// MessageTime reports the end-to-end latency of one uncontended message.
func (n *Network) MessageTime(bytes int) time.Duration {
	return n.serialization(bytes) + n.params.Latency
}

func (n *Network) checkPair(from, to int) error {
	if from < 0 || from >= len(n.ports) || to < 0 || to >= len(n.ports) {
		return fmt.Errorf("netmodel: node pair (%d,%d) out of range [0,%d)", from, to, len(n.ports))
	}
	return nil
}

// Send delivers a message of the given size from node from to node to,
// blocking the calling process until the last byte arrives. Local
// delivery (from == to) costs only the per-message overhead. Without a
// vclock process in ctx, Send is a no-op (real-time mode provides real
// timing).
func (n *Network) Send(ctx context.Context, from, to int, bytes int) error {
	if err := n.checkPair(from, to); err != nil {
		return err
	}
	p, ok := vclock.From(ctx)
	if !ok {
		return nil
	}
	if from == to {
		p.Sleep(n.params.PerMessage)
		return nil
	}
	d := n.serialization(bytes)
	vclock.UseJoint(p, d, n.ports[from].TX, n.ports[to].RX)
	p.Sleep(n.params.Latency)
	return nil
}

// SendBackground reserves the NIC time for a message without blocking
// the caller — the model for the CDD's deferred mirror pushes, where the
// driver queues the transfer and returns. It reports when the reserved
// transfer will complete (arrival at the receiver).
func (n *Network) SendBackground(ctx context.Context, from, to int, bytes int) (time.Duration, error) {
	if err := n.checkPair(from, to); err != nil {
		return 0, err
	}
	p, ok := vclock.From(ctx)
	if !ok {
		return 0, nil
	}
	s := p.Sim()
	if from == to {
		return s.Now(), nil
	}
	d := n.serialization(bytes)
	start := vclock.ReserveJoint(s, d, n.ports[from].TXBG, n.ports[to].RXBG)
	return start + d + n.params.Latency, nil
}
