package netmodel

import (
	"context"
	"testing"
	"time"

	"repro/internal/vclock"
)

// flat returns parameters with zero latency/overhead at 1 MB/s for easy
// arithmetic.
func flat() Params {
	return Params{LinkBps: 1e6, Latency: 0, PerMessage: 0}
}

func TestMessageTime(t *testing.T) {
	p := Params{LinkBps: 1e6, Latency: time.Millisecond, PerMessage: 100 * time.Microsecond}
	s := vclock.New()
	n := New(s, 2, p)
	// 1000 bytes at 1 MB/s = 1ms serialization + 0.1ms overhead + 1ms latency.
	if got := n.MessageTime(1000); got != 2100*time.Microsecond {
		t.Fatalf("MessageTime = %v, want 2.1ms", got)
	}
}

func TestSendBlocksForTransferTime(t *testing.T) {
	s := vclock.New()
	n := New(s, 2, flat())
	s.Spawn("c", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		if err := n.Send(ctx, 0, 1, 5000); err != nil {
			t.Error(err)
		}
		if p.Now() != 5*time.Millisecond {
			t.Errorf("send of 5000B finished at %v, want 5ms", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSenderPortIsSerialized(t *testing.T) {
	s := vclock.New()
	n := New(s, 3, flat())
	ends := make([]time.Duration, 2)
	// Two concurrent sends from node 0 to different receivers share
	// node 0's TX port: they serialize.
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("tx", func(p *vclock.Proc) {
			ctx := vclock.With(context.Background(), p)
			if err := n.Send(ctx, 0, i+1, 10000); err != nil {
				t.Error(err)
			}
			ends[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != 10*time.Millisecond || ends[1] != 20*time.Millisecond {
		t.Fatalf("ends = %v, want [10ms 20ms]", ends)
	}
}

func TestDisjointPairsOverlap(t *testing.T) {
	s := vclock.New()
	n := New(s, 4, flat())
	ends := make([]time.Duration, 2)
	pairs := [][2]int{{0, 1}, {2, 3}}
	for i, pr := range pairs {
		i, pr := i, pr
		s.Spawn("tx", func(p *vclock.Proc) {
			ctx := vclock.With(context.Background(), p)
			if err := n.Send(ctx, pr[0], pr[1], 10000); err != nil {
				t.Error(err)
			}
			ends[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// A non-blocking switch carries disjoint pairs concurrently.
	if ends[0] != 10*time.Millisecond || ends[1] != 10*time.Millisecond {
		t.Fatalf("ends = %v, want both 10ms", ends)
	}
}

func TestReceiverPortBottleneck(t *testing.T) {
	s := vclock.New()
	n := New(s, 3, flat())
	ends := make([]time.Duration, 2)
	// Two senders target node 2: its RX port serializes them. This is
	// the NFS-server effect from the paper's Figure 5.
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("tx", func(p *vclock.Proc) {
			ctx := vclock.With(context.Background(), p)
			if err := n.Send(ctx, i, 2, 10000); err != nil {
				t.Error(err)
			}
			ends[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != 10*time.Millisecond || ends[1] != 20*time.Millisecond {
		t.Fatalf("ends = %v, want [10ms 20ms]", ends)
	}
}

func TestLocalSendCostsOnlyOverhead(t *testing.T) {
	s := vclock.New()
	p := Params{LinkBps: 1e6, Latency: time.Millisecond, PerMessage: 50 * time.Microsecond}
	n := New(s, 2, p)
	s.Spawn("c", func(pr *vclock.Proc) {
		ctx := vclock.With(context.Background(), pr)
		if err := n.Send(ctx, 1, 1, 1<<20); err != nil {
			t.Error(err)
		}
		if pr.Now() != 50*time.Microsecond {
			t.Errorf("local send took %v, want 50µs", pr.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendBackgroundDoesNotBlock(t *testing.T) {
	s := vclock.New()
	n := New(s, 2, flat())
	s.Spawn("c", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		done, err := n.SendBackground(ctx, 0, 1, 10000)
		if err != nil {
			t.Error(err)
		}
		if p.Now() != 0 {
			t.Errorf("background send blocked until %v", p.Now())
		}
		if done != 10*time.Millisecond {
			t.Errorf("background completion at %v, want 10ms", done)
		}
		// Background rides the low-priority lane: a foreground send on
		// the same port is NOT delayed by it.
		if err := n.Send(ctx, 0, 1, 10000); err != nil {
			t.Error(err)
		}
		if p.Now() != 10*time.Millisecond {
			t.Errorf("foreground send finished at %v, want 10ms (bg must not delay fg)", p.Now())
		}
		// Background transfers serialize among themselves.
		done2, err := n.SendBackground(ctx, 0, 1, 10000)
		if err != nil {
			t.Error(err)
		}
		if done2 != 20*time.Millisecond {
			t.Errorf("second background completion at %v, want 20ms", done2)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendWithoutProcIsNoOp(t *testing.T) {
	s := vclock.New()
	n := New(s, 2, flat())
	if err := n.Send(context.Background(), 0, 1, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestBadNodePair(t *testing.T) {
	s := vclock.New()
	n := New(s, 2, flat())
	if err := n.Send(context.Background(), 0, 5, 10); err == nil {
		t.Fatal("out-of-range receiver accepted")
	}
	if _, err := n.SendBackground(context.Background(), -1, 0, 10); err == nil {
		t.Fatal("out-of-range sender accepted")
	}
}
