package cluster

import (
	"fmt"
	"strings"
)

// ResourceUse summarizes one resource after a run.
type ResourceUse struct {
	Name        string
	Utilization float64
	Ops         int64
}

// Utilization snapshots every resource's usage at the current virtual
// time: per-disk foreground and background lanes, per-port NIC
// directions, and per-node CPUs. The benchmark harness prints it in
// verbose mode to show where each architecture's bottleneck sits.
type Utilization struct {
	Disks   []ResourceUse // foreground arms
	DiskBGs []ResourceUse // deferred-write lanes
	TX, RX  []ResourceUse
	CPUs    []ResourceUse
}

// Utilization gathers the snapshot.
func (c *Cluster) Utilization() Utilization {
	var u Utilization
	for _, d := range c.Disks {
		if d.Arm() != nil {
			u.Disks = append(u.Disks, ResourceUse{d.ID(), d.Arm().Utilization(), d.Arm().Ops()})
			u.DiskBGs = append(u.DiskBGs, ResourceUse{d.ID(), d.BgLane().Utilization(), d.BgLane().Ops()})
		}
	}
	for i := 0; i < c.Params.Nodes; i++ {
		p := c.Net.Port(i)
		u.TX = append(u.TX, ResourceUse{p.TX.Name(), p.TX.Utilization(), p.TX.Ops()})
		u.RX = append(u.RX, ResourceUse{p.RX.Name(), p.RX.Utilization(), p.RX.Ops()})
		u.CPUs = append(u.CPUs, ResourceUse{c.Nodes[i].CPU.Name(), c.Nodes[i].CPU.Utilization(), c.Nodes[i].CPU.Ops()})
	}
	return u
}

// summarize reduces a resource class to min/mean/max utilization.
func summarize(rs []ResourceUse) (min, mean, max float64) {
	if len(rs) == 0 {
		return 0, 0, 0
	}
	min = rs[0].Utilization
	for _, r := range rs {
		if r.Utilization < min {
			min = r.Utilization
		}
		if r.Utilization > max {
			max = r.Utilization
		}
		mean += r.Utilization
	}
	mean /= float64(len(rs))
	return
}

// String renders the snapshot as a compact table.
func (u Utilization) String() string {
	var b strings.Builder
	row := func(name string, rs []ResourceUse) {
		min, mean, max := summarize(rs)
		var ops int64
		for _, r := range rs {
			ops += r.Ops
		}
		fmt.Fprintf(&b, "  %-10s util min/mean/max %5.1f%%/%5.1f%%/%5.1f%%  ops %d\n",
			name, min*100, mean*100, max*100, ops)
	}
	row("disk(fg)", u.Disks)
	row("disk(bg)", u.DiskBGs)
	row("nic-tx", u.TX)
	row("nic-rx", u.RX)
	row("cpu", u.CPUs)
	return b.String()
}

// Hottest reports the single busiest resource — the bottleneck.
func (u Utilization) Hottest() ResourceUse {
	best := ResourceUse{}
	for _, class := range [][]ResourceUse{u.Disks, u.DiskBGs, u.TX, u.RX, u.CPUs} {
		for _, r := range class {
			if r.Utilization > best.Utilization {
				best = r
			}
		}
	}
	return best
}
