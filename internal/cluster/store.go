package cluster

import "repro/internal/store"

// newStore builds the backing store for a simulated disk. Kept as a
// seam so large simulations could swap in a sparse or file-backed store
// without touching cluster assembly.
func newStore(blockSize int, blocks int64) store.BlockStore {
	return store.NewMem(blockSize, blocks)
}
