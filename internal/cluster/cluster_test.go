package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/netmodel"
	"repro/internal/vclock"
)

// flatParams returns a 4-node cluster with arithmetic-friendly costs.
func flatParams() Params {
	return Params{
		Nodes:         4,
		DisksPerNode:  1,
		BlockSize:     1024,
		DiskBlocks:    64,
		Disk:          disk.Model{Seek: 0, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: 0},
		Net:           netmodel.Params{LinkBps: 1e6, Latency: 0, PerMessage: 0},
		CPUPerRequest: 0,
		ReqMsgBytes:   0,
	}
}

func TestTopology(t *testing.T) {
	p := DefaultParams()
	p.DisksPerNode = 3
	c := New(p)
	if len(c.Disks) != 36 {
		t.Fatalf("%d disks, want 36", len(c.Disks))
	}
	for j := range c.Disks {
		if c.NodeOfDisk(j) != j%12 {
			t.Fatalf("disk %d on node %d, want %d", j, c.NodeOfDisk(j), j%12)
		}
	}
	for i, n := range c.Nodes {
		if len(n.Disks) != 3 {
			t.Fatalf("node %d has %d disks, want 3", i, len(n.Disks))
		}
	}
}

func TestLocalAccessSkipsNetwork(t *testing.T) {
	c := New(flatParams())
	devs := c.DevView(0) // disk 0 is local to node 0
	var local, remote time.Duration
	c.Sim.Spawn("client", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		buf := make([]byte, 1024)
		t0 := p.Now()
		if err := devs[0].ReadBlocks(ctx, 0, buf); err != nil {
			t.Error(err)
		}
		local = p.Now() - t0
		t0 = p.Now()
		if err := devs[1].ReadBlocks(ctx, 0, buf); err != nil {
			t.Error(err)
		}
		remote = p.Now() - t0
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Local: 1024B at 1 MB/s disk = 1.024 ms.
	// Remote: + 1024B response over the 1 MB/s link = 2.048 ms.
	if local != 1024*time.Microsecond {
		t.Errorf("local read = %v, want 1.024ms", local)
	}
	if remote != 2048*time.Microsecond {
		t.Errorf("remote read = %v, want 2.048ms", remote)
	}
}

func TestRemoteWriteCarriesDataOverNet(t *testing.T) {
	c := New(flatParams())
	devs := c.DevView(0)
	c.Sim.Spawn("client", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		data := bytes.Repeat([]byte{5}, 2048)
		if err := devs[2].WriteBlocks(ctx, 0, data); err != nil {
			t.Error(err)
		}
		// 2048B over net (2.048ms) + disk write (2.048ms).
		if p.Now() != 4096*time.Microsecond {
			t.Errorf("remote write took %v, want 4.096ms", p.Now())
		}
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundRemoteWriteReturnsImmediately(t *testing.T) {
	c := New(flatParams())
	devs := c.DevView(0)
	c.Sim.Spawn("client", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		data := bytes.Repeat([]byte{7}, 1024)
		if err := devs[3].WriteBlocksBackground(ctx, 5, data); err != nil {
			t.Error(err)
		}
		if p.Now() != 0 {
			t.Errorf("background remote write blocked until %v", p.Now())
		}
		// Data is durable (simulation semantics).
		got := make([]byte, 1024)
		if err := c.Disks[3].ReadBlocks(context.Background(), 5, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("background write lost")
		}
		// Flush waits for the deferred disk work.
		if err := devs[3].Flush(ctx); err != nil {
			t.Error(err)
		}
		if p.Now() == 0 {
			t.Error("flush of pending background write returned instantly")
		}
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDataVisibleAcrossViews(t *testing.T) {
	c := New(flatParams())
	a := c.DevView(0)
	b := c.DevView(2)
	c.Sim.Spawn("writer-then-reader", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		data := bytes.Repeat([]byte{9}, 1024)
		if err := a[1].WriteBlocks(ctx, 3, data); err != nil {
			t.Error(err)
		}
		got := make([]byte, 1024)
		if err := b[1].ReadBlocks(ctx, 3, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("views see different data")
		}
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUChargePerRequest(t *testing.T) {
	p := flatParams()
	p.CPUPerRequest = time.Millisecond
	c := New(p)
	devs := c.DevView(0)
	c.Sim.Spawn("client", func(pr *vclock.Proc) {
		ctx := vclock.With(context.Background(), pr)
		buf := make([]byte, 1024)
		if err := devs[1].ReadBlocks(ctx, 0, buf); err != nil {
			t.Error(err)
		}
		// client CPU 1ms + server CPU 1ms + disk 1.024ms + response 1.024ms.
		if pr.Now() != 4048*time.Microsecond {
			t.Errorf("remote read with CPU costs took %v, want 4.048ms", pr.Now())
		}
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Nodes[0].CPU.Ops() != 1 || c.Nodes[1].CPU.Ops() != 1 {
		t.Errorf("CPU ops = %d,%d, want 1,1", c.Nodes[0].CPU.Ops(), c.Nodes[1].CPU.Ops())
	}
}

func TestUtilizationSnapshot(t *testing.T) {
	c := New(flatParams())
	devs := c.DevView(0)
	c.Sim.Spawn("client", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		buf := make([]byte, 1024)
		for i := 0; i < 4; i++ {
			if err := devs[1].ReadBlocks(ctx, int64(i), buf); err != nil {
				t.Error(err)
			}
		}
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	u := c.Utilization()
	if len(u.Disks) != 4 || len(u.TX) != 4 || len(u.CPUs) != 4 {
		t.Fatalf("snapshot sizes: %d disks %d tx %d cpus", len(u.Disks), len(u.TX), len(u.CPUs))
	}
	hot := u.Hottest()
	if hot.Utilization <= 0 {
		t.Fatal("no hot resource found after I/O")
	}
	// Disk 1 served everything: it must be the bottleneck.
	if hot.Name != "n1d0" {
		t.Fatalf("hottest = %q, want disk n1d0", hot.Name)
	}
	if u.String() == "" {
		t.Fatal("empty report")
	}
}

func TestLocalDevsAreNodeLocal(t *testing.T) {
	p := flatParams()
	p.DisksPerNode = 2
	c := New(p)
	devs := c.LocalDevs(2)
	if len(devs) != 2 {
		t.Fatalf("%d local devs, want 2", len(devs))
	}
	// Accessing a local dev must not touch the network.
	c.Sim.Spawn("local", func(pr *vclock.Proc) {
		ctx := vclock.With(context.Background(), pr)
		if err := devs[0].WriteBlocks(ctx, 0, make([]byte, 1024)); err != nil {
			t.Error(err)
		}
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Nodes; i++ {
		port := c.Net.Port(i)
		if port.TX.Ops() != 0 || port.RX.Ops() != 0 {
			t.Fatalf("node %d NIC used for local I/O", i)
		}
	}
}
