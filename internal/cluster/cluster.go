// Package cluster assembles the simulated Trojans testbed: n nodes,
// each with a CPU, a full-duplex switch port, and k local disks, all
// sharing one virtual clock. It provides per-client *device views* —
// raid.Dev implementations that reach any disk in the single I/O space
// while charging the network, CPU, and disk-arm costs that access
// actually incurs from that client's node. Array engines built over a
// view are therefore location-aware without knowing it, exactly like a
// host using the cooperative disk drivers.
package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/netmodel"
	"repro/internal/raid"
	"repro/internal/vclock"
)

// Params describes the simulated cluster hardware and software costs.
type Params struct {
	// Nodes is the number of cluster hosts (the paper's n).
	Nodes int
	// DisksPerNode is k; global disk j lives on node j mod Nodes.
	DisksPerNode int
	// BlockSize in bytes (the paper's experiments use 32 KB accesses).
	BlockSize int
	// DiskBlocks is the per-disk capacity in blocks.
	DiskBlocks int64
	// Disk is the per-disk timing model.
	Disk disk.Model
	// Net is the interconnect model.
	Net netmodel.Params
	// CPUPerRequest is the software-stack overhead charged on the CPU
	// of each endpoint per I/O request (driver, syscall, interrupt,
	// protocol processing). This is the main knob separating the 1999
	// Linux 2.2 stack from raw hardware limits.
	CPUPerRequest time.Duration
	// ReqMsgBytes is the size of a request/ack control message.
	ReqMsgBytes int
}

// DefaultParams returns the calibration used for all paper
// reproductions: 12 nodes, one ~10 MB/s SCSI disk each, switched Fast
// Ethernet, and late-90s software overheads.
func DefaultParams() Params {
	return Params{
		Nodes:         12,
		DisksPerNode:  1,
		BlockSize:     32 << 10,
		DiskBlocks:    2048,
		Disk:          disk.DefaultModel(),
		Net:           netmodel.FastEthernet(),
		CPUPerRequest: 300 * time.Microsecond,
		ReqMsgBytes:   128,
	}
}

// Node is one cluster host.
type Node struct {
	ID    int
	CPU   *vclock.Resource
	Disks []*disk.Disk // local disks, in local order
}

// Cluster is the assembled simulated testbed.
type Cluster struct {
	Sim    *vclock.Sim
	Net    *netmodel.Network
	Params Params
	Nodes  []*Node
	// Disks lists all disks in SIOS (global) order: disk j on node
	// j mod Nodes, local index j / Nodes.
	Disks []*disk.Disk
}

// New builds a cluster on a fresh simulator.
func New(p Params) *Cluster {
	if p.Nodes < 1 || p.DisksPerNode < 1 {
		panic(fmt.Sprintf("cluster: bad geometry %dx%d", p.Nodes, p.DisksPerNode))
	}
	s := vclock.New()
	c := &Cluster{
		Sim:    s,
		Net:    netmodel.New(s, p.Nodes, p.Net),
		Params: p,
	}
	for i := 0; i < p.Nodes; i++ {
		c.Nodes = append(c.Nodes, &Node{
			ID:  i,
			CPU: vclock.NewResource(s, fmt.Sprintf("cpu%d", i), 1),
		})
	}
	total := p.Nodes * p.DisksPerNode
	for j := 0; j < total; j++ {
		node := j % p.Nodes
		d := disk.New(s, fmt.Sprintf("n%dd%d", node, j/p.Nodes),
			newStore(p.BlockSize, p.DiskBlocks), p.Disk)
		c.Disks = append(c.Disks, d)
		c.Nodes[node].Disks = append(c.Nodes[node].Disks, d)
	}
	return c
}

// NodeOfDisk reports which node hosts global disk j.
func (c *Cluster) NodeOfDisk(j int) int { return j % c.Params.Nodes }

// DevView returns raid.Dev handles for every disk in SIOS order, as
// seen from clientNode: local disks are direct, remote disks charge
// network and CPU time per access.
func (c *Cluster) DevView(clientNode int) []raid.Dev {
	devs := make([]raid.Dev, len(c.Disks))
	for j, d := range c.Disks {
		devs[j] = &simDev{c: c, client: clientNode, server: c.NodeOfDisk(j), d: d}
	}
	return devs
}

// LocalDevs returns dev handles for one node's local disks only (used
// by the NFS baseline's server and by local checkpoint mirrors).
func (c *Cluster) LocalDevs(node int) []raid.Dev {
	out := make([]raid.Dev, len(c.Nodes[node].Disks))
	for i, d := range c.Nodes[node].Disks {
		out[i] = &simDev{c: c, client: node, server: node, d: d}
	}
	return out
}

// simDev is the simulated counterpart of cdd.RemoteDev: raid.Dev over
// the cluster fabric, charging message and CPU costs.
type simDev struct {
	c      *Cluster
	client int
	server int
	d      *disk.Disk
}

var _ raid.Dev = (*simDev)(nil)

func (v *simDev) BlockSize() int   { return v.d.BlockSize() }
func (v *simDev) NumBlocks() int64 { return v.d.NumBlocks() }
func (v *simDev) Healthy() bool    { return v.d.Healthy() }

// Disk exposes the underlying physical disk (stats, fault injection).
func (v *simDev) Disk() *disk.Disk { return v.d }

// QueueBacklog implements raid.QueueReporter by forwarding the physical
// disk's pending foreground work.
func (v *simDev) QueueBacklog() time.Duration { return v.d.QueueBacklog() }

// BgQueueBacklog implements raid.BgQueueReporter by forwarding the
// physical disk's deferred-write lane backlog.
func (v *simDev) BgQueueBacklog() time.Duration { return v.d.BgQueueBacklog() }

func (v *simDev) cpu(ctx context.Context, node int) {
	if p, ok := vclock.From(ctx); ok {
		v.c.Nodes[node].CPU.Use(p, v.c.Params.CPUPerRequest)
	}
}

// ReadBlocks: request message to the manager, disk read, data response.
func (v *simDev) ReadBlocks(ctx context.Context, b int64, buf []byte) error {
	v.cpu(ctx, v.client)
	if v.client != v.server {
		if err := v.c.Net.Send(ctx, v.client, v.server, v.c.Params.ReqMsgBytes); err != nil {
			return err
		}
		v.cpu(ctx, v.server)
	}
	if err := v.d.ReadBlocks(ctx, b, buf); err != nil {
		return err
	}
	if v.client != v.server {
		if err := v.c.Net.Send(ctx, v.server, v.client, len(buf)); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks: data message to the manager, disk write, ack.
func (v *simDev) WriteBlocks(ctx context.Context, b int64, data []byte) error {
	v.cpu(ctx, v.client)
	if v.client != v.server {
		if err := v.c.Net.Send(ctx, v.client, v.server, len(data)); err != nil {
			return err
		}
		v.cpu(ctx, v.server)
	}
	if err := v.d.WriteBlocks(ctx, b, data); err != nil {
		return err
	}
	if v.client != v.server {
		if err := v.c.Net.Send(ctx, v.server, v.client, v.c.Params.ReqMsgBytes); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocksBackground: the client pays only its local enqueue cost;
// the transfer and the disk time ride the low-priority background
// lanes (Flush on the disk accounts for the deferred work).
func (v *simDev) WriteBlocksBackground(ctx context.Context, b int64, data []byte) error {
	v.cpu(ctx, v.client)
	if v.client != v.server {
		if _, err := v.c.Net.SendBackground(ctx, v.client, v.server, len(data)); err != nil {
			return err
		}
	}
	return v.d.WriteBlocksBackground(ctx, b, data)
}

// Flush: control round trip plus a drain of the disk's reserved work.
func (v *simDev) Flush(ctx context.Context) error {
	v.cpu(ctx, v.client)
	if v.client != v.server {
		if err := v.c.Net.Send(ctx, v.client, v.server, v.c.Params.ReqMsgBytes); err != nil {
			return err
		}
	}
	if err := v.d.Flush(ctx); err != nil {
		return err
	}
	if v.client != v.server {
		if err := v.c.Net.Send(ctx, v.server, v.client, v.c.Params.ReqMsgBytes); err != nil {
			return err
		}
	}
	return nil
}
