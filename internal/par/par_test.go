package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestDoRealRunsAll(t *testing.T) {
	var n int64
	err := Do(context.Background(),
		func(context.Context) error { atomic.AddInt64(&n, 1); return nil },
		func(context.Context) error { atomic.AddInt64(&n, 1); return nil },
		func(context.Context) error { atomic.AddInt64(&n, 1); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ran %d fns, want 3", n)
	}
}

func TestDoRealFirstErrorInOrder(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	err := Do(context.Background(),
		func(context.Context) error { return nil },
		func(context.Context) error { return e1 },
		func(context.Context) error { return e2 },
	)
	if err != e1 {
		t.Fatalf("got %v, want %v", err, e1)
	}
}

// TestDoRealCancelsSiblingsOnFirstError: once one function fails, the
// context handed to its siblings must be cancelled, so a doomed striped
// operation does not wait out every other column's retry budget.
func TestDoRealCancelsSiblingsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	start := time.Now()
	err := Do(context.Background(),
		func(ctx context.Context) error {
			// A sibling that would block for a long time unless cancelled.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(30 * time.Second):
				return errors.New("sibling was not cancelled")
			}
		},
		func(context.Context) error { return boom },
	)
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("Do took %v; first error did not cancel siblings", took)
	}
	if err != boom {
		t.Fatalf("got %v, want the root cause %v", err, boom)
	}
}

// TestDoRealRootCauseBeatsCancellationEcho: the error reported must be
// the failure that triggered the cancellation, not an earlier-in-order
// sibling's ctx.Canceled echo.
func TestDoRealRootCauseBeatsCancellationEcho(t *testing.T) {
	boom := errors.New("boom")
	err := Do(context.Background(),
		func(ctx context.Context) error {
			<-ctx.Done() // fails only because the sibling failed
			return ctx.Err()
		},
		func(context.Context) error { return boom },
	)
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

// TestDoRealParentCancellationStillReported: when the caller's own
// context ends, the cancellation error is the legitimate result.
func TestDoRealParentCancellationStillReported(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Do(ctx,
		func(ctx context.Context) error { <-ctx.Done(); return ctx.Err() },
		func(ctx context.Context) error { <-ctx.Done(); return ctx.Err() },
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestDoNilAndEmpty(t *testing.T) {
	if err := Do(context.Background()); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := Do(context.Background(), nil, func(context.Context) error { ran = true; return nil }, nil); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single live fn did not run")
	}
}

func TestDoSimOverlapsInVirtualTime(t *testing.T) {
	s := vclock.New()
	var elapsed time.Duration
	s.Spawn("parent", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		err := Do(ctx,
			func(ctx context.Context) error {
				c, _ := vclock.From(ctx)
				c.Sleep(30 * time.Millisecond)
				return nil
			},
			func(ctx context.Context) error {
				c, _ := vclock.From(ctx)
				c.Sleep(50 * time.Millisecond)
				return nil
			},
		)
		if err != nil {
			t.Error(err)
		}
		elapsed = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Parallel children take max(30,50)=50ms, not 80ms.
	if elapsed != 50*time.Millisecond {
		t.Fatalf("fork-join took %v, want 50ms", elapsed)
	}
}

func TestDoSimPropagatesError(t *testing.T) {
	s := vclock.New()
	boom := errors.New("boom")
	s.Spawn("parent", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		err := Do(ctx,
			func(context.Context) error { return nil },
			func(context.Context) error { return boom },
		)
		if err != boom {
			t.Errorf("got %v, want boom", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestForEach(t *testing.T) {
	s := vclock.New()
	seen := make([]bool, 8)
	s.Spawn("parent", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		err := ForEach(ctx, len(seen), func(ctx context.Context, i int) error {
			c, _ := vclock.From(ctx)
			c.Sleep(time.Duration(i) * time.Millisecond)
			seen[i] = true
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestForEachZero(t *testing.T) {
	if err := ForEach(context.Background(), 0, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDoSimChildrenInheritContextValues: values attached to the parent
// context (other than the proc itself) must be visible in children.
func TestDoSimChildrenInheritContextValues(t *testing.T) {
	type key struct{}
	s := vclock.New()
	s.Spawn("parent", func(p *vclock.Proc) {
		ctx := context.WithValue(vclock.With(context.Background(), p), key{}, "payload")
		err := Do(ctx,
			func(ctx context.Context) error {
				if v, _ := ctx.Value(key{}).(string); v != "payload" {
					t.Errorf("child 0 lost context value: %q", v)
				}
				// And the child must carry its own proc, not the parent's.
				child, ok := vclock.From(ctx)
				if !ok || child == p {
					t.Error("child 0 has no distinct proc")
				}
				return nil
			},
			func(ctx context.Context) error {
				if v, _ := ctx.Value(key{}).(string); v != "payload" {
					t.Errorf("child 1 lost context value: %q", v)
				}
				return nil
			},
		)
		if err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestNestedDoSim: fork-join inside fork-join composes (engines nest
// par calls: array write -> per-disk ops -> RAID-5 per-stripe ops).
func TestNestedDoSim(t *testing.T) {
	s := vclock.New()
	var leafRuns int
	s.Spawn("root", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		err := ForEach(ctx, 3, func(ctx context.Context, i int) error {
			return ForEach(ctx, 4, func(ctx context.Context, j int) error {
				c, _ := vclock.From(ctx)
				c.Sleep(time.Duration(i+j) * time.Millisecond)
				leafRuns++
				return nil
			})
		})
		if err != nil {
			t.Error(err)
		}
		// Max path: i=2 branch with j=3 leaf => 5ms.
		if p.Now() != 5*time.Millisecond {
			t.Errorf("nested fork-join elapsed %v, want 5ms", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if leafRuns != 12 {
		t.Fatalf("%d leaves ran, want 12", leafRuns)
	}
}
