// Package par provides fork-join parallelism that works both in real
// time (goroutines) and in virtual time (vclock child processes).
//
// Array engines use it to issue per-disk I/O in parallel: a striped read
// touches many disks at once, and the elapsed time must be the maximum
// of the per-disk times, not their sum. When the context carries a
// vclock.Proc, children are spawned as simulated processes so that the
// virtual clock observes the overlap; otherwise ordinary goroutines are
// used.
package par

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Do runs every function, in parallel, and waits for all of them. It
// returns the first non-nil error in argument order. A nil function is
// skipped.
//
// In real time, the first failure cancels the context passed to the
// remaining siblings, so a doomed fan-out (one column of a striped read
// has lost both copies) fails as soon as the root cause is known
// instead of waiting out every other column's full retry/backoff
// budget. Siblings that fail only because of that cancellation are not
// reported as the operation's error: the root cause wins, chosen
// deterministically as the first non-cancellation error in argument
// order.
//
// Under a traced context the whole fan-out is one "par.do" span (Val =
// branch count), so a waterfall shows the fan-out's wall time as the
// max of its branches, with every branch a child span.
func Do(ctx context.Context, fns ...func(context.Context) error) (err error) {
	live := fns[:0]
	for _, fn := range fns {
		if fn != nil {
			live = append(live, fn)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0](ctx)
	}
	ctx, h := trace.Start(ctx, "par.do", "")
	h.Val = int64(len(live))
	defer func() { h.End(err) }()
	if p, ok := vclock.From(ctx); ok {
		return doSim(ctx, p, live)
	}
	return doReal(ctx, live)
}

func doSim(ctx context.Context, p *vclock.Proc, fns []func(context.Context) error) error {
	s := p.Sim()
	errs := make([]error, len(fns))
	remaining := len(fns)
	gate := vclock.NewGate(s, "par.Do")
	for i, fn := range fns {
		i, fn := i, fn
		s.Spawn(fmt.Sprintf("%s/par%d", p.Name(), i), func(child *vclock.Proc) {
			errs[i] = fn(vclock.With(ctx, child))
			remaining--
			if remaining == 0 {
				gate.Broadcast()
			}
		})
	}
	// The children are scheduled at the current instant; park until the
	// last one finishes.
	if remaining > 0 {
		gate.Wait(p)
	}
	return firstError(errs)
}

func doReal(ctx context.Context, fns []func(context.Context) error) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for i, fn := range fns {
		go func(i int, fn func(context.Context) error) {
			defer wg.Done()
			if err := fn(cctx); err != nil {
				errs[i] = err
				cancel() // first failure aborts the siblings
			}
		}(i, fn)
	}
	wg.Wait()
	if ctx.Err() != nil {
		// The caller's own context ended; every error is legitimate.
		return firstError(errs)
	}
	// Prefer the root cause over a sibling's cancellation echo.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach runs fn(i) for every i in [0, n) in parallel and returns the
// first error in index order.
func ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	fns := make([]func(context.Context) error, n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(ctx context.Context) error { return fn(ctx, i) }
	}
	return Do(ctx, fns...)
}
