//go:build race

// Package race reports whether the race detector is compiled in.
//
// Allocation-pinned tests (testing.AllocsPerRun) use this to skip
// themselves under `go test -race`: the detector instruments memory
// operations and changes allocation counts, so the pins only hold in
// normal builds.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
