package chkpt

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/store"
	"repro/internal/vclock"
)

// pureRig builds per-process RAID-x views over shared pure-data disks.
func pureRig(t *testing.T, procs, n int, diskBlocks int64) ([]raid.Array, []int, []*disk.Disk) {
	t.Helper()
	raw := make([]*disk.Disk, n)
	devs := make([]raid.Dev, n)
	for i := range devs {
		d := disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(1024, diskBlocks), disk.DefaultModel())
		raw[i] = d
		devs[i] = d
	}
	arrays := make([]raid.Array, procs)
	nodes := make([]int, procs)
	for i := range arrays {
		a, err := core.New(devs, n, 1, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		arrays[i] = a
		nodes[i] = i % n
	}
	return arrays, nodes, raw
}

func TestPlanPlainRegionsDisjoint(t *testing.T) {
	arrays, nodes, _ := pureRig(t, 4, 4, 256)
	cfg := Config{Processes: 4, ImageBytes: 8 * 1024}
	plan, err := NewPlan(arrays, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int64]int{}
	for i := 0; i < 4; i++ {
		for _, r := range plan.Regions(i) {
			for b := r.Block; b < r.Block+r.Count; b++ {
				if prev, dup := used[b]; dup {
					t.Fatalf("block %d in regions of %d and %d", b, prev, i)
				}
				used[b] = i
			}
		}
	}
}

func TestPlanLocalImages(t *testing.T) {
	arrays, nodes, _ := pureRig(t, 8, 4, 256)
	cfg := Config{Processes: 8, ImageBytes: 6 * 1024, LocalImages: true}
	plan, err := NewPlan(arrays, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lay := arrays[0].(OSMLayouter).Layout()
	used := map[int64]int{}
	for i := 0; i < cfg.Processes; i++ {
		for _, r := range plan.Regions(i) {
			for b := r.Block; b < r.Block+r.Count; b++ {
				if prev, dup := used[b]; dup {
					t.Fatalf("block %d shared by processes %d and %d", b, prev, i)
				}
				used[b] = i
				// The defining property: the image of every block of
				// process i's checkpoint lives on process i's node.
				m := lay.MirrorLoc(b)
				if lay.NodeOfDisk(m.Disk) != nodes[i] {
					t.Fatalf("process %d (node %d): image of block %d on node %d",
						i, nodes[i], b, lay.NodeOfDisk(m.Disk))
				}
			}
		}
	}
}

func TestPlanLocalImagesRequiresRAIDx(t *testing.T) {
	devs := make([]raid.Dev, 4)
	for i := range devs {
		devs[i] = disk.New(nil, "d", store.NewMem(1024, 64), disk.DefaultModel())
	}
	arr, err := raid.NewRAID0(devs)
	if err != nil {
		t.Fatal(err)
	}
	arrays := []raid.Array{arr, arr}
	if _, err := NewPlan(arrays, []int{0, 1}, Config{Processes: 2, ImageBytes: 1024, LocalImages: true}); err == nil {
		t.Fatal("LocalImages over RAID-0 accepted")
	}
}

func TestRoundWritesRecoverableImages(t *testing.T) {
	arrays, nodes, raw := pureRig(t, 4, 4, 512)
	cfg := Config{Processes: 4, ImageBytes: 8 * 1024, Slots: 2, LocalImages: true}
	plan, err := NewPlan(arrays, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := vclock.New()
	res, err := Round(s, arrays, plan, StripedStaggered)
	if err != nil {
		t.Fatal(err)
	}
	// Pure-data disks charge no virtual time; only the structure is
	// checked here (timing is covered by the staggering test below).
	if len(res.SlotEnds) != 2 {
		t.Fatalf("%d slot ends, want 2", len(res.SlotEnds))
	}
	// Recovery path 1: normal read-back.
	ctx := context.Background()
	img0, err := plan.ReadImage(ctx, arrays[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	// Recovery path 2: permanent single-disk failure — the checkpoint
	// survives through the orthogonal redundancy.
	raw[2].Fail()
	img0Degraded, err := plan.ReadImage(ctx, arrays[0], 0)
	if err != nil {
		t.Fatalf("degraded checkpoint recovery: %v", err)
	}
	if !bytes.Equal(img0, img0Degraded) {
		t.Fatal("degraded recovery returned different image")
	}
}

func TestRoundStaggeredSlotsSequential(t *testing.T) {
	// With a timing model, slot k+1's writes must start after slot k
	// finishes: per-process write times in later slots stay small
	// (no cross-slot contention), unlike the all-at-once scheme.
	mkArrays := func(s *vclock.Sim, procs, n int) ([]raid.Array, []int) {
		model := disk.Model{Seek: 0, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: 0}
		devs := make([]raid.Dev, n)
		for i := range devs {
			devs[i] = disk.New(s, fmt.Sprintf("d%d", i), store.NewMem(1024, 512), model)
		}
		arrays := make([]raid.Array, procs)
		nodes := make([]int, procs)
		for i := range arrays {
			a, err := core.New(devs, n, 1, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			arrays[i] = a
			nodes[i] = i % n
		}
		return arrays, nodes
	}

	run := func(scheme Scheme, slots int) Result {
		s := vclock.New()
		arrays, nodes := mkArrays(s, 8, 4)
		cfg := Config{Processes: 8, ImageBytes: 16 * 1024, Slots: slots}
		plan, err := NewPlan(arrays, nodes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Round(s, arrays, plan, scheme)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	allAtOnce := run(Striped, 1)
	staggered := run(StripedStaggered, 4)
	// Staggering reduces each process's own blocked write time (C) at
	// the cost of waiting in sync (S); the max write must shrink.
	if staggered.MaxWrite >= allAtOnce.MaxWrite {
		t.Errorf("staggering did not reduce per-process write time: %v vs %v",
			staggered.MaxWrite, allAtOnce.MaxWrite)
	}
}

func TestRoundSchemesComplete(t *testing.T) {
	for _, scheme := range Schemes() {
		arrays, nodes, _ := pureRig(t, 6, 3, 512)
		cfg := Config{Processes: 6, ImageBytes: 4 * 1024, Slots: 3}
		plan, err := NewPlan(arrays, nodes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := vclock.New()
		if _, err := Round(s, arrays, plan, scheme); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

// TestRecoverTransientReadsLocalImages: transient recovery (straight
// from local mirror images) must return the same bytes as the striped
// read, and must refuse non-local placements.
func TestRecoverTransientReadsLocalImages(t *testing.T) {
	arrays, nodes, raw := pureRig(t, 4, 4, 512)
	cfg := Config{Processes: 4, ImageBytes: 8 * 1024, LocalImages: true}
	plan, err := NewPlan(arrays, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < cfg.Processes; i++ {
		if err := plan.writeImage(ctx, arrays[i], i, byte(0x40+i)); err != nil {
			t.Fatal(err)
		}
		if err := arrays[i].Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	lay := arrays[0].(OSMLayouter).Layout()
	devs := make([]raid.Dev, len(raw))
	for j, d := range raw {
		devs[j] = d
	}
	for i := 0; i < cfg.Processes; i++ {
		want, err := plan.ReadImage(ctx, arrays[i], i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.RecoverTransient(ctx, lay, devs, i)
		if err != nil {
			t.Fatalf("process %d transient recovery: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("process %d: transient image differs from striped read", i)
		}
	}
	// Non-local placement must be refused.
	plain, err := NewPlan(arrays, nodes, Config{Processes: 4, ImageBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.RecoverTransient(ctx, lay, devs, 0); err == nil {
		t.Fatal("transient recovery accepted a non-local plan")
	}
	// A dead local-image disk forces the fallback.
	g0 := plan.Regions(0)[0].Block / int64(lay.GroupSize())
	raw[lay.GroupLoc(g0).Disk].Fail()
	if _, err := plan.RecoverTransient(ctx, lay, devs, 0); err == nil {
		t.Fatal("transient recovery succeeded with image disk dead")
	}
}

// TestSchemeOverheadOrdering runs all four schemes on one timed cluster
// geometry and checks the paper's qualitative ordering of per-process
// overhead C: striped-staggered < staggered < centralized-ish, and
// striped < centralized.
func TestSchemeOverheadOrdering(t *testing.T) {
	model := disk.Model{Seek: time.Millisecond, TrackSkip: 0, BandwidthBps: 5e6, PerRequest: 0}
	run := func(scheme Scheme) Result {
		s := vclock.New()
		devs := make([]raid.Dev, 4)
		for i := range devs {
			devs[i] = disk.New(s, fmt.Sprintf("d%d", i), store.NewMem(1024, 2048), model)
		}
		arrays := make([]raid.Array, 8)
		nodes := make([]int, 8)
		for i := range arrays {
			a, err := core.New(devs, 4, 1, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			arrays[i] = a
			nodes[i] = i % 4
		}
		plan, err := NewPlan(arrays, nodes, Config{Processes: 8, ImageBytes: 64 << 10, Slots: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Round(s, arrays, plan, scheme)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	striped := run(Striped)
	stag := run(StripedStaggered)
	if stag.MaxWrite >= striped.MaxWrite {
		t.Errorf("staggering did not cut per-process C: %v vs %v", stag.MaxWrite, striped.MaxWrite)
	}
	if stag.Makespan < striped.Makespan {
		t.Errorf("staggered makespan %v unexpectedly beat all-at-once %v", stag.Makespan, striped.Makespan)
	}
	// The timeline must be strictly increasing across slots.
	for i := 1; i < len(stag.SlotEnds); i++ {
		if stag.SlotEnds[i] <= stag.SlotEnds[i-1] {
			t.Fatalf("slot ends not increasing: %v", stag.SlotEnds)
		}
	}
}
