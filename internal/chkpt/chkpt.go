// Package chkpt implements the paper's Section 6: coordinated
// checkpointing of parallel processes onto the distributed disk array,
// comparing four schemes.
//
//   - Centralized: every process writes its checkpoint image to the
//     central server at once (the configuration Vaidya's staggering was
//     invented to relieve) — network contention and an I/O bottleneck.
//   - Staggered: processes take turns writing to the central server
//     (Vaidya): contention is gone but the server is still the
//     bottleneck.
//   - Striped: every process writes simultaneously, striped across the
//     distributed array.
//   - StripedStaggered: the paper's scheme — stripe groups of processes
//     write in staggered slots over the RAID-x (Figure 7), combining
//     parallel stripes with pipelined slots.
//
// With the OSM layout, a process's checkpoint can be placed so that its
// mirror images land on the process's own node ("each striped
// checkpointing file has its mirrored image in its local disk"),
// enabling fast local recovery from transient failures while permanent
// disk failures recover through the stripes.
package chkpt

import (
	"context"
	"fmt"
	"time"

	"repro/internal/layout"
	"repro/internal/raid"
	"repro/internal/vclock"
)

// Scheme selects a checkpointing discipline.
type Scheme string

// The four schemes of the Figure 7 experiment.
const (
	Centralized      Scheme = "centralized"
	Staggered        Scheme = "staggered"
	Striped          Scheme = "striped"
	StripedStaggered Scheme = "striped-staggered"
)

// Schemes lists all four.
func Schemes() []Scheme {
	return []Scheme{Centralized, Staggered, Striped, StripedStaggered}
}

// staggers reports whether the scheme uses time slots.
func (s Scheme) staggers() bool { return s == Staggered || s == StripedStaggered }

// Config shapes one checkpointing round.
type Config struct {
	// Processes is the number of application processes (one per
	// client, placed round-robin on the nodes).
	Processes int
	// ImageBytes is each process's checkpoint size.
	ImageBytes int
	// Slots is the staggering depth (number of time slots); ignored by
	// non-staggered schemes. In the paper's Figure 7 a 4x3 array runs
	// 12 processes in 3 slots of one stripe group each.
	Slots int
	// LocalImages aligns each process's checkpoint region so its OSM
	// mirror groups land on the process's own node (requires a RAID-x
	// array).
	LocalImages bool
}

// Result is one scheme's measured round.
type Result struct {
	Scheme Scheme
	// Makespan is the full round: release to last process finishing.
	Makespan time.Duration
	// AvgWrite/MaxWrite are the per-process checkpoint overhead C.
	AvgWrite, MaxWrite time.Duration
	// AvgSync/MaxSync are the per-process synchronization overhead S
	// (waiting for the coordinated commit after writing).
	AvgSync, MaxSync time.Duration
	// SlotEnds records when each staggered slot finished (empty for
	// non-staggered schemes) — the Figure 7 timeline.
	SlotEnds []time.Duration
}

func (r Result) String() string {
	return fmt.Sprintf("%-18s makespan=%8.1fms  C(avg/max)=%6.1f/%6.1fms  S(avg/max)=%6.1f/%6.1fms",
		r.Scheme, r.Makespan.Seconds()*1e3,
		r.AvgWrite.Seconds()*1e3, r.MaxWrite.Seconds()*1e3,
		r.AvgSync.Seconds()*1e3, r.MaxSync.Seconds()*1e3)
}

// OSMLayouter is implemented by arrays exposing their OSM geometry
// (core.RAIDx); needed for LocalImages placement.
type OSMLayouter interface {
	Layout() layout.OSM
}

// Plan precomputes each process's checkpoint block regions on a given
// array.
type Plan struct {
	cfg     Config
	bs      int
	blocks  int64
	regions [][]Run
}

// Run is one contiguous block run of a process's checkpoint region.
type Run struct {
	Block int64
	Count int64
}

// NewPlan lays out the checkpoint regions. arrays[i] is process i's
// view of the storage; all views share geometry. nodes[i] is process
// i's node (used by LocalImages).
func NewPlan(arrays []raid.Array, nodes []int, cfg Config) (*Plan, error) {
	if len(arrays) != cfg.Processes || len(nodes) != cfg.Processes {
		return nil, fmt.Errorf("chkpt: %d arrays / %d nodes for %d processes", len(arrays), len(nodes), cfg.Processes)
	}
	bs := arrays[0].BlockSize()
	imageBlocks := int64((cfg.ImageBytes + bs - 1) / bs)
	p := &Plan{cfg: cfg, bs: bs, blocks: imageBlocks}

	if !cfg.LocalImages {
		for i := 0; i < cfg.Processes; i++ {
			start := int64(i) * imageBlocks
			if start+imageBlocks > arrays[i].Blocks() {
				return nil, fmt.Errorf("chkpt: images need %d blocks, array has %d", int64(cfg.Processes)*imageBlocks, arrays[i].Blocks())
			}
			p.regions = append(p.regions, []Run{{Block: start, Count: imageBlocks}})
		}
		return p, nil
	}

	osm, ok := arrays[0].(OSMLayouter)
	if !ok {
		return nil, fmt.Errorf("chkpt: LocalImages requires a RAID-x array")
	}
	lay := osm.Layout()
	n := int64(lay.Nodes)
	gs := int64(lay.GroupSize())
	groupsNeeded := (imageBlocks + gs - 1) / gs
	totalGroups := arrays[0].Blocks() / gs
	for i := 0; i < cfg.Processes; i++ {
		node := int64(nodes[i])
		// Mirror groups landing on this node satisfy
		// g ≡ n-1-node (mod n); successive processes on the same node
		// take successive windows of t.
		rank := int64(i) / n // how many earlier processes share the node
		var runs []Run
		for t := rank * groupsNeeded; int64(len(runs)) < groupsNeeded; t++ {
			g := (n - 1 - node) + t*n
			if g >= totalGroups {
				return nil, fmt.Errorf("chkpt: not enough mirror groups on node %d", node)
			}
			runs = append(runs, Run{Block: g * gs, Count: gs})
		}
		p.regions = append(p.regions, runs)
	}
	return p, nil
}

// Regions exposes process i's block runs (for recovery and tests).
func (p *Plan) Regions(i int) []Run { return p.regions[i] }

// writeImage writes process i's checkpoint image.
func (p *Plan) writeImage(ctx context.Context, arr raid.Array, i int, fill byte) error {
	for _, r := range p.regions[i] {
		buf := make([]byte, r.Count*int64(p.bs))
		for j := range buf {
			buf[j] = fill + byte(j)
		}
		if err := arr.WriteBlocks(ctx, r.Block, buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadImage reads back process i's checkpoint (recovery path).
func (p *Plan) ReadImage(ctx context.Context, arr raid.Array, i int) ([]byte, error) {
	var out []byte
	for _, r := range p.regions[i] {
		buf := make([]byte, r.Count*int64(p.bs))
		if err := arr.ReadBlocks(ctx, r.Block, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

// Round executes one coordinated checkpoint round on simulator s and
// reports the timing. arrays[i] is process i's storage view.
func Round(s *vclock.Sim, arrays []raid.Array, plan *Plan, scheme Scheme) (Result, error) {
	cfg := plan.cfg
	slots := 1
	if scheme.staggers() {
		slots = cfg.Slots
		if slots < 1 {
			slots = 1
		}
		if slots > cfg.Processes {
			slots = cfg.Processes
		}
	}
	slotOf := func(i int) int { return i * slots / cfg.Processes }

	barrier := vclock.NewBarrier(s, "commit", cfg.Processes)
	slotGate := vclock.NewGate(s, "slot")
	slotRemaining := make([]int, slots)
	for i := 0; i < cfg.Processes; i++ {
		slotRemaining[slotOf(i)]++
	}
	currentSlot := 0
	slotEnds := make([]time.Duration, slots)

	writeT := make([]time.Duration, cfg.Processes)
	syncT := make([]time.Duration, cfg.Processes)
	errs := make([]error, cfg.Processes)
	var makespan time.Duration

	for i := 0; i < cfg.Processes; i++ {
		i := i
		s.Spawn(fmt.Sprintf("ckpt%d", i), func(proc *vclock.Proc) {
			ctx := vclock.With(context.Background(), proc)
			mySlot := slotOf(i)
			for currentSlot < mySlot {
				slotGate.Wait(proc)
			}
			start := proc.Now()
			errs[i] = plan.writeImage(ctx, arrays[i], i, byte(i))
			if errs[i] == nil {
				// The image must be redundant before the commit.
				errs[i] = arrays[i].Flush(ctx)
			}
			end := proc.Now()
			writeT[i] = end - start
			slotRemaining[mySlot]--
			if slotRemaining[mySlot] == 0 {
				slotEnds[mySlot] = end
				currentSlot++
				slotGate.Broadcast()
			}
			barrier.Wait(proc)
			syncT[i] = proc.Now() - end
			if proc.Now() > makespan {
				makespan = proc.Now()
			}
		})
	}
	if err := s.Run(); err != nil {
		return Result{}, err
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	res := Result{Scheme: scheme, Makespan: makespan}
	for i := 0; i < cfg.Processes; i++ {
		res.AvgWrite += writeT[i]
		res.AvgSync += syncT[i]
		if writeT[i] > res.MaxWrite {
			res.MaxWrite = writeT[i]
		}
		if syncT[i] > res.MaxSync {
			res.MaxSync = syncT[i]
		}
	}
	res.AvgWrite /= time.Duration(cfg.Processes)
	res.AvgSync /= time.Duration(cfg.Processes)
	if scheme.staggers() {
		res.SlotEnds = slotEnds
	}
	return res, nil
}

// WriteImageForTest exposes the image writer for harness setup (the
// benchmark writes images untimed before measuring recovery).
func (p *Plan) WriteImageForTest(ctx context.Context, arr raid.Array, i int) error {
	return p.writeImage(ctx, arr, i, byte(i))
}
