package chkpt

import (
	"context"
	"fmt"
	"time"

	"repro/internal/layout"
	"repro/internal/raid"
	"repro/internal/vclock"
)

// RecoveryKind distinguishes the paper's two-level recovery (Section 6,
// after Vaidya's two-level scheme):
//
//   - Transient failure: the process restarts on its own node; with
//     OSM-aligned placement the checkpoint's mirror images sit on the
//     node's local disk, so recovery is a local sequential read — no
//     network at all.
//   - Permanent failure: a disk died; the checkpoint is re-read through
//     the striped data copies (degraded where necessary).
type RecoveryKind string

// The two recovery levels.
const (
	TransientLocal   RecoveryKind = "transient-local"
	PermanentStriped RecoveryKind = "permanent-striped"
)

// imageReader is the subset of raid.Dev used for direct image reads.
type imageReader interface {
	ReadBlocks(ctx context.Context, b int64, buf []byte) error
	Healthy() bool
}

// RecoverTransient reads process i's checkpoint straight from its local
// mirror images: every image block of an OSM-aligned region lives on
// one of the process's own disks, read as long contiguous runs. devs
// lists the array's devices in SIOS order.
func (p *Plan) RecoverTransient(ctx context.Context, lay layout.OSM, devs []raid.Dev, i int) ([]byte, error) {
	if !p.cfg.LocalImages {
		return nil, fmt.Errorf("chkpt: transient recovery requires LocalImages placement")
	}
	var out []byte
	gs := int64(lay.GroupSize())
	for _, r := range p.regions[i] {
		// Each region run is exactly one mirror group (NewPlan built
		// them that way); its images are one contiguous run.
		g := r.Block / gs
		loc := lay.GroupLoc(g)
		dev := devs[loc.Disk]
		if !dev.Healthy() {
			return nil, fmt.Errorf("chkpt: local image disk %d failed; fall back to %s", loc.Disk, PermanentStriped)
		}
		buf := make([]byte, r.Count*int64(p.bs))
		if err := dev.ReadBlocks(ctx, loc.Block, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

// RecoveryTiming measures both recovery levels for process i on a
// simulated cluster, returning the virtual time each took. arr is the
// process's array view, devs its SIOS device list.
func RecoveryTiming(s *vclock.Sim, arr raid.Array, lay layout.OSM, devs []raid.Dev, plan *Plan, i int) (transient, permanent time.Duration, err error) {
	var terr, perr error
	s.Spawn("recover", func(proc *vclock.Proc) {
		ctx := vclock.With(context.Background(), proc)
		t0 := proc.Now()
		_, terr = plan.RecoverTransient(ctx, lay, devs, i)
		transient = proc.Now() - t0
		t0 = proc.Now()
		_, perr = plan.ReadImage(ctx, arr, i)
		permanent = proc.Now() - t0
	})
	if err := s.Run(); err != nil {
		return 0, 0, err
	}
	if terr != nil {
		return 0, 0, terr
	}
	if perr != nil {
		return 0, 0, perr
	}
	return transient, permanent, nil
}
