package andrew

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fsim"
	"repro/internal/raid"
	"repro/internal/store"
)

func testFS(t *testing.T) *fsim.FS {
	t.Helper()
	devs := make([]raid.Dev, 4)
	for i := range devs {
		devs[i] = disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(4096, 2048), disk.DefaultModel())
	}
	arr, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fsim.Mkfs(context.Background(), arr, fsim.NewTableLocker(cdd.NewTable()), "andrew", fsim.Options{MaxInodes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Dirs = 4
	cfg.Files = 10
	cfg.FileSize = 2048
	return cfg
}

func TestRunCompletesAndLeavesArtifacts(t *testing.T) {
	ctx := context.Background()
	fs := testFS(t)
	cfg := smallConfig()
	if err := PopulateSource(ctx, fs, "/src", cfg); err != nil {
		t.Fatal(err)
	}
	pt, err := Run(ctx, fs, nil, "/cl0", "/src", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Total() != 0 {
		// Without a virtual clock the phases use wall time; just check
		// they are non-negative.
		for _, name := range Phases() {
			if pt.ByName(name) < 0 {
				t.Errorf("phase %s negative: %v", name, pt.ByName(name))
			}
		}
	}
	// Every directory, source copy, object, and the executable exist.
	for d := 0; d < cfg.Dirs; d++ {
		if _, err := fs.Stat(ctx, fmt.Sprintf("/cl0/dir%02d", d)); err != nil {
			t.Fatalf("dir %d missing: %v", d, err)
		}
	}
	for i := 0; i < cfg.Files; i++ {
		src := fmt.Sprintf("/cl0/dir%02d/src%03d.c", cfg.fileDir(i), i)
		obj := fmt.Sprintf("/cl0/dir%02d/src%03d.o", cfg.fileDir(i), i)
		sInfo, err := fs.Stat(ctx, src)
		if err != nil {
			t.Fatalf("source copy %d missing: %v", i, err)
		}
		if want := int64(cfg.fileSize(i)); sInfo.Size != want {
			t.Errorf("source copy %d size %d, want %d", i, sInfo.Size, want)
		}
		oInfo, err := fs.Stat(ctx, obj)
		if err != nil {
			t.Fatalf("object %d missing: %v", i, err)
		}
		if want := int64(float64(cfg.fileSize(i)) * cfg.ObjRatio); oInfo.Size != want {
			t.Errorf("object %d size %d, want %d", i, oInfo.Size, want)
		}
	}
	if _, err := fs.Stat(ctx, "/cl0/a.out"); err != nil {
		t.Fatalf("executable missing: %v", err)
	}
}

func TestTwoClientsPrivateTrees(t *testing.T) {
	ctx := context.Background()
	fs := testFS(t)
	cfg := smallConfig()
	if err := PopulateSource(ctx, fs, "/src", cfg); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		if _, err := Run(ctx, fs, nil, fmt.Sprintf("/cl%d", c), "/src", cfg); err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	ents, err := fs.ReadDir(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	// /src + /cl0 + /cl1.
	if len(ents) != 3 {
		t.Fatalf("root has %d entries, want 3", len(ents))
	}
}

func TestConfigSizesDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	for i := 0; i < cfg.Files; i++ {
		a, b := cfg.fileSize(i), cfg.fileSize(i)
		if a != b {
			t.Fatal("fileSize not deterministic")
		}
		if a < cfg.FileSize/2 || a >= cfg.FileSize/2+cfg.FileSize {
			t.Fatalf("fileSize(%d) = %d outside [%d,%d)", i, a, cfg.FileSize/2, cfg.FileSize/2+cfg.FileSize)
		}
	}
}

func TestPhaseAccessors(t *testing.T) {
	pt := PhaseTimes{MakeDir: 1, Copy: 2, ScanDir: 3, ReadAll: 4, Make: 5}
	if pt.Total() != 15 {
		t.Fatalf("total = %d", pt.Total())
	}
	sum := int64(0)
	for _, n := range Phases() {
		sum += int64(pt.ByName(n))
	}
	if sum != 15 {
		t.Fatalf("phase sum = %d", sum)
	}
	if pt.ByName("bogus") != 0 {
		t.Fatal("unknown phase nonzero")
	}
}
