// Package andrew implements the Andrew benchmark (Howard et al., 1988)
// as used in the paper's Figure 6: five phases — MakeDir, Copy,
// ScanDir, ReadAll, and Make — run by each client in a private subtree
// of a shared file system. The storage architecture underneath the file
// system is what the experiment compares; the benchmark itself only
// speaks the fsim API.
//
// The Make (compile) phase's processor time is charged on the client's
// CPU resource in virtual time, calibrated as a cost per compiled byte;
// its I/O (reading sources, writing objects and an executable) is real
// file-system I/O.
package andrew

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fsim"
	"repro/internal/vclock"
)

// Config sizes the benchmark. Defaults follow the original benchmark's
// shape scaled to block-sized files: a handful of directories, ~70
// source files of a few KB, objects ~40% of source size.
type Config struct {
	// Dirs is the number of subdirectories created in MakeDir.
	Dirs int
	// Files is the number of source files copied in Copy.
	Files int
	// FileSize is the average source file size in bytes; individual
	// files vary deterministically around it.
	FileSize int
	// ObjRatio is the object-file size as a fraction of its source.
	ObjRatio float64
	// CompileCPUPerKB is the processor time charged per KB of source
	// compiled in the Make phase.
	CompileCPUPerKB time.Duration
}

// DefaultConfig matches the original benchmark's shape.
func DefaultConfig() Config {
	return Config{
		Dirs:            20,
		Files:           70,
		FileSize:        4 << 10,
		ObjRatio:        0.4,
		CompileCPUPerKB: 2 * time.Millisecond,
	}
}

// fileSize deterministically varies sizes around the mean.
func (c Config) fileSize(i int) int {
	// 0.5x .. 1.5x of the mean.
	return c.FileSize/2 + (i*2654435761)%c.FileSize
}

// fileDir assigns file i to a directory.
func (c Config) fileDir(i int) int { return i % c.Dirs }

// srcName and related helpers name the shared source tree.
func srcName(i int) string { return fmt.Sprintf("src%03d.c", i) }
func objName(i int) string { return fmt.Sprintf("src%03d.o", i) }

// PopulateSource builds the shared read-only source tree under
// srcRoot; run once (untimed) before the benchmark.
func PopulateSource(ctx context.Context, fs *fsim.FS, srcRoot string, cfg Config) error {
	if err := fs.MkdirAll(ctx, srcRoot); err != nil {
		return err
	}
	for i := 0; i < cfg.Files; i++ {
		data := make([]byte, cfg.fileSize(i))
		for j := range data {
			data[j] = byte(i + j)
		}
		if err := fs.WriteFile(ctx, srcRoot+"/"+srcName(i), data); err != nil {
			return err
		}
	}
	return nil
}

// PhaseTimes are the per-phase elapsed times of one run.
type PhaseTimes struct {
	MakeDir time.Duration
	Copy    time.Duration
	ScanDir time.Duration
	ReadAll time.Duration
	Make    time.Duration
}

// Total sums the phases.
func (p PhaseTimes) Total() time.Duration {
	return p.MakeDir + p.Copy + p.ScanDir + p.ReadAll + p.Make
}

// Phases lists the phase names in benchmark order.
func Phases() []string { return []string{"MakeDir", "Copy", "ScanDir", "ReadAll", "Make"} }

// ByName returns the named phase's time.
func (p PhaseTimes) ByName(name string) time.Duration {
	switch name {
	case "MakeDir":
		return p.MakeDir
	case "Copy":
		return p.Copy
	case "ScanDir":
		return p.ScanDir
	case "ReadAll":
		return p.ReadAll
	case "Make":
		return p.Make
	}
	return 0
}

// now reads the benchmark clock: virtual if ctx carries a process,
// real otherwise.
func now(ctx context.Context) time.Time {
	if p, ok := vclock.From(ctx); ok {
		return time.Unix(0, int64(p.Now()))
	}
	return time.Now()
}

// Run executes the five phases in the client's private subtree (root,
// e.g. "/client3"), copying sources from srcRoot. cpu, when non-nil,
// receives the Make phase's compile charges.
func Run(ctx context.Context, fs *fsim.FS, cpu *vclock.Resource, root, srcRoot string, cfg Config) (PhaseTimes, error) {
	var pt PhaseTimes

	// Phase 1: MakeDir.
	start := now(ctx)
	if err := fs.MkdirAll(ctx, root); err != nil {
		return pt, fmt.Errorf("andrew MakeDir: %w", err)
	}
	for d := 0; d < cfg.Dirs; d++ {
		if err := fs.Mkdir(ctx, fmt.Sprintf("%s/dir%02d", root, d)); err != nil {
			return pt, fmt.Errorf("andrew MakeDir: %w", err)
		}
	}
	pt.MakeDir = now(ctx).Sub(start)

	// Phase 2: Copy — read each source file, write it into the tree.
	start = now(ctx)
	for i := 0; i < cfg.Files; i++ {
		data, err := fs.ReadFile(ctx, srcRoot+"/"+srcName(i))
		if err != nil {
			return pt, fmt.Errorf("andrew Copy read: %w", err)
		}
		dst := fmt.Sprintf("%s/dir%02d/%s", root, cfg.fileDir(i), srcName(i))
		if err := fs.WriteFile(ctx, dst, data); err != nil {
			return pt, fmt.Errorf("andrew Copy write: %w", err)
		}
	}
	pt.Copy = now(ctx).Sub(start)

	// Phase 3: ScanDir — stat every entry of every directory.
	start = now(ctx)
	for d := 0; d < cfg.Dirs; d++ {
		dir := fmt.Sprintf("%s/dir%02d", root, d)
		ents, err := fs.ReadDir(ctx, dir)
		if err != nil {
			return pt, fmt.Errorf("andrew ScanDir: %w", err)
		}
		for _, e := range ents {
			if _, err := fs.Stat(ctx, dir+"/"+e.Name); err != nil {
				return pt, fmt.Errorf("andrew ScanDir stat: %w", err)
			}
		}
	}
	pt.ScanDir = now(ctx).Sub(start)

	// Phase 4: ReadAll — read every copied file.
	start = now(ctx)
	for i := 0; i < cfg.Files; i++ {
		path := fmt.Sprintf("%s/dir%02d/%s", root, cfg.fileDir(i), srcName(i))
		if _, err := fs.ReadFile(ctx, path); err != nil {
			return pt, fmt.Errorf("andrew ReadAll: %w", err)
		}
	}
	pt.ReadAll = now(ctx).Sub(start)

	// Phase 5: Make — recompile: read each source, burn CPU, write the
	// object; then link everything into one executable.
	start = now(ctx)
	var exeSize int
	for i := 0; i < cfg.Files; i++ {
		path := fmt.Sprintf("%s/dir%02d/%s", root, cfg.fileDir(i), srcName(i))
		data, err := fs.ReadFile(ctx, path)
		if err != nil {
			return pt, fmt.Errorf("andrew Make read: %w", err)
		}
		if cpu != nil {
			if p, ok := vclock.From(ctx); ok {
				cpu.Use(p, time.Duration(float64(len(data))/1024*float64(cfg.CompileCPUPerKB)))
			}
		}
		obj := make([]byte, int(float64(len(data))*cfg.ObjRatio))
		for j := range obj {
			obj[j] = byte(j ^ i)
		}
		exeSize += len(obj)
		dst := fmt.Sprintf("%s/dir%02d/%s", root, cfg.fileDir(i), objName(i))
		if err := fs.WriteFile(ctx, dst, obj); err != nil {
			return pt, fmt.Errorf("andrew Make write: %w", err)
		}
	}
	exe := make([]byte, exeSize)
	if err := fs.WriteFile(ctx, root+"/a.out", exe); err != nil {
		return pt, fmt.Errorf("andrew Make link: %w", err)
	}
	pt.Make = now(ctx).Sub(start)
	return pt, nil
}
