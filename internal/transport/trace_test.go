package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/trace"
)

// oldFrame hand-rolls a pre-extension frame, simulating a peer built
// before the flags byte existed.
func oldFrame(id uint64, typ, op uint8, payload []byte) []byte {
	b := make([]byte, 4+headerLen+len(payload))
	binary.BigEndian.PutUint32(b[0:4], uint32(headerLen+len(payload)))
	binary.BigEndian.PutUint64(b[4:12], id)
	b[12] = typ
	b[13] = op
	copy(b[14:], payload)
	return b
}

func TestTraceFrameRoundTrip(t *testing.T) {
	ext := &TraceExt{Trace: 0xdeadbeef, Span: 0x1234}
	payload := []byte("hello")
	var buf bytes.Buffer
	if err := writeFrame(&buf, 7, frameRequest, 42, ext, payload); err != nil {
		t.Fatal(err)
	}
	id, typ, op, got, pl, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || typ != frameRequest || op != 42 {
		t.Fatalf("id=%d typ=%d op=%d", id, typ, op)
	}
	if got == nil || *got != *ext {
		t.Fatalf("ext = %+v, want %+v", got, ext)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatalf("payload = %q", pl)
	}
}

// TestTraceUntracedFrameBytesIdentical pins the compat contract at the
// byte level: a frame written without an extension is identical to the
// original format, bit for bit.
func TestTraceUntracedFrameBytesIdentical(t *testing.T) {
	payload := []byte{1, 2, 3}
	var buf bytes.Buffer
	if err := writeFrame(&buf, 9, frameOK, 5, nil, payload); err != nil {
		t.Fatal(err)
	}
	if want := oldFrame(9, frameOK, 5, payload); !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("untraced frame bytes differ from old format:\n got %x\nwant %x", buf.Bytes(), want)
	}
}

// TestTraceOldClientNewServer drives a new server with raw old-format
// frames over a plain TCP connection — the old-peer → new-server leg of
// the compatibility matrix. The response must itself be old-format.
func TestTraceOldClientNewServer(t *testing.T) {
	tr := trace.New(trace.Config{})
	srv, err := ServeWith("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		return append([]byte("echo:"), payload...), nil
	}, ServerOptions{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(oldFrame(3, frameRequest, 7, []byte("hi"))); err != nil {
		t.Fatal(err)
	}
	// Parse the response strictly as the old format.
	var lenBuf [4]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(conn, resp); err != nil {
		t.Fatal(err)
	}
	if id := binary.BigEndian.Uint64(resp[0:8]); id != 3 {
		t.Fatalf("response id = %d", id)
	}
	if resp[8]&typExt != 0 {
		t.Fatalf("response to an old client carries the extension bit: typ=%#02x", resp[8])
	}
	if resp[8] != frameOK || resp[9] != 7 {
		t.Fatalf("typ=%d op=%d", resp[8], resp[9])
	}
	if got := string(resp[headerLen:]); got != "echo:hi" {
		t.Fatalf("payload = %q", got)
	}
	// A flag-less frame carries no trace, so the server records nothing.
	if n := tr.Recorded(); n != 0 {
		t.Fatalf("server recorded %d spans for an untraced old-format request", n)
	}
}

// TestTraceNewClientOldServer runs a new client against a strict
// old-format parser: as long as the context is untraced, every frame
// the client emits must parse as the original format.
func TestTraceNewClientOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	badTyp := make(chan uint8, 2)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			var lenBuf [4]byte
			if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
				return
			}
			buf := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
			if _, err := io.ReadFull(conn, buf); err != nil {
				return
			}
			// Old parser: the type byte is exactly 0, 1 or 2.
			if buf[8] > frameError {
				badTyp <- buf[8]
				return
			}
			id := binary.BigEndian.Uint64(buf[0:8])
			if id == 0 {
				continue // notification
			}
			if _, err := conn.Write(oldFrame(id, frameOK, buf[9], buf[headerLen:])); err != nil {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background() // untraced
	if err := c.Notify(ctx, 2, []byte("bg")); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Call(ctx, 1, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ping" {
		t.Fatalf("echo = %q", resp)
	}
	select {
	case typ := <-badTyp:
		t.Fatalf("untraced client sent a frame the old parser rejects: typ=%#02x", typ)
	default:
	}
}

// TestTracePropagation pins the cross-process trace contract: a traced
// call stamps the frame, and the server's tracer records its handler
// work under the caller's trace and span IDs.
func TestTracePropagation(t *testing.T) {
	serverTr := trace.New(trace.Config{})
	srv, err := ServeWith("127.0.0.1:0", func(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
		h := trace.StartLeaf(ctx, "handler.work", "d0")
		h.End(nil)
		return payload, nil
	}, ServerOptions{Tracer: serverTr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	clientTr := trace.New(trace.Config{})
	ctx, root := clientTr.StartRoot(context.Background(), "raidx.read", "raidx")
	if _, err := c.Call(ctx, 4, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	root.End(nil)

	sc, ok := trace.FromContext(ctx)
	if !ok {
		t.Fatal("root context lost its trace")
	}
	deadline := time.Now().Add(2 * time.Second)
	for serverTr.Recorded() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	var serve, work trace.Span
	for _, sp := range serverTr.Spans() {
		switch sp.Name {
		case "transport.serve":
			serve = sp
		case "handler.work":
			work = sp
		}
	}
	if serve.Name == "" || work.Name == "" {
		t.Fatalf("server spans missing: %+v", serverTr.Spans())
	}
	if serve.Trace != sc.Trace {
		t.Fatalf("server span trace = %x, caller trace = %x", serve.Trace, sc.Trace)
	}
	if !serve.Top {
		t.Error("transport.serve not marked as the server-side subtree top")
	}
	if serve.Val != 4 {
		t.Errorf("serve Val = %d, want payload length 4", serve.Val)
	}
	if work.Parent != serve.ID {
		t.Error("handler span not parented under transport.serve")
	}

	// Client side recorded the matching transport.call span.
	var call trace.Span
	for _, sp := range clientTr.Spans() {
		if sp.Name == "transport.call" {
			call = sp
		}
	}
	if call.Name == "" || call.Trace != sc.Trace {
		t.Fatalf("client transport.call span missing or mis-traced: %+v", call)
	}
	if serve.Parent != call.ID {
		t.Fatalf("server subtree parent = %x, want the client's call span %x", serve.Parent, call.ID)
	}
}

// TestTraceServerWithoutTracer proves a traced frame against a
// tracer-less server is harmless: the extension is parsed and dropped.
func TestTraceServerWithoutTracer(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		return payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tr := trace.New(trace.Config{})
	ctx, root := tr.StartRoot(context.Background(), "op", "")
	resp, err := c.Call(ctx, 1, []byte("x"))
	root.End(err)
	if err != nil || string(resp) != "x" {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
}

// FuzzReadFrame hammers the frame parser, seeded with truncated and
// malformed trace extensions. Whatever parses must survive a re-encode
// → re-parse round trip unchanged.
func FuzzReadFrame(f *testing.F) {
	var okFrame bytes.Buffer
	writeFrame(&okFrame, 1, frameRequest, 2, nil, []byte("payload"))
	f.Add(okFrame.Bytes())
	var extFrame bytes.Buffer
	writeFrame(&extFrame, 2, frameRequest, 3, &TraceExt{Trace: 1, Span: 2}, []byte("p"))
	f.Add(extFrame.Bytes())
	// Extension bit set, but no flags byte at all.
	f.Add(oldFrame(3, frameRequest|typExt, 4, nil))
	// Trace flag set with a truncated (8 of 16 byte) trace context.
	f.Add(oldFrame(4, frameRequest|typExt, 5, append([]byte{flagTrace}, make([]byte, 8)...)))
	// Unknown flag bits.
	f.Add(oldFrame(5, frameRequest|typExt, 6, []byte{0xFE}))
	// Flags byte present but zero: legal, no extension data.
	f.Add(oldFrame(6, frameRequest|typExt, 7, []byte{0}))
	// Truncated length prefix and truncated body.
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 50, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		id, typ, op, ext, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if typ&typExt != 0 {
			t.Fatalf("readFrame leaked the extension bit: typ=%#02x", typ)
		}
		var buf bytes.Buffer
		if werr := writeFrame(&buf, id, typ, op, ext, payload); werr != nil {
			t.Fatalf("re-encode of a parsed frame failed: %v", werr)
		}
		// The gather writer must emit the same bytes however the payload
		// is segmented.
		if len(payload) > 1 {
			mid := len(payload) / 2
			var vbuf bytes.Buffer
			if werr := writeFrame(&vbuf, id, typ, op, ext, payload[:mid], payload[mid:]); werr != nil {
				t.Fatalf("segmented re-encode failed: %v", werr)
			}
			if !bytes.Equal(vbuf.Bytes(), buf.Bytes()) {
				t.Fatalf("segmented encoding differs:\n got %x\nwant %x", vbuf.Bytes(), buf.Bytes())
			}
		}
		id2, typ2, op2, ext2, payload2, err2 := readFrame(&buf)
		if err2 != nil {
			t.Fatalf("re-parse failed: %v", err2)
		}
		if id2 != id || typ2 != typ || op2 != op || !bytes.Equal(payload2, payload) {
			t.Fatal("frame round trip changed id/typ/op/payload")
		}
		switch {
		case ext == nil && ext2 != nil, ext != nil && ext2 == nil:
			t.Fatal("frame round trip changed extension presence")
		case ext != nil && *ext != *ext2:
			t.Fatal("frame round trip changed the trace extension")
		}
	})
}

// TestVectoredWriteBytesIdentical pins the zero-copy write path at the
// byte level: the same frame written over a real TCP connection — where
// writeFrame takes the net.Buffers (writev) branch — must be identical
// to the coalesced single-buffer encoding, however the payload is
// segmented, and identical to the original pre-extension format when
// untraced.
func TestVectoredWriteBytesIdentical(t *testing.T) {
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	segmentings := [][][]byte{
		{payload},
		{payload[:16], payload[16:]},
		{payload[:1], payload[1:2048], payload[2048:]},
		{payload[:0], payload, nil}, // empty segments are legal
	}
	for _, ext := range []*TraceExt{nil, {Trace: 0xfeed, Span: 0x0b0e}} {
		var want bytes.Buffer
		if err := writeFrame(&want, 11, frameRequest, 9, ext, payload); err != nil {
			t.Fatal(err)
		}
		if ext == nil {
			if old := oldFrame(11, frameRequest, 9, payload); !bytes.Equal(want.Bytes(), old) {
				t.Fatalf("coalesced untraced frame differs from the old format:\n got %x\nwant %x", want.Bytes(), old)
			}
		}
		for i, segs := range segmentings {
			got := captureTCPWrite(t, func(conn net.Conn) error {
				return writeFrame(conn, 11, frameRequest, 9, ext, segs...)
			}, want.Len())
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatalf("ext=%v segmenting %d: vectored TCP bytes differ:\n got %x\nwant %x", ext, i, got, want.Bytes())
			}
		}
	}
}

// captureTCPWrite runs write against one end of a loopback TCP pair and
// returns exactly n bytes read from the other end.
func captureTCPWrite(t *testing.T, write func(net.Conn) error, n int) []byte {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		buf []byte
		err error
	}
	done := make(chan res, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- res{nil, err}
			return
		}
		defer conn.Close()
		buf := make([]byte, n)
		_, err = io.ReadFull(conn, buf)
		done <- res{buf, err}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, ok := conn.(*net.TCPConn); !ok {
		t.Fatalf("loopback dial returned %T, want *net.TCPConn", conn)
	}
	if err := write(conn); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	return r.buf
}
