package transport

import (
	"context"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/race"
)

// allocLimit runs f and fails if it averages more than limit heap
// allocations per run. The counter is process-wide, so the echo server's
// goroutines count too — these tests pin the whole request round trip.
func allocLimit(t *testing.T, limit float64, f func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	got := testing.AllocsPerRun(200, f)
	t.Logf("%.1f allocs/op (limit %.0f)", got, limit)
	if got > limit {
		t.Errorf("%.1f allocs/op, want <= %.0f", got, limit)
	}
}

// TestAllocsCallScatter pins the zero-copy read path: a bulk response
// must land in the caller's buffer with a small constant number of
// bookkeeping allocations and no per-byte cost.
func TestAllocsCallScatter(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		buf := bufpool.Get(64 << 10)
		return buf, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	hdr := make([]byte, 16)
	dst := make([]byte, 64<<10)
	req := [][]byte{hdr}
	resp := [][]byte{dst}
	allocLimit(t, 6, func() {
		if err := c.CallScatter(ctx, 1, req, resp); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocsCallVecWrite pins the zero-copy write path: a gather request
// with a 64 KiB payload segment and an empty response.
func TestAllocsCallVecWrite(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	hdr := make([]byte, 16)
	data := make([]byte, 64<<10)
	req := [][]byte{hdr, data}
	allocLimit(t, 6, func() {
		if _, err := c.CallVec(ctx, 1, req); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocsNonErrorFastPath pins that a frameOK response never touches
// the error-decoding path: decodeRemoteError and friends must cost
// nothing when the call succeeds (the common case).
func TestAllocsNonErrorFastPath(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	req := [][]byte{make([]byte, 16)}
	allocLimit(t, 6, func() {
		if _, err := c.CallVec(ctx, 1, req); err != nil {
			t.Fatal(err)
		}
	})
}
