// Package transport is the wire protocol of the cooperative disk
// drivers: a minimal, stdlib-only, length-prefixed binary RPC over TCP.
//
// Frames are multiplexed by request ID, so one connection carries many
// outstanding requests. The server processes each connection's requests
// in arrival order, preserving the per-client ordering the CDD relies
// on (a background write followed by a flush on the same connection is
// applied before the flush completes). Notifications (fire-and-forget
// frames with ID 0) get no response — the mechanism behind deferred
// mirror pushes.
//
// Calls are context-aware: a deadline or cancellation on the context
// abandons the call. If the request frame had not been fully written
// yet the connection is closed (a partial frame would desynchronize the
// stream); if the frame was sent, the connection stays usable and the
// eventual response is dropped. A client whose connection has broken
// re-dials automatically on the next call (unless NoReconnect is set),
// so a crashed-and-restarted peer is reached again without rebuilding
// the client.
//
// Frame layout (big endian):
//
//	uint32 frame length (bytes after this field)
//	uint64 request id   (0 = notification)
//	uint8  type         (0 request, 1 response-ok, 2 response-error;
//	                     bit 7 set = a flags byte follows the op)
//	uint8  op           (application opcode; echoed in responses)
//	[uint8 flags]       (only when type bit 7 is set)
//	[16 B  trace ext]   (only when flags bit 0 is set: trace id, span id)
//	...    payload
//
// The flags byte is the frame format's extension point. A frame without
// bit 7 in its type byte is byte-identical to the original format, so a
// peer that omits the flag (an older build, or simply an untraced
// request) interoperates unchanged; frames carrying unknown flag bits
// are rejected as malformed rather than misparsed. The only extension
// so far is the 16-byte trace context (internal/trace) that lets a
// server record its handler spans into the caller's trace.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

const (
	frameRequest = 0
	frameOK      = 1
	frameError   = 2
	headerLen    = 8 + 1 + 1
	// typExt flags that an extension flags byte follows the op byte.
	typExt = 0x80
	// flagTrace flags a 16-byte trace context after the flags byte.
	flagTrace = 0x01
	// traceExtLen is the flags byte plus the trace context.
	traceExtLen = 1 + 16
	// MaxFrame bounds a frame's size (16 MiB) to stop a corrupt length
	// prefix from exhausting memory.
	MaxFrame = 16 << 20
	// MaxPayload is the largest payload that fits in one frame.
	MaxPayload = MaxFrame - headerLen
	// DefaultDialTimeout bounds each connection attempt.
	DefaultDialTimeout = 5 * time.Second
)

// Handler processes one request and returns the response payload. ctx
// carries the request's resumed trace context when the frame had one
// (and the server a tracer); it is not otherwise used for cancellation
// today. Returning an error sends a response-error frame; the error
// text travels to the caller, prefixed by a one-byte error code
// (CodeGeneric unless the error carries one via WithCode).
type Handler func(ctx context.Context, op uint8, payload []byte) ([]byte, error)

// TraceExt is a frame's optional trace extension: the caller's trace
// and the span that issued the request (the parent of any spans the
// server records).
type TraceExt struct {
	Trace trace.TraceID
	Span  trace.SpanID
}

// Error codes carried in the first byte of a response-error frame, so
// clients classify remote failures structurally instead of matching
// error-message text.
const (
	// CodeGeneric is any application error without a more specific code.
	CodeGeneric uint8 = 0
	// CodeDiskFailed: the node is reachable but the addressed disk has
	// failed — the classification health tracking keys on.
	CodeDiskFailed uint8 = 1
	// CodeBadRequest: the request was malformed or out of range.
	CodeBadRequest uint8 = 2
	// CodeUnknownOp: the opcode is not implemented by the peer.
	CodeUnknownOp uint8 = 3
	// CodeOversized: the handler's response exceeded MaxPayload.
	CodeOversized uint8 = 4
)

// codedError attaches a wire code to a handler error.
type codedError struct {
	code uint8
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

// WithCode wraps err so that, when it crosses the wire as a
// response-error frame, the peer's RemoteError carries the given code.
func WithCode(code uint8, err error) error {
	if err == nil {
		return nil
	}
	return &codedError{code: code, err: err}
}

// codeOf extracts the wire code from a handler error.
func codeOf(err error) uint8 {
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	return CodeGeneric
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("transport: connection closed")

// ErrFrameTooLarge is returned at send time for payloads that exceed
// MaxPayload — emitting the frame would only make the peer kill the
// connection with an opaque "bad frame length" error.
var ErrFrameTooLarge = errors.New("transport: frame too large")

// RemoteError is a server-side error delivered to the caller. Its
// presence proves the peer received and processed the request, so it is
// never worth retrying at the transport level. Code classifies the
// failure (CodeDiskFailed, CodeBadRequest, ...); Msg is human-readable
// detail that callers must not dispatch on.
type RemoteError struct {
	Op   uint8
	Code uint8
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote error (op %d, code %d): %s", e.Op, e.Code, e.Msg)
}

// encodeErrorPayload renders a handler error as a response-error frame
// payload: one code byte followed by the message text.
func encodeErrorPayload(code uint8, msg string) []byte {
	b := make([]byte, 1+len(msg))
	b[0] = code
	copy(b[1:], msg)
	return b
}

// decodeRemoteError parses a response-error payload. An empty payload
// (a pre-code peer, or a truncating one) degrades to CodeGeneric.
func decodeRemoteError(op uint8, payload []byte) *RemoteError {
	if len(payload) == 0 {
		return &RemoteError{Op: op, Code: CodeGeneric}
	}
	return &RemoteError{Op: op, Code: payload[0], Msg: string(payload[1:])}
}

// writeFrame emits one frame. A nil ext produces bytes identical to
// the pre-extension frame format, so untraced traffic is indistinguishable
// from an older peer's. No bytes are written when the frame would
// exceed MaxFrame, so an ErrFrameTooLarge does not desynchronize the
// stream.
func writeFrame(w io.Writer, id uint64, typ, op uint8, ext *TraceExt, payload []byte) error {
	extLen := 0
	if ext != nil {
		extLen = traceExtLen
	}
	if extLen+len(payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d bytes exceeds %d", ErrFrameTooLarge, len(payload), MaxPayload-extLen)
	}
	hdr := make([]byte, 4+headerLen+extLen)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(headerLen+extLen+len(payload)))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = typ
	hdr[13] = op
	if ext != nil {
		hdr[12] |= typExt
		hdr[14] = flagTrace
		binary.BigEndian.PutUint64(hdr[15:23], uint64(ext.Trace))
		binary.BigEndian.PutUint64(hdr[23:31], uint64(ext.Span))
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame parses one frame, accepting both the original format and
// the flags-byte extension. The returned typ has the extension bit
// stripped; ext is nil unless the frame carried a trace context.
func readFrame(r io.Reader) (id uint64, typ, op uint8, ext *TraceExt, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < headerLen || n > MaxFrame {
		err = fmt.Errorf("transport: bad frame length %d", n)
		return
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(r, buf); err != nil {
		return
	}
	id = binary.BigEndian.Uint64(buf[0:8])
	typ = buf[8]
	op = buf[9]
	payload = buf[headerLen:]
	if typ&typExt == 0 {
		return
	}
	typ &^= typExt
	if len(payload) < 1 {
		err = fmt.Errorf("transport: frame advertises flags but is truncated")
		return
	}
	flags := payload[0]
	payload = payload[1:]
	if flags&^uint8(flagTrace) != 0 {
		err = fmt.Errorf("transport: unknown frame flags %#02x", flags)
		return
	}
	if flags&flagTrace != 0 {
		if len(payload) < 16 {
			err = fmt.Errorf("transport: truncated trace extension (%d bytes)", len(payload))
			return
		}
		ext = &TraceExt{
			Trace: trace.TraceID(binary.BigEndian.Uint64(payload[0:8])),
			Span:  trace.SpanID(binary.BigEndian.Uint64(payload[8:16])),
		}
		payload = payload[16:]
	}
	return
}

// Server accepts CDD connections and dispatches requests to a Handler.
type Server struct {
	ln      net.Listener
	handler Handler
	tracer  *trace.Tracer
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// ServerOptions tune a server. The zero value serves without tracing.
type ServerOptions struct {
	// Tracer, when non-nil, resumes the trace context of incoming
	// frames: each traced request is handled under a "transport.serve"
	// span recorded into this tracer as a child of the caller's span.
	Tracer *trace.Tracer
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") and begins
// accepting connections in the background.
func Serve(addr string, h Handler) (*Server, error) {
	return ServeWith(addr, h, ServerOptions{})
}

// ServeWith starts a server with explicit options.
func ServeWith(addr string, h Handler, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: h, tracer: opts.Tracer, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	remote := conn.RemoteAddr().String()
	var wmu sync.Mutex
	for {
		id, typ, op, ext, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		if typ != frameRequest {
			continue // ignore stray frames
		}
		// Requests are handled in order; responses are written under a
		// lock because a handler could in principle respond late.
		ctx := context.Background()
		var h trace.Handle
		if ext != nil && s.tracer != nil {
			// Resume the caller's trace: the serve span (and everything
			// the handler records under ctx) becomes a child of the span
			// that stamped the frame, assembled across nodes later.
			ctx = trace.Resume(ctx, s.tracer, ext.Trace, ext.Span)
			ctx, h = trace.Start(ctx, "transport.serve", remote)
			h.Val = int64(len(payload))
		}
		resp, herr := s.handler(ctx, op, payload)
		h.End(herr)
		if id == 0 {
			continue // notification: no response even on error
		}
		wmu.Lock()
		if herr != nil {
			err = writeFrame(conn, id, frameError, op, nil, encodeErrorPayload(codeOf(herr), herr.Error()))
		} else {
			err = writeFrame(conn, id, frameOK, op, nil, resp)
			if errors.Is(err, ErrFrameTooLarge) {
				// An oversized handler result must not kill the
				// connection: deliver it as an error response instead.
				err = writeFrame(conn, id, frameError, op, nil, encodeErrorPayload(CodeOversized, err.Error()))
			}
		}
		wmu.Unlock()
		if err != nil {
			return
		}
	}
}

// Close stops accepting and tears down all connections, waiting for
// handler goroutines to finish.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// DialFunc produces the raw connection under a client. Fault injectors
// (internal/faultnet) substitute their own.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

func tcpDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// DialOptions tune a client's connection management. The zero value is
// the production default: TCP, DefaultDialTimeout, reconnect enabled.
type DialOptions struct {
	// DialTimeout bounds each connection attempt (including automatic
	// reconnects). Zero means DefaultDialTimeout.
	DialTimeout time.Duration
	// NoReconnect disables automatic re-dialing after a broken
	// connection: calls fail with the error that broke it.
	NoReconnect bool
	// Dialer overrides the raw connection factory (fault injection,
	// testing). Nil means plain TCP.
	Dialer DialFunc
	// Obs, when non-nil, receives transport counters (frames sent and
	// received, reconnects, deadline expiries, remote errors).
	Obs *obs.Registry
}

// clientMetrics are the client's transport counters, resolved once at
// dial time; all fields are nil (and all updates no-ops) without a
// registry.
type clientMetrics struct {
	framesSent      *obs.Counter
	framesRecv      *obs.Counter
	reconnects      *obs.Counter
	deadlineExpired *obs.Counter
	remoteErrors    *obs.Counter
}

func newClientMetrics(r *obs.Registry) clientMetrics {
	if r == nil {
		return clientMetrics{}
	}
	return clientMetrics{
		framesSent:      r.Counter("transport.frames_sent"),
		framesRecv:      r.Counter("transport.frames_recv"),
		reconnects:      r.Counter("transport.reconnects"),
		deadlineExpired: r.Counter("transport.deadline_expired"),
		remoteErrors:    r.Counter("transport.remote_errors"),
	}
}

// Client is one CDD-to-CDD connection (logically: the transport keeps
// it connected across broken TCP sessions unless NoReconnect is set).
type Client struct {
	addr   string
	opts   DialOptions
	met    clientMetrics
	nextID atomic.Uint64

	// dialMu serializes reconnect attempts so concurrent calls over a
	// broken connection produce one new session, not many.
	dialMu sync.Mutex

	// wmu serializes frame writes on the current connection.
	wmu sync.Mutex

	mu      sync.Mutex
	conn    net.Conn // current session; nil while broken
	gen     uint64   // session generation, bumps on every redial
	connErr error    // why the last session died
	pending map[uint64]*pendingCall
	closed  bool
}

type pendingCall struct {
	ch  chan response
	gen uint64
}

type response struct {
	typ     uint8
	op      uint8
	payload []byte
}

// Dial connects to a CDD server with default options.
func Dial(addr string) (*Client, error) {
	return DialWith(context.Background(), addr, DialOptions{})
}

// DialWith connects to a CDD server with explicit options; ctx bounds
// the initial connection attempt.
func DialWith(ctx context.Context, addr string, opts DialOptions) (*Client, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = DefaultDialTimeout
	}
	if opts.Dialer == nil {
		opts.Dialer = tcpDial
	}
	c := &Client{addr: addr, opts: opts, met: newClientMetrics(opts.Obs), pending: map[uint64]*pendingCall{}}
	if err := c.redial(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// Addr reports the remote address the client (re)connects to.
func (c *Client) Addr() string { return c.addr }

// redial establishes a fresh session if none is live.
func (c *Client) redial(ctx context.Context) error {
	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.conn != nil {
		c.mu.Unlock()
		return nil // someone else already reconnected
	}
	c.mu.Unlock()
	dctx, cancel := context.WithTimeout(ctx, c.opts.DialTimeout)
	conn, err := c.opts.Dialer(dctx, c.addr)
	cancel()
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	c.conn = conn
	c.gen++
	c.connErr = nil
	gen := c.gen
	c.mu.Unlock()
	if gen > 1 {
		c.met.reconnects.Inc()
	}
	go c.readLoop(conn, gen)
	return nil
}

// ensureConn returns the live session, re-dialing if the previous one
// broke (and reconnection is enabled).
func (c *Client) ensureConn(ctx context.Context) (net.Conn, uint64, error) {
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, 0, ErrClosed
		}
		if c.conn != nil {
			conn, gen := c.conn, c.gen
			c.mu.Unlock()
			return conn, gen, nil
		}
		lastErr := c.connErr
		c.mu.Unlock()
		if c.opts.NoReconnect {
			if lastErr == nil {
				lastErr = ErrClosed
			}
			return nil, 0, lastErr
		}
		if attempt > 0 {
			// The session we just dialed broke before we could use it;
			// do not spin on a flapping peer.
			return nil, 0, lastErr
		}
		if err := c.redial(ctx); err != nil {
			return nil, 0, err
		}
	}
}

func (c *Client) readLoop(conn net.Conn, gen uint64) {
	for {
		id, typ, op, _, payload, err := readFrame(conn)
		if err != nil {
			conn.Close()
			c.mu.Lock()
			if c.gen == gen && c.conn == conn {
				c.conn = nil
				c.connErr = err
			}
			for pid, p := range c.pending {
				if p.gen == gen {
					delete(c.pending, pid)
					close(p.ch)
				}
			}
			c.mu.Unlock()
			return
		}
		c.met.framesRecv.Inc()
		c.mu.Lock()
		p, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			p.ch <- response{typ: typ, op: op, payload: payload}
		}
	}
}

// brokenErr explains why a pending call's channel was closed.
func (c *Client) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.connErr != nil {
		return c.connErr
	}
	return ErrClosed
}

// Call sends a request and waits for its response payload. The context
// bounds the whole exchange: on expiry or cancellation the call
// returns ctx.Err() immediately (closing the connection only if the
// request frame was still in flight). A traced context (internal/trace)
// records the exchange as a "transport.call" span and stamps the frame
// with the trace extension so the server can continue the trace.
func (c *Client) Call(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
	ext, h := c.startWire(ctx, "transport.call", payload)
	resp, err := c.call(ctx, op, ext, payload)
	h.End(err)
	return resp, err
}

// startWire opens the client-side span for one frame exchange and
// builds the trace extension that carries it; both are zero for an
// untraced context.
func (c *Client) startWire(ctx context.Context, name string, payload []byte) (*TraceExt, trace.Handle) {
	if _, ok := trace.FromContext(ctx); !ok {
		return nil, trace.Handle{}
	}
	tctx, h := trace.Start(ctx, name, c.addr)
	h.Val = int64(len(payload))
	sc, ok := trace.FromContext(tctx)
	if !ok {
		return nil, h
	}
	return &TraceExt{Trace: sc.Trace, Span: sc.Span}, h
}

func (c *Client) call(ctx context.Context, op uint8, ext *TraceExt, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d bytes exceeds %d", ErrFrameTooLarge, len(payload), MaxPayload)
	}
	conn, gen, err := c.ensureConn(ctx)
	if err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	pc := &pendingCall{ch: make(chan response, 1), gen: gen}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.conn != conn || c.gen != gen {
		// The session died between ensureConn and registration; its
		// drain already ran, so registering now would hang forever.
		err := c.connErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.pending[id] = pc
	c.mu.Unlock()

	unregister := func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}

	if ctx.Done() == nil {
		// Fast path: nothing to race the write against.
		c.wmu.Lock()
		err = writeFrame(conn, id, frameRequest, op, ext, payload)
		c.wmu.Unlock()
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// Nothing was written; the session is still good.
				unregister()
				return nil, err
			}
			c.dropConn(conn, err) // a partial frame desynchronizes the stream
			unregister()
			return nil, err
		}
	} else {
		written := make(chan error, 1)
		go func() {
			c.wmu.Lock()
			werr := writeFrame(conn, id, frameRequest, op, ext, payload)
			c.wmu.Unlock()
			written <- werr
		}()
		select {
		case err = <-written:
			if err != nil {
				if !errors.Is(err, ErrFrameTooLarge) {
					c.dropConn(conn, err)
				}
				unregister()
				return nil, err
			}
		case <-ctx.Done():
			// Abandon mid-write: the frame may be half on the wire, so
			// the session cannot be reused.
			c.dropConn(conn, ctx.Err())
			unregister()
			c.met.deadlineExpired.Inc()
			return nil, ctx.Err()
		}
	}
	c.met.framesSent.Inc()

	select {
	case resp, ok := <-pc.ch:
		if !ok {
			return nil, c.brokenErr()
		}
		if resp.typ == frameError {
			c.met.remoteErrors.Inc()
			return nil, decodeRemoteError(resp.op, resp.payload)
		}
		return resp.payload, nil
	case <-ctx.Done():
		unregister()
		c.met.deadlineExpired.Inc()
		return nil, ctx.Err()
	}
}

// Notify sends a fire-and-forget request (no response, errors on the
// server are dropped) — used for deferred mirror pushes. It shares the
// session with Call and re-dials a broken one. ctx supplies only the
// trace context (recorded as a "transport.notify" span); the send
// itself is not cancellable.
func (c *Client) Notify(ctx context.Context, op uint8, payload []byte) error {
	ext, h := c.startWire(ctx, "transport.notify", payload)
	err := c.notify(op, ext, payload)
	h.End(err)
	return err
}

func (c *Client) notify(op uint8, ext *TraceExt, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d bytes exceeds %d", ErrFrameTooLarge, len(payload), MaxPayload)
	}
	conn, _, err := c.ensureConn(context.Background())
	if err != nil {
		return err
	}
	c.wmu.Lock()
	err = writeFrame(conn, 0, frameRequest, op, ext, payload)
	c.wmu.Unlock()
	if err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			return err
		}
		c.dropConn(conn, err)
		return err
	}
	c.met.framesSent.Inc()
	return nil
}

// dropConn retires a session whose stream can no longer be trusted (a
// failed or abandoned write), so the next call re-dials instead of
// racing the read loop's discovery of the dead socket.
func (c *Client) dropConn(conn net.Conn, cause error) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		if c.connErr == nil {
			c.connErr = cause
		}
	}
	c.mu.Unlock()
}

// Close tears down the connection. Outstanding calls fail with
// ErrClosed immediately rather than waiting for the read loop to trip
// over the dead socket.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	for id, p := range c.pending {
		delete(c.pending, id)
		close(p.ch)
	}
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
