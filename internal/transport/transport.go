// Package transport is the wire protocol of the cooperative disk
// drivers: a minimal, stdlib-only, length-prefixed binary RPC over TCP.
//
// Frames are multiplexed by request ID, so one connection carries many
// outstanding requests. The server processes each connection's requests
// in arrival order, preserving the per-client ordering the CDD relies
// on (a background write followed by a flush on the same connection is
// applied before the flush completes). Notifications (fire-and-forget
// frames with ID 0) get no response — the mechanism behind deferred
// mirror pushes.
//
// Frame layout (big endian):
//
//	uint32 frame length (bytes after this field)
//	uint64 request id   (0 = notification)
//	uint8  type         (0 request, 1 response-ok, 2 response-error)
//	uint8  op           (application opcode; echoed in responses)
//	...    payload
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

const (
	frameRequest = 0
	frameOK      = 1
	frameError   = 2
	headerLen    = 8 + 1 + 1
	// MaxFrame bounds a frame's size (16 MiB) to stop a corrupt length
	// prefix from exhausting memory.
	MaxFrame = 16 << 20
)

// Handler processes one request and returns the response payload.
// Returning an error sends a response-error frame; the error text
// travels to the caller.
type Handler func(op uint8, payload []byte) ([]byte, error)

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("transport: connection closed")

// RemoteError is a server-side error delivered to the caller.
type RemoteError struct {
	Op  uint8
	Msg string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote error (op %d): %s", e.Op, e.Msg)
}

func writeFrame(w io.Writer, id uint64, typ, op uint8, payload []byte) error {
	hdr := make([]byte, 4+headerLen)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(headerLen+len(payload)))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = typ
	hdr[13] = op
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(r io.Reader) (id uint64, typ, op uint8, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < headerLen || n > MaxFrame {
		err = fmt.Errorf("transport: bad frame length %d", n)
		return
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(r, buf); err != nil {
		return
	}
	id = binary.BigEndian.Uint64(buf[0:8])
	typ = buf[8]
	op = buf[9]
	payload = buf[headerLen:]
	return
}

// Server accepts CDD connections and dispatches requests to a Handler.
type Server struct {
	ln      net.Listener
	handler Handler
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") and begins
// accepting connections in the background.
func Serve(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: h, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var wmu sync.Mutex
	for {
		id, typ, op, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		if typ != frameRequest {
			continue // ignore stray frames
		}
		// Requests are handled in order; responses are written under a
		// lock because a handler could in principle respond late.
		resp, herr := s.handler(op, payload)
		if id == 0 {
			continue // notification: no response even on error
		}
		wmu.Lock()
		if herr != nil {
			err = writeFrame(conn, id, frameError, op, []byte(herr.Error()))
		} else {
			err = writeFrame(conn, id, frameOK, op, resp)
		}
		wmu.Unlock()
		if err != nil {
			return
		}
	}
}

// Close stops accepting and tears down all connections, waiting for
// handler goroutines to finish.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is one CDD-to-CDD connection.
type Client struct {
	conn    net.Conn
	nextID  atomic.Uint64
	wmu     sync.Mutex
	mu      sync.Mutex
	pending map[uint64]chan response
	closed  bool
	readErr error
}

type response struct {
	typ     uint8
	op      uint8
	payload []byte
}

// Dial connects to a CDD server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, pending: map[uint64]chan response{}}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		id, typ, op, payload, err := readFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, ch := range c.pending {
				close(ch)
			}
			c.pending = map[uint64]chan response{}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- response{typ: typ, op: op, payload: payload}
		}
	}
}

// Call sends a request and waits for its response payload.
func (c *Client) Call(op uint8, payload []byte) ([]byte, error) {
	id := c.nextID.Add(1)
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeFrame(c.conn, id, frameRequest, op, payload)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	if resp.typ == frameError {
		return nil, &RemoteError{Op: resp.op, Msg: string(resp.payload)}
	}
	return resp.payload, nil
}

// Notify sends a fire-and-forget request (no response, errors on the
// server are dropped) — used for deferred mirror pushes.
func (c *Client) Notify(op uint8, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeFrame(c.conn, 0, frameRequest, op, payload)
}

// Close tears down the connection; outstanding calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
