// Package transport is the wire protocol of the cooperative disk
// drivers: a minimal, stdlib-only, length-prefixed binary RPC over TCP.
//
// Frames are multiplexed by request ID, so one connection carries many
// outstanding requests. The server processes each connection's requests
// in arrival order, preserving the per-client ordering the CDD relies
// on (a background write followed by a flush on the same connection is
// applied before the flush completes). Notifications (fire-and-forget
// frames with ID 0) get no response — the mechanism behind deferred
// mirror pushes.
//
// Calls are context-aware: a deadline or cancellation on the context
// abandons the call. If the request frame had not been fully written
// yet the connection is closed (a partial frame would desynchronize the
// stream); if the frame was sent, the connection stays usable and the
// eventual response is dropped. A client whose connection has broken
// re-dials automatically on the next call (unless NoReconnect is set),
// so a crashed-and-restarted peer is reached again without rebuilding
// the client.
//
// The data path is zero-copy in both directions (DESIGN.md §10): a
// request assembled as a gather list (CallVec) goes to a TCP session as
// one writev — header, trace extension, and payload segments are never
// coalesced into a staging buffer — and a bulk response (CallScatter)
// is read off the socket directly into caller-provided memory. Frame
// headers come from a pool; server-side request payloads are pooled
// per-frame and released after the response is written.
//
// Frame layout (big endian):
//
//	uint32 frame length (bytes after this field)
//	uint64 request id   (0 = notification)
//	uint8  type         (0 request, 1 response-ok, 2 response-error;
//	                     bit 7 set = a flags byte follows the op)
//	uint8  op           (application opcode; echoed in responses)
//	[uint8 flags]       (only when type bit 7 is set)
//	[16 B  trace ext]   (only when flags bit 0 is set: trace id, span id)
//	...    payload
//
// The flags byte is the frame format's extension point. A frame without
// bit 7 in its type byte is byte-identical to the original format, so a
// peer that omits the flag (an older build, or simply an untraced
// request) interoperates unchanged; frames carrying unknown flag bits
// are rejected as malformed rather than misparsed. The only extension
// so far is the 16-byte trace context (internal/trace) that lets a
// server record its handler spans into the caller's trace.
package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/obs"
	"repro/internal/trace"
)

const (
	frameRequest = 0
	frameOK      = 1
	frameError   = 2
	headerLen    = 8 + 1 + 1
	// typExt flags that an extension flags byte follows the op byte.
	typExt = 0x80
	// flagTrace flags a 16-byte trace context after the flags byte.
	flagTrace = 0x01
	// traceExtLen is the flags byte plus the trace context.
	traceExtLen = 1 + 16
	// MaxFrame bounds a frame's size (16 MiB) to stop a corrupt length
	// prefix from exhausting memory.
	MaxFrame = 16 << 20
	// MaxPayload is the largest payload that fits in one frame.
	MaxPayload = MaxFrame - headerLen
	// DefaultDialTimeout bounds each connection attempt.
	DefaultDialTimeout = 5 * time.Second
	// connBufSize sizes the per-connection read buffer: big enough that
	// a frame header never costs its own syscall, small enough to be
	// cheap per connection.
	connBufSize = 64 << 10
)

// Handler processes one request and returns the response payload. ctx
// carries the request's resumed trace context when the frame had one
// (and the server a tracer); it is not otherwise used for cancellation
// today. The payload is only valid for the duration of the call — the
// server recycles it once the handler returns, so a handler that needs
// the bytes later must copy them. Returning an error sends a
// response-error frame; the error text travels to the caller, prefixed
// by a one-byte error code (CodeGeneric unless the error carries one
// via WithCode).
type Handler func(ctx context.Context, op uint8, payload []byte) ([]byte, error)

// TraceExt is a frame's optional trace extension: the caller's trace
// and the span that issued the request (the parent of any spans the
// server records).
type TraceExt struct {
	Trace trace.TraceID
	Span  trace.SpanID
}

// Error codes carried in the first byte of a response-error frame, so
// clients classify remote failures structurally instead of matching
// error-message text.
const (
	// CodeGeneric is any application error without a more specific code.
	CodeGeneric uint8 = 0
	// CodeDiskFailed: the node is reachable but the addressed disk has
	// failed — the classification health tracking keys on.
	CodeDiskFailed uint8 = 1
	// CodeBadRequest: the request was malformed or out of range.
	CodeBadRequest uint8 = 2
	// CodeUnknownOp: the opcode is not implemented by the peer.
	CodeUnknownOp uint8 = 3
	// CodeOversized: the handler's response exceeded MaxPayload.
	CodeOversized uint8 = 4
	// CodeStaleEpoch: the request was tagged with an array-layout epoch
	// generation older than the node's — the client's placement map
	// predates a completed rebalance. Retryable once the client
	// refreshes its layout.
	CodeStaleEpoch uint8 = 5
)

// codedError attaches a wire code to a handler error.
type codedError struct {
	code uint8
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

// WithCode wraps err so that, when it crosses the wire as a
// response-error frame, the peer's RemoteError carries the given code.
func WithCode(code uint8, err error) error {
	if err == nil {
		return nil
	}
	return &codedError{code: code, err: err}
}

// codeOf extracts the wire code from a handler error.
func codeOf(err error) uint8 {
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	return CodeGeneric
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("transport: connection closed")

// ErrFrameTooLarge is returned at send time for payloads that exceed
// MaxPayload — emitting the frame would only make the peer kill the
// connection with an opaque "bad frame length" error.
var ErrFrameTooLarge = errors.New("transport: frame too large")

// RemoteError is a server-side error delivered to the caller. Its
// presence proves the peer received and processed the request, so it is
// never worth retrying at the transport level. Code classifies the
// failure (CodeDiskFailed, CodeBadRequest, ...); Msg is human-readable
// detail that callers must not dispatch on.
type RemoteError struct {
	Op   uint8
	Code uint8
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote error (op %d, code %d): %s", e.Op, e.Code, e.Msg)
}

// RespSizeError is returned by CallScatter when the peer's response
// does not exactly fill the caller's landing buffers. The frame was
// still consumed (the stream stays in sync) but none of the payload is
// delivered. It proves the peer processed the request, so — like
// RemoteError — it is not a transport-level failure worth retrying.
type RespSizeError struct {
	Got, Want int
}

func (e *RespSizeError) Error() string {
	return fmt.Sprintf("transport: response size %d bytes, want %d", e.Got, e.Want)
}

// encodeErrorPayload renders a handler error as a response-error frame
// payload: one code byte followed by the message text.
func encodeErrorPayload(code uint8, msg string) []byte {
	b := make([]byte, 1+len(msg))
	b[0] = code
	copy(b[1:], msg)
	return b
}

// decodeRemoteError parses a response-error payload. Only ever invoked
// for frameError responses, so the success path builds no error state.
// An empty payload (a pre-code peer, or a truncating one) degrades to
// CodeGeneric.
func decodeRemoteError(op uint8, payload []byte) *RemoteError {
	re := &RemoteError{Op: op}
	if len(payload) > 0 {
		re.Code = payload[0]
		if len(payload) > 1 {
			re.Msg = string(payload[1:])
		}
	}
	return re
}

// frameScratch holds the per-write transient state of one frame: the
// encoded header bytes and the reusable gather list. Pooled so the hot
// path allocates neither.
type frameScratch struct {
	hdr  [4 + headerLen + traceExtLen]byte
	vecs net.Buffers
}

var framePool = sync.Pool{New: func() any { return new(frameScratch) }}

// writeFrame emits one frame whose payload is the concatenation of
// segs. A nil ext produces bytes identical to the pre-extension frame
// format, so untraced traffic is indistinguishable from an older
// peer's. No bytes are written when the frame would exceed MaxFrame, so
// an ErrFrameTooLarge does not desynchronize the stream.
//
// On a TCP session the header and segments go out as one vectored
// write (writev) with no coalescing copy. Other writers (pipes, fault
// injectors, in-memory buffers) get the frame as a single Write from a
// pooled staging buffer — one Write per frame either way, so
// per-write fault injection charges frames, not segments.
func writeFrame(w io.Writer, id uint64, typ, op uint8, ext *TraceExt, segs ...[]byte) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	extLen := 0
	if ext != nil {
		extLen = traceExtLen
	}
	if extLen+total > MaxPayload {
		return fmt.Errorf("%w: payload %d bytes exceeds %d", ErrFrameTooLarge, total, MaxPayload-extLen)
	}
	scr := framePool.Get().(*frameScratch)
	hdr := scr.hdr[:4+headerLen+extLen]
	binary.BigEndian.PutUint32(hdr[0:4], uint32(headerLen+extLen+total))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = typ
	hdr[13] = op
	if ext != nil {
		hdr[12] |= typExt
		hdr[14] = flagTrace
		binary.BigEndian.PutUint64(hdr[15:23], uint64(ext.Trace))
		binary.BigEndian.PutUint64(hdr[23:31], uint64(ext.Span))
	}
	var err error
	if tc, ok := w.(*net.TCPConn); ok {
		scr.vecs = append(scr.vecs[:0], hdr)
		for _, s := range segs {
			if len(s) > 0 {
				scr.vecs = append(scr.vecs, s)
			}
		}
		// WriteTo advances its receiver, so keep the full view aside to
		// restore the backing array afterwards. Calling through the
		// pooled scratch's field (not a local copy) keeps the slice
		// header off the heap — a local would escape into the pointer
		// receiver and cost an allocation per frame.
		full := scr.vecs
		_, err = scr.vecs.WriteTo(tc)
		clear(full) // drop payload references before pooling
		scr.vecs = full[:0]
	} else {
		buf := bufpool.Get(len(hdr) + total)
		n := copy(buf, hdr)
		for _, s := range segs {
			n += copy(buf[n:], s)
		}
		_, err = w.Write(buf)
		bufpool.Put(buf)
	}
	framePool.Put(scr)
	return err
}

// frameHeader is the parsed fixed part of a frame (everything but the
// payload). typ has the extension bit stripped; ext is valid only when
// hasExt is set.
type frameHeader struct {
	id     uint64
	typ    uint8
	op     uint8
	ext    TraceExt
	hasExt bool
}

// headerScratch is the caller-owned read buffer for readFrameHeader:
// one per connection, so parsing a frame header allocates nothing (a
// function-local array would escape into io.ReadFull's interface
// argument and cost a heap allocation per frame).
type headerScratch [4 + headerLen + 16]byte

// readFrameHeader parses a frame's length prefix, fixed header, and
// optional extension, leaving exactly the returned payload length
// unread on r. Splitting the header from the payload is what lets
// readers choose where the payload lands (a pooled buffer, the caller's
// own memory, or /dev/null for an unclaimed response) without an
// intermediate copy.
func readFrameHeader(r io.Reader, scratch *headerScratch) (fh frameHeader, payloadLen int, err error) {
	buf := scratch[:4+headerLen]
	if _, err = io.ReadFull(r, buf); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(buf[0:4])
	if n < headerLen || n > MaxFrame {
		err = fmt.Errorf("transport: bad frame length %d", n)
		return
	}
	fh.id = binary.BigEndian.Uint64(buf[4:12])
	fh.typ = buf[12]
	fh.op = buf[13]
	rem := int(n) - headerLen
	if fh.typ&typExt == 0 {
		return fh, rem, nil
	}
	fh.typ &^= typExt
	if rem < 1 {
		err = fmt.Errorf("transport: frame advertises flags but is truncated")
		return
	}
	if _, err = io.ReadFull(r, scratch[:1]); err != nil {
		return
	}
	rem--
	flags := scratch[0]
	if flags&^uint8(flagTrace) != 0 {
		err = fmt.Errorf("transport: unknown frame flags %#02x", flags)
		return
	}
	if flags&flagTrace != 0 {
		if rem < 16 {
			err = fmt.Errorf("transport: truncated trace extension (%d bytes)", rem)
			return
		}
		tb := scratch[:16]
		if _, err = io.ReadFull(r, tb); err != nil {
			return
		}
		rem -= 16
		fh.ext = TraceExt{
			Trace: trace.TraceID(binary.BigEndian.Uint64(tb[0:8])),
			Span:  trace.SpanID(binary.BigEndian.Uint64(tb[8:16])),
		}
		fh.hasExt = true
	}
	return fh, rem, nil
}

// readFrame parses one whole frame, accepting both the original format
// and the flags-byte extension. The returned typ has the extension bit
// stripped; ext is nil unless the frame carried a trace context.
func readFrame(r io.Reader) (id uint64, typ, op uint8, ext *TraceExt, payload []byte, err error) {
	var scratch headerScratch
	fh, n, err := readFrameHeader(r, &scratch)
	if err != nil {
		return
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return
	}
	if fh.hasExt {
		ext = &fh.ext
	}
	return fh.id, fh.typ, fh.op, ext, payload, nil
}

// Server accepts CDD connections and dispatches requests to a Handler.
type Server struct {
	ln      net.Listener
	handler Handler
	tracer  *trace.Tracer
	recycle bool
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// ServerOptions tune a server. The zero value serves without tracing.
type ServerOptions struct {
	// Tracer, when non-nil, resumes the trace context of incoming
	// frames: each traced request is handled under a "transport.serve"
	// span recorded into this tracer as a child of the caller's span.
	Tracer *trace.Tracer
	// RecycleResponses releases each handler's response slice to the
	// buffer pool once its frame is on the wire, completing the pool
	// cycle for read-heavy handlers. Enable only when every handler
	// returns a buffer it owns outright and does not retain — never a
	// sub-slice of the request payload it was passed.
	RecycleResponses bool
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") and begins
// accepting connections in the background.
func Serve(addr string, h Handler) (*Server, error) {
	return ServeWith(addr, h, ServerOptions{})
}

// ServeWith starts a server with explicit options.
func ServeWith(addr string, h Handler, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: h, tracer: opts.Tracer, recycle: opts.RecycleResponses, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	remote := conn.RemoteAddr().String()
	br := bufio.NewReaderSize(conn, connBufSize)
	var wmu sync.Mutex
	var scratch headerScratch
	for {
		fh, plen, err := readFrameHeader(br, &scratch)
		if err != nil {
			return
		}
		// The request payload lives in a pooled buffer owned by the
		// server; the handler may use it only until it returns.
		var payload []byte
		if plen > 0 {
			payload = bufpool.Get(plen)
			if _, err := io.ReadFull(br, payload); err != nil {
				bufpool.Put(payload)
				return
			}
		}
		if fh.typ != frameRequest {
			bufpool.Put(payload)
			continue // ignore stray frames
		}
		// Requests are handled in order; responses are written under a
		// lock because a handler could in principle respond late.
		ctx := context.Background()
		var h trace.Handle
		if fh.hasExt && s.tracer != nil {
			// Resume the caller's trace: the serve span (and everything
			// the handler records under ctx) becomes a child of the span
			// that stamped the frame, assembled across nodes later.
			ctx = trace.Resume(ctx, s.tracer, fh.ext.Trace, fh.ext.Span)
			ctx, h = trace.Start(ctx, "transport.serve", remote)
			h.Val = int64(plen)
		}
		resp, herr := s.handler(ctx, fh.op, payload)
		h.End(herr)
		if fh.id == 0 {
			s.release(resp, payload)
			continue // notification: no response even on error
		}
		wmu.Lock()
		if herr != nil {
			err = writeFrame(conn, fh.id, frameError, fh.op, nil, encodeErrorPayload(codeOf(herr), herr.Error()))
		} else {
			err = writeFrame(conn, fh.id, frameOK, fh.op, nil, resp)
			if errors.Is(err, ErrFrameTooLarge) {
				// An oversized handler result must not kill the
				// connection: deliver it as an error response instead.
				err = writeFrame(conn, fh.id, frameError, fh.op, nil, encodeErrorPayload(CodeOversized, err.Error()))
			}
		}
		wmu.Unlock()
		s.release(resp, payload)
		if err != nil {
			return
		}
	}
}

// release recycles a frame's buffers after its response is written: the
// request payload always (the server owns it), the handler's response
// only under the RecycleResponses contract. A response that is the
// payload itself (an echoing handler) must not be pooled twice.
func (s *Server) release(resp, payload []byte) {
	if s.recycle && len(resp) > 0 && (len(payload) == 0 || &resp[0] != &payload[0]) {
		bufpool.Put(resp)
	}
	bufpool.Put(payload)
}

// Close stops accepting and tears down all connections, waiting for
// handler goroutines to finish.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// DialFunc produces the raw connection under a client. Fault injectors
// (internal/faultnet) substitute their own.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

func tcpDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// DialOptions tune a client's connection management. The zero value is
// the production default: TCP, DefaultDialTimeout, reconnect enabled.
type DialOptions struct {
	// DialTimeout bounds each connection attempt (including automatic
	// reconnects). Zero means DefaultDialTimeout.
	DialTimeout time.Duration
	// NoReconnect disables automatic re-dialing after a broken
	// connection: calls fail with the error that broke it.
	NoReconnect bool
	// Dialer overrides the raw connection factory (fault injection,
	// testing). Nil means plain TCP.
	Dialer DialFunc
	// Obs, when non-nil, receives transport counters (frames sent and
	// received, reconnects, deadline expiries, remote errors).
	Obs *obs.Registry
}

// clientMetrics are the client's transport counters, resolved once at
// dial time; all fields are nil (and all updates no-ops) without a
// registry.
type clientMetrics struct {
	framesSent      *obs.Counter
	framesRecv      *obs.Counter
	reconnects      *obs.Counter
	deadlineExpired *obs.Counter
	remoteErrors    *obs.Counter
}

func newClientMetrics(r *obs.Registry) clientMetrics {
	if r == nil {
		return clientMetrics{}
	}
	return clientMetrics{
		framesSent:      r.Counter("transport.frames_sent"),
		framesRecv:      r.Counter("transport.frames_recv"),
		reconnects:      r.Counter("transport.reconnects"),
		deadlineExpired: r.Counter("transport.deadline_expired"),
		remoteErrors:    r.Counter("transport.remote_errors"),
	}
}

// Client is one CDD-to-CDD connection (logically: the transport keeps
// it connected across broken TCP sessions unless NoReconnect is set).
type Client struct {
	addr   string
	opts   DialOptions
	met    clientMetrics
	nextID atomic.Uint64

	// dialMu serializes reconnect attempts so concurrent calls over a
	// broken connection produce one new session, not many.
	dialMu sync.Mutex

	// wmu serializes frame writes on the current connection.
	wmu sync.Mutex

	mu      sync.Mutex
	conn    net.Conn // current session; nil while broken
	gen     uint64   // session generation, bumps on every redial
	connErr error    // why the last session died
	pending map[uint64]*pendingCall
	closed  bool
}

// pendingCall tracks one in-flight request. dst, when non-empty, is the
// caller's landing area for a bulk response: the read loop claims it
// via dstState and scatters the payload straight off the socket into
// it, so cancellation must coordinate (see the dstState states) before
// the caller may reuse the memory.
type pendingCall struct {
	ch     chan response
	gen    uint64
	dst    [][]byte
	dstLen int
	// dstState: 0 = free, 1 = claimed by the read loop (bytes are
	// landing in dst), 2 = abandoned by the caller (the read loop must
	// not touch dst).
	dstState atomic.Int32
}

func (p *pendingCall) claimDst() bool { return p.dstState.CompareAndSwap(0, 1) }

type response struct {
	typ     uint8
	op      uint8
	payload []byte
	inDst   bool // payload landed in the caller's dst; payload is nil
}

// Dial connects to a CDD server with default options.
func Dial(addr string) (*Client, error) {
	return DialWith(context.Background(), addr, DialOptions{})
}

// DialWith connects to a CDD server with explicit options; ctx bounds
// the initial connection attempt.
func DialWith(ctx context.Context, addr string, opts DialOptions) (*Client, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = DefaultDialTimeout
	}
	if opts.Dialer == nil {
		opts.Dialer = tcpDial
	}
	c := &Client{addr: addr, opts: opts, met: newClientMetrics(opts.Obs), pending: map[uint64]*pendingCall{}}
	if err := c.redial(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// Addr reports the remote address the client (re)connects to.
func (c *Client) Addr() string { return c.addr }

// redial establishes a fresh session if none is live.
func (c *Client) redial(ctx context.Context) error {
	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.conn != nil {
		c.mu.Unlock()
		return nil // someone else already reconnected
	}
	c.mu.Unlock()
	dctx, cancel := context.WithTimeout(ctx, c.opts.DialTimeout)
	conn, err := c.opts.Dialer(dctx, c.addr)
	cancel()
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	c.conn = conn
	c.gen++
	c.connErr = nil
	gen := c.gen
	c.mu.Unlock()
	if gen > 1 {
		c.met.reconnects.Inc()
	}
	go c.readLoop(conn, gen)
	return nil
}

// ensureConn returns the live session, re-dialing if the previous one
// broke (and reconnection is enabled).
func (c *Client) ensureConn(ctx context.Context) (net.Conn, uint64, error) {
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, 0, ErrClosed
		}
		if c.conn != nil {
			conn, gen := c.conn, c.gen
			c.mu.Unlock()
			return conn, gen, nil
		}
		lastErr := c.connErr
		c.mu.Unlock()
		if c.opts.NoReconnect {
			if lastErr == nil {
				lastErr = ErrClosed
			}
			return nil, 0, lastErr
		}
		if attempt > 0 {
			// The session we just dialed broke before we could use it;
			// do not spin on a flapping peer.
			return nil, 0, lastErr
		}
		if err := c.redial(ctx); err != nil {
			return nil, 0, err
		}
	}
}

func (c *Client) readLoop(conn net.Conn, gen uint64) {
	br := bufio.NewReaderSize(conn, connBufSize)
	var scratch headerScratch
	for {
		fh, plen, err := readFrameHeader(br, &scratch)
		var p *pendingCall
		var resp response
		if err == nil {
			if fh.id != 0 {
				c.mu.Lock()
				p = c.pending[fh.id]
				c.mu.Unlock()
			}
			switch {
			case p == nil:
				// Unclaimed (abandoned call, stray frame): consume the
				// payload to keep the stream in sync, allocating nothing.
				if plen > 0 {
					_, err = io.CopyN(io.Discard, br, int64(plen))
				}
			case fh.typ == frameOK && plen == p.dstLen && p.dstLen > 0 && p.claimDst():
				// Bulk response: scatter the socket bytes straight into
				// the caller's buffers. The claim blocks the caller from
				// reusing them mid-read if it gives up (see call).
				resp.inDst = true
				for _, d := range p.dst {
					if _, err = io.ReadFull(br, d); err != nil {
						break
					}
				}
			default:
				buf := make([]byte, plen)
				_, err = io.ReadFull(br, buf)
				resp.payload = buf
			}
		}
		if err != nil {
			conn.Close()
			c.mu.Lock()
			if c.gen == gen && c.conn == conn {
				c.conn = nil
				c.connErr = err
			}
			for pid, pc := range c.pending {
				if pc.gen == gen {
					delete(c.pending, pid)
					close(pc.ch)
				}
			}
			c.mu.Unlock()
			return
		}
		c.met.framesRecv.Inc()
		if p == nil {
			continue
		}
		resp.typ, resp.op = fh.typ, fh.op
		c.mu.Lock()
		_, ok := c.pending[fh.id]
		if ok {
			delete(c.pending, fh.id)
		}
		c.mu.Unlock()
		if ok {
			p.ch <- resp
		}
	}
}

// brokenErr explains why a pending call's channel was closed.
func (c *Client) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.connErr != nil {
		return c.connErr
	}
	return ErrClosed
}

// payloadLen sums a gather/scatter list's bytes.
func payloadLen(segs [][]byte) int {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	return n
}

// Call sends a request and waits for its response payload. The context
// bounds the whole exchange: on expiry or cancellation the call
// returns ctx.Err() immediately (closing the connection only if the
// request frame was still in flight). A traced context (internal/trace)
// records the exchange as a "transport.call" span and stamps the frame
// with the trace extension so the server can continue the trace.
func (c *Client) Call(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
	ext, h := c.startWire(ctx, "transport.call", len(payload))
	resp, _, err := c.call(ctx, op, ext, [][]byte{payload}, nil, time.Time{})
	h.End(err)
	return resp, err
}

// CallVec is Call with a gathered request: the segments are written to
// the wire back-to-back (one vectored write, no coalescing copy) and
// arrive at the peer as a single contiguous payload. The transport only
// reads the segments during the call; they stay owned by the caller.
func (c *Client) CallVec(ctx context.Context, op uint8, req [][]byte) ([]byte, error) {
	return c.CallVecDeadline(ctx, op, req, time.Time{})
}

// CallVecDeadline is CallVec with an explicit per-call deadline (zero =
// none), merged with any deadline already on ctx. Passing the deadline
// here instead of wrapping ctx in context.WithTimeout keeps the hot
// path allocation-free: the transport arms it as a socket write
// deadline plus one pooled timer, where a context wrap costs several
// heap objects per call. Expiry returns context.DeadlineExceeded.
func (c *Client) CallVecDeadline(ctx context.Context, op uint8, req [][]byte, dl time.Time) ([]byte, error) {
	ext, h := c.startWire(ctx, "transport.call", payloadLen(req))
	resp, _, err := c.call(ctx, op, ext, req, nil, dl)
	h.End(err)
	return resp, err
}

// CallScatter is CallVec for bulk reads: a successful response payload
// is scattered off the socket directly into resp's segments — caller
// memory, no intermediate buffer. The response must exactly fill the
// segments (which must total at least one byte); any other size
// consumes the frame but fails with *RespSizeError. The caller must not
// read, write, or reuse the segments until the call returns.
func (c *Client) CallScatter(ctx context.Context, op uint8, req [][]byte, resp [][]byte) error {
	return c.CallScatterDeadline(ctx, op, req, resp, time.Time{})
}

// CallScatterDeadline is CallScatter with an explicit per-call deadline
// (zero = none); see CallVecDeadline for the rationale.
func (c *Client) CallScatterDeadline(ctx context.Context, op uint8, req [][]byte, resp [][]byte, dl time.Time) error {
	want := payloadLen(resp)
	ext, h := c.startWire(ctx, "transport.call", payloadLen(req))
	payload, landed, err := c.call(ctx, op, ext, req, resp, dl)
	if err == nil && !landed {
		err = &RespSizeError{Got: len(payload), Want: want}
	}
	h.End(err)
	return err
}

// startWire opens the client-side span for one frame exchange and
// builds the trace extension that carries it; both are zero for an
// untraced context.
func (c *Client) startWire(ctx context.Context, name string, payloadBytes int) (*TraceExt, trace.Handle) {
	if _, ok := trace.FromContext(ctx); !ok {
		return nil, trace.Handle{}
	}
	tctx, h := trace.Start(ctx, name, c.addr)
	h.Val = int64(payloadBytes)
	sc, ok := trace.FromContext(tctx)
	if !ok {
		return nil, h
	}
	return &TraceExt{Trace: sc.Trace, Span: sc.Span}, h
}

// timerPool recycles the per-call deadline timers; they are always
// returned stopped and drained, so Reset on a pooled timer is safe
// under the pre-1.23 timer semantics this module builds with.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

func (c *Client) call(ctx context.Context, op uint8, ext *TraceExt, req [][]byte, dst [][]byte, dl time.Time) ([]byte, bool, error) {
	if n := payloadLen(req); n > MaxPayload {
		return nil, false, fmt.Errorf("%w: payload %d bytes exceeds %d", ErrFrameTooLarge, n, MaxPayload)
	}
	conn, gen, err := c.ensureConn(ctx)
	if err != nil {
		return nil, false, err
	}
	id := c.nextID.Add(1)
	pc := &pendingCall{ch: make(chan response, 1), gen: gen}
	if len(dst) > 0 {
		pc.dst = dst
		pc.dstLen = payloadLen(dst)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClosed
	}
	if c.conn != conn || c.gen != gen {
		// The session died between ensureConn and registration; its
		// drain already ran, so registering now would hang forever.
		err := c.connErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, false, err
	}
	c.pending[id] = pc
	c.mu.Unlock()

	unregister := func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}

	// The effective deadline is the earlier of the explicit per-call
	// deadline and any deadline already carried by ctx.
	hasDL := !dl.IsZero()
	if cdl, ok := ctx.Deadline(); ok && (!hasDL || cdl.Before(dl)) {
		dl = cdl
		hasDL = true
	}

	// Three write strategies, cheapest first: with nothing to interrupt
	// the call it writes inline; a deadline on a raw TCP session writes
	// inline under a socket write deadline (the runtime's netpoll
	// interrupts a blocked write, no goroutine needed); anything else —
	// cancel-only contexts, injected test conns whose Write does not
	// honor deadlines — keeps the goroutine race from the original
	// design.
	inline := ctx.Done() == nil && !hasDL
	var wdl time.Time
	if !inline && hasDL {
		if _, isTCP := conn.(*net.TCPConn); isTCP {
			wdl = dl
			inline = true
		}
	}
	if inline {
		err = c.writeReq(conn, id, op, ext, wdl, req)
		if err != nil {
			if ctx.Err() != nil {
				// The socket deadline fired (or the write failed) after
				// the context expired: report the caller's own deadline.
				c.dropConn(conn, ctx.Err())
				unregister()
				c.met.deadlineExpired.Inc()
				return nil, false, ctx.Err()
			}
			if hasDL && errors.Is(err, os.ErrDeadlineExceeded) {
				// The per-call deadline fired as a socket timeout;
				// report it the way a context deadline would.
				c.dropConn(conn, context.DeadlineExceeded)
				unregister()
				c.met.deadlineExpired.Inc()
				return nil, false, context.DeadlineExceeded
			}
			if errors.Is(err, ErrFrameTooLarge) {
				// Nothing was written; the session is still good.
				unregister()
				return nil, false, err
			}
			c.dropConn(conn, err) // a partial frame desynchronizes the stream
			unregister()
			return nil, false, err
		}
	} else {
		written := make(chan error, 1)
		go func() {
			written <- c.writeReq(conn, id, op, ext, time.Time{}, req)
		}()
		var tm *time.Timer
		var timerC <-chan time.Time
		if hasDL {
			tm = getTimer(time.Until(dl))
			timerC = tm.C
		}
		var abort error
		select {
		case err = <-written:
		case <-ctx.Done():
			abort = ctx.Err()
		case <-timerC:
			abort = context.DeadlineExceeded
		}
		if tm != nil {
			putTimer(tm)
		}
		if abort != nil {
			// Abandon mid-write: the frame may be half on the wire, so
			// the session cannot be reused. Closing it also unblocks the
			// writer; wait for it so the caller regains exclusive
			// ownership of req before the call returns — retry paths
			// (cdd) recycle pooled request headers aliased by req, and
			// handing those back while the writer still reads them
			// would be a use-after-release.
			c.dropConn(conn, abort)
			<-written
			unregister()
			c.met.deadlineExpired.Inc()
			return nil, false, abort
		}
		if err != nil {
			if !errors.Is(err, ErrFrameTooLarge) {
				c.dropConn(conn, err)
			}
			unregister()
			return nil, false, err
		}
	}
	c.met.framesSent.Inc()

	var tm *time.Timer
	var timerC <-chan time.Time
	if hasDL {
		tm = getTimer(time.Until(dl))
		timerC = tm.C
	}
	var resp response
	var respOK bool
	var abort error
	select {
	case resp, respOK = <-pc.ch:
	case <-ctx.Done():
		abort = ctx.Err()
	case <-timerC:
		abort = context.DeadlineExceeded
	}
	if tm != nil {
		putTimer(tm)
	}
	if abort != nil {
		if pc.dstLen > 0 && !pc.dstState.CompareAndSwap(0, 2) {
			// The read loop claimed dst: bytes may be landing in the
			// caller's buffers right now, so returning would hand the
			// caller memory the socket is still writing. Kill the
			// session to bound the read and wait for it to finish
			// (the channel gets a response or is closed by teardown).
			select {
			case <-pc.ch: // already fully landed and delivered
			default:
				c.dropConn(conn, abort)
				<-pc.ch
			}
		}
		unregister()
		c.met.deadlineExpired.Inc()
		return nil, false, abort
	}
	if !respOK {
		return nil, false, c.brokenErr()
	}
	if resp.typ == frameError {
		c.met.remoteErrors.Inc()
		return nil, false, decodeRemoteError(resp.op, resp.payload)
	}
	return resp.payload, resp.inDst, nil
}

// writeReq emits one request frame under the write lock. On a TCP
// session the given deadline (zero = none) is armed as the socket write
// deadline; other conns get plain writes.
func (c *Client) writeReq(conn net.Conn, id uint64, op uint8, ext *TraceExt, deadline time.Time, req [][]byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetWriteDeadline(deadline) //nolint:errcheck // zero clears; best-effort
	}
	return writeFrame(conn, id, frameRequest, op, ext, req...)
}

// Notify sends a fire-and-forget request (no response, errors on the
// server are dropped) — used for deferred mirror pushes. It shares the
// session with Call and re-dials a broken one. ctx supplies only the
// trace context (recorded as a "transport.notify" span); the send
// itself is not cancellable.
func (c *Client) Notify(ctx context.Context, op uint8, payload []byte) error {
	ext, h := c.startWire(ctx, "transport.notify", len(payload))
	err := c.notify(op, ext, [][]byte{payload})
	h.End(err)
	return err
}

// NotifyVec is Notify with a gathered payload, written vectored like
// CallVec. The segments are only read during the call.
func (c *Client) NotifyVec(ctx context.Context, op uint8, req [][]byte) error {
	ext, h := c.startWire(ctx, "transport.notify", payloadLen(req))
	err := c.notify(op, ext, req)
	h.End(err)
	return err
}

func (c *Client) notify(op uint8, ext *TraceExt, req [][]byte) error {
	if n := payloadLen(req); n > MaxPayload {
		return fmt.Errorf("%w: payload %d bytes exceeds %d", ErrFrameTooLarge, n, MaxPayload)
	}
	conn, _, err := c.ensureConn(context.Background())
	if err != nil {
		return err
	}
	err = c.writeReq(conn, 0, op, ext, time.Time{}, req)
	if err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			return err
		}
		c.dropConn(conn, err)
		return err
	}
	c.met.framesSent.Inc()
	return nil
}

// dropConn retires a session whose stream can no longer be trusted (a
// failed or abandoned write), so the next call re-dials instead of
// racing the read loop's discovery of the dead socket.
func (c *Client) dropConn(conn net.Conn, cause error) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		if c.connErr == nil {
			c.connErr = cause
		}
	}
	c.mu.Unlock()
}

// Close tears down the connection. Outstanding calls fail with
// ErrClosed immediately rather than waiting for the read loop to trip
// over the dead socket.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	for id, p := range c.pending {
		delete(c.pending, id)
		close(p.ch)
	}
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
