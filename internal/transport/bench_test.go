package transport

import (
	"context"
	"sync"
	"testing"
)

var bgBench = context.Background()

func benchPair(b *testing.B) *Client {
	b.Helper()
	s, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		return payload, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		s.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return c
}

func BenchmarkCallRoundTrip(b *testing.B) {
	c := benchPair(b)
	payload := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(bgBench, 1, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payload)))
}

func BenchmarkCallConcurrent(b *testing.B) {
	c := benchPair(b)
	payload := make([]byte, 4096)
	b.ResetTimer()
	var wg sync.WaitGroup
	const lanes = 8
	per := b.N / lanes
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.Call(bgBench, 1, payload); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.SetBytes(int64(len(payload)))
}

func BenchmarkNotify(b *testing.B) {
	c := benchPair(b)
	payload := make([]byte, 32<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Notify(context.Background(), 2, payload); err != nil {
			b.Fatal(err)
		}
	}
	// Drain: one Call orders after all notifications.
	if _, err := c.Call(bgBench, 1, nil); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
}
