package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

var bg = context.Background()

func echoServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		switch op {
		case 1: // echo
			return payload, nil
		case 2: // fail
			return nil, errors.New("boom")
		case 3: // double
			out := make([]byte, 2*len(payload))
			copy(out, payload)
			copy(out[len(payload):], payload)
			return out, nil
		case 4: // coded failure
			return nil, WithCode(CodeDiskFailed, errors.New("disk d0: failed"))
		}
		return nil, fmt.Errorf("unknown op %d", op)
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return s, c
}

func TestCallRoundTrip(t *testing.T) {
	_, c := echoServer(t)
	resp, err := c.Call(bg, 1, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello" {
		t.Fatalf("got %q", resp)
	}
}

func TestCallEmptyPayload(t *testing.T) {
	_, c := echoServer(t)
	resp, err := c.Call(bg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 0 {
		t.Fatalf("got %d bytes, want 0", len(resp))
	}
}

func TestRemoteError(t *testing.T) {
	_, c := echoServer(t)
	_, err := c.Call(bg, 2, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want RemoteError", err)
	}
	if re.Msg != "boom" || re.Op != 2 {
		t.Fatalf("got %+v", re)
	}
	if re.Code != CodeGeneric {
		t.Fatalf("uncoded error arrived with code %d", re.Code)
	}
}

// TestRemoteErrorCodeRoundTrip asserts that a handler error wrapped
// with WithCode surfaces the code byte on the client side, and that the
// message text survives alongside it.
func TestRemoteErrorCodeRoundTrip(t *testing.T) {
	_, c := echoServer(t)
	_, err := c.Call(bg, 4, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want RemoteError", err)
	}
	if re.Code != CodeDiskFailed {
		t.Fatalf("code = %d, want CodeDiskFailed", re.Code)
	}
	if re.Msg != "disk d0: failed" || re.Op != 4 {
		t.Fatalf("got %+v", re)
	}
}

func TestUnknownOp(t *testing.T) {
	_, c := echoServer(t)
	if _, err := c.Call(bg, 99, nil); err == nil {
		t.Fatal("unknown op succeeded")
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	_, c := echoServer(t)
	var wg sync.WaitGroup
	errs := make([]error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := bytes.Repeat([]byte{byte(i)}, 100+i)
			resp, err := c.Call(bg, 1, msg)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(resp, msg) {
				errs[i] = fmt.Errorf("call %d: payload mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestLargePayload(t *testing.T) {
	_, c := echoServer(t)
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 7)
	}
	resp, err := c.Call(bg, 3, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 2*len(big) {
		t.Fatalf("got %d bytes, want %d", len(resp), 2*len(big))
	}
	if !bytes.Equal(resp[:len(big)], big) || !bytes.Equal(resp[len(big):], big) {
		t.Fatal("payload corrupted")
	}
}

func TestNotifyIsProcessedInOrder(t *testing.T) {
	var mu sync.Mutex
	var log []byte
	s, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		mu.Lock()
		log = append(log, op)
		mu.Unlock()
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Notify(context.Background(), 10, nil); err != nil {
			t.Fatal(err)
		}
	}
	// A Call on the same connection flushes behind the notifications.
	if _, err := c.Call(bg, 20, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []byte{10, 10, 10, 10, 10, 20}
	if !bytes.Equal(log, want) {
		t.Fatalf("server saw ops %v, want %v", log, want)
	}
}

func TestCallAfterClose(t *testing.T) {
	_, c := echoServer(t)
	c.Close()
	if _, err := c.Call(bg, 1, nil); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s, c := echoServer(t)
	s.Close()
	// Either the write or the read fails, but the call must return.
	if _, err := c.Call(bg, 1, []byte("x")); err == nil {
		t.Fatal("call against closed server succeeded")
	}
}

func TestMultipleClients(t *testing.T) {
	s, _ := echoServer(t)
	for i := 0; i < 4; i++ {
		c, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Call(bg, 1, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp) != 1 || resp[0] != byte(i) {
			t.Fatalf("client %d: got %v", i, resp)
		}
		c.Close()
	}
}

// TestServerSurvivesMalformedFrames: a client sending garbage must not
// take the server down for other clients.
func TestServerSurvivesMalformedFrames(t *testing.T) {
	s, good := echoServer(t)

	// Raw connection sending a hostile length prefix, then junk.
	raw, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Length below the header minimum.
	if _, err := raw.Write([]byte{0, 0, 0, 1, 0xde}); err != nil {
		t.Fatal(err)
	}
	// The good client still works.
	resp, err := good.Call(bg, 1, []byte("still alive"))
	if err != nil || string(resp) != "still alive" {
		t.Fatalf("good client broken: %q %v", resp, err)
	}

	// Oversized frame length.
	raw2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw2.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := raw2.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	resp, err = good.Call(bg, 1, []byte("again"))
	if err != nil || string(resp) != "again" {
		t.Fatalf("good client broken after oversize frame: %q %v", resp, err)
	}
}

// TestClientRejectsOversizedResponse: a hostile server cannot make the
// client allocate unbounded memory.
func TestClientRejectsOversizedResponse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Read the request, answer with an oversized length prefix.
		io.ReadFull(conn, make([]byte, 4))
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
		conn.Write(hdr[:])
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(bg, 1, []byte("x")); err == nil {
		t.Fatal("oversized response accepted")
	}
}

// TestOversizedPayloadRejectedAtSend: a payload exceeding MaxPayload
// must be refused locally instead of being emitted and killing the
// connection with an opaque peer-side "bad frame length" error.
func TestOversizedPayloadRejectedAtSend(t *testing.T) {
	_, c := echoServer(t)
	big := make([]byte, MaxPayload+1)
	if _, err := c.Call(bg, 1, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("Call: got %v, want ErrFrameTooLarge", err)
	}
	if err := c.Notify(context.Background(), 1, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("Notify: got %v, want ErrFrameTooLarge", err)
	}
	// The connection must still be usable.
	resp, err := c.Call(bg, 1, []byte("ok"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("connection broken after rejected send: %q %v", resp, err)
	}
}

// TestOversizedHandlerResultBecomesError: a handler result that cannot
// fit in a frame travels back as a response-error, not a dead socket.
func TestOversizedHandlerResultBecomesError(t *testing.T) {
	s, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		return make([]byte, MaxPayload+1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(bg, 1, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want RemoteError", err)
	}
	// And the connection survived.
	if _, err := c.Call(bg, 1, nil); !errors.As(err, &re) {
		t.Fatalf("second call: got %v, want RemoteError", err)
	}
}

// TestCloseFailsOutstandingCalls: Close must fail in-flight calls with
// ErrClosed immediately, not leave them waiting on the read loop.
func TestCloseFailsOutstandingCalls(t *testing.T) {
	stall := make(chan struct{})
	s, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		<-stall // never answer until the test ends
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(stall); s.Close() }()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.Call(bg, 1, nil)
		errc <- err
	}()
	// Wait until the call is registered, then close under it.
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("outstanding call not failed by Close")
	}
}

// TestCallDeadlineAgainstHungServer: a server that accepts but never
// responds must not hang a call with a deadline.
func TestCallDeadlineAgainstHungServer(t *testing.T) {
	stall := make(chan struct{})
	s, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		<-stall
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(stall); s.Close() }()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Call(ctx, 1, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("deadline took %v to fire", took)
	}
}

// TestCallCancellation: cancelling the context abandons the call.
func TestCallCancellation(t *testing.T) {
	stall := make(chan struct{})
	s, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		<-stall
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(stall); s.Close() }()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(bg)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, 1, nil)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not abandon the call")
	}
}

// TestReconnectAfterServerRestart: a client whose server died and came
// back on the same address must reach it again without re-dialing by
// hand.
func TestReconnectAfterServerRestart(t *testing.T) {
	handler := func(_ context.Context, op uint8, payload []byte) ([]byte, error) { return payload, nil }
	s, err := Serve("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(bg, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// While the server is down every call fails, but nothing hangs.
	if _, err := c.Call(bg, 1, []byte("down")); err == nil {
		t.Fatal("call against dead server succeeded")
	}

	s2, err := Serve(addr, handler)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer s2.Close()

	var resp []byte
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = c.Call(bg, 1, []byte("two"))
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil || string(resp) != "two" {
		t.Fatalf("call after restart: %q %v", resp, err)
	}
}

// TestNoReconnect: with reconnection disabled, a broken connection
// stays broken.
func TestNoReconnect(t *testing.T) {
	s, err := Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) { return payload, nil })
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	c, err := DialWith(bg, addr, DialOptions{NoReconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s.Close()
	if _, err := c.Call(bg, 1, nil); err == nil {
		t.Fatal("call against dead server succeeded")
	}
	s2, err := Serve(addr, func(_ context.Context, op uint8, payload []byte) ([]byte, error) { return payload, nil })
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer s2.Close()
	time.Sleep(20 * time.Millisecond)
	if _, err := c.Call(bg, 1, nil); err == nil {
		t.Fatal("NoReconnect client reconnected")
	}
}
