// Package analytic implements the paper's Table 2: closed-form expected
// peak performance of the five disk-array architectures, parameterized
// by n (disks), B (per-disk bandwidth), m (blocks in a file), R and W
// (single-block read/write times). The benchmark harness prints both
// the symbolic formulas and their numeric values, and a cross-check
// test verifies that the simulator converges to these formulas when
// software overheads are zeroed.
package analytic

import (
	"fmt"
	"time"
)

// Arch identifies an architecture column of Table 2.
type Arch string

// The five architectures.
const (
	RAID0   Arch = "raid0"
	RAID5   Arch = "raid5"
	RAID10  Arch = "raid10"
	Chained Arch = "chained"
	RAIDx   Arch = "raidx"
)

// Archs lists the Table 2 columns in order.
func Archs() []Arch { return []Arch{RAID0, RAID5, RAID10, Chained, RAIDx} }

// Inputs are the model parameters.
type Inputs struct {
	// N is the number of disks in the array.
	N int
	// B is one disk's bandwidth in MB/s.
	B float64
	// M is the file length in blocks for the large transfer rows.
	M int64
	// R is the average single-block read time.
	R time.Duration
	// W is the average single-block write time.
	W time.Duration
}

// DefaultInputs matches the reproduction's calibrated disk model:
// 12 disks of 10 MB/s, a 2 MB file of 32 KB blocks, and ~13 ms per
// random single-block access.
func DefaultInputs() Inputs {
	return Inputs{N: 12, B: 10, M: 64, R: 13 * time.Millisecond, W: 13 * time.Millisecond}
}

// Row is one architecture's column of Table 2.
type Row struct {
	Arch Arch

	// Maximum aggregate bandwidth (MB/s, in units of B).
	ReadBW       float64
	LargeWriteBW float64
	SmallWriteBW float64

	// Parallel access times for an m-block file.
	LargeRead  time.Duration
	SmallRead  time.Duration
	LargeWrite time.Duration
	SmallWrite time.Duration

	// FaultCoverage describes the failures survivable.
	FaultCoverage string

	// Formulas holds the symbolic forms, keyed by metric name.
	Formulas map[string]string
}

// Table2 evaluates the model for every architecture.
func Table2(in Inputs) []Row {
	n := float64(in.N)
	m := in.M
	mR := time.Duration(m) * in.R
	mW := time.Duration(m) * in.W
	rows := []Row{
		{
			Arch:          RAID0,
			ReadBW:        n * in.B,
			LargeWriteBW:  n * in.B,
			SmallWriteBW:  n * in.B,
			LargeRead:     mR / time.Duration(in.N),
			SmallRead:     in.R,
			LargeWrite:    mW / time.Duration(in.N),
			SmallWrite:    in.W,
			FaultCoverage: "none",
			Formulas: map[string]string{
				"read-bw": "nB", "large-write-bw": "nB", "small-write-bw": "nB",
				"large-read": "mR/n", "small-read": "R", "large-write": "mW/n", "small-write": "W",
			},
		},
		{
			Arch:          RAID5,
			ReadBW:        (n - 1) * in.B,
			LargeWriteBW:  (n - 1) * in.B,
			SmallWriteBW:  n * in.B / 4,
			LargeRead:     mR / time.Duration(in.N-1),
			SmallRead:     in.R,
			LargeWrite:    mW / time.Duration(in.N-1),
			SmallWrite:    in.R + in.W,
			FaultCoverage: "single disk failure",
			Formulas: map[string]string{
				"read-bw": "(n-1)B", "large-write-bw": "(n-1)B", "small-write-bw": "nB/4",
				"large-read": "mR/(n-1)", "small-read": "R", "large-write": "mW/(n-1)", "small-write": "R+W",
			},
		},
		{
			Arch:          RAID10,
			ReadBW:        n * in.B,
			LargeWriteBW:  n * in.B / 2,
			SmallWriteBW:  n * in.B / 2,
			LargeRead:     mR / time.Duration(in.N),
			SmallRead:     in.R,
			LargeWrite:    2 * mW / time.Duration(in.N),
			SmallWrite:    in.W,
			FaultCoverage: "up to n/2 failures (one per mirrored pair)",
			Formulas: map[string]string{
				"read-bw": "nB", "large-write-bw": "nB/2", "small-write-bw": "nB/2",
				"large-read": "mR/n", "small-read": "R", "large-write": "2mW/n", "small-write": "W",
			},
		},
		{
			Arch:          Chained,
			ReadBW:        n * in.B,
			LargeWriteBW:  n * in.B / 2,
			SmallWriteBW:  n * in.B / 2,
			LargeRead:     mR / time.Duration(in.N),
			SmallRead:     in.R,
			LargeWrite:    2 * mW / time.Duration(in.N),
			SmallWrite:    in.W,
			FaultCoverage: "up to n/2 non-adjacent failures",
			Formulas: map[string]string{
				"read-bw": "nB", "large-write-bw": "nB/2", "small-write-bw": "nB/2",
				"large-read": "mR/n", "small-read": "R", "large-write": "2mW/n", "small-write": "W",
			},
		},
		{
			Arch:         RAIDx,
			ReadBW:       n * in.B,
			LargeWriteBW: n * in.B,
			SmallWriteBW: n * in.B,
			LargeRead:    mR / time.Duration(in.N),
			SmallRead:    in.R,
			// Foreground stripe write plus the exposed tail of the
			// deferred image writes (paper Table 2: mW/n + mW/n(n-1)).
			LargeWrite:    mW/time.Duration(in.N) + mW/time.Duration(in.N*(in.N-1)),
			SmallWrite:    in.W,
			FaultCoverage: "single disk per mirror group; up to k across stripe groups in an n-by-k array",
			Formulas: map[string]string{
				"read-bw": "nB", "large-write-bw": "nB", "small-write-bw": "nB",
				"large-read": "mR/n", "small-read": "R", "large-write": "mW/n + mW/n(n-1)", "small-write": "W",
			},
		},
	}
	return rows
}

// SmallWriteAdvantage reports the modelled RAID-x : RAID-5 small-write
// bandwidth ratio (the "small write problem eliminated" headline).
func SmallWriteAdvantage(in Inputs) float64 {
	rows := Table2(in)
	var x, r5 float64
	for _, r := range rows {
		switch r.Arch {
		case RAIDx:
			x = r.SmallWriteBW
		case RAID5:
			r5 = r.SmallWriteBW
		}
	}
	return x / r5
}

// ChainedWriteImprovement reports the modelled RAID-x : chained
// declustering large-write time ratio; the paper notes it approaches 2
// for large arrays.
func ChainedWriteImprovement(in Inputs) float64 {
	rows := Table2(in)
	var x, ch time.Duration
	for _, r := range rows {
		switch r.Arch {
		case RAIDx:
			x = r.LargeWrite
		case Chained:
			ch = r.LargeWrite
		}
	}
	return float64(ch) / float64(x)
}

// FormatRow renders one metric across architectures, for the CLI table.
func FormatRow(rows []Row, metric string) string {
	out := fmt.Sprintf("%-16s", metric)
	for _, r := range rows {
		out += fmt.Sprintf(" %-18s", r.Formulas[metric])
	}
	return out
}
