package analytic

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/store"
	"repro/internal/vclock"
)

func TestTable2Values(t *testing.T) {
	in := Inputs{N: 12, B: 10, M: 64, R: 10 * time.Millisecond, W: 10 * time.Millisecond}
	rows := Table2(in)
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	get := func(a Arch) Row {
		for _, r := range rows {
			if r.Arch == a {
				return r
			}
		}
		t.Fatalf("missing arch %s", a)
		return Row{}
	}
	if get(RAID0).ReadBW != 120 || get(RAID5).ReadBW != 110 {
		t.Errorf("read BW: raid0=%v raid5=%v", get(RAID0).ReadBW, get(RAID5).ReadBW)
	}
	if get(RAIDx).SmallWriteBW != 120 || get(RAID5).SmallWriteBW != 30 {
		t.Errorf("small write BW: raidx=%v raid5=%v", get(RAIDx).SmallWriteBW, get(RAID5).SmallWriteBW)
	}
	if get(RAID5).SmallWrite != 20*time.Millisecond {
		t.Errorf("raid5 small write = %v, want R+W = 20ms", get(RAID5).SmallWrite)
	}
	if get(RAIDx).SmallWrite != 10*time.Millisecond {
		t.Errorf("raidx small write = %v, want W = 10ms", get(RAIDx).SmallWrite)
	}
	// RAID-x large write: mW/n + mW/(n(n-1)) for m=64, W=10ms, n=12:
	// 53.33ms + 4.85ms.
	want := 64*10*time.Millisecond/12 + 64*10*time.Millisecond/(12*11)
	if got := get(RAIDx).LargeWrite; got != want {
		t.Errorf("raidx large write = %v, want %v", got, want)
	}
}

func TestSmallWriteAdvantageIsFour(t *testing.T) {
	// RAID-5 small writes need 4 disk ops; RAID-x needs 1 foreground
	// op, so the modelled bandwidth ratio is exactly 4.
	if got := SmallWriteAdvantage(DefaultInputs()); got != 4 {
		t.Fatalf("advantage = %v, want 4", got)
	}
}

func TestChainedImprovementApproachesTwo(t *testing.T) {
	small := ChainedWriteImprovement(Inputs{N: 4, B: 10, M: 60, R: time.Millisecond, W: time.Millisecond})
	big := ChainedWriteImprovement(Inputs{N: 64, B: 10, M: 640, R: time.Millisecond, W: time.Millisecond})
	if !(small < big && big < 2 && big > 1.9) {
		t.Fatalf("improvement: n=4 %.3f, n=64 %.3f; want monotone toward 2", small, big)
	}
}

func TestFormatRowListsAllArchs(t *testing.T) {
	rows := Table2(DefaultInputs())
	s := FormatRow(rows, "small-write")
	for _, want := range []string{"W", "R+W"} {
		found := false
		for i := 0; i+len(want) <= len(s); i++ {
			if s[i:i+len(want)] == want {
				found = true
			}
		}
		if !found {
			t.Errorf("formatted row %q missing %q", s, want)
		}
	}
}

// TestSimulatorMatchesModel cross-checks the analytic large-write times
// against the simulator with all overheads zeroed: one client writing
// an m-block file to each architecture on n local disks.
func TestSimulatorMatchesModel(t *testing.T) {
	const (
		n      = 4
		bs     = 1000
		blocks = 256
		m      = 48 // full stripes for every layout
	)
	W := time.Millisecond // 1000 bytes at 1 MB/s
	model := disk.Model{Seek: 0, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: 0}
	in := Inputs{N: n, B: 1, M: m, R: W, W: W}
	rows := Table2(in)
	want := map[Arch]time.Duration{}
	for _, r := range rows {
		want[r.Arch] = r.LargeWrite
	}

	build := func(s *vclock.Sim, arch Arch) raid.Array {
		devs := make([]raid.Dev, n)
		for i := range devs {
			devs[i] = disk.New(s, fmt.Sprintf("d%d", i), store.NewMem(bs, blocks), model)
		}
		var (
			a   raid.Array
			err error
		)
		switch arch {
		case RAID0:
			a, err = raid.NewRAID0(devs)
		case RAID5:
			a, err = raid.NewRAID5(devs)
		case RAID10:
			a, err = raid.NewRAID10(devs)
		case Chained:
			a, err = raid.NewChained(devs)
		case RAIDx:
			a, err = core.New(devs, n, 1, core.Options{})
		}
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	for _, arch := range Archs() {
		s := vclock.New()
		a := build(s, arch)
		var took time.Duration
		s.Spawn("client", func(p *vclock.Proc) {
			ctx := vclock.With(context.Background(), p)
			if err := a.WriteBlocks(ctx, 0, make([]byte, m*bs)); err != nil {
				t.Error(err)
			}
			took = p.Now()
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		// The simulator should agree with the closed form within 15%
		// for the foreground-visible write time. RAID-x's analytic form
		// includes the deferred tail, so its measured foreground time
		// must be at most the modelled value.
		w := want[arch]
		switch arch {
		case RAIDx:
			if took > w {
				t.Errorf("raidx: measured %v exceeds model %v", took, w)
			}
			if took != time.Duration(m)*W/n {
				t.Errorf("raidx foreground write = %v, want mW/n = %v", took, time.Duration(m)*W/n)
			}
		default:
			lo := w - w*15/100
			hi := w + w*15/100
			if took < lo || took > hi {
				t.Errorf("%s: measured %v, model %v (±15%%)", arch, took, w)
			}
		}
	}
}
