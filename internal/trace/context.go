package trace

import "context"

// spanCtx is the trace state carried through a context: which tracer
// records, which trace this is, and the current span (parent of the
// next Start). fromWire marks a context resumed from a frame's trace
// extension — the first span started under it is a local subtree top,
// so server-side slow-log promotion and trace assembly have a root to
// anchor on.
type spanCtx struct {
	t        *Tracer
	trace    TraceID
	span     SpanID
	fromWire bool
}

type ctxKey struct{}

func withSpan(ctx context.Context, sc spanCtx) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

func fromContext(ctx context.Context) (spanCtx, bool) {
	if ctx == nil {
		return spanCtx{}, false
	}
	sc, ok := ctx.Value(ctxKey{}).(spanCtx)
	return sc, ok
}

// SpanContext is the wire-visible identity of the current span,
// exposed so the transport can stamp outgoing frames.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// FromContext reports the trace identity carried by ctx, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := fromContext(ctx)
	if !ok || sc.t == nil {
		return SpanContext{}, false
	}
	return SpanContext{Trace: sc.trace, Span: sc.span}, true
}

// Resume re-attaches a trace that arrived over the wire: spans started
// under the returned context record into t as children of the remote
// span id. The first such span is marked as a local subtree top. A nil
// tracer returns ctx unchanged.
func Resume(ctx context.Context, t *Tracer, id TraceID, parent SpanID) context.Context {
	if t == nil {
		return ctx
	}
	return withSpan(ctx, spanCtx{t: t, trace: id, span: parent, fromWire: true})
}
