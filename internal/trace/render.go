package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Merge folds spans recorded by another process (fetched from its
// tracer via the wire) into tr. Only spans of tr's TraceID are taken;
// each is stamped with origin so the waterfall shows which node
// recorded it.
//
// The two processes have unrelated clocks, so remote subtrees are
// re-based: for each remote top span whose parent is a local span (the
// client-side transport.call that carried it), the remote subtree is
// shifted so the top span sits centered inside its local parent — the
// span's halves of (parentDur - topDur) approximate the request and
// response network legs. Remote spans with no local parent in tr are
// attached as-is under the root by the renderer.
func (tr *Trace) Merge(remote []Span, origin string) {
	local := make(map[SpanID]Span, len(tr.Spans))
	for _, sp := range tr.Spans {
		local[sp.ID] = sp
	}
	var add []Span
	for _, sp := range remote {
		if sp.Trace != tr.ID {
			continue
		}
		if _, dup := local[sp.ID]; dup {
			continue
		}
		sp.Origin = origin
		add = append(add, sp)
	}
	if len(add) == 0 {
		return
	}
	// Children index over the incoming remote spans, for subtree shifts.
	kids := map[SpanID][]int{}
	byID := map[SpanID]int{}
	for i, sp := range add {
		byID[sp.ID] = i
		kids[sp.Parent] = append(kids[sp.Parent], i)
	}
	var shift func(i int, d time.Duration)
	shift = func(i int, d time.Duration) {
		add[i].Start = add[i].Start.Add(d)
		for _, c := range kids[add[i].ID] {
			shift(c, d)
		}
	}
	for i, sp := range add {
		if _, remoteParent := byID[sp.Parent]; remoteParent {
			continue // interior span; shifted with its subtree top
		}
		parent, ok := local[sp.Parent]
		if !ok {
			continue // no local anchor; leave the remote clock alone
		}
		want := parent.Start.Add((parent.Dur - sp.Dur) / 2)
		shift(i, want.Sub(sp.Start))
	}
	tr.Spans = append(tr.Spans, add...)
	sort.Slice(tr.Spans, func(i, j int) bool { return tr.Spans[i].Start.Before(tr.Spans[j].Start) })
}

// WriteWaterfall renders tr as an indented span tree: one line per
// span, offset from the root and duration up front, children indented
// under their parents in start order. Spans whose parent is missing
// from the trace (overwritten in the ring, or a remote fragment) hang
// off the root.
func WriteWaterfall(w io.Writer, tr Trace) {
	fmt.Fprintf(w, "trace %016x  %s  %s  (%d spans)\n",
		uint64(tr.ID), tr.Root.Name, fmtDur(tr.Root.Dur), len(tr.Spans))
	have := make(map[SpanID]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		have[sp.ID] = true
	}
	kids := map[SpanID][]Span{}
	for _, sp := range tr.Spans {
		if sp.ID == tr.Root.ID {
			continue
		}
		p := sp.Parent
		if !have[p] {
			p = tr.Root.ID
		}
		kids[p] = append(kids[p], sp)
	}
	for _, c := range kids {
		sort.Slice(c, func(i, j int) bool { return c[i].Start.Before(c[j].Start) })
	}
	seen := make(map[SpanID]bool, len(tr.Spans))
	var walk func(sp Span, depth int)
	walk = func(sp Span, depth int) {
		if seen[sp.ID] {
			return
		}
		seen[sp.ID] = true
		fmt.Fprintf(w, "%10s %10s  %s%s", fmtDur(sp.Start.Sub(tr.Root.Start)), fmtDur(sp.Dur),
			strings.Repeat("  ", depth), sp.Name)
		if sp.Subject != "" {
			fmt.Fprintf(w, " %s", sp.Subject)
		}
		if sp.Val != 0 {
			fmt.Fprintf(w, " [%d]", sp.Val)
		}
		if sp.Origin != "" {
			fmt.Fprintf(w, " @%s", sp.Origin)
		}
		if sp.Err != "" {
			fmt.Fprintf(w, "  ERR: %s", sp.Err)
		}
		fmt.Fprintln(w)
		for _, c := range kids[sp.ID] {
			walk(c, depth+1)
		}
	}
	walk(tr.Root, 0)
}

// fmtDur prints a duration with µs resolution below 1 ms and ms
// resolution above, keeping waterfall columns narrow.
func fmtDur(d time.Duration) string {
	switch {
	case d < 0:
		return "-" + fmtDur(-d)
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
