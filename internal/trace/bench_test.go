package trace

import (
	"context"
	"testing"
)

// BenchmarkLeafRecord measures the hot-path cost of one recorded leaf
// span (StartLeaf + End) under an active trace.
func BenchmarkLeafRecord(b *testing.B) {
	tr := New(Config{SlowThreshold: -1})
	ctx, root := tr.StartRoot(context.Background(), "bench", "")
	defer root.End(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := StartLeaf(ctx, "disk.read", "d0")
		h.Val = 4096
		h.End(nil)
	}
}

// BenchmarkLeafUntraced measures the same call sequence against an
// untraced context — the cost every unsampled operation pays.
func BenchmarkLeafUntraced(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := StartLeaf(ctx, "disk.read", "d0")
		h.Val = 4096
		h.End(nil)
	}
}

// BenchmarkRootSampledOut measures an operation skipped by sampling:
// one atomic tick, no recording, no context derivation.
func BenchmarkRootSampledOut(b *testing.B) {
	tr := New(Config{SampleEvery: 1 << 30, SlowThreshold: -1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, h := tr.StartRoot(ctx, "raidx.read", "raidx")
		h.End(nil)
	}
}

// BenchmarkRootRecorded measures a fully recorded root span including
// its context derivation.
func BenchmarkRootRecorded(b *testing.B) {
	tr := New(Config{SlowThreshold: -1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, h := tr.StartRoot(ctx, "raidx.read", "raidx")
		h.End(nil)
	}
}
