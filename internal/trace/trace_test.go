package trace

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRootChildHierarchy(t *testing.T) {
	tr := New(Config{})
	ctx := context.Background()

	rctx, root := tr.StartRoot(ctx, "raidx.read", "raidx")
	if !root.On() {
		t.Fatal("root handle not live")
	}
	cctx, child := Start(rctx, "par.do", "")
	leaf := StartLeaf(cctx, "disk.read", "d0")
	leaf.Val = 4096
	leaf.End(nil)
	child.End(nil)
	root.End(nil)

	if got := tr.Recorded(); got != 3 {
		t.Fatalf("recorded %d spans, want 3", got)
	}
	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Root.Name != "raidx.read" || !got.Root.Top {
		t.Fatalf("root = %+v", got.Root)
	}
	byName := map[string]Span{}
	for _, sp := range got.Spans {
		byName[sp.Name] = sp
		if sp.Trace != got.ID {
			t.Fatalf("span %s has trace %x, want %x", sp.Name, sp.Trace, got.ID)
		}
	}
	if byName["par.do"].Parent != got.Root.ID {
		t.Error("par.do not parented under root")
	}
	if byName["disk.read"].Parent != byName["par.do"].ID {
		t.Error("disk.read not parented under par.do")
	}
	if byName["disk.read"].Val != 4096 {
		t.Errorf("leaf Val = %d, want 4096", byName["disk.read"].Val)
	}
	if byName["par.do"].Top || byName["disk.read"].Top {
		t.Error("child spans marked Top")
	}
}

func TestStartRootNestsInsideExistingTrace(t *testing.T) {
	tr := New(Config{})
	rctx, root := tr.StartRoot(context.Background(), "outer", "")
	_, inner := tr.StartRoot(rctx, "inner", "")
	inner.End(nil)
	root.End(nil)

	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("nested StartRoot split the trace: %d traces", len(traces))
	}
	for _, sp := range traces[0].Spans {
		if sp.Name == "inner" {
			if sp.Top {
				t.Error("nested root marked Top")
			}
			if sp.Parent != traces[0].Root.ID {
				t.Error("nested root not a child of the outer root")
			}
		}
	}
}

func TestUntracedAndNilNoOps(t *testing.T) {
	ctx := context.Background()

	// Untraced context: Start/StartLeaf are inert and return ctx as-is.
	c2, h := Start(ctx, "x", "")
	if h.On() || c2 != ctx {
		t.Fatal("Start from untraced context was not a no-op")
	}
	leaf := StartLeaf(ctx, "y", "")
	if leaf.On() {
		t.Fatal("StartLeaf from untraced context live")
	}
	h.End(errors.New("ignored"))
	leaf.End(nil)

	// Nil tracer: every method inert.
	var nilT *Tracer
	c3, rh := nilT.StartRoot(ctx, "z", "")
	if rh.On() || c3 != ctx {
		t.Fatal("nil tracer StartRoot was not a no-op")
	}
	rh.End(nil)
	nilT.SetSampleEvery(3)
	nilT.SetSlowThreshold(time.Second)
	if nilT.Recorded() != 0 || nilT.Spans() != nil || nilT.Slow() != nil || nilT.Traces(0) != nil {
		t.Fatal("nil tracer produced data")
	}
	if s := nilT.Snapshot(5); s.Recorded != 0 || s.Recent != nil {
		t.Fatal("nil tracer snapshot produced data")
	}

	// Resume with a nil tracer leaves the context untraced.
	if rc := Resume(ctx, nil, 1, 2); rc != ctx {
		t.Fatal("Resume with nil tracer derived a context")
	}
	if _, ok := FromContext(ctx); ok {
		t.Fatal("untraced context reported a span context")
	}
}

func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	hits := 0
	for i := 0; i < 40; i++ {
		ctx, h := tr.StartRoot(context.Background(), "op", "")
		if h.On() {
			hits++
			if _, ok := FromContext(ctx); !ok {
				t.Fatal("sampled op's context carries no trace")
			}
		} else if _, ok := FromContext(ctx); ok {
			t.Fatal("unsampled op's context carries a trace")
		}
		h.End(nil)
	}
	if hits != 10 {
		t.Fatalf("sampled %d of 40 ops at 1-in-4, want 10", hits)
	}
	tr.SetSampleEvery(1)
	if tr.SampleEvery() != 1 {
		t.Fatal("SetSampleEvery not applied")
	}
	_, h := tr.StartRoot(context.Background(), "op", "")
	if !h.On() {
		t.Fatal("1-in-1 sampling skipped an op")
	}
	h.End(nil)
}

func TestSlowLogPromotion(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Nanosecond, SlowCap: 2})

	finish := func(name string, err error) {
		ctx, root := tr.StartRoot(context.Background(), name, "")
		leaf := StartLeaf(ctx, "child", "")
		leaf.End(nil)
		root.End(err)
	}
	finish("op1", nil)
	finish("op2", errors.New("boom"))
	finish("op3", nil)

	slow := tr.Slow()
	if len(slow) != 2 {
		t.Fatalf("slow log holds %d traces, want cap 2", len(slow))
	}
	// Newest first; op1 was pushed out.
	if slow[0].Root.Name != "op3" || slow[1].Root.Name != "op2" {
		t.Fatalf("slow log order: %s, %s", slow[0].Root.Name, slow[1].Root.Name)
	}
	if slow[1].Root.Err != "boom" {
		t.Fatalf("error not recorded on root: %+v", slow[1].Root)
	}
	if len(slow[0].Spans) != 2 {
		t.Fatalf("promoted trace carries %d spans, want 2", len(slow[0].Spans))
	}

	// Negative threshold disables promotion.
	tr.SetSlowThreshold(-1)
	finish("op4", nil)
	if len(tr.Slow()) != 2 || tr.Slow()[0].Root.Name != "op3" {
		t.Fatal("disabled slow log still promoted")
	}

	// A fast op under a positive threshold is not promoted.
	tr.SetSlowThreshold(time.Hour)
	finish("op5", nil)
	if tr.Slow()[0].Root.Name != "op3" {
		t.Fatal("fast op promoted to slow log")
	}
}

func TestRingWrap(t *testing.T) {
	tr := New(Config{Ring: 8, SlowThreshold: -1})
	for i := 0; i < 20; i++ {
		_, h := tr.StartRoot(context.Background(), "op", "")
		h.End(nil)
	}
	if got := tr.Recorded(); got != 20 {
		t.Fatalf("recorded = %d, want 20", got)
	}
	if got := len(tr.Spans()); got != 8 {
		t.Fatalf("ring retains %d spans, want 8", got)
	}
}

func TestResumeMarksSubtreeTop(t *testing.T) {
	server := New(Config{SlowThreshold: time.Nanosecond})
	const traceID, parentID = TraceID(7), SpanID(9)

	ctx := Resume(context.Background(), server, traceID, parentID)
	sctx, serve := Start(ctx, "transport.serve", "client")
	// Children of the resumed top are ordinary spans.
	leaf := StartLeaf(sctx, "disk.read", "d0")
	leaf.End(nil)
	serve.End(nil)

	spans := server.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	var top, child Span
	for _, sp := range spans {
		if sp.Name == "transport.serve" {
			top = sp
		} else {
			child = sp
		}
	}
	if top.Trace != traceID || top.Parent != parentID {
		t.Fatalf("resumed span identity wrong: %+v", top)
	}
	if !top.Top {
		t.Error("first span under Resume not marked Top")
	}
	if child.Top {
		t.Error("grandchild of Resume marked Top")
	}
	if child.Parent != top.ID {
		t.Error("child not parented under the resumed top")
	}
	// The server-side subtree promotes to the server's own slow log.
	if len(server.Slow()) != 1 {
		t.Fatal("resumed slow subtree not promoted server-side")
	}
}

func TestMergeAligns(t *testing.T) {
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr := Trace{
		ID:   42,
		Root: Span{Trace: 42, ID: 1, Top: true, Name: "raidx.read", Start: base, Dur: 10 * time.Millisecond},
		Spans: []Span{
			{Trace: 42, ID: 1, Top: true, Name: "raidx.read", Start: base, Dur: 10 * time.Millisecond},
			{Trace: 42, ID: 2, Parent: 1, Name: "transport.call", Start: base.Add(time.Millisecond), Dur: 8 * time.Millisecond},
		},
	}
	// Remote spans on an unrelated clock, parented (via the wire ids)
	// under span 2. The serve span is the subtree top; the disk span is
	// interior and must shift with it.
	remoteBase := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	remote := []Span{
		{Trace: 42, ID: 100, Parent: 2, Top: true, Name: "transport.serve", Start: remoteBase, Dur: 4 * time.Millisecond},
		{Trace: 42, ID: 101, Parent: 100, Name: "disk.read", Start: remoteBase.Add(time.Millisecond), Dur: 2 * time.Millisecond},
		{Trace: 43, ID: 200, Name: "other-trace", Start: remoteBase},
		{Trace: 42, ID: 2, Name: "duplicate-of-local", Start: remoteBase},
	}
	tr.Merge(remote, "n1")

	if len(tr.Spans) != 4 {
		t.Fatalf("merged to %d spans, want 4 (foreign trace and duplicate dropped)", len(tr.Spans))
	}
	var serve, disk Span
	for _, sp := range tr.Spans {
		switch sp.ID {
		case 100:
			serve = sp
		case 101:
			disk = sp
		}
	}
	if serve.Origin != "n1" || disk.Origin != "n1" {
		t.Fatalf("origins not stamped: %q %q", serve.Origin, disk.Origin)
	}
	// Centered inside the local parent: parent start 1ms + (8ms-4ms)/2.
	wantServe := base.Add(time.Millisecond).Add(2 * time.Millisecond)
	if !serve.Start.Equal(wantServe) {
		t.Fatalf("serve re-based to %v, want %v", serve.Start, wantServe)
	}
	// Interior span keeps its offset relative to the subtree top (1ms).
	if got := disk.Start.Sub(serve.Start); got != time.Millisecond {
		t.Fatalf("interior span offset = %v, want 1ms", got)
	}
	// Start-sorted after merge.
	for i := 1; i < len(tr.Spans); i++ {
		if tr.Spans[i].Start.Before(tr.Spans[i-1].Start) {
			t.Fatal("merged spans not start-sorted")
		}
	}
}

func TestWriteWaterfall(t *testing.T) {
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr := Trace{
		ID:   0xabc,
		Root: Span{Trace: 0xabc, ID: 1, Top: true, Name: "raidx.read", Subject: "raidx", Val: 65536, Start: base, Dur: 12 * time.Millisecond},
		Spans: []Span{
			{Trace: 0xabc, ID: 1, Top: true, Name: "raidx.read", Subject: "raidx", Val: 65536, Start: base, Dur: 12 * time.Millisecond},
			{Trace: 0xabc, ID: 2, Parent: 1, Name: "raidx.failover", Subject: "d3", Start: base.Add(2 * time.Millisecond), Dur: 6 * time.Millisecond, Err: "disk failed"},
			{Trace: 0xabc, ID: 3, Parent: 2, Name: "disk.read", Subject: "d1", Start: base.Add(3 * time.Millisecond), Dur: time.Millisecond, Origin: "n1"},
			{Trace: 0xabc, ID: 4, Parent: 999, Name: "orphan", Start: base.Add(8 * time.Millisecond), Dur: time.Millisecond},
		},
	}
	var sb strings.Builder
	WriteWaterfall(&sb, tr)
	out := sb.String()

	for _, want := range []string{
		"trace 0000000000000abc  raidx.read  12.00ms  (4 spans)",
		"raidx.read raidx [65536]",
		"  raidx.failover d3  ERR: disk failed",
		"    disk.read d1 @n1",
		"  orphan", // missing parent hangs off the root
		"2.00ms",   // failover offset column
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("waterfall has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond:  "500µs",
		1500 * time.Microsecond: "1.50ms",
		2 * time.Second:         "2.000s",
		-300 * time.Microsecond: "-300µs",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(Config{Ring: 64, SlowThreshold: time.Nanosecond, SlowCap: 4})
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ctx, root := tr.StartRoot(context.Background(), "op", "")
				leaf := StartLeaf(ctx, "leaf", "d0")
				leaf.End(nil)
				root.End(nil)
				// Readers race the writers on purpose.
				if i%10 == 0 {
					tr.Spans()
					tr.Traces(4)
					tr.Slow()
					tr.Snapshot(2)
				}
			}
		}()
	}
	wg.Wait()
	if got := tr.Recorded(); got != workers*per*2 {
		t.Fatalf("recorded = %d, want %d", got, workers*per*2)
	}
	if got := len(tr.Spans()); got != 64 {
		t.Fatalf("ring retains %d spans, want 64", got)
	}
	if got := len(tr.Slow()); got != 4 {
		t.Fatalf("slow log = %d, want cap 4", got)
	}
}
