// Package trace is the array's per-request tracing substrate:
// lightweight, always-on sampled span recording across the whole SIOS
// data path (array op → striped fan-out → CDD client call → transport
// frame → remote manager → disk model).
//
// Aggregate counters and histograms (internal/obs) say *that* a p99
// exists; traces say *where the time went* for one specific slow
// operation — local disk vs. remote hop vs. retry backoff vs. mirror
// failover. The design follows the same constraints as obs:
//
//   - Recording is allocation-free on the hot path: spans land in a
//     fixed-size ring of pre-allocated slots; names and subjects are
//     static or pre-computed strings; claiming a slot is one atomic add
//     plus one uncontended per-slot lock (the lock makes snapshots
//     race-free under the race detector without a seqlock).
//   - Everything is nil-safe. Starting a span from an untraced context
//     (or a nil tracer) returns a no-op Handle and the original
//     context, so instrumented code never branches on configuration.
//   - Sampling bounds the cost: a Tracer records 1-in-SampleEvery new
//     traces; an unsampled operation pays one atomic add and nothing
//     else. Resumed traces (arriving over the wire) are always
//     recorded — the client already made the sampling decision.
//
// Completed traces whose root span exceeds a configurable threshold are
// promoted to a bounded slow log, surviving ring wrap-around until
// pushed out by newer slow traces.
package trace

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end operation across processes.
type TraceID uint64

// SpanID identifies one span within a trace. IDs are allocated from a
// randomly-seeded per-process counter, so spans recorded by different
// processes for the same trace do not collide when merged.
type SpanID uint64

// Span is one timed section of a trace. Spans form a tree through
// Parent; the root (or a subtree top resumed from the wire) has Top set.
type Span struct {
	Trace   TraceID `json:"trace"`
	ID      SpanID  `json:"id"`
	Parent  SpanID  `json:"parent,omitempty"`
	Top     bool    `json:"top,omitempty"`
	Name    string  `json:"name"`
	Subject string  `json:"subject,omitempty"`
	// Val is an op-defined annotation: bytes moved for I/O spans, the
	// attempt number for retry spans, the fan-out width for par spans.
	Val   int64         `json:"val,omitempty"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	Err   string        `json:"err,omitempty"`
	// Origin names the process that recorded the span; set only when a
	// span was merged in from another node's tracer.
	Origin string `json:"origin,omitempty"`
}

// End reports when the span finished.
func (s Span) End() time.Time { return s.Start.Add(s.Dur) }

// Trace is one assembled operation: the root span plus every span
// recorded for its TraceID, start-ordered.
type Trace struct {
	ID    TraceID `json:"id"`
	Root  Span    `json:"root"`
	Spans []Span  `json:"spans"`
}

// Defaults for Config zero fields.
const (
	DefaultRing          = 4096
	DefaultSlowThreshold = 20 * time.Millisecond
	DefaultSlowCap       = 32
)

// Config sizes a Tracer. The zero value takes the defaults: a
// 4096-span ring, every trace sampled, 20 ms slow threshold, 32 slow
// traces retained.
type Config struct {
	// Ring is the span ring capacity (spans, not traces).
	Ring int
	// SampleEvery records 1 in N new traces (1 = all).
	SampleEvery int
	// SlowThreshold promotes completed traces whose root span lasted at
	// least this long to the slow log. Negative disables the slow log.
	SlowThreshold time.Duration
	// SlowCap bounds the slow log (traces).
	SlowCap int
}

// slot is one ring entry. The per-slot mutex is uncontended on the hot
// path (writers claim distinct slots via the atomic cursor) and exists
// so snapshot readers are race-free.
type slot struct {
	mu sync.Mutex
	ok bool
	sp Span
}

// Tracer records spans into a fixed ring and assembles slow traces. A
// nil *Tracer is inert: every method is a no-op or returns zero values.
type Tracer struct {
	slots []slot
	next  atomic.Uint64 // ring cursor (total spans ever recorded)
	ids   atomic.Uint64 // trace/span ID allocator, randomly seeded
	tick  atomic.Uint64 // sampling counter
	every atomic.Int64  // sample 1 in N
	slow  atomic.Int64  // slow threshold (ns); <0 disables

	mu       sync.Mutex
	slowRing []Trace // newest-first bounded slow log
	slowCap  int
}

// New creates a Tracer; zero cfg fields take the package defaults.
func New(cfg Config) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = DefaultRing
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.SlowCap <= 0 {
		cfg.SlowCap = DefaultSlowCap
	}
	t := &Tracer{slots: make([]slot, cfg.Ring), slowCap: cfg.SlowCap}
	t.ids.Store(rand.Uint64())
	t.every.Store(int64(cfg.SampleEvery))
	t.slow.Store(int64(cfg.SlowThreshold))
	return t
}

// SetSampleEvery changes the sampling rate to 1-in-n (n < 1 means all).
func (t *Tracer) SetSampleEvery(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.every.Store(int64(n))
}

// SampleEvery reports the current sampling rate.
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every.Load())
}

// SetSlowThreshold changes the slow-log promotion threshold (negative
// disables promotion).
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.slow.Store(int64(d))
}

// SlowThreshold reports the current slow-log promotion threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slow.Load())
}

// Handle is an in-flight span. The zero Handle (from an untraced
// context) is a no-op; End may be called exactly once.
type Handle struct {
	// Val annotates the span (bytes moved, attempt number, fan-out
	// width); set it before End.
	Val int64

	t       *Tracer
	trace   TraceID
	id      SpanID
	parent  SpanID
	top     bool
	name    string
	subject string
	start   time.Time
}

// On reports whether the span is live (recording on End).
func (h *Handle) On() bool { return h.t != nil }

// End finishes the span and records it. err, when non-nil, marks the
// span failed with its message. Ending the root of a trace whose
// duration reaches the tracer's slow threshold promotes the whole trace
// to the slow log.
func (h *Handle) End(err error) {
	if h.t == nil {
		return
	}
	sp := Span{
		Trace:   h.trace,
		ID:      h.id,
		Parent:  h.parent,
		Top:     h.top,
		Name:    h.name,
		Subject: h.subject,
		Val:     h.Val,
		Start:   h.start,
		Dur:     time.Since(h.start),
	}
	if err != nil {
		sp.Err = err.Error()
	}
	h.t.record(sp)
	if h.top {
		if st := h.t.slow.Load(); st >= 0 && sp.Dur >= time.Duration(st) {
			h.t.promote(sp)
		}
	}
}

// record claims the next ring slot and stores the span.
func (t *Tracer) record(sp Span) {
	i := t.next.Add(1) - 1
	s := &t.slots[i%uint64(len(t.slots))]
	s.mu.Lock()
	s.sp = sp
	s.ok = true
	s.mu.Unlock()
}

// Recorded reports how many spans were ever recorded (including ones
// the ring has overwritten).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// StartRoot begins a new trace rooted at the returned span — the entry
// point of every array operation. If ctx already carries a trace (a
// nested engine, or a resumed wire context) the call degrades to Start,
// nesting instead of starting a second trace. A nil tracer, or an
// operation skipped by sampling, returns ctx unchanged and a no-op
// Handle.
func (t *Tracer) StartRoot(ctx context.Context, name, subject string) (context.Context, Handle) {
	if sc, ok := fromContext(ctx); ok && sc.t != nil {
		return Start(ctx, name, subject)
	}
	if t == nil {
		return ctx, Handle{}
	}
	n := t.tick.Add(1)
	if every := t.every.Load(); every > 1 && n%uint64(every) != 0 {
		return ctx, Handle{}
	}
	h := Handle{
		t:       t,
		trace:   TraceID(t.ids.Add(1)),
		id:      SpanID(t.ids.Add(1)),
		top:     true,
		name:    name,
		subject: subject,
		start:   time.Now(),
	}
	return withSpan(ctx, spanCtx{t: t, trace: h.trace, span: h.id}), h
}

// Start begins a child span under the trace carried by ctx and returns
// a derived context for the span's own children. From an untraced
// context it is a no-op returning ctx unchanged.
func Start(ctx context.Context, name, subject string) (context.Context, Handle) {
	sc, ok := fromContext(ctx)
	if !ok || sc.t == nil {
		return ctx, Handle{}
	}
	h := Handle{
		t:       sc.t,
		trace:   sc.trace,
		id:      SpanID(sc.t.ids.Add(1)),
		parent:  sc.span,
		top:     sc.fromWire,
		name:    name,
		subject: subject,
		start:   time.Now(),
	}
	return withSpan(ctx, spanCtx{t: sc.t, trace: sc.trace, span: h.id}), h
}

// StartLeaf begins a child span that will have no children of its own:
// no derived context, zero allocation.
func StartLeaf(ctx context.Context, name, subject string) Handle {
	sc, ok := fromContext(ctx)
	if !ok || sc.t == nil {
		return Handle{}
	}
	return Handle{
		t:       sc.t,
		trace:   sc.trace,
		id:      SpanID(sc.t.ids.Add(1)),
		parent:  sc.span,
		top:     sc.fromWire,
		name:    name,
		subject: subject,
		start:   time.Now(),
	}
}

// collect gathers every retained span of one trace, start-ordered.
func (t *Tracer) collect(id TraceID) []Span {
	var out []Span
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.ok && s.sp.Trace == id {
			out = append(out, s.sp)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// promote copies a completed slow trace into the slow log.
func (t *Tracer) promote(root Span) {
	tr := Trace{ID: root.Trace, Root: root, Spans: t.collect(root.Trace)}
	t.mu.Lock()
	t.slowRing = append([]Trace{tr}, t.slowRing...)
	if len(t.slowRing) > t.slowCap {
		t.slowRing = t.slowRing[:t.slowCap]
	}
	t.mu.Unlock()
}

// Slow returns the slow log, newest first.
func (t *Tracer) Slow() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Trace(nil), t.slowRing...)
}

// Spans dumps every retained span in the ring (unordered across
// traces) — the raw feed a peer merges via OpTraceSpans.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.ok {
			out = append(out, s.sp)
		}
		s.mu.Unlock()
	}
	return out
}

// Traces assembles the most recently completed traces (those whose top
// span is still in the ring), newest first, at most limit (<=0 means
// all).
func (t *Tracer) Traces(limit int) []Trace {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	byTrace := map[TraceID][]Span{}
	for _, sp := range spans {
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	var out []Trace
	for id, sps := range byTrace {
		sort.Slice(sps, func(i, j int) bool { return sps[i].Start.Before(sps[j].Start) })
		root, ok := topOf(sps)
		if !ok {
			continue // top span already overwritten (or still running)
		}
		out = append(out, Trace{ID: id, Root: root, Spans: sps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Root.Start.After(out[j].Root.Start) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// topOf picks a trace's local root: the earliest span marked Top.
func topOf(sps []Span) (Span, bool) {
	for _, sp := range sps {
		if sp.Top {
			return sp, true
		}
	}
	return Span{}, false
}

// Snapshot is the /trace endpoint body: recent completed traces plus
// the slow log, with the tracer's current settings.
type Snapshot struct {
	Time          time.Time     `json:"time"`
	SampleEvery   int           `json:"sample_every"`
	SlowThreshold time.Duration `json:"slow_threshold_ns"`
	Recorded      uint64        `json:"spans_recorded"`
	Recent        []Trace       `json:"recent,omitempty"`
	Slow          []Trace       `json:"slow,omitempty"`
}

// Snapshot assembles at most limit recent traces plus the slow log.
func (t *Tracer) Snapshot(limit int) Snapshot {
	s := Snapshot{Time: time.Now()}
	if t == nil {
		return s
	}
	s.SampleEvery = t.SampleEvery()
	s.SlowThreshold = t.SlowThreshold()
	s.Recorded = t.Recorded()
	s.Recent = t.Traces(limit)
	s.Slow = t.Slow()
	return s
}
