package faultnet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/transport"
)

func echoServer(t *testing.T) *transport.Server {
	t.Helper()
	s, err := transport.Serve("127.0.0.1:0", func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		return payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func faultyClient(t *testing.T, n *Network, addr string) *transport.Client {
	t.Helper()
	c, err := transport.DialWith(context.Background(), addr, transport.DialOptions{Dialer: n.Dialer()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCleanPassThrough(t *testing.T) {
	s := echoServer(t)
	n := New(1)
	c := faultyClient(t, n, s.Addr())
	resp, err := c.Call(context.Background(), 1, []byte("hello"))
	if err != nil || string(resp) != "hello" {
		t.Fatalf("got %q %v", resp, err)
	}
}

func TestLatencyInjection(t *testing.T) {
	s := echoServer(t)
	n := New(1)
	c := faultyClient(t, n, s.Addr())
	n.SetLatency(s.Addr(), 30*time.Millisecond, 0)
	start := time.Now()
	if _, err := c.Call(context.Background(), 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The request goes out as one vectored write, so the frame pays the
	// latency at least once (reads pipelined behind the read loop may
	// overlap the write's charge).
	if took := time.Since(start); took < 25*time.Millisecond {
		t.Fatalf("call took %v, want >= 25ms of injected latency", took)
	}
	n.Heal(s.Addr())
	// One warm-up call absorbs the read loop's already-gated sleep.
	if _, err := c.Call(context.Background(), 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := c.Call(context.Background(), 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 25*time.Millisecond {
		t.Fatalf("call took %v after heal", took)
	}
}

// callUntilOK retries a call until it succeeds (modeling the retry
// layer above the transport) or the deadline passes.
func callUntilOK(t *testing.T, c *transport.Client, payload []byte) []byte {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Call(context.Background(), 1, payload)
		if err == nil {
			return resp
		}
		if time.Now().After(deadline) {
			t.Fatalf("call never recovered: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestErrorInjectionBreaksAndReconnects(t *testing.T) {
	s := echoServer(t)
	n := New(7)
	c := faultyClient(t, n, s.Addr())
	n.SetErrorRate(s.Addr(), 1.0)
	if _, err := c.Call(context.Background(), 1, []byte("x")); err == nil {
		t.Fatal("call through 100% error rate succeeded")
	}
	n.Heal(s.Addr())
	// The client re-dials once it notices the broken session.
	if resp := callUntilOK(t, c, []byte("back")); string(resp) != "back" {
		t.Fatalf("after heal: %q", resp)
	}
}

func TestStallBlocksUntilCleared(t *testing.T) {
	s := echoServer(t)
	n := New(1)
	c := faultyClient(t, n, s.Addr())
	n.Stall(s.Addr())
	// With a deadline, a stalled call returns DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, 1, []byte("x")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	// Without a stall, traffic flows again (new conn, since the stalled
	// one was abandoned mid-write).
	n.Unstall(s.Addr())
	if resp := callUntilOK(t, c, []byte("y")); string(resp) != "y" {
		t.Fatalf("after unstall: %q", resp)
	}
}

func TestPartitionRefusesDials(t *testing.T) {
	s := echoServer(t)
	n := New(1)
	n.Partition(s.Addr())
	if _, err := n.Dialer()(context.Background(), s.Addr()); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("got %v, want ErrPartitioned", err)
	}
	n.Heal(s.Addr())
	conn, err := n.Dialer()(context.Background(), s.Addr())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	conn.Close()
}

func TestHealAllClearsEveryPeer(t *testing.T) {
	s1, s2 := echoServer(t), echoServer(t)
	n := New(1)
	n.Partition(s1.Addr())
	n.Stall(s2.Addr())
	n.HealAll()
	for _, addr := range []string{s1.Addr(), s2.Addr()} {
		c := faultyClient(t, n, addr)
		if _, err := c.Call(context.Background(), 1, []byte("ok")); err != nil {
			t.Fatalf("%s after HealAll: %v", addr, err)
		}
	}
}
