// Package faultnet injects network faults into CDD transport
// connections on a per-peer basis: added latency (with jitter), random
// I/O error rates, stalls (established traffic hangs until cleared),
// and full partitions (traffic hangs and new dials are refused). It is
// the network counterpart of internal/disk's media failure injection —
// where disk.Fail models a dead spindle, faultnet models the flaky,
// slow, or unreachable peers that dominate real-world availability.
//
// A Network hands out a transport.DialFunc whose connections route
// every read and write through the peer's current fault plan, so faults
// can be injected, varied, and healed while a workload runs. Peers are
// keyed by dial address.
package faultnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is the base error of all injected faults.
var ErrInjected = errors.New("faultnet: injected fault")

// ErrPartitioned is returned for dials to a partitioned peer.
var ErrPartitioned = fmt.Errorf("%w: peer partitioned", ErrInjected)

// Network tracks per-peer fault plans and manufactures faulty
// connections.
type Network struct {
	mu    sync.Mutex
	rng   *rand.Rand
	peers map[string]*peer
}

// New creates a fault injector. The seed drives error-rate and jitter
// sampling, so chaos runs are reproducible.
func New(seed int64) *Network {
	return &Network{rng: rand.New(rand.NewSource(seed)), peers: map[string]*peer{}}
}

type peer struct {
	net *Network

	mu          sync.Mutex
	latency     time.Duration
	jitter      time.Duration
	errRate     float64
	blocked     bool          // stall or partition: established traffic hangs
	refuseDials bool          // partition: new connections fail
	unblock     chan struct{} // closed when the current block clears
}

func (n *Network) peer(addr string) *peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.peers[addr]
	if !ok {
		p = &peer{net: n, unblock: make(chan struct{})}
		close(p.unblock) // not blocked
		n.peers[addr] = p
	}
	return p
}

// sample draws from the network RNG under its own lock (peer locks may
// be held concurrently by many connections).
func (n *Network) sample() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64()
}

// Dialer returns a transport.DialFunc-compatible dialer whose
// connections obey the target peer's fault plan.
func (n *Network) Dialer() func(ctx context.Context, addr string) (net.Conn, error) {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		p := n.peer(addr)
		p.mu.Lock()
		refused := p.refuseDials
		p.mu.Unlock()
		if refused {
			return nil, ErrPartitioned
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return &faultConn{Conn: conn, p: p, done: make(chan struct{})}, nil
	}
}

// SetLatency adds d (± jitter) to every read and write toward addr.
func (n *Network) SetLatency(addr string, d, jitter time.Duration) {
	p := n.peer(addr)
	p.mu.Lock()
	p.latency, p.jitter = d, jitter
	p.mu.Unlock()
}

// SetErrorRate makes each read/write toward addr fail (and kill its
// connection) with probability rate in [0,1].
func (n *Network) SetErrorRate(addr string, rate float64) {
	p := n.peer(addr)
	p.mu.Lock()
	p.errRate = rate
	p.mu.Unlock()
}

// Stall freezes established traffic toward addr: reads and writes hang
// until Unstall or Heal. New dials still succeed (and then hang),
// modeling a live host with a wedged service.
func (n *Network) Stall(addr string) {
	p := n.peer(addr)
	p.mu.Lock()
	p.block(false)
	p.mu.Unlock()
}

// Unstall resumes traffic frozen by Stall.
func (n *Network) Unstall(addr string) {
	p := n.peer(addr)
	p.mu.Lock()
	p.clearBlock()
	p.mu.Unlock()
}

// Partition makes addr unreachable: established traffic hangs and new
// dials fail with ErrPartitioned.
func (n *Network) Partition(addr string) {
	p := n.peer(addr)
	p.mu.Lock()
	p.block(true)
	p.mu.Unlock()
}

// Heal clears every fault on addr: latency, error rate, stall,
// partition.
func (n *Network) Heal(addr string) {
	p := n.peer(addr)
	p.mu.Lock()
	p.latency, p.jitter, p.errRate = 0, 0, 0
	p.clearBlock()
	p.mu.Unlock()
}

// HealAll clears every fault on every peer.
func (n *Network) HealAll() {
	n.mu.Lock()
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		p.latency, p.jitter, p.errRate = 0, 0, 0
		p.clearBlock()
		p.mu.Unlock()
	}
}

// block and clearBlock require p.mu held.
func (p *peer) block(refuseDials bool) {
	if !p.blocked {
		p.blocked = true
		p.unblock = make(chan struct{})
	}
	p.refuseDials = refuseDials || p.refuseDials
}

func (p *peer) clearBlock() {
	if p.blocked {
		p.blocked = false
		close(p.unblock)
	}
	p.refuseDials = false
}

// gate applies the peer's current fault plan to one conn operation:
// wait out stalls/partitions, charge latency, maybe inject an error.
func (p *peer) gate(c *faultConn) error {
	for {
		p.mu.Lock()
		if p.blocked {
			ch := p.unblock
			p.mu.Unlock()
			select {
			case <-ch:
				continue // re-evaluate the (possibly new) plan
			case <-c.done:
				return net.ErrClosed
			}
		}
		lat := p.latency
		if p.jitter > 0 {
			lat += time.Duration(p.net.sample() * float64(p.jitter))
		}
		inject := p.errRate > 0 && p.net.sample() < p.errRate
		p.mu.Unlock()
		if lat > 0 {
			select {
			case <-time.After(lat):
			case <-c.done:
				return net.ErrClosed
			}
		}
		if inject {
			c.Close() // a faulted link loses the connection too
			return fmt.Errorf("%w: connection reset", ErrInjected)
		}
		return nil
	}
}

// faultConn routes reads and writes through the peer's fault plan.
type faultConn struct {
	net.Conn
	p    *peer
	once sync.Once
	done chan struct{}
}

func (c *faultConn) Read(b []byte) (int, error) {
	if err := c.p.gate(c); err != nil {
		return 0, err
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	if err := c.p.gate(c); err != nil {
		return 0, err
	}
	return c.Conn.Write(b)
}

func (c *faultConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return c.Conn.Close()
}
