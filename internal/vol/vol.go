// Package vol implements per-volume redundancy policy over one shared
// device pool (DESIGN.md §15): the pool carves each member device into
// stacked physical windows, and every volume runs its own array engine
// — OSM mirroring for hot data, RAID-5 or rs(k,m) erasure coding for
// capacity-efficient cold data — over its windows of the same disks.
// This is the heterogeneous-redundancy arrangement of Thomasian's HDA:
// multiple RAID levels sharing one pool of spindles, so placement
// (which disks) is decided once and redundancy cost (how many copies)
// is decided per volume.
package vol

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/raid"
)

// Policy names a volume's redundancy scheme.
type Policy struct {
	// Kind is "mirror" (OSM, RAID-x engine), "raid5", or "rs".
	Kind string
	// K, M are the rs(k,m) shard counts; zero for other kinds. K+M
	// must equal the pool width (every volume spans all members).
	K, M int
}

// ParsePolicy parses "mirror", "raid5", or "rs(k,m)".
func ParsePolicy(s string) (Policy, error) {
	switch {
	case s == "mirror":
		return Policy{Kind: "mirror"}, nil
	case s == "raid5":
		return Policy{Kind: "raid5"}, nil
	case strings.HasPrefix(s, "rs(") && strings.HasSuffix(s, ")"):
		var k, m int
		if _, err := fmt.Sscanf(s, "rs(%d,%d)", &k, &m); err != nil || k < 1 || m < 1 {
			return Policy{}, fmt.Errorf("vol: bad rs policy %q (want rs(k,m))", s)
		}
		return Policy{Kind: "rs", K: k, M: m}, nil
	default:
		return Policy{}, fmt.Errorf("vol: unknown policy %q (want mirror | raid5 | rs(k,m))", s)
	}
}

// String renders the canonical policy spelling.
func (p Policy) String() string {
	if p.Kind == "rs" {
		return fmt.Sprintf("rs(%d,%d)", p.K, p.M)
	}
	return p.Kind
}

// OverheadPct reports the capacity overhead of the policy on a pool of
// n devices: bytes of redundancy per 100 bytes of data.
func (p Policy) OverheadPct(n int) float64 {
	switch p.Kind {
	case "mirror":
		return 100
	case "raid5":
		if n > 1 {
			return 100 / float64(n-1)
		}
		return 0
	case "rs":
		if p.K > 0 {
			return 100 * float64(p.M) / float64(p.K)
		}
	}
	return 0
}

// Pool carves a shared set of devices into per-volume physical windows
// and builds each volume's engine per its policy. All volumes span all
// members — heterogeneous redundancy, homogeneous placement.
type Pool struct {
	devs   []raid.Dev
	bs     int
	perDev int64

	mu   sync.Mutex
	next int64 // next free physical block on every member
	vols []*Volume

	// Labeled instruments (nil registry: all no-ops). vol.info carries
	// the policy as a label (value pinned to 1, the Prometheus info
	// idiom); the others are per-volume series keyed by volume name.
	info     *obs.GaugeVec
	blocks   *obs.GaugeVec
	overhead *obs.GaugeVec
	degraded *obs.CounterVec
}

// NewPool builds a pool over the shared devices. reg, when non-nil,
// receives the per-volume labeled instruments (vol.info{volume,policy},
// vol.blocks{volume}, vol.capacity_overhead_pct{volume},
// vol.degraded_reads{volume}).
func NewPool(devs []raid.Dev, reg *obs.Registry) (*Pool, error) {
	if len(devs) < 2 {
		return nil, fmt.Errorf("vol: pool needs at least 2 devices, got %d", len(devs))
	}
	bs := devs[0].BlockSize()
	per := devs[0].NumBlocks()
	for i, d := range devs {
		if d.BlockSize() != bs {
			return nil, fmt.Errorf("vol: device %d block size %d != %d", i, d.BlockSize(), bs)
		}
		if d.NumBlocks() < per {
			per = d.NumBlocks()
		}
	}
	return &Pool{
		devs:     devs,
		bs:       bs,
		perDev:   per,
		info:     reg.GaugeVec("vol.info", "volume", "policy"),
		blocks:   reg.GaugeVec("vol.blocks", "volume"),
		overhead: reg.GaugeVec("vol.capacity_overhead_pct", "volume"),
		degraded: reg.CounterVec("vol.degraded_reads", "volume"),
	}, nil
}

// Width reports the number of pool members.
func (p *Pool) Width() int { return len(p.devs) }

// FreePerDev reports the unallocated physical blocks on each member.
func (p *Pool) FreePerDev() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.perDev - p.next
}

// Volumes lists the created volumes in creation order.
func (p *Pool) Volumes() []*Volume {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Volume(nil), p.vols...)
}

// Volume is one policy-carrying array over the pool: it embeds the
// engine (raid.Array and, per policy, Rebuilder/Verifier behavior)
// built over this volume's window of every pool member.
type Volume struct {
	raid.Array
	name   string
	policy Policy
	base   int64 // first physical block of the window on every member
	span   int64 // physical blocks per member
}

// VolumeName reports the volume's pool-unique name. (Name() is the
// embedded engine's architecture name, e.g. "rs(8,2)".)
func (v *Volume) VolumeName() string { return v.name }

// Policy reports the volume's redundancy policy.
func (v *Volume) Policy() Policy { return v.policy }

// Window reports the volume's physical window on every pool member.
func (v *Volume) Window() (base, span int64) { return v.base, v.span }

// Create carves blocksPerDev physical blocks off every member and
// builds a volume with the given policy over the window. Mirror
// volumes need an even blocksPerDev of at least 2·(width-1) (OSM
// mirror-group geometry); rs volumes require pol.K+pol.M == pool
// width.
func (p *Pool) Create(name string, pol Policy, blocksPerDev int64) (*Volume, error) {
	if name == "" {
		return nil, fmt.Errorf("vol: empty volume name")
	}
	if blocksPerDev < 1 {
		return nil, fmt.Errorf("vol: volume %q: blocksPerDev must be >= 1", name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, v := range p.vols {
		if v.name == name {
			return nil, fmt.Errorf("vol: volume %q already exists", name)
		}
	}
	if p.next+blocksPerDev > p.perDev {
		return nil, fmt.Errorf("vol: volume %q wants %d blocks/dev, %d free", name, blocksPerDev, p.perDev-p.next)
	}
	wdevs := make([]raid.Dev, len(p.devs))
	for i, d := range p.devs {
		wdevs[i] = &windowDev{d: d, base: p.next, blocks: blocksPerDev}
	}
	var arr raid.Array
	var err error
	switch pol.Kind {
	case "mirror":
		// One OSM node per member: orthogonal striping and mirroring
		// across the pool, the paper's hot-data arrangement. No
		// registry is passed — the pool's own labeled instruments
		// cover per-volume observability, and unlabeled raidx.*
		// metrics would collide across volumes.
		arr, err = core.New(wdevs, len(wdevs), 1, core.Options{})
	case "raid5":
		arr, err = raid.NewRAID5(wdevs)
	case "rs":
		if pol.K+pol.M != len(p.devs) {
			return nil, fmt.Errorf("vol: volume %q: rs(%d,%d) needs %d devices, pool has %d",
				name, pol.K, pol.M, pol.K+pol.M, len(p.devs))
		}
		arr, err = raid.NewRS(wdevs, pol.M)
	default:
		return nil, fmt.Errorf("vol: volume %q: unknown policy kind %q", name, pol.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("vol: volume %q: %w", name, err)
	}
	v := &Volume{Array: arr, name: name, policy: pol, base: p.next, span: blocksPerDev}
	p.next += blocksPerDev
	p.vols = append(p.vols, v)

	p.info.With(name, pol.String()).Set(1)
	p.blocks.With(name).Set(arr.Blocks())
	p.overhead.With(name).Set(int64(pol.OverheadPct(len(p.devs)) + 0.5))
	if dn, ok := arr.(raid.DegradedNotifier); ok {
		c := p.degraded.With(name)
		dn.SetDegradedNotify(func(blocks int) { c.Add(int64(blocks)) })
	}
	return v, nil
}

// windowDev exposes a contiguous physical window [base, base+blocks)
// of a pool member as a standalone device. Vectored I/O passes through
// raid.ReadBlocksVec/WriteBlocksVec, so the zero-copy path survives
// the windowing; queue-backlog probes delegate so balanced reads keep
// working inside mirror volumes.
type windowDev struct {
	d      raid.Dev
	base   int64
	blocks int64
}

func (w *windowDev) BlockSize() int   { return w.d.BlockSize() }
func (w *windowDev) NumBlocks() int64 { return w.blocks }
func (w *windowDev) Healthy() bool    { return w.d.Healthy() }

func (w *windowDev) check(b int64, n int) error {
	if b < 0 || b+int64(n) > w.blocks {
		return fmt.Errorf("vol: window access [%d,+%d) outside %d blocks", b, n, w.blocks)
	}
	return nil
}

func (w *windowDev) ReadBlocks(ctx context.Context, b int64, p []byte) error {
	if err := w.check(b, len(p)/w.d.BlockSize()); err != nil {
		return err
	}
	return w.d.ReadBlocks(ctx, w.base+b, p)
}

func (w *windowDev) WriteBlocks(ctx context.Context, b int64, p []byte) error {
	if err := w.check(b, len(p)/w.d.BlockSize()); err != nil {
		return err
	}
	return w.d.WriteBlocks(ctx, w.base+b, p)
}

func (w *windowDev) WriteBlocksBackground(ctx context.Context, b int64, p []byte) error {
	if err := w.check(b, len(p)/w.d.BlockSize()); err != nil {
		return err
	}
	return w.d.WriteBlocksBackground(ctx, w.base+b, p)
}

func (w *windowDev) Flush(ctx context.Context) error { return w.d.Flush(ctx) }

func (w *windowDev) ReadBlocksVec(ctx context.Context, b int64, segs [][]byte) error {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	if err := w.check(b, n/w.d.BlockSize()); err != nil {
		return err
	}
	return raid.ReadBlocksVec(ctx, w.d, w.base+b, segs)
}

func (w *windowDev) WriteBlocksVec(ctx context.Context, b int64, segs [][]byte) error {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	if err := w.check(b, n/w.d.BlockSize()); err != nil {
		return err
	}
	return raid.WriteBlocksVec(ctx, w.d, w.base+b, segs)
}

func (w *windowDev) QueueBacklog() time.Duration   { return raid.BacklogOf(w.d) }
func (w *windowDev) BgQueueBacklog() time.Duration { return raid.BgBacklogOf(w.d) }
