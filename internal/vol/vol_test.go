package vol_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/cdd"
	"repro/internal/disk"
	"repro/internal/fsim"
	"repro/internal/obs"
	"repro/internal/raid"
	"repro/internal/store"
	"repro/internal/vol"
)

// mkPool builds a pool of n fresh in-memory disks with a registry, and
// hands back the raw disks so tests can fail/replace members.
func mkPool(t *testing.T, n int, bs int, blocks int64) (*vol.Pool, []*disk.Disk, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	devs := make([]raid.Dev, n)
	raw := make([]*disk.Disk, n)
	for i := range devs {
		d := disk.New(nil, "d"+string(rune('0'+i)), store.NewMem(bs, blocks), disk.DefaultModel())
		devs[i] = d
		raw[i] = d
	}
	p, err := vol.NewPool(devs, reg)
	if err != nil {
		t.Fatal(err)
	}
	return p, raw, reg
}

func fillPat(p []byte, seed byte) {
	for i := range p {
		p[i] = seed ^ byte(i*7)
	}
}

// TestPoolMixedPolicies is the acceptance-criteria drill: a mirrored
// hot volume and an rs(8,2) cold volume (plus a raid5 one) share the
// same ten spindles, each with independent data, capacity accounting,
// and redundancy behavior.
func TestPoolMixedPolicies(t *testing.T) {
	ctx := context.Background()
	p, raw, reg := mkPool(t, 10, 1024, 4096)

	hot, err := p.Create("hot", vol.Policy{Kind: "mirror"}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Create("cold", vol.Policy{Kind: "rs", K: 8, M: 2}, 512)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := p.Create("mid", vol.Policy{Kind: "raid5"}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.FreePerDev(); got != 4096-1024-512-256 {
		t.Errorf("FreePerDev = %d, want %d", got, 4096-1024-512-256)
	}
	if len(p.Volumes()) != 3 {
		t.Fatalf("Volumes() = %d entries", len(p.Volumes()))
	}

	// Capacities reflect each policy's overhead over the same window
	// arithmetic: mirror keeps about half (OSM rounds the window down
	// to whole mirror groups), rs(8,2) keeps exactly 8/10.
	if lo, hi := int64(10*1024*45/100), int64(10*1024/2); hot.Blocks() < lo || hot.Blocks() > hi {
		t.Errorf("hot.Blocks() = %d, want within [%d,%d]", hot.Blocks(), lo, hi)
	}
	if cold.Blocks() != 512*8 {
		t.Errorf("cold.Blocks() = %d, want %d", cold.Blocks(), 512*8)
	}

	// Independent round trips: distinct patterns per volume, written
	// interleaved, must not bleed across windows.
	write := func(v *vol.Volume, seed byte, blocks int64) []byte {
		buf := make([]byte, blocks*int64(v.BlockSize()))
		fillPat(buf, seed)
		if err := v.WriteBlocks(ctx, 0, buf); err != nil {
			t.Fatalf("%s: write: %v", v.VolumeName(), err)
		}
		return buf
	}
	hotData := write(hot, 0x11, 64)
	coldData := write(cold, 0x22, 64)
	midData := write(mid, 0x33, 64)
	check := func(v *vol.Volume, want []byte) {
		got := make([]byte, len(want))
		if err := v.ReadBlocks(ctx, 0, got); err != nil {
			t.Fatalf("%s: read: %v", v.VolumeName(), err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: round trip mismatch", v.VolumeName())
		}
	}
	check(hot, hotData)
	check(cold, coldData)
	check(mid, midData)

	// One spindle dies: every volume sees it, every volume survives it
	// (mirror and raid5 tolerate 1, rs(8,2) tolerates 2), and each
	// volume's own degraded-read counter moves.
	raw[3].Fail()
	check(hot, hotData)
	check(cold, coldData)
	check(mid, midData)

	snap := reg.Snapshot()
	for _, name := range []string{"hot", "cold", "mid"} {
		key := obs.LabelName("vol.degraded_reads", "volume", name)
		if snap.Counters[key] == 0 {
			t.Errorf("degraded read counter %s did not move", key)
		}
	}

	// Labeled info/capacity gauges carry the policy per volume.
	wantGauges := map[string]int64{
		obs.LabelName("vol.info", "volume", "hot", "policy", "mirror"):   1,
		obs.LabelName("vol.info", "volume", "cold", "policy", "rs(8,2)"): 1,
		obs.LabelName("vol.info", "volume", "mid", "policy", "raid5"):    1,
		obs.LabelName("vol.blocks", "volume", "hot"):                     hot.Blocks(),
		obs.LabelName("vol.blocks", "volume", "cold"):                    512 * 8,
		obs.LabelName("vol.capacity_overhead_pct", "volume", "hot"):      100,
		obs.LabelName("vol.capacity_overhead_pct", "volume", "cold"):     25,
	}
	for key, want := range wantGauges {
		if got := snap.Gauges[key]; got != want {
			t.Errorf("gauge %s = %d, want %d", key, got, want)
		}
	}
}

// TestPoolFilesystems mounts a real filesystem on each of the two
// volumes — the README walkthrough in test form: one pool of disks,
// hot files on the mirror, cold files on the erasure-coded tier.
func TestPoolFilesystems(t *testing.T) {
	ctx := context.Background()
	p, raw, _ := mkPool(t, 10, 1024, 4096)
	hot, err := p.Create("hot", vol.Policy{Kind: "mirror"}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Create("cold", vol.Policy{Kind: "rs", K: 8, M: 2}, 512)
	if err != nil {
		t.Fatal(err)
	}

	hotFS, err := fsim.Mkfs(ctx, hot, fsim.NewTableLocker(cdd.NewTable()), "hot-client", fsim.Options{MaxInodes: 256})
	if err != nil {
		t.Fatalf("mkfs hot: %v", err)
	}
	coldFS, err := fsim.Mkfs(ctx, cold, fsim.NewTableLocker(cdd.NewTable()), "cold-client", fsim.Options{MaxInodes: 256})
	if err != nil {
		t.Fatalf("mkfs cold: %v", err)
	}
	hotBody := []byte(strings.Repeat("latency-sensitive ", 200))
	coldBody := []byte(strings.Repeat("capacity-optimized ", 400))
	if err := hotFS.WriteFile(ctx, "/scratch.dat", hotBody); err != nil {
		t.Fatal(err)
	}
	if err := coldFS.WriteFile(ctx, "/archive.dat", coldBody); err != nil {
		t.Fatal(err)
	}

	// Two spindles fail: the rs(8,2) tier still serves its file. The
	// mirror tier is checked before the second failure (it tolerates
	// one).
	raw[7].Fail()
	got, err := hotFS.ReadFile(ctx, "/scratch.dat")
	if err != nil || !bytes.Equal(got, hotBody) {
		t.Fatalf("hot file after 1 failure: err=%v, match=%v", err, bytes.Equal(got, hotBody))
	}
	raw[2].Fail()
	got, err = coldFS.ReadFile(ctx, "/archive.dat")
	if err != nil || !bytes.Equal(got, coldBody) {
		t.Fatalf("cold file after 2 failures: err=%v, match=%v", err, bytes.Equal(got, coldBody))
	}

	// Remount the cold tier degraded: superblock and metadata also
	// reconstruct through the kernel.
	coldFS2, err := fsim.Mount(ctx, cold, fsim.NewTableLocker(cdd.NewTable()), "cold-remount")
	if err != nil {
		t.Fatalf("degraded remount: %v", err)
	}
	got, err = coldFS2.ReadFile(ctx, "/archive.dat")
	if err != nil || !bytes.Equal(got, coldBody) {
		t.Fatalf("cold file via degraded remount: err=%v, match=%v", err, bytes.Equal(got, coldBody))
	}
}

func TestPoolErrors(t *testing.T) {
	p, _, _ := mkPool(t, 10, 1024, 256)
	if _, err := p.Create("", vol.Policy{Kind: "mirror"}, 32); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := p.Create("a", vol.Policy{Kind: "rs", K: 4, M: 2}, 32); err == nil {
		t.Error("rs(4,2) on a 10-wide pool accepted")
	}
	if _, err := p.Create("a", vol.Policy{Kind: "raid7"}, 32); err == nil {
		t.Error("unknown policy kind accepted")
	}
	if _, err := p.Create("a", vol.Policy{Kind: "mirror"}, 128); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Create("a", vol.Policy{Kind: "raid5"}, 32); err == nil {
		t.Error("duplicate volume name accepted")
	}
	if _, err := p.Create("b", vol.Policy{Kind: "raid5"}, 200); err == nil {
		t.Error("over-capacity volume accepted")
	}
	if _, err := p.Create("b", vol.Policy{Kind: "raid5"}, 128); err != nil {
		t.Errorf("exact-fit volume rejected: %v", err)
	}
	if p.FreePerDev() != 0 {
		t.Errorf("FreePerDev = %d after exact fill", p.FreePerDev())
	}
}

func TestParsePolicy(t *testing.T) {
	good := map[string]vol.Policy{
		"mirror":   {Kind: "mirror"},
		"raid5":    {Kind: "raid5"},
		"rs(8,2)":  {Kind: "rs", K: 8, M: 2},
		"rs(17,3)": {Kind: "rs", K: 17, M: 3},
	}
	for s, want := range good {
		got, err := vol.ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %+v, %v; want %+v", s, got, err, want)
		}
		if got.String() != s {
			t.Errorf("Policy.String() = %q, want %q", got.String(), s)
		}
	}
	for _, s := range []string{"", "raid6", "rs(0,2)", "rs(4,0)", "rs(4)", "rs(a,b)", "mirror2"} {
		if _, err := vol.ParsePolicy(s); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", s)
		}
	}
	if pct := (vol.Policy{Kind: "rs", K: 8, M: 2}).OverheadPct(10); pct != 25 {
		t.Errorf("rs(8,2) overhead = %v, want 25", pct)
	}
	if pct := (vol.Policy{Kind: "mirror"}).OverheadPct(10); pct != 100 {
		t.Errorf("mirror overhead = %v, want 100", pct)
	}
}
