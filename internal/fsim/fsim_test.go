package fsim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/store"
)

// newFS builds a file system over a RAID-x array on pure-data disks.
func newFS(t *testing.T, blockSize int, diskBlocks int64) *FS {
	t.Helper()
	devs := make([]raid.Dev, 4)
	for i := range devs {
		devs[i] = disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(blockSize, diskBlocks), disk.DefaultModel())
	}
	arr, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mkfs(context.Background(), arr, NewTableLocker(cdd.NewTable()), "test", Options{MaxInodes: 512})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestMkfsMountRoundTrip(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	if err := fs.WriteFile(ctx, "/hello.txt", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	// Remount over the same array.
	fs2, err := Mount(ctx, fs.arr, NewTableLocker(cdd.NewTable()), "m2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile(ctx, "/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
}

func TestMountRejectsGarbage(t *testing.T) {
	devs := make([]raid.Dev, 2)
	for i := range devs {
		devs[i] = disk.New(nil, "d", store.NewMem(1024, 64), disk.DefaultModel())
	}
	arr, err := raid.NewRAID0(devs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(context.Background(), arr, NewTableLocker(cdd.NewTable()), "x"); !errors.Is(err, ErrBadFS) {
		t.Fatalf("got %v, want ErrBadFS", err)
	}
}

func TestMkdirTreeAndReadDir(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	if err := fs.MkdirAll(ctx, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/a/b/c/f1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/a/b/c/f2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(ctx, "/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("%d entries, want 2", len(ents))
	}
	info, err := fs.Stat(ctx, "/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir {
		t.Fatal("/a/b not a dir")
	}
	info, err = fs.Stat(ctx, "/a/b/c/f1")
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDir || info.Size != 3 {
		t.Fatalf("f1 info = %+v", info)
	}
}

func TestErrors(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	if _, err := fs.Open(ctx, "/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("open missing: %v", err)
	}
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/d"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate mkdir: %v", err)
	}
	if _, err := fs.Open(ctx, "/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("open dir: %v", err)
	}
	if err := fs.WriteFile(ctx, "/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(ctx, "/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("remove non-empty: %v", err)
	}
	if _, err := fs.Create(ctx, "/d/f/x"); !errors.Is(err, ErrNotDir) {
		t.Errorf("create under file: %v", err)
	}
	long := make([]byte, maxNameLen+1)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := fs.Create(ctx, "/"+string(long)); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("long name: %v", err)
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	data := make([]byte, 8*1024)
	// Fill and delete repeatedly: if blocks leaked, this would hit
	// ErrNoSpace.
	for round := 0; round < 30; round++ {
		name := fmt.Sprintf("/f%d", round)
		if err := fs.WriteFile(ctx, name, data); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := fs.Remove(ctx, name); err != nil {
			t.Fatalf("round %d remove: %v", round, err)
		}
	}
	// Inodes are reusable too.
	if _, err := fs.Stat(ctx, "/f0"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("removed file still visible: %v", err)
	}
}

func TestLargeFileUsesIndirect(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 2048)
	// > 12 direct blocks: 20 KB with 1 KB blocks.
	data := make([]byte, 20*1024)
	rand.New(rand.NewSource(1)).Read(data)
	if err := fs.WriteFile(ctx, "/big", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("indirect-block file corrupted")
	}
}

func TestSparseFileReadsZeros(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 1024)
	f, err := fs.Create(ctx, "/sparse")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(ctx, []byte("end"), 5000); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5003)
	n, err := f.ReadAt(ctx, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5003 {
		t.Fatalf("read %d bytes, want 5003", n)
	}
	for i := 0; i < 5000; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole not zero at %d", i)
		}
	}
	if string(buf[5000:]) != "end" {
		t.Fatalf("tail = %q", buf[5000:])
	}
}

func TestOverwriteMiddle(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 1024)
	base := bytes.Repeat([]byte{'a'}, 3000)
	if err := fs.WriteFile(ctx, "/f", base); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(ctx, []byte("XYZ"), 1500); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	copy(base[1500:], "XYZ")
	if !bytes.Equal(got, base) {
		t.Fatal("partial overwrite corrupted file")
	}
	if size, _ := f.Size(ctx); size != 3000 {
		t.Fatalf("size = %d, want 3000 (overwrite must not grow)", size)
	}
}

func TestAppendGrows(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 1024)
	f, err := fs.Create(ctx, "/log")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 10; i++ {
		chunk := bytes.Repeat([]byte{byte('0' + i)}, 300)
		if err := f.Append(ctx, chunk); err != nil {
			t.Fatal(err)
		}
		want = append(want, chunk...)
	}
	got, err := fs.ReadFile(ctx, "/log")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("appended content wrong")
	}
}

func TestManyFilesInOneDir(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 2048)
	const n = 100
	for i := 0; i < n; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/dir%03d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := fs.ReadDir(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("%d entries, want %d", len(ents), n)
	}
	for i := 0; i < n; i += 17 {
		got, err := fs.ReadFile(ctx, fmt.Sprintf("/dir%03d", i))
		if err != nil || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("file %d: %v %v", i, got, err)
		}
	}
}

func TestOutOfSpace(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 64) // tiny volume
	big := make([]byte, 256*1024)
	err := fs.WriteFile(ctx, "/big", big)
	if err == nil {
		t.Fatal("oversized write succeeded")
	}
}

// TestTwoMountsShareState: two FS instances over the same array (two
// CDD clients) observe each other's changes. Caching is disabled so
// the reads are strictly coherent; TestCacheStalenessAndTTL pins the
// weaker cached behaviour.
func TestTwoMountsShareState(t *testing.T) {
	ctx := context.Background()
	fs1 := newFS(t, 1024, 512)
	table := cdd.NewTable()
	fs1.lock = NewTableLocker(table)
	fs1.cache = nil
	fs2, err := MountOptions(ctx, fs1.arr, NewTableLocker(table), "client2", Options{CacheBlocks: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs1.MkdirAll(ctx, "/shared"); err != nil {
		t.Fatal(err)
	}
	if err := fs1.WriteFile(ctx, "/shared/a", []byte("from-1")); err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile(ctx, "/shared/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "from-1" {
		t.Fatalf("fs2 sees %q", got)
	}
	if err := fs2.WriteFile(ctx, "/shared/b", []byte("from-2")); err != nil {
		t.Fatal(err)
	}
	ents, err := fs1.ReadDir(ctx, "/shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("fs1 sees %d entries, want 2", len(ents))
	}
}

// TestFSSurvivesDiskFailure: the FS on RAID-x keeps working in degraded
// mode.
func TestFSSurvivesDiskFailure(t *testing.T) {
	ctx := context.Background()
	devs := make([]raid.Dev, 4)
	raw := make([]*disk.Disk, 4)
	for i := range devs {
		d := disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(1024, 512), disk.DefaultModel())
		devs[i] = d
		raw[i] = d
	}
	arr, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mkfs(ctx, arr, NewTableLocker(cdd.NewTable()), "t", Options{MaxInodes: 128})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x77}, 4096)
	if err := fs.WriteFile(ctx, "/keep", data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	raw[1].Fail()
	got, err := fs.ReadFile(ctx, "/keep")
	if err != nil {
		t.Fatalf("degraded read through FS: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded FS read wrong data")
	}
	if err := fs.WriteFile(ctx, "/new", []byte("written degraded")); err != nil {
		t.Fatalf("degraded write through FS: %v", err)
	}
	got, err = fs.ReadFile(ctx, "/new")
	if err != nil || string(got) != "written degraded" {
		t.Fatalf("reread: %q %v", got, err)
	}
}

func TestLockerSerializesConflicts(t *testing.T) {
	table := cdd.NewTable()
	lk := NewTableLocker(table)
	ctx := context.Background()
	rs := []cdd.Range{{Start: 5, End: 6}}
	if err := lk.Lock(ctx, "a", rs); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- lk.Lock(ctx, "b", rs) }()
	select {
	case <-done:
		t.Fatal("conflicting lock granted while held")
	default:
	}
	if err := lk.Unlock(ctx, "a", rs); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestCacheStalenessAndTTL pins the NFS-style weak consistency of the
// per-mount block cache: a remote change is invisible while a cached
// copy is fresh, becomes visible after the TTL, and mutating operations
// always see fresh state because locked reads bypass the cache.
func TestCacheStalenessAndTTL(t *testing.T) {
	ctx := context.Background()
	fs1 := newFS(t, 1024, 512)
	table := cdd.NewTable()
	fs1.lock = NewTableLocker(table)
	fs2, err := Mount(ctx, fs1.arr, NewTableLocker(table), "client2")
	if err != nil {
		t.Fatal(err)
	}
	fs1.cache.ttl = 20 * time.Millisecond
	fs2.cache.ttl = 20 * time.Millisecond

	if err := fs1.WriteFile(ctx, "/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// fs2 reads (and caches) v1.
	if got, err := fs2.ReadFile(ctx, "/f"); err != nil || string(got) != "v1" {
		t.Fatalf("fs2 initial read: %q %v", got, err)
	}
	// fs1 overwrites.
	f, err := fs1.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(ctx, []byte("v2"), 0); err != nil {
		t.Fatal(err)
	}
	// Within the TTL, fs2 may still see v1 (stale but permitted).
	if got, _ := fs2.ReadFile(ctx, "/f"); string(got) != "v1" && string(got) != "v2" {
		t.Fatalf("fs2 saw garbage %q", got)
	}
	// After the TTL, fs2 must see v2.
	time.Sleep(30 * time.Millisecond)
	if got, err := fs2.ReadFile(ctx, "/f"); err != nil || string(got) != "v2" {
		t.Fatalf("fs2 post-TTL read: %q %v", got, err)
	}
	// A mutating op on fs2 must see fresh state regardless of cache:
	// creating a name fs1 just created must fail with ErrExist.
	if err := fs1.WriteFile(ctx, "/race", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Create(ctx, "/race"); !errors.Is(err, ErrExist) {
		t.Fatalf("fs2 create over existing: %v (locked path must bypass cache)", err)
	}
}

// TestCacheSelfCoherence: a mount always reads its own writes, cached
// or not.
func TestCacheSelfCoherence(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	if err := fs.WriteFile(ctx, "/self", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(ctx, "/self"); string(got) != "one" {
		t.Fatalf("got %q", got)
	}
	f, err := fs.Open(ctx, "/self")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(ctx, []byte("two"), 0); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(ctx, "/self"); string(got) != "two" {
		t.Fatalf("after overwrite got %q", got)
	}
}

func TestRenameSameDir(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	if err := fs.WriteFile(ctx, "/old", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(ctx, "/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(ctx, "/old"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("old name still resolves: %v", err)
	}
	got, err := fs.ReadFile(ctx, "/new")
	if err != nil || string(got) != "payload" {
		t.Fatalf("new name: %q %v", got, err)
	}
}

func TestRenameAcrossDirs(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	if err := fs.MkdirAll(ctx, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll(ctx, "/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/a/f", []byte("move me")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(ctx, "/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ctx, "/b/g")
	if err != nil || string(got) != "move me" {
		t.Fatalf("moved file: %q %v", got, err)
	}
	ents, err := fs.ReadDir(ctx, "/a")
	if err != nil || len(ents) != 0 {
		t.Fatalf("/a entries after move: %v %v", ents, err)
	}
}

func TestRenameErrors(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	if err := fs.WriteFile(ctx, "/x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/y", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(ctx, "/missing", "/z"); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename missing: %v", err)
	}
	if err := fs.Rename(ctx, "/x", "/y"); !errors.Is(err, ErrExist) {
		t.Errorf("rename onto existing: %v", err)
	}
}

func TestFsckCleanVolume(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	if err := fs.MkdirAll(ctx, "/d1/d2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := fs.WriteFile(ctx, fmt.Sprintf("/d1/f%d", i), make([]byte, 2048)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Remove(ctx, "/d1/f3"); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Fsck(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean volume flagged: %s\nproblems: %v", rep, rep.Problems)
	}
	if rep.Files != 9 || rep.Dirs != 3 { // root + d1 + d2
		t.Fatalf("counts: %s", rep)
	}
}

func TestFsckDetectsLeak(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	if err := fs.WriteFile(ctx, "/f", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	// Corrupt: mark an unused block as allocated in group 0's bitmap.
	g := uint32(0)
	buf := make([]byte, fs.bs)
	if err := fs.arr.ReadBlocks(ctx, fs.sb.blockBitmapBlk(g), buf); err != nil {
		t.Fatal(err)
	}
	lo, hi := fs.sb.groupDataRange(g)
	victim := int64(-1)
	for bit := int64(0); bit < hi-lo; bit++ {
		if buf[bit/8]&(1<<(bit%8)) == 0 {
			buf[bit/8] |= 1 << (bit % 8)
			victim = lo + bit
			break
		}
	}
	if victim < 0 {
		t.Skip("group 0 full")
	}
	if err := fs.arr.WriteBlocks(ctx, fs.sb.blockBitmapBlk(g), buf); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Fsck(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LeakedBlocks) != 1 || rep.LeakedBlocks[0] != victim {
		t.Fatalf("leak not found: %s (want block %d)", rep, victim)
	}
}

func TestTruncateShrinkAndGrow(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 1024)
	data := make([]byte, 20*1024) // uses indirect blocks at 1 KB bs
	rand.New(rand.NewSource(5)).Read(data)
	if err := fs.WriteFile(ctx, "/t", data); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(ctx, "/t")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink below the direct-block boundary.
	if err := f.Truncate(ctx, 5000); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ctx, "/t")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:5000]) {
		t.Fatal("shrink corrupted retained prefix")
	}
	// Grow logically: tail reads as zeros.
	if err := f.Truncate(ctx, 8000); err != nil {
		t.Fatal(err)
	}
	got, err = fs.ReadFile(ctx, "/t")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8000 {
		t.Fatalf("size after grow = %d", len(got))
	}
	for i := 5000; i < 8000; i++ {
		if got[i] != 0 {
			t.Fatalf("grown tail not zero at %d", i)
		}
	}
	// Freed blocks must be reusable and the volume consistent.
	rep, err := fs.Fsck(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck after truncate: %s %v", rep, rep.Problems)
	}
}

func TestTruncateToZeroFreesEverything(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 1024)
	if err := fs.WriteFile(ctx, "/t", make([]byte, 30*1024)); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(ctx, "/t")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(ctx, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Fsck(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck: %s %v", rep, rep.Problems)
	}
	if size, _ := f.Size(ctx); size != 0 {
		t.Fatalf("size = %d", size)
	}
}

func TestRepairReleasesLeaks(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	if err := fs.WriteFile(ctx, "/keep", make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	// Inject a leaked block and a leaked inode behind the FS's back.
	buf := make([]byte, fs.bs)
	if err := fs.arr.ReadBlocks(ctx, fs.sb.blockBitmapBlk(0), buf); err != nil {
		t.Fatal(err)
	}
	lo, hi := fs.sb.groupDataRange(0)
	for bit := int64(0); bit < hi-lo; bit++ {
		if buf[bit/8]&(1<<(bit%8)) == 0 {
			buf[bit/8] |= 1 << (bit % 8)
			break
		}
	}
	if err := fs.arr.WriteBlocks(ctx, fs.sb.blockBitmapBlk(0), buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.arr.ReadBlocks(ctx, fs.sb.inodeBitmapBlk(1), buf); err != nil {
		t.Fatal(err)
	}
	buf[3] |= 1 << 1 // inode 25 of group 1, definitely unused
	if err := fs.arr.WriteBlocks(ctx, fs.sb.inodeBitmapBlk(1), buf); err != nil {
		t.Fatal(err)
	}

	rep, err := fs.Fsck(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("injected corruption not detected")
	}
	after, err := fs.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !after.OK() {
		t.Fatalf("repair left problems: %s %v", after, after.Problems)
	}
	// Data untouched.
	if _, err := fs.ReadFile(ctx, "/keep"); err != nil {
		t.Fatal(err)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	if err := fs.MkdirAll(ctx, "/a/b"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/top", "/a/f1", "/a/b/f2"} {
		if err := fs.WriteFile(ctx, p, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	var paths []string
	err := fs.Walk(ctx, "/", func(path string, info FileInfo) error {
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"/": true, "/top": true, "/a": true, "/a/f1": true, "/a/b": true, "/a/b/f2": true}
	if len(paths) != len(want) {
		t.Fatalf("walk visited %v, want %d entries", paths, len(want))
	}
	for _, p := range paths {
		if !want[p] {
			t.Fatalf("unexpected path %q", p)
		}
	}
}

func TestFileReaderWriterStreams(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 1024)
	f, err := fs.Create(ctx, "/stream")
	if err != nil {
		t.Fatal(err)
	}
	w := f.Writer(ctx, 0)
	var want []byte
	for i := 0; i < 8; i++ {
		chunk := bytes.Repeat([]byte{byte('a' + i)}, 700)
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
		want = append(want, chunk...)
	}
	r := f.Reader(ctx)
	got := make([]byte, 0, len(want))
	buf := make([]byte, 513) // odd size to exercise partial reads
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed %d bytes, want %d; content mismatch=%v", len(got), len(want), !bytes.Equal(got, want))
	}
}

func TestStatFSAccounting(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 512)
	initial, err := fs.StatFS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if initial.TotalBlocks <= 0 || initial.FreeBlocks > initial.TotalBlocks {
		t.Fatalf("bad stat %+v", initial)
	}
	// Root consumes one inode.
	if initial.TotalInodes-initial.FreeInodes != 1 {
		t.Fatalf("used inodes = %d, want 1 (root)", initial.TotalInodes-initial.FreeInodes)
	}
	// Warm the root directory (its first data block) so the deltas
	// below are purely the file's.
	if err := fs.WriteFile(ctx, "/warm", []byte("x")); err != nil {
		t.Fatal(err)
	}
	before, err := fs.StatFS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/f", make([]byte, 4*1024)); err != nil {
		t.Fatal(err)
	}
	after, err := fs.StatFS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.FreeBlocks != before.FreeBlocks-4 {
		t.Fatalf("free blocks %d -> %d, want -4", before.FreeBlocks, after.FreeBlocks)
	}
	if after.FreeInodes != before.FreeInodes-1 {
		t.Fatalf("free inodes %d -> %d, want -1", before.FreeInodes, after.FreeInodes)
	}
	if err := fs.Remove(ctx, "/f"); err != nil {
		t.Fatal(err)
	}
	final, err := fs.StatFS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if final.FreeBlocks != before.FreeBlocks || final.FreeInodes != before.FreeInodes {
		t.Fatalf("space not returned: %+v vs %+v", final, before)
	}
}
