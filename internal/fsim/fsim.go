// Package fsim is a block file system built on any raid.Array — the
// layer the Andrew benchmark (paper Figure 6) exercises. Its design
// follows the paper's architecture: each client mounts the shared
// single-I/O-space array through its own FS instance (its own CDD
// view), metadata is written through with no stale caching, and
// cross-client consistency comes from the CDD lock-group table —
// every mutating operation acquires its lock group atomically
// (all-or-nothing), which also makes deadlock impossible.
//
// The volume is divided into allocation groups (ext2-style block
// groups): each group has its own inode bitmap, block bitmap, and inode
// table, and owns a contiguous slice of the data area. Clients prefer
// the group derived from their identity, so concurrent clients allocate
// from disjoint metadata blocks and different disk regions — the
// paper's lock-group table then serializes only genuine conflicts.
//
// On-disk layout (all sizes in blocks):
//
//	0                      superblock
//	per group g:           inode bitmap, block bitmap, inode table
//	dataStart ..           file data (group g owns its slice)
package fsim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cdd"
	"repro/internal/raid"
	"repro/internal/vclock"
)

const (
	magic      = 0x52584653 // "RXFS"
	inodeSize  = 128
	maxNameLen = 59
	direntSize = 64
	numDirect  = 12
	// Lock-space layout: group allocator locks, then per-inode logical
	// locks, then leaf locks for inode-table-block read-modify-writes.
	lockGroupBase = 0
	lockInodeBase = 1 << 10
	lockITBBase   = 1 << 30
)

// Common errors.
var (
	ErrNotExist    = errors.New("fsim: file does not exist")
	ErrExist       = errors.New("fsim: file already exists")
	ErrNotDir      = errors.New("fsim: not a directory")
	ErrIsDir       = errors.New("fsim: is a directory")
	ErrNotEmpty    = errors.New("fsim: directory not empty")
	ErrNoSpace     = errors.New("fsim: no space left on device")
	ErrNoInodes    = errors.New("fsim: out of inodes")
	ErrNameTooLong = errors.New("fsim: name too long")
	ErrBadFS       = errors.New("fsim: not a fsim file system")
)

// Locker is the consistency service: atomic all-or-nothing acquisition
// of lock-range groups, as provided by the CDD lock-group table.
type Locker interface {
	// Lock blocks until the whole group is granted to owner.
	Lock(ctx context.Context, owner string, rs []cdd.Range) error
	// Unlock releases the group.
	Unlock(ctx context.Context, owner string, rs []cdd.Range) error
}

// TableLocker adapts a cdd.Table to Locker, retrying with a virtual- or
// real-time sleep. Charge, when non-nil, is invoked once per lock and
// unlock operation to account for the messaging cost of reaching the
// table's coordinator.
type TableLocker struct {
	T      *cdd.Table
	Retry  time.Duration
	Charge func(ctx context.Context)
}

// NewTableLocker wraps a lock table with a default retry interval.
func NewTableLocker(t *cdd.Table) *TableLocker {
	return &TableLocker{T: t, Retry: 500 * time.Microsecond}
}

// Lock implements Locker.
func (l *TableLocker) Lock(ctx context.Context, owner string, rs []cdd.Range) error {
	for {
		if l.Charge != nil {
			l.Charge(ctx)
		}
		if l.T.TryAcquire(owner, rs) {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if p, ok := vclock.From(ctx); ok {
			p.Sleep(l.Retry)
		} else {
			time.Sleep(l.Retry)
		}
	}
}

// Unlock implements Locker.
func (l *TableLocker) Unlock(ctx context.Context, owner string, rs []cdd.Range) error {
	if l.Charge != nil {
		l.Charge(ctx)
	}
	l.T.Release(owner, rs)
	return nil
}

// superblock describes the volume.
type superblock struct {
	Magic          uint32
	BlockSize      uint32
	Blocks         int64 // total logical blocks of the array
	Groups         uint32
	InodesPerGroup uint32
	GroupMetaLen   int64 // metadata blocks per group (2 bitmaps + table)
	DataStart      int64
	GroupSpan      int64 // data blocks owned by each group (last gets the tail)
}

func (sb *superblock) encode(buf []byte) {
	binary.BigEndian.PutUint32(buf[0:], sb.Magic)
	binary.BigEndian.PutUint32(buf[4:], sb.BlockSize)
	binary.BigEndian.PutUint64(buf[8:], uint64(sb.Blocks))
	binary.BigEndian.PutUint32(buf[16:], sb.Groups)
	binary.BigEndian.PutUint32(buf[20:], sb.InodesPerGroup)
	binary.BigEndian.PutUint64(buf[24:], uint64(sb.GroupMetaLen))
	binary.BigEndian.PutUint64(buf[32:], uint64(sb.DataStart))
	binary.BigEndian.PutUint64(buf[40:], uint64(sb.GroupSpan))
}

func (sb *superblock) decode(buf []byte) error {
	sb.Magic = binary.BigEndian.Uint32(buf[0:])
	if sb.Magic != magic {
		return ErrBadFS
	}
	sb.BlockSize = binary.BigEndian.Uint32(buf[4:])
	sb.Blocks = int64(binary.BigEndian.Uint64(buf[8:]))
	sb.Groups = binary.BigEndian.Uint32(buf[16:])
	sb.InodesPerGroup = binary.BigEndian.Uint32(buf[20:])
	sb.GroupMetaLen = int64(binary.BigEndian.Uint64(buf[24:]))
	sb.DataStart = int64(binary.BigEndian.Uint64(buf[32:]))
	sb.GroupSpan = int64(binary.BigEndian.Uint64(buf[40:]))
	return nil
}

// maxInodes is the volume-wide inode count.
func (sb *superblock) maxInodes() uint32 { return sb.Groups * sb.InodesPerGroup }

// inodeBitmapBlk, blockBitmapBlk, and inodeTableStart locate group g's
// metadata.
func (sb *superblock) inodeBitmapBlk(g uint32) int64 {
	return 1 + int64(g)*sb.GroupMetaLen
}
func (sb *superblock) blockBitmapBlk(g uint32) int64 {
	return 1 + int64(g)*sb.GroupMetaLen + 1
}
func (sb *superblock) inodeTableStart(g uint32) int64 {
	return 1 + int64(g)*sb.GroupMetaLen + 2
}

// groupDataRange reports the data blocks owned by group g.
func (sb *superblock) groupDataRange(g uint32) (lo, hi int64) {
	lo = sb.DataStart + int64(g)*sb.GroupSpan
	hi = lo + sb.GroupSpan
	if g == sb.Groups-1 {
		hi = sb.Blocks
	}
	return lo, hi
}

// groupOfBlock reports which group owns data block b.
func (sb *superblock) groupOfBlock(b int64) uint32 {
	g := uint32((b - sb.DataStart) / sb.GroupSpan)
	if g >= sb.Groups {
		g = sb.Groups - 1
	}
	return g
}

// FS is one client's mount of the shared volume.
type FS struct {
	arr   raid.Array
	bs    int
	sb    superblock
	lock  Locker
	owner string
	seq   atomic.Uint64
	cache *blockCache
	// prefGroup is this mount's preferred allocation group, derived
	// from the owner identity so concurrent clients spread out.
	prefGroup uint32
}

// Options configure Mkfs.
type Options struct {
	// MaxInodes bounds the number of files; defaults to 4096. Rounded
	// up to a multiple of Groups.
	MaxInodes int
	// Groups is the number of allocation groups; defaults to 8.
	Groups int
	// CacheBlocks sizes the per-mount block cache; 0 means the default
	// of 64 blocks, negative disables caching.
	CacheBlocks int
}

// newCache builds a cache per the option value.
func newCache(capBlocks int) *blockCache {
	if capBlocks < 0 {
		return nil
	}
	if capBlocks == 0 {
		capBlocks = 64
	}
	return newBlockCache(capBlocks)
}

// Mkfs formats the array and returns a mounted FS. The owner string
// identifies this client in the lock table.
func Mkfs(ctx context.Context, arr raid.Array, lk Locker, owner string, opts Options) (*FS, error) {
	bs := arr.BlockSize()
	if bs < 512 {
		return nil, fmt.Errorf("fsim: block size %d too small", bs)
	}
	groups := opts.Groups
	if groups <= 0 {
		groups = 8
	}
	maxInodes := opts.MaxInodes
	if maxInodes <= 0 {
		maxInodes = 4096
	}
	perGroup := (maxInodes + groups - 1) / groups
	if perGroup > bs*8 {
		perGroup = bs * 8 // one bitmap block per group
	}
	tableLen := (int64(perGroup)*inodeSize + int64(bs) - 1) / int64(bs)
	metaLen := 2 + tableLen
	dataStart := 1 + int64(groups)*metaLen
	blocks := arr.Blocks()
	if dataStart+int64(groups) > blocks {
		return nil, fmt.Errorf("fsim: volume too small (%d blocks, %d needed for metadata)", blocks, dataStart)
	}
	span := (blocks - dataStart) / int64(groups)
	if span*8 > int64(bs)*8 {
		// One bitmap block per group caps the span.
		return nil, fmt.Errorf("fsim: group span %d exceeds one bitmap block (%d bits); use more groups", span, bs*8)
	}
	sb := superblock{
		Magic:          magic,
		BlockSize:      uint32(bs),
		Blocks:         blocks,
		Groups:         uint32(groups),
		InodesPerGroup: uint32(perGroup),
		GroupMetaLen:   metaLen,
		DataStart:      dataStart,
		GroupSpan:      span,
	}
	fs := &FS{arr: arr, bs: bs, sb: sb, lock: lk, owner: owner,
		cache: newCache(opts.CacheBlocks), prefGroup: hashGroup(owner, uint32(groups))}

	// Zero all metadata blocks.
	zero := make([]byte, bs)
	for b := int64(1); b < dataStart; b++ {
		if err := arr.WriteBlocks(ctx, b, zero); err != nil {
			return nil, err
		}
	}
	// Write the superblock.
	buf := make([]byte, bs)
	sb.encode(buf)
	if err := arr.WriteBlocks(ctx, 0, buf); err != nil {
		return nil, err
	}
	// Create the root directory (inode 0, group 0).
	root := inode{Mode: modeDir, Nlink: 1}
	if err := fs.writeInodeRaw(ctx, 0, &root); err != nil {
		return nil, err
	}
	if err := fs.setInodeUsed(ctx, 0, true); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mount opens an existing volume with default options.
func Mount(ctx context.Context, arr raid.Array, lk Locker, owner string) (*FS, error) {
	return MountOptions(ctx, arr, lk, owner, Options{})
}

// MountOptions opens an existing volume with explicit cache sizing
// (Groups and MaxInodes come from the superblock and are ignored).
func MountOptions(ctx context.Context, arr raid.Array, lk Locker, owner string, opts Options) (*FS, error) {
	bs := arr.BlockSize()
	buf := make([]byte, bs)
	if err := arr.ReadBlocks(ctx, 0, buf); err != nil {
		return nil, err
	}
	var sb superblock
	if err := sb.decode(buf); err != nil {
		return nil, err
	}
	if int(sb.BlockSize) != bs {
		return nil, fmt.Errorf("fsim: superblock block size %d != array %d", sb.BlockSize, bs)
	}
	return &FS{arr: arr, bs: bs, sb: sb, lock: lk, owner: owner,
		cache: newCache(opts.CacheBlocks), prefGroup: hashGroup(owner, sb.Groups)}, nil
}

// hashGroup maps an owner string to a preferred allocation group.
func hashGroup(owner string, groups uint32) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(owner); i++ {
		h = (h ^ uint32(owner[i])) * 16777619
	}
	return h % groups
}

// Flush drains the underlying array's deferred redundancy updates.
func (fs *FS) Flush(ctx context.Context) error { return fs.arr.Flush(ctx) }

// BlockSize reports the volume block size.
func (fs *FS) BlockSize() int { return fs.bs }

// txOwner mints a unique owner for one lock transaction, so concurrent
// operations from the same mount exclude each other too.
func (fs *FS) txOwner() string {
	return fmt.Sprintf("%s#%d", fs.owner, fs.seq.Add(1))
}

// withLocks runs fn while atomically holding the given lock group. fn
// receives a context whose reads bypass the block cache, so decisions
// made under the locks always see fresh on-disk state.
func (fs *FS) withLocks(ctx context.Context, rs []cdd.Range, fn func(ctx context.Context) error) error {
	owner := fs.txOwner()
	if err := fs.lock.Lock(ctx, owner, rs); err != nil {
		return err
	}
	defer fs.lock.Unlock(ctx, owner, rs)
	return fn(withNoCache(ctx))
}

func lockForInode(ino uint32) cdd.Range {
	return cdd.Range{Start: lockInodeBase + uint64(ino), End: lockInodeBase + uint64(ino) + 1}
}

// lockForGroup protects group g's bitmaps (allocation and free).
func lockForGroup(g uint32) cdd.Range {
	return cdd.Range{Start: lockGroupBase + uint64(g), End: lockGroupBase + uint64(g) + 1}
}

// lockForTableBlock is the leaf lock serializing read-modify-writes of
// one inode-table block (several inodes share a physical block).
func lockForTableBlock(blk int64) cdd.Range {
	return cdd.Range{Start: lockITBBase + uint64(blk), End: lockITBBase + uint64(blk) + 1}
}
