package fsim

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/store"
)

// benchFS builds a file system over a pure-data RAID-x, so the
// benchmarks measure the FS code path cost (CPU + allocations).
func benchFS(b *testing.B, cacheBlocks int) *FS {
	b.Helper()
	devs := make([]raid.Dev, 4)
	for i := range devs {
		devs[i] = disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(4096, 4096), disk.DefaultModel())
	}
	arr, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	fs, err := Mkfs(context.Background(), arr, NewTableLocker(cdd.NewTable()), "bench",
		Options{MaxInodes: 8192, CacheBlocks: cacheBlocks})
	if err != nil {
		b.Fatal(err)
	}
	return fs
}

func BenchmarkCreateWriteRemove(b *testing.B) {
	fs := benchFS(b, 0)
	ctx := context.Background()
	data := make([]byte, 8<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("/f%d", i%512)
		if err := fs.WriteFile(ctx, name, data); err != nil {
			b.Fatal(err)
		}
		if err := fs.Remove(ctx, name); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(data)))
}

func BenchmarkReadFileCached(b *testing.B) {
	fs := benchFS(b, 64)
	ctx := context.Background()
	if err := fs.WriteFile(ctx, "/hot", make([]byte, 16<<10)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadFile(ctx, "/hot"); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(16 << 10)
}

func BenchmarkReadFileUncached(b *testing.B) {
	fs := benchFS(b, -1)
	ctx := context.Background()
	if err := fs.WriteFile(ctx, "/hot", make([]byte, 16<<10)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadFile(ctx, "/hot"); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(16 << 10)
}

func BenchmarkPathResolveDeep(b *testing.B) {
	fs := benchFS(b, 64)
	ctx := context.Background()
	if err := fs.MkdirAll(ctx, "/a/b/c/d/e"); err != nil {
		b.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/a/b/c/d/e/leaf", []byte("x")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Stat(ctx, "/a/b/c/d/e/leaf"); err != nil {
			b.Fatal(err)
		}
	}
}
