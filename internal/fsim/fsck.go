package fsim

import (
	"context"
	"fmt"

	"repro/internal/cdd"
)

// FsckReport summarizes a consistency check of the volume.
type FsckReport struct {
	// Files and Dirs count reachable objects.
	Files, Dirs int
	// UsedBlocks counts data blocks referenced by reachable inodes
	// (including indirect blocks).
	UsedBlocks int
	// LeakedBlocks are marked used in a bitmap but referenced by no
	// reachable inode.
	LeakedBlocks []int64
	// LeakedInodes are marked used in an inode bitmap but unreachable
	// from the root.
	LeakedInodes []uint32
	// Problems lists hard inconsistencies (cross-linked blocks, entries
	// pointing at free inodes, blocks marked free but in use).
	Problems []string
}

// OK reports whether the volume is fully consistent.
func (r *FsckReport) OK() bool {
	return len(r.LeakedBlocks) == 0 && len(r.LeakedInodes) == 0 && len(r.Problems) == 0
}

func (r *FsckReport) String() string {
	return fmt.Sprintf("fsck: %d files, %d dirs, %d blocks in use, %d leaked blocks, %d leaked inodes, %d problems",
		r.Files, r.Dirs, r.UsedBlocks, len(r.LeakedBlocks), len(r.LeakedInodes), len(r.Problems))
}

// Fsck walks the volume from the root and cross-checks every reachable
// inode and block against the allocation bitmaps. Run it on a quiescent
// volume (it takes no locks); the concurrency tests use it to prove the
// allocator never double-assigned or leaked under contention.
func (fs *FS) Fsck(ctx context.Context) (*FsckReport, error) {
	ctx = withNoCache(ctx)
	rep := &FsckReport{}
	blockOwner := map[int64]uint32{} // phys block -> inode
	inodeSeen := map[uint32]bool{}

	var walk func(ino uint32, path string) error
	walk = func(ino uint32, path string) error {
		if inodeSeen[ino] {
			rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d reachable twice (at %s)", ino, path))
			return nil
		}
		inodeSeen[ino] = true
		in, err := fs.readInode(ctx, ino)
		if err != nil {
			return err
		}
		switch in.Mode {
		case modeFile:
			rep.Files++
		case modeDir:
			rep.Dirs++
		default:
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: inode %d has mode %d", path, ino, in.Mode))
			return nil
		}
		blks, err := fs.fileBlocks(ctx, in)
		if err != nil {
			return err
		}
		for _, b := range blks {
			if b < fs.sb.DataStart || b >= fs.sb.Blocks {
				rep.Problems = append(rep.Problems, fmt.Sprintf("%s: block %d outside data area", path, b))
				continue
			}
			if owner, dup := blockOwner[b]; dup {
				rep.Problems = append(rep.Problems, fmt.Sprintf("%s: block %d cross-linked with inode %d", path, b, owner))
				continue
			}
			blockOwner[b] = ino
			rep.UsedBlocks++
		}
		if in.Mode != modeDir {
			return nil
		}
		data, err := fs.readDirData(ctx, in)
		if err != nil {
			return err
		}
		for i := 0; i < len(data)/direntSize; i++ {
			e, ok := entryAt(data, i)
			if !ok {
				continue
			}
			if e.Ino >= fs.sb.maxInodes() {
				rep.Problems = append(rep.Problems, fmt.Sprintf("%s/%s: inode %d out of range", path, e.Name, e.Ino))
				continue
			}
			if err := walk(e.Ino, path+"/"+e.Name); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0, ""); err != nil {
		return nil, err
	}

	// Cross-check bitmaps.
	buf := make([]byte, fs.bs)
	for g := uint32(0); g < fs.sb.Groups; g++ {
		// Inode bitmap vs reachability.
		if err := fs.bread(ctx, fs.sb.inodeBitmapBlk(g), buf); err != nil {
			return nil, err
		}
		for i := uint32(0); i < fs.sb.InodesPerGroup; i++ {
			ino := g*fs.sb.InodesPerGroup + i
			marked := buf[i/8]&(1<<(i%8)) != 0
			switch {
			case marked && !inodeSeen[ino]:
				rep.LeakedInodes = append(rep.LeakedInodes, ino)
			case !marked && inodeSeen[ino]:
				rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d reachable but marked free", ino))
			}
		}
		// Block bitmap vs references.
		if err := fs.bread(ctx, fs.sb.blockBitmapBlk(g), buf); err != nil {
			return nil, err
		}
		lo, hi := fs.sb.groupDataRange(g)
		for bit := int64(0); bit < hi-lo; bit++ {
			blk := lo + bit
			marked := buf[bit/8]&(1<<(bit%8)) != 0
			_, used := blockOwner[blk]
			switch {
			case marked && !used:
				rep.LeakedBlocks = append(rep.LeakedBlocks, blk)
			case !marked && used:
				rep.Problems = append(rep.Problems, fmt.Sprintf("block %d in use but marked free", blk))
			}
		}
	}
	return rep, nil
}

// Repair releases every leaked block and inode found by a fresh Fsck,
// taking the affected group locks. It returns the post-repair report.
// Hard problems (cross-links, reachable-but-free) are not auto-fixed.
func (fs *FS) Repair(ctx context.Context) (*FsckReport, error) {
	rep, err := fs.Fsck(ctx)
	if err != nil {
		return nil, err
	}
	// Group leaked blocks by allocation group.
	byGroup := map[uint32][]int64{}
	for _, b := range rep.LeakedBlocks {
		g := fs.sb.groupOfBlock(b)
		byGroup[g] = append(byGroup[g], b)
	}
	for g, blks := range byGroup {
		err := fs.withLocks(ctx, []cdd.Range{lockForGroup(g)}, func(ctx context.Context) error {
			return fs.freeBlocksInGroup(ctx, g, blks)
		})
		if err != nil {
			return nil, err
		}
	}
	for _, ino := range rep.LeakedInodes {
		g := ino / fs.sb.InodesPerGroup
		err := fs.withLocks(ctx, []cdd.Range{lockForGroup(g), lockForInode(ino)}, func(ctx context.Context) error {
			if err := fs.writeInode(ctx, ino, &inode{}); err != nil {
				return err
			}
			return fs.setInodeUsed(ctx, ino, false)
		})
		if err != nil {
			return nil, err
		}
	}
	return fs.Fsck(ctx)
}

// FSStat summarizes volume capacity and usage.
type FSStat struct {
	TotalBlocks, FreeBlocks int64
	TotalInodes, FreeInodes int64
	BlockSize               int
}

// StatFS scans the allocation bitmaps and reports capacity and free
// space (data blocks and inodes).
func (fs *FS) StatFS(ctx context.Context) (FSStat, error) {
	ctx = withNoCache(ctx)
	st := FSStat{BlockSize: fs.bs}
	buf := make([]byte, fs.bs)
	for g := uint32(0); g < fs.sb.Groups; g++ {
		lo, hi := fs.sb.groupDataRange(g)
		st.TotalBlocks += hi - lo
		if err := fs.bread(ctx, fs.sb.blockBitmapBlk(g), buf); err != nil {
			return st, err
		}
		for bit := int64(0); bit < hi-lo; bit++ {
			if buf[bit/8]&(1<<(bit%8)) == 0 {
				st.FreeBlocks++
			}
		}
		st.TotalInodes += int64(fs.sb.InodesPerGroup)
		if err := fs.bread(ctx, fs.sb.inodeBitmapBlk(g), buf); err != nil {
			return st, err
		}
		for i := uint32(0); i < fs.sb.InodesPerGroup; i++ {
			if buf[i/8]&(1<<(i%8)) == 0 {
				st.FreeInodes++
			}
		}
	}
	return st, nil
}
