package fsim

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cdd"
)

// Truncate shrinks (or logically grows) the file to size bytes. Growth
// just extends the size (reads of the new tail see zeros); shrinking
// releases whole blocks past the new end and zeroes the freed pointers.
func (f *File) Truncate(ctx context.Context, size int64) error {
	if size < 0 {
		return fmt.Errorf("fsim: negative size %d", size)
	}
	fs := f.fs
	// Discover the groups owning blocks that may be freed, then lock
	// them with the inode; re-validated implicitly because the inode
	// lock freezes the block list.
	in, err := fs.readInode(ctx, f.ino)
	if err != nil {
		return err
	}
	blks, err := fs.fileBlocks(ctx, in)
	if err != nil {
		return err
	}
	groups := map[uint32]bool{}
	for _, b := range blks {
		groups[fs.sb.groupOfBlock(b)] = true
	}
	sorted := make([]uint32, 0, len(groups))
	for g := range groups {
		sorted = append(sorted, g)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ranges := make([]cdd.Range, 0, len(sorted)+1)
	for _, g := range sorted {
		ranges = append(ranges, lockForGroup(g))
	}
	ranges = append(ranges, lockForInode(f.ino))

	return fs.withLocks(ctx, ranges, func(ctx context.Context) error {
		in, err := fs.readInode(ctx, f.ino)
		if err != nil {
			return err
		}
		if size >= int64(in.Size) {
			in.Size = uint64(size)
			return fs.writeInode(ctx, f.ino, in)
		}
		keep := (size + int64(fs.bs) - 1) / int64(fs.bs)
		// Zero the stale tail of a partially-kept final block, so a
		// later grow exposes zeros, not old data.
		if within := int(size % int64(fs.bs)); within != 0 {
			phys, err := fs.blockOf(ctx, in, keep-1)
			if err != nil {
				return err
			}
			if phys != 0 {
				buf := make([]byte, fs.bs)
				if err := fs.bread(ctx, phys, buf); err != nil {
					return err
				}
				for i := within; i < fs.bs; i++ {
					buf[i] = 0
				}
				if err := fs.bwrite(ctx, phys, buf); err != nil {
					return err
				}
			}
		}
		nblocks := (int64(in.Size) + int64(fs.bs) - 1) / int64(fs.bs)
		var freed []int64
		var indirectBuf []byte
		for idx := keep; idx < nblocks; idx++ {
			phys, err := fs.blockOf(ctx, in, idx)
			if err != nil {
				return err
			}
			if phys == 0 {
				continue
			}
			freed = append(freed, phys)
			if idx < numDirect {
				in.Direct[idx] = 0
				continue
			}
			if indirectBuf == nil {
				indirectBuf = make([]byte, fs.bs)
				if err := fs.bread(ctx, int64(in.Indirect), indirectBuf); err != nil {
					return err
				}
			}
			binary.BigEndian.PutUint64(indirectBuf[(idx-numDirect)*8:], 0)
		}
		// Drop the indirect block itself if nothing above numDirect
		// remains.
		if in.Indirect != 0 && keep <= numDirect {
			freed = append(freed, int64(in.Indirect))
			in.Indirect = 0
			indirectBuf = nil
		}
		if indirectBuf != nil {
			if err := fs.bwrite(ctx, int64(in.Indirect), indirectBuf); err != nil {
				return err
			}
		}
		// Free per group (all involved groups are locked).
		byGroup := map[uint32][]int64{}
		for _, b := range freed {
			g := fs.sb.groupOfBlock(b)
			if !groups[g] {
				return fmt.Errorf("fsim: truncate lock set missed group %d", g)
			}
			byGroup[g] = append(byGroup[g], b)
		}
		for g, bs := range byGroup {
			if err := fs.freeBlocksInGroup(ctx, g, bs); err != nil {
				return err
			}
		}
		in.Size = uint64(size)
		return fs.writeInode(ctx, f.ino, in)
	})
}

// Walk visits every reachable file and directory under root in
// depth-first order, calling fn with the full path and info. fn
// returning an error stops the walk.
func (fs *FS) Walk(ctx context.Context, root string, fn func(path string, info FileInfo) error) error {
	info, err := fs.Stat(ctx, root)
	if err != nil {
		return err
	}
	// Normalize: "/" walks the root without doubling slashes.
	base := root
	if base == "/" {
		base = ""
	}
	if err := fn(root, info); err != nil {
		return err
	}
	if !info.IsDir {
		return nil
	}
	ents, err := fs.ReadDir(ctx, root)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if err := fs.Walk(ctx, base+"/"+e.Name, fn); err != nil {
			return err
		}
	}
	return nil
}
