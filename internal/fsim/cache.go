package fsim

import (
	"context"
	"sync"
	"time"

	"repro/internal/vclock"
)

// blockCache is a per-mount write-through block cache, standing in for
// the client buffer cache every 1999 system had. Coherence policy
// (NFS-style close-to-open weakened to a TTL, like `actimeo`):
//
//   - Writes go through to the array and update the local copy, so a
//     client always sees its own writes immediately.
//   - Unlocked (optimistic) reads may serve cached blocks for up to TTL
//     after they were fetched; within that window they can be stale
//     with respect to *other* clients. That is exactly the weak read
//     consistency the FS design already tolerates, because every
//     mutating operation re-reads its metadata under the lock-group
//     table with the cache bypassed (see noCache / withLocks).
//
// Eviction is FIFO over a fixed number of blocks.
type blockCache struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration
	data  map[int64]*cacheEntry
	order []int64
}

type cacheEntry struct {
	data []byte
	// filledAt is the fill timestamp on the clock identified by virt;
	// entries filled on one clock never satisfy reads on the other.
	filledAt time.Duration
	virt     bool
}

const defaultCacheTTL = 2 * time.Second

func newBlockCache(capBlocks int) *blockCache {
	return &blockCache{cap: capBlocks, ttl: defaultCacheTTL, data: map[int64]*cacheEntry{}}
}

// clockOf samples the context's clock: virtual when a vclock process is
// attached, wall time otherwise.
func clockOf(ctx context.Context) (time.Duration, bool) {
	if p, ok := vclock.From(ctx); ok {
		return p.Now(), true
	}
	return time.Duration(time.Now().UnixNano()), false
}

func (c *blockCache) get(ctx context.Context, blk int64, dst []byte) bool {
	if c == nil {
		return false
	}
	now, virt := clockOf(ctx)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.data[blk]
	if !ok || e.virt != virt || now-e.filledAt > c.ttl {
		return false
	}
	copy(dst, e.data)
	return true
}

func (c *blockCache) put(ctx context.Context, blk int64, src []byte) {
	if c == nil {
		return
	}
	now, virt := clockOf(ctx)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.data[blk]; ok {
		copy(e.data, src)
		e.filledAt = now
		e.virt = virt
		return
	}
	for len(c.order) >= c.cap {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.data, victim)
	}
	cp := make([]byte, len(src))
	copy(cp, src)
	c.data[blk] = &cacheEntry{data: cp, filledAt: now, virt: virt}
	c.order = append(c.order, blk)
}

type noCacheKey struct{}

// noCache reports whether ctx demands fresh reads (inside lock-group
// critical sections).
func noCache(ctx context.Context) bool {
	v, _ := ctx.Value(noCacheKey{}).(bool)
	return v
}

// withNoCache marks ctx so reads bypass the block cache.
func withNoCache(ctx context.Context) context.Context {
	return context.WithValue(ctx, noCacheKey{}, true)
}

// bread reads one logical block, serving it from the cache when the
// context allows.
func (fs *FS) bread(ctx context.Context, blk int64, buf []byte) error {
	if !noCache(ctx) && fs.cache.get(ctx, blk, buf) {
		return nil
	}
	if err := fs.arr.ReadBlocks(ctx, blk, buf); err != nil {
		return err
	}
	fs.cache.put(ctx, blk, buf)
	return nil
}

// bwrite writes one logical block through the cache.
func (fs *FS) bwrite(ctx context.Context, blk int64, data []byte) error {
	if err := fs.arr.WriteBlocks(ctx, blk, data); err != nil {
		return err
	}
	fs.cache.put(ctx, blk, data)
	return nil
}
