package fsim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/cdd"
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string
	Ino   uint32
	Size  int64
	IsDir bool
}

// DirEntry is one directory record.
type DirEntry struct {
	Name string
	Ino  uint32
}

// splitPath normalizes a slash-separated absolute or relative path into
// components.
func splitPath(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" && p != "." {
			out = append(out, p)
		}
	}
	return out
}

// entryAt decodes the i-th directory record from raw dir data.
func entryAt(data []byte, i int) (DirEntry, bool) {
	rec := data[i*direntSize : (i+1)*direntSize]
	nameLen := int(rec[4])
	if nameLen == 0 {
		return DirEntry{}, false
	}
	return DirEntry{
		Ino:  binary.BigEndian.Uint32(rec[0:4]),
		Name: string(rec[5 : 5+nameLen]),
	}, true
}

func encodeEntry(rec []byte, e DirEntry) {
	for i := range rec {
		rec[i] = 0
	}
	binary.BigEndian.PutUint32(rec[0:4], e.Ino)
	rec[4] = byte(len(e.Name))
	copy(rec[5:], e.Name)
}

// readDirData loads a directory's raw records.
func (fs *FS) readDirData(ctx context.Context, in *inode) ([]byte, error) {
	data := make([]byte, in.Size)
	if _, err := fs.readData(ctx, in, 0, data); err != nil {
		return nil, err
	}
	return data, nil
}

// lookup scans directory din for name.
func (fs *FS) lookup(ctx context.Context, din *inode, name string) (uint32, bool, error) {
	data, err := fs.readDirData(ctx, din)
	if err != nil {
		return 0, false, err
	}
	for i := 0; i < len(data)/direntSize; i++ {
		if e, ok := entryAt(data, i); ok && e.Name == name {
			return e.Ino, true, nil
		}
	}
	return 0, false, nil
}

// resolve walks path to an inode number.
func (fs *FS) resolve(ctx context.Context, path string) (uint32, *inode, error) {
	ino := uint32(0)
	in, err := fs.readInode(ctx, ino)
	if err != nil {
		return 0, nil, err
	}
	for _, name := range splitPath(path) {
		if in.Mode != modeDir {
			return 0, nil, fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		child, ok, err := fs.lookup(ctx, in, name)
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			return 0, nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		ino = child
		if in, err = fs.readInode(ctx, ino); err != nil {
			return 0, nil, err
		}
	}
	return ino, in, nil
}

// resolveParent resolves everything but the last component.
func (fs *FS) resolveParent(ctx context.Context, path string) (uint32, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return 0, "", fmt.Errorf("fsim: path %q has no leaf", path)
	}
	leaf := parts[len(parts)-1]
	if len(leaf) > maxNameLen {
		return 0, "", fmt.Errorf("%w: %s", ErrNameTooLong, leaf)
	}
	dir := strings.Join(parts[:len(parts)-1], "/")
	ino, in, err := fs.resolve(ctx, dir)
	if err != nil {
		return 0, "", err
	}
	if in.Mode != modeDir {
		return 0, "", fmt.Errorf("%w: %s", ErrNotDir, dir)
	}
	return ino, leaf, nil
}

// addEntry writes a directory record into the first free slot of dir
// dino (held under locks by the caller), growing the directory file
// from group g as needed, and persists the directory inode.
func (fs *FS) addEntry(ctx context.Context, dino uint32, din *inode, e DirEntry, g uint32) error {
	data, err := fs.readDirData(ctx, din)
	if err != nil {
		return err
	}
	slot := len(data) / direntSize
	for i := 0; i < len(data)/direntSize; i++ {
		if _, ok := entryAt(data, i); !ok {
			slot = i
			break
		}
	}
	rec := make([]byte, direntSize)
	encodeEntry(rec, e)
	if err := fs.writeData(ctx, din, int64(slot)*direntSize, rec, g); err != nil {
		return err
	}
	return fs.writeInode(ctx, dino, din)
}

// removeEntry clears name's record in dir dino (caller holds locks).
func (fs *FS) removeEntry(ctx context.Context, dino uint32, din *inode, name string) error {
	data, err := fs.readDirData(ctx, din)
	if err != nil {
		return err
	}
	for i := 0; i < len(data)/direntSize; i++ {
		if e, ok := entryAt(data, i); ok && e.Name == name {
			rec := make([]byte, direntSize)
			// Clearing a slot never grows the directory, so no
			// allocation group is consulted.
			if err := fs.writeData(ctx, din, int64(i)*direntSize, rec, 0); err != nil {
				return err
			}
			return fs.writeInode(ctx, dino, din)
		}
	}
	return fmt.Errorf("%w: %s", ErrNotExist, name)
}

// create allocates an inode of the given mode and links it under path.
// Allocation prefers this mount's group and falls over to the next
// group when one fills up.
func (fs *FS) create(ctx context.Context, path string, mode uint16) (uint32, error) {
	pino, leaf, err := fs.resolveParent(ctx, path)
	if err != nil {
		return 0, err
	}
	var ino uint32
	lastErr := error(ErrNoSpace)
	for attempt := uint32(0); attempt < fs.sb.Groups; attempt++ {
		g := (fs.prefGroup + attempt) % fs.sb.Groups
		err := fs.withLocks(ctx, []cdd.Range{lockForGroup(g), lockForInode(pino)}, func(ctx context.Context) error {
			din, err := fs.readInode(ctx, pino)
			if err != nil {
				return err
			}
			if din.Mode != modeDir {
				return fmt.Errorf("%w: parent of %s", ErrNotDir, path)
			}
			if _, exists, err := fs.lookup(ctx, din, leaf); err != nil {
				return err
			} else if exists {
				return fmt.Errorf("%w: %s", ErrExist, path)
			}
			ino, err = fs.allocInode(ctx, g)
			if err != nil {
				return err
			}
			child := inode{Mode: mode, Nlink: 1}
			if err := fs.writeInode(ctx, ino, &child); err != nil {
				return err
			}
			if err := fs.addEntry(ctx, pino, din, DirEntry{Name: leaf, Ino: ino}, g); err != nil {
				// Roll back the inode claim so nothing leaks.
				_ = fs.setInodeUsed(ctx, ino, false)
				return err
			}
			return nil
		})
		if errors.Is(err, ErrNoInodes) || errors.Is(err, ErrNoSpace) {
			lastErr = err
			continue
		}
		return ino, err
	}
	return 0, lastErr
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(ctx context.Context, path string) error {
	_, err := fs.create(ctx, path, modeDir)
	return err
}

// MkdirAll creates a directory and any missing ancestors.
func (fs *FS) MkdirAll(ctx context.Context, path string) error {
	parts := splitPath(path)
	for i := 1; i <= len(parts); i++ {
		err := fs.Mkdir(ctx, strings.Join(parts[:i], "/"))
		if err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Create makes a new empty file and returns a handle.
func (fs *FS) Create(ctx context.Context, path string) (*File, error) {
	ino, err := fs.create(ctx, path, modeFile)
	if err != nil {
		return nil, err
	}
	return &File{fs: fs, ino: ino}, nil
}

// Open returns a handle to an existing file.
func (fs *FS) Open(ctx context.Context, path string) (*File, error) {
	ino, in, err := fs.resolve(ctx, path)
	if err != nil {
		return nil, err
	}
	if in.Mode == modeDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	return &File{fs: fs, ino: ino}, nil
}

// Stat describes the object at path.
func (fs *FS) Stat(ctx context.Context, path string) (FileInfo, error) {
	ino, in, err := fs.resolve(ctx, path)
	if err != nil {
		return FileInfo{}, err
	}
	parts := splitPath(path)
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return FileInfo{Name: name, Ino: ino, Size: int64(in.Size), IsDir: in.Mode == modeDir}, nil
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(ctx context.Context, path string) ([]DirEntry, error) {
	_, in, err := fs.resolve(ctx, path)
	if err != nil {
		return nil, err
	}
	if in.Mode != modeDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	data, err := fs.readDirData(ctx, in)
	if err != nil {
		return nil, err
	}
	var out []DirEntry
	for i := 0; i < len(data)/direntSize; i++ {
		if e, ok := entryAt(data, i); ok {
			out = append(out, e)
		}
	}
	return out, nil
}

// Remove deletes a file or an empty directory. The lock group covers
// the parent and child inodes plus every allocation group that will
// receive freed blocks; the group set is computed optimistically and
// re-verified under the locks, retrying if it changed.
func (fs *FS) Remove(ctx context.Context, path string) error {
	pino, leaf, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	for retry := 0; ; retry++ {
		din, err := fs.readInode(ctx, pino)
		if err != nil {
			return err
		}
		cino, ok, err := fs.lookup(ctx, din, leaf)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		child, err := fs.readInode(ctx, cino)
		if err != nil {
			return err
		}
		blks, err := fs.fileBlocks(ctx, child)
		if err != nil {
			return err
		}
		groups := fs.groupsOf(cino, blks)
		ranges := make([]cdd.Range, 0, len(groups)+2)
		for _, g := range groups {
			ranges = append(ranges, lockForGroup(g))
		}
		ranges = append(ranges, lockForInode(pino), lockForInode(cino))

		stale := false
		err = fs.withLocks(ctx, ranges, func(ctx context.Context) error {
			din, err := fs.readInode(ctx, pino)
			if err != nil {
				return err
			}
			got, ok, err := fs.lookup(ctx, din, leaf)
			if err != nil {
				return err
			}
			if !ok || got != cino {
				return fmt.Errorf("%w: %s (changed concurrently)", ErrNotExist, path)
			}
			child, err := fs.readInode(ctx, cino)
			if err != nil {
				return err
			}
			if child.Mode == modeDir {
				data, err := fs.readDirData(ctx, child)
				if err != nil {
					return err
				}
				for i := 0; i < len(data)/direntSize; i++ {
					if _, used := entryAt(data, i); used {
						return fmt.Errorf("%w: %s", ErrNotEmpty, path)
					}
				}
			}
			blks, err := fs.fileBlocks(ctx, child)
			if err != nil {
				return err
			}
			if !sameGroups(groups, fs.groupsOf(cino, blks)) {
				stale = true // file grew into new groups; retry with them
				return nil
			}
			for _, g := range groups {
				if err := fs.freeBlocksInGroup(ctx, g, blks); err != nil {
					return err
				}
			}
			if err := fs.writeInode(ctx, cino, &inode{}); err != nil {
				return err
			}
			if err := fs.setInodeUsed(ctx, cino, false); err != nil {
				return err
			}
			return fs.removeEntry(ctx, pino, din, leaf)
		})
		if err != nil || !stale {
			return err
		}
		if retry > 16 {
			return fmt.Errorf("fsim: remove %s: lock set kept changing", path)
		}
	}
}

// groupsOf lists, sorted, every allocation group touched by freeing the
// inode and blocks.
func (fs *FS) groupsOf(ino uint32, blks []int64) []uint32 {
	seen := map[uint32]bool{ino / fs.sb.InodesPerGroup: true}
	for _, b := range blks {
		seen[fs.sb.groupOfBlock(b)] = true
	}
	out := make([]uint32, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sameGroups(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// File is an open file handle. Handles are stateless (offsets are
// explicit), so they are safe to share.
type File struct {
	fs  *FS
	ino uint32
}

// Ino reports the file's inode number.
func (f *File) Ino() uint32 { return f.ino }

// Size reports the current file size.
func (f *File) Size(ctx context.Context) (int64, error) {
	in, err := f.fs.readInode(ctx, f.ino)
	if err != nil {
		return 0, err
	}
	return int64(in.Size), nil
}

// ReadAt fills p from offset off, returning the bytes read (short reads
// happen at end of file).
func (f *File) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	in, err := f.fs.readInode(ctx, f.ino)
	if err != nil {
		return 0, err
	}
	return f.fs.readData(ctx, in, off, p)
}

// WriteAt stores p at offset off, growing the file as needed. The
// inode and an allocation group are locked as one atomic group for the
// duration; a full group falls over to the next.
func (f *File) WriteAt(ctx context.Context, p []byte, off int64) error {
	return f.write(ctx, p, func(in *inode) int64 { return off })
}

// Append writes p at the end of the file.
func (f *File) Append(ctx context.Context, p []byte) error {
	return f.write(ctx, p, func(in *inode) int64 { return int64(in.Size) })
}

func (f *File) write(ctx context.Context, p []byte, offOf func(*inode) int64) error {
	fs := f.fs
	lastErr := error(ErrNoSpace)
	for attempt := uint32(0); attempt < fs.sb.Groups; attempt++ {
		g := (fs.prefGroup + attempt) % fs.sb.Groups
		err := fs.withLocks(ctx, []cdd.Range{lockForGroup(g), lockForInode(f.ino)}, func(ctx context.Context) error {
			in, err := fs.readInode(ctx, f.ino)
			if err != nil {
				return err
			}
			if err := fs.writeData(ctx, in, offOf(in), p, g); err != nil {
				return err
			}
			return fs.writeInode(ctx, f.ino, in)
		})
		if errors.Is(err, ErrNoSpace) {
			lastErr = err
			continue
		}
		return err
	}
	return lastErr
}

// WriteFile creates (or truncates nothing — files are write-once in the
// benchmark usage) a file with the given contents.
func (fs *FS) WriteFile(ctx context.Context, path string, data []byte) error {
	f, err := fs.Create(ctx, path)
	if err != nil {
		return err
	}
	return f.WriteAt(ctx, data, 0)
}

// ReadFile returns a file's full contents.
func (fs *FS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	f, err := fs.Open(ctx, path)
	if err != nil {
		return nil, err
	}
	size, err := f.Size(ctx)
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	n, err := f.ReadAt(ctx, data, 0)
	return data[:n], err
}

// Reader returns a sequential io.Reader over the file's contents. The
// context is captured for the reads.
func (f *File) Reader(ctx context.Context) *FileReader {
	return &FileReader{f: f, ctx: ctx}
}

// FileReader streams a file sequentially.
type FileReader struct {
	f   *File
	ctx context.Context
	off int64
}

// Read implements io.Reader.
func (r *FileReader) Read(p []byte) (int, error) {
	n, err := r.f.ReadAt(r.ctx, p, r.off)
	r.off += int64(n)
	if err != nil {
		return n, err
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Writer returns a sequential appender implementing io.Writer, starting
// at the given offset (use the current size to append).
func (f *File) Writer(ctx context.Context, off int64) *FileWriter {
	return &FileWriter{f: f, ctx: ctx, off: off}
}

// FileWriter streams sequential writes into a file.
type FileWriter struct {
	f   *File
	ctx context.Context
	off int64
}

// Write implements io.Writer.
func (w *FileWriter) Write(p []byte) (int, error) {
	if err := w.f.WriteAt(w.ctx, p, w.off); err != nil {
		return 0, err
	}
	w.off += int64(len(p))
	return len(p), nil
}
