package fsim

import (
	"context"
	"fmt"

	"repro/internal/cdd"
)

// Rename moves oldPath to newPath (which must not exist). Both parent
// directories, locked as one atomic group, are re-validated under the
// locks; the child inode itself is untouched, so the operation is a
// pure directory-entry move.
func (fs *FS) Rename(ctx context.Context, oldPath, newPath string) error {
	opino, oleaf, err := fs.resolveParent(ctx, oldPath)
	if err != nil {
		return err
	}
	npino, nleaf, err := fs.resolveParent(ctx, newPath)
	if err != nil {
		return err
	}
	// Growth of the destination directory may allocate; include this
	// mount's preferred group. Lock the two parents (deduplicated).
	ranges := []cdd.Range{lockForGroup(fs.prefGroup), lockForInode(opino)}
	if npino != opino {
		ranges = append(ranges, lockForInode(npino))
	}
	return fs.withLocks(ctx, ranges, func(ctx context.Context) error {
		odin, err := fs.readInode(ctx, opino)
		if err != nil {
			return err
		}
		cino, ok, err := fs.lookup(ctx, odin, oleaf)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: %s", ErrNotExist, oldPath)
		}
		ndin := odin
		if npino != opino {
			if ndin, err = fs.readInode(ctx, npino); err != nil {
				return err
			}
			if ndin.Mode != modeDir {
				return fmt.Errorf("%w: parent of %s", ErrNotDir, newPath)
			}
		}
		if _, exists, err := fs.lookup(ctx, ndin, nleaf); err != nil {
			return err
		} else if exists {
			return fmt.Errorf("%w: %s", ErrExist, newPath)
		}
		// Insert the new entry first, then clear the old one; a crash
		// between the two leaves an extra link rather than a lost file.
		if err := fs.addEntry(ctx, npino, ndin, DirEntry{Name: nleaf, Ino: cino}, fs.prefGroup); err != nil {
			return err
		}
		if npino == opino {
			// Re-read: addEntry may have grown the directory data.
			if odin, err = fs.readInode(ctx, opino); err != nil {
				return err
			}
		}
		return fs.removeEntry(ctx, opino, odin, oleaf)
	})
}
