package fsim

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/cdd"
)

// Inode modes.
const (
	modeFree uint16 = 0
	modeFile uint16 = 1
	modeDir  uint16 = 2
)

// inode is the 128-byte on-disk inode.
type inode struct {
	Mode     uint16
	Nlink    uint16
	Size     uint64
	Direct   [numDirect]uint64
	Indirect uint64
}

func (in *inode) encode(buf []byte) {
	binary.BigEndian.PutUint16(buf[0:], in.Mode)
	binary.BigEndian.PutUint16(buf[2:], in.Nlink)
	binary.BigEndian.PutUint64(buf[4:], in.Size)
	for i, d := range in.Direct {
		binary.BigEndian.PutUint64(buf[12+8*i:], d)
	}
	binary.BigEndian.PutUint64(buf[12+8*numDirect:], in.Indirect)
}

func (in *inode) decode(buf []byte) {
	in.Mode = binary.BigEndian.Uint16(buf[0:])
	in.Nlink = binary.BigEndian.Uint16(buf[2:])
	in.Size = binary.BigEndian.Uint64(buf[4:])
	for i := range in.Direct {
		in.Direct[i] = binary.BigEndian.Uint64(buf[12+8*i:])
	}
	in.Indirect = binary.BigEndian.Uint64(buf[12+8*numDirect:])
}

// inodeLoc reports the block and in-block offset of inode ino within
// its group's inode table.
func (fs *FS) inodeLoc(ino uint32) (blk int64, off int) {
	g := ino / fs.sb.InodesPerGroup
	within := ino % fs.sb.InodesPerGroup
	per := fs.bs / inodeSize
	return fs.sb.inodeTableStart(g) + int64(within)/int64(per), (int(within) % per) * inodeSize
}

// readInode loads inode ino.
func (fs *FS) readInode(ctx context.Context, ino uint32) (*inode, error) {
	if ino >= fs.sb.maxInodes() {
		return nil, fmt.Errorf("fsim: inode %d out of range", ino)
	}
	blk, off := fs.inodeLoc(ino)
	buf := make([]byte, fs.bs)
	if err := fs.bread(ctx, blk, buf); err != nil {
		return nil, err
	}
	var in inode
	in.decode(buf[off : off+inodeSize])
	return &in, nil
}

// writeInode stores inode ino. Several inodes share one table block, so
// the read-modify-write runs under a leaf lock on that block. Leaf
// locks are never held while acquiring other locks, so they cannot
// participate in a deadlock cycle.
func (fs *FS) writeInode(ctx context.Context, ino uint32, in *inode) error {
	blk, _ := fs.inodeLoc(ino)
	return fs.withLocks(ctx, []cdd.Range{lockForTableBlock(blk)}, func(ctx context.Context) error {
		return fs.writeInodeRaw(ctx, ino, in)
	})
}

// writeInodeRaw is writeInode without the leaf lock (Mkfs, before any
// concurrency exists).
func (fs *FS) writeInodeRaw(ctx context.Context, ino uint32, in *inode) error {
	blk, off := fs.inodeLoc(ino)
	buf := make([]byte, fs.bs)
	if err := fs.bread(ctx, blk, buf); err != nil {
		return err
	}
	in.encode(buf[off : off+inodeSize])
	return fs.bwrite(ctx, blk, buf)
}

// --- bitmaps (callers hold the owning group's lock) ---

// setInodeUsed flips inode ino's bit in its group's inode bitmap.
func (fs *FS) setInodeUsed(ctx context.Context, ino uint32, used bool) error {
	g := ino / fs.sb.InodesPerGroup
	within := ino % fs.sb.InodesPerGroup
	bm := fs.sb.inodeBitmapBlk(g)
	buf := make([]byte, fs.bs)
	if err := fs.bread(ctx, bm, buf); err != nil {
		return err
	}
	if used {
		buf[within/8] |= 1 << (within % 8)
	} else {
		buf[within/8] &^= 1 << (within % 8)
	}
	return fs.bwrite(ctx, bm, buf)
}

// allocInode claims a free inode in group g.
func (fs *FS) allocInode(ctx context.Context, g uint32) (uint32, error) {
	bm := fs.sb.inodeBitmapBlk(g)
	buf := make([]byte, fs.bs)
	if err := fs.bread(ctx, bm, buf); err != nil {
		return 0, err
	}
	for i := uint32(0); i < fs.sb.InodesPerGroup; i++ {
		if buf[i/8]&(1<<(i%8)) == 0 {
			buf[i/8] |= 1 << (i % 8)
			if err := fs.bwrite(ctx, bm, buf); err != nil {
				return 0, err
			}
			return g*fs.sb.InodesPerGroup + i, nil
		}
	}
	return 0, ErrNoInodes
}

// allocBlocks claims count free data blocks from group g.
func (fs *FS) allocBlocks(ctx context.Context, g uint32, count int) ([]int64, error) {
	lo, hi := fs.sb.groupDataRange(g)
	bm := fs.sb.blockBitmapBlk(g)
	buf := make([]byte, fs.bs)
	if err := fs.bread(ctx, bm, buf); err != nil {
		return nil, err
	}
	out := make([]int64, 0, count)
	for bit := int64(0); bit < hi-lo && len(out) < count; bit++ {
		if buf[bit/8]&(1<<(bit%8)) == 0 {
			buf[bit/8] |= 1 << (bit % 8)
			out = append(out, lo+bit)
		}
	}
	if len(out) < count {
		return nil, ErrNoSpace // nothing written back: claim rolled back
	}
	if err := fs.bwrite(ctx, bm, buf); err != nil {
		return nil, err
	}
	return out, nil
}

// freeBlocksInGroup releases the subset of blks owned by group g.
func (fs *FS) freeBlocksInGroup(ctx context.Context, g uint32, blks []int64) error {
	lo, hi := fs.sb.groupDataRange(g)
	bm := fs.sb.blockBitmapBlk(g)
	buf := make([]byte, fs.bs)
	if err := fs.bread(ctx, bm, buf); err != nil {
		return err
	}
	for _, b := range blks {
		if b < lo || b >= hi {
			continue
		}
		bit := b - lo
		buf[bit/8] &^= 1 << (bit % 8)
	}
	return fs.bwrite(ctx, bm, buf)
}

// ptrsPerBlock is the fanout of the indirect block.
func (fs *FS) ptrsPerBlock() int { return fs.bs / 8 }

// maxFileBlocks is the largest file in blocks.
func (fs *FS) maxFileBlocks() int64 { return numDirect + int64(fs.ptrsPerBlock()) }

// blockOf resolves file-relative block idx of an inode to a physical
// block, returning 0 if unallocated.
func (fs *FS) blockOf(ctx context.Context, in *inode, idx int64) (int64, error) {
	if idx < numDirect {
		return int64(in.Direct[idx]), nil
	}
	idx -= numDirect
	if idx >= int64(fs.ptrsPerBlock()) || in.Indirect == 0 {
		return 0, nil
	}
	buf := make([]byte, fs.bs)
	if err := fs.bread(ctx, int64(in.Indirect), buf); err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(buf[idx*8:])), nil
}

// mapBlocks ensures file blocks [0, want) are allocated, claiming new
// blocks from group g as needed. Caller holds the inode lock and group
// g's lock.
func (fs *FS) mapBlocks(ctx context.Context, in *inode, want int64, g uint32) error {
	if want > fs.maxFileBlocks() {
		return fmt.Errorf("fsim: file larger than %d blocks", fs.maxFileBlocks())
	}
	var missing int64
	for idx := int64(0); idx < want; idx++ {
		b, err := fs.blockOf(ctx, in, idx)
		if err != nil {
			return err
		}
		if b == 0 {
			missing++
		}
	}
	needIndirect := want > numDirect && in.Indirect == 0
	if missing == 0 && !needIndirect {
		return nil
	}
	n := int(missing)
	if needIndirect {
		n++
	}
	blks, err := fs.allocBlocks(ctx, g, n)
	if err != nil {
		return err
	}
	next := 0
	var indirectBuf []byte
	if needIndirect {
		in.Indirect = uint64(blks[next])
		next++
		indirectBuf = make([]byte, fs.bs)
	} else if want > numDirect && in.Indirect != 0 {
		indirectBuf = make([]byte, fs.bs)
		if err := fs.bread(ctx, int64(in.Indirect), indirectBuf); err != nil {
			return err
		}
	}
	for idx := int64(0); idx < want; idx++ {
		if idx < numDirect {
			if in.Direct[idx] == 0 {
				in.Direct[idx] = uint64(blks[next])
				next++
			}
			continue
		}
		off := (idx - numDirect) * 8
		if binary.BigEndian.Uint64(indirectBuf[off:]) == 0 {
			binary.BigEndian.PutUint64(indirectBuf[off:], uint64(blks[next]))
			next++
		}
	}
	if indirectBuf != nil {
		if err := fs.bwrite(ctx, int64(in.Indirect), indirectBuf); err != nil {
			return err
		}
	}
	return nil
}

// fileBlocks lists the allocated physical blocks of an inode in order.
func (fs *FS) fileBlocks(ctx context.Context, in *inode) ([]int64, error) {
	nblocks := (int64(in.Size) + int64(fs.bs) - 1) / int64(fs.bs)
	out := make([]int64, 0, nblocks)
	for idx := int64(0); idx < nblocks; idx++ {
		b, err := fs.blockOf(ctx, in, idx)
		if err != nil {
			return nil, err
		}
		if b != 0 {
			out = append(out, b)
		}
	}
	if in.Indirect != 0 {
		out = append(out, int64(in.Indirect))
	}
	return out, nil
}

// readData copies [off, off+len(p)) of the inode's data into p.
func (fs *FS) readData(ctx context.Context, in *inode, off int64, p []byte) (int, error) {
	size := int64(in.Size)
	if off >= size {
		return 0, nil
	}
	if off+int64(len(p)) > size {
		p = p[:size-off]
	}
	total := 0
	buf := make([]byte, fs.bs)
	for len(p) > 0 {
		idx := off / int64(fs.bs)
		within := int(off % int64(fs.bs))
		n := fs.bs - within
		if n > len(p) {
			n = len(p)
		}
		phys, err := fs.blockOf(ctx, in, idx)
		if err != nil {
			return total, err
		}
		if phys == 0 {
			for i := 0; i < n; i++ {
				p[i] = 0 // hole
			}
		} else {
			if err := fs.bread(ctx, phys, buf); err != nil {
				return total, err
			}
			copy(p[:n], buf[within:within+n])
		}
		p = p[n:]
		off += int64(n)
		total += n
	}
	return total, nil
}

// writeData stores p at [off, off+len(p)), growing the file with
// blocks from group g. Caller must hold the inode and group locks; the
// inode is updated in memory and must be written back by the caller.
func (fs *FS) writeData(ctx context.Context, in *inode, off int64, p []byte, g uint32) error {
	end := off + int64(len(p))
	want := (end + int64(fs.bs) - 1) / int64(fs.bs)
	if err := fs.mapBlocks(ctx, in, want, g); err != nil {
		return err
	}
	buf := make([]byte, fs.bs)
	for len(p) > 0 {
		idx := off / int64(fs.bs)
		within := int(off % int64(fs.bs))
		n := fs.bs - within
		if n > len(p) {
			n = len(p)
		}
		phys, err := fs.blockOf(ctx, in, idx)
		if err != nil {
			return err
		}
		if n == fs.bs {
			if err := fs.bwrite(ctx, phys, p[:n]); err != nil {
				return err
			}
		} else {
			// Partial block: read-modify-write.
			if err := fs.bread(ctx, phys, buf); err != nil {
				return err
			}
			copy(buf[within:], p[:n])
			if err := fs.bwrite(ctx, phys, buf); err != nil {
				return err
			}
		}
		p = p[n:]
		off += int64(n)
	}
	if uint64(end) > in.Size {
		in.Size = uint64(end)
	}
	return nil
}
