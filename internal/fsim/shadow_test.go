package fsim

// Shadow-model tests: drive the file system with randomized operation
// sequences and compare against a trivial in-memory model after every
// step, sequentially and then with concurrent simulated clients.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/store"
	"repro/internal/vclock"
)

// shadowFS is the reference model: paths to contents, dirs as a set.
type shadowFS struct {
	files map[string][]byte
	dirs  map[string]bool
}

func newShadow() *shadowFS {
	return &shadowFS{files: map[string][]byte{}, dirs: map[string]bool{"": true}}
}

func parent(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return ""
}

// TestShadowModelSequential runs 500 random operations against fs and
// the model.
func TestShadowModelSequential(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t, 1024, 2048)
	sh := newShadow()
	rng := rand.New(rand.NewSource(99))

	names := []string{"/a", "/b", "/a/x", "/a/y", "/b/z", "/a/x/deep", "/c"}
	randName := func() string { return names[rng.Intn(len(names))] }

	for op := 0; op < 500; op++ {
		name := randName()
		switch rng.Intn(5) {
		case 0: // mkdir
			err := fs.Mkdir(ctx, name)
			_, fileEx := sh.files[name]
			parentOK := sh.dirs[parent(name)]
			if parentOK && !fileEx && !sh.dirs[name] {
				if err != nil {
					t.Fatalf("op %d mkdir %s: %v", op, name, err)
				}
				sh.dirs[name] = true
			} else if err == nil {
				t.Fatalf("op %d mkdir %s succeeded, model says no", op, name)
			}
		case 1: // write file (create or error)
			data := make([]byte, rng.Intn(3000))
			rng.Read(data)
			err := fs.WriteFile(ctx, name, data)
			_, fileEx := sh.files[name]
			parentOK := sh.dirs[parent(name)]
			if parentOK && !fileEx && !sh.dirs[name] {
				if err != nil {
					t.Fatalf("op %d create %s: %v", op, name, err)
				}
				sh.files[name] = data
			} else if err == nil {
				t.Fatalf("op %d create %s succeeded, model says no", op, name)
			}
		case 2: // read file
			got, err := fs.ReadFile(ctx, name)
			want, ok := sh.files[name]
			if ok {
				if err != nil {
					t.Fatalf("op %d read %s: %v", op, name, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("op %d read %s: content mismatch (%d vs %d bytes)", op, name, len(got), len(want))
				}
			} else if err == nil {
				t.Fatalf("op %d read %s succeeded, model says missing", op, name)
			}
		case 3: // remove
			err := fs.Remove(ctx, name)
			if _, ok := sh.files[name]; ok {
				if err != nil {
					t.Fatalf("op %d remove file %s: %v", op, name, err)
				}
				delete(sh.files, name)
			} else if sh.dirs[name] {
				empty := true
				for f := range sh.files {
					if parent(f) == name {
						empty = false
					}
				}
				for d := range sh.dirs {
					if d != "" && parent(d) == name {
						empty = false
					}
				}
				if empty {
					if err != nil {
						t.Fatalf("op %d remove dir %s: %v", op, name, err)
					}
					delete(sh.dirs, name)
				} else if !errors.Is(err, ErrNotEmpty) {
					t.Fatalf("op %d remove non-empty %s: %v", op, name, err)
				}
			} else if err == nil {
				t.Fatalf("op %d remove %s succeeded, model says missing", op, name)
			}
		case 4: // readdir of a random dir
			var dirs []string
			for d := range sh.dirs {
				dirs = append(dirs, d)
			}
			sort.Strings(dirs)
			d := dirs[rng.Intn(len(dirs))]
			ents, err := fs.ReadDir(ctx, "/"+d)
			if err != nil {
				t.Fatalf("op %d readdir %s: %v", op, d, err)
			}
			want := map[string]bool{}
			for f := range sh.files {
				if parent(f) == d {
					want[f[len(d)+1:]] = true
				}
			}
			for dd := range sh.dirs {
				if dd != "" && parent(dd) == d {
					want[dd[len(d)+1:]] = true
				}
			}
			if len(ents) != len(want) {
				t.Fatalf("op %d readdir %s: %d entries, want %d", op, d, len(ents), len(want))
			}
			for _, e := range ents {
				if !want[e.Name] {
					t.Fatalf("op %d readdir %s: unexpected entry %q", op, d, e.Name)
				}
			}
		}
	}
}

// TestConcurrentClientsUnderVClock runs eight simulated clients doing
// private-file work plus shared-directory churn concurrently (real
// interleaving at every I/O yield point), then audits the final state.
func TestConcurrentClientsUnderVClock(t *testing.T) {
	const (
		clients = 8
		files   = 12
		bs      = 1024
	)
	s := vclock.New()
	model := disk.Model{Seek: 500 * 1000, TrackSkip: 0, BandwidthBps: 50e6, PerRequest: 0} // 0.5ms seeks
	devs := make([]raid.Dev, 4)
	for i := range devs {
		devs[i] = disk.New(s, fmt.Sprintf("d%d", i), store.NewMem(bs, 4096), model)
	}
	arr, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	table := cdd.NewTable()
	root, err := Mkfs(context.Background(), arr, NewTableLocker(table), "mkfs", Options{MaxInodes: 2048, Groups: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Mkdir(context.Background(), "/shared"); err != nil {
		t.Fatal(err)
	}

	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		c := c
		lk := NewTableLocker(table)
		mount, err := Mount(context.Background(), arr, lk, fmt.Sprintf("cl%d", c))
		if err != nil {
			t.Fatal(err)
		}
		s.Spawn(fmt.Sprintf("client%d", c), func(p *vclock.Proc) {
			ctx := vclock.With(context.Background(), p)
			run := func() error {
				base := fmt.Sprintf("/cl%d", c)
				if err := mount.Mkdir(ctx, base); err != nil {
					return err
				}
				for f := 0; f < files; f++ {
					data := bytes.Repeat([]byte{byte(c*16 + f)}, 700+f*37)
					if err := mount.WriteFile(ctx, fmt.Sprintf("%s/f%02d", base, f), data); err != nil {
						return fmt.Errorf("write f%d: %w", f, err)
					}
				}
				// Shared-directory churn: everyone creates one file in
				// /shared and deletes it again, contending on the
				// /shared inode lock.
				tmp := fmt.Sprintf("/shared/tmp%d", c)
				if err := mount.WriteFile(ctx, tmp, []byte("x")); err != nil {
					return fmt.Errorf("shared create: %w", err)
				}
				if err := mount.Remove(ctx, tmp); err != nil {
					return fmt.Errorf("shared remove: %w", err)
				}
				// Everyone leaves one permanent marker.
				if err := mount.WriteFile(ctx, fmt.Sprintf("/shared/mark%d", c), []byte{byte(c)}); err != nil {
					return fmt.Errorf("shared mark: %w", err)
				}
				return nil
			}
			errs[c] = run()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	// Audit with a fresh coherent mount (no cache).
	ctx := context.Background()
	audit, err := MountOptions(ctx, arr, NewTableLocker(table), "audit", Options{CacheBlocks: -1})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < clients; c++ {
		for f := 0; f < files; f++ {
			want := bytes.Repeat([]byte{byte(c*16 + f)}, 700+f*37)
			got, err := audit.ReadFile(ctx, fmt.Sprintf("/cl%d/f%02d", c, f))
			if err != nil {
				t.Fatalf("audit cl%d/f%02d: %v", c, f, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("audit cl%d/f%02d: content corrupted", c, f)
			}
		}
	}
	ents, err := audit.ReadDir(ctx, "/shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != clients {
		t.Fatalf("/shared has %d entries, want %d markers", len(ents), clients)
	}
	// Full metadata audit: no cross-linked blocks, no leaked blocks or
	// inodes — the allocator stayed consistent under real interleaving.
	rep, err := audit.Fsck(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck after concurrent run: %s\nproblems: %v leaked-blocks: %v leaked-inodes: %v",
			rep, rep.Problems, rep.LeakedBlocks, rep.LeakedInodes)
	}
}
