package workload

import (
	"testing"
	"time"
)

func TestGenDeterministic(t *testing.T) {
	cfg := OLTP(1000)
	a, b := NewGen(cfg, 7), NewGen(cfg, 7)
	for i := 0; i < 100; i++ {
		if a.Op() != b.Op() {
			t.Fatalf("op %d diverged for same seed", i)
		}
	}
	c := NewGen(cfg, 8)
	same := 0
	a2 := NewGen(cfg, 7)
	for i := 0; i < 100; i++ {
		if a2.Op() == c.Op() {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("different seeds produced %d/100 identical ops", same)
	}
}

func TestGenRespectssBounds(t *testing.T) {
	cfg := Config{ReadFraction: 0.5, WorkingSetBlocks: 64, HotSkew: 0.8, MaxOpBlocks: 8, Ops: 10}
	g := NewGen(cfg, 1)
	for i := 0; i < 5000; i++ {
		op := g.Op()
		if op.Block < 0 || op.Block >= 64 {
			t.Fatalf("block %d out of working set", op.Block)
		}
		if op.Blocks < 1 || op.Block+op.Blocks > 64 {
			t.Fatalf("op [%d,+%d) out of bounds", op.Block, op.Blocks)
		}
	}
}

func TestReadFraction(t *testing.T) {
	g := NewGen(Config{ReadFraction: 0.7, WorkingSetBlocks: 100, MaxOpBlocks: 1}, 3)
	reads := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Op().Read {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.67 || frac > 0.73 {
		t.Fatalf("read fraction %.3f, want ~0.70", frac)
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	// With strong skew, the top 10% of blocks should absorb far more
	// than 10% of accesses; uniform should not.
	count := func(skew float64) float64 {
		g := NewGen(Config{ReadFraction: 1, WorkingSetBlocks: 1000, HotSkew: skew, MaxOpBlocks: 1}, 5)
		hits := map[int64]int{}
		const n = 30000
		for i := 0; i < n; i++ {
			hits[g.Op().Block]++
		}
		// Sum the top 100 block counts.
		counts := make([]int, 0, len(hits))
		for _, c := range hits {
			counts = append(counts, c)
		}
		top := 0
		for k := 0; k < 100; k++ {
			best := -1
			for i, c := range counts {
				if best < 0 || c > counts[best] {
					best = i
				}
				_ = c
			}
			top += counts[best]
			counts[best] = -1
		}
		return float64(top) / n
	}
	skewed := count(0.9)
	uniform := count(0)
	if skewed < 0.3 {
		t.Fatalf("skewed top-10%% share %.2f, want > 0.3", skewed)
	}
	if uniform > 0.2 {
		t.Fatalf("uniform top-10%% share %.2f, want < 0.2", uniform)
	}
}

func TestLatencies(t *testing.T) {
	var l Latencies
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if got := l.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := l.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	var m Latencies
	m.Add(time.Second)
	l.Merge(&m)
	if l.N() != 101 || l.Percentile(100) != time.Second {
		t.Fatalf("merge broken: %s", l.String())
	}
}

func TestLatenciesEmpty(t *testing.T) {
	var l Latencies
	if l.Percentile(99) != 0 || l.Mean() != 0 {
		t.Fatal("empty latencies nonzero")
	}
}
