package workload

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Runner drives many concurrent synthetic clients, grouped into
// tenants, against a caller-supplied op executor. It is the load side
// of the scale story: raidxbench points it at coherent sessions over
// real TCP, tests point it at in-process arrays.
type Runner struct {
	// Clients is the number of concurrent workers (<= 0: 1).
	Clients int
	// Tenants spreads the clients round-robin over this many tenant
	// identities (<= 0: 1).
	Tenants int
	// Cfg shapes each client's op stream.
	Cfg Config
	// Seed disambiguates runs; client i uses Seed+i.
	Seed int64
	// BlockBytes converts op block counts to bytes for the totals.
	BlockBytes int
}

// TenantStats aggregates one tenant's completed work.
type TenantStats struct {
	Ops   int64
	Bytes int64
	Errs  int64
}

// RunResult aggregates a Run.
type RunResult struct {
	Ops     int64
	Bytes   int64
	Errs    int64
	Elapsed time.Duration
	Tenants map[string]TenantStats
}

// MBps reports the aggregate throughput in MB/s (1e6 bytes).
func (r RunResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// TenantName labels tenant i ("t0", "t1", ...).
func TenantName(i int) string { return fmt.Sprintf("t%d", i) }

// Run starts Clients workers, each generating Cfg.Ops ops and calling
// do for every one. An op error is counted, not fatal; ctx
// cancellation stops all workers. do must be safe for concurrent use.
func (r Runner) Run(ctx context.Context, do func(ctx context.Context, client int, tenant string, op Op) error) RunResult {
	clients := r.Clients
	if clients <= 0 {
		clients = 1
	}
	tenants := r.Tenants
	if tenants <= 0 {
		tenants = 1
	}

	type acct struct {
		ops, bytes, errs int64
	}
	perClient := make([]acct, clients)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g := NewGen(r.Cfg, uint64(r.Seed)+uint64(c))
			tenant := TenantName(c % tenants)
			a := &perClient[c]
			for i := 0; i < r.Cfg.Ops; i++ {
				if ctx.Err() != nil {
					return
				}
				op := g.Op()
				if err := do(ctx, c, tenant, op); err != nil {
					a.errs++
					continue
				}
				a.ops++
				a.bytes += op.Blocks * int64(r.BlockBytes)
			}
		}(c)
	}
	wg.Wait()

	res := RunResult{Elapsed: time.Since(start), Tenants: map[string]TenantStats{}}
	for c := range perClient {
		a := perClient[c]
		res.Ops += a.ops
		res.Bytes += a.bytes
		res.Errs += a.errs
		tn := TenantName(c % tenants)
		ts := res.Tenants[tn]
		ts.Ops += a.ops
		ts.Bytes += a.bytes
		ts.Errs += a.errs
		res.Tenants[tn] = ts
	}
	return res
}

// JainIndex is Jain's fairness index over the shares: 1.0 is perfectly
// fair, 1/n is maximally unfair. Empty or all-zero input reports 0.
func JainIndex(shares []float64) float64 {
	var sum, sumSq float64
	for _, v := range shares {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(shares)) * sumSq)
}
