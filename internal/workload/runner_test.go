package workload

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

func TestRunnerAggregates(t *testing.T) {
	r := Runner{
		Clients:    8,
		Tenants:    4,
		Cfg:        Config{ReadFraction: 0.5, WorkingSetBlocks: 1024, MaxOpBlocks: 1, Ops: 50},
		Seed:       1,
		BlockBytes: 4096,
	}
	var calls atomic.Int64
	res := r.Run(context.Background(), func(_ context.Context, _ int, _ string, _ Op) error {
		calls.Add(1)
		return nil
	})
	if want := int64(8 * 50); calls.Load() != want || res.Ops != want {
		t.Fatalf("calls=%d ops=%d, want %d", calls.Load(), res.Ops, want)
	}
	if res.Bytes != res.Ops*4096 {
		t.Fatalf("bytes=%d, want %d", res.Bytes, res.Ops*4096)
	}
	if len(res.Tenants) != 4 {
		t.Fatalf("tenants=%d, want 4", len(res.Tenants))
	}
	var shares []float64
	for _, ts := range res.Tenants {
		if ts.Ops != 100 {
			t.Fatalf("tenant ops=%d, want 100 each", ts.Ops)
		}
		shares = append(shares, float64(ts.Bytes))
	}
	if j := JainIndex(shares); math.Abs(j-1.0) > 1e-9 {
		t.Fatalf("Jain index %v, want 1.0 for equal shares", j)
	}
}

func TestRunnerCountsErrors(t *testing.T) {
	r := Runner{Clients: 2, Cfg: Config{WorkingSetBlocks: 16, Ops: 10}, BlockBytes: 512}
	boom := errors.New("boom")
	res := r.Run(context.Background(), func(_ context.Context, c int, _ string, _ Op) error {
		if c == 0 {
			return boom
		}
		return nil
	})
	if res.Errs != 10 || res.Ops != 10 {
		t.Fatalf("errs=%d ops=%d, want 10/10", res.Errs, res.Ops)
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal shares: %v", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("one-taker shares: %v", j)
	}
	if j := JainIndex(nil); j != 0 {
		t.Fatalf("empty: %v", j)
	}
}
