// Package workload generates synthetic mixed I/O workloads — the
// "secure E-commerce and data mining" class of applications the paper's
// Section 7 targets. A workload is a stream of block-level transactions
// with a configurable read/write mix, a Zipf-skewed hot set over the
// working set, and per-transaction sizes; the runner measures both
// throughput and the latency distribution each architecture delivers.
//
// Randomness is deterministic (seeded xorshift + a Zipf sampler), so
// every run is reproducible.
package workload

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Op is one generated block operation.
type Op struct {
	// Read selects the direction.
	Read bool
	// Block is the starting logical block.
	Block int64
	// Blocks is the transfer length.
	Blocks int64
}

// Config shapes the stream.
type Config struct {
	// ReadFraction in [0,1]: fraction of operations that read.
	ReadFraction float64
	// WorkingSetBlocks is the address space the workload touches.
	WorkingSetBlocks int64
	// HotSkew is the Zipf exponent over the working set (0 = uniform,
	// ~1 = classic web/OLTP skew).
	HotSkew float64
	// MaxOpBlocks bounds a single transfer (1 = pure small I/O).
	MaxOpBlocks int64
	// Ops is the number of operations per client.
	Ops int
}

// OLTP returns an e-commerce-like mix: 70% reads, strong skew, small
// transfers.
func OLTP(workingSet int64) Config {
	return Config{ReadFraction: 0.7, WorkingSetBlocks: workingSet, HotSkew: 0.9, MaxOpBlocks: 1, Ops: 64}
}

// Mining returns a data-mining-like mix: 90% reads, mild skew, larger
// scans.
func Mining(workingSet int64) Config {
	return Config{ReadFraction: 0.9, WorkingSetBlocks: workingSet, HotSkew: 0.2, MaxOpBlocks: 8, Ops: 32}
}

// Gen is a deterministic operation generator.
type Gen struct {
	cfg   Config
	state uint64
	zipf  *zipf
}

// NewGen creates a generator; distinct seeds give distinct streams.
func NewGen(cfg Config, seed uint64) *Gen {
	if cfg.WorkingSetBlocks < 1 {
		panic("workload: empty working set")
	}
	if cfg.MaxOpBlocks < 1 {
		cfg.MaxOpBlocks = 1
	}
	g := &Gen{cfg: cfg, state: seed*2654435761 + 1}
	if cfg.HotSkew > 0 {
		g.zipf = newZipf(cfg.HotSkew, cfg.WorkingSetBlocks)
	}
	return g
}

// next is xorshift64*.
func (g *Gen) next() uint64 {
	g.state ^= g.state >> 12
	g.state ^= g.state << 25
	g.state ^= g.state >> 27
	return g.state * 2685821657736338717
}

// float64 in [0,1).
func (g *Gen) f64() float64 {
	return float64(g.next()>>11) / (1 << 53)
}

// Op produces the next operation.
func (g *Gen) Op() Op {
	var blk int64
	if g.zipf != nil {
		blk = g.zipf.sample(g.f64())
	} else {
		blk = int64(g.next() % uint64(g.cfg.WorkingSetBlocks))
	}
	n := int64(1)
	if g.cfg.MaxOpBlocks > 1 {
		n = 1 + int64(g.next()%uint64(g.cfg.MaxOpBlocks))
	}
	if blk+n > g.cfg.WorkingSetBlocks {
		n = g.cfg.WorkingSetBlocks - blk
	}
	return Op{
		Read:   g.f64() < g.cfg.ReadFraction,
		Block:  blk,
		Blocks: n,
	}
}

// zipf is an inverse-CDF Zipf sampler over [0, n) with exponent s,
// using the standard harmonic approximation so construction is O(1)
// even for large n.
type zipf struct {
	s, hn float64
	n     int64
}

func newZipf(s float64, n int64) *zipf {
	return &zipf{s: s, n: n, hn: harmonicApprox(float64(n), s)}
}

// harmonicApprox ~ sum_{k=1..n} k^-s via the Euler–Maclaurin leading
// terms.
func harmonicApprox(n, s float64) float64 {
	if s == 1 {
		return math.Log(n) + 0.5772156649 + 1/(2*n)
	}
	return (math.Pow(n, 1-s)-1)/(1-s) + 0.5 + math.Pow(n, -s)/2 + s/12
}

// sample maps a uniform u in [0,1) to a rank via the inverse of the
// approximate CDF, then to a block (rank r maps to a pseudo-shuffled
// position so hot blocks spread over the address space).
func (z *zipf) sample(u float64) int64 {
	target := u * z.hn
	// Invert the continuous approximation, then clamp.
	var r float64
	if z.s == 1 {
		r = math.Exp(target - 0.5772156649)
	} else {
		r = math.Pow(target*(1-z.s)+1, 1/(1-z.s))
	}
	rank := int64(r)
	if rank < 1 {
		rank = 1
	}
	if rank > z.n {
		rank = z.n
	}
	// Spread ranks over the space with a multiplicative hash so the hot
	// set is not one contiguous run.
	return (rank * 2654435761) % z.n
}

// Latencies aggregates per-operation latencies.
type Latencies struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Merge folds another set in.
func (l *Latencies) Merge(o *Latencies) {
	l.samples = append(l.samples, o.samples...)
	l.sorted = false
}

// N reports the sample count.
func (l *Latencies) N() int { return len(l.samples) }

// Percentile reports the p-th percentile (0 < p <= 100).
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	idx := int(math.Ceil(p/100*float64(len(l.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Mean reports the average latency.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

func (l *Latencies) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v",
		l.N(), l.Mean().Round(time.Microsecond),
		l.Percentile(50).Round(time.Microsecond),
		l.Percentile(95).Round(time.Microsecond),
		l.Percentile(99).Round(time.Microsecond))
}
