package obs

import (
	"sort"
	"time"
)

// MergeSnapshots folds per-node registry snapshots into one cluster
// view (raidxctl top polling every node's /stats surface):
//
//   - counters and gauges merge by sum, keyed on the full (possibly
//     labeled) instrument name — so per-tenant children from different
//     nodes line up and flat totals add;
//   - histograms merge bucket-wise: the power-of-two-microsecond edges
//     are shared by construction, so bucket addition is exact and the
//     merged percentiles honestly describe the cluster distribution.
//     Snapshots from nodes too old to ship raw buckets degrade to a
//     conservative merge (counts and sums add, percentiles take the
//     worst input);
//   - the slower exemplar wins, so the dashboard links to the trace
//     that best explains the aggregate tail;
//   - events interleave in sequence order (the process-wide sequence
//     makes them comparable), capped at DefaultEventCap newest.
//
// The merged Time is the latest input time.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		if s.Time.After(out.Time) {
			out.Time = s.Time
		}
		for name, v := range s.Counters {
			if out.Counters == nil {
				out.Counters = map[string]int64{}
			}
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			if out.Gauges == nil {
				out.Gauges = map[string]int64{}
			}
			out.Gauges[name] += v
		}
		for name, st := range s.Histograms {
			if out.Histograms == nil {
				out.Histograms = map[string]HistogramStats{}
			}
			have, ok := out.Histograms[name]
			if !ok {
				out.Histograms[name] = st
				continue
			}
			out.Histograms[name] = mergeStats(have, st)
		}
		out.Events = append(out.Events, s.Events...)
	}
	if len(out.Events) > 1 {
		sort.Slice(out.Events, func(i, j int) bool { return out.Events[i].Seq < out.Events[j].Seq })
		if len(out.Events) > DefaultEventCap {
			out.Events = out.Events[len(out.Events)-DefaultEventCap:]
		}
	}
	return out
}

// mergeStats combines two histogram summaries. When both carry raw
// buckets the merge is exact (bucket-wise addition, re-summarized);
// otherwise it degrades conservatively: counts and sums add, each
// percentile takes the worse input.
func mergeStats(a, b HistogramStats) HistogramStats {
	sa, oka := a.Snapshot()
	sb, okb := b.Snapshot()
	if oka && okb {
		return sa.Merge(sb).Summary()
	}
	out := HistogramStats{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		P50:   maxDur(a.P50, b.P50),
		P95:   maxDur(a.P95, b.P95),
		P99:   maxDur(a.P99, b.P99),
		Max:   maxDur(a.Max, b.Max),
	}
	if out.Count > 0 {
		out.Mean = out.Sum / time.Duration(out.Count)
	}
	out.Exemplar = slowerExemplar(a.Exemplar, b.Exemplar)
	return out
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func slowerExemplar(a, b *Exemplar) *Exemplar {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case b.Dur > a.Dur:
		return b
	default:
		return a
	}
}
