package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter reported nonzero")
	}
	real := &Counter{}
	real.Inc()
	real.Add(2)
	if got := real.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := &Counter{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations, 10 slow ones: p50 must land in the fast
	// band, p99 in the slow band.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if p50 := s.Percentile(50); p50 < 64*time.Microsecond || p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want ~128µs", p50)
	}
	if p99 := s.Percentile(99); p99 < 64*time.Millisecond || p99 > time.Second {
		t.Fatalf("p99 = %v, want ~128ms", p99)
	}
	if max := s.Max(); max < 64*time.Millisecond {
		t.Fatalf("max = %v", max)
	}
	mean := s.Mean()
	if mean < time.Millisecond || mean > 20*time.Millisecond {
		t.Fatalf("mean = %v, want ~8ms", mean)
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(-time.Second) // clamped to zero
	h.Observe(365 * 24 * time.Hour)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0] != 2 || s.Buckets[histBuckets-1] != 1 {
		t.Fatalf("bucket spread wrong: %v / %v", s.Buckets[0], s.Buckets[histBuckets-1])
	}
	var nilH *Histogram
	nilH.Observe(time.Second)
	if nilH.Snapshot().Count != 0 {
		t.Fatal("nil histogram recorded")
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Append(EventRetry, "dev", "")
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest-first, contiguous tail of the process-wide sequence (serial
	// appends to one log get consecutive numbers).
	for i, e := range evs {
		if e.Seq != evs[0].Seq+uint64(i) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, evs[0].Seq+uint64(i))
		}
	}
	if l.Total() != 10 || l.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d", l.Total(), l.Dropped())
	}
	var nilL *EventLog
	nilL.Append(EventSwap, "x", "")
	if nilL.Events() != nil || nilL.Total() != 0 {
		t.Fatal("nil event log misbehaved")
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("disk.d0.reads").Add(7)
	r.Counter("disk.d0.reads").Add(3) // same instrument
	r.Histogram("cdd.read_latency").Observe(2 * time.Millisecond)
	r.RegisterGauge("disk.d0.backlog_us", func() int64 { return 42 })
	r.Event(EventSuspect, "n1/d0", "connection reset")

	s := r.Snapshot()
	if s.Counters["disk.d0.reads"] != 10 {
		t.Fatalf("counter = %d", s.Counters["disk.d0.reads"])
	}
	if s.Gauges["disk.d0.backlog_us"] != 42 {
		t.Fatalf("gauge = %d", s.Gauges["disk.d0.backlog_us"])
	}
	if s.Histograms["cdd.read_latency"].Count != 1 {
		t.Fatal("histogram missing")
	}
	if len(s.Events) != 1 || s.Events[0].Kind != EventSuspect {
		t.Fatalf("events = %+v", s.Events)
	}

	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Counters["disk.d0.reads"] != 10 || len(back.Events) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Histogram("y").Observe(time.Second)
	r.RegisterGauge("z", func() int64 { return 1 })
	r.Event(EventSwap, "a", "b")
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Events) != 0 {
		t.Fatal("nil registry produced data")
	}
}

func TestRegistryConcurrentLookup(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(time.Microsecond)
				r.Event(EventRetry, "d", "")
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if r.Events().Total() != 1600 {
		t.Fatalf("events = %d", r.Events().Total())
	}
}
