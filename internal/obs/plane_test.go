package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMergeSnapshotsHistogramProperty is the shard-split property:
// scatter one stream of observations across k node registries at
// random, merge the snapshots, and the cluster histogram must carry
// exactly the union's _count and _sum, with every percentile inside
// the bucket-resolution bounds of the single-registry reference.
func TestMergeSnapshotsHistogramProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(5)
		regs := make([]*Registry, k)
		for i := range regs {
			regs[i] = NewRegistry()
		}
		ref := NewRegistry() // everything, unsharded

		n := 50 + rng.Intn(500)
		var sum time.Duration
		for i := 0; i < n; i++ {
			// Spread over ~6 decades so many buckets fill.
			d := time.Duration(1+rng.Int63n(int64(10*time.Second))) / time.Duration(1+rng.Intn(1000))
			if d <= 0 {
				d = time.Microsecond
			}
			sum += d
			regs[rng.Intn(k)].Histogram("mgr.fg_latency").Observe(d)
			ref.Histogram("mgr.fg_latency").Observe(d)
		}

		snaps := make([]Snapshot, k)
		for i, r := range regs {
			snaps[i] = r.Snapshot()
		}
		merged := MergeSnapshots(snaps...)
		got, ok := merged.Histograms["mgr.fg_latency"]
		if !ok {
			t.Fatalf("trial %d: merged snapshot lost the histogram", trial)
		}
		want := ref.Snapshot().Histograms["mgr.fg_latency"]

		if got.Count != int64(n) {
			t.Fatalf("trial %d: merged count = %d, want %d", trial, got.Count, n)
		}
		if got.Sum != sum {
			t.Fatalf("trial %d: merged sum = %v, want %v", trial, got.Sum, sum)
		}
		// With shared bucket edges the merge is exact: identical
		// summaries to the unsharded reference.
		if got.P50 != want.P50 || got.P95 != want.P95 || got.P99 != want.P99 || got.Max != want.Max {
			t.Fatalf("trial %d: merged percentiles %v/%v/%v/%v, want %v/%v/%v/%v",
				trial, got.P50, got.P95, got.P99, got.Max, want.P50, want.P95, want.P99, want.Max)
		}
		gs, gok := got.Snapshot()
		ws, wok := want.Snapshot()
		if !gok || !wok {
			t.Fatalf("trial %d: raw buckets missing after merge (merged=%v ref=%v)", trial, gok, wok)
		}
		if gs != ws {
			t.Fatalf("trial %d: merged buckets differ from reference", trial)
		}
	}
}

// TestMergeSnapshotsScalarsAndFallback covers the non-histogram merge
// semantics: counters and gauges (labeled or not) sum by full key,
// events interleave in sequence order, and histograms without raw
// buckets degrade conservatively (counts add, percentiles take the
// worse input) instead of being dropped.
func TestMergeSnapshotsScalarsAndFallback(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter("mgr.fg_ops").Add(3)
	b.Counter("mgr.fg_ops").Add(4)
	a.CounterVec("qos.tenant_bytes_in", "tenant").With("alice").Add(10)
	b.CounterVec("qos.tenant_bytes_in", "tenant").With("alice").Add(5)
	b.CounterVec("qos.tenant_bytes_in", "tenant").With("bob").Add(7)
	a.RegisterGauge("sess.cache_bytes", func() int64 { return 100 })
	b.RegisterGauge("sess.cache_bytes", func() int64 { return 11 })
	a.Event(EventRetry, "d0", "")
	b.Event(EventSwap, "d1", "")

	m := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if got := m.Counters["mgr.fg_ops"]; got != 7 {
		t.Errorf("fg_ops = %d, want 7", got)
	}
	if got := m.Counters[LabelName("qos.tenant_bytes_in", "tenant", "alice")]; got != 15 {
		t.Errorf("alice bytes = %d, want 15", got)
	}
	if got := m.Counters[LabelName("qos.tenant_bytes_in", "tenant", "bob")]; got != 7 {
		t.Errorf("bob bytes = %d, want 7", got)
	}
	if got := m.Gauges["sess.cache_bytes"]; got != 111 {
		t.Errorf("cache_bytes = %d, want 111", got)
	}
	if len(m.Events) != 2 {
		t.Fatalf("merged %d events, want 2", len(m.Events))
	}
	if m.Events[0].Seq >= m.Events[1].Seq {
		t.Errorf("events not in sequence order: %d then %d", m.Events[0].Seq, m.Events[1].Seq)
	}

	// Old-format snapshots (no raw buckets, e.g. an older node) still
	// merge, conservatively.
	old := Snapshot{Histograms: map[string]HistogramStats{
		"mgr.fg_latency": {Count: 10, Sum: 10 * time.Millisecond, Mean: time.Millisecond, P50: time.Millisecond, P95: 2 * time.Millisecond, P99: 2 * time.Millisecond, Max: 2 * time.Millisecond},
	}}
	c := NewRegistry()
	c.Histogram("mgr.fg_latency").Observe(8 * time.Millisecond)
	m2 := MergeSnapshots(old, c.Snapshot())
	st := m2.Histograms["mgr.fg_latency"]
	if st.Count != 11 {
		t.Errorf("fallback count = %d, want 11", st.Count)
	}
	if st.Sum != 18*time.Millisecond {
		t.Errorf("fallback sum = %v, want 18ms", st.Sum)
	}
	if st.P99 < 8*time.Millisecond {
		t.Errorf("fallback p99 = %v, want >= the worse input's", st.P99)
	}
}

// TestLabelsRoundTrip pins the canonical labeled-name encoding: With()
// and LabelName agree, SplitLabeled undoes them, and Labels/LabelValue
// recover the original (unescaped) values.
func TestLabelsRoundTrip(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("qos.tenant_bytes_in", "tenant")
	for _, tenant := range []string{"alice", "with space", `q"uote`, `back\slash`, "comma,brace}"} {
		cv.With(tenant).Inc()
		name := LabelName("qos.tenant_bytes_in", "tenant", tenant)
		snap := r.Snapshot()
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("tenant %q: LabelName %q not in snapshot", tenant, name)
		}
		base, labels := SplitLabeled(name)
		if base != "qos.tenant_bytes_in" {
			t.Errorf("tenant %q: base = %q", tenant, base)
		}
		if labels == "" {
			t.Fatalf("tenant %q: no labels split from %q", tenant, name)
		}
		if got := LabelValue(name, "tenant"); got != tenant {
			t.Errorf("LabelValue(%q) = %q, want %q", name, got, tenant)
		}
		pairs := Labels(labels)
		if len(pairs) != 1 || pairs[0][0] != "tenant" || pairs[0][1] != tenant {
			t.Errorf("Labels(%q) = %v, want [[tenant %s]]", labels, pairs, tenant)
		}
	}
	// Multi-key vec: keys render in declaration order, values parse
	// back sorted by key.
	hv := r.HistogramVec("mgr.op_latency", "op", "dev")
	hv.With("read", "d0").Observe(time.Millisecond)
	name := LabelName("mgr.op_latency", "op", "read", "dev", "d0")
	if _, ok := r.Snapshot().Histograms[name]; !ok {
		t.Fatalf("two-key histogram name %q not in snapshot", name)
	}
	if LabelValue(name, "op") != "read" || LabelValue(name, "dev") != "d0" {
		t.Errorf("two-key LabelValue mismatch on %q", name)
	}
	// Unlabeled names split cleanly.
	if base, labels := SplitLabeled("mgr.fg_ops"); base != "mgr.fg_ops" || labels != "" {
		t.Errorf("SplitLabeled(plain) = %q, %q", base, labels)
	}
	// Same vec requested twice returns the same children.
	if r.CounterVec("qos.tenant_bytes_in", "tenant").With("alice") != cv.With("alice") {
		t.Error("vec children not shared across CounterVec calls")
	}
}

// TestSamplerSeries drives the sampler synchronously and checks the
// windowed views: cumulative values, positive windowed rates, gauge
// min/max, and per-window histogram deltas.
func TestSamplerSeries(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, SamplerConfig{Interval: 10 * time.Millisecond, Capacity: 16, Windows: []time.Duration{50 * time.Millisecond}})
	c := r.Counter("mgr.fg_ops")
	h := r.Histogram("mgr.fg_latency")
	g := int64(1)
	r.RegisterGauge("sess.cache_bytes", func() int64 { return g })

	for i := 0; i < 6; i++ {
		c.Add(100)
		h.Observe(time.Duration(i+1) * time.Millisecond)
		g = int64(i)
		s.SampleNow()
		time.Sleep(12 * time.Millisecond)
	}

	if rate := s.CounterRate("mgr.fg_ops", 50*time.Millisecond); rate <= 0 {
		t.Errorf("CounterRate = %v, want > 0", rate)
	}
	if _, ok := s.WindowHistogram("mgr.fg_latency", 50*time.Millisecond); !ok {
		t.Error("WindowHistogram: no delta available")
	}

	doc := s.Series()
	if doc.Samples < 2 || doc.Samples > 16 {
		t.Fatalf("Samples = %d, want 2..16", doc.Samples)
	}
	cs, ok := doc.Counters["mgr.fg_ops"]
	if !ok {
		t.Fatal("counter missing from series")
	}
	if cs.Value != 600 {
		t.Errorf("cumulative counter = %d, want 600", cs.Value)
	}
	if len(cs.Rates) != 1 || cs.Rates[0] <= 0 {
		t.Errorf("windowed rates = %v, want one positive 50ms rate", cs.Rates)
	}
	gs, ok := doc.Gauges["sess.cache_bytes"]
	if !ok {
		t.Fatal("gauge missing from series")
	}
	if gs.Min > gs.Max || gs.Max != 5 {
		t.Errorf("gauge min/max = %d/%d, want max 5", gs.Min, gs.Max)
	}
	hs, ok := doc.Histograms["mgr.fg_latency"]
	if !ok {
		t.Fatal("histogram missing from series")
	}
	if hs.Cum.Count != 6 {
		t.Errorf("cumulative hist count = %d, want 6", hs.Cum.Count)
	}

	// Instruments that disappear (unregistered gauges) age out of the
	// series rather than reporting stale values forever.
	r.UnregisterGauge("sess.cache_bytes")
	s.SampleNow()
	if _, ok := s.Series().Gauges["sess.cache_bytes"]; ok {
		t.Error("unregistered gauge still present in series")
	}

	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mgr.fg_ops") {
		t.Error("WriteJSON output missing counter")
	}
}

// TestSamplerLive runs the background sampler against a concurrent
// workload — counters, labeled vecs, and histograms hammered from
// several goroutines while Series() is read — primarily as a -race
// subject (make obscheck).
func TestSamplerLive(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, SamplerConfig{Interval: time.Millisecond, Capacity: 64})
	s.Start()
	defer s.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("mgr.fg_ops")
			hv := r.HistogramVec("mgr.op_latency", "op")
			ops := []string{"read", "write"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				hv.With(ops[i%2]).ObserveTraced(time.Duration(i%100)*time.Microsecond, uint64(i))
				r.GaugeVec("qos.tenant_share_bps", "tenant").With("t0").Set(int64(i))
			}
		}(w)
	}
	deadline := time.After(60 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			_ = s.Series()
			s.SampleNow()
		}
	}
	close(stop)
	wg.Wait()
	s.Stop()

	doc := s.Series()
	if doc.Samples == 0 {
		t.Fatal("sampler took no samples")
	}
	if cs, ok := doc.Counters["mgr.fg_ops"]; !ok || cs.Value == 0 {
		t.Errorf("live counter missing or zero: %+v", doc.Counters["mgr.fg_ops"])
	}
}

// fakeActuator is an in-memory QoS stand-in recording every step.
type fakeActuator struct {
	mu    sync.Mutex
	rate  int64
	steps []int64
}

func (f *fakeActuator) BackgroundRate() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rate
}

func (f *fakeActuator) SetBackgroundRate(bps int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rate = bps
	f.steps = append(f.steps, bps)
}

// TestSLOBurnFeedback closes the loop against a fake actuator: a burst
// of over-objective latency trips both burn windows and halves the
// background rate (to the floor, never below); a sustained healthy
// period steps it back to the baseline.
func TestSLOBurnFeedback(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mgr.fg_latency")
	errs := r.Counter("mgr.fg_errors")
	ops := r.Counter("mgr.fg_ops")
	act := &fakeActuator{rate: 64 << 20}
	tr := NewSLOTracker(SLOConfig{
		Name:              "fg",
		Registry:          r,
		LatencyHist:       h,
		LatencyObjective:  time.Millisecond,
		ErrorCounter:      errs,
		OpsCounter:        ops,
		ErrorBudget:       0.01,
		FastWindow:        5 * time.Millisecond,
		SlowWindow:        20 * time.Millisecond,
		BurnThreshold:     2,
		Actuator:          act,
		MinBackgroundRate: 4 << 20,
		RecoverEvals:      2,
	})
	if st := tr.Status(); st.Baseline != 64<<20 || st.BGRate != 64<<20 {
		t.Fatalf("baseline/rate = %d/%d, want both 64MiB", st.Baseline, st.BGRate)
	}

	// Seed one healthy sample so burn windows have a reference.
	for i := 0; i < 50; i++ {
		h.Observe(100 * time.Microsecond)
		ops.Inc()
	}
	tr.EvalNow()
	time.Sleep(25 * time.Millisecond)

	// Latency storm: everything over the objective.
	for i := 0; i < 200; i++ {
		h.Observe(10 * time.Millisecond)
		ops.Inc()
	}
	st := tr.EvalNow()
	if !st.Burning {
		t.Fatalf("not burning after storm: %+v", st)
	}
	if st.BGRate != 32<<20 {
		t.Fatalf("first down-step rate = %d, want %d", st.BGRate, 32<<20)
	}

	// Keep burning: rate halves at most once per fast window, and
	// never below the floor.
	for i := 0; i < 6; i++ {
		time.Sleep(6 * time.Millisecond)
		for j := 0; j < 50; j++ {
			h.Observe(10 * time.Millisecond)
			ops.Inc()
		}
		st = tr.EvalNow()
	}
	if got := act.BackgroundRate(); got != 4<<20 {
		t.Fatalf("rate after sustained burn = %d, want floor %d", got, 4<<20)
	}

	// Recovery: healthy traffic only until both windows clear, then
	// doubling back to baseline (at most once per slow window).
	start := time.Now()
	for act.BackgroundRate() < 64<<20 {
		if time.Since(start) > 5*time.Second {
			t.Fatalf("rate never recovered: %d", act.BackgroundRate())
		}
		for j := 0; j < 50; j++ {
			h.Observe(100 * time.Microsecond)
			ops.Inc()
		}
		time.Sleep(22 * time.Millisecond)
		st = tr.EvalNow()
	}
	if st.Burning {
		t.Errorf("still burning after recovery: %+v", st)
	}
	if act.BackgroundRate() != 64<<20 {
		t.Errorf("recovered rate = %d, want baseline", act.BackgroundRate())
	}

	// Every step was a halving or doubling within [floor, baseline].
	act.mu.Lock()
	defer act.mu.Unlock()
	for _, s := range act.steps {
		if s < 4<<20 || s > 64<<20 {
			t.Errorf("step outside [floor, baseline]: %d", s)
		}
	}

	// The registry saw the transitions.
	var burn, recover, qstep bool
	for _, e := range r.Events().Events() {
		switch e.Kind {
		case EventSLOBurn:
			burn = true
		case EventSLORecover:
			recover = true
		case EventQoSStep:
			qstep = true
		}
	}
	if !burn || !recover || !qstep {
		t.Errorf("events burn=%v recover=%v qos-step=%v, want all", burn, recover, qstep)
	}
}

// TestSLOErrorBurn exercises the error-rate objective without a
// latency histogram, and the observe-only mode (no actuator).
func TestSLOErrorBurn(t *testing.T) {
	r := NewRegistry()
	errs := r.Counter("mgr.fg_errors")
	ops := r.Counter("mgr.fg_ops")
	tr := NewSLOTracker(SLOConfig{
		Name:          "fg",
		Registry:      r,
		ErrorCounter:  errs,
		OpsCounter:    ops,
		ErrorBudget:   0.01,
		FastWindow:    5 * time.Millisecond,
		SlowWindow:    10 * time.Millisecond,
		BurnThreshold: 2,
	})
	ops.Add(100)
	tr.EvalNow()
	time.Sleep(12 * time.Millisecond)
	ops.Add(100)
	errs.Add(10) // 10% errors against a 1% budget: burn 10x
	st := tr.EvalNow()
	if !st.Burning {
		t.Fatalf("error burn not detected: %+v", st)
	}
	if st.FastBurn < 2 || st.SlowBurn < 2 {
		t.Errorf("burns = %v/%v, want >= threshold", st.FastBurn, st.SlowBurn)
	}
	if st.BGRate != 0 {
		t.Errorf("observe-only tracker reports BGRate %d", st.BGRate)
	}

	// slo.* gauges exist and reflect the burn.
	snap := r.Snapshot()
	if snap.Gauges["slo.fg.burning"] != 1 {
		t.Errorf("slo.fg.burning gauge = %d, want 1", snap.Gauges["slo.fg.burning"])
	}
	if snap.Gauges["slo.fg.fast_burn_milli"] < 2000 {
		t.Errorf("fast_burn_milli = %d, want >= 2000", snap.Gauges["slo.fg.fast_burn_milli"])
	}

	// A nil tracker is inert everywhere.
	var nilT *SLOTracker
	nilT.Start(time.Millisecond)
	nilT.Stop()
	if st := nilT.EvalNow(); st.Burning {
		t.Error("nil tracker burning")
	}
}
