package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// HistogramStats is the monitoring summary of one histogram, with
// durations in nanoseconds for JSON transport. Sum and Buckets carry
// the raw state so consumers (raidxctl top, cluster aggregation) can
// merge histograms bucket-wise across nodes and window them between
// polls; old snapshots without them still decode (Buckets empty).
type HistogramStats struct {
	Count    int64         `json:"count"`
	Mean     time.Duration `json:"mean_ns"`
	P50      time.Duration `json:"p50_ns"`
	P95      time.Duration `json:"p95_ns"`
	P99      time.Duration `json:"p99_ns"`
	Max      time.Duration `json:"max_ns"`
	Sum      time.Duration `json:"sum_ns,omitempty"`
	Buckets  []int64       `json:"buckets,omitempty"`
	Exemplar *Exemplar     `json:"exemplar,omitempty"`
}

// Summary condenses a snapshot into the monitoring quantities.
func (s HistogramSnapshot) Summary() HistogramStats {
	st := HistogramStats{
		Count:   s.Count,
		Mean:    s.Mean(),
		P50:     s.Percentile(50),
		P95:     s.Percentile(95),
		P99:     s.Percentile(99),
		Max:     s.Max(),
		Sum:     s.Sum,
		Buckets: append([]int64(nil), s.Buckets[:]...),
	}
	if s.Exemplar.TraceID != 0 {
		ex := s.Exemplar
		st.Exemplar = &ex
	}
	return st
}

// Snapshot reconstructs the raw histogram state from stats. The second
// result is false when the stats were produced without buckets (an
// old-format snapshot) — counts and sum are still filled in.
func (st HistogramStats) Snapshot() (HistogramSnapshot, bool) {
	s := HistogramSnapshot{Count: st.Count, Sum: st.Sum}
	if st.Exemplar != nil {
		s.Exemplar = *st.Exemplar
	}
	if len(st.Buckets) != histBuckets {
		return s, false
	}
	copy(s.Buckets[:], st.Buckets)
	return s, true
}

// Snapshot is a point-in-time copy of a registry, ready for JSON.
type Snapshot struct {
	Time       time.Time                 `json:"time"`
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	Events     []Event                   `json:"events,omitempty"`
}

// Snapshot captures every instrument. Gauge callbacks run outside the
// registry lock (they may take component locks of their own).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Time: time.Now()}
	if r == nil {
		return s
	}
	r.mu.RLock()
	s.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	s.Histograms = make(map[string]HistogramStats, len(r.hists))
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot().Summary()
	}
	gauges := make(map[string]Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	r.mu.RUnlock()
	s.Gauges = make(map[string]int64, len(gauges))
	for name, g := range gauges {
		s.Gauges[name] = g()
	}
	s.Events = r.events.Events()
	return s
}

// MarshalJSON is the standard encoding (expvar-style flat maps).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// WriteJSON writes the snapshot to w (the /stats endpoint body).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// DecodeSnapshot parses a snapshot previously produced by WriteJSON or
// MarshalJSON (raidxctl consuming a node's OpObsSnapshot response).
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: bad snapshot: %w", err)
	}
	return s, nil
}

// SortedKeys returns the keys of a snapshot map in stable order, for
// table rendering.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
