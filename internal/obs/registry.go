package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// HistogramStats is the monitoring summary of one histogram, with
// durations in nanoseconds for JSON transport.
type HistogramStats struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summary condenses a snapshot into the monitoring quantities.
func (s HistogramSnapshot) Summary() HistogramStats {
	return HistogramStats{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Percentile(50),
		P95:   s.Percentile(95),
		P99:   s.Percentile(99),
		Max:   s.Max(),
	}
}

// Snapshot is a point-in-time copy of a registry, ready for JSON.
type Snapshot struct {
	Time       time.Time                 `json:"time"`
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	Events     []Event                   `json:"events,omitempty"`
}

// Snapshot captures every instrument. Gauge callbacks run outside the
// registry lock (they may take component locks of their own).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Time: time.Now()}
	if r == nil {
		return s
	}
	r.mu.RLock()
	s.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	s.Histograms = make(map[string]HistogramStats, len(r.hists))
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot().Summary()
	}
	gauges := make(map[string]Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	r.mu.RUnlock()
	s.Gauges = make(map[string]int64, len(gauges))
	for name, g := range gauges {
		s.Gauges[name] = g()
	}
	s.Events = r.events.Events()
	return s
}

// MarshalJSON is the standard encoding (expvar-style flat maps).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// WriteJSON writes the snapshot to w (the /stats endpoint body).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// DecodeSnapshot parses a snapshot previously produced by WriteJSON or
// MarshalJSON (raidxctl consuming a node's OpObsSnapshot response).
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: bad snapshot: %w", err)
	}
	return s, nil
}

// SortedKeys returns the keys of a snapshot map in stable order, for
// table rendering.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
