package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	promLabelPair  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(,|$)`)
	promTypeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
)

// parsePromLabels validates and splits a `{k="v",...}` label block
// (braces included) into ordered key/value pairs. It returns the pairs
// and a canonical unquoted rendering `{k=v,...}` used as a sample key.
func parsePromLabels(t *testing.T, n int, block string) ([][2]string, string) {
	t.Helper()
	if block == "" {
		return nil, ""
	}
	body := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	var pairs [][2]string
	var canon []string
	for body != "" {
		m := promLabelPair.FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("line %d: malformed label block %q at %q", n, block, body)
		}
		pairs = append(pairs, [2]string{m[1], m[2]})
		canon = append(canon, m[1]+"="+m[2])
		body = body[len(m[0]):]
		if m[3] == "," && body == "" {
			t.Fatalf("line %d: trailing comma in label block %q", n, block)
		}
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i][0] == pairs[i-1][0] {
			t.Fatalf("line %d: duplicate label name %q in %q", n, pairs[i][0], block)
		}
	}
	return pairs, "{" + strings.Join(canon, ",") + "}"
}

// checkPromGrammar validates body against the text exposition format:
// every line is a `# TYPE` declaration or a sample, names match the
// metric-name grammar, every sample belongs to a declared family,
// histogram buckets are cumulative with a final +Inf equal to _count,
// and no family is declared twice.
func checkPromGrammar(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	types := make(map[string]string)
	family := "" // the most recent TYPE declaration
	// Bucket cumulativity and +Inf presence are tracked per series:
	// a labeled histogram family interleaves one bucket ladder per
	// child, keyed by the non-le labels.
	lastBucket := make(map[string]float64)
	sawInf := make(map[string]bool)

	flushHist := func() {
		if family != "" && types[family] == "histogram" {
			for series, ok := range sawInf {
				if !ok {
					t.Errorf("histogram %s%s has no +Inf bucket", family, series)
				}
			}
		}
	}

	sc := bufio.NewScanner(strings.NewReader(body))
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := promTypeLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed comment %q", n, line)
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("line %d: family %s declared twice", n, m[1])
			}
			flushHist()
			family = m[1]
			lastBucket = make(map[string]float64)
			sawInf = make(map[string]bool)
			types[m[1]] = m[2]
			continue
		}
		m := promSampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", n, line)
		}
		name, raw := m[1], m[3]
		if !promMetricName.MatchString(name) {
			t.Fatalf("line %d: bad metric name %q", n, name)
		}
		pairs, canon := parsePromLabels(t, n, m[2])
		le := ""
		series := "" // canonical labels with le stripped
		{
			var rest []string
			for _, p := range pairs {
				if p[0] == "le" {
					le = p[1]
				} else {
					rest = append(rest, p[0]+"="+p[1])
				}
			}
			if len(rest) > 0 {
				series = "{" + strings.Join(rest, ",") + "}"
			}
		}
		val, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("line %d: unparseable value %q: %v", n, raw, err)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if types[family] == "histogram" && name == family+suf {
				base = family
			}
		}
		if types[base] == "" {
			t.Fatalf("line %d: sample %s has no TYPE declaration", n, name)
		}
		if base != family {
			t.Fatalf("line %d: sample %s outside its family block (current family %s)", n, name, family)
		}
		if le != "" { // a {le=...} labelled bucket sample
			if types[family] != "histogram" || name != family+"_bucket" {
				t.Fatalf("line %d: le label on non-bucket sample %s", n, name)
			}
			if val < lastBucket[series] {
				t.Fatalf("line %d: bucket le=%q not cumulative (%v < %v)", n, le, val, lastBucket[series])
			}
			lastBucket[series] = val
			if le == "+Inf" {
				sawInf[series] = true
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("line %d: unparseable le bound %q", n, le)
			}
			if _, seen := sawInf[series]; !seen {
				sawInf[series] = false
			}
		} else if types[family] == "histogram" && name == family+"_bucket" {
			t.Fatalf("line %d: bucket sample %s without le label", n, name)
		}
		key := name + canon
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %s", n, key)
		}
		samples[key] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	flushHist()
	return samples
}

func TestWritePromGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("disk.d0.reads").Add(7)
	r.Counter("cdd.retries").Add(2)
	r.RegisterGauge("disk.d0.backlog_us", func() int64 { return -5 })
	h := r.Histogram("cdd.read_latency")
	h.Observe(100 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	h.Observe(80 * time.Millisecond)
	h.Observe(365 * 24 * time.Hour) // lands in the top (+Inf-only) bucket
	r.Event(EventRetry, "d0", "")
	r.Event(EventSwap, "d1", "")

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	samples := checkPromGrammar(t, sb.String())

	if got := samples["disk_d0_reads_total"]; got != 7 {
		t.Errorf("disk_d0_reads_total = %v, want 7", got)
	}
	if got := samples["disk_d0_backlog_us"]; got != -5 {
		t.Errorf("gauge = %v, want -5", got)
	}
	if got := samples["cdd_read_latency_seconds_count"]; got != 4 {
		t.Errorf("_count = %v, want 4", got)
	}
	if got := samples[`cdd_read_latency_seconds_bucket{le=+Inf}`]; got != 4 {
		t.Errorf("+Inf bucket = %v, want 4 (== count)", got)
	}
	// The two 100µs observations land at or below the 128µs edge; the
	// year-long one must be beyond every finite bucket.
	le128 := fmt.Sprintf("cdd_read_latency_seconds_bucket{le=%s}",
		strconv.FormatFloat((128*time.Microsecond).Seconds(), 'g', -1, 64))
	if got := samples[le128]; got != 2 {
		t.Errorf("128µs bucket = %v, want 2", got)
	}
	var maxFinite float64
	for k, v := range samples {
		if strings.HasPrefix(k, "cdd_read_latency_seconds_bucket{") && !strings.Contains(k, "+Inf") {
			if v > maxFinite {
				maxFinite = v
			}
		}
	}
	if maxFinite != 3 {
		t.Errorf("largest finite bucket = %v, want 3 (the year-long observation is +Inf-only)", maxFinite)
	}
	sum := samples["cdd_read_latency_seconds_sum"]
	if sum < (365 * 24 * time.Hour).Seconds() {
		t.Errorf("_sum = %v, too small", sum)
	}
	if got := samples["obs_events_total"]; got != 2 {
		t.Errorf("obs_events_total = %v, want 2", got)
	}
	if got, ok := samples["obs_events_dropped_total"]; !ok || got != 0 {
		t.Errorf("obs_events_dropped_total = %v (present=%v), want 0", got, ok)
	}
}

// TestWritePromLabeled pins the labeled exposition: all children of a
// vec share one # TYPE declaration, label pairs survive round-trip
// (including escaped values), and labeled histogram children each
// carry a full cumulative bucket ladder.
func TestWritePromLabeled(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("qos.tenant_bytes_in", "tenant")
	cv.With("alice").Add(10)
	cv.With("bob").Add(32)
	cv.With(`ev"il\`).Add(1) // quote + backslash must be escaped
	gv := r.GaugeVec("qos.tenant_share_bps", "tenant")
	gv.With("alice").Set(1 << 20)
	hv := r.HistogramVec("mgr.op_latency", "op")
	hv.With("read").Observe(100 * time.Microsecond)
	hv.With("read").Observe(3 * time.Millisecond)
	hv.With("write").Observe(40 * time.Millisecond)
	r.Counter("mgr.fg_ops").Add(5) // plain counter alongside the vecs

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	samples := checkPromGrammar(t, body)

	if got := samples[`qos_tenant_bytes_in_total{tenant=alice}`]; got != 10 {
		t.Errorf("alice counter = %v, want 10", got)
	}
	if got := samples[`qos_tenant_bytes_in_total{tenant=bob}`]; got != 32 {
		t.Errorf("bob counter = %v, want 32", got)
	}
	if got := samples[`qos_tenant_bytes_in_total{tenant=ev\"il\\}`]; got != 1 {
		keys := make([]string, 0, len(samples))
		for k := range samples {
			if strings.HasPrefix(k, "qos_tenant_bytes_in_total") {
				keys = append(keys, k)
			}
		}
		t.Errorf("escaped-tenant counter = %v, want 1 (have %v)", got, keys)
	}
	if got := samples[`qos_tenant_share_bps{tenant=alice}`]; got != 1<<20 {
		t.Errorf("share gauge = %v, want %v", got, 1<<20)
	}
	if got := samples[`mgr_op_latency_seconds_count{op=read}`]; got != 2 {
		t.Errorf("read _count = %v, want 2", got)
	}
	if got := samples[`mgr_op_latency_seconds_count{op=write}`]; got != 1 {
		t.Errorf("write _count = %v, want 1", got)
	}
	if got := samples[`mgr_op_latency_seconds_bucket{op=read,le=+Inf}`]; got != 2 {
		t.Errorf("read +Inf bucket = %v, want 2", got)
	}
	if got := samples["mgr_fg_ops_total"]; got != 5 {
		t.Errorf("plain counter = %v, want 5", got)
	}
	// One TYPE declaration per family, shared by every child.
	for _, family := range []string{"qos_tenant_bytes_in_total", "qos_tenant_share_bps", "mgr_op_latency_seconds"} {
		if n := strings.Count(body, "# TYPE "+family+" "); n != 1 {
			t.Errorf("family %s declared %d times, want 1", family, n)
		}
	}
}

func TestWritePromNilAndEmpty(t *testing.T) {
	var nilR *Registry
	var sb strings.Builder
	if err := nilR.WriteProm(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry: err=%v, wrote %q", err, sb.String())
	}
	// An empty registry still exports the event-log totals, and the
	// output must satisfy the grammar.
	r := NewRegistry()
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	checkPromGrammar(t, sb.String())
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"disk.d0.reads":    "disk_d0_reads",
		"cdd.read_latency": "cdd_read_latency",
		"9lives":           "_9lives",
		"ok_name:x":        "ok_name:x",
		"sp ace-dash":      "sp_ace_dash",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
		if !promMetricName.MatchString(promName(in)) {
			t.Errorf("promName(%q) = %q violates metric-name grammar", in, promName(in))
		}
	}
}

// TestEventSeqConcurrent pins the process-wide sequence contract:
// events appended concurrently across several logs carry unique
// sequence numbers, and each log's snapshot comes back sorted so a
// merged view is a true total order.
func TestEventSeqConcurrent(t *testing.T) {
	const logs, writers, per = 4, 8, 200
	ls := make([]*EventLog, logs)
	for i := range ls {
		ls[i] = NewEventLog(logs * writers * per) // big enough: nothing dropped
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				ls[(w+j)%logs].Append(EventRetry, "dev", "")
			}
		}(w)
	}
	wg.Wait()

	var merged []Event
	for _, l := range ls {
		evs := l.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq <= evs[i-1].Seq {
				t.Fatalf("log snapshot not sorted: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
			}
		}
		merged = append(merged, evs...)
	}
	if len(merged) != writers*per {
		t.Fatalf("merged %d events, want %d", len(merged), writers*per)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Seq < merged[j].Seq })
	seen := make(map[uint64]bool, len(merged))
	for _, e := range merged {
		if seen[e.Seq] {
			t.Fatalf("duplicate sequence number %d across logs", e.Seq)
		}
		seen[e.Seq] = true
	}
}
