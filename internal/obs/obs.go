// Package obs is the array's observability substrate: allocation-free
// atomic counters, bounded latency histograms, gauges, and a ring-buffer
// event log for health-state transitions, gathered into a Registry whose
// Snapshot serializes to JSON for the raidxnode /stats endpoint and the
// raidxctl stats command.
//
// Design constraints, in order:
//
//   - The hot path (per-I/O counting, latency observation) must not
//     allocate and must not take locks. Counters and histogram buckets
//     are single atomic adds; instruments are resolved by name once, at
//     component construction, never per operation.
//   - Everything is nil-safe. A component built without a registry holds
//     nil instrument pointers and every method is a no-op, so
//     instrumentation never forces configuration.
//   - Snapshots are read-only and internally consistent enough for
//     monitoring (counters are read individually, not under a global
//     lock — exactness across instruments is not promised).
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count (zero for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBuckets bounds a Histogram: bucket b counts observations whose
// microsecond value has bit length b, i.e. durations in
// [2^(b-1) µs, 2^b µs). Bucket 0 holds sub-microsecond observations and
// the last bucket absorbs everything from ~36 minutes up, so the
// histogram never grows and never allocates.
const histBuckets = 32

// Histogram is a bounded latency histogram with exponential
// (power-of-two microsecond) buckets. Observe is a pair of atomic adds;
// percentiles are computed from snapshots with ~2x resolution, ample
// for p50/p95/p99 monitoring. A nil *Histogram discards observations.
//
// A histogram optionally carries one exemplar: the trace ID of a recent
// slow observation (ObserveTraced), so a dashboard showing a p99 can
// link straight to the trace that explains it.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64

	exDur atomic.Int64  // duration of the current exemplar (ns)
	exAt  atomic.Int64  // unix-nano when it was recorded
	exID  atomic.Uint64 // its trace ID (0 = no exemplar)
}

// exemplarTTL bounds how long an exemplar is defended by its duration:
// after this long even a faster traced observation replaces it, so the
// exemplar tracks *recent* slowness rather than the all-time maximum.
const exemplarTTL = 60 * time.Second

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	b := bits.Len64(uint64(d / time.Microsecond))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// ObserveTraced records one duration and offers traceID as an
// exemplar. The exemplar slot keeps the slowest traced observation of
// the last exemplarTTL; a zero traceID degrades to plain Observe. The
// fast path (observation not slower than the current exemplar, which is
// still fresh) adds two atomic loads over Observe.
func (h *Histogram) ObserveTraced(d time.Duration, traceID uint64) {
	if h == nil {
		return
	}
	h.Observe(d)
	if traceID == 0 {
		return
	}
	now := time.Now().UnixNano()
	if int64(d) <= h.exDur.Load() && now-h.exAt.Load() < int64(exemplarTTL) {
		return
	}
	// Composite store: dur first (it defends the slot), ID last. A racing
	// slower observation may interleave, leaving a mixed (dur, id) pair
	// for one snapshot — exemplars are diagnostics, not accounting, and
	// the next slow op repairs it.
	h.exDur.Store(int64(d))
	h.exAt.Store(now)
	h.exID.Store(traceID)
}

// Exemplar links a histogram to one recent slow traced operation.
type Exemplar struct {
	TraceID uint64        `json:"trace_id,omitempty"`
	Dur     time.Duration `json:"dur_ns,omitempty"`
	At      int64         `json:"at_unix_ns,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Exemplar = Exemplar{
		TraceID: h.exID.Load(),
		Dur:     time.Duration(h.exDur.Load()),
		At:      h.exAt.Load(),
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count    int64
	Sum      time.Duration
	Buckets  [histBuckets]int64
	Exemplar Exemplar
}

// Sub reports the histogram delta s - prev: the observations that
// landed between the two snapshots. Counters are monotonic, so the
// difference is itself a valid snapshot — this is how windowed
// percentiles are derived from the time-series rings. The exemplar of
// the newer snapshot is kept.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := s
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	for i := range out.Buckets {
		out.Buckets[i] -= prev.Buckets[i]
	}
	return out
}

// Merge adds another snapshot bucket-wise (cross-node aggregation: the
// power-of-two edges are shared by construction). The slower exemplar
// wins.
func (s HistogramSnapshot) Merge(other HistogramSnapshot) HistogramSnapshot {
	out := s
	out.Count += other.Count
	out.Sum += other.Sum
	for i := range out.Buckets {
		out.Buckets[i] += other.Buckets[i]
	}
	if other.Exemplar.Dur > out.Exemplar.Dur {
		out.Exemplar = other.Exemplar
	}
	return out
}

// CountAbove reports how many observations fell in buckets strictly
// above d — buckets whose full range exceeds d. With power-of-two
// edges this is exact when d is an edge and conservative (over-counts)
// otherwise, the safe direction for SLO burn detection.
func (s HistogramSnapshot) CountAbove(d time.Duration) int64 {
	var below int64
	for b := 0; b < histBuckets; b++ {
		if bucketUpper(b) > d {
			break
		}
		below += s.Buckets[b]
	}
	return s.Count - below
}

// FractionAbove is CountAbove over Count (0 for an empty snapshot).
func (s HistogramSnapshot) FractionAbove(d time.Duration) float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.CountAbove(d)) / float64(s.Count)
}

// bucketUpper is the (exclusive) upper edge of bucket b.
func bucketUpper(b int) time.Duration {
	if b <= 0 {
		return time.Microsecond
	}
	return time.Duration(uint64(1)<<uint(b)) * time.Microsecond
}

// Mean reports the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Percentile reports the upper edge of the bucket containing the p-th
// percentile observation (p in [0,100]). Resolution is one power of two
// in microseconds.
func (s HistogramSnapshot) Percentile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for b, n := range s.Buckets {
		seen += n
		if seen > rank {
			return bucketUpper(b)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Max reports the upper edge of the highest non-empty bucket.
func (s HistogramSnapshot) Max() time.Duration {
	for b := histBuckets - 1; b >= 0; b-- {
		if s.Buckets[b] != 0 {
			return bucketUpper(b)
		}
	}
	return 0
}

// Gauge is a read-on-demand instrument: a callback sampled at snapshot
// time, for values that are cheaper to ask for than to track (queue
// backlogs, pool depths).
type Gauge func() int64

// Registry is a named collection of instruments plus one event log.
// Lookups take a lock and may allocate; callers resolve instruments once
// at construction and hold the pointers. All methods are safe on a nil
// *Registry (they return nil instruments, which in turn discard
// updates).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]Gauge
	events   *EventLog
}

// NewRegistry creates an empty registry with a DefaultEventCap event
// log.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
		gauges:   map[string]Gauge{},
		events:   NewEventLog(DefaultEventCap),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterGauge installs (or replaces) the named gauge callback.
func (r *Registry) RegisterGauge(name string, g Gauge) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = g
	r.mu.Unlock()
}

// UnregisterGauge removes the named gauge (labeled gauges of departed
// tenants). Unknown names are ignored.
func (r *Registry) UnregisterGauge(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.gauges, name)
	r.mu.Unlock()
}

// Events returns the registry's event log (nil for a nil registry).
func (r *Registry) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.events
}

// Event appends one event to the registry's log.
func (r *Registry) Event(kind EventKind, subject, detail string) {
	if r != nil {
		r.events.Append(kind, subject, detail)
	}
}
