package obs

import (
	"fmt"
	"sync"
	"time"
)

// Actuator is the control surface an SLO tracker drives when its
// objective burns. The QoS scheduler implements it (qos imports obs, so
// the interface lives here to keep the dependency one-way): stepping the
// Background class rate down slows repair/rebuild traffic, giving the
// foreground back its latency budget; stepping it back up restores
// repair bandwidth once the budget recovers.
type Actuator interface {
	// BackgroundRate reports the current Background class rate in
	// bytes/sec.
	BackgroundRate() int64
	// SetBackgroundRate re-tunes the Background class rate.
	SetBackgroundRate(bps int64)
}

// SLO tracker defaults.
const (
	DefaultSLOFastWindow    = 10 * time.Second
	DefaultSLOSlowWindow    = time.Minute
	DefaultSLOBurnThreshold = 2.0
	DefaultSLOErrorBudget   = 0.01
	DefaultSLORecoverEvals  = 3
)

// sloRingCap bounds the tracker's sample history.
const sloRingCap = 512

// SLOConfig describes one service-level objective and the feedback it
// drives.
type SLOConfig struct {
	// Name tags the slo.* gauges and events ("fg-latency").
	Name string
	// Registry receives slo.* gauges and burn/recover events (optional).
	Registry *Registry

	// LatencyHist + LatencyObjective: observations above the objective
	// count against the budget. CountAbove rounds whole buckets up, the
	// conservative direction. Optional (error-only SLO without it).
	LatencyHist      *Histogram
	LatencyObjective time.Duration

	// ErrorCounter / OpsCounter: the error-rate objective — errors per
	// op count against the budget. Optional (latency-only SLO).
	ErrorCounter *Counter
	OpsCounter   *Counter

	// ErrorBudget is the allowed bad fraction (default 1%). Burn rate is
	// badFraction/ErrorBudget: 1.0 means consuming budget exactly as
	// fast as allowed.
	ErrorBudget float64

	// FastWindow and SlowWindow are the multi-window burn horizons: the
	// SLO only trips when BOTH exceed BurnThreshold — the fast window
	// makes feedback prompt, the slow window keeps one latency spike
	// from thrashing the actuator.
	FastWindow    time.Duration
	SlowWindow    time.Duration
	BurnThreshold float64

	// Actuator, when set, closes the loop. Down-steps halve the
	// Background rate (at most once per FastWindow) to the
	// MinBackgroundRate floor; after RecoverEvals consecutive healthy
	// evaluations the rate doubles back (at most once per SlowWindow)
	// toward the baseline captured at construction.
	Actuator          Actuator
	MinBackgroundRate int64
	RecoverEvals      int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Name == "" {
		c.Name = "slo"
	}
	if c.ErrorBudget <= 0 {
		c.ErrorBudget = DefaultSLOErrorBudget
	}
	if c.FastWindow <= 0 {
		c.FastWindow = DefaultSLOFastWindow
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = DefaultSLOSlowWindow
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = DefaultSLOBurnThreshold
	}
	if c.RecoverEvals <= 0 {
		c.RecoverEvals = DefaultSLORecoverEvals
	}
	return c
}

// sloSample is one evaluation-time reading of the SLO's inputs.
type sloSample struct {
	at   int64 // unix-nano
	hist HistogramSnapshot
	errs int64
	ops  int64
}

// SLOStatus is a point-in-time view of a tracker, for dashboards and
// tests.
type SLOStatus struct {
	Name     string  `json:"name"`
	Burning  bool    `json:"burning"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// BGRate is the actuator's current Background rate (0 without one).
	BGRate int64 `json:"bg_rate_bps,omitempty"`
	// Baseline is the rate feedback restores toward.
	Baseline int64 `json:"baseline_bps,omitempty"`
}

// SLOTracker evaluates one SLO with multi-window burn rates and
// optionally actuates the QoS plane. Drive it with Start (background
// ticker) or EvalNow (tests). A nil tracker is inert.
type SLOTracker struct {
	cfg SLOConfig

	mu         sync.Mutex
	ring       [sloRingCap]sloSample
	head, n    int
	burning    bool
	fastBurn   float64
	slowBurn   float64
	healthyRun int
	baseline   int64
	lastDown   int64 // unix-nano of the last down-step
	lastUp     int64

	stop chan struct{}
	done chan struct{}
}

// NewSLOTracker builds a tracker; the actuator's current rate (if any)
// is captured as the restore baseline. slo.* gauges are registered on
// cfg.Registry:
//
//	slo.<name>.fast_burn_milli, slo.<name>.slow_burn_milli,
//	slo.<name>.burning, slo.<name>.bg_rate_bps
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	t := &SLOTracker{cfg: cfg}
	if cfg.Actuator != nil {
		t.baseline = cfg.Actuator.BackgroundRate()
		if t.cfg.MinBackgroundRate <= 0 {
			t.cfg.MinBackgroundRate = t.baseline / 16
			if t.cfg.MinBackgroundRate < 1 {
				t.cfg.MinBackgroundRate = 1
			}
		}
	}
	if r := cfg.Registry; r != nil {
		pre := "slo." + cfg.Name + "."
		r.RegisterGauge(pre+"fast_burn_milli", func() int64 {
			st := t.Status()
			return int64(st.FastBurn * 1000)
		})
		r.RegisterGauge(pre+"slow_burn_milli", func() int64 {
			st := t.Status()
			return int64(st.SlowBurn * 1000)
		})
		r.RegisterGauge(pre+"burning", func() int64 {
			if t.Status().Burning {
				return 1
			}
			return 0
		})
		if cfg.Actuator != nil {
			r.RegisterGauge(pre+"bg_rate_bps", func() int64 {
				return cfg.Actuator.BackgroundRate()
			})
		}
	}
	return t
}

// Status reports the tracker's current burn state.
func (t *SLOTracker) Status() SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	t.mu.Lock()
	st := SLOStatus{
		Name:     t.cfg.Name,
		Burning:  t.burning,
		FastBurn: t.fastBurn,
		SlowBurn: t.slowBurn,
		Baseline: t.baseline,
	}
	t.mu.Unlock()
	if t.cfg.Actuator != nil {
		st.BGRate = t.cfg.Actuator.BackgroundRate()
	}
	return st
}

// Start evaluates the SLO every interval until Stop.
func (t *SLOTracker) Start(interval time.Duration) {
	if t == nil || interval <= 0 {
		return
	}
	t.mu.Lock()
	if t.stop != nil {
		t.mu.Unlock()
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	stop, done := t.stop, t.done
	t.mu.Unlock()
	go func() {
		defer close(done)
		tk := time.NewTicker(interval)
		defer tk.Stop()
		for {
			select {
			case <-tk.C:
				t.EvalNow()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts background evaluation and waits for the goroutine.
func (t *SLOTracker) Stop() {
	if t == nil {
		return
	}
	t.mu.Lock()
	stop, done := t.stop, t.done
	t.stop, t.done = nil, nil
	t.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// EvalNow takes one sample, recomputes both windows' burn rates, and —
// when an actuator is configured — steps the Background rate. Returns
// the resulting status.
func (t *SLOTracker) EvalNow() SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	now := time.Now()
	var s sloSample
	s.at = now.UnixNano()
	if t.cfg.LatencyHist != nil {
		s.hist = t.cfg.LatencyHist.Snapshot()
	}
	s.errs = t.cfg.ErrorCounter.Value()
	s.ops = t.cfg.OpsCounter.Value()

	t.mu.Lock()
	t.ring[t.head] = s
	t.head = (t.head + 1) % sloRingCap
	if t.n < sloRingCap {
		t.n++
	}
	fast, fok := t.burnLocked(s, t.cfg.FastWindow)
	slow, sok := t.burnLocked(s, t.cfg.SlowWindow)
	t.fastBurn, t.slowBurn = fast, slow
	burning := fok && sok && fast >= t.cfg.BurnThreshold && slow >= t.cfg.BurnThreshold
	wasBurning := t.burning
	t.burning = burning

	reg, name := t.cfg.Registry, t.cfg.Name
	if burning && !wasBurning {
		reg.Event(EventSLOBurn, name, fmt.Sprintf("burn fast=%.2f slow=%.2f threshold=%.2f", fast, slow, t.cfg.BurnThreshold))
	}
	if !burning && wasBurning {
		reg.Event(EventSLORecover, name, fmt.Sprintf("burn fast=%.2f slow=%.2f", fast, slow))
	}

	act := t.cfg.Actuator
	if act != nil {
		if burning {
			t.healthyRun = 0
			if cur := act.BackgroundRate(); cur > t.cfg.MinBackgroundRate &&
				s.at-t.lastDown >= int64(t.cfg.FastWindow) {
				nw := cur / 2
				if nw < t.cfg.MinBackgroundRate {
					nw = t.cfg.MinBackgroundRate
				}
				t.lastDown = s.at
				act.SetBackgroundRate(nw)
				reg.Event(EventQoSStep, name, fmt.Sprintf("bg rate %d -> %d bps (slo burning)", cur, nw))
			}
		} else {
			t.healthyRun++
			if cur := act.BackgroundRate(); cur < t.baseline &&
				t.healthyRun >= t.cfg.RecoverEvals &&
				s.at-t.lastUp >= int64(t.cfg.SlowWindow) {
				nw := cur * 2
				if nw > t.baseline {
					nw = t.baseline
				}
				t.lastUp = s.at
				t.healthyRun = 0
				act.SetBackgroundRate(nw)
				reg.Event(EventQoSStep, name, fmt.Sprintf("bg rate %d -> %d bps (budget recovered)", cur, nw))
			}
		}
	}

	st := SLOStatus{Name: name, Burning: burning, FastBurn: fast, SlowBurn: slow, Baseline: t.baseline}
	t.mu.Unlock()
	if act != nil {
		st.BGRate = act.BackgroundRate()
	}
	return st
}

// burnLocked computes the burn rate over the trailing window ending at
// cur: the worse of the latency and error objectives, as a multiple of
// the error budget. The reference sample is the newest one at least
// window old (or the oldest retained, so a young tracker can still
// react). ok is false without any usable reference.
func (t *SLOTracker) burnLocked(cur sloSample, window time.Duration) (float64, bool) {
	if t.n < 2 {
		return 0, false
	}
	var ref sloSample
	found := false
	for k := 1; k < t.n; k++ {
		s := t.ring[(t.head-1-k+2*sloRingCap)%sloRingCap]
		ref = s
		if cur.at-s.at >= int64(window) {
			found = true
			break
		}
	}
	_ = found // oldest retained sample stands in while history is short
	if ref.at == 0 || ref.at >= cur.at {
		return 0, false
	}
	var burn float64
	if t.cfg.LatencyHist != nil {
		delta := cur.hist.Sub(ref.hist)
		if delta.Count > 0 {
			burn = delta.FractionAbove(t.cfg.LatencyObjective) / t.cfg.ErrorBudget
		}
	}
	if opsD := cur.ops - ref.ops; opsD > 0 {
		errD := cur.errs - ref.errs
		if errD < 0 {
			errD = 0
		}
		if eb := (float64(errD) / float64(opsD)) / t.cfg.ErrorBudget; eb > burn {
			burn = eb
		}
	}
	return burn, true
}
