package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labeled instruments: CounterVec / HistogramVec / GaugeVec families
// keyed by a fixed set of label keys (tenant, device, op). A child
// instrument is an ordinary Counter/Histogram registered under the
// canonical labeled name
//
//	base{key1="val1",key2="val2"}
//
// so children flow through Snapshot, the JSON surface, and cross-node
// aggregation (counters merge by sum keyed on the full labeled name)
// with no extra machinery, and WriteProm re-renders the suffix as
// proper Prometheus label pairs. Children are resolved once and cached
// in the vec (the hot path holds the child pointer, never the vec).

// labeledName renders the canonical child name. Values are escaped the
// way the Prometheus text format requires (backslash, quote, newline),
// so the stored form can be emitted verbatim inside braces.
func labeledName(base string, keys, vals []string) string {
	var b strings.Builder
	b.Grow(len(base) + 16*len(keys))
	b.WriteString(base)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(val(vals, i)))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func val(vals []string, i int) string {
	if i < len(vals) {
		return vals[i]
	}
	return ""
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// SplitLabeled splits a (possibly) labeled instrument name into its
// base and the label pairs inside the braces ("" when unlabeled).
func SplitLabeled(name string) (base, labels string) {
	if !strings.HasSuffix(name, "}") {
		return name, ""
	}
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// LabelName joins base and keyed values into the canonical labeled
// instrument name — the form vecs register their children under, and
// the key callers use to look a child up in a Snapshot.
func LabelName(base string, keyvals ...string) string {
	keys := make([]string, 0, len(keyvals)/2)
	vals := make([]string, 0, len(keyvals)/2)
	for i := 0; i+1 < len(keyvals); i += 2 {
		keys = append(keys, keyvals[i])
		vals = append(vals, keyvals[i+1])
	}
	return labeledName(base, keys, vals)
}

// vecCacheKey joins label values with a separator that cannot appear in
// a single rendered value unescaped.
func vecCacheKey(vals []string) string {
	return strings.Join(vals, "\x1f")
}

// CounterVec is a family of counters sharing one base name, keyed by a
// fixed list of label keys. A nil *CounterVec yields nil children,
// which discard updates.
type CounterVec struct {
	r    *Registry
	base string
	keys []string

	mu       sync.RWMutex
	children map[string]*Counter
}

// CounterVec returns a labeled counter family rooted at base.
func (r *Registry) CounterVec(base string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r: r, base: base, keys: keys, children: map[string]*Counter{}}
}

// With resolves (creating on first use) the child for the given label
// values, in key order. Resolve once, hold the pointer.
func (v *CounterVec) With(vals ...string) *Counter {
	if v == nil {
		return nil
	}
	k := vecCacheKey(vals)
	v.mu.RLock()
	c := v.children[k]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	c = v.r.Counter(labeledName(v.base, v.keys, vals))
	v.mu.Lock()
	v.children[k] = c
	v.mu.Unlock()
	return c
}

// HistogramVec is a family of histograms sharing one base name.
type HistogramVec struct {
	r    *Registry
	base string
	keys []string

	mu       sync.RWMutex
	children map[string]*Histogram
}

// HistogramVec returns a labeled histogram family rooted at base.
func (r *Registry) HistogramVec(base string, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{r: r, base: base, keys: keys, children: map[string]*Histogram{}}
}

// With resolves (creating on first use) the child histogram.
func (v *HistogramVec) With(vals ...string) *Histogram {
	if v == nil {
		return nil
	}
	k := vecCacheKey(vals)
	v.mu.RLock()
	h := v.children[k]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	h = v.r.Histogram(labeledName(v.base, v.keys, vals))
	v.mu.Lock()
	v.children[k] = h
	v.mu.Unlock()
	return h
}

// GaugeVal is a stored-value gauge: unlike the callback Gauge it holds
// the value itself, which suits labeled families whose members come and
// go (per-tenant shares). A nil *GaugeVal discards updates.
type GaugeVal struct {
	v atomic.Int64
}

// Set stores the value.
func (g *GaugeVal) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n.
func (g *GaugeVal) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the current value (zero for nil).
func (g *GaugeVal) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// GaugeVec is a family of stored-value gauges sharing one base name.
// Children register themselves as ordinary registry gauges under the
// canonical labeled name; Delete unregisters one (a departed tenant).
type GaugeVec struct {
	r    *Registry
	base string
	keys []string

	mu       sync.Mutex
	children map[string]*GaugeVal
}

// GaugeVec returns a labeled gauge family rooted at base.
func (r *Registry) GaugeVec(base string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r: r, base: base, keys: keys, children: map[string]*GaugeVal{}}
}

// With resolves (creating and registering on first use) the child
// gauge.
func (v *GaugeVec) With(vals ...string) *GaugeVal {
	if v == nil {
		return nil
	}
	k := vecCacheKey(vals)
	v.mu.Lock()
	defer v.mu.Unlock()
	g := v.children[k]
	if g == nil {
		g = &GaugeVal{}
		v.children[k] = g
		v.r.RegisterGauge(labeledName(v.base, v.keys, vals), g.Value)
	}
	return g
}

// Delete unregisters and forgets the child for the given label values.
func (v *GaugeVec) Delete(vals ...string) {
	if v == nil {
		return
	}
	k := vecCacheKey(vals)
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.children[k]; ok {
		delete(v.children, k)
		v.r.UnregisterGauge(labeledName(v.base, v.keys, vals))
	}
}

// Labels parses the inner label string of a labeled name back into
// key/value pairs, sorted by key — the consumer side (raidxctl top
// folding per-tenant gauges into a table). Escapes are undone.
func Labels(labels string) [][2]string {
	if labels == "" {
		return nil
	}
	var out [][2]string
	for len(labels) > 0 {
		eq := strings.Index(labels, `="`)
		if eq < 0 {
			break
		}
		key := labels[:eq]
		rest := labels[eq+2:]
		var b strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
			i++
		}
		out = append(out, [2]string{key, b.String()})
		rest = rest[i:]
		rest = strings.TrimPrefix(rest, `"`)
		labels = strings.TrimPrefix(rest, ",")
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// LabelValue extracts one label's value from a labeled instrument name
// ("" when absent).
func LabelValue(name, key string) string {
	_, labels := SplitLabeled(name)
	for _, kv := range Labels(labels) {
		if kv[0] == key {
			return kv[1]
		}
	}
	return ""
}
