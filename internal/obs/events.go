package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultEventCap is the ring capacity of a registry's event log: deep
// enough to hold the interesting transitions of a chaotic episode,
// bounded so a flapping device cannot grow memory.
const DefaultEventCap = 512

// EventKind classifies a state transition in the event log.
type EventKind string

// The transitions the array records. Subjects are device identifiers
// ("addr/d0" for remote disks, disk ids server-side, "raidx" for
// array-level events).
const (
	// EventSuspect: a transport-level failure marked a device suspect;
	// the heartbeat probe is running.
	EventSuspect EventKind = "suspect"
	// EventReadmit: a probe answered and the device left the suspect
	// state (detail says whether it came back healthy).
	EventReadmit EventKind = "readmit"
	// EventDiskFailed: the peer answered with a disk-failed error; the
	// disk is down but the node is reachable.
	EventDiskFailed EventKind = "disk-failed"
	// EventRetry: an idempotent operation is being re-sent after a
	// transport failure.
	EventRetry EventKind = "retry"
	// EventFailover: a read was redirected to mirror images after the
	// primary copy failed mid-operation.
	EventFailover EventKind = "failover-read"
	// EventDegradedMount: an array was assembled with unavailable
	// members.
	EventDegradedMount EventKind = "degraded-mount"
	// EventRebuildStart / EventRebuildEnd bracket a disk rebuild.
	EventRebuildStart EventKind = "rebuild-start"
	EventRebuildEnd   EventKind = "rebuild-end"
	// EventSwap: a member device was hot-swapped.
	EventSwap EventKind = "swap"
	// EventResyncStart / EventResyncEnd bracket a delta resync: dirty
	// regions replayed to a readmitted stale mirror (detail carries the
	// region and byte counts — the evidence that a blip cost a delta,
	// not a whole-disk rebuild).
	EventResyncStart EventKind = "resync-start"
	EventResyncEnd   EventKind = "resync-end"
	// EventRepairState: the repair supervisor moved a device through its
	// state machine (detail is "from -> to" plus the trigger).
	EventRepairState EventKind = "repair-state"
	// EventSLOBurn: an SLO's burn rate crossed its threshold in both the
	// fast and slow windows (detail carries the windows and burn rates).
	EventSLOBurn EventKind = "slo-burn"
	// EventSLORecover: a burning SLO returned below threshold.
	EventSLORecover EventKind = "slo-recover"
	// EventQoSStep: SLO feedback re-tuned a QoS class rate (detail is
	// "old -> new bps" plus the direction and reason).
	EventQoSStep EventKind = "qos-step"
	// EventRebalanceStart / EventRebalanceEnd bracket an online
	// membership change: a layout-epoch migration moving the minimal
	// block set to the new geometry.
	EventRebalanceStart EventKind = "rebalance-start"
	EventRebalanceEnd   EventKind = "rebalance-end"
)

// eventSeq is the process-wide event sequence: one atomic counter
// shared by every EventLog, so events recorded by different components
// (engine, cdd client, manager) carry comparable sequence numbers and a
// merged view (raidxctl stats over several registries) can be put in
// true append order. Seq starts at 1.
var eventSeq atomic.Uint64

// Event is one logged state transition.
type Event struct {
	// Seq is the process-wide append sequence number (monotonic across
	// all logs, never recycled), so events from different logs merge
	// into one total order.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind EventKind `json:"kind"`
	// Subject identifies the device or array the event concerns.
	Subject string `json:"subject"`
	// Detail is a free-form explanation (the triggering error, the
	// probe outcome).
	Detail string `json:"detail,omitempty"`
}

// EventLog is a fixed-capacity ring of Events. Appends are O(1) and
// never grow memory; once full, the oldest events are overwritten. A
// nil *EventLog discards appends and reports no events.
type EventLog struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever appended
	drop atomic.Int64
}

// NewEventLog creates a log holding the last capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{ring: make([]Event, 0, capacity)}
}

// Append records one event.
func (l *EventLog) Append(kind EventKind, subject, detail string) {
	if l == nil {
		return
	}
	e := Event{Seq: eventSeq.Add(1), Time: time.Now(), Kind: kind, Subject: subject, Detail: detail}
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next%uint64(cap(l.ring))] = e
		l.drop.Add(1)
	}
	l.next++
	l.mu.Unlock()
}

// Events returns the retained events, oldest first (sorted by Seq:
// concurrent appenders may land in the ring slightly out of sequence
// order, since the sequence number is taken before the ring slot).
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Event, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		out = append(out, l.ring...)
	} else {
		start := l.next % uint64(cap(l.ring))
		out = append(out, l.ring[start:]...)
		out = append(out, l.ring[:start]...)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Total reports how many events were ever appended (including ones the
// ring has since overwritten).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Dropped reports how many events have been overwritten.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.drop.Load()
}
