package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WriteProm renders the registry in the Prometheus text exposition
// format (the /metrics endpoint body):
//
//   - counters as `counter` samples with a `_total` suffix;
//   - gauges as `gauge` samples;
//   - histograms as `histogram` families — cumulative `_bucket{le="..."}`
//     samples over the power-of-two-microsecond edges (converted to
//     seconds, the Prometheus base unit for time), plus `_sum` and
//     `_count`;
//   - the event log's totals as two counters
//     (`obs_events_total`, `obs_events_dropped_total`).
//
// Instrument names are sanitized to the metric-name grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): every other rune becomes '_', so
// "cdd.read_latency" exports as "cdd_read_latency".
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.Snapshot()
	}
	gauges := make(map[string]Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	events := r.events
	r.mu.RUnlock()

	for _, name := range SortedKeys(counters) {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name]); err != nil {
			return err
		}
	}
	// Gauge callbacks run outside the registry lock (they may take
	// component locks of their own).
	for _, name := range SortedKeys(gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[name]()); err != nil {
			return err
		}
	}
	for _, name := range SortedKeys(hists) {
		if err := writePromHist(w, promName(name)+"_seconds", hists[name]); err != nil {
			return err
		}
	}
	if events != nil {
		if _, err := fmt.Fprintf(w, "# TYPE obs_events_total counter\nobs_events_total %d\n", events.Total()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE obs_events_dropped_total counter\nobs_events_dropped_total %d\n", events.Dropped()); err != nil {
			return err
		}
	}
	return nil
}

// writePromHist renders one histogram family: cumulative buckets in
// seconds, then sum and count.
func writePromHist(w io.Writer, pn string, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	var cum int64
	// The last internal bucket absorbs everything above its lower edge,
	// so it has no finite upper bound: it is represented by +Inf alone.
	for b := 0; b < histBuckets-1; b++ {
		cum += s.Buckets[b]
		le := strconv.FormatFloat(bucketUpper(b).Seconds(), 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, s.Count); err != nil {
		return err
	}
	sum := strconv.FormatFloat(time.Duration(s.Sum).Seconds(), 'g', -1, 64)
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, sum, pn, s.Count); err != nil {
		return err
	}
	return nil
}

// promName maps an instrument name onto the Prometheus metric-name
// grammar: runes outside [a-zA-Z0-9_:] become '_', and a leading digit
// gets a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}
