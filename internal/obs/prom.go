package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// promSample is one exportable sample: the label pairs rendered inside
// the braces ("" for an unlabeled instrument) and its value source.
type promSample struct {
	labels string
	value  int64
	hist   HistogramSnapshot
}

// promFamily groups the samples sharing one base instrument name.
type promFamily struct {
	base    string
	samples []promSample
}

// groupFamilies folds a flat name→sample map into sorted families,
// splitting the canonical `base{k="v"}` child names produced by the
// labeled vecs.
func groupFamilies(names []string, sample func(name string) promSample) []promFamily {
	byBase := map[string]*promFamily{}
	for _, name := range names {
		base, labels := SplitLabeled(name)
		f := byBase[base]
		if f == nil {
			f = &promFamily{base: base}
			byBase[base] = f
		}
		s := sample(name)
		s.labels = labels
		f.samples = append(f.samples, s)
	}
	out := make([]promFamily, 0, len(byBase))
	for _, f := range byBase {
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

// WriteProm renders the registry in the Prometheus text exposition
// format (the /metrics endpoint body):
//
//   - counters as `counter` samples with a `_total` suffix;
//   - gauges as `gauge` samples;
//   - histograms as `histogram` families — cumulative `_bucket{le="..."}`
//     samples over the power-of-two-microsecond edges (converted to
//     seconds, the Prometheus base unit for time), plus `_sum` and
//     `_count`;
//   - labeled children (`base{tenant="a"}` names from the vec
//     instruments) as samples of one shared family, with their label
//     pairs rendered inside the braces;
//   - the event log's totals as two counters
//     (`obs_events_total`, `obs_events_dropped_total`).
//
// Instrument names are sanitized to the metric-name grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): every other rune becomes '_', so
// "cdd.read_latency" exports as "cdd_read_latency".
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.Snapshot()
	}
	gauges := make(map[string]Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	events := r.events
	r.mu.RUnlock()

	for _, f := range groupFamilies(SortedKeys(counters), func(n string) promSample {
		return promSample{value: counters[n]}
	}) {
		pn := promName(f.base) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, promLabels(s.labels), s.value); err != nil {
				return err
			}
		}
	}
	// Gauge callbacks run outside the registry lock (they may take
	// component locks of their own).
	for _, f := range groupFamilies(SortedKeys(gauges), func(n string) promSample {
		return promSample{value: gauges[n]()}
	}) {
		pn := promName(f.base)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, promLabels(s.labels), s.value); err != nil {
				return err
			}
		}
	}
	for _, f := range groupFamilies(SortedKeys(hists), func(n string) promSample {
		return promSample{hist: hists[n]}
	}) {
		pn := promName(f.base) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, s := range f.samples {
			if err := writePromHist(w, pn, s.labels, s.hist); err != nil {
				return err
			}
		}
	}
	if events != nil {
		if _, err := fmt.Fprintf(w, "# TYPE obs_events_total counter\nobs_events_total %d\n", events.Total()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE obs_events_dropped_total counter\nobs_events_dropped_total %d\n", events.Dropped()); err != nil {
			return err
		}
	}
	return nil
}

// promLabels renders stored label pairs as a brace block ("" for none).
func promLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// promLabelsWith appends one extra pair (le) to a stored label block.
func promLabelsWith(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// writePromHist renders one histogram member: cumulative buckets in
// seconds, then sum and count, each carrying the member's label pairs.
func writePromHist(w io.Writer, pn, labels string, s HistogramSnapshot) error {
	var cum int64
	// The last internal bucket absorbs everything above its lower edge,
	// so it has no finite upper bound: it is represented by +Inf alone.
	for b := 0; b < histBuckets-1; b++ {
		cum += s.Buckets[b]
		le := strconv.FormatFloat(bucketUpper(b).Seconds(), 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, promLabelsWith(labels, fmt.Sprintf("le=%q", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, promLabelsWith(labels, `le="+Inf"`), s.Count); err != nil {
		return err
	}
	sum := strconv.FormatFloat(time.Duration(s.Sum).Seconds(), 'g', -1, 64)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", pn, promLabels(labels), sum, pn, promLabels(labels), s.Count); err != nil {
		return err
	}
	return nil
}

// promName maps an instrument name onto the Prometheus metric-name
// grammar: runes outside [a-zA-Z0-9_:] become '_', and a leading digit
// gets a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}
