package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Sampler defaults: one sample per second, two minutes of history, with
// rates derived over 10s and 60s windows.
const (
	DefaultSampleInterval = time.Second
	DefaultSampleCapacity = 120
)

// DefaultWindows are the lookback windows Series derives rates and
// windowed percentiles over when the config leaves Windows nil.
var DefaultWindows = []time.Duration{10 * time.Second, time.Minute}

// SamplerConfig tunes a Sampler. Zero values take the defaults above.
type SamplerConfig struct {
	// Interval between background samples.
	Interval time.Duration
	// Capacity is the ring length: how many samples are retained.
	Capacity int
	// Windows are the lookbacks Series reports rates over.
	Windows []time.Duration
}

func (c SamplerConfig) withDefaults() SamplerConfig {
	if c.Interval <= 0 {
		c.Interval = DefaultSampleInterval
	}
	if c.Capacity < 2 {
		c.Capacity = DefaultSampleCapacity
	}
	if len(c.Windows) == 0 {
		c.Windows = DefaultWindows
	}
	return c
}

// scalarRing holds one counter's or gauge's sampled values, slot-aligned
// with the sampler's shared time ring.
type scalarRing struct {
	vals  []int64
	last  uint64 // sample sequence of the most recent write
	valid int    // slots written so far, capped at capacity
}

// histRing holds one histogram's sampled snapshots.
type histRing struct {
	vals  []HistogramSnapshot
	last  uint64
	valid int
}

// Sampler periodically snapshots a Registry into fixed-size rings and
// derives windowed rates from them: ops/s and MB/s from counters,
// windowed percentiles from histogram deltas. All ring storage is
// allocated when an instrument is first seen; steady-state sampling is
// ring writes plus atomic loads, with no per-tick allocation (beyond a
// reused scratch slice for gauge callbacks). A nil *Sampler is inert.
type Sampler struct {
	reg *Registry
	cfg SamplerConfig

	mu       sync.Mutex
	times    []int64 // unix-nano per slot
	head     int     // next slot to write
	n        int     // slots filled, capped at capacity
	seq      uint64  // total samples taken
	counters map[string]*scalarRing
	gauges   map[string]*scalarRing
	hists    map[string]*histRing

	gaugeScratch []gaugeSample

	stop chan struct{}
	done chan struct{}
}

type gaugeSample struct {
	name string
	g    Gauge
}

// NewSampler builds a sampler over reg. Call Start to begin background
// sampling, or SampleNow from a test clock.
func NewSampler(reg *Registry, cfg SamplerConfig) *Sampler {
	if reg == nil {
		return nil
	}
	cfg = cfg.withDefaults()
	return &Sampler{
		reg:      reg,
		cfg:      cfg,
		times:    make([]int64, cfg.Capacity),
		counters: map[string]*scalarRing{},
		gauges:   map[string]*scalarRing{},
		hists:    map[string]*histRing{},
	}
}

// Interval reports the configured sampling interval.
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.cfg.Interval
}

// Start launches the background sampling goroutine. Starting a started
// sampler is a no-op.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.SampleNow()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts background sampling and waits for the goroutine to exit.
// The rings stay readable.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// SampleNow takes one sample immediately: every registry instrument is
// read into its ring slot. Instruments created since the last sample get
// rings lazily; instruments removed (unregistered gauges) simply stop
// updating and age out of Series.
func (s *Sampler) SampleNow() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	slot := s.head
	s.times[slot] = time.Now().UnixNano()

	r := s.reg
	r.mu.RLock()
	for name, c := range r.counters {
		s.scalarLocked(s.counters, name).write(slot, c.Value(), s.seq)
	}
	for name, h := range r.hists {
		rg := s.hists[name]
		if rg == nil {
			rg = &histRing{vals: make([]HistogramSnapshot, s.cfg.Capacity)}
			s.hists[name] = rg
		}
		rg.vals[slot] = h.Snapshot()
		rg.last = s.seq
		if rg.valid < s.cfg.Capacity {
			rg.valid++
		}
	}
	s.gaugeScratch = s.gaugeScratch[:0]
	for name, g := range r.gauges {
		s.gaugeScratch = append(s.gaugeScratch, gaugeSample{name, g})
	}
	r.mu.RUnlock()
	// Gauge callbacks run outside the registry lock (they may take
	// component locks of their own).
	for _, gs := range s.gaugeScratch {
		s.scalarLocked(s.gauges, gs.name).write(slot, gs.g(), s.seq)
	}

	s.head = (s.head + 1) % s.cfg.Capacity
	if s.n < s.cfg.Capacity {
		s.n++
	}
}

func (s *Sampler) scalarLocked(m map[string]*scalarRing, name string) *scalarRing {
	rg := m[name]
	if rg == nil {
		rg = &scalarRing{vals: make([]int64, s.cfg.Capacity)}
		m[name] = rg
	}
	return rg
}

func (rg *scalarRing) write(slot int, v int64, seq uint64) {
	rg.vals[slot] = v
	rg.last = seq
	if rg.valid < len(rg.vals) {
		rg.valid++
	}
}

// lookbackLocked translates a window into a slot pair: the latest slot
// and the slot ~window earlier (clamped to available history). ok is
// false with fewer than two comparable samples.
func (s *Sampler) lookbackLocked(valid int, window time.Duration) (last, past int, elapsed time.Duration, ok bool) {
	avail := s.n
	if valid < avail {
		avail = valid
	}
	if avail < 2 {
		return 0, 0, 0, false
	}
	k := int(window / s.cfg.Interval)
	if k < 1 {
		k = 1
	}
	if k > avail-1 {
		k = avail - 1
	}
	cap := s.cfg.Capacity
	last = (s.head - 1 + cap) % cap
	past = (last - k + 2*cap) % cap
	elapsed = time.Duration(s.times[last] - s.times[past])
	if elapsed <= 0 {
		return 0, 0, 0, false
	}
	return last, past, elapsed, true
}

// CounterRate reports the named counter's increase per second over the
// trailing window (0 when unknown or not enough history).
func (s *Sampler) CounterRate(name string, window time.Duration) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rg := s.counters[name]
	if rg == nil {
		return 0
	}
	last, past, elapsed, ok := s.lookbackLocked(rg.valid, window)
	if !ok {
		return 0
	}
	return float64(rg.vals[last]-rg.vals[past]) / elapsed.Seconds()
}

// WindowHistogram reports the named histogram's observations within the
// trailing window, as a snapshot delta suitable for Percentile.
func (s *Sampler) WindowHistogram(name string, window time.Duration) (HistogramSnapshot, bool) {
	if s == nil {
		return HistogramSnapshot{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rg := s.hists[name]
	if rg == nil {
		return HistogramSnapshot{}, false
	}
	last, past, _, ok := s.lookbackLocked(rg.valid, window)
	if !ok {
		return HistogramSnapshot{}, false
	}
	return rg.vals[last].Sub(rg.vals[past]), true
}

// CounterSeries is one counter's derived view: current value plus its
// per-second rates over the configured windows.
type CounterSeries struct {
	Value int64     `json:"value"`
	Rates []float64 `json:"rates_per_s"`
}

// GaugeSeries is one gauge's derived view over the retained ring.
type GaugeSeries struct {
	Value int64 `json:"value"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// HistSeries is one histogram's derived view: cumulative stats plus
// windowed stats (percentiles over just the window's observations),
// aligned with Series.Windows.
type HistSeries struct {
	Cum      HistogramStats   `json:"cum"`
	Windowed []HistogramStats `json:"windowed"`
}

// Series is the document served at /stats/series: windowed derived
// rates for every live instrument.
type Series struct {
	Time       time.Time                `json:"time"`
	Interval   time.Duration            `json:"interval_ns"`
	Samples    int                      `json:"samples"`
	Windows    []time.Duration          `json:"windows_ns"`
	Counters   map[string]CounterSeries `json:"counters,omitempty"`
	Gauges     map[string]GaugeSeries   `json:"gauges,omitempty"`
	Histograms map[string]HistSeries    `json:"histograms,omitempty"`
}

// Series derives the windowed view from the rings. Instruments that
// stopped updating (unregistered gauges) are dropped.
func (s *Sampler) Series() Series {
	out := Series{Time: time.Now()}
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out.Interval = s.cfg.Interval
	out.Samples = s.n
	out.Windows = append([]time.Duration(nil), s.cfg.Windows...)
	cap := s.cfg.Capacity
	lastSlot := (s.head - 1 + cap) % cap

	out.Counters = make(map[string]CounterSeries, len(s.counters))
	for name, rg := range s.counters {
		if rg.last != s.seq {
			continue
		}
		cs := CounterSeries{Value: rg.vals[lastSlot], Rates: make([]float64, len(s.cfg.Windows))}
		for i, w := range s.cfg.Windows {
			if last, past, elapsed, ok := s.lookbackLocked(rg.valid, w); ok {
				cs.Rates[i] = float64(rg.vals[last]-rg.vals[past]) / elapsed.Seconds()
			}
		}
		out.Counters[name] = cs
	}
	out.Gauges = make(map[string]GaugeSeries, len(s.gauges))
	for name, rg := range s.gauges {
		if rg.last != s.seq {
			continue
		}
		gs := GaugeSeries{Value: rg.vals[lastSlot], Min: rg.vals[lastSlot], Max: rg.vals[lastSlot]}
		avail := s.n
		if rg.valid < avail {
			avail = rg.valid
		}
		for k := 0; k < avail; k++ {
			v := rg.vals[(lastSlot-k+2*cap)%cap]
			if v < gs.Min {
				gs.Min = v
			}
			if v > gs.Max {
				gs.Max = v
			}
		}
		out.Gauges[name] = gs
	}
	out.Histograms = make(map[string]HistSeries, len(s.hists))
	for name, rg := range s.hists {
		if rg.last != s.seq {
			continue
		}
		hs := HistSeries{Cum: rg.vals[lastSlot].Summary(), Windowed: make([]HistogramStats, len(s.cfg.Windows))}
		for i, w := range s.cfg.Windows {
			if last, past, _, ok := s.lookbackLocked(rg.valid, w); ok {
				hs.Windowed[i] = rg.vals[last].Sub(rg.vals[past]).Summary()
			}
		}
		out.Histograms[name] = hs
	}
	return out
}

// WriteJSON writes the derived series to w (the /stats/series body).
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Series())
}
