package bufpool

import (
	"sync"
	"testing"
)

func TestClassIndex(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{1, 0},
		{511, 0},
		{512, 0},
		{513, 1},
		{1024, 1},
		{4096, 3},
		{4097, 4},
		{64 << 10, 7},
		{16 << 20, numClasses - 1},
		{16<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classIndex(c.n); got != c.want {
			t.Errorf("classIndex(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	b := Get(4096)
	if len(b) != 4096 || cap(b) != 4096 {
		t.Fatalf("Get(4096): len %d cap %d", len(b), cap(b))
	}
	b[0], b[4095] = 0xAB, 0xCD
	Put(b)

	// A short request from the same class reuses the backing array but
	// must not assume contents.
	c := Get(3000)
	if len(c) != 3000 || cap(c) != 4096 {
		t.Fatalf("Get(3000): len %d cap %d, want 3000/4096", len(c), cap(c))
	}
	Put(c)
}

func TestGetEdgeCases(t *testing.T) {
	if b := Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	if b := Get(-5); b != nil {
		t.Fatalf("Get(-5) = %v, want nil", b)
	}
	b := Get(100)
	if len(b) != 100 || cap(b) != MinClass {
		t.Fatalf("Get(100): len %d cap %d, want 100/%d", len(b), cap(b), MinClass)
	}
	Put(b)

	big := Get(MaxClass + 1)
	if len(big) != MaxClass+1 {
		t.Fatalf("oversize Get: len %d", len(big))
	}
	before := Snapshot()
	Put(big) // not a class size: dropped, never pooled
	after := Snapshot()
	if after.Drops != before.Drops+1 {
		t.Fatalf("oversize Put not counted as drop: %+v -> %+v", before, after)
	}
}

func TestPutRejectsForeignCaps(t *testing.T) {
	before := Snapshot()
	Put(make([]byte, 100))           // cap 100: not a class
	Put(make([]byte, 768))           // not a power of two
	Put(Get(4096)[1:])               // subslice not from start: cap 4095
	Put(nil)                         // no-op, not counted
	Put(make([]byte, 0, MinClass/2)) // below MinClass
	after := Snapshot()
	if got := after.Drops - before.Drops; got != 4 {
		t.Fatalf("drops = %d, want 4", got)
	}
	if got := after.Puts - before.Puts; got != 4 {
		t.Fatalf("puts = %d, want 4 (nil not counted)", got)
	}
}

func TestOutstandingBalance(t *testing.T) {
	before := Snapshot()
	var held [][]byte
	for i := 0; i < 64; i++ {
		held = append(held, Get(1<<uint(9+i%8)))
	}
	mid := Snapshot()
	if got := mid.Outstanding() - before.Outstanding(); got != 64 {
		t.Fatalf("outstanding delta while holding = %d, want 64", got)
	}
	for _, b := range held {
		Put(b)
	}
	after := Snapshot()
	if got := after.Outstanding() - before.Outstanding(); got != 0 {
		t.Fatalf("outstanding delta after release = %d, want 0", got)
	}
}

// TestStressNoAliasing hammers the pool from many goroutines, each
// writing a unique pattern into its buffer and verifying it before Put.
// If the pool ever handed the same backing array to two owners, the
// concurrent writes are a data race (caught by -race) and the pattern
// check fails; if a buffer were recycled while still referenced, the
// verify step would observe another goroutine's pattern.
func TestStressNoAliasing(t *testing.T) {
	const (
		workers = 16
		rounds  = 500
	)
	sizes := []int{64, 512, 4096, 5000, 64 << 10, 1 << 20}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tag byte) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b := Get(sizes[r%len(sizes)])
				pat := tag ^ byte(r)
				for i := range b {
					b[i] = pat
				}
				for i := range b {
					if b[i] != pat {
						t.Errorf("worker %d round %d: buffer mutated while owned: b[%d]=%#x want %#x",
							tag, r, i, b[i], pat)
						return
					}
				}
				Put(b)
			}
		}(byte(w))
	}
	wg.Wait()
}

func BenchmarkGetPut64K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Put(Get(64 << 10))
	}
}
