// Package bufpool recycles byte slices for the SIOS hot path.
//
// The data path moves block payloads (4 KiB to a few MiB) between the
// core engine, the CDD client, the wire, and the manager. Allocating a
// fresh slice per hop makes the garbage collector the bandwidth
// ceiling; this package keeps a size-classed free list (powers of two,
// 512 B to 16 MiB, one sync.Pool per class) so steady-state traffic
// reuses a handful of buffers per class.
//
// # Ownership rules
//
// Get transfers ownership of the returned slice to the caller. Put
// transfers it back: after Put the caller must not read, write, or
// retain the slice (or any alias of it) — the pool will hand the same
// backing array to another goroutine. Passing a buffer to a function
// does NOT transfer ownership unless that function's contract says so;
// see DESIGN.md §10 for the per-layer contracts.
//
// Put is safe on any slice: buffers whose capacity is not an exact
// class size (including subslices not taken from the start, and plain
// make()d slices) are dropped for the collector rather than pooled, so
// a stray Put can never corrupt a class. Put(nil) is a no-op.
//
// # Leak checking
//
// Stats counts Gets and Puts with atomics; tests snapshot it around a
// workload and assert the Outstanding delta returns to zero, which
// catches forgotten Puts (leaks) without any per-buffer bookkeeping.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	minShift = 9
	maxShift = 24

	// MinClass is the smallest pooled capacity; requests below it are
	// rounded up (the waste is bounded and the pool stays shallow).
	MinClass = 1 << minShift
	// MaxClass is the largest pooled capacity — sized to MaxFrame so a
	// whole transport frame fits in one pooled buffer. Larger requests
	// fall through to plain make and are never pooled.
	MaxClass = 1 << maxShift

	numClasses = maxShift - minShift + 1
)

var classes [numClasses]sync.Pool

// item wraps a slice so that cycling buffers through sync.Pool does not
// allocate: storing a []byte in an interface boxes the header on every
// Put, but storing a reused *item does not. Spent wrappers go back to
// itemPool, so steady state allocates neither buffers nor wrappers.
type item struct{ buf []byte }

var itemPool = sync.Pool{New: func() any { return new(item) }}

var stats struct {
	gets  atomic.Int64
	puts  atomic.Int64
	mints atomic.Int64
	drops atomic.Int64
}

// classIndex returns the index of the smallest class holding n bytes,
// or -1 when n exceeds MaxClass.
func classIndex(n int) int {
	if n > MaxClass {
		return -1
	}
	k := bits.Len(uint(n - 1)) // ceil(log2 n); n >= 1
	if k < minShift {
		k = minShift
	}
	return k - minShift
}

// Get returns a slice with len n, recycled when a pooled buffer is
// available. Contents are unspecified — callers that need zeroed memory
// must clear it. n <= 0 returns nil; n > MaxClass falls through to a
// plain allocation (still owned by the caller; Put will drop it).
func Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	stats.gets.Add(1)
	idx := classIndex(n)
	if idx < 0 {
		return make([]byte, n)
	}
	if v := classes[idx].Get(); v != nil {
		it := v.(*item)
		b := it.buf
		it.buf = nil
		itemPool.Put(it)
		return b[:n]
	}
	stats.mints.Add(1)
	return make([]byte, n, 1<<(idx+minShift))
}

// Put returns b to its size class. Ownership transfers to the pool: the
// caller must not touch b afterwards. Slices whose capacity is not an
// exact class size are dropped (counted in Stats.Drops); nil is ignored.
func Put(b []byte) {
	if b == nil {
		return
	}
	stats.puts.Add(1)
	c := cap(b)
	if c < MinClass || c > MaxClass || c&(c-1) != 0 {
		stats.drops.Add(1)
		return
	}
	it := itemPool.Get().(*item)
	it.buf = b[:0]
	classes[bits.Len(uint(c))-1-minShift].Put(it)
}

// Stats is a point-in-time snapshot of pool traffic.
type Stats struct {
	Gets  int64 // Get calls that returned a non-nil slice
	Puts  int64 // Put calls with a non-nil slice (pooled or dropped)
	Mints int64 // Gets that had to allocate a class-sized buffer
	Drops int64 // Puts dropped because cap(b) was not a class size
}

// Outstanding is the number of buffers currently owned by callers:
// every Get that has not been matched by a Put. A workload that leaks
// pooled buffers shows a growing Outstanding.
func (s Stats) Outstanding() int64 { return s.Gets - s.Puts }

// Snapshot returns current pool counters.
func Snapshot() Stats {
	return Stats{
		Gets:  stats.gets.Load(),
		Puts:  stats.puts.Load(),
		Mints: stats.mints.Load(),
		Drops: stats.drops.Load(),
	}
}
