package bench

import (
	"testing"

	"repro/internal/andrew"
	"repro/internal/chkpt"
	"repro/internal/cluster"
	"repro/internal/core"
)

// small cluster parameters keep unit tests quick; the full 12-node
// reproduction runs from cmd/raidxbench and the root bench suite.
// coreOptions returns the default RAID-x engine options for tests.
func coreOptions() core.Options { return core.Options{} }

func testParams() cluster.Params {
	p := cluster.DefaultParams()
	p.Nodes = 4
	p.DiskBlocks = 1024
	return p
}

func TestRigBuildsAllSystems(t *testing.T) {
	for _, sys := range AllSystems() {
		rig, err := NewRig(testParams(), sys, 3, coreOptions())
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if len(rig.Arrays) != 3 {
			t.Fatalf("%s: %d arrays", sys, len(rig.Arrays))
		}
		if rig.Arrays[0].Blocks() == 0 {
			t.Fatalf("%s: zero capacity", sys)
		}
	}
}

func TestBandwidthDeterministic(t *testing.T) {
	cfg := Config{LargeBytes: 1 << 20, SmallOps: 8}
	a, err := Bandwidth(testParams(), RAIDx, LargeRead, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bandwidth(testParams(), RAIDx, LargeRead, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("non-deterministic: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.MBps <= 0 {
		t.Fatalf("nonpositive bandwidth %v", a.MBps)
	}
}

// TestFigure5Shapes asserts the paper's qualitative results on a small
// cluster: RAID-x beats RAID-5 on small writes by a wide margin, beats
// NFS everywhere, and no architecture beats RAID-x on writes.
func TestFigure5Shapes(t *testing.T) {
	p := testParams()
	cfg := Config{LargeBytes: 1 << 20, SmallOps: 8}
	clients := 4

	get := func(sys System, pat Pattern) float64 {
		r, err := Bandwidth(p, sys, pat, clients, cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", sys, pat, err)
		}
		return r.MBps
	}

	// Small write: RAID-x >> RAID-5 (the small-write problem).
	xw, r5w := get(RAIDx, SmallWrite), get(RAID5, SmallWrite)
	if xw < 2*r5w {
		t.Errorf("small write: raidx %.2f MB/s not >= 2x raid5 %.2f MB/s", xw, r5w)
	}
	// Large write: RAID-x >= RAID-10 (background + gathered mirrors).
	xlw, r10lw := get(RAIDx, LargeWrite), get(RAID10, LargeWrite)
	if xlw < r10lw {
		t.Errorf("large write: raidx %.2f MB/s < raid10 %.2f MB/s", xlw, r10lw)
	}
	// Everything beats the central server.
	nfsr := get(NFS, LargeRead)
	xr := get(RAIDx, LargeRead)
	if xr <= nfsr {
		t.Errorf("large read: raidx %.2f MB/s not above nfs %.2f MB/s", xr, nfsr)
	}
}

// TestScalingImprovesWithClients: RAID-x aggregate bandwidth must grow
// with client count (the scalability claim of Table 3).
func TestScalingImprovesWithClients(t *testing.T) {
	p := testParams()
	cfg := Config{LargeBytes: 1 << 20, SmallOps: 8}
	one, err := Bandwidth(p, RAIDx, LargeRead, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Bandwidth(p, RAIDx, LargeRead, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if four.MBps <= one.MBps {
		t.Errorf("no scaling: 1 client %.2f MB/s, 4 clients %.2f MB/s", one.MBps, four.MBps)
	}
}

func TestTable3Rows(t *testing.T) {
	p := testParams()
	cfg := Config{LargeBytes: 512 << 10, SmallOps: 4}
	rows, err := Table3(p, []System{RAIDx, NFS}, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.OneClient <= 0 || r.ManyClients <= 0 {
			t.Errorf("%s/%s: nonpositive bandwidth", r.System, r.Pattern)
		}
	}
}

func TestWorkloadTooLargeRejected(t *testing.T) {
	p := testParams()
	p.DiskBlocks = 64
	cfg := Config{LargeBytes: 64 << 20, SmallOps: 4}
	if _, err := Bandwidth(p, RAIDx, LargeWrite, 4, cfg); err == nil {
		t.Fatal("oversized workload accepted")
	}
}

func TestDegradedSweepShapes(t *testing.T) {
	p := testParams()
	cfg := Config{LargeBytes: 512 << 10, SmallOps: 4}
	rs, err := DegradedSweep(p, RAIDx, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byState := map[ArrayState]DegradedResult{}
	for _, r := range rs {
		byState[r.State] = r
	}
	if byState[StateNormal].MBps <= 0 {
		t.Fatal("no normal bandwidth")
	}
	// Degraded can't beat normal; rebuilding can't beat degraded.
	if byState[StateDegraded].MBps > byState[StateNormal].MBps*1.01 {
		t.Errorf("degraded %.2f > normal %.2f", byState[StateDegraded].MBps, byState[StateNormal].MBps)
	}
	if byState[StateRebuilding].RebuildTime <= 0 {
		t.Error("rebuild time not measured")
	}
}

func TestAFRAIDSitsBetweenRAID5AndRAIDx(t *testing.T) {
	p := testParams()
	cfg := Config{LargeBytes: 512 << 10, SmallOps: 8}
	get := func(sys System) float64 {
		r, err := Bandwidth(p, sys, SmallWrite, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.MBps
	}
	r5, af, rx := get(RAID5), get(AFRAID), get(RAIDx)
	if !(af > 2*r5) {
		t.Errorf("afraid small write %.2f not >> raid5 %.2f", af, r5)
	}
	// AFRAID and RAID-x both defer redundancy: comparable small writes.
	if af < rx*0.8 || af > rx*1.2 {
		t.Errorf("afraid %.2f not comparable to raidx %.2f", af, rx)
	}
}

func TestFigure5SweepAndAndrewSmoke(t *testing.T) {
	p := testParams()
	cfg := Config{LargeBytes: 256 << 10, SmallOps: 2}
	rs, err := Figure5(p, []System{RAIDx}, []Pattern{LargeRead, SmallWrite}, []int{1, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("%d results, want 4", len(rs))
	}
	for _, r := range rs {
		if r.MBps <= 0 || r.Bottleneck == "" {
			t.Fatalf("bad result %+v", r)
		}
	}
	acfg := andrew.DefaultConfig()
	acfg.Dirs, acfg.Files = 2, 4
	ar, err := RunAndrew(p, RAIDx, 2, acfg)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Total <= 0 {
		t.Fatal("zero Andrew total")
	}
	cr, err := RunCheckpoint(p, chkpt.StripedStaggered, chkpt.Config{Processes: 4, ImageBytes: 64 << 10, Slots: 2, LocalImages: true})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Makespan <= 0 {
		t.Fatal("zero checkpoint makespan")
	}
}
