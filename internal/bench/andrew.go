package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/andrew"
	"repro/internal/cdd"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/vclock"
)

// AndrewResult is one cell of Figure 6: per-phase elapsed time (max
// over clients) for one architecture at one client count.
type AndrewResult struct {
	System  System
	Clients int
	Phase   map[string]time.Duration
	Total   time.Duration
}

// Figure6 runs the Andrew benchmark over each architecture and client
// count, reproducing the four panels of the paper's Figure 6. Every
// client runs the five phases in a private subtree of one shared file
// system built on the architecture under test; consistency comes from a
// shared CDD lock-group table whose coordinator lives on node 0 (lock
// traffic is charged on the network).
func Figure6(p cluster.Params, systems []System, clientCounts []int, cfg andrew.Config) ([]AndrewResult, error) {
	var out []AndrewResult
	for _, sys := range systems {
		for _, m := range clientCounts {
			r, err := RunAndrew(p, sys, m, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%d clients: %w", sys, m, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// AndrewOpts tune the file system under the benchmark (the lock- and
// cache-granularity ablations).
type AndrewOpts struct {
	// FSGroups is the number of FS allocation groups (lock-group
	// granularity): 1 serializes all allocation on one lock; higher
	// values let clients allocate concurrently. 0 means the default 16.
	FSGroups int
	// CacheBlocks sizes each client's block cache (0: default,
	// negative: disabled).
	CacheBlocks int
}

// RunAndrew runs one (system, clients) Andrew cell on a fresh cluster
// with default file-system options.
func RunAndrew(p cluster.Params, sys System, clients int, cfg andrew.Config) (AndrewResult, error) {
	return RunAndrewOpts(p, sys, clients, cfg, AndrewOpts{})
}

// RunAndrewOpts is RunAndrew with file-system tuning.
func RunAndrewOpts(p cluster.Params, sys System, clients int, cfg andrew.Config, opts AndrewOpts) (AndrewResult, error) {
	// The NFS baseline keeps capacity parity with the arrays (its lone
	// spindle is sized like the whole array) so the comparison isolates
	// performance, not disk space.
	if sys == NFS {
		p.DiskBlocks *= int64(p.Nodes * p.DisksPerNode)
	}
	rig, err := NewRig(p, sys, clients, core.Options{})
	if err != nil {
		return AndrewResult{}, err
	}
	table := cdd.NewTable()

	// Format and populate the shared source tree, untimed.
	groups := opts.FSGroups
	if groups <= 0 {
		groups = 16
	}
	setupCtx := context.Background()
	mkfsLock := fsim.NewTableLocker(table)
	rootFS, err := fsim.Mkfs(setupCtx, rig.Arrays[0], mkfsLock, "mkfs", fsim.Options{
		MaxInodes:   16384,
		Groups:      groups,
		CacheBlocks: opts.CacheBlocks,
	})
	if err != nil {
		return AndrewResult{}, err
	}
	if err := andrew.PopulateSource(setupCtx, rootFS, "/src", cfg); err != nil {
		return AndrewResult{}, err
	}

	// Mount one FS per client through that client's array view, with a
	// locker that pays two control messages to the coordinator per
	// lock/unlock operation.
	mounts := make([]*fsim.FS, clients)
	for i := 0; i < clients; i++ {
		node := rig.Nodes[i]
		lk := fsim.NewTableLocker(table)
		lk.Charge = func(ctx context.Context) {
			_ = rig.C.Net.Send(ctx, node, 0, p.ReqMsgBytes)
			_ = rig.C.Net.Send(ctx, 0, node, p.ReqMsgBytes)
		}
		fs, err := fsim.MountOptions(setupCtx, rig.Arrays[i], lk, fmt.Sprintf("client%d", i),
			fsim.Options{CacheBlocks: opts.CacheBlocks})
		if err != nil {
			return AndrewResult{}, err
		}
		mounts[i] = fs
	}

	phases := make([]andrew.PhaseTimes, clients)
	errs := make([]error, clients)
	s := rig.C.Sim
	barrier := vclock.NewBarrier(s, "andrew", clients)
	for i := 0; i < clients; i++ {
		i := i
		s.Spawn(fmt.Sprintf("andrew%d", i), func(proc *vclock.Proc) {
			barrier.Wait(proc)
			ctx := vclock.With(context.Background(), proc)
			cpu := rig.C.Nodes[rig.Nodes[i]].CPU
			phases[i], errs[i] = andrew.Run(ctx, mounts[i], cpu, fmt.Sprintf("/cl%02d", i), "/src", cfg)
		})
	}
	if err := s.Run(); err != nil {
		return AndrewResult{}, err
	}
	for _, err := range errs {
		if err != nil {
			return AndrewResult{}, err
		}
	}

	res := AndrewResult{System: sys, Clients: clients, Phase: map[string]time.Duration{}}
	for _, name := range andrew.Phases() {
		var max time.Duration
		for i := range phases {
			if d := phases[i].ByName(name); d > max {
				max = d
			}
		}
		res.Phase[name] = max
	}
	for i := range phases {
		if t := phases[i].Total(); t > res.Total {
			res.Total = t
		}
	}
	return res, nil
}
