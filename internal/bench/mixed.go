package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/raid"
	"repro/internal/vclock"
)

// MixedResult reports the reader-side bandwidth of a mixed workload,
// plus the engine's own accounting of how balanced reads split between
// the two copies (read from the shared observability registry).
type MixedResult struct {
	ReadMBps      float64
	ReadMakespan  time.Duration
	WriteMakespan time.Duration
	// MirrorReads and DataReads count the balanced single-block reads
	// sent to the image copy vs the data copy.
	MirrorReads int64
	DataReads   int64
}

// MixedReadWrite runs readers hammering one shared *hot* region (a
// popular file) while writers stream large writes into private regions
// — the scenario where RAID-x's BalanceReads option (Section 7's I/O
// load balancing) pays off: hot blocks are served from both the data
// copy and the orthogonal image, splitting the hot disks' load.
func MixedReadWrite(p cluster.Params, opt core.Options, readers, writers int, cfg Config) (MixedResult, error) {
	if opt.Obs == nil {
		// All client arrays share one registry, so the result totals the
		// whole experiment's copy-choice counters.
		opt.Obs = obs.NewRegistry()
	}
	total := readers + writers
	rig, err := NewRig(p, RAIDx, total, opt)
	if err != nil {
		return MixedResult{}, err
	}
	bs := rig.Arrays[0].BlockSize()
	region := int64((cfg.LargeBytes + bs - 1) / bs)
	// Region 0 is the shared hot file; writers get private regions
	// after it.
	if region*int64(writers+1) > rig.Arrays[0].Blocks() {
		return MixedResult{}, fmt.Errorf("bench: mixed workload exceeds capacity")
	}
	if err := rig.Prefill(region * int64(writers+1)); err != nil {
		return MixedResult{}, err
	}

	var readEnd, writeEnd time.Duration
	work := func(ctx context.Context, client int, arr raid.Array) error {
		proc, _ := vclock.From(ctx)
		if client < readers {
			// All readers pound the same few hot blocks. The hot set
			// strides by width+1 so the blocks sit on distinct data
			// disks AND in distinct mirror groups — balancing can then
			// spread the load over twice as many spindles.
			buf := make([]byte, bs)
			const hot = 4
			stride := int64(p.Nodes*p.DisksPerNode) + 1
			for t := 0; t < cfg.SmallOps; t++ {
				blk := (int64(client+t) % hot) * stride
				if err := arr.ReadBlocks(ctx, blk, buf); err != nil {
					return err
				}
			}
			if proc != nil && proc.Now() > readEnd {
				readEnd = proc.Now()
			}
			return nil
		}
		base := int64(client-readers+1) * region
		buf := make([]byte, region*int64(bs))
		if err := arr.WriteBlocks(ctx, base, buf); err != nil {
			return err
		}
		if proc != nil && proc.Now() > writeEnd {
			writeEnd = proc.Now()
		}
		return nil
	}
	if _, err := rig.RunClients(work); err != nil {
		return MixedResult{}, err
	}
	bytesRead := int64(readers) * int64(cfg.SmallOps) * int64(bs)
	return MixedResult{
		ReadMBps:      float64(bytesRead) / 1e6 / readEnd.Seconds(),
		ReadMakespan:  readEnd,
		WriteMakespan: writeEnd,
		MirrorReads:   opt.Obs.Counter("raidx.balanced_read_mirror").Value(),
		DataReads:     opt.Obs.Counter("raidx.balanced_read_data").Value(),
	}, nil
}
