// Package bench is the experiment harness: it assembles simulated
// clusters, runs the paper's workloads against each I/O subsystem, and
// returns the measurements behind every table and figure of the
// evaluation section (Figure 5 bandwidth curves, Table 3 improvement
// factors, the Andrew benchmark of Figure 6 via internal/andrew, and
// the checkpointing experiment of Figure 7 via internal/chkpt).
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/nfssim"
	"repro/internal/raid"
	"repro/internal/vclock"
)

// System names one of the I/O subsystem architectures under test.
type System string

// The four subsystems of the paper's experiments, plus two extras
// (plain striping and chained declustering) used by Table 2 and the
// extended comparisons.
const (
	NFS     System = "nfs"
	RAID0   System = "raid0"
	RAID5   System = "raid5"
	RAID10  System = "raid10"
	Chained System = "chained"
	RAIDx   System = "raidx"
	// AFRAID is Savage & Wilkes' lazily-redundant RAID-5 variant, which
	// the paper cites as an influence — the design-space point between
	// RAID-5 and RAID-x.
	AFRAID System = "afraid"
)

// PaperSystems lists the four subsystems of Figures 5 and 6.
func PaperSystems() []System { return []System{NFS, RAID5, RAID10, RAIDx} }

// AllSystems lists every implemented architecture.
func AllSystems() []System {
	return []System{NFS, RAID0, RAID5, AFRAID, RAID10, Chained, RAIDx}
}

// Rig is one assembled experiment: a cluster plus a per-client array
// view for the chosen architecture.
type Rig struct {
	C        *cluster.Cluster
	System   System
	Arrays   []raid.Array // indexed by client
	Nodes    []int        // client -> node placement
	RAIDxOpt core.Options
}

// NewRig builds a cluster and per-client arrays. Clients are placed
// round-robin over the nodes, as on the Trojans testbed where every
// host runs both a client and a CDD.
func NewRig(p cluster.Params, sys System, clients int, opt core.Options) (*Rig, error) {
	if clients < 1 {
		return nil, fmt.Errorf("bench: %d clients", clients)
	}
	c := cluster.New(p)
	r := &Rig{C: c, System: sys, RAIDxOpt: opt}
	var nfsSrv *nfssim.Server
	if sys == NFS {
		var err error
		nfsSrv, err = nfssim.NewServer(c, 0)
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < clients; i++ {
		node := i % p.Nodes
		r.Nodes = append(r.Nodes, node)
		var (
			arr raid.Array
			err error
		)
		switch sys {
		case NFS:
			arr = nfsSrv.ClientArray(node)
		case RAID0:
			arr, err = raid.NewRAID0(c.DevView(node))
		case RAID5:
			arr, err = raid.NewRAID5(c.DevView(node))
		case AFRAID:
			arr, err = raid.NewAFRAID(c.DevView(node))
		case RAID10:
			arr, err = raid.NewRAID10(c.DevView(node))
		case Chained:
			arr, err = raid.NewChained(c.DevView(node))
		case RAIDx:
			arr, err = core.New(c.DevView(node), p.Nodes, p.DisksPerNode, opt)
		default:
			err = fmt.Errorf("bench: unknown system %q", sys)
		}
		if err != nil {
			return nil, err
		}
		r.Arrays = append(r.Arrays, arr)
	}
	return r, nil
}

// Prefill writes pattern data over the first n logical blocks without
// charging any virtual time (administrative access), so read benchmarks
// start from populated, redundant storage.
func (r *Rig) Prefill(blocks int64) error {
	if blocks > r.Arrays[0].Blocks() {
		return fmt.Errorf("bench: prefill %d blocks exceeds capacity %d", blocks, r.Arrays[0].Blocks())
	}
	bs := r.Arrays[0].BlockSize()
	const chunk = 512
	buf := make([]byte, chunk*bs)
	for i := range buf {
		buf[i] = byte(i * 131)
	}
	ctx := context.Background()
	for b := int64(0); b < blocks; b += chunk {
		n := int64(chunk)
		if b+n > blocks {
			n = blocks - b
		}
		if err := r.Arrays[0].WriteBlocks(ctx, b, buf[:n*int64(bs)]); err != nil {
			return err
		}
	}
	return r.Arrays[0].Flush(ctx)
}

// ClientWork is a workload body run by each simulated client.
type ClientWork func(ctx context.Context, client int, arr raid.Array) error

// RunClients spawns one process per client, synchronizes them on a
// barrier (the paper's MPI_Barrier), runs the workload, and returns the
// makespan — the time from release to the last client's completion.
func (r *Rig) RunClients(work ClientWork) (time.Duration, error) {
	s := r.C.Sim
	barrier := vclock.NewBarrier(s, "start", len(r.Arrays))
	var makespan time.Duration
	errs := make([]error, len(r.Arrays))
	for i := range r.Arrays {
		i := i
		s.Spawn(fmt.Sprintf("client%d", i), func(p *vclock.Proc) {
			barrier.Wait(p)
			start := p.Now()
			ctx := vclock.With(context.Background(), p)
			errs[i] = work(ctx, i, r.Arrays[i])
			if d := p.Now() - start; d > makespan {
				makespan = d
			}
		})
	}
	if err := s.Run(); err != nil {
		return 0, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return makespan, nil
}
