package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chkpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/nfssim"
	"repro/internal/raid"
)

// Figure7 runs one coordinated checkpoint round under each scheme,
// reproducing the paper's Figure 7 experiment: centralized and
// staggered checkpoints go through the NFS server; striped and
// striped-staggered checkpoints go to the RAID-x array, with each
// image's OSM mirror groups placed on the owning process's node.
func Figure7(p cluster.Params, cfg chkpt.Config) ([]chkpt.Result, error) {
	var out []chkpt.Result
	for _, scheme := range chkpt.Schemes() {
		r, err := RunCheckpoint(p, scheme, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheme, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// RunCheckpoint executes one scheme on a fresh cluster.
func RunCheckpoint(p cluster.Params, scheme chkpt.Scheme, cfg chkpt.Config) (chkpt.Result, error) {
	striped := scheme == chkpt.Striped || scheme == chkpt.StripedStaggered
	if !striped {
		// Capacity parity for the central server, as in RunAndrew.
		p.DiskBlocks *= int64(p.Nodes * p.DisksPerNode)
	}
	c := cluster.New(p)

	arrays := make([]raid.Array, cfg.Processes)
	nodes := make([]int, cfg.Processes)
	var err error
	if striped {
		for i := 0; i < cfg.Processes; i++ {
			nodes[i] = i % p.Nodes
			arrays[i], err = core.New(c.DevView(nodes[i]), p.Nodes, p.DisksPerNode, core.Options{})
			if err != nil {
				return chkpt.Result{}, err
			}
		}
	} else {
		srv, err := nfssim.NewServer(c, 0)
		if err != nil {
			return chkpt.Result{}, err
		}
		for i := 0; i < cfg.Processes; i++ {
			nodes[i] = i % p.Nodes
			arrays[i] = srv.ClientArray(nodes[i])
		}
	}

	planCfg := cfg
	planCfg.LocalImages = cfg.LocalImages && striped
	plan, err := chkpt.NewPlan(arrays, nodes, planCfg)
	if err != nil {
		return chkpt.Result{}, err
	}
	return chkpt.Round(c.Sim, arrays, plan, scheme)
}

// RecoveryComparison measures the paper's two-level recovery for one
// process on a fresh cluster: a transient restart reading the local
// OSM-aligned mirror images versus a permanent-failure re-read through
// the stripes (with one data disk failed).
func RecoveryComparison(p cluster.Params, cfg chkpt.Config) (transient, permanent time.Duration, err error) {
	cfg.LocalImages = true
	c := cluster.New(p)
	arrays := make([]raid.Array, cfg.Processes)
	nodes := make([]int, cfg.Processes)
	for i := 0; i < cfg.Processes; i++ {
		nodes[i] = i % p.Nodes
		arrays[i], err = core.New(c.DevView(nodes[i]), p.Nodes, p.DisksPerNode, core.Options{})
		if err != nil {
			return 0, 0, err
		}
	}
	plan, err := chkpt.NewPlan(arrays, nodes, cfg)
	if err != nil {
		return 0, 0, err
	}
	// Write process 0's image untimed, then fail one data disk that
	// holds part of it (a disk on another node), forcing the permanent
	// path through degraded reads.
	ctx := context.Background()
	if err := plan.WriteImageForTest(ctx, arrays[0], 0); err != nil {
		return 0, 0, err
	}
	if err := arrays[0].Flush(ctx); err != nil {
		return 0, 0, err
	}
	lay := arrays[0].(*core.RAIDx).Layout()
	victim := lay.DataLoc(plan.Regions(0)[0].Block).Disk
	c.Disks[victim].Fail()
	return chkpt.RecoveryTiming(c.Sim, arrays[0], lay, c.DevView(nodes[0]), plan, 0)
}
