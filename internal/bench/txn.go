package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/raid"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// TxnResult summarizes a transactional mixed-workload run.
type TxnResult struct {
	System    System
	Clients   int
	Ops       int
	Makespan  time.Duration
	OpsPerSec float64
	Lat       workload.Latencies
}

func (r TxnResult) String() string {
	return fmt.Sprintf("%-8s clients=%-3d %8.1f ops/s  %s", r.System, r.Clients, r.OpsPerSec, r.Lat.String())
}

// Transactions runs the workload mix on each client concurrently over a
// *shared* working set (all clients hit the same blocks, as an OLTP
// database would), measuring per-operation latency. Reads of the shared
// region are prefetched so every read hits real data.
func Transactions(p cluster.Params, sys System, clients int, cfg workload.Config) (TxnResult, error) {
	if sys == NFS {
		// Capacity parity for the single-spindle server, as elsewhere.
		p.DiskBlocks *= int64(p.Nodes * p.DisksPerNode)
	}
	rig, err := NewRig(p, sys, clients, core.Options{})
	if err != nil {
		return TxnResult{}, err
	}
	if cfg.WorkingSetBlocks > rig.Arrays[0].Blocks() {
		return TxnResult{}, fmt.Errorf("bench: working set exceeds capacity")
	}
	if err := rig.Prefill(cfg.WorkingSetBlocks); err != nil {
		return TxnResult{}, err
	}
	bs := rig.Arrays[0].BlockSize()
	lats := make([]workload.Latencies, clients)

	work := func(ctx context.Context, client int, arr raid.Array) error {
		proc, _ := vclock.From(ctx)
		gen := workload.NewGen(cfg, uint64(client)+1)
		for t := 0; t < cfg.Ops; t++ {
			op := gen.Op()
			buf := make([]byte, op.Blocks*int64(bs))
			start := proc.Now()
			var err error
			if op.Read {
				err = arr.ReadBlocks(ctx, op.Block, buf)
			} else {
				err = arr.WriteBlocks(ctx, op.Block, buf)
			}
			if err != nil {
				return err
			}
			lats[client].Add(proc.Now() - start)
		}
		return nil
	}
	makespan, err := rig.RunClients(work)
	if err != nil {
		return TxnResult{}, err
	}
	res := TxnResult{System: sys, Clients: clients, Ops: clients * cfg.Ops, Makespan: makespan}
	for i := range lats {
		res.Lat.Merge(&lats[i])
	}
	res.OpsPerSec = float64(res.Ops) / makespan.Seconds()
	return res, nil
}
