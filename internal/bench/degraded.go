package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/raid"
	"repro/internal/vclock"
)

// ArrayState names the operating condition under test.
type ArrayState string

// The three states of the degraded-performance experiment.
const (
	StateNormal     ArrayState = "normal"
	StateDegraded   ArrayState = "degraded"
	StateRebuilding ArrayState = "rebuilding"
)

// DegradedResult reports foreground bandwidth in one state.
type DegradedResult struct {
	System      System
	State       ArrayState
	MBps        float64
	RebuildTime time.Duration // only for StateRebuilding
}

// DegradedSweep measures large-read bandwidth for `clients` clients in
// the normal, degraded (disk 1 failed), and rebuilding states — the
// classic question of how much a failure and its repair steal from
// foreground service. Only redundant architectures are meaningful here.
func DegradedSweep(p cluster.Params, sys System, clients int, cfg Config) ([]DegradedResult, error) {
	var out []DegradedResult
	for _, state := range []ArrayState{StateNormal, StateDegraded, StateRebuilding} {
		r, err := runDegraded(p, sys, clients, cfg, state)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", sys, state, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func runDegraded(p cluster.Params, sys System, clients int, cfg Config, state ArrayState) (DegradedResult, error) {
	rig, err := NewRig(p, sys, clients, core.Options{})
	if err != nil {
		return DegradedResult{}, err
	}
	bs := rig.Arrays[0].BlockSize()
	region := int64((cfg.LargeBytes + bs - 1) / bs)
	need := region * int64(clients)
	if need > rig.Arrays[0].Blocks() {
		return DegradedResult{}, fmt.Errorf("workload needs %d blocks, array has %d", need, rig.Arrays[0].Blocks())
	}
	if err := rig.Prefill(need); err != nil {
		return DegradedResult{}, err
	}
	if err := rig.Arrays[0].Flush(context.Background()); err != nil {
		return DegradedResult{}, err
	}

	const victim = 1
	switch state {
	case StateDegraded:
		rig.C.Disks[victim].Fail()
	case StateRebuilding:
		rig.C.Disks[victim].Fail()
		if err := rig.C.Disks[victim].Replace(); err != nil {
			return DegradedResult{}, err
		}
	}

	var rebuildTook time.Duration
	if state == StateRebuilding {
		rb, ok := rig.Arrays[0].(raid.Rebuilder)
		if !ok {
			return DegradedResult{}, fmt.Errorf("%s cannot rebuild", sys)
		}
		rig.C.Sim.Spawn("rebuilder", func(proc *vclock.Proc) {
			ctx := vclock.With(context.Background(), proc)
			start := proc.Now()
			if err := rb.Rebuild(ctx, victim); err != nil {
				rebuildTook = -1
				return
			}
			rebuildTook = proc.Now() - start
		})
	}

	work := func(ctx context.Context, client int, arr raid.Array) error {
		buf := make([]byte, region*int64(bs))
		return arr.ReadBlocks(ctx, int64(client)*region, buf)
	}
	makespan, err := rig.RunClients(work)
	if err != nil {
		return DegradedResult{}, err
	}
	if rebuildTook < 0 {
		return DegradedResult{}, fmt.Errorf("rebuild failed")
	}
	total := need * int64(bs)
	return DegradedResult{
		System:      sys,
		State:       state,
		MBps:        float64(total) / 1e6 / makespan.Seconds(),
		RebuildTime: rebuildTook,
	}, nil
}
