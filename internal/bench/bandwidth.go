package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/raid"
)

// Pattern is one of the four access patterns of Figure 5.
type Pattern string

// The four panels of Figure 5.
const (
	LargeRead  Pattern = "large-read"
	SmallRead  Pattern = "small-read"
	LargeWrite Pattern = "large-write"
	SmallWrite Pattern = "small-write"
)

// Patterns lists all four in the paper's order.
func Patterns() []Pattern { return []Pattern{LargeRead, SmallRead, LargeWrite, SmallWrite} }

// Config sets the workload sizes (paper Section 5.1: each client
// accesses a private 2 MB file for large operations; small operations
// move 32 KB — one block of a stripe group — per access).
type Config struct {
	// LargeBytes is the per-client file size for large read/write.
	LargeBytes int
	// SmallOps is how many single-block accesses each client performs
	// for small read/write.
	SmallOps int
	// FlushTimed includes a Flush in the timed region, measuring
	// time-to-full-redundancy instead of client-visible latency (used
	// by the mirror-write ablations).
	FlushTimed bool
}

// DefaultConfig matches the paper's workload.
func DefaultConfig() Config {
	return Config{LargeBytes: 2 << 20, SmallOps: 16}
}

// Result is one measured point.
type Result struct {
	System   System
	Pattern  Pattern
	Clients  int
	Bytes    int64
	Makespan time.Duration
	MBps     float64
	// Bottleneck names the busiest simulated resource of the run and
	// its utilization — which disk, NIC direction, or CPU capped the
	// result.
	Bottleneck     string
	BottleneckUtil float64
}

func (r Result) String() string {
	return fmt.Sprintf("%-8s %-12s clients=%-3d %7.2f MB/s", r.System, r.Pattern, r.Clients, r.MBps)
}

// Bandwidth runs one (system, pattern, client-count) cell of Figure 5
// on a fresh cluster and reports aggregate bandwidth.
func Bandwidth(p cluster.Params, sys System, pattern Pattern, clients int, cfg Config) (Result, error) {
	return BandwidthOpt(p, sys, pattern, clients, cfg, core.Options{})
}

// BandwidthOpt is Bandwidth with RAID-x engine options (ablations).
func BandwidthOpt(p cluster.Params, sys System, pattern Pattern, clients int, cfg Config, opt core.Options) (Result, error) {
	rig, err := NewRig(p, sys, clients, opt)
	if err != nil {
		return Result{}, err
	}
	bs := rig.Arrays[0].BlockSize()
	fileBlocks := int64((cfg.LargeBytes + bs - 1) / bs)
	var perClientBytes int64

	var region int64 // private region per client, in blocks
	switch pattern {
	case LargeRead, LargeWrite:
		region = fileBlocks
		perClientBytes = fileBlocks * int64(bs)
	case SmallRead, SmallWrite:
		// Small accesses stride within a region as large as the file,
		// touching a different stripe group each time.
		region = fileBlocks
		perClientBytes = int64(cfg.SmallOps) * int64(bs)
	default:
		return Result{}, fmt.Errorf("bench: unknown pattern %q", pattern)
	}
	need := region * int64(clients)
	if need > rig.Arrays[0].Blocks() {
		return Result{}, fmt.Errorf("bench: workload needs %d blocks, array has %d", need, rig.Arrays[0].Blocks())
	}
	if pattern == LargeRead || pattern == SmallRead {
		if err := rig.Prefill(need); err != nil {
			return Result{}, err
		}
	}

	body := func(ctx context.Context, client int, arr raid.Array) error {
		base := int64(client) * region
		switch pattern {
		case LargeRead:
			buf := make([]byte, region*int64(bs))
			return arr.ReadBlocks(ctx, base, buf)
		case LargeWrite:
			buf := make([]byte, region*int64(bs))
			for i := range buf {
				buf[i] = byte(client + i)
			}
			return arr.WriteBlocks(ctx, base, buf)
		case SmallRead, SmallWrite:
			buf := make([]byte, bs)
			for i := range buf {
				buf[i] = byte(client ^ i)
			}
			// Stride by a prime-ish step so successive ops land in
			// different stripe groups, like independent small files.
			step := region/int64(cfg.SmallOps) | 1
			for t := 0; t < cfg.SmallOps; t++ {
				b := base + (int64(t)*step)%region
				var err error
				if pattern == SmallRead {
					err = arr.ReadBlocks(ctx, b, buf)
				} else {
					err = arr.WriteBlocks(ctx, b, buf)
				}
				if err != nil {
					return err
				}
			}
			return nil
		}
		return nil
	}
	work := func(ctx context.Context, client int, arr raid.Array) error {
		if err := body(ctx, client, arr); err != nil {
			return err
		}
		if cfg.FlushTimed {
			return arr.Flush(ctx)
		}
		return nil
	}

	makespan, err := rig.RunClients(work)
	if err != nil {
		return Result{}, err
	}
	total := perClientBytes * int64(clients)
	mbps := float64(total) / 1e6 / makespan.Seconds()
	hot := rig.C.Utilization().Hottest()
	return Result{
		System:         sys,
		Pattern:        pattern,
		Clients:        clients,
		Bytes:          total,
		Makespan:       makespan,
		MBps:           mbps,
		Bottleneck:     hot.Name,
		BottleneckUtil: hot.Utilization,
	}, nil
}

// Figure5 sweeps systems × patterns × client counts, reproducing all
// four panels of the paper's Figure 5.
func Figure5(p cluster.Params, systems []System, patterns []Pattern, clientCounts []int, cfg Config) ([]Result, error) {
	var out []Result
	for _, pattern := range patterns {
		for _, sys := range systems {
			for _, m := range clientCounts {
				r, err := Bandwidth(p, sys, pattern, m, cfg)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%d clients: %w", sys, pattern, m, err)
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// Table3Row is one architecture's entry in the paper's Table 3.
type Table3Row struct {
	System      System
	Pattern     Pattern
	OneClient   float64 // MB/s
	ManyClients float64 // MB/s
	Clients     int
	Improvement float64
}

// Table3 reproduces the paper's Table 3: achievable bandwidth at 1
// client and at `clients` clients, with the improvement factor, for
// large read, large write, and small write.
func Table3(p cluster.Params, systems []System, clients int, cfg Config) ([]Table3Row, error) {
	var rows []Table3Row
	for _, sys := range systems {
		for _, pattern := range []Pattern{LargeRead, LargeWrite, SmallWrite} {
			one, err := Bandwidth(p, sys, pattern, 1, cfg)
			if err != nil {
				return nil, err
			}
			many, err := Bandwidth(p, sys, pattern, clients, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table3Row{
				System:      sys,
				Pattern:     pattern,
				OneClient:   one.MBps,
				ManyClients: many.MBps,
				Clients:     clients,
				Improvement: many.MBps / one.MBps,
			})
		}
	}
	return rows, nil
}
