package repair

// Online membership changes ride the repair supervisor's machinery: a
// grow or shrink is a checkpointed, paced background job exactly like a
// rebuild — it shares the QoS pace hook, persists its cursor into
// StateDir with the same atomic discipline, survives restarts, and is
// mutually exclusive with device-recovery jobs (moving blocks while
// re-deriving them from their copies would race).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/raid"
	"repro/internal/store"
)

// ErrRebalanceActive: a membership change is in flight; rebuilds,
// resyncs, and further membership changes must wait for it.
var ErrRebalanceActive = errors.New("repair: rebalance in progress")

// ErrRepairBusy: a recovery job is running (or a member is mid-recovery),
// so a membership change may not start — heal first, then rebalance.
var ErrRepairBusy = errors.New("repair: recovery in progress")

// Rebalancer is the slice of core.RAIDx the membership driver needs;
// asserted at runtime so arrays without epoch support (and the tests'
// fakes) keep working.
type Rebalancer interface {
	BeginGrow(addNodes int, newDevs []raid.Dev, cursor int64) (*core.Migration, error)
	BeginShrink(removeNodes int, cursor int64) (*core.Migration, error)
	CurrentMigration() *core.Migration
	Migrating() (cursor int64, targetGen uint64, active bool)
	Epoch() *layout.Epoch
	Blocks() int64
}

// RebalanceCkpt is the durable record of the array's layout epoch and
// any in-flight migration, written to StateDir/epoch.json. The reopen
// path reads it before building the array: Source is the stable epoch
// to position at, and when Done is false the recorded action resumes
// from Cursor — a delta resync of the uncopied remainder, not a
// restart.
type RebalanceCkpt struct {
	Source layout.EpochDesc `json:"source"`
	Action string           `json:"action,omitempty"` // "grow" | "shrink"
	Nodes  int              `json:"nodes,omitempty"`
	Cursor int64            `json:"cursor"`
	Done   bool             `json:"done"`
}

// rebalanceFile names the epoch checkpoint inside a state directory.
func rebalanceFile(dir string) string { return filepath.Join(dir, "epoch.json") }

// LoadRebalance reads a state directory's epoch checkpoint. A missing
// file returns (nil, nil): the array has only ever had its seed layout.
func LoadRebalance(fs store.FS, dir string) (*RebalanceCkpt, error) {
	raw, err := store.ReadFileFS(fs, rebalanceFile(dir))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var ck RebalanceCkpt
	if err := json.Unmarshal(raw, &ck); err != nil {
		return nil, fmt.Errorf("repair: corrupt epoch checkpoint: %w", err)
	}
	return &ck, nil
}

// SaveRebalance atomically writes a state directory's epoch checkpoint.
func SaveRebalance(fs store.FS, dir string, ck *RebalanceCkpt) error {
	raw, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(fs, rebalanceFile(dir), raw)
}

// RebalanceStatus is the supervisor's view of the membership job.
type RebalanceStatus struct {
	core.MigrateStatus
	Action  string `json:"action"`
	Running bool   `json:"running"`
	LastErr string `json:"last_err,omitempty"`
}

// rebalancer returns the array's membership interface, or nil.
func (s *Supervisor) rebalancer() Rebalancer {
	r, _ := s.arr.(Rebalancer)
	return r
}

// rebalanceActive reports whether a migration is in flight on the
// array (running or paused).
func (s *Supervisor) rebalanceActive() bool {
	r := s.rebalancer()
	if r == nil {
		return false
	}
	_, _, active := r.Migrating()
	return active
}

// recoveryBusy reports whether any member is mid-recovery (a job is
// running, or a member sits in a state that owes one).
func (s *Supervisor) recoveryBusy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active >= 0 {
		return true
	}
	for i := range s.devs {
		switch s.devs[i].State {
		case StateDegraded, StateRebuilding, StateResyncing:
			return true
		}
	}
	return false
}

// StartGrow begins (cursor 0) or resumes a live expansion by addNodes
// nodes, driven as a paced background job. newDevs are the new nodes'
// disks in layout order; nil on resume when the device table already
// spans the target width.
func (s *Supervisor) StartGrow(addNodes int, newDevs []raid.Dev, cursor int64) error {
	return s.startRebalance("grow", addNodes, newDevs, cursor)
}

// StartShrink begins or resumes a live contraction by removeNodes tail
// nodes.
func (s *Supervisor) StartShrink(removeNodes int, cursor int64) error {
	return s.startRebalance("shrink", removeNodes, nil, cursor)
}

func (s *Supervisor) startRebalance(action string, nodes int, newDevs []raid.Dev, cursor int64) error {
	r := s.rebalancer()
	if r == nil {
		return fmt.Errorf("repair: array does not support membership changes")
	}
	if s.rebalanceActive() {
		return ErrRebalanceActive
	}
	if s.recoveryBusy() {
		return ErrRepairBusy
	}
	var (
		m   *core.Migration
		err error
	)
	source := r.Epoch().Desc()
	switch action {
	case "grow":
		m, err = r.BeginGrow(nodes, newDevs, cursor)
	case "shrink":
		m, err = r.BeginShrink(nodes, cursor)
	default:
		return fmt.Errorf("repair: unknown rebalance action %q", action)
	}
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.rebAction = action
	s.rebSource = source
	s.rebNodes = nodes
	s.rebErr = ""
	s.mu.Unlock()
	// Best effort: a failed initial write self-heals at the first window
	// checkpoint, which persists the same full record.
	_ = s.saveRebalanceCkpt(cursor, false)
	s.events.Append(obs.EventRebalanceStart, "repair",
		fmt.Sprintf("%s by %d nodes, resume at block %d", action, nodes, cursor))
	s.kickRebalance(m)
	return nil
}

// kickRebalance launches the migration runner unless one is already
// going. Called from startRebalance and from tick (which restarts the
// runner after a pause or a transient copy error).
func (s *Supervisor) kickRebalance(m *core.Migration) {
	s.mu.Lock()
	if s.rebRunning || s.paused {
		s.mu.Unlock()
		return
	}
	s.rebRunning = true
	s.mu.Unlock()
	go s.runRebalance(m)
}

// runRebalance drives the migration to completion (or to a pause/error
// abort). The cursor is persisted durably on every window, BEFORE the
// engine commits it: foreground writes route to new-epoch homes only
// at or below the durable cursor, so a coordinator crash and resume
// from the checkpoint can never re-copy old homes over acknowledged
// writes.
func (s *Supervisor) runRebalance(m *core.Migration) {
	defer func() {
		s.mu.Lock()
		s.rebRunning = false
		s.mu.Unlock()
	}()
	ctx := context.Background()
	err := m.Run(ctx, s.pace, func(cursor int64) error {
		return s.saveRebalanceCkpt(cursor, false)
	})
	if err != nil {
		if !errors.Is(err, ErrPaused) {
			s.mu.Lock()
			s.rebErr = err.Error()
			s.mu.Unlock()
			s.events.Append(obs.EventRepairState, "repair", "rebalance error: "+err.Error())
		}
		return
	}
	s.mu.Lock()
	s.rebErr = ""
	s.mu.Unlock()
	// Best effort: if the done record misses, the last per-window
	// checkpoint holds cursor = Blocks(), so a restart resumes into an
	// immediately-finishing migration and rewrites it.
	_ = s.saveRebalanceCkpt(0, true)
	s.events.Append(obs.EventRebalanceEnd, "repair",
		fmt.Sprintf("moved %d blocks (%d bytes)", m.Status().MovedBlocks, m.Status().MovedBytes))
}

// saveRebalanceCkpt writes the epoch checkpoint and returns the write
// error: the migration runner must not commit a window whose cursor
// never reached stable storage. On done the stable epoch is the (new)
// current one and no action is pending.
func (s *Supervisor) saveRebalanceCkpt(cursor int64, done bool) error {
	if s.cfg.StateDir == "" {
		return nil
	}
	r := s.rebalancer()
	if r == nil {
		return nil
	}
	var ck RebalanceCkpt
	if done {
		ck = RebalanceCkpt{Source: r.Epoch().Desc(), Cursor: r.Blocks(), Done: true}
	} else {
		s.mu.Lock()
		ck = RebalanceCkpt{Source: s.rebSource, Action: s.rebAction, Nodes: s.rebNodes, Cursor: cursor}
		s.mu.Unlock()
	}
	if err := SaveRebalance(s.fsys(), s.cfg.StateDir, &ck); err != nil {
		s.events.Append(obs.EventRepairState, "repair",
			fmt.Sprintf("epoch checkpoint save failed: %v", err))
		return err
	}
	return nil
}

// RebalanceStatus snapshots the membership job; nil when the array has
// no migration in flight and none has run.
func (s *Supervisor) RebalanceStatus() *RebalanceStatus {
	r := s.rebalancer()
	if r == nil {
		return nil
	}
	m := r.CurrentMigration()
	s.mu.Lock()
	action, running, lastErr := s.rebAction, s.rebRunning, s.rebErr
	s.mu.Unlock()
	if m == nil {
		if action == "" {
			return nil
		}
		// A completed (or never-started-this-process) job: report the
		// stable epoch.
		return &RebalanceStatus{
			MigrateStatus: core.MigrateStatus{
				ToGen:  r.Epoch().Gen(),
				Cursor: r.Blocks(),
				Blocks: r.Blocks(),
				Done:   true,
				Target: r.Epoch().Desc(),
			},
			Action:  action,
			LastErr: lastErr,
		}
	}
	return &RebalanceStatus{MigrateStatus: m.Status(), Action: action, Running: running, LastErr: lastErr}
}
