package repair_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/intent"
	"repro/internal/raid"
	"repro/internal/repair"
	"repro/internal/store"
)

// waitForFile polls until path exists (the supervisor persists at poll
// cadence, so saves land asynchronously).
func waitForFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", path)
}

// TestRepairLocalStateRecovery: the supervisor persists its intent
// snapshot into StateDir; a NEW supervisor built over the same directory
// — fresh process, empty in-memory log — recovers the dirty map before
// it starts and delta-resyncs only those regions. This is restart
// recovery without asking any peer.
func TestRepairLocalStateRecovery(t *testing.T) {
	const nodes, blocks = 4, 400
	stateDir := t.TempDir()
	devs := make([]raid.Dev, nodes)
	raw := make([]*disk.Disk, nodes)
	for i := range devs {
		d := disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(bs, blocks), disk.DefaultModel())
		devs[i] = d
		raw[i] = d
	}
	cfg := repair.Config{
		Poll:          2 * time.Millisecond,
		FailureBudget: 10 * time.Second,
		StateDir:      stateDir,
	}

	// First life: write a base image, lose a member, dirty some regions.
	il1 := intent.NewLog(nodes, blocks, 8)
	arr1, err := core.New(devs, nodes, 1, core.Options{Intent: il1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := make([]byte, arr1.Blocks()*int64(bs))
	rand.New(rand.NewSource(7)).Read(data)
	if err := arr1.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := arr1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	sup1 := repair.New(arr1, nil, cfg)
	sup1.Start(ctx)

	const victim = 1
	raw[victim].Fail()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 8; i++ {
		lb := rng.Int63n(arr1.Blocks())
		buf := make([]byte, bs)
		rng.Read(buf)
		if err := arr1.WriteBlocks(ctx, lb, buf); err != nil {
			t.Fatal(err)
		}
		copy(data[lb*int64(bs):], buf)
	}
	if err := arr1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Wait for snapshot CONTENT, not existence: the supervisor persists at
	// poll cadence, and an early save may predate the last storm marks.
	snapDeadline := time.Now().Add(5 * time.Second)
	for {
		probe := intent.NewLog(nodes, blocks, 8)
		if err := probe.LoadFrom(nil, filepath.Join(stateDir, "intent.snap")); err == nil &&
			probe.DirtyRegions(victim) == il1.DirtyRegions(victim) {
			break
		}
		if time.Now().After(snapDeadline) {
			t.Fatal("intent snapshot never caught up to the live log")
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitForFile(t, filepath.Join(stateDir, "repair.ckpt"))
	// The repair host "crashes": the supervisor stops, its in-memory
	// intent log is dropped on the floor.
	sup1.Stop()

	// Second life: the member is back (with stale contents), and the new
	// supervisor starts from an EMPTY log plus the StateDir.
	raw[victim].Readmit()
	il2 := intent.NewLog(nodes, blocks, 8)
	arr2, err := core.New(devs, nodes, 1, core.Options{Intent: il2})
	if err != nil {
		t.Fatal(err)
	}
	sup2 := repair.New(arr2, nil, cfg)
	if il2.DirtyRegions(victim) == 0 {
		t.Fatal("local intent snapshot not recovered at construction")
	}
	sup2.Start(ctx)
	defer sup2.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := sup2.Status()
		if st.Devices[victim].Resyncs >= 1 && st.Devices[victim].State == repair.StateHealthy {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := sup2.Status()
	if st.Devices[victim].Resyncs < 1 {
		t.Fatalf("no resync after recovery: %+v", st.Devices[victim])
	}
	deviceBytes := int64(blocks) * bs
	if rb := st.Devices[victim].ResyncBytes; rb == 0 || rb >= deviceBytes/4 {
		t.Fatalf("recovered resync moved %d bytes, want a small nonzero fraction of %d", rb, deviceBytes)
	}
	if err := arr2.Verify(ctx); err != nil {
		t.Fatalf("verify after recovered resync: %v", err)
	}
	got := make([]byte, len(data))
	if err := arr2.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data wrong after recovered resync")
	}
}

// TestRepairCheckpointResumesRebuild: a rebuild interrupted by a
// supervisor restart resumes from the persisted checkpoint instead of
// starting over.
func TestRepairCheckpointResumesRebuild(t *testing.T) {
	stateDir := t.TempDir()
	cfg := repair.Config{
		Poll:          2 * time.Millisecond,
		FailureBudget: 5 * time.Millisecond,
		StateDir:      stateDir,
		// Slow enough to stop mid-rebuild (~130 KiB/s vs a ~400 KiB job).
		RateBytesPerSec: 128 * rebuildChunkBytes() / 10,
	}
	h := newHarness(t, 4, 800, 2, cfg)
	h.fillRandom(t, 9)
	ctx := context.Background()
	h.sup.Start(ctx)

	const victim = 0
	h.raw[victim].Fail()
	h.waitFor(t, 5*time.Second, "rebuild to make some progress", func() bool {
		st := h.sup.Status()
		return st.Devices[victim].State == repair.StateRebuilding && st.Devices[victim].Prog.DataDone > 0
	})
	h.sup.Stop()
	frozen := h.sup.Status().Devices[victim].Prog

	// New supervisor over the same array (the swapped-in spare is still
	// installed) with the same StateDir: it must come up already in
	// rebuilding state, at or past the frozen checkpoint.
	sup2 := repair.New(h.arr, nil, cfg)
	st := sup2.Status()
	if st.Devices[victim].State != repair.StateRebuilding {
		t.Fatalf("recovered state = %q, want rebuilding", st.Devices[victim].State)
	}
	if st.Devices[victim].Prog.DataDone == 0 {
		t.Fatal("rebuild checkpoint not recovered")
	}
	if st.Devices[victim].Prog.DataDone > frozen.DataDone {
		t.Fatalf("recovered checkpoint %+v ahead of frozen %+v", st.Devices[victim].Prog, frozen)
	}
	sup2.Start(ctx)
	defer sup2.Stop()
	h.waitFor(t, 10*time.Second, "resumed rebuild to finish", func() bool {
		st := sup2.Status()
		return st.Devices[victim].Rebuilds == 1 && st.Devices[victim].State == repair.StateHealthy
	})
	if err := h.arr.Verify(ctx); err != nil {
		t.Fatalf("verify after resumed rebuild: %v", err)
	}
}

// TestRepairStateDirOverFaultFS: the supervisor's own persistence holds
// up under a lying file system — a crash during a snapshot save leaves a
// loadable (old or new) snapshot, never a torn one.
func TestRepairStateDirOverFaultFS(t *testing.T) {
	ffs := store.NewFaultFS(store.OS)
	stateDir := t.TempDir()
	cfg := repair.Config{
		Poll:          2 * time.Millisecond,
		FailureBudget: 10 * time.Second,
		StateDir:      stateDir,
		FS:            ffs,
	}
	h := newHarness(t, 4, 400, 0, cfg)
	h.fillRandom(t, 10)
	ctx := context.Background()
	h.sup.Start(ctx)
	const victim = 2
	h.raw[victim].Fail()
	buf := make([]byte, bs)
	for i := 0; i < 4; i++ {
		if err := h.arr.WriteBlocks(ctx, int64(i*40), buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.arr.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	h.waitFor(t, 5*time.Second, "snapshot to land through the fault fs", func() bool {
		_, err := store.ReadFileFS(ffs, filepath.Join(stateDir, "intent.snap"))
		return err == nil
	})
	h.sup.Stop()
	ffs.CrashTorn()

	il2 := intent.NewLog(4, 400, 8)
	if err := il2.LoadFrom(ffs, filepath.Join(stateDir, "intent.snap")); err != nil {
		t.Fatalf("snapshot unreadable after torn crash: %v", err)
	}
	if il2.DirtyRegions(victim) == 0 {
		t.Fatal("dirty map lost across torn crash")
	}
}
