package repair_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/raid"
	"repro/internal/repair"
	"repro/internal/store"
)

func mkDisks(first, n int, blocks int64) ([]raid.Dev, []*disk.Disk) {
	devs := make([]raid.Dev, n)
	raw := make([]*disk.Disk, n)
	for i := range devs {
		d := disk.New(nil, fmt.Sprintf("d%d", first+i), store.NewMem(bs, blocks), disk.DefaultModel())
		devs[i] = d
		raw[i] = d
	}
	return devs, raw
}

// TestSupervisedGrow: the supervisor drives a grow as a background job,
// persists the epoch checkpoint, and reports completion through Status.
func TestSupervisedGrow(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 4, 96, 0, repair.Config{
		Poll:     2 * time.Millisecond,
		StateDir: dir,
	})
	data := h.fillRandom(t, 51)
	ctx := context.Background()
	h.sup.Start(ctx)
	defer h.sup.Stop()

	newDevs, _ := mkDisks(4, 8, 96)
	if err := h.sup.StartGrow(8, newDevs, 0); err != nil {
		t.Fatal(err)
	}
	h.waitFor(t, 5*time.Second, "grow to complete", func() bool {
		st := h.sup.RebalanceStatus()
		return st != nil && st.Done && !st.Running
	})
	if gen := h.arr.Epoch().Gen(); gen != 1 {
		t.Fatalf("epoch gen %d after grow, want 1", gen)
	}
	if err := h.arr.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := h.arr.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content changed across supervised grow")
	}
	if err := h.arr.Verify(ctx); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// The durable epoch record marks the migration done at the new
	// generation.
	h.waitFor(t, 2*time.Second, "epoch checkpoint", func() bool {
		ck, err := repair.LoadRebalance(store.OS, dir)
		return err == nil && ck != nil && ck.Done && ck.Source.Gen() == 1
	})
	st := h.sup.Status()
	if st.Rebalance == nil || !st.Rebalance.Done || st.Rebalance.Action != "grow" {
		t.Fatalf("status rebalance = %+v", st.Rebalance)
	}
}

// TestRebalanceRepairExclusion: membership changes refuse while
// recovery runs, and recovery jobs refuse while a rebalance is in
// flight — both ways, typed.
func TestRebalanceRepairExclusion(t *testing.T) {
	h := newHarness(t, 4, 96, 1, repair.Config{
		Poll:          2 * time.Millisecond,
		FailureBudget: time.Hour,
	})
	h.fillRandom(t, 53)

	// A member mid-recovery blocks membership changes. Pause keeps the
	// state machine transitioning but the recovery job queued, so the
	// "busy" window stays open for the assertion.
	h.raw[1].Fail()
	h.sup.Start(context.Background())
	defer h.sup.Stop()
	h.waitState(t, 1, repair.StateSuspect, 2*time.Second)
	h.sup.Pause()
	newDevs, _ := mkDisks(4, 8, 96)
	h.il.MarkRange(1, 0, 8)
	h.raw[1].Readmit()
	h.waitFor(t, 2*time.Second, "resync state", func() bool {
		return h.sup.Owns(1)
	})
	if err := h.sup.StartGrow(8, newDevs, 0); !errors.Is(err, repair.ErrRepairBusy) {
		t.Fatalf("StartGrow during recovery: %v, want ErrRepairBusy", err)
	}
	// Drain recovery, then start the rebalance and hold it paused so it
	// stays active.
	h.sup.Resume()
	h.waitState(t, 1, repair.StateHealthy, 5*time.Second)
	h.sup.Pause()
	if err := h.sup.StartGrow(8, newDevs, 0); err != nil {
		t.Fatalf("StartGrow after recovery: %v", err)
	}
	if err := h.sup.StartShrink(1, 0); !errors.Is(err, repair.ErrRebalanceActive) {
		t.Fatalf("StartShrink during rebalance: %v, want ErrRebalanceActive", err)
	}
	if err := h.arr.Rebuild(context.Background(), 0); !errors.Is(err, core.ErrMigrationActive) {
		t.Fatalf("manual rebuild during rebalance: %v, want ErrMigrationActive", err)
	}
	// Resume lets the tick loop restart the migration runner and finish.
	h.sup.Resume()
	h.waitFor(t, 5*time.Second, "paused grow to finish after resume", func() bool {
		st := h.sup.RebalanceStatus()
		return st != nil && st.Done
	})
	if err := h.arr.Verify(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceCrashResume: kill the supervisor mid-grow, rebuild the
// whole stack from the persisted epoch checkpoint (the raidxnode reopen
// path), and finish with only the delta.
func TestRebalanceCrashResume(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 4, 96, 0, repair.Config{
		Poll:            2 * time.Millisecond,
		StateDir:        dir,
		RateBytesPerSec: 256 << 10, // slow the copy so the "crash" lands mid-flight
	})
	data := h.fillRandom(t, 57)
	h.sup.Start(context.Background())

	newDevs, _ := mkDisks(4, 8, 96)
	if err := h.sup.StartGrow(8, newDevs, 0); err != nil {
		t.Fatal(err)
	}
	h.waitFor(t, 5*time.Second, "some progress", func() bool {
		cursor, _, active := h.arr.Migrating()
		return active && cursor > 0
	})
	h.sup.Stop() // "crash": runner cancelled at its next pace point

	ck, err := repair.LoadRebalance(store.OS, dir)
	if err != nil || ck == nil {
		t.Fatalf("epoch checkpoint after crash: %v, %v", ck, err)
	}
	if ck.Done || ck.Action != "grow" || ck.Nodes != 8 {
		t.Fatalf("checkpoint %+v, want in-flight grow by 8", ck)
	}

	// Reopen: array at the source epoch over the widened table, then
	// resume the recorded action from the persisted cursor.
	src, err := layout.EpochFromDesc(ck.Source)
	if err != nil {
		t.Fatal(err)
	}
	devs := append([]raid.Dev(nil), h.arr.Devices()...)
	arr2, err := core.NewAtEpoch(devs, src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sup2 := repair.New(arr2, nil, repair.Config{Poll: 2 * time.Millisecond, StateDir: dir})
	sup2.Start(context.Background())
	defer sup2.Stop()
	if err := sup2.StartGrow(ck.Nodes, nil, ck.Cursor); err != nil {
		t.Fatalf("resume grow: %v", err)
	}
	h.waitFor(t, 5*time.Second, "resumed grow to finish", func() bool {
		st := sup2.RebalanceStatus()
		return st != nil && st.Done
	})
	ctx := context.Background()
	if err := arr2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := arr2.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content changed across crash + resume")
	}
	if err := arr2.Verify(ctx); err != nil {
		t.Fatalf("verify: %v", err)
	}
	ck2, err := repair.LoadRebalance(store.OS, dir)
	if err != nil || ck2 == nil || !ck2.Done || ck2.Source.Gen() != 1 {
		t.Fatalf("final checkpoint %+v, %v", ck2, err)
	}
}
