// Package repair implements the self-healing supervisor: a per-device
// state machine that watches array-member health and runs recovery as
// rate-limited, checkpointed background jobs, so the array heals from
// failure churn without an operator.
//
// Each member moves through
//
//	healthy → suspect → degraded → rebuilding → healthy
//	healthy → suspect → resyncing → healthy
//
// A member that stops answering becomes suspect. If it returns before
// the failure budget expires, the supervisor replays only the write
// intents logged while it was away (delta resync, then a sampled scrub)
// — a two-second blip costs seconds of copying, not a whole disk. If
// the budget expires, the member is degraded: the supervisor claims a
// hot spare from the Sparer, swaps it in, and rebuilds it from the
// array's orthogonal copies. Jobs checkpoint their progress, pause and
// resume on demand, survive interruption (a crash-mid-rebuild resumes
// from the last landed chunk), and pace themselves through a byte-rate
// throttle so foreground I/O keeps priority.
//
// The decision rule between the two recovery paths is the device's
// content state, not its health state: a device that kept its data
// (readmitted after a partition or restart) is resynced from the intent
// log; a device that lost it (replaced by a blank spare) is rebuilt in
// full. A scrub mismatch after resync means intent tracking lost a
// write, and the supervisor escalates that device to a full
// rebuild-in-place.
package repair

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/raid"
	"repro/internal/store"
)

// State is one node of the per-device repair state machine.
type State string

const (
	// StateHealthy: the device answers and no intents are outstanding.
	StateHealthy State = "healthy"
	// StateSuspect: the device stopped answering; the failure budget is
	// running.
	StateSuspect State = "suspect"
	// StateDegraded: the budget expired; the supervisor is waiting to
	// claim a spare (or has none).
	StateDegraded State = "degraded"
	// StateRebuilding: a full background copy onto the device is in
	// progress (fresh spare, or escalated after a failed scrub).
	StateRebuilding State = "rebuilding"
	// StateResyncing: dirty regions are being replayed onto a readmitted
	// device.
	StateResyncing State = "resyncing"
)

// Code maps a state onto the numeric scale the repair.dev_state{dev=…}
// gauge exports: 0 healthy rising to 4 mid-recovery, so a dashboard can
// threshold on "anything above zero".
func (st State) Code() int64 {
	switch st {
	case StateHealthy:
		return 0
	case StateSuspect:
		return 1
	case StateDegraded:
		return 2
	case StateRebuilding:
		return 3
	case StateResyncing:
		return 4
	}
	return -1
}

// Array is the slice of core.RAIDx the supervisor drives.
type Array interface {
	Devices() []raid.Dev
	Intent() *intent.Log
	BlockSize() int
	RebuildFrom(ctx context.Context, idx int, prog *core.RebuildProgress, pace core.PaceFunc) error
	Resync(ctx context.Context, idx int, regions []intent.Region, pace core.PaceFunc) (core.ResyncStats, error)
	ScrubSample(ctx context.Context, idx int, stride int64, pace core.PaceFunc) (core.ScrubStats, error)
}

// Config tunes the supervisor.
type Config struct {
	// Poll is the health-scan interval (default 250ms).
	Poll time.Duration
	// FailureBudget is how long a member may stay unresponsive before
	// the supervisor gives up on readmission and swaps a spare (default
	// 5s). A budget of 0 escalates on the first poll.
	FailureBudget time.Duration
	// RateBytesPerSec caps background repair bandwidth; 0 is unlimited.
	RateBytesPerSec int64
	// Pace, when set, is consulted before the fixed-rate throttle for
	// every supervised transfer — the hook that routes repair, resync,
	// and scrub traffic through a QoS admission scheduler (e.g.
	// qos.Scheduler.Pace(qos.Background, "repair")) so maintenance I/O
	// shares bandwidth with foreground serving instead of racing it.
	Pace core.PaceFunc
	// ScrubStride samples every stride-th block after a resync
	// (0 takes the core default). Negative disables the scrub.
	ScrubStride int64
	// Persist, when set, receives intent-log snapshots whenever the log
	// changed since the last call (at poll cadence). raidxnode wires it
	// to replicate the snapshot through the CDD managers.
	Persist func(snapshot []byte)
	// StateDir, when set, persists supervisor state locally: the intent
	// snapshot and the per-device job checkpoints are written there with
	// the atomic tmp+rename+dir-fsync discipline at poll cadence, and
	// loaded back — before any peer recovery — when a supervisor is
	// constructed over the same directory. A restarted repair host then
	// knows its own dirty regions and resumes interrupted jobs without
	// asking the cluster.
	StateDir string
	// FS is the file system StateDir lives on (nil: the real one).
	// Tests inject a store.FaultFS here to exercise crash recovery.
	FS store.FS
	// Obs receives repair events and gauges (nil: no instrumentation).
	Obs *obs.Registry
}

// DevStatus is the supervisor's view of one member (exported for the
// wire status raidxctl decodes).
type DevStatus struct {
	State State `json:"state"`
	// Since is when the device entered its current state.
	Since time.Time `json:"since"`
	// Prog checkpoints an interrupted rebuild for resume.
	Prog core.RebuildProgress `json:"rebuild,omitempty"`
	// ResyncBytes accumulates delta-resync traffic for the device.
	ResyncBytes int64 `json:"resync_bytes"`
	// Rebuilds / Resyncs count completed recoveries.
	Rebuilds int `json:"rebuilds"`
	Resyncs  int `json:"resyncs"`
	// LastErr is the most recent job failure (cleared on success).
	LastErr string `json:"last_err,omitempty"`

	unhealthySince time.Time
	// swapped: a spare has been claimed and installed for the current
	// rebuild (Release on completion).
	swapped bool
	// escalated: a scrub mismatch forced rebuild-in-place (no swap).
	escalated bool
}

// Status is the supervisor's queryable state (the JSON raidxctl shows).
type Status struct {
	Paused  bool        `json:"paused"`
	Active  int         `json:"active"` // device index of the running job, -1 when idle
	Spares  int         `json:"spares"` // -1 when no sparer is attached
	Devices []DevStatus `json:"devices"`
	// Rebalance reports the membership-change job, nil when the array
	// has never had one (or does not support them).
	Rebalance *RebalanceStatus `json:"rebalance,omitempty"`
}

// Supervisor runs the repair state machine over an array.
type Supervisor struct {
	arr Array
	sp  *raid.Sparer // optional: nil disables auto-failover
	cfg Config

	events *obs.EventLog
	stateG *obs.GaugeVec

	mu        sync.Mutex
	devs      []DevStatus
	paused    bool
	active    int // index of the device whose job is running, -1 idle
	jobCancel context.CancelFunc
	lastGen   uint64  // intent-log generation last persisted
	lastCkpt  string  // last checkpoint JSON written to StateDir
	prevDirty []int64 // per-device dirty count at the previous poll

	// Membership-change (rebalance) job state; see rebalance.go.
	rebAction  string // "grow" | "shrink", "" before any change
	rebSource  layout.EpochDesc
	rebNodes   int
	rebErr     string
	rebRunning bool

	stop context.CancelFunc
	done chan struct{}
}

// ErrPaused aborts a running job when the supervisor is paused or
// stopped; the job's checkpoint survives for the next resume.
var ErrPaused = fmt.Errorf("repair: paused")

// New builds a supervisor over the array. sp may be nil (no hot-spare
// pool: degraded members wait for an operator).
func New(arr Array, sp *raid.Sparer, cfg Config) *Supervisor {
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	if cfg.FailureBudget < 0 {
		cfg.FailureBudget = 0
	}
	n := len(arr.Devices())
	s := &Supervisor{
		arr:    arr,
		sp:     sp,
		cfg:    cfg,
		events: cfg.Obs.Events(),
		devs:   make([]DevStatus, n),
		active: -1,
	}
	now := time.Now()
	for i := range s.devs {
		s.devs[i] = DevStatus{State: StateHealthy, Since: now}
	}
	s.prevDirty = make([]int64, n)
	if cfg.StateDir != "" {
		s.recoverLocal()
	}
	if cfg.Obs != nil {
		cfg.Obs.RegisterGauge("repair.paused", func() int64 {
			if s.Paused() {
				return 1
			}
			return 0
		})
		cfg.Obs.RegisterGauge("repair.active", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(s.active)
		})
		cfg.Obs.RegisterGauge("repair.resync_bytes", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			var n int64
			for i := range s.devs {
				n += s.devs[i].ResyncBytes
			}
			return n
		})
		s.stateG = cfg.Obs.GaugeVec("repair.dev_state", "dev")
		for i := range s.devs {
			s.stateG.With(strconv.Itoa(i)).Set(s.devs[i].State.Code())
		}
	}
	return s
}

// Start launches the supervision loop. Stop (or ctx cancellation) ends it.
func (s *Supervisor) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	s.stop = cancel
	s.done = make(chan struct{})
	done := s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(s.cfg.Poll)
		defer t.Stop()
		for {
			s.tick(ctx)
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
		}
	}()
}

// Stop halts the loop and cancels any running job (its checkpoint
// survives; a later Start resumes it).
func (s *Supervisor) Stop() {
	s.mu.Lock()
	cancel, done := s.stop, s.done
	if s.jobCancel != nil {
		s.jobCancel()
	}
	s.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// Pause suspends repair: the running job is cancelled at its next pace
// point (checkpoint intact) and no new jobs start until Resume.
func (s *Supervisor) Pause() {
	s.mu.Lock()
	s.paused = true
	if s.jobCancel != nil {
		s.jobCancel()
	}
	s.mu.Unlock()
	s.events.Append(obs.EventRepairState, "repair", "paused")
}

// Resume lifts a Pause.
func (s *Supervisor) Resume() {
	s.mu.Lock()
	s.paused = false
	s.mu.Unlock()
	s.events.Append(obs.EventRepairState, "repair", "resumed")
}

// Paused reports whether repair is suspended.
func (s *Supervisor) Paused() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paused
}

// DevState reports the repair state of member idx.
func (s *Supervisor) DevState(idx int) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx < 0 || idx >= len(s.devs) {
		return ""
	}
	return s.devs[idx].State
}

// Owns reports whether the supervisor currently owns recovery of member
// idx — a manual rebuild would run a second conflicting copy.
func (s *Supervisor) Owns(idx int) bool {
	switch s.DevState(idx) {
	case StateDegraded, StateRebuilding, StateResyncing:
		return true
	}
	return false
}

// Status snapshots the supervisor for display.
func (s *Supervisor) Status() Status {
	spares := -1
	if s.sp != nil {
		spares = s.sp.SparesLeft()
	}
	reb := s.RebalanceStatus()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		Paused:    s.paused,
		Active:    s.active,
		Spares:    spares,
		Devices:   append([]DevStatus(nil), s.devs...),
		Rebalance: reb,
	}
}

// StatusJSON is Status marshalled for the wire (the cdd RepairStatus op
// and the /repair HTTP endpoint).
func (s *Supervisor) StatusJSON() ([]byte, error) {
	return json.Marshal(s.Status())
}

// setState moves member idx to next and logs the transition.
func (s *Supervisor) setState(idx int, next State, why string) {
	s.mu.Lock()
	prev := s.devs[idx].State
	if prev == next {
		s.mu.Unlock()
		return
	}
	s.devs[idx].State = next
	s.devs[idx].Since = time.Now()
	s.mu.Unlock()
	s.stateG.With(strconv.Itoa(idx)).Set(next.Code())
	s.events.Append(obs.EventRepairState, fmt.Sprintf("repair/d%d", idx),
		fmt.Sprintf("%s -> %s: %s", prev, next, why))
}

// pace is the PaceFunc of every supervised job: it aborts on pause or
// cancellation and throttles to the configured byte rate.
func (s *Supervisor) pace(ctx context.Context, bytes int) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrPaused, err)
	}
	if s.Paused() {
		return ErrPaused
	}
	if s.cfg.Pace != nil {
		if err := s.cfg.Pace(ctx, bytes); err != nil {
			return fmt.Errorf("%w: %v", ErrPaused, err)
		}
	}
	if s.cfg.RateBytesPerSec > 0 {
		d := time.Duration(float64(bytes) / float64(s.cfg.RateBytesPerSec) * float64(time.Second))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return fmt.Errorf("%w: %v", ErrPaused, ctx.Err())
		}
	}
	return nil
}

// tick is one pass of the state machine: advance every member's state,
// then run at most one recovery job synchronously.
func (s *Supervisor) tick(ctx context.Context) {
	devs := s.arr.Devices()
	il := s.arr.Intent()
	now := time.Now()
	job := -1
	// During a membership change no recovery job may start (the copier
	// and a rebuild would each re-derive blocks the other is moving);
	// state transitions still track health. A paused or error-aborted
	// migration runner is restarted here once repair is resumed.
	rebalancing := s.rebalanceActive()
	retired := func(int) bool { return false }
	if r, ok := s.arr.(interface{ ColumnRetired(int) bool }); ok {
		retired = r.ColumnRetired
	}
	s.mu.Lock()
	paused := s.paused
	// A grow widened the device table: supervise the new members.
	for len(s.devs) < len(devs) {
		s.devs = append(s.devs, DevStatus{State: StateHealthy, Since: now})
		s.prevDirty = append(s.prevDirty, 0)
	}
	for i := range s.devs {
		if i >= len(devs) {
			break
		}
		if retired(i) {
			// A shrink removed this column's node: it holds no live
			// blocks, is never rebuilt, and must not consume a spare.
			continue
		}
		st := &s.devs[i]
		healthy := devs[i] != nil && devs[i].Healthy()
		dirty := il.DirtyRegions(i)
		switch st.State {
		case StateHealthy:
			if !healthy {
				st.unhealthySince = now
				s.transitionLocked(i, StateSuspect, "stopped answering")
			} else if dirty > 0 && dirty == s.prevDirty[i] {
				// A healthy member with outstanding intents: a supervisor
				// restarted after a crash and recovered its dirty map, or
				// a write error left intents without a health transition.
				// With write-ahead marking (core Options.IntentAhead) a
				// member under load is dirty by design, so require the
				// count to hold still across two polls — resyncing a
				// member mid-storm would race foreground writes forever.
				s.transitionLocked(i, StateResyncing, "outstanding intents on a healthy member")
			}
		case StateSuspect:
			if healthy {
				if dirty > 0 {
					s.transitionLocked(i, StateResyncing, "readmitted with outstanding intents")
				} else {
					s.transitionLocked(i, StateHealthy, "readmitted clean")
				}
			} else if now.Sub(st.unhealthySince) >= s.cfg.FailureBudget {
				s.transitionLocked(i, StateDegraded, "failure budget exhausted")
			}
		case StateDegraded:
			if healthy {
				// Came back after the budget but before a swap landed:
				// still cheaper to resync than to consume a spare.
				if dirty > 0 {
					s.transitionLocked(i, StateResyncing, "late readmission")
				} else {
					s.transitionLocked(i, StateHealthy, "late readmission, no intents")
				}
			} else if !paused && job < 0 && s.sp != nil && s.sp.SparesLeft() > 0 {
				job = i
			}
		case StateRebuilding, StateResyncing:
			if !paused && job < 0 {
				job = i
			}
		}
		s.prevDirty[i] = dirty
	}
	s.mu.Unlock()

	if rebalancing {
		if !paused {
			if m := s.rebalancer().CurrentMigration(); m != nil {
				s.kickRebalance(m)
			}
		}
	} else if job >= 0 {
		s.runJob(ctx, job)
	}
	s.persist()
}

// transitionLocked is setState for callers already holding s.mu.
func (s *Supervisor) transitionLocked(idx int, next State, why string) {
	prev := s.devs[idx].State
	if prev == next {
		return
	}
	s.devs[idx].State = next
	s.devs[idx].Since = time.Now()
	// The event log and the state gauge do their own locking and never
	// call back into the supervisor, so updating under s.mu is safe.
	s.stateG.With(strconv.Itoa(idx)).Set(next.Code())
	s.events.Append(obs.EventRepairState, fmt.Sprintf("repair/d%d", idx),
		fmt.Sprintf("%s -> %s: %s", prev, next, why))
}

// runJob executes the recovery owed to member idx: the spare swap (for
// a degraded member), then the rebuild or resync, synchronously. One
// job runs at a time; everything else waits for later ticks.
func (s *Supervisor) runJob(ctx context.Context, idx int) {
	jobCtx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	s.active = idx
	s.jobCancel = cancel
	state := s.devs[idx].State
	s.mu.Unlock()
	defer func() {
		cancel()
		s.mu.Lock()
		s.active = -1
		s.jobCancel = nil
		s.mu.Unlock()
	}()

	var err error
	switch state {
	case StateDegraded:
		err = s.startFailover(jobCtx, idx)
	case StateRebuilding:
		err = s.runRebuild(jobCtx, idx)
	case StateResyncing:
		err = s.runResync(jobCtx, idx)
	}
	s.mu.Lock()
	if err != nil {
		s.devs[idx].LastErr = err.Error()
	} else {
		s.devs[idx].LastErr = ""
	}
	s.mu.Unlock()
}

// startFailover claims and installs a spare for degraded member idx,
// then runs the rebuild.
func (s *Supervisor) startFailover(ctx context.Context, idx int) error {
	if err := s.sp.Swap(idx); err != nil {
		return err
	}
	s.mu.Lock()
	s.devs[idx].swapped = true
	s.devs[idx].Prog = core.RebuildProgress{}
	s.mu.Unlock()
	s.setState(idx, StateRebuilding, "hot spare installed")
	return s.runRebuild(ctx, idx)
}

// runRebuild runs (or resumes) the full background copy onto member idx.
func (s *Supervisor) runRebuild(ctx context.Context, idx int) error {
	s.mu.Lock()
	prog := s.devs[idx].Prog
	s.mu.Unlock()
	err := s.arr.RebuildFrom(ctx, idx, &prog, func(ctx context.Context, b int) error {
		s.mu.Lock()
		s.devs[idx].Prog = prog
		s.mu.Unlock()
		return s.pace(ctx, b)
	})
	s.mu.Lock()
	s.devs[idx].Prog = prog
	swapped := s.devs[idx].swapped
	s.mu.Unlock()
	if err != nil {
		if !s.arr.Devices()[idx].Healthy() {
			// The rebuild target itself died: release the claim so the
			// degraded path can swap the next spare.
			if swapped && s.sp != nil {
				s.sp.Release(idx)
			}
			s.mu.Lock()
			s.devs[idx].swapped = false
			s.devs[idx].unhealthySince = time.Now()
			s.devs[idx].Prog = core.RebuildProgress{}
			s.mu.Unlock()
			s.setState(idx, StateSuspect, "rebuild target failed: "+err.Error())
		}
		return err
	}
	if swapped && s.sp != nil {
		s.sp.Release(idx)
	}
	s.mu.Lock()
	s.devs[idx].swapped = false
	s.devs[idx].escalated = false
	s.devs[idx].Rebuilds++
	s.devs[idx].Prog = core.RebuildProgress{}
	s.mu.Unlock()
	s.setState(idx, StateHealthy, "rebuild complete")
	return nil
}

// runResync drains the intent log onto readmitted member idx, then
// spot-checks it with a sampled scrub.
func (s *Supervisor) runResync(ctx context.Context, idx int) error {
	il := s.arr.Intent()
	for {
		regions := il.TakeDirty(idx)
		if len(regions) == 0 {
			break
		}
		st, err := s.arr.Resync(ctx, idx, regions, s.pace)
		s.mu.Lock()
		s.devs[idx].ResyncBytes += st.BytesCopied
		s.mu.Unlock()
		if err != nil {
			// The untaken intents are lost unless restored: re-mark
			// everything we took (replays are idempotent).
			for _, r := range regions {
				il.MarkRange(idx, r.Start, r.Count)
			}
			if !s.arr.Devices()[idx].Healthy() {
				s.mu.Lock()
				s.devs[idx].unhealthySince = time.Now()
				s.mu.Unlock()
				s.setState(idx, StateSuspect, "resync target failed: "+err.Error())
			}
			return err
		}
	}
	if s.cfg.ScrubStride >= 0 {
		sc, err := s.arr.ScrubSample(ctx, idx, s.cfg.ScrubStride, s.pace)
		if err != nil {
			if !s.arr.Devices()[idx].Healthy() {
				s.mu.Lock()
				s.devs[idx].unhealthySince = time.Now()
				s.mu.Unlock()
				s.setState(idx, StateSuspect, "scrub target failed: "+err.Error())
			}
			return err
		}
		if sc.Mismatches > 0 {
			// Intent tracking missed a write: the delta can't be
			// trusted, escalate to a full rebuild-in-place.
			s.mu.Lock()
			s.devs[idx].escalated = true
			s.devs[idx].Prog = core.RebuildProgress{}
			s.mu.Unlock()
			s.setState(idx, StateRebuilding,
				fmt.Sprintf("scrub found %d mismatches, escalating to full rebuild", sc.Mismatches))
			return s.runRebuild(ctx, idx)
		}
	}
	s.mu.Lock()
	s.devs[idx].Resyncs++
	s.mu.Unlock()
	s.setState(idx, StateHealthy, "delta resync complete")
	return nil
}

// persist pushes an intent-log snapshot through cfg.Persist and saves
// the local StateDir copy when the log changed since the last push, and
// refreshes the local job checkpoint.
func (s *Supervisor) persist() {
	il := s.arr.Intent()
	gen := il.Gen()
	s.mu.Lock()
	changed := gen != s.lastGen
	s.lastGen = gen
	s.mu.Unlock()
	if changed && s.cfg.Persist != nil {
		if snap, err := il.MarshalBinary(); err == nil {
			s.cfg.Persist(snap)
		}
	}
	s.saveLocal(changed)
}
