package repair_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/intent"
	"repro/internal/obs"
	"repro/internal/raid"
	"repro/internal/repair"
	"repro/internal/store"
)

const bs = 1024

// harness is a supervised test array over instant mem disks.
type harness struct {
	arr *core.RAIDx
	raw []*disk.Disk
	il  *intent.Log
	sp  *raid.Sparer
	reg *obs.Registry
	sup *repair.Supervisor
}

func newHarness(t *testing.T, nodes int, blocks int64, spares int, cfg repair.Config) *harness {
	t.Helper()
	devs := make([]raid.Dev, nodes)
	raw := make([]*disk.Disk, nodes)
	for i := range devs {
		d := disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(bs, blocks), disk.DefaultModel())
		devs[i] = d
		raw[i] = d
	}
	il := intent.NewLog(nodes, blocks, 8)
	reg := obs.NewRegistry()
	arr, err := core.New(devs, nodes, 1, core.Options{Intent: il, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	var sp *raid.Sparer
	if spares > 0 {
		pool := make([]raid.Dev, spares)
		for i := range pool {
			pool[i] = disk.New(nil, fmt.Sprintf("spare%d", i), store.NewMem(bs, blocks), disk.DefaultModel())
		}
		sp = raid.NewSparer(arr, pool)
	}
	cfg.Obs = reg
	return &harness{arr: arr, raw: raw, il: il, sp: sp, reg: reg, sup: repair.New(arr, sp, cfg)}
}

func (h *harness) fillRandom(t *testing.T, seed int64) []byte {
	t.Helper()
	ctx := context.Background()
	data := make([]byte, h.arr.Blocks()*int64(bs))
	rand.New(rand.NewSource(seed)).Read(data)
	if err := h.arr.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := h.arr.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return data
}

// waitState polls until member idx reaches want (or the deadline).
func (h *harness) waitState(t *testing.T, idx int, want repair.State, d time.Duration) {
	t.Helper()
	h.waitFor(t, d, fmt.Sprintf("member %d to reach %q", idx, want), func() bool {
		return h.sup.DevState(idx) == want
	})
}

// waitFor polls cond until true or the deadline.
func (h *harness) waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func countEvents(reg *obs.Registry, kind obs.EventKind) int {
	n := 0
	for _, e := range reg.Events().Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestRepairSupervisorAutoSpareRebuild: a member that dies past the
// failure budget is replaced by a hot spare and rebuilt, hands-off, and
// the array verifies clean afterwards.
func TestRepairSupervisorAutoSpareRebuild(t *testing.T) {
	h := newHarness(t, 4, 400, 1, repair.Config{
		Poll:          2 * time.Millisecond,
		FailureBudget: 10 * time.Millisecond,
	})
	data := h.fillRandom(t, 41)
	ctx := context.Background()
	h.sup.Start(ctx)
	defer h.sup.Stop()

	const victim = 2
	h.raw[victim].Fail()
	h.waitFor(t, 5*time.Second, "auto spare rebuild", func() bool {
		st := h.sup.Status()
		return st.Devices[victim].Rebuilds == 1 && st.Devices[victim].State == repair.StateHealthy
	})

	if h.sp.SparesLeft() != 0 {
		t.Fatalf("%d spares left, want 0", h.sp.SparesLeft())
	}
	if len(h.sp.Retired()) != 1 {
		t.Fatalf("%d retired, want 1", len(h.sp.Retired()))
	}
	st := h.sup.Status()
	if st.Devices[victim].Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", st.Devices[victim].Rebuilds)
	}
	if err := h.arr.Verify(ctx); err != nil {
		t.Fatalf("verify after auto failover: %v", err)
	}
	got := make([]byte, len(data))
	if err := h.arr.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data wrong after auto failover")
	}
	if countEvents(h.reg, obs.EventRepairState) < 3 {
		t.Fatal("state transitions not recorded in the event log")
	}
}

// TestRepairSupervisorDeltaResync: a member that blips and returns with
// stale data inside the failure budget is delta-resynced from the
// intent log — no spare consumed, traffic a small fraction of the disk.
func TestRepairSupervisorDeltaResync(t *testing.T) {
	const blocks = 400
	h := newHarness(t, 4, blocks, 1, repair.Config{
		Poll:          2 * time.Millisecond,
		FailureBudget: 10 * time.Second, // blip well inside the budget
	})
	data := h.fillRandom(t, 42)
	ctx := context.Background()
	h.sup.Start(ctx)
	defer h.sup.Stop()

	const victim = 1
	h.raw[victim].Fail()
	h.waitState(t, victim, repair.StateSuspect, 5*time.Second)
	// Degraded writes while the member is away leave intents behind.
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 8; i++ {
		lb := rng.Int63n(h.arr.Blocks())
		buf := make([]byte, bs)
		rng.Read(buf)
		if err := h.arr.WriteBlocks(ctx, lb, buf); err != nil {
			t.Fatal(err)
		}
		copy(data[lb*int64(bs):], buf)
	}
	if err := h.arr.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	h.raw[victim].Readmit() // back with stale contents
	h.waitFor(t, 5*time.Second, "delta resync", func() bool {
		st := h.sup.Status()
		return st.Devices[victim].Resyncs >= 1 && st.Devices[victim].State == repair.StateHealthy
	})

	st := h.sup.Status()
	if st.Devices[victim].Resyncs != 1 || st.Devices[victim].Rebuilds != 0 {
		t.Fatalf("resyncs=%d rebuilds=%d, want 1 resync and no rebuild",
			st.Devices[victim].Resyncs, st.Devices[victim].Rebuilds)
	}
	deviceBytes := int64(blocks) * bs
	if rb := st.Devices[victim].ResyncBytes; rb == 0 || rb >= deviceBytes/4 {
		t.Fatalf("resync moved %d bytes, want a small nonzero fraction of %d", rb, deviceBytes)
	}
	if h.sp.SparesLeft() != 1 {
		t.Fatal("resync consumed a spare")
	}
	if err := h.arr.Verify(ctx); err != nil {
		t.Fatalf("verify after delta resync: %v", err)
	}
	got := make([]byte, len(data))
	if err := h.arr.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data wrong after delta resync")
	}
}

// TestRepairPauseResumeMidRebuild: pausing cancels the running rebuild
// at its next pace point with the checkpoint intact; resuming finishes
// the job instead of restarting it.
func TestRepairPauseResumeMidRebuild(t *testing.T) {
	h := newHarness(t, 4, 800, 2, repair.Config{
		Poll:          2 * time.Millisecond,
		FailureBudget: 5 * time.Millisecond,
		// ~130 KiB/s against a ~400 KiB job: slow enough to pause
		// mid-flight, fast enough to finish the test promptly.
		RateBytesPerSec: 128 * rebuildChunkBytes() / 10,
	})
	h.fillRandom(t, 44)
	ctx := context.Background()
	h.sup.Start(ctx)
	defer h.sup.Stop()

	const victim = 0
	h.raw[victim].Fail()
	h.waitState(t, victim, repair.StateRebuilding, 5*time.Second)
	h.sup.Pause()
	// Give the cancel time to land, then note the frozen checkpoint.
	time.Sleep(50 * time.Millisecond)
	if st := h.sup.DevState(victim); st != repair.StateRebuilding {
		t.Fatalf("paused mid-rebuild state = %q, want rebuilding", st)
	}
	frozen := h.sup.Status().Devices[victim].Prog
	time.Sleep(50 * time.Millisecond)
	if now := h.sup.Status().Devices[victim].Prog; now != frozen {
		t.Fatalf("checkpoint advanced while paused: %+v -> %+v", frozen, now)
	}
	if !h.sup.Paused() {
		t.Fatal("supervisor does not report paused")
	}
	h.sup.Resume()
	h.waitFor(t, 10*time.Second, "resumed rebuild", func() bool {
		st := h.sup.Status()
		return st.Devices[victim].Rebuilds == 1 && st.Devices[victim].State == repair.StateHealthy
	})
	st := h.sup.Status()
	if st.Devices[victim].Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", st.Devices[victim].Rebuilds)
	}
	if err := h.arr.Verify(ctx); err != nil {
		t.Fatalf("verify after pause/resume rebuild: %v", err)
	}
}

// rebuildChunkBytes mirrors core's repair chunk size in bytes for rate
// arithmetic (128 blocks × 1 KiB test blocks).
func rebuildChunkBytes() int64 { return 128 * bs }

// TestRepairScrubEscalatesToRebuild: corruption the intent log never
// saw (a lost write) is caught by the post-resync sampled scrub, which
// escalates the member to a full rebuild-in-place — no spare consumed.
func TestRepairScrubEscalatesToRebuild(t *testing.T) {
	h := newHarness(t, 4, 400, 1, repair.Config{
		Poll:          2 * time.Millisecond,
		FailureBudget: 10 * time.Second,
		ScrubStride:   1, // exhaustive scrub so the corruption is always sampled
	})
	data := h.fillRandom(t, 45)
	ctx := context.Background()

	const victim = 3
	h.raw[victim].Fail()
	// One degraded write so readmission takes the resync path at all.
	buf := bytes.Repeat([]byte{0xAB}, bs)
	target := int64(0)
	for lb := int64(0); lb < h.arr.Blocks(); lb++ {
		if h.arr.Layout().DataLoc(lb).Disk == victim {
			target = lb
			break
		}
	}
	if err := h.arr.WriteBlocks(ctx, target, buf); err != nil {
		t.Fatal(err)
	}
	copy(data[target*int64(bs):], buf)
	if err := h.arr.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	h.raw[victim].Readmit()
	// Corrupt a block on the readmitted device behind the intent log's
	// back — the write the log "lost".
	m := h.arr.Layout().MirrorLoc(5)
	corrupt := m
	if m.Disk != victim {
		// Find any physical block of victim holding live data.
		for lb := int64(0); lb < h.arr.Blocks(); lb++ {
			if loc := h.arr.Layout().MirrorLoc(lb); loc.Disk == victim {
				corrupt = loc
				break
			}
		}
	}
	if err := h.raw[victim].WriteBlocks(ctx, corrupt.Block, bytes.Repeat([]byte{0xEE}, bs)); err != nil {
		t.Fatal(err)
	}

	h.sup.Start(ctx)
	defer h.sup.Stop()
	h.waitFor(t, 10*time.Second, "scrub escalation to full rebuild", func() bool {
		st := h.sup.Status()
		return st.Devices[victim].Rebuilds == 1 && st.Devices[victim].State == repair.StateHealthy
	})
	if st := h.sup.Status(); st.Devices[victim].Resyncs != 0 {
		t.Fatalf("resyncs = %d, want 0 (the resync must not count as completed)", st.Devices[victim].Resyncs)
	}
	if h.sp.SparesLeft() != 1 {
		t.Fatal("escalated rebuild-in-place consumed a spare")
	}
	if err := h.arr.Verify(ctx); err != nil {
		t.Fatalf("verify after escalated rebuild: %v", err)
	}
	got := make([]byte, len(data))
	if err := h.arr.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data wrong after escalated rebuild")
	}
}

// TestRepairStatusJSON: the wire status decodes and carries the device
// states.
func TestRepairStatusJSON(t *testing.T) {
	h := newHarness(t, 4, 400, 0, repair.Config{Poll: time.Hour})
	b, err := h.sup.StatusJSON()
	if err != nil {
		t.Fatal(err)
	}
	var st repair.Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Devices) != 4 || st.Active != -1 || st.Spares != -1 {
		t.Fatalf("status = %+v", st)
	}
	for _, d := range st.Devices {
		if d.State != repair.StateHealthy {
			t.Fatalf("fresh supervisor reports %q", d.State)
		}
	}
}
