package repair

// Local crash-consistent persistence of the supervisor's own state: the
// array's write-intent snapshot and the per-device job checkpoints are
// saved into Config.StateDir with the atomic tmp+rename+dir-fsync
// discipline, and loaded at construction — BEFORE any peer recovery —
// so a restarted repair host knows its own dirty regions and resumes
// interrupted rebuilds without asking the cluster. Peer-replicated
// snapshots (Config.Persist) remain the fallback when the local state
// die with the machine; merging both is safe because intent snapshots
// union.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
)

// devCheckpoint is the durable slice of one member's DevStatus: enough
// to resume its recovery job, nothing that the health poll re-derives.
type devCheckpoint struct {
	State       State                `json:"state"`
	Prog        core.RebuildProgress `json:"rebuild,omitempty"`
	ResyncBytes int64                `json:"resync_bytes,omitempty"`
	Rebuilds    int                  `json:"rebuilds,omitempty"`
	Resyncs     int                  `json:"resyncs,omitempty"`
	Escalated   bool                 `json:"escalated,omitempty"`
}

// checkpointFile is the on-disk JSON shape.
type checkpointFile struct {
	Version int             `json:"version"`
	Devices []devCheckpoint `json:"devices"`
}

func (s *Supervisor) fsys() store.FS {
	if s.cfg.FS != nil {
		return s.cfg.FS
	}
	return store.OS
}

func (s *Supervisor) intentPath() string {
	return filepath.Join(s.cfg.StateDir, "intent.snap")
}

func (s *Supervisor) checkpointPath() string {
	return filepath.Join(s.cfg.StateDir, "repair.ckpt")
}

// recoverLocal folds the locally persisted intent snapshot into the
// array's live log and restores job checkpoints. Called from New, while
// s is still private to the constructor. Failures are logged and
// non-fatal: missing files mean a fresh host, a geometry mismatch means
// the array was re-created and the old state is meaningless.
func (s *Supervisor) recoverLocal() {
	il := s.arr.Intent()
	if err := il.LoadFrom(s.fsys(), s.intentPath()); err != nil {
		s.events.Append(obs.EventRepairState, "repair",
			fmt.Sprintf("stale local intent snapshot ignored: %v", err))
	} else if il.AnyDirty() {
		s.events.Append(obs.EventRepairState, "repair",
			"recovered dirty map from local intent snapshot")
	}

	raw, err := store.ReadFileFS(s.fsys(), s.checkpointPath())
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.events.Append(obs.EventRepairState, "repair",
				fmt.Sprintf("unreadable local checkpoint ignored: %v", err))
		}
		return
	}
	var ck checkpointFile
	if err := json.Unmarshal(raw, &ck); err != nil {
		s.events.Append(obs.EventRepairState, "repair",
			fmt.Sprintf("corrupt local checkpoint ignored: %v", err))
		return
	}
	for i, d := range ck.Devices {
		if i >= len(s.devs) {
			break
		}
		st := &s.devs[i]
		st.ResyncBytes = d.ResyncBytes
		st.Rebuilds = d.Rebuilds
		st.Resyncs = d.Resyncs
		switch d.State {
		case StateRebuilding, StateResyncing, StateDegraded:
			// An interrupted job: resume it. A crashed-mid-rebuild member
			// continues from the last landed chunk; spare claims did not
			// survive the crash, so the rebuild resumes in place and the
			// normal state machine re-degrades the member if it is gone.
			st.State = d.State
			st.Prog = d.Prog
			st.escalated = d.Escalated
			s.events.Append(obs.EventRepairState, fmt.Sprintf("repair/d%d", i),
				fmt.Sprintf("resuming %s from local checkpoint", d.State))
		}
	}
}

// saveLocal persists the intent snapshot (when the log changed) and the
// job checkpoint (when the devices changed) into StateDir. Runs at poll
// cadence from the supervision loop; each write is atomic, so a crash
// between or during saves leaves the previous consistent state.
func (s *Supervisor) saveLocal(intentChanged bool) {
	if s.cfg.StateDir == "" {
		return
	}
	if intentChanged {
		if err := s.arr.Intent().SaveTo(s.fsys(), s.intentPath()); err != nil {
			s.events.Append(obs.EventRepairState, "repair",
				fmt.Sprintf("local intent snapshot save failed: %v", err))
		}
	}
	s.mu.Lock()
	ck := checkpointFile{Version: 1, Devices: make([]devCheckpoint, len(s.devs))}
	for i := range s.devs {
		d := &s.devs[i]
		ck.Devices[i] = devCheckpoint{
			State:       d.State,
			Prog:        d.Prog,
			ResyncBytes: d.ResyncBytes,
			Rebuilds:    d.Rebuilds,
			Resyncs:     d.Resyncs,
			Escalated:   d.escalated,
		}
	}
	s.mu.Unlock()
	raw, err := json.Marshal(ck)
	if err != nil {
		return
	}
	s.mu.Lock()
	changed := string(raw) != s.lastCkpt
	s.lastCkpt = string(raw)
	s.mu.Unlock()
	if !changed {
		return
	}
	if err := store.WriteFileAtomic(s.fsys(), s.checkpointPath(), raw); err != nil {
		s.events.Append(obs.EventRepairState, "repair",
			fmt.Sprintf("local checkpoint save failed: %v", err))
	}
}
