package cdd

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/transport"
)

// quickPolicy keeps the white-box health tests fast.
func quickPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   2,
		CallTimeout:   250 * time.Millisecond,
		BaseBackoff:   2 * time.Millisecond,
		MaxBackoff:    20 * time.Millisecond,
		ProbeInterval: 20 * time.Millisecond,
	}
}

func connectObs(t *testing.T, addr string) (*NodeClient, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	c, err := ConnectWith(context.Background(), addr, Options{Retry: quickPolicy(), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, reg
}

func hasEvent(reg *obs.Registry, kind obs.EventKind, subject string) bool {
	for _, e := range reg.Events().Events() {
		if e.Kind == kind && e.Subject == subject {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestErrorCodeClassification exercises the typed error codes end to
// end: the manager stamps a code on the wire, and the client reacts to
// the code — not to message text.
func TestErrorCodeClassification(t *testing.T) {
	n := startNode(t, 1, 16)
	c, reg := connectObs(t, n.Addr())
	dev := c.Dev(0)
	ctx := context.Background()
	buf := make([]byte, 512)

	// A failed disk answers with CodeDiskFailed, which marks the device
	// unhealthy on the spot — no probe round trip needed.
	if err := c.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	err := dev.ReadBlocks(ctx, 0, buf)
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("read of failed disk: got %v, want RemoteError", err)
	}
	if re.Code != transport.CodeDiskFailed {
		t.Fatalf("error code = %d, want CodeDiskFailed (%d)", re.Code, transport.CodeDiskFailed)
	}
	if dev.Healthy() {
		t.Error("device still healthy after CodeDiskFailed outcome")
	}
	if !hasEvent(reg, obs.EventDiskFailed, dev.subject) {
		t.Error("no disk-failed event logged")
	}

	// Recover the disk; health classification must follow.
	if err := c.ReplaceDisk(0); err != nil {
		t.Fatal(err)
	}
	dev.InvalidateHealth()
	if !dev.Healthy() {
		t.Fatal("replaced disk reported unhealthy")
	}

	// A request the caller got wrong (out-of-range block) is stamped
	// CodeBadRequest and must NOT count against the disk's health.
	err = dev.ReadBlocks(ctx, 1000, buf)
	if !errors.As(err, &re) || re.Code != transport.CodeBadRequest {
		t.Fatalf("out-of-range read: got %v, want RemoteError with CodeBadRequest", err)
	}
	if !dev.Healthy() {
		t.Error("bad request marked a healthy disk unhealthy")
	}

	// An opcode the server does not speak is CodeUnknownOp.
	_, err = c.call(ctx, 0xEE, nil)
	if !errors.As(err, &re) || re.Code != transport.CodeUnknownOp {
		t.Fatalf("unknown op: got %v, want RemoteError with CodeUnknownOp", err)
	}
}

// TestHealthyServesStaleThenRefreshes pins the TTL-expiry contract:
// Healthy never blocks on a mere cache expiry — it serves the stale
// answer and lets one background probe refresh the cache.
func TestHealthyServesStaleThenRefreshes(t *testing.T) {
	n := startNode(t, 1, 16)
	c, reg := connectObs(t, n.Addr())
	dev := c.Dev(0)

	// Fail the disk behind the cache's back, then let the TTL lapse.
	if err := c.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(dev.healthTTL + 20*time.Millisecond)

	// First call after expiry: the stale answer (healthy) is served
	// immediately; the truth arrives via the background probe.
	if !dev.Healthy() {
		t.Fatal("expired cache blocked for a fresh answer instead of serving stale")
	}
	waitFor(t, "background probe to observe the failure", func() bool { return !dev.Healthy() })
	if reg.Counter("cdd.probe_ok").Value() == 0 {
		t.Error("background refresh not counted as a probe")
	}
}

// TestInvalidateHealthSingleFlight pins the explicit-invalidation
// contract: Healthy blocks for a fresh answer, and concurrent callers
// share one probe instead of fanning out duplicates.
func TestInvalidateHealthSingleFlight(t *testing.T) {
	n := startNode(t, 1, 16)
	c, reg := connectObs(t, n.Addr())
	dev := c.Dev(0)

	probes := func() int64 {
		return reg.Counter("cdd.probe_ok").Value() + reg.Counter("cdd.probe_fail").Value()
	}
	base := probes()
	dev.InvalidateHealth()

	const callers = 8
	results := make([]bool, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = dev.Healthy()
		}(i)
	}
	wg.Wait()
	for i, h := range results {
		if !h {
			t.Errorf("caller %d got unhealthy from a healthy node", i)
		}
	}
	delta := probes() - base
	if delta == 0 {
		t.Error("invalidated health answered without any probe")
	}
	if delta >= callers {
		t.Errorf("%d concurrent callers issued %d probes; want single-flight sharing", callers, delta)
	}
}

// TestShortReadMarksSuspect drives the client against a server that
// truncates read responses: the protocol-level fault must feed health
// tracking (suspect + heartbeat re-admission), not just error out.
func TestShortReadMarksSuspect(t *testing.T) {
	d := disk.New(nil, "d", store.NewMem(512, 16), disk.DefaultModel())
	m := NewManager([]*disk.Disk{d})
	var truncate atomic.Bool
	truncate.Store(true)
	srv, err := transport.Serve("127.0.0.1:0", func(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
		resp, err := m.Handle(ctx, op, payload)
		if op == OpRead && err == nil && truncate.Load() && len(resp) > 0 {
			resp = resp[:len(resp)-1]
		}
		return resp, err
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	c, reg := connectObs(t, srv.Addr())
	dev := c.Dev(0)
	ctx := context.Background()
	if err := dev.WriteBlocks(ctx, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	err = dev.ReadBlocks(ctx, 0, make([]byte, 512))
	if err == nil {
		t.Fatal("truncated read response not detected")
	}
	if dev.Healthy() {
		t.Error("short read did not mark the device suspect")
	}
	if reg.Counter("cdd.suspects").Value() == 0 {
		t.Error("suspect counter not incremented")
	}
	if !hasEvent(reg, obs.EventSuspect, dev.subject) {
		t.Error("no suspect event logged for the truncating peer")
	}

	// Stop truncating: the heartbeat (health probes are unaffected)
	// re-admits the device.
	truncate.Store(false)
	waitFor(t, "heartbeat re-admission", func() bool { return dev.Healthy() })
	if !hasEvent(reg, obs.EventReadmit, dev.subject) {
		t.Error("no re-admission event logged")
	}
}
