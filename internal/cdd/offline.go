package cdd

import (
	"context"
	"errors"
	"fmt"
)

// ErrOffline reports I/O against a node that was unreachable when the
// client rig was assembled.
var ErrOffline = errors.New("cdd: node offline")

// OfflineDev is a placeholder device for a disk on an unreachable
// node: it reports unhealthy and fails all I/O immediately, so array
// engines schedule around it exactly as they do for a failed disk.
// It lets a client mount a degraded array when a node is down at
// connect time (mid-session outages are handled by RemoteDev's
// suspect/heartbeat machinery instead).
type OfflineDev struct {
	addr   string
	bs     int
	blocks int64
}

// Offline creates a placeholder for a disk on the unreachable node at
// addr, mirroring the geometry of its reachable peers.
func Offline(addr string, blockSize int, blocks int64) *OfflineDev {
	return &OfflineDev{addr: addr, bs: blockSize, blocks: blocks}
}

func (d *OfflineDev) BlockSize() int   { return d.bs }
func (d *OfflineDev) NumBlocks() int64 { return d.blocks }

// Healthy always reports false: the node was down when we assembled
// the rig and no connection exists to probe.
func (d *OfflineDev) Healthy() bool { return false }

func (d *OfflineDev) err() error { return fmt.Errorf("%w: %s", ErrOffline, d.addr) }

func (d *OfflineDev) ReadBlocks(context.Context, int64, []byte) error  { return d.err() }
func (d *OfflineDev) WriteBlocks(context.Context, int64, []byte) error { return d.err() }
func (d *OfflineDev) WriteBlocksBackground(context.Context, int64, []byte) error {
	return d.err()
}
func (d *OfflineDev) Flush(context.Context) error { return d.err() }
