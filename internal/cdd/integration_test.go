package cdd_test

// End-to-end: a RAID-x array assembled over real TCP connections to
// four CDD nodes — the serverless distributed disk array of the paper,
// running on loopback.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/store"
)

// cluster spins up n CDD nodes with k disks each and connects a client
// to every node, returning the global dev list in SIOS order (disk j on
// node j mod n).
func cluster(t *testing.T, n, k int, blocks int64) ([]raid.Dev, []*cdd.NodeClient) {
	t.Helper()
	nodes := make([]*cdd.Node, n)
	clients := make([]*cdd.NodeClient, n)
	for i := 0; i < n; i++ {
		disks := make([]*disk.Disk, k)
		for j := range disks {
			disks[j] = disk.New(nil, fmt.Sprintf("n%dd%d", i, j), store.NewMem(1024, blocks), disk.DefaultModel())
		}
		node, err := cdd.ListenAndServe("127.0.0.1:0", disks)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
		c, err := cdd.Connect(node.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		t.Cleanup(func() { c.Close() })
	}
	devs := make([]raid.Dev, n*k)
	for local := 0; local < k; local++ {
		for node := 0; node < n; node++ {
			devs[node+local*n] = clients[node].Dev(local)
		}
	}
	return devs, clients
}

func TestRAIDxOverTCP(t *testing.T) {
	devs, _ := cluster(t, 4, 1, 64)
	a, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*a.BlockSize())
	rand.New(rand.NewSource(11)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP round trip mismatch")
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify over TCP: %v", err)
	}
}

func TestRAIDxOverTCPDegradedAndRebuild(t *testing.T) {
	devs, clients := cluster(t, 4, 1, 64)
	a, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*a.BlockSize())
	rand.New(rand.NewSource(12)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill node 2's disk over the wire.
	if err := clients[2].FailDisk(0); err != nil {
		t.Fatal(err)
	}
	devs[2].(*cdd.RemoteDev).InvalidateHealth()

	got := make([]byte, len(data))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("degraded read over TCP: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read returned wrong data")
	}

	// Degraded write, then replace + rebuild + verify.
	upd := make([]byte, 8*a.BlockSize())
	rand.New(rand.NewSource(13)).Read(upd)
	if err := a.WriteBlocks(ctx, 5, upd); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	copy(data[5*a.BlockSize():], upd)
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	if err := clients[2].ReplaceDisk(0); err != nil {
		t.Fatal(err)
	}
	devs[2].(*cdd.RemoteDev).InvalidateHealth()
	if err := a.Rebuild(ctx, 2); err != nil {
		t.Fatalf("rebuild over TCP: %v", err)
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after rebuild: %v", err)
	}
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data wrong after rebuild")
	}
}

func TestRAID5OverTCP(t *testing.T) {
	devs, _ := cluster(t, 4, 1, 32)
	a, err := raid.NewRAID5(devs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*a.BlockSize())
	rand.New(rand.NewSource(14)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("RAID-5 TCP round trip mismatch")
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestMixedLocalAndRemoteDevs(t *testing.T) {
	// Two disks local to the "client", two reached over TCP — the SIOS
	// makes them indistinguishable to the engine.
	remote, _ := cluster(t, 2, 1, 32)
	local := []raid.Dev{
		disk.New(nil, "l0", store.NewMem(1024, 32), disk.DefaultModel()),
		disk.New(nil, "l1", store.NewMem(1024, 32), disk.DefaultModel()),
	}
	devs := []raid.Dev{local[0], remote[0], local[1], remote[1]}
	a, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*a.BlockSize())
	rand.New(rand.NewSource(15)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mixed local/remote round trip mismatch")
	}
}

// TestConcurrentClientsStress: many goroutines hammer a RAID-x over TCP
// through separate per-node connections, with disjoint regions, then
// the content is audited.
func TestConcurrentClientsStress(t *testing.T) {
	devs, _ := cluster(t, 4, 1, 256)
	const workers = 8
	const blocksEach = 16

	// Each worker gets its own array instance (engines are not built
	// for concurrent use of the flip counter beyond atomics, but the
	// devices and stores are concurrency-safe).
	arrays := make([]*core.RAIDx, workers)
	for w := range arrays {
		a, err := core.New(devs, 4, 1, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		arrays[w] = a
	}
	bs := arrays[0].BlockSize()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			base := int64(w * blocksEach)
			buf := make([]byte, blocksEach*bs)
			rng := rand.New(rand.NewSource(int64(w)))
			for round := 0; round < 5; round++ {
				rng.Read(buf)
				if err := arrays[w].WriteBlocks(ctx, base, buf); err != nil {
					errs[w] = err
					return
				}
				got := make([]byte, len(buf))
				if err := arrays[w].ReadBlocks(ctx, base, got); err != nil {
					errs[w] = err
					return
				}
				if !bytes.Equal(got, buf) {
					errs[w] = fmt.Errorf("worker %d round %d: data mismatch", w, round)
					return
				}
			}
			errs[w] = arrays[w].Flush(ctx)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := arrays[0].Verify(context.Background()); err != nil {
		t.Fatalf("verify after stress: %v", err)
	}
}
