package cdd_test

// Online-membership integration drills over real TCP: the repair
// supervisor drives a grow while foreground traffic runs against the
// same array, with faultnet partitions and outright node kills landing
// mid-rebalance. Test names match the CI grow shard (TestGrow).

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/intent"
	"repro/internal/repair"
)

// TestGrowChaosLiveTrafficPartition is the wire version of the grow
// drill: a 4-node array over TCP grows to 12 nodes while readers and a
// writer hammer it, and one member is partitioned mid-rebalance. Reads
// must see zero errors and zero wrong bytes throughout; the migration
// must finish, adopt the new epoch, and stay within the minimal-
// movement bound; the post-heal supervisor must drain every write
// intent the partition produced; and the epoch broadcast must leave
// all twelve nodes enforcing the new generation.
func TestGrowChaosLiveTrafficPartition(t *testing.T) {
	const blocks = 96
	fnet := faultnet.New(17)
	devs, clients, _, reg := faultCluster(t, 12, 1, blocks, fnet)
	il := intent.NewLog(12, blocks, 8)
	a, err := core.New(devs[:4], 4, 1, core.Options{Obs: reg, Intent: il, ForegroundMirror: true})
	if err != nil {
		t.Fatal(err)
	}
	stateDir := t.TempDir()
	sup := repair.New(a, nil, repair.Config{
		Poll:          5 * time.Millisecond,
		FailureBudget: 10 * time.Minute, // readmission only, never a spare
		ScrubStride:   -1,
		StateDir:      stateDir,
		Obs:           reg,
	})

	ctx := context.Background()
	bs := a.BlockSize()
	golden := make([]byte, int(a.Blocks())*bs)
	rand.New(rand.NewSource(91)).Read(golden)
	if err := a.WriteBlocks(ctx, 0, golden); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	sup.Start(ctx)
	defer sup.Stop()

	// Readers over the stable region: zero errors, zero wrong bytes,
	// through the grow, the partition, and the heal.
	stable := a.Blocks() - 48
	var readErrs, reads atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(92 + r)))
			buf := make([]byte, 8*bs)
			for {
				select {
				case <-done:
					return
				default:
				}
				off := int64(rng.Intn(int(stable) - 8))
				if err := a.ReadBlocks(ctx, off, buf); err != nil {
					t.Errorf("foreground read at %d: %v", off, err)
					readErrs.Add(1)
					return
				}
				if !bytes.Equal(buf, golden[off*int64(bs):(off+8)*int64(bs)]) {
					t.Errorf("foreground read at %d returned wrong data", off)
					readErrs.Add(1)
					return
				}
				reads.Add(1)
			}
		}()
	}

	if err := sup.StartGrow(8, devs[4:12], 0); err != nil {
		t.Fatal(err)
	}
	mig := waitMigrationCursor(t, a, 10*time.Second)

	// Partition one base member mid-flight. The copier reads its donated
	// blocks from their mirrors; degraded foreground writes retry through
	// the detection window and log intents for every copy the member
	// missed.
	victim := clients[1].Addr()
	fnet.Partition(victim)
	wbase := stable + 8
	wdata := make([]byte, 16*bs)
	rand.New(rand.NewSource(95)).Read(wdata)
	wdeadline := time.Now().Add(20 * time.Second)
	for {
		if err := a.WriteBlocks(ctx, wbase, wdata); err == nil {
			break
		}
		if time.Now().After(wdeadline) {
			t.Fatal("degraded write never succeeded during partition")
		}
		time.Sleep(5 * time.Millisecond)
	}
	copy(golden[wbase*int64(bs):], wdata)
	fnet.Heal(victim)

	waitWithin(t, 60*time.Second, "grow to complete", func() bool {
		st := sup.RebalanceStatus()
		return st != nil && st.Done && !st.Running
	})
	if gen := a.Epoch().Gen(); gen != 1 {
		t.Fatalf("epoch generation %d after grow, want 1", gen)
	}

	// The healed member catches up: the supervisor replays the intents
	// once the migration releases the array (resync refuses mid-flight,
	// typed, and the tick loop retries after).
	waitWithin(t, 60*time.Second, "write intents to drain", func() bool {
		for i := 0; i < 12; i++ {
			if il.DirtyRegions(i) != 0 {
				return false
			}
		}
		return true
	})

	close(done)
	wg.Wait()
	if readErrs.Load() != 0 || reads.Load() == 0 {
		t.Fatalf("readers: %d errors over %d reads", readErrs.Load(), reads.Load())
	}

	// Writes that raced a window copy may have been clobbered by the
	// copier reading the peer first: rewrite the writer region once on
	// the grown array, then audit everything.
	if err := a.WriteBlocks(ctx, wbase, wdata); err != nil {
		t.Fatalf("post-grow rewrite: %v", err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Completion broadcast: every node adopts the new generation, and
	// the final audit runs over epoch-tagged I/O.
	for i, c := range clients {
		if _, err := c.EpochSet(ctx, 1); err != nil {
			t.Fatalf("epoch broadcast to node %d: %v", i, err)
		}
		c.SetArrayEpoch(1)
	}
	for i, c := range clients {
		li, err := c.Layout(ctx)
		if err != nil {
			t.Fatalf("layout from node %d: %v", i, err)
		}
		if li.Gen != 1 {
			t.Fatalf("node %d enforces epoch %d after broadcast, want 1", i, li.Gen)
		}
	}
	got := make([]byte, len(golden))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("final read: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatal("data wrong after grow under partition")
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after grow under partition: %v", err)
	}

	// Minimal movement held despite the partition: growing 4 -> 12 moves
	// 8/12 of the data blocks, within the issue's 1.25x slack.
	moved := mig.Status().MovedBlocks
	minMoves := a.Blocks() * 8 / 12
	if moved < minMoves || moved > minMoves+minMoves/4 {
		t.Fatalf("moved %d blocks, want within [%d, %d]", moved, minMoves, minMoves+minMoves/4)
	}
}

// TestGrowChaosNodeKillMidRebalance kills a donating member outright —
// server and all its connections — while a grow is copying. The
// migration must finish from the surviving mirrors, readers must see
// zero errors throughout, and every byte must read back correctly on
// the grown, degraded array.
func TestGrowChaosNodeKillMidRebalance(t *testing.T) {
	const blocks = 96
	devs, _, nodes, reg := faultCluster(t, 8, 1, blocks, nil)
	a, err := core.New(devs[:4], 4, 1, core.Options{Obs: reg, ForegroundMirror: true})
	if err != nil {
		t.Fatal(err)
	}
	sup := repair.New(a, nil, repair.Config{
		Poll:          5 * time.Millisecond,
		FailureBudget: 10 * time.Minute,
		ScrubStride:   -1,
		// Unpaced, the ~48 KiB of moves finishes between two 5ms polls
		// and the kill lands after completion; this rate stretches the
		// copy over ~1.5s so the kill is genuinely mid-rebalance.
		RateBytesPerSec: 32 << 10,
	})

	ctx := context.Background()
	bs := a.BlockSize()
	golden := make([]byte, int(a.Blocks())*bs)
	rand.New(rand.NewSource(97)).Read(golden)
	if err := a.WriteBlocks(ctx, 0, golden); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	sup.Start(ctx)
	defer sup.Stop()

	var readErrs, reads atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(98 + r)))
			buf := make([]byte, 4*bs)
			for {
				select {
				case <-done:
					return
				default:
				}
				off := int64(rng.Intn(int(a.Blocks()) - 4))
				if err := a.ReadBlocks(ctx, off, buf); err != nil {
					t.Errorf("foreground read at %d: %v", off, err)
					readErrs.Add(1)
					return
				}
				if !bytes.Equal(buf, golden[off*int64(bs):(off+4)*int64(bs)]) {
					t.Errorf("foreground read at %d returned wrong data", off)
					readErrs.Add(1)
					return
				}
				reads.Add(1)
			}
		}()
	}

	if err := sup.StartGrow(4, devs[4:8], 0); err != nil {
		t.Fatal(err)
	}
	waitMigrationCursor(t, a, 10*time.Second)
	nodes[2].Close() // no courtesy fail call: the server just dies

	waitWithin(t, 60*time.Second, "grow to complete past the dead member", func() bool {
		st := sup.RebalanceStatus()
		return st != nil && st.Done && !st.Running
	})
	if gen := a.Epoch().Gen(); gen != 1 {
		t.Fatalf("epoch generation %d after grow, want 1", gen)
	}

	close(done)
	wg.Wait()
	if readErrs.Load() != 0 || reads.Load() == 0 {
		t.Fatalf("readers: %d errors over %d reads", readErrs.Load(), reads.Load())
	}

	// Degraded audit: the dead member's blocks read from their mirrors.
	got := make([]byte, len(golden))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("final degraded read: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatal("data wrong after grow with a dead member")
	}
}

// waitMigrationCursor polls until the array's migration has committed
// at least one window, returning the migration for later inspection.
func waitMigrationCursor(t *testing.T, a *core.RAIDx, within time.Duration) *core.Migration {
	t.Helper()
	waitWithin(t, within, "migration to make progress", func() bool {
		cursor, _, active := a.Migrating()
		return active && cursor > 0
	})
	m := a.CurrentMigration()
	if m == nil {
		t.Fatal("no current migration after progress")
	}
	return m
}

// waitWithin polls cond until it holds or the deadline passes.
func waitWithin(t *testing.T, within time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
