package cdd_test

// Coherence-protocol tests: lease-based auto-release, shared-grant
// revocation through the invalidation ring, and the coherent client
// session (cached reads, write-back group commit, flush on handoff)
// over real TCP.

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cdd"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/store"
)

// fakeClock is an injectable table clock.
type fakeClock struct{ ns atomic.Int64 }

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.ns.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	return c
}
func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

func TestLockModes(t *testing.T) {
	tb := cdd.NewTable()
	r := cdd.Range{Start: 0, End: 100}

	if !tb.Acquire("a", cdd.Shared, []cdd.Range{r}) {
		t.Fatal("first shared grant refused")
	}
	if !tb.Acquire("b", cdd.Shared, []cdd.Range{r}) {
		t.Fatal("overlapping shared grants must coexist")
	}
	if tb.Acquire("c", cdd.Exclusive, []cdd.Range{r}) {
		t.Fatal("exclusive granted over live shared holders")
	}
	tb.Release("a", []cdd.Range{r})
	tb.Release("b", []cdd.Range{r})
	if !tb.Acquire("c", cdd.Exclusive, []cdd.Range{r}) {
		t.Fatal("exclusive refused after shared holders released")
	}
	if tb.Acquire("a", cdd.Shared, []cdd.Range{r}) {
		t.Fatal("shared granted over a live exclusive holder")
	}
}

func TestLeaseExpiryAutoRelease(t *testing.T) {
	tb := cdd.NewTable()
	clk := newFakeClock()
	tb.SetLease(time.Second, clk.Now)
	r := cdd.Range{Start: 0, End: 10}

	if !tb.Acquire("dead", cdd.Exclusive, []cdd.Range{r}) {
		t.Fatal("grant refused")
	}
	if tb.Acquire("live", cdd.Exclusive, []cdd.Range{r}) {
		t.Fatal("conflicting grant granted while lease fresh")
	}
	// Heartbeats renew the lease.
	clk.Advance(600 * time.Millisecond)
	tb.Beat("dead", 0)
	clk.Advance(600 * time.Millisecond)
	if tb.Acquire("live", cdd.Exclusive, []cdd.Range{r}) {
		t.Fatal("lease expired despite renewal heartbeat")
	}
	// No more heartbeats: the holder dies and its grant auto-releases.
	clk.Advance(1100 * time.Millisecond)
	if !tb.Acquire("live", cdd.Exclusive, []cdd.Range{r}) {
		t.Fatal("dead holder's grant never auto-released")
	}
	if br := tb.Beat("dead", 0); br.Known {
		t.Fatal("expired owner still known to the table")
	}
	if _, _, expired := tb.Stats(); expired != 1 {
		t.Fatalf("expired count = %d, want 1", expired)
	}
}

func TestRevocationAckFlow(t *testing.T) {
	tb := cdd.NewTable()
	clk := newFakeClock()
	tb.SetLease(time.Minute, clk.Now)
	r := cdd.Range{Start: 0, End: 64}

	if !tb.Acquire("reader", cdd.Shared, []cdd.Range{r}) {
		t.Fatal("shared grant refused")
	}
	// The writer's first attempt fails but starts the revocation.
	if tb.Acquire("writer", cdd.Exclusive, []cdd.Range{r}) {
		t.Fatal("exclusive granted before the reader acked")
	}
	// The fence keeps new readers out while the revocation drains.
	if tb.Acquire("late-reader", cdd.Shared, []cdd.Range{r}) {
		t.Fatal("new shared grant slipped past the fence")
	}
	// The reader's heartbeat sees the invalidation event...
	br := tb.Beat("reader", 0)
	if len(br.Events) != 1 || br.Events[0].Owner != "writer" {
		t.Fatalf("reader heartbeat events = %+v, want one from writer", br.Events)
	}
	// ...and its ack (next beat carries the cursor) releases the grant.
	br2 := tb.Beat("reader", br.Seq)
	if !br2.Released {
		t.Fatal("ack did not release the revoked shared grant")
	}
	if !tb.Acquire("writer", cdd.Exclusive, []cdd.Range{r}) {
		t.Fatal("exclusive still refused after the reader acked")
	}
}

func TestBeatResetWhenBehind(t *testing.T) {
	tb := cdd.NewTable()
	// Push far more invalidations than the ring holds.
	for i := 0; i < 2000; i++ {
		r := cdd.Range{Start: uint64(i) * 10, End: uint64(i)*10 + 10}
		if !tb.Acquire("w", cdd.Exclusive, []cdd.Range{r}) {
			t.Fatal("grant refused")
		}
		tb.Release("w", []cdd.Range{r})
	}
	br := tb.Beat("anyone", 1)
	if !br.Reset {
		t.Fatal("cursor far behind the ring must force a reset")
	}
	br = tb.Beat("anyone", br.Seq)
	if br.Reset || len(br.Events) != 0 {
		t.Fatalf("caught-up beat: reset=%v events=%d", br.Reset, len(br.Events))
	}
}

// coherenceNode starts one node with a single disk and a short server
// lease, and returns it with a connected client.
func coherenceNode(t *testing.T, blocks int64) (*cdd.Node, *cdd.NodeClient, *obs.Registry) {
	t.Helper()
	d := disk.New(nil, "cohd0", store.NewMem(4096, blocks), disk.DefaultModel())
	node, err := cdd.ListenAndServe("127.0.0.1:0", []*disk.Disk{d})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	node.Manager.Locks().SetLease(time.Second, nil)
	reg := obs.NewRegistry()
	c, err := cdd.ConnectWith(context.Background(), node.Addr(), cdd.Options{Retry: fastPolicy(), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return node, c, reg
}

func TestSessionCachedReads(t *testing.T) {
	node, c, reg := coherenceNode(t, 256)
	s := cdd.NewSession(c, "s1", cdd.SessionConfig{Obs: reg})
	defer s.Close()
	ctx := context.Background()

	if err := s.AcquireBlocks(ctx, cdd.Shared, 0, 0, 64); err != nil {
		t.Fatal(err)
	}
	dev := s.Dev(0)
	bs := dev.BlockSize()
	buf := make([]byte, 4*bs)

	if err := dev.ReadBlocks(ctx, 0, buf); err != nil {
		t.Fatal(err)
	}
	remoteReads := node.Manager.Obs().Counter("mgr.read_ops").Value()
	for i := 0; i < 10; i++ {
		if err := dev.ReadBlocks(ctx, 0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if after := node.Manager.Obs().Counter("mgr.read_ops").Value(); after != remoteReads {
		t.Fatalf("cache-hit reads went remote: %d -> %d server read ops", remoteReads, after)
	}
	if hits := reg.Counter("sess.cache_hits").Value(); hits < 40 {
		t.Fatalf("cache hits = %d, want >= 40", hits)
	}

	// Uncovered blocks must not be cached.
	far := make([]byte, bs)
	if err := dev.ReadBlocks(ctx, 200, far); err != nil {
		t.Fatal(err)
	}
	before := node.Manager.Obs().Counter("mgr.read_ops").Value()
	if err := dev.ReadBlocks(ctx, 200, far); err != nil {
		t.Fatal(err)
	}
	if after := node.Manager.Obs().Counter("mgr.read_ops").Value(); after == before {
		t.Fatal("read outside any grant was served from cache")
	}
}

func TestSessionWriteBackGroupCommit(t *testing.T) {
	node, c, reg := coherenceNode(t, 256)
	s := cdd.NewSession(c, "wb1", cdd.SessionConfig{
		Obs: reg,
		// Large bounds so nothing flushes until we say so.
		WriteBackBytes: 64 << 20,
		WriteBackAge:   time.Hour,
	})
	defer s.Close()
	ctx := context.Background()

	if err := s.AcquireBlocks(ctx, cdd.Exclusive, 0, 0, 64); err != nil {
		t.Fatal(err)
	}
	dev := s.Dev(0)
	bs := dev.BlockSize()

	writesBefore := node.Manager.Obs().Counter("mgr.write_ops").Value()
	one := make([]byte, bs)
	for i := int64(0); i < 16; i++ {
		for j := range one {
			one[j] = byte(i)
		}
		if err := dev.WriteBlocks(ctx, i, one); err != nil {
			t.Fatal(err)
		}
	}
	if after := node.Manager.Obs().Counter("mgr.write_ops").Value(); after != writesBefore {
		t.Fatalf("write-back leaked %d remote writes before flush", after-writesBefore)
	}
	if got := dev.DirtyBlocks(); got != 16 {
		t.Fatalf("dirty blocks = %d, want 16", got)
	}
	// Read-your-writes straight from the write-back buffer.
	rbuf := make([]byte, bs)
	if err := dev.ReadBlocks(ctx, 5, rbuf); err != nil {
		t.Fatal(err)
	}
	if rbuf[0] != 5 {
		t.Fatalf("dirty read = %d, want 5", rbuf[0])
	}

	// The group commit coalesces 16 adjacent dirty blocks into ONE
	// vectored write.
	if err := dev.FlushWriteBack(ctx); err != nil {
		t.Fatal(err)
	}
	if after := node.Manager.Obs().Counter("mgr.write_ops").Value(); after != writesBefore+1 {
		t.Fatalf("group commit issued %d remote writes, want 1", after-writesBefore)
	}
	if got := reg.Counter("sess.wb_blocks").Value(); got != 16 {
		t.Fatalf("wb_blocks = %d, want 16", got)
	}

	// The committed data is on the server.
	direct := make([]byte, bs)
	if err := c.Dev(0).ReadBlocks(ctx, 5, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, rbuf) {
		t.Fatal("flushed block differs from the write-back copy")
	}
}

func TestSessionFlushOnRelease(t *testing.T) {
	node, c, reg := coherenceNode(t, 128)
	s := cdd.NewSession(c, "rel1", cdd.SessionConfig{Obs: reg, WriteBackBytes: 64 << 20, WriteBackAge: time.Hour})
	defer s.Close()
	ctx := context.Background()

	if err := s.AcquireBlocks(ctx, cdd.Exclusive, 0, 0, 8); err != nil {
		t.Fatal(err)
	}
	dev := s.Dev(0)
	bs := dev.BlockSize()
	data := bytes.Repeat([]byte{0xAB}, bs)
	if err := dev.WriteBlocks(ctx, 3, data); err != nil {
		t.Fatal(err)
	}
	if dev.DirtyBlocks() != 1 {
		t.Fatal("write did not land in the write-back buffer")
	}
	// Lock handoff: release must flush before the grant drops.
	if err := s.ReleaseBlocks(ctx, 0, 0, 8); err != nil {
		t.Fatal(err)
	}
	if dev.DirtyBlocks() != 0 {
		t.Fatal("release left dirty blocks behind")
	}
	got := make([]byte, bs)
	if err := c.Dev(0).ReadBlocks(ctx, 3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("handoff flush lost the dirty block")
	}
	_ = node
}

// TestSessionInvalidation checks a writer's exclusive acquisition
// invalidates a reader's cache through the heartbeat channel: the
// reader never serves the stale block once its shared grant is revoked.
func TestSessionInvalidation(t *testing.T) {
	node, c, reg := coherenceNode(t, 128)
	_ = node
	s1 := cdd.NewSession(c, "reader", cdd.SessionConfig{Obs: reg, Beat: 10 * time.Millisecond})
	defer s1.Close()
	reg2 := obs.NewRegistry()
	c2, err := cdd.ConnectWith(context.Background(), node.Addr(), cdd.Options{Retry: fastPolicy(), Obs: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s2 := cdd.NewSession(c2, "writer", cdd.SessionConfig{Obs: reg2, Beat: 10 * time.Millisecond})
	defer s2.Close()
	ctx := context.Background()

	// Reader caches block 7 under a shared grant.
	if err := s1.AcquireBlocks(ctx, cdd.Shared, 0, 0, 16); err != nil {
		t.Fatal(err)
	}
	rdev := s1.Dev(0)
	bs := rdev.BlockSize()
	buf := make([]byte, bs)
	if err := rdev.ReadBlocks(ctx, 7, buf); err != nil {
		t.Fatal(err)
	}
	if s1.Cache().Len() == 0 {
		t.Fatal("read under a shared grant was not cached")
	}

	// Writer takes the range exclusively (revocation drains through the
	// reader's heartbeat) and commits new bytes.
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s2.AcquireBlocks(wctx, cdd.Exclusive, 0, 0, 16); err != nil {
		t.Fatalf("writer never got the grant (revocation stuck): %v", err)
	}
	wdev := s2.Dev(0)
	fresh := bytes.Repeat([]byte{0x5A}, bs)
	if err := wdev.WriteBlocks(ctx, 7, fresh); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// The reader's shared grant is gone, so its next read goes remote
	// and sees the new bytes — never the stale cached copy.
	got := make([]byte, bs)
	if err := rdev.ReadBlocks(ctx, 7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatalf("stale read after invalidation: got %x, want %x", got[0], fresh[0])
	}
}

// TestWriteBackHeldOnStaleLease pins the flush guard: once the lease
// safety window closes, dirty write-back blocks are HELD, not
// committed — a partitioned client healing after its ranges were
// re-granted must not clobber the new owner's writes — while the
// client's own dirty reads still serve (read-your-writes survives
// heartbeat loss).
func TestWriteBackHeldOnStaleLease(t *testing.T) {
	node, c, reg := coherenceNode(t, 128) // 1 s server lease
	s := cdd.NewSession(c, "stale1", cdd.SessionConfig{
		Obs:            reg,
		Beat:           time.Hour, // after the initial beat, no renewals
		WriteBackBytes: 64 << 20,
		WriteBackAge:   time.Hour,
	})
	defer s.Close()
	ctx := context.Background()
	t0 := time.Now()

	if err := s.AcquireBlocks(ctx, cdd.Exclusive, 0, 0, 8); err != nil {
		t.Fatal(err)
	}
	dev := s.Dev(0)
	bs := dev.BlockSize()
	dirty := bytes.Repeat([]byte{0xEE}, bs)
	if err := dev.WriteBlocks(ctx, 3, dirty); err != nil {
		t.Fatal(err)
	}
	if dev.DirtyBlocks() != 1 {
		t.Fatal("write did not land in the write-back buffer")
	}

	// Let the lease safety window (TTL/2 = 500 ms) close with no beats.
	time.Sleep(time.Until(t0.Add(700 * time.Millisecond)))

	if err := dev.FlushWriteBack(ctx); !errors.Is(err, cdd.ErrStaleLease) {
		t.Fatalf("stale-lease flush: err = %v, want ErrStaleLease", err)
	}
	if dev.DirtyBlocks() != 1 {
		t.Fatal("stale-lease flush did not hold the dirty block")
	}
	got := make([]byte, bs)
	if err := dev.ReadBlocks(ctx, 3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, dirty) {
		t.Fatal("dirty read lost the buffered write during heartbeat loss")
	}

	// The server lease lapses; a new owner takes the range and commits.
	c2, err := cdd.ConnectWith(ctx, node.Addr(), cdd.Options{Retry: fastPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	lctx, lcancel := context.WithTimeout(ctx, 5*time.Second)
	defer lcancel()
	if err := c2.LockMode(lctx, "usurper", cdd.Exclusive, []cdd.Range{cdd.BlockLockRange(0, 0, 8)}); err != nil {
		t.Fatalf("usurper never acquired after lease expiry: %v", err)
	}
	theirs := bytes.Repeat([]byte{0x44}, bs)
	if err := c2.Dev(0).WriteBlocks(ctx, 3, theirs); err != nil {
		t.Fatal(err)
	}

	// The stale holder's flush must still refuse: healing the partition
	// must not replay stale dirty blocks over the new owner's data.
	if err := s.Flush(ctx); !errors.Is(err, cdd.ErrStaleLease) {
		t.Fatalf("post-usurp flush: err = %v, want ErrStaleLease", err)
	}
	after := make([]byte, bs)
	if err := c2.Dev(0).ReadBlocks(ctx, 3, after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, theirs) {
		t.Fatal("stale write-back clobbered the new owner's committed data")
	}
}

// TestWriteBackRecoversAfterRenewal pins the beat-then-flush ordering
// in the heartbeat loop: a dirty batch held through a stale window is
// committed by the loop as soon as a heartbeat renews the lease —
// never before.
func TestWriteBackRecoversAfterRenewal(t *testing.T) {
	node, c, reg := coherenceNode(t, 128)
	node.Manager.Locks().SetLease(2*time.Second, nil)
	s := cdd.NewSession(c, "renew1", cdd.SessionConfig{
		Obs:            reg,
		Beat:           1400 * time.Millisecond,
		WriteBackBytes: 64 << 20,
		WriteBackAge:   time.Millisecond,
	})
	defer s.Close()
	ctx := context.Background()
	t0 := time.Now()

	if err := s.AcquireBlocks(ctx, cdd.Exclusive, 0, 0, 8); err != nil {
		t.Fatal(err)
	}
	dev := s.Dev(0)
	bs := dev.BlockSize()
	data := bytes.Repeat([]byte{0x77}, bs)
	if err := dev.WriteBlocks(ctx, 2, data); err != nil {
		t.Fatal(err)
	}

	// Stale window: [TTL/2, Beat) = [1.0 s, 1.4 s) after the initial
	// beat. Probe in the middle — the flush must hold.
	time.Sleep(time.Until(t0.Add(1200 * time.Millisecond)))
	if err := dev.FlushWriteBack(ctx); !errors.Is(err, cdd.ErrStaleLease) {
		t.Fatalf("mid-window flush: err = %v, want ErrStaleLease", err)
	}

	// The next beat (1.4 s, inside the server's 2 s lease) renews, and
	// the loop's aged-flush pass commits the held batch.
	deadline := time.Now().Add(5 * time.Second)
	for dev.DirtyBlocks() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if dev.DirtyBlocks() != 0 {
		t.Fatal("held batch never flushed after lease renewal")
	}
	got := make([]byte, bs)
	if err := c.Dev(0).ReadBlocks(ctx, 2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("renewed flush lost the dirty block")
	}
	_ = node
}

// TestCoherenceGrantAutoRelease kills a grant holder (no release, no
// further heartbeats) and asserts a peer eventually acquires the range
// once the dead holder's lease lapses.
func TestCoherenceGrantAutoRelease(t *testing.T) {
	node, c, _ := coherenceNode(t, 128)
	node.Manager.Locks().SetLease(300*time.Millisecond, nil)
	ctx := context.Background()

	// The doomed holder takes the grant with a raw lock call and then
	// "crashes": no session, no heartbeats, no release.
	ok, err := c.TryLockMode(ctx, "doomed", cdd.Exclusive, []cdd.Range{cdd.BlockLockRange(0, 0, 32)})
	if err != nil || !ok {
		t.Fatalf("doomed grant: ok=%v err=%v", ok, err)
	}

	c2, err := cdd.ConnectWith(ctx, node.Addr(), cdd.Options{Retry: fastPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	start := time.Now()
	lctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := c2.LockMode(lctx, "survivor", cdd.Exclusive, []cdd.Range{cdd.BlockLockRange(0, 0, 32)}); err != nil {
		t.Fatalf("survivor never acquired the dead holder's range: %v", err)
	}
	if waited := time.Since(start); waited < 150*time.Millisecond {
		t.Fatalf("grant handed over in %v — before the lease could have lapsed", waited)
	}
	if _, _, expired := node.Manager.Locks().Stats(); expired == 0 {
		t.Fatal("table never recorded the lease auto-release")
	}
}
