package cdd

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bufpool"
)

// ErrStaleLease is returned by flush paths when the session's lease
// safety window has closed: committing the write-back buffer remotely
// could clobber a new owner's writes, so dirty blocks are held until
// the next successful heartbeat either renews the lease (flush
// proceeds) or reports it lost (dirty blocks are discarded).
var ErrStaleLease = errors.New("cdd: lease stale; write-back held")

// CachedDev wraps a RemoteDev with the session's coherent read cache
// and a write-back buffer with group commit. It implements raid.Dev,
// so a client array can be assembled from cached devices unchanged.
//
// Read path, per block: a dirty write-back block is served first
// (read-your-writes); then the cache, but only under a covering grant
// inside the lease safety window; contiguous misses go remote in one
// vectored call and are admitted to the cache when cacheable.
//
// Write path: blocks covered by a live exclusive grant are absorbed
// into the write-back buffer and group-committed as contiguous runs in
// single vectored RPCs — bounded by bytes (SessionConfig.WriteBackBytes,
// flushed inline), age (WriteBackAge, flushed by the heartbeat loop),
// and lock handoff (Session.Release flushes before the grant drops).
// Uncovered writes pass straight through.
type CachedDev struct {
	s    *Session
	d    *RemoteDev
	disk uint32
	bs   int

	mu         sync.Mutex
	dirty      map[int64][]byte // bufpool-owned, one block each
	dirtyBytes int
	oldest     time.Time // arrival of the oldest unflushed block

	// flush scratch, reused across group commits
	blocksScratch []int64
	segsScratch   [][]byte
}

// Remote exposes the underlying RemoteDev.
func (c *CachedDev) Remote() *RemoteDev { return c.d }

// BlockSize reports the device block size in bytes.
func (c *CachedDev) BlockSize() int { return c.bs }

// NumBlocks reports the device capacity in blocks.
func (c *CachedDev) NumBlocks() int64 { return c.d.NumBlocks() }

// Healthy mirrors the remote device's health view.
func (c *CachedDev) Healthy() bool { return c.d.Healthy() }

// maxStackBlocks bounds the per-call hit mask kept on the stack; ops
// wider than this fall back to one heap mask allocation.
const maxStackBlocks = 64

// ReadBlocks fills buf from block b, serving write-back and cache hits
// locally and fetching contiguous miss runs in single remote calls.
func (c *CachedDev) ReadBlocks(ctx context.Context, b int64, buf []byte) error {
	if len(buf)%c.bs != 0 {
		return fmt.Errorf("cdd: read buffer %d not a multiple of block size %d", len(buf), c.bs)
	}
	n := len(buf) / c.bs
	if n == 0 {
		return nil
	}

	var maskArr [maxStackBlocks]bool
	var miss []bool
	if n <= maxStackBlocks {
		miss = maskArr[:n]
	} else {
		miss = make([]bool, n)
	}

	fresh := c.s.leaseFresh()
	anyMiss := false
	for i := 0; i < n; i++ {
		blk := b + int64(i)
		dst := buf[i*c.bs : (i+1)*c.bs]
		// The dirty buffer is served regardless of lease freshness: these
		// are this client's own buffered writes (read-your-writes), and a
		// confirmed lease loss discards them before this point.
		if c.getDirty(blk, dst) {
			continue
		}
		if fresh && c.s.holdsBlocks(c.disk, blk, 1, false) && c.s.cache.Get(c.disk, blk, dst) {
			continue
		}
		miss[i] = true
		anyMiss = true
	}
	if !anyMiss {
		return nil
	}

	for i := 0; i < n; {
		if !miss[i] {
			i++
			continue
		}
		j := i + 1
		for j < n && miss[j] {
			j++
		}
		seg := buf[i*c.bs : j*c.bs]
		if err := c.d.ReadBlocks(ctx, b+int64(i), seg); err != nil {
			return err
		}
		if fresh {
			for k := i; k < j; k++ {
				blk := b + int64(k)
				if c.s.holdsBlocks(c.disk, blk, 1, false) {
					c.s.cache.Put(c.disk, blk, buf[k*c.bs:(k+1)*c.bs])
				}
			}
		}
		i = j
	}
	return nil
}

// getDirty serves block blk from the write-back buffer if dirty.
func (c *CachedDev) getDirty(blk int64, dst []byte) bool {
	c.mu.Lock()
	src, ok := c.dirty[blk]
	if ok {
		copy(dst, src)
	}
	c.mu.Unlock()
	return ok
}

// WriteBlocks writes data at block b: absorbed into write-back when an
// exclusive grant covers the span, written through otherwise.
func (c *CachedDev) WriteBlocks(ctx context.Context, b int64, data []byte) error {
	if len(data)%c.bs != 0 {
		return fmt.Errorf("cdd: write buffer %d not a multiple of block size %d", len(data), c.bs)
	}
	n := int64(len(data) / c.bs)
	if n == 0 {
		return nil
	}
	if !c.s.leaseFresh() || !c.s.holdsBlocks(c.disk, b, n, true) {
		return c.d.WriteBlocks(ctx, b, data)
	}

	c.mu.Lock()
	now := time.Now()
	for i := int64(0); i < n; i++ {
		blk := b + i
		src := data[i*int64(c.bs) : (i+1)*int64(c.bs)]
		if buf, ok := c.dirty[blk]; ok {
			copy(buf, src)
			continue
		}
		buf := bufpool.Get(c.bs)
		copy(buf, src)
		c.dirty[blk] = buf
		c.dirtyBytes += c.bs
	}
	if c.oldest.IsZero() {
		c.oldest = now
	}
	var err error
	if c.dirtyBytes >= c.s.cfg.WriteBackBytes {
		err = c.flushLocked(ctx)
	}
	c.mu.Unlock()
	return err
}

// WriteBlocksBackground routes through WriteBlocks: write-back *is*
// the background batching layer, and uncovered writes keep the remote
// fire-and-forget path.
func (c *CachedDev) WriteBlocksBackground(ctx context.Context, b int64, data []byte) error {
	if len(data)%c.bs == 0 && len(data) > 0 {
		n := int64(len(data) / c.bs)
		if c.s.leaseFresh() && c.s.holdsBlocks(c.disk, b, n, true) {
			return c.WriteBlocks(ctx, b, data)
		}
	}
	return c.d.WriteBlocksBackground(ctx, b, data)
}

// Flush group-commits the write-back buffer, then flushes the remote
// device.
func (c *CachedDev) Flush(ctx context.Context) error {
	if err := c.FlushWriteBack(ctx); err != nil {
		return err
	}
	return c.d.Flush(ctx)
}

// FlushWriteBack group-commits every dirty block without issuing a
// device-level flush.
func (c *CachedDev) FlushWriteBack(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked(ctx)
}

// flushIfOlder group-commits when the oldest dirty block predates cut.
func (c *CachedDev) flushIfOlder(cut time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.oldest.IsZero() || c.oldest.After(cut) {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.s.n.policy.CallTimeout*4)
	_ = c.flushLocked(ctx) // kept dirty on error; retried next tick
	cancel()
}

// DirtyBlocks reports the number of unflushed write-back blocks.
func (c *CachedDev) DirtyBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.dirty)
}

// flushLocked is the group commit: dirty blocks are sorted, coalesced
// into contiguous runs, and each run written in one vectored call. On
// success the committed buffers move into the read cache (still under
// our exclusive grant); on error everything stays dirty for retry.
//
// Safety: a flush commits remotely only inside the lease safety window
// and only for runs still covered by a live exclusive grant. Outside
// the window the buffer is held (ErrStaleLease) — the ranges may have
// been re-granted to a new owner during a partition, and writing them
// on heal would be a lost update. Runs whose grant is gone are
// discarded, matching the lease-loss path.
func (c *CachedDev) flushLocked(ctx context.Context) error {
	if len(c.dirty) == 0 {
		return nil
	}
	if !c.s.leaseFresh() {
		return ErrStaleLease
	}
	blocks := c.blocksScratch[:0]
	for blk := range c.dirty {
		blocks = append(blocks, blk)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	c.blocksScratch = blocks

	for i := 0; i < len(blocks); {
		j := i + 1
		for j < len(blocks) && blocks[j] == blocks[j-1]+1 {
			j++
		}
		if !c.s.holdsBlocks(c.disk, blocks[i], int64(j-i), true) {
			// Exclusive coverage lost since these blocks were buffered: a
			// new owner may hold the range, so the run must not be written.
			for k := i; k < j; k++ {
				blk := blocks[k]
				bufpool.Put(c.dirty[blk])
				delete(c.dirty, blk)
				c.dirtyBytes -= c.bs
			}
			c.s.met.wbErrors.Inc()
			i = j
			continue
		}
		segs := c.segsScratch[:0]
		for k := i; k < j; k++ {
			segs = append(segs, c.dirty[blocks[k]])
		}
		c.segsScratch = segs
		if err := c.d.WriteBlocksVec(ctx, blocks[i], segs); err != nil {
			c.s.met.wbErrors.Inc()
			return err
		}
		c.s.met.wbFlushes.Inc()
		c.s.met.wbBlocks.Add(int64(j - i))
		for k := i; k < j; k++ {
			blk := blocks[k]
			buf := c.dirty[blk]
			delete(c.dirty, blk)
			c.dirtyBytes -= c.bs
			if c.s.leaseFresh() && c.s.holdsBlocks(c.disk, blk, 1, false) {
				c.s.cache.PutOwned(c.disk, blk, buf)
			} else {
				bufpool.Put(buf)
			}
		}
		i = j
	}
	c.oldest = time.Time{}
	return nil
}

// discardWriteBack drops all dirty blocks without writing them — used
// on lease loss, when their ranges may already belong to a new owner.
func (c *CachedDev) discardWriteBack() {
	c.mu.Lock()
	for blk, buf := range c.dirty {
		bufpool.Put(buf)
		delete(c.dirty, blk)
	}
	c.dirtyBytes = 0
	c.oldest = time.Time{}
	c.mu.Unlock()
}
