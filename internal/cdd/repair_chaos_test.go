package cdd_test

// Self-healing integration tests over real TCP: the repair supervisor
// driving spare swaps, background rebuilds, and delta resyncs against
// killed servers and network partitions, while foreground I/O keeps
// running. Test names match the CI repair shard (TestRepair|TestResync).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/faultnet"
	"repro/internal/intent"
	"repro/internal/obs"
	"repro/internal/raid"
	"repro/internal/repair"
	"repro/internal/store"
)

// waitDev polls the supervisor until cond holds for member idx.
func waitDev(t *testing.T, sup *repair.Supervisor, idx int, within time.Duration, cond func(repair.DevStatus) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := sup.Status().Devices[idx]
		if cond(st) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("device %d never reached %q (state %s, rebuilds %d, resyncs %d, lastErr %q)",
				idx, what, st.State, st.Rebuilds, st.Resyncs, st.LastErr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRepairChaosNodeKillAutoSpareRebuild is the headline self-healing
// drill: a CDD server is killed outright mid-workload, the supervisor
// notices, swaps in a hot spare, and rebuilds it in the background —
// while a foreground reader hammers the array and must see ZERO I/O
// errors and zero wrong bytes throughout (mirror failover while the
// node is dead, blank-column routing while the spare rebuilds).
func TestRepairChaosNodeKillAutoSpareRebuild(t *testing.T) {
	const blocks = 128
	devs, _, nodes, reg := faultCluster(t, 4, 1, blocks, nil)
	il := intent.NewLog(4, blocks, 8)
	a, err := core.New(devs, 4, 1, core.Options{Obs: reg, Intent: il, ForegroundMirror: true})
	if err != nil {
		t.Fatal(err)
	}
	spare := disk.New(nil, "spare0", store.NewMem(1024, blocks), disk.DefaultModel())
	sp := raid.NewSparer(a, []raid.Dev{spare})
	sup := repair.New(a, sp, repair.Config{
		Poll:          5 * time.Millisecond,
		FailureBudget: 50 * time.Millisecond,
		ScrubStride:   -1,
		Obs:           reg,
	})

	ctx := context.Background()
	bs := a.BlockSize()
	golden := make([]byte, int(a.Blocks())*bs)
	rand.New(rand.NewSource(51)).Read(golden)
	if err := a.WriteBlocks(ctx, 0, golden); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	sup.Start(ctx)
	defer sup.Stop()

	// Foreground readers over the stable region: every read must
	// succeed and return golden bytes, through the kill, the swap, and
	// the whole background rebuild.
	stable := a.Blocks() - 48 // the tail is the writer's private region
	var readErrs atomic.Int64
	var reads atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(60 + r)))
			buf := make([]byte, 8*bs)
			for {
				select {
				case <-done:
					return
				default:
				}
				off := int64(rng.Intn(int(stable) - 8))
				if err := a.ReadBlocks(ctx, off, buf); err != nil {
					t.Errorf("foreground read at %d: %v", off, err)
					readErrs.Add(1)
					return
				}
				if !bytes.Equal(buf, golden[off*int64(bs):(off+8)*int64(bs)]) {
					t.Errorf("foreground read at %d returned wrong data", off)
					readErrs.Add(1)
					return
				}
				reads.Add(1)
			}
		}()
	}

	// Kill node 2: no courtesy fail call, the server and all its
	// connections just die.
	nodes[2].Close()

	// Degraded writes must also keep succeeding once the dead node is
	// suspected (retried through the detection window).
	wbase, wlen := stable+8, int64(16)
	wdata := make([]byte, int(wlen)*bs)
	rand.New(rand.NewSource(52)).Read(wdata)
	wdeadline := time.Now().Add(10 * time.Second)
	for {
		if err := a.WriteBlocks(ctx, wbase, wdata); err == nil {
			break
		}
		if time.Now().After(wdeadline) {
			t.Fatal("degraded write never succeeded after node kill")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The supervisor must take device 2 through degraded → spare swap →
	// rebuilding → healthy without operator input.
	waitDev(t, sup, 2, 60*time.Second, func(st repair.DevStatus) bool {
		return st.Rebuilds >= 1 && st.State == repair.StateHealthy
	}, "auto rebuild complete")

	close(done)
	wg.Wait()
	if readErrs.Load() != 0 {
		t.Fatalf("%d foreground read errors during self-healing, want 0", readErrs.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("reader made no progress")
	}
	if sp.SparesLeft() != 0 {
		t.Fatalf("%d spares left, want 0 (the supervisor must have consumed one)", sp.SparesLeft())
	}
	if len(sp.Retired()) != 1 {
		t.Fatalf("%d retired devices, want 1", len(sp.Retired()))
	}

	// Writes that raced the rebuild may have been clobbered by an
	// in-flight chunk copy (copy read the peer before the write landed):
	// rewrite the writer region once on the healed array, then audit.
	if err := a.WriteBlocks(ctx, wbase, wdata); err != nil {
		t.Fatalf("post-heal rewrite: %v", err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	copy(golden[wbase*int64(bs):], wdata)
	got := make([]byte, len(golden))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("final read: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatal("data wrong after self-healing cycle")
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after self-healing cycle: %v", err)
	}
	if countEvents(reg, obs.EventRepairState, "repair/d2") == 0 {
		t.Error("no repair state transitions logged for the healed device")
	}
	if countEvents(reg, obs.EventRebuildStart, "raidx/d2") == 0 {
		t.Error("no rebuild-start event for the healed device")
	}
}

// TestResyncChaosPartitionDeltaOnly partitions one node, runs degraded
// writes against the array (logged as write intents), heals the
// partition, and asserts the supervisor repairs the readmitted node by
// replaying ONLY the dirty regions: the resync byte count must be a
// small fraction of the device, and a post-resync Verify must pass.
func TestResyncChaosPartitionDeltaOnly(t *testing.T) {
	const blocks = 256
	fnet := faultnet.New(7)
	devs, clients, _, reg := faultCluster(t, 4, 1, blocks, fnet)
	il := intent.NewLog(4, blocks, 8)
	a, err := core.New(devs, 4, 1, core.Options{Obs: reg, Intent: il, ForegroundMirror: true})
	if err != nil {
		t.Fatal(err)
	}
	// No spare pool: the only way this array heals is the delta path.
	sup := repair.New(a, nil, repair.Config{
		Poll:          5 * time.Millisecond,
		FailureBudget: 10 * time.Minute, // never give up on readmission
		ScrubStride:   4,
		Obs:           reg,
	})

	ctx := context.Background()
	bs := a.BlockSize()
	golden := make([]byte, int(a.Blocks())*bs)
	rand.New(rand.NewSource(71)).Read(golden)
	if err := a.WriteBlocks(ctx, 0, golden); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	sup.Start(ctx)
	defer sup.Stop()

	victim := clients[1].Addr()
	fnet.Partition(victim)

	// Degraded writes over a small window; retried until the dead node
	// is suspected and the engine routes around it, logging intents for
	// every copy node 1 missed.
	const wbase, wlen = 40, int64(16)
	wdata := make([]byte, int(wlen)*bs)
	rand.New(rand.NewSource(72)).Read(wdata)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := a.WriteBlocks(ctx, wbase, wdata); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("degraded write never succeeded during partition")
		}
		time.Sleep(5 * time.Millisecond)
	}
	copy(golden[wbase*int64(bs):], wdata)
	if il.DirtyRegions(1) == 0 {
		t.Fatal("degraded writes logged no intents against the partitioned member")
	}

	// Heal: the node returns with STALE data. The supervisor must
	// resync the delta, scrub, and declare it healthy — no full rebuild.
	fnet.Heal(victim)
	waitDev(t, sup, 1, 60*time.Second, func(st repair.DevStatus) bool {
		return st.Resyncs >= 1 && st.State == repair.StateHealthy
	}, "delta resync complete")

	st := sup.Status().Devices[1]
	if st.Rebuilds != 0 {
		t.Fatalf("device was fully rebuilt (%d times); a clean delta resync must suffice", st.Rebuilds)
	}
	deviceBytes := int64(blocks) * int64(bs)
	if st.ResyncBytes <= 0 {
		t.Fatal("resync moved no bytes")
	}
	if st.ResyncBytes >= deviceBytes/4 {
		t.Fatalf("resync moved %d bytes; want a small delta (device is %d bytes)", st.ResyncBytes, deviceBytes)
	}
	if il.DirtyRegions(1) != 0 {
		t.Fatalf("%d dirty regions left after resync", il.DirtyRegions(1))
	}

	got := make([]byte, len(golden))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("final read: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatal("data wrong after delta resync")
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after delta resync: %v", err)
	}
	if countEvents(reg, obs.EventResyncStart, "raidx/d1") == 0 {
		t.Error("no resync-start event for the readmitted device")
	}
}

// TestRepairRPCStatusAndIntentReplication exercises the new wire
// surface directly: intent snapshots replicate through a manager and
// read back bit-identical, and the repair supervisor is queryable and
// controllable over the protocol.
func TestRepairRPCStatusAndIntentReplication(t *testing.T) {
	_, clients, nodes, _ := faultCluster(t, 1, 1, 64, nil)
	c := clients[0]
	ctx := context.Background()

	// Intent snapshot round trip.
	il := intent.NewLog(4, 256, 8)
	il.MarkRange(2, 17, 40)
	il.MarkRange(0, 200, 3)
	snap, err := il.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutIntent(ctx, "arr0", snap); err != nil {
		t.Fatalf("put intent: %v", err)
	}
	back, err := c.GetIntent(ctx, "arr0")
	if err != nil {
		t.Fatalf("get intent: %v", err)
	}
	if !bytes.Equal(back, snap) {
		t.Fatal("intent snapshot corrupted in flight")
	}
	if none, err := c.GetIntent(ctx, "no-such-array"); err != nil || none != nil {
		t.Fatalf("unknown key returned (%v, %v), want (nil, nil)", none, err)
	}

	// Repair control plane: absent supervisor is a remote error, an
	// attached one answers status and obeys pause/resume.
	if _, err := c.RepairStatus(ctx); err == nil {
		t.Fatal("repair status with no supervisor attached must fail")
	}
	ldevs, _ := localArrayDevs(t, 4, 64)
	arr, err := core.New(ldevs, 4, 1, core.Options{Intent: intent.NewLog(4, 64, 8)})
	if err != nil {
		t.Fatal(err)
	}
	sup := repair.New(arr, nil, repair.Config{})
	nodes[0].Manager.SetRepair(sup)

	raw, err := c.RepairStatus(ctx)
	if err != nil {
		t.Fatalf("repair status: %v", err)
	}
	var status repair.Status
	if err := json.Unmarshal(raw, &status); err != nil {
		t.Fatalf("undecodable repair status %q: %v", raw, err)
	}
	if len(status.Devices) != 4 || status.Paused {
		t.Fatalf("bad status: %+v", status)
	}
	if err := c.RepairPause(ctx); err != nil {
		t.Fatal(err)
	}
	if !sup.Paused() {
		t.Fatal("pause RPC did not pause the supervisor")
	}
	if err := c.RepairResume(ctx); err != nil {
		t.Fatal(err)
	}
	if sup.Paused() {
		t.Fatal("resume RPC did not resume the supervisor")
	}
}

// localArrayDevs builds an all-local device set for tests that need an
// array but no network.
func localArrayDevs(t *testing.T, n int, blocks int64) ([]raid.Dev, []*disk.Disk) {
	t.Helper()
	devs := make([]raid.Dev, n)
	raw := make([]*disk.Disk, n)
	for i := range devs {
		raw[i] = disk.New(nil, fmt.Sprintf("l%d", i), store.NewMem(1024, blocks), disk.DefaultModel())
		devs[i] = raw[i]
	}
	return devs, raw
}
