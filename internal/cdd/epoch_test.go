package cdd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/transport"
)

// TestEpochTaggedIO: tagged I/O at the node's generation round-trips;
// a stale tag bounces with the typed wire code; recovery is a mount-
// layer rebuild (re-tag at the learned generation), never a transport
// retry of the same physical placement.
func TestEpochTaggedIO(t *testing.T) {
	n := startNode(t, 1, 32)
	n.Manager.AdoptEpoch(3)
	c, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	dev := c.Dev(0)
	data := make([]byte, 2*512)
	rand.New(rand.NewSource(7)).Read(data)

	// In-date tag: served like untagged I/O.
	c.SetArrayEpoch(3)
	if err := dev.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatalf("write at current epoch: %v", err)
	}
	got := make([]byte, len(data))
	if err := dev.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("read at current epoch: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("tagged round trip corrupted data")
	}

	// Stale tag: the typed error surfaces to the caller — the transport
	// must NOT re-tag and resend, because the request's physical
	// placement came from the retired map.
	n.Manager.AdoptEpoch(5)
	c2, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetArrayEpoch(3)
	dev2 := c2.Dev(0)
	err = dev2.WriteBlocks(ctx, 0, data)
	if !IsStaleEpoch(err) {
		t.Fatalf("stale write error = %v, want stale-epoch", err)
	}
	var re *transport.RemoteError
	if !errors.As(err, &re) || re.Code != transport.CodeStaleEpoch {
		t.Fatalf("stale write error not CodeStaleEpoch: %v", err)
	}
	// A wire rejection proves the node answered: the device must not be
	// marked suspect for it.
	if !dev2.Healthy() {
		t.Fatal("stale-epoch rejection marked device unhealthy")
	}

	// The mount layer recovers by refetching the layout and rebuilding
	// its placement map; with the client re-tagged at the learned
	// generation, re-issued I/O lands.
	li, err := c2.Layout(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c2.SetArrayEpoch(li.Gen)
	if got := c2.ArrayEpoch(); got != 5 {
		t.Fatalf("client epoch after rebuild = %d, want 5", got)
	}
	if err := dev2.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatalf("write after rebuild: %v", err)
	}
	if err := dev2.ReadBlocks(ctx, 0, got[:512]); err != nil {
		t.Fatalf("read after rebuild: %v", err)
	}

	// A tag AHEAD of the node: adopted, so the fence tightens before the
	// coordinator's broadcast arrives.
	c2.SetArrayEpoch(8)
	if err := dev2.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatalf("write ahead of node epoch: %v", err)
	}
	if got := n.Manager.EpochGen(); got != 8 {
		t.Fatalf("node epoch after ahead tag = %d, want 8", got)
	}
}

// TestEpochSetBroadcast: OpEpochSet raises monotonically and answers
// the generation in force.
func TestEpochSetBroadcast(t *testing.T) {
	n := startNode(t, 1, 16)
	c, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if got, err := c.EpochSet(ctx, 4); err != nil || got != 4 {
		t.Fatalf("EpochSet(4) = %d, %v", got, err)
	}
	// Out-of-order lower broadcast: ignored, current generation answered.
	if got, err := c.EpochSet(ctx, 2); err != nil || got != 4 {
		t.Fatalf("EpochSet(2) = %d, %v, want 4", got, err)
	}
	li, err := c.Layout(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if li.Gen != 4 || li.Desc != nil || li.Migrating {
		t.Fatalf("layout = %+v, want bare gen 4", li)
	}
}

// TestEpochFenceDuringMigration: a phase-1 EpochSet fences the node —
// untagged block I/O bounces typed while a migration moves blocks,
// stale tags bounce, target-generation tags (the coordinator's own
// I/O) pass, dropped stale background writes are counted, and the
// stable completion broadcast reopens the node.
func TestEpochFenceDuringMigration(t *testing.T) {
	n := startNode(t, 1, 32)
	n.Manager.AdoptEpoch(1)
	c, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	dev := c.Dev(0)
	data := make([]byte, 512)
	rand.New(rand.NewSource(11)).Read(data)

	// Before the fence: untagged I/O is served.
	if err := dev.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatalf("untagged write before fence: %v", err)
	}

	// The coordinator fences the node at migration start (target gen 2).
	if got, err := c.FenceEpoch(ctx, 2); err != nil || got != 2 {
		t.Fatalf("FenceEpoch(2) = %d, %v", got, err)
	}
	if !n.Manager.EpochFence() {
		t.Fatal("fence not raised")
	}

	// Untagged data ops bounce typed — the second mount that never
	// learned of the migration must not write below the copy cursor.
	if err := dev.WriteBlocks(ctx, 0, data); !IsStaleEpoch(err) {
		t.Fatalf("untagged write under fence = %v, want stale-epoch", err)
	}
	got := make([]byte, 512)
	if err := dev.ReadBlocks(ctx, 0, got); !IsStaleEpoch(err) {
		t.Fatalf("untagged read under fence = %v, want stale-epoch", err)
	}
	// Flush and control ops stay open under the fence.
	if err := dev.Flush(ctx); err != nil {
		t.Fatalf("flush under fence: %v", err)
	}
	if !dev.Healthy() {
		t.Fatal("fence rejection marked device unhealthy")
	}

	// A tag at the retired generation bounces the same way.
	cStale, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cStale.Close()
	cStale.SetArrayEpoch(1)
	if err := cStale.Dev(0).WriteBlocks(ctx, 0, data); !IsStaleEpoch(err) {
		t.Fatalf("stale-tagged write under fence = %v, want stale-epoch", err)
	}

	// A stale background mirror write is a notification: the client sees
	// no error, so the node must count the drop.
	drops := n.Manager.met.bgStaleDrops
	if err := cStale.Dev(0).WriteBlocksBackground(ctx, 4, data); err != nil {
		t.Fatalf("stale background write returned an error to the notifier: %v", err)
	}
	// Notifications are async; a call on the same connection orders
	// behind them.
	if err := cStale.Dev(0).Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if v := drops.Value(); v < 1 {
		t.Fatalf("bg_stale_drops = %d after dropped stale background write, want >= 1", v)
	}

	// The coordinator's own I/O — tagged at the target generation —
	// passes the fence.
	cCoord, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cCoord.Close()
	cCoord.SetArrayEpoch(2)
	if err := cCoord.Dev(0).WriteBlocks(ctx, 0, data); err != nil {
		t.Fatalf("target-tagged write under fence: %v", err)
	}

	// The stable completion broadcast clears the fence.
	if gen, err := c.EpochSet(ctx, 2); err != nil || gen != 2 {
		t.Fatalf("EpochSet(2) = %d, %v", gen, err)
	}
	if n.Manager.EpochFence() {
		t.Fatal("fence survived the stable broadcast")
	}
	if err := dev.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatalf("untagged write after completion: %v", err)
	}
}

// fakeCoordinator implements RebalanceController for wire tests. Its
// fields are written from the server goroutine and read by the test,
// so every access locks.
type fakeCoordinator struct {
	mu    sync.Mutex
	gen   uint64
	calls []string
	err   error
}

func (f *fakeCoordinator) LayoutJSON() ([]byte, error) {
	f.mu.Lock()
	gen := f.gen
	f.mu.Unlock()
	desc := layout.NewEpoch(layout.NewOSM(4, 1, 64)).Desc()
	return json.Marshal(LayoutInfo{Gen: gen, Desc: &desc})
}

func (f *fakeCoordinator) Rebalance(action string, nodes int, addrs []string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, fmt.Sprintf("%s/%d/%d", action, nodes, len(addrs)))
	return f.err
}

func (f *fakeCoordinator) snapshotCalls() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.calls...)
}

func (f *fakeCoordinator) setErr(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

// TestRebalanceCtl: the control op reaches the coordinator; its typed
// refusals travel back as remote errors; nodes without a coordinator
// refuse.
func TestRebalanceCtl(t *testing.T) {
	n := startNode(t, 1, 16)
	c, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.RebalanceCtl(ctx, "grow", 2, []string{"a", "b"}); err == nil {
		t.Fatal("rebalance against a node without a coordinator succeeded")
	}
	fc := &fakeCoordinator{gen: 7}
	n.Manager.SetRebalance(fc)
	if err := c.RebalanceCtl(ctx, "grow", 2, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if calls := fc.snapshotCalls(); len(calls) != 1 || calls[0] != "grow/2/2" {
		t.Fatalf("coordinator calls = %v", calls)
	}
	fc.setErr(errors.New("repair: rebalance in progress"))
	err = c.RebalanceCtl(ctx, "shrink", 1, nil)
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("refusal did not travel as a remote error: %v", err)
	}
	li, err := c.Layout(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if li.Gen != 7 || li.Desc == nil {
		t.Fatalf("coordinator layout = %+v, want gen 7 with desc", li)
	}
	if _, err := layout.EpochFromDesc(*li.Desc); err != nil {
		t.Fatalf("served desc does not rebuild: %v", err)
	}
}
