package cdd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/layout"
	"repro/internal/transport"
)

// TestEpochTaggedIO: tagged I/O at the node's generation round-trips;
// a stale tag bounces with the typed wire code; the refresh hook
// recovers and the retried operation lands.
func TestEpochTaggedIO(t *testing.T) {
	n := startNode(t, 1, 32)
	n.Manager.AdoptEpoch(3)
	c, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	dev := c.Dev(0)
	data := make([]byte, 2*512)
	rand.New(rand.NewSource(7)).Read(data)

	// In-date tag: served like untagged I/O.
	c.SetArrayEpoch(3)
	if err := dev.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatalf("write at current epoch: %v", err)
	}
	got := make([]byte, len(data))
	if err := dev.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("read at current epoch: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("tagged round trip corrupted data")
	}

	// Stale tag, no refresh hook: the typed error surfaces.
	n.Manager.AdoptEpoch(5)
	c2, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetArrayEpoch(3)
	dev2 := c2.Dev(0)
	err = dev2.WriteBlocks(ctx, 0, data)
	if !IsStaleEpoch(err) {
		t.Fatalf("stale write error = %v, want stale-epoch", err)
	}
	var re *transport.RemoteError
	if !errors.As(err, &re) || re.Code != transport.CodeStaleEpoch {
		t.Fatalf("stale write error not CodeStaleEpoch: %v", err)
	}
	// A wire rejection proves the node answered: the device must not be
	// marked suspect for it.
	if !dev2.Healthy() {
		t.Fatal("stale-epoch rejection marked device unhealthy")
	}

	// With the refresh hook: one bounce, then the retry lands.
	var refreshes atomic.Int64
	c2.SetEpochRefresh(func(ctx context.Context) (uint64, error) {
		refreshes.Add(1)
		li, err := c2.Layout(ctx)
		if err != nil {
			return 0, err
		}
		return li.Gen, nil
	})
	if err := dev2.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatalf("write after refresh: %v", err)
	}
	if refreshes.Load() != 1 {
		t.Fatalf("refresh hook ran %d times, want 1", refreshes.Load())
	}
	if got := c2.ArrayEpoch(); got != 5 {
		t.Fatalf("client epoch after refresh = %d, want 5", got)
	}
	if err := dev2.ReadBlocks(ctx, 0, got[:512]); err != nil {
		t.Fatalf("read after refresh: %v", err)
	}

	// A tag AHEAD of the node: adopted, so the fence tightens before the
	// coordinator's broadcast arrives.
	c2.SetArrayEpoch(8)
	if err := dev2.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatalf("write ahead of node epoch: %v", err)
	}
	if got := n.Manager.EpochGen(); got != 8 {
		t.Fatalf("node epoch after ahead tag = %d, want 8", got)
	}
}

// TestEpochSetBroadcast: OpEpochSet raises monotonically and answers
// the generation in force.
func TestEpochSetBroadcast(t *testing.T) {
	n := startNode(t, 1, 16)
	c, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if got, err := c.EpochSet(ctx, 4); err != nil || got != 4 {
		t.Fatalf("EpochSet(4) = %d, %v", got, err)
	}
	// Out-of-order lower broadcast: ignored, current generation answered.
	if got, err := c.EpochSet(ctx, 2); err != nil || got != 4 {
		t.Fatalf("EpochSet(2) = %d, %v, want 4", got, err)
	}
	li, err := c.Layout(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if li.Gen != 4 || li.Desc != nil || li.Migrating {
		t.Fatalf("layout = %+v, want bare gen 4", li)
	}
}

// fakeCoordinator implements RebalanceController for wire tests. Its
// fields are written from the server goroutine and read by the test,
// so every access locks.
type fakeCoordinator struct {
	mu    sync.Mutex
	gen   uint64
	calls []string
	err   error
}

func (f *fakeCoordinator) LayoutJSON() ([]byte, error) {
	f.mu.Lock()
	gen := f.gen
	f.mu.Unlock()
	desc := layout.NewEpoch(layout.NewOSM(4, 1, 64)).Desc()
	return json.Marshal(LayoutInfo{Gen: gen, Desc: &desc})
}

func (f *fakeCoordinator) Rebalance(action string, nodes int, addrs []string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, fmt.Sprintf("%s/%d/%d", action, nodes, len(addrs)))
	return f.err
}

func (f *fakeCoordinator) snapshotCalls() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.calls...)
}

func (f *fakeCoordinator) setErr(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

// TestRebalanceCtl: the control op reaches the coordinator; its typed
// refusals travel back as remote errors; nodes without a coordinator
// refuse.
func TestRebalanceCtl(t *testing.T) {
	n := startNode(t, 1, 16)
	c, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.RebalanceCtl(ctx, "grow", 2, []string{"a", "b"}); err == nil {
		t.Fatal("rebalance against a node without a coordinator succeeded")
	}
	fc := &fakeCoordinator{gen: 7}
	n.Manager.SetRebalance(fc)
	if err := c.RebalanceCtl(ctx, "grow", 2, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if calls := fc.snapshotCalls(); len(calls) != 1 || calls[0] != "grow/2/2" {
		t.Fatalf("coordinator calls = %v", calls)
	}
	fc.setErr(errors.New("repair: rebalance in progress"))
	err = c.RebalanceCtl(ctx, "shrink", 1, nil)
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("refusal did not travel as a remote error: %v", err)
	}
	li, err := c.Layout(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if li.Gen != 7 || li.Desc == nil {
		t.Fatalf("coordinator layout = %+v, want gen 7 with desc", li)
	}
	if _, err := layout.EpochFromDesc(*li.Desc); err != nil {
		t.Fatalf("served desc does not rebuild: %v", err)
	}
}
