package cdd

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/disk"
	"repro/internal/transport"
)

// Manager is the storage-manager module of a CDD: it coordinates the
// use of a node's local disks by remote CDD clients, and hosts a
// replica of the lock-group table. A node that also mounts arrays acts
// as client and manager simultaneously — the "both" state of Section 4.
type Manager struct {
	disks []*disk.Disk
	locks *Table

	mu    sync.Mutex
	peers []*transport.Client // for lock-table replication
}

// NewManager creates a manager exporting the given local disks.
func NewManager(disks []*disk.Disk) *Manager {
	return &Manager{disks: disks, locks: NewTable()}
}

// Locks exposes the node's lock-group table replica.
func (m *Manager) Locks() *Table { return m.locks }

// AddPeer registers a peer CDD connection for lock-table replication.
func (m *Manager) AddPeer(c *transport.Client) {
	m.mu.Lock()
	m.peers = append(m.peers, c)
	m.mu.Unlock()
}

// replicate pushes the current lock table to all peers (best-effort
// notifications, matching the paper's asynchronous replica updates).
func (m *Manager) replicate() {
	snap := encodeSnapshot(m.locks.Version(), m.locks.Snapshot())
	m.mu.Lock()
	peers := append([]*transport.Client(nil), m.peers...)
	m.mu.Unlock()
	for _, p := range peers {
		_ = p.Notify(OpLockReplica, snap) // best effort
	}
}

func (m *Manager) disk(i uint32) (*disk.Disk, error) {
	if int(i) >= len(m.disks) {
		return nil, fmt.Errorf("cdd: disk %d out of range [0,%d)", i, len(m.disks))
	}
	return m.disks[i], nil
}

// Handle implements transport.Handler.
func (m *Manager) Handle(op uint8, payload []byte) ([]byte, error) {
	ctx := context.Background()
	switch op {
	case OpInfo:
		if len(m.disks) == 0 {
			return nil, errors.New("cdd: node exports no disks")
		}
		return encodeInfo(infoResp{
			Disks:     uint32(len(m.disks)),
			BlockSize: uint32(m.disks[0].BlockSize()),
			Blocks:    m.disks[0].NumBlocks(),
		}), nil

	case OpRead:
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, int(h.Count)*d.BlockSize())
		if err := d.ReadBlocks(ctx, h.Block, buf); err != nil {
			return nil, err
		}
		return buf, nil

	case OpWrite, OpWriteBG:
		h, data, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		if op == OpWriteBG {
			return nil, d.WriteBlocksBackground(ctx, h.Block, data)
		}
		return nil, d.WriteBlocks(ctx, h.Block, data)

	case OpFlush:
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		return nil, d.Flush(ctx)

	case OpHealth:
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		if d.Healthy() {
			return []byte{1}, nil
		}
		return []byte{0}, nil

	case OpFail:
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		d.Fail()
		return nil, nil

	case OpReplace:
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		d.Replace()
		return nil, nil

	case OpLock:
		msg, err := decodeLockMsg(payload)
		if err != nil {
			return nil, err
		}
		if m.locks.TryAcquire(msg.Owner, msg.Ranges) {
			m.replicate()
			return []byte{1}, nil
		}
		return []byte{0}, nil

	case OpUnlock:
		msg, err := decodeLockMsg(payload)
		if err != nil {
			return nil, err
		}
		m.locks.Release(msg.Owner, msg.Ranges)
		m.replicate()
		return nil, nil

	case OpUnlockAll:
		msg, err := decodeLockMsg(payload)
		if err != nil {
			return nil, err
		}
		m.locks.ReleaseAll(msg.Owner)
		m.replicate()
		return nil, nil

	case OpLockSnapshot:
		return encodeSnapshot(m.locks.Version(), m.locks.Snapshot()), nil

	case OpStats:
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		r, w, br, bw := d.Stats()
		return encodeStats(statsResp{
			Reads: r, Writes: w, BytesRead: br, BytesWritten: bw,
			Healthy: d.Healthy(),
		}), nil

	case OpLockReplica:
		version, recs, err := decodeSnapshot(payload)
		if err != nil {
			return nil, err
		}
		m.locks.Install(version, recs)
		return nil, nil
	}
	return nil, fmt.Errorf("cdd: unknown op %d", op)
}

// Node couples a manager with its transport server.
type Node struct {
	Manager *Manager
	Server  *transport.Server
}

// ListenAndServe starts a CDD node exporting disks on addr
// ("127.0.0.1:0" picks a free port).
func ListenAndServe(addr string, disks []*disk.Disk) (*Node, error) {
	m := NewManager(disks)
	s, err := transport.Serve(addr, m.Handle)
	if err != nil {
		return nil, err
	}
	return &Node{Manager: m, Server: s}, nil
}

// Addr reports the node's bound address.
func (n *Node) Addr() string { return n.Server.Addr() }

// Close stops the node.
func (n *Node) Close() error { return n.Server.Close() }
