package cdd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Manager is the storage-manager module of a CDD: it coordinates the
// use of a node's local disks by remote CDD clients, and hosts a
// replica of the lock-group table. A node that also mounts arrays acts
// as client and manager simultaneously — the "both" state of Section 4.
type Manager struct {
	disks  []*disk.Disk
	locks  *Table
	reg    *obs.Registry
	tracer *trace.Tracer
	met    managerMetrics

	// epochGen is the array-layout epoch generation this node enforces
	// on epoch-tagged I/O (see epoch.go); raised by OpEpochSet
	// broadcasts and by tags ahead of it, never lowered.
	epochGen atomic.Uint64
	// epochFence, while set, rejects UNTAGGED block I/O: a migration is
	// moving blocks and only the rebalance coordinator — whose tags are
	// validated against epochGen — may route around the copy cursor. An
	// untagged writer carries no epoch the node could check, so below
	// the cursor its blocks would land at old homes and be silently
	// retired at the epoch switch. Raised by a phase-1 OpEpochSet at
	// migration start, cleared by the stable completion broadcast.
	epochFence atomic.Bool

	mu    sync.Mutex
	peers []*transport.Client // for lock-table replication
	// intents holds replicated write-intent snapshots keyed by array
	// name: the repair host pushes its dirty map here so it survives a
	// host crash.
	intents   map[string][]byte
	repair    RepairController
	rebalance RebalanceController
	onEpoch   func(gen uint64) // called after AdoptEpoch raises the generation
}

// RepairController is the slice of a repair supervisor the manager can
// drive remotely (raidxctl repair status|pause|resume). Declared here
// rather than importing internal/repair so cdd stays below repair in
// the dependency order.
type RepairController interface {
	StatusJSON() ([]byte, error)
	Pause()
	Resume()
}

// SetRepair attaches the node's repair supervisor, enabling
// OpRepairStatus and OpRepairCtl.
func (m *Manager) SetRepair(rc RepairController) {
	m.mu.Lock()
	m.repair = rc
	m.mu.Unlock()
}

// managerMetrics count the node's served operations. fgOps/fgErrors and
// fgLat cover only the foreground data path (read/write/flush) — they
// are the inputs to the node's foreground SLO tracker; latByOp carries
// one labeled histogram per opcode, resolved once so the dispatch path
// indexes a static array.
type managerMetrics struct {
	reads, writes, bgWrites, flushes, probes, failed *obs.Counter
	beats, lockOps                                   *obs.Counter
	fgOps, fgErrors                                  *obs.Counter
	// bgStaleDrops counts background mirror writes rejected for a stale
	// or missing epoch. Clients send those as notifications and never
	// see the rejection, so each drop is a silent redundancy loss until
	// resync — the counter keeps it visible to operators.
	bgStaleDrops *obs.Counter
	fgLat        *obs.Histogram
	latByOp      [len(opSpanNames)]*obs.Histogram
}

// DefaultLeaseTTL is the lock service's grant lease: a client that
// stops heartbeating for this long has its grants auto-released, so a
// dead or partitioned holder cannot wedge its ranges forever.
const DefaultLeaseTTL = 5 * time.Second

// NewManager creates a manager exporting the given local disks. Every
// manager owns an observability registry: per-disk gauges (op counts,
// bytes, sequential hits, queue backlogs) read the disks' own counters,
// so serving a snapshot costs nothing on the I/O path.
func NewManager(disks []*disk.Disk) *Manager {
	reg := obs.NewRegistry()
	m := &Manager{
		disks:   disks,
		locks:   NewTable(),
		reg:     reg,
		tracer:  trace.New(trace.Config{}),
		intents: make(map[string][]byte),
		met: managerMetrics{
			reads:    reg.Counter("mgr.read_ops"),
			writes:   reg.Counter("mgr.write_ops"),
			bgWrites: reg.Counter("mgr.bg_write_ops"),
			flushes:  reg.Counter("mgr.flush_ops"),
			probes:   reg.Counter("mgr.health_ops"),
			failed:   reg.Counter("mgr.op_errors"),
			beats:    reg.Counter("mgr.beats"),
			lockOps:  reg.Counter("mgr.lock_ops"),
			fgOps:        reg.Counter("mgr.fg_ops"),
			fgErrors:     reg.Counter("mgr.fg_errors"),
			bgStaleDrops: reg.Counter("mgr.bg_stale_drops"),
			fgLat:        reg.Histogram("mgr.fg_latency"),
		},
	}
	latVec := reg.HistogramVec("mgr.op_latency", "op")
	for op, name := range opSpanNames {
		if name != "" {
			m.met.latByOp[op] = latVec.With(strings.TrimPrefix(name, "mgr."))
		}
	}
	m.locks.SetLease(DefaultLeaseTTL, nil)
	reg.RegisterGauge("locks.owners", func() int64 { o, _, _ := m.locks.Stats(); return int64(o) })
	reg.RegisterGauge("locks.ranges", func() int64 { _, r, _ := m.locks.Stats(); return int64(r) })
	reg.RegisterGauge("locks.expired", func() int64 { _, _, e := m.locks.Stats(); return int64(e) })
	for _, d := range disks {
		d := d
		name := "disk." + d.ID()
		reg.RegisterGauge(name+".reads", func() int64 { r, _, _, _ := d.Stats(); return r })
		reg.RegisterGauge(name+".writes", func() int64 { _, w, _, _ := d.Stats(); return w })
		reg.RegisterGauge(name+".bytes_read", func() int64 { _, _, br, _ := d.Stats(); return br })
		reg.RegisterGauge(name+".bytes_written", func() int64 { _, _, _, bw := d.Stats(); return bw })
		reg.RegisterGauge(name+".seq_hits", func() int64 { return d.SeqHits() })
		reg.RegisterGauge(name+".backlog_us", func() int64 { return int64(d.QueueBacklog().Microseconds()) })
		reg.RegisterGauge(name+".bg_backlog_us", func() int64 { return int64(d.BgQueueBacklog().Microseconds()) })
		reg.RegisterGauge(name+".healthy", func() int64 {
			if d.Healthy() {
				return 1
			}
			return 0
		})
	}
	return m
}

// Obs exposes the manager's observability registry (the /stats source).
func (m *Manager) Obs() *obs.Registry { return m.reg }

// Tracer exposes the manager's span ring (the /trace source). Incoming
// traced requests resume into it; its spans are served over
// OpTraceSpans for cross-node waterfall assembly.
func (m *Manager) Tracer() *trace.Tracer { return m.tracer }

// Locks exposes the node's lock-group table replica.
func (m *Manager) Locks() *Table { return m.locks }

// AddPeer registers a peer CDD connection for lock-table replication.
func (m *Manager) AddPeer(c *transport.Client) {
	m.mu.Lock()
	m.peers = append(m.peers, c)
	m.mu.Unlock()
}

// replicate pushes the current lock table to all peers (best-effort
// notifications, matching the paper's asynchronous replica updates).
func (m *Manager) replicate(ctx context.Context) {
	snap := encodeSnapshot(m.locks.Version(), m.locks.Snapshot())
	m.mu.Lock()
	peers := append([]*transport.Client(nil), m.peers...)
	m.mu.Unlock()
	for _, p := range peers {
		_ = p.Notify(ctx, OpLockReplica, snap) // best effort
	}
}

func (m *Manager) disk(i uint32) (*disk.Disk, error) {
	if int(i) >= len(m.disks) {
		return nil, fmt.Errorf("cdd: disk %d out of range [0,%d): %w", i, len(m.disks), errBadRequest)
	}
	return m.disks[i], nil
}

// errUnknownOp marks requests for opcodes this node does not implement.
var errUnknownOp = errors.New("unknown op")

// errCode classifies a handler error into a wire error code, so clients
// act on the code instead of matching message text.
func errCode(err error) uint8 {
	switch {
	case errors.Is(err, disk.ErrFailed):
		return transport.CodeDiskFailed
	case errors.Is(err, errStaleEpoch):
		return transport.CodeStaleEpoch
	case errors.Is(err, errBadRequest):
		return transport.CodeBadRequest
	case errors.Is(err, errUnknownOp):
		return transport.CodeUnknownOp
	}
	var se *store.SizeError
	var re *store.RangeError
	if errors.As(err, &se) || errors.As(err, &re) {
		return transport.CodeBadRequest
	}
	return transport.CodeGeneric
}

// opSpanNames labels the manager span of each opcode; static strings
// keep span recording allocation-free.
var opSpanNames = [...]string{
	OpInfo:         "mgr.info",
	OpRead:         "mgr.read",
	OpWrite:        "mgr.write",
	OpWriteBG:      "mgr.bg-write",
	OpFlush:        "mgr.flush",
	OpHealth:       "mgr.health",
	OpFail:         "mgr.fail",
	OpReplace:      "mgr.replace",
	OpLock:         "mgr.lock",
	OpUnlock:       "mgr.unlock",
	OpUnlockAll:    "mgr.unlock-all",
	OpLockSnapshot: "mgr.lock-snapshot",
	OpLockReplica:  "mgr.lock-replica",
	OpStats:        "mgr.stats",
	OpObsSnapshot:  "mgr.obs-snapshot",
	OpTraceSpans:   "mgr.trace-spans",
	OpIntentPut:    "mgr.intent-put",
	OpIntentGet:    "mgr.intent-get",
	OpRepairStatus: "mgr.repair-status",
	OpRepairCtl:    "mgr.repair-ctl",
	OpCoherence:    "mgr.beat",
	OpReadEpoch:    "mgr.read-epoch",
	OpWriteEpoch:   "mgr.write-epoch",
	OpWriteBGEpoch: "mgr.bg-write-epoch",
	OpLayout:       "mgr.layout",
	OpEpochSet:     "mgr.epoch-set",
	OpRebalanceCtl: "mgr.rebalance-ctl",
}

func opSpanName(op uint8) string {
	if int(op) < len(opSpanNames) && opSpanNames[op] != "" {
		return opSpanNames[op]
	}
	return "mgr.op"
}

// Handle implements transport.Handler: it dispatches the request and
// stamps any error with its wire code. ctx carries the caller's
// resumed trace (when the frame had one), so the per-op manager span
// and the disk spans below it land in the caller's trace.
func (m *Manager) Handle(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
	ctx, h := trace.Start(ctx, opSpanName(op), "")
	start := time.Now()
	var (
		resp []byte
		err  error
	)
	// The migration fence gates untagged block I/O here, at the entry
	// point only: handleEpoch re-dispatches validated tagged ops through
	// handle with their base opcodes, and those must not bounce a second
	// time. Control and flush ops stay open under the fence.
	if m.epochFence.Load() && (op == OpRead || op == OpWrite || op == OpWriteBG) {
		err = fmt.Errorf("cdd: untagged block I/O rejected during migration (node epoch %d): %w",
			m.epochGen.Load(), errStaleEpoch)
		if op == OpWriteBG {
			// A notification: the client never sees this rejection.
			m.met.bgStaleDrops.Inc()
		}
	} else {
		resp, err = m.handle(ctx, op, payload)
	}
	h.End(err)
	d := time.Since(start)
	// Latency lands in the per-op labeled histogram and, for the
	// foreground data path, the flat SLO input histogram. The trace ID
	// rides along as an exemplar, so a dashboard p99 links to a trace.
	var tid uint64
	if sc, ok := trace.FromContext(ctx); ok {
		tid = uint64(sc.Trace)
	}
	if int(op) < len(m.met.latByOp) {
		m.met.latByOp[op].ObserveTraced(d, tid)
	}
	switch op {
	case OpRead, OpWrite, OpFlush, OpReadEpoch, OpWriteEpoch:
		m.met.fgOps.Inc()
		m.met.fgLat.ObserveTraced(d, tid)
		if err != nil {
			m.met.fgErrors.Inc()
		}
	}
	if err != nil {
		m.met.failed.Inc()
		return nil, transport.WithCode(errCode(err), err)
	}
	return resp, nil
}

func (m *Manager) handle(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
	switch op {
	case OpInfo:
		if len(m.disks) == 0 {
			return nil, errors.New("cdd: node exports no disks")
		}
		return encodeInfo(infoResp{
			Disks:     uint32(len(m.disks)),
			BlockSize: uint32(m.disks[0].BlockSize()),
			Blocks:    m.disks[0].NumBlocks(),
		}), nil

	case OpRead:
		m.met.reads.Inc()
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		nbytes := int64(h.Count) * int64(d.BlockSize())
		if nbytes > transport.MaxPayload {
			return nil, fmt.Errorf("cdd: read of %d bytes exceeds frame limit: %w", nbytes, errBadRequest)
		}
		// Pooled response: the server releases it once the frame is on
		// the wire (RecycleResponses), closing the buffer's cycle.
		buf := bufpool.Get(int(nbytes))
		if err := d.ReadBlocks(ctx, h.Block, buf); err != nil {
			bufpool.Put(buf)
			return nil, err
		}
		return buf, nil

	case OpWrite, OpWriteBG:
		h, data, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		if op == OpWriteBG {
			m.met.bgWrites.Inc()
			return nil, d.WriteBlocksBackground(ctx, h.Block, data)
		}
		m.met.writes.Inc()
		return nil, d.WriteBlocks(ctx, h.Block, data)

	case OpFlush:
		m.met.flushes.Inc()
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		return nil, d.Flush(ctx)

	case OpHealth:
		m.met.probes.Inc()
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		if d.Healthy() {
			return []byte{1}, nil
		}
		return []byte{0}, nil

	case OpFail:
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		d.Fail()
		return nil, nil

	case OpReplace:
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		if err := d.Replace(); err != nil {
			return nil, err
		}
		return nil, nil

	case OpLock:
		m.met.lockOps.Inc()
		msg, err := decodeLockMsg(payload)
		if err != nil {
			return nil, err
		}
		if m.locks.Acquire(msg.Owner, msg.Mode, msg.Ranges) {
			m.replicate(ctx)
			return []byte{1}, nil
		}
		return []byte{0}, nil

	case OpCoherence:
		m.met.beats.Inc()
		msg, err := decodeBeat(payload)
		if err != nil {
			return nil, err
		}
		br := m.locks.Beat(msg.Owner, msg.LastSeq)
		if br.Released {
			// The ack released revoked grants; push the new table state.
			m.replicate(ctx)
		}
		return encodeBeatResult(br), nil

	case OpUnlock:
		msg, err := decodeLockMsg(payload)
		if err != nil {
			return nil, err
		}
		m.locks.Release(msg.Owner, msg.Ranges)
		m.replicate(ctx)
		return nil, nil

	case OpUnlockAll:
		msg, err := decodeLockMsg(payload)
		if err != nil {
			return nil, err
		}
		m.locks.ReleaseAll(msg.Owner)
		m.replicate(ctx)
		return nil, nil

	case OpLockSnapshot:
		return encodeSnapshot(m.locks.Version(), m.locks.Snapshot()), nil

	case OpStats:
		h, _, err := decodeIOHeader(payload)
		if err != nil {
			return nil, err
		}
		d, err := m.disk(h.Disk)
		if err != nil {
			return nil, err
		}
		r, w, br, bw := d.Stats()
		return encodeStats(statsResp{
			Reads: r, Writes: w, BytesRead: br, BytesWritten: bw,
			Healthy: d.Healthy(),
		}), nil

	case OpLockReplica:
		version, recs, err := decodeSnapshot(payload)
		if err != nil {
			return nil, err
		}
		m.locks.Install(version, recs)
		return nil, nil

	case OpObsSnapshot:
		return m.reg.MarshalJSON()

	case OpTraceSpans:
		return json.Marshal(m.tracer.Spans())

	case OpIntentPut:
		key, body, err := decodeKeyed(payload)
		if err != nil {
			return nil, err
		}
		m.mu.Lock()
		m.intents[key] = append([]byte(nil), body...)
		m.mu.Unlock()
		return nil, nil

	case OpIntentGet:
		key, _, err := decodeKeyed(payload)
		if err != nil {
			return nil, err
		}
		m.mu.Lock()
		snap := m.intents[key]
		m.mu.Unlock()
		// Copy: responses are recycled to the buffer pool after sending,
		// which would scribble over the stored snapshot.
		return append([]byte(nil), snap...), nil

	case OpRepairStatus:
		m.mu.Lock()
		rc := m.repair
		m.mu.Unlock()
		if rc == nil {
			return nil, errors.New("cdd: no repair supervisor on this node")
		}
		return rc.StatusJSON()

	case OpRepairCtl:
		m.mu.Lock()
		rc := m.repair
		m.mu.Unlock()
		if rc == nil {
			return nil, errors.New("cdd: no repair supervisor on this node")
		}
		if len(payload) != 1 {
			return nil, fmt.Errorf("cdd: bad repair-ctl payload: %w", errBadRequest)
		}
		switch payload[0] {
		case repairCtlPause:
			rc.Pause()
		case repairCtlResume:
			rc.Resume()
		default:
			return nil, fmt.Errorf("cdd: unknown repair-ctl %d: %w", payload[0], errBadRequest)
		}
		return nil, nil

	case OpReadEpoch, OpWriteEpoch, OpWriteBGEpoch, OpLayout, OpEpochSet, OpRebalanceCtl:
		return m.handleEpoch(ctx, op, payload)
	}
	return nil, fmt.Errorf("cdd: op %d: %w", op, errUnknownOp)
}

// Node couples a manager with its transport server.
type Node struct {
	Manager *Manager
	Server  *transport.Server
}

// ListenAndServe starts a CDD node exporting disks on addr
// ("127.0.0.1:0" picks a free port). Responses are recycled to the
// buffer pool after sending — safe because every manager handler
// returns either a fresh encoding or a pooled read buffer, never a
// slice of the request payload.
func ListenAndServe(addr string, disks []*disk.Disk) (*Node, error) {
	m := NewManager(disks)
	s, err := transport.ServeWith(addr, m.Handle, transport.ServerOptions{
		Tracer:           m.tracer,
		RecycleResponses: true,
	})
	if err != nil {
		return nil, err
	}
	return &Node{Manager: m, Server: s}, nil
}

// Addr reports the node's bound address.
func (n *Node) Addr() string { return n.Server.Addr() }

// Close stops the node.
func (n *Node) Close() error { return n.Server.Close() }
