package cdd_test

// SLO feedback chaos drill (DESIGN.md section 14): a background
// maintenance storm — bulk rebuild-style reads paced by the QoS
// Background class, exactly how repair.Config.Pace wires the
// supervisor — saturates the shared node connections and inflates
// foreground latency past the SLO objective. The burn-rate tracker
// must notice on both windows, step the Background rate down through
// the real qos.Scheduler actuator until the foreground p99 returns
// under the objective WHILE the storm keeps running, and step the rate
// back to baseline once the storm ends. Zero foreground errors
// throughout. Runs under -race in the obscheck CI shard.

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qos"
)

func TestSLOChaosStormFeedback(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based control-loop drill")
	}
	const blocks = 2048 // 2 MiB per device at 1 KiB blocks
	devs, _, _, reg := faultCluster(t, 4, 1, blocks, nil)
	a, err := core.New(devs, 4, 1, core.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Client-observed foreground instruments: the SLO's inputs.
	fgLat := reg.Histogram("fg.latency")
	fgOps := reg.Counter("fg.ops")
	fgErrs := reg.Counter("fg.errors")

	bs := a.BlockSize()
	if err := a.WriteBlocks(ctx, 0, make([]byte, int(a.Blocks())*bs)); err != nil {
		t.Fatal(err)
	}

	// Foreground readers: small random reads, individually timed.
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(90 + r)))
			buf := make([]byte, 8*bs)
			for {
				select {
				case <-done:
					return
				default:
				}
				off := int64(rng.Intn(int(a.Blocks()) - 8))
				start := time.Now()
				err := a.ReadBlocks(ctx, off, buf)
				d := time.Since(start)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					t.Errorf("foreground read at %d: %v", off, err)
					fgErrs.Inc()
					return
				}
				fgLat.Observe(d)
				fgOps.Inc()
			}
		}()
	}

	// windowP99 reports the p99 of the observations since prev.
	windowP99 := func(prev obs.HistogramSnapshot) (time.Duration, int64) {
		delta := fgLat.Snapshot().Sub(prev)
		return delta.Percentile(0.99), delta.Count
	}

	// Calibrate: uncontended foreground p99 sets the SLO objective.
	calStart := fgLat.Snapshot()
	time.Sleep(500 * time.Millisecond)
	baseP99, calOps := windowP99(calStart)
	if calOps == 0 {
		t.Fatal("no foreground ops during calibration")
	}
	objective := 3 * baseP99
	if objective < time.Millisecond {
		objective = time.Millisecond
	}

	// Storm capacity: run the bulk readers unpaced briefly, so the
	// initial Background rate provably saturates (2x capacity) on any
	// machine, and the floor provably does not (capacity/50).
	const chunk = 1 << 20
	stormRead := func(g int, buf []byte) error {
		return devs[g%len(devs)].ReadBlocks(ctx, 0, buf)
	}
	var calBytes atomic.Int64
	calStop := make(chan struct{})
	var calWG sync.WaitGroup
	for g := 0; g < 12; g++ {
		g := g
		calWG.Add(1)
		go func() {
			defer calWG.Done()
			buf := make([]byte, chunk)
			for {
				select {
				case <-calStop:
					return
				default:
				}
				if err := stormRead(g, buf); err != nil {
					return
				}
				calBytes.Add(chunk)
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(calStop)
	calWG.Wait()
	capacity := calBytes.Load() * 1000 / 300 // bytes/sec
	if capacity < 4*chunk {
		t.Fatalf("implausible storm capacity %d B/s", capacity)
	}
	initialBG := 2 * capacity
	// The floor must leave storm collisions rarer than 1 in 100
	// foreground ops, or the p99 never clears the objective.
	floorBG := capacity / 200
	if floorBG < 1 {
		floorBG = 1
	}

	sched := qos.New(qos.Config{
		BackgroundBytesPerSec: initialBG,
		BurstWindow:           20 * time.Millisecond,
		Obs:                   reg,
	})
	tr := obs.NewSLOTracker(obs.SLOConfig{
		Name:              "fg",
		Registry:          reg,
		LatencyHist:       fgLat,
		LatencyObjective:  objective,
		ErrorCounter:      fgErrs,
		OpsCounter:        fgOps,
		ErrorBudget:       0.05,
		FastWindow:        250 * time.Millisecond,
		SlowWindow:        time.Second,
		BurnThreshold:     2,
		Actuator:          sched,
		MinBackgroundRate: floorBG,
		RecoverEvals:      2,
	})
	tr.Start(50 * time.Millisecond)
	defer tr.Stop()

	// The storm proper: bulk reads admitted through the Background
	// class, the same pacing hook repair.Config.Pace uses.
	pace := sched.Pace(qos.Background, "repair")
	stormStop := make(chan struct{})
	var stormWG sync.WaitGroup
	for g := 0; g < 12; g++ {
		g := g
		stormWG.Add(1)
		go func() {
			defer stormWG.Done()
			buf := make([]byte, chunk)
			for {
				select {
				case <-stormStop:
					return
				default:
				}
				if pace(ctx, chunk) != nil {
					return
				}
				if err := stormRead(g, buf); err != nil {
					return
				}
			}
		}()
	}

	// Phase 1: the tracker must detect the burn and step the rate down
	// (at least two halvings below the saturating initial rate).
	deadline := time.Now().Add(30 * time.Second)
	for sched.BackgroundRate() > initialBG/4 {
		if time.Now().After(deadline) {
			st := tr.Status()
			t.Fatalf("no burn feedback: rate %d of %d, status %+v", sched.BackgroundRate(), initialBG, st)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Phase 2: with the storm STILL RUNNING at the stepped-down rate,
	// the foreground p99 must come back under the objective.
	deadline = time.Now().Add(30 * time.Second)
	for {
		mark := fgLat.Snapshot()
		time.Sleep(500 * time.Millisecond)
		p99, n := windowP99(mark)
		if n >= 100 && p99 <= objective {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fg p99 %v never returned under objective %v (rate %d, window %d ops)",
				p99, objective, sched.BackgroundRate(), n)
		}
	}

	// Phase 3: storm over — the budget recovers and the feedback
	// restores the Background rate all the way to baseline.
	close(stormStop)
	stormWG.Wait()
	deadline = time.Now().Add(45 * time.Second)
	for sched.BackgroundRate() < initialBG || tr.Status().Burning {
		if time.Now().After(deadline) {
			t.Fatalf("rate never recovered: %d of %d, status %+v", sched.BackgroundRate(), initialBG, tr.Status())
		}
		time.Sleep(50 * time.Millisecond)
	}

	close(done)
	wg.Wait()
	if fgErrs.Value() != 0 {
		t.Fatalf("%d foreground errors during the storm, want 0", fgErrs.Value())
	}
	if countEvents(reg, obs.EventSLOBurn, "fg") == 0 {
		t.Error("no slo-burn event logged")
	}
	if countEvents(reg, obs.EventSLORecover, "fg") == 0 {
		t.Error("no slo-recover event logged")
	}
	if countEvents(reg, obs.EventQoSStep, "fg") < 2 {
		t.Error("expected at least a down-step and an up-step qos-step event")
	}
	// The live gauges told the story too: bg rate is back at baseline.
	if g := reg.Snapshot().Gauges["qos.bg_rate_bps"]; g != initialBG {
		t.Errorf("qos.bg_rate_bps gauge = %d, want restored baseline %d", g, initialBG)
	}
}
