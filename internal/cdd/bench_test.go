package cdd_test

// End-to-end hot-path benchmarks: a RAID-x engine over real TCP
// connections to CDD nodes on loopback. These are the numbers
// BENCH_*.json tracks across PRs — allocs/op here is the whole
// core → cdd → transport → manager pipeline, client and server side
// (the benchmark process hosts both).

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/store"
)

// benchCluster assembles a RAID-x array over `nodes` loopback CDD
// nodes with one disk each (bs-byte blocks), returning the array and
// the remote devices.
func benchCluster(tb testing.TB, nodes int, bs int64, blocks int) (*core.RAIDx, []raid.Dev) {
	tb.Helper()
	var devs []raid.Dev
	for i := 0; i < nodes; i++ {
		d := disk.New(nil, fmt.Sprintf("n%d.d0", i), store.NewMem(blocks, bs), disk.DefaultModel())
		n, err := cdd.ListenAndServe("127.0.0.1:0", []*disk.Disk{d})
		if err != nil {
			tb.Fatal(err)
		}
		c, err := cdd.Connect(n.Addr())
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() {
			c.Close()
			n.Close()
		})
		devs = append(devs, c.Devs()...)
	}
	if nodes < 2 {
		return nil, devs // too narrow for OSM mirror groups; RemoteDev-only benches
	}
	a, err := core.New(devs, nodes, 1, core.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return a, devs
}

// BenchmarkRemoteWrite64K is the headline hot path: one 64 KiB striped
// write through the full remote stack (foreground data columns plus
// deferred mirror-group pushes).
func BenchmarkRemoteWrite64K(b *testing.B) {
	a, _ := benchCluster(b, 4, 4096, 16<<10)
	ctx := context.Background()
	buf := make([]byte, 64<<10)
	blocks := int64(len(buf) / a.BlockSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.WriteBlocks(ctx, (int64(i)*blocks)%(a.Blocks()-blocks), buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkRemoteRead64K is the matching striped read.
func BenchmarkRemoteRead64K(b *testing.B) {
	a, _ := benchCluster(b, 4, 4096, 16<<10)
	ctx := context.Background()
	buf := make([]byte, 64<<10)
	if err := a.WriteBlocks(ctx, 0, buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.ReadBlocks(ctx, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkRemoteDevWrite64K isolates one RemoteDev (cdd → transport →
// manager, no engine): a single contiguous 64 KiB write.
func BenchmarkRemoteDevWrite64K(b *testing.B) {
	_, devs := benchCluster(b, 1, 4096, 16<<10)
	ctx := context.Background()
	buf := make([]byte, 64<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := devs[0].WriteBlocks(ctx, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkRemoteDevRead64K: a single contiguous 64 KiB remote read.
func BenchmarkRemoteDevRead64K(b *testing.B) {
	_, devs := benchCluster(b, 1, 4096, 16<<10)
	ctx := context.Background()
	buf := make([]byte, 64<<10)
	if err := devs[0].WriteBlocks(ctx, 0, buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := devs[0].ReadBlocks(ctx, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkRemoteWriteSmall is the paper's small-write case through the
// remote stack: one 4 KiB block, foreground data + deferred image.
func BenchmarkRemoteWriteSmall(b *testing.B) {
	a, _ := benchCluster(b, 4, 4096, 16<<10)
	ctx := context.Background()
	buf := make([]byte, a.BlockSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.WriteBlocks(ctx, int64(i)%a.Blocks(), buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}
