// Package cdd implements the cooperative disk drivers: the kernel
// modules of the paper, rebuilt as user-space components with the same
// three-part structure.
//
//   - The storage manager (Manager) exports a node's local disks to the
//     cluster over the transport protocol.
//   - The client module (NodeClient / RemoteDev) redirects block I/O to
//     remote managers, presenting remote disks as local raid.Dev
//     devices — the device-masquerading technique of Section 4.
//   - The consistency module (Table) maintains the lock-group table:
//     records of block ranges granted to a specific CDD client with
//     write permission, acquired and released atomically, and
//     replicated to peer CDDs.
//
// Together these establish the single I/O space (SIOS): every node sees
// all nk disks and performs local and remote accesses through one
// interface, with no central server.
package cdd

import (
	"fmt"
	"sort"
	"sync"
)

// Range is a half-open interval [Start, End) of the global lock space.
// The file system locks inode and allocation regions; raw-block users
// may lock block ranges directly.
type Range struct {
	Start, End uint64
}

func (r Range) overlaps(o Range) bool { return r.Start < o.End && o.Start < r.End }

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Start, r.End) }

// Record is one entry of the lock-group table: a group of ranges held
// by one owner.
type Record struct {
	Owner  string
	Ranges []Range
}

// Table is the lock-group table of the consistency module. Grants are
// all-or-nothing and atomic: either every requested range is free (or
// already held by the same owner) and the whole group is granted, or
// nothing changes.
type Table struct {
	mu      sync.Mutex
	held    map[string][]Range
	version uint64
}

// NewTable creates an empty lock-group table.
func NewTable() *Table {
	return &Table{held: map[string][]Range{}}
}

// TryAcquire atomically grants the range group to owner. It reports
// false (and changes nothing) if any range conflicts with a different
// owner. Ranges already held by the same owner are permitted.
func (t *Table) TryAcquire(owner string, rs []Range) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for other, ors := range t.held {
		if other == owner {
			continue
		}
		for _, o := range ors {
			for _, r := range rs {
				if r.overlaps(o) {
					return false
				}
			}
		}
	}
	t.held[owner] = append(t.held[owner], rs...)
	t.version++
	return true
}

// Release atomically removes exactly the given ranges from owner's
// holdings (ranges must match grants; partial overlap is not split).
func (t *Table) Release(owner string, rs []Range) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.held[owner]
	out := cur[:0]
	for _, h := range cur {
		drop := false
		for _, r := range rs {
			if h == r {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, h)
		}
	}
	if len(out) == 0 {
		delete(t.held, owner)
	} else {
		t.held[owner] = out
	}
	t.version++
}

// ReleaseAll drops every range held by owner (client disconnect).
func (t *Table) ReleaseAll(owner string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.held[owner]; ok {
		delete(t.held, owner)
		t.version++
	}
}

// Holds reports whether owner currently holds a range overlapping r.
func (t *Table) Holds(owner string, r Range) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range t.held[owner] {
		if h.overlaps(r) {
			return true
		}
	}
	return false
}

// Version reports a counter incremented on every table mutation (used
// by replication).
func (t *Table) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Snapshot returns the table contents ordered by owner, for replication
// and introspection.
func (t *Table) Snapshot() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	owners := make([]string, 0, len(t.held))
	for o := range t.held {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	out := make([]Record, 0, len(owners))
	for _, o := range owners {
		rs := make([]Range, len(t.held[o]))
		copy(rs, t.held[o])
		out = append(out, Record{Owner: o, Ranges: rs})
	}
	return out
}

// Install replaces the table contents with a replicated snapshot.
func (t *Table) Install(version uint64, recs []Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if version <= t.version && t.version != 0 {
		return // stale replica
	}
	t.held = map[string][]Range{}
	for _, rec := range recs {
		rs := make([]Range, len(rec.Ranges))
		copy(rs, rec.Ranges)
		t.held[rec.Owner] = rs
	}
	t.version = version
}
