// Package cdd implements the cooperative disk drivers: the kernel
// modules of the paper, rebuilt as user-space components with the same
// three-part structure.
//
//   - The storage manager (Manager) exports a node's local disks to the
//     cluster over the transport protocol.
//   - The client module (NodeClient / RemoteDev) redirects block I/O to
//     remote managers, presenting remote disks as local raid.Dev
//     devices — the device-masquerading technique of Section 4.
//   - The consistency module (Table) maintains the lock-group table:
//     records of block ranges granted to a specific CDD client,
//     acquired and released atomically, and replicated to peer CDDs.
//
// Together these establish the single I/O space (SIOS): every node sees
// all nk disks and performs local and remote accesses through one
// interface, with no central server.
package cdd

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Range is a half-open interval [Start, End) of the global lock space.
// The file system locks inode and allocation regions; raw-block users
// may lock block ranges directly.
type Range struct {
	Start, End uint64
}

func (r Range) overlaps(o Range) bool { return r.Start < o.End && o.Start < r.End }

// contains reports whether r fully covers o.
func (r Range) contains(o Range) bool { return r.Start <= o.Start && o.End <= r.End }

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Start, r.End) }

// Mode classifies a grant. Shared grants give read visibility — any
// number of owners may hold overlapping shared ranges, and a client may
// serve cached reads under them. Exclusive grants give write ownership
// and conflict with every other owner's grants of either mode.
type Mode uint8

const (
	// Shared is a read grant.
	Shared Mode = 0
	// Exclusive is a write grant (the paper's original lock-group
	// semantics).
	Exclusive Mode = 1
)

func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// Record is one entry of the lock-group table: a group of ranges held
// by one owner in one mode.
type Record struct {
	Owner  string
	Mode   Mode
	Ranges []Range
}

// Invalidation is one entry of the table's coherence-event ring: an
// exclusive acquisition (or the revocation preceding one) over Ranges
// by Owner. Clients drain the ring through heartbeats and drop cached
// blocks — and revoked shared grants — covered by the ranges.
type Invalidation struct {
	Seq    uint64
	Owner  string // the acquiring owner (consumers skip their own)
	Ranges []Range
}

// BeatResult is the lock service's answer to one client heartbeat.
type BeatResult struct {
	// Known reports whether the table holds grants for the owner. A
	// client that believes it holds grants but gets Known=false lost its
	// lease (expired while partitioned) and must drop grants and cache.
	Known bool
	// Seq is the newest invalidation sequence on the server.
	Seq uint64
	// Reset means the client's ack cursor fell off the bounded event
	// ring: it missed invalidations and must drop all cached state.
	Reset bool
	// TTL is the server's lease term; clients derive their cache-serve
	// safety window from it.
	TTL time.Duration
	// Events are the invalidations after the client's ack cursor.
	Events []Invalidation
	// Released reports that the heartbeat's ack released revoked grants
	// (a replication trigger for the manager).
	Released bool
}

// eventRingCap bounds the invalidation ring. A client further behind
// than this gets a full reset instead of replayed events.
const eventRingCap = 1024

// fenceTTL bounds how long a pending exclusive acquisition keeps new
// shared grants out of its ranges while existing holders drain.
const fenceTTL = 5 * time.Second

// ownerState is everything the table tracks per owner.
type ownerState struct {
	shared []Range
	excl   []Range
	// expires is the lease deadline (zero when leases are disabled).
	// Renewed by heartbeats and successful acquisitions; an owner whose
	// lease lapses is dropped wholesale — the auto-release that keeps a
	// dead client from wedging its ranges forever.
	expires time.Time
	// revoked lists shared ranges a writer wants back, tagged with the
	// invalidation sequence announcing the revocation. They are released
	// when the owner's heartbeat acks that sequence (or the lease
	// expires).
	revoked []revocation
}

type revocation struct {
	seq uint64
	r   Range
}

// fence keeps new shared grants out of ranges a writer is draining, so
// a stream of readers cannot livelock the revocation.
type fence struct {
	rs    []Range
	until time.Time
}

// Table is the lock-group table of the consistency module. Grants are
// all-or-nothing and atomic: either every requested range is free of
// conflicts (or already held by the same owner) and the whole group is
// granted, or nothing changes. With a lease configured (SetLease),
// grants expire unless renewed by heartbeats, and exclusive requests
// revoke overlapping shared grants through the invalidation ring.
type Table struct {
	mu      sync.Mutex
	owners  map[string]*ownerState
	version uint64

	ttl time.Duration
	now func() time.Time

	seq     uint64
	events  []Invalidation
	fences  []fence
	expired uint64 // owners auto-released by lease expiry
}

// NewTable creates an empty lock-group table with leases disabled
// (grants live until released — the in-process, single-failure-domain
// configuration). Network lock services enable leases with SetLease.
func NewTable() *Table {
	return &Table{owners: map[string]*ownerState{}, now: time.Now}
}

// SetLease enables lease-based auto-release: grants expire ttl after
// their owner's last heartbeat or acquisition. A nil clock keeps the
// current one (tests inject a fake clock). ttl <= 0 disables leases.
func (t *Table) SetLease(ttl time.Duration, clock func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ttl = ttl
	if clock != nil {
		t.now = clock
	}
	if ttl > 0 {
		deadline := t.now().Add(ttl)
		for _, st := range t.owners {
			st.expires = deadline
		}
	}
}

// LeaseTTL reports the configured lease term (0 = leases disabled).
func (t *Table) LeaseTTL() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ttl
}

// expireLocked drops owners whose lease has lapsed and stale fences.
func (t *Table) expireLocked() {
	if t.ttl <= 0 {
		return
	}
	now := t.now()
	for owner, st := range t.owners {
		if !st.expires.IsZero() && now.After(st.expires) {
			delete(t.owners, owner)
			t.version++
			t.expired++
		}
	}
	if len(t.fences) > 0 {
		kept := t.fences[:0]
		for _, f := range t.fences {
			if now.Before(f.until) {
				kept = append(kept, f)
			}
		}
		t.fences = kept
	}
}

func (t *Table) touchLocked(st *ownerState) {
	if t.ttl > 0 {
		st.expires = t.now().Add(t.ttl)
	}
}

// appendEventLocked pushes one invalidation onto the bounded ring.
func (t *Table) appendEventLocked(owner string, rs []Range) uint64 {
	t.seq++
	cp := make([]Range, len(rs))
	copy(cp, rs)
	t.events = append(t.events, Invalidation{Seq: t.seq, Owner: owner, Ranges: cp})
	if len(t.events) > eventRingCap {
		t.events = append(t.events[:0], t.events[len(t.events)-eventRingCap:]...)
	}
	return t.seq
}

func overlapsAny(held []Range, rs []Range) bool {
	for _, h := range held {
		for _, r := range rs {
			if h.overlaps(r) {
				return true
			}
		}
	}
	return false
}

// TryAcquire atomically try-acquires an exclusive range group — the
// historical API; Acquire selects the mode.
func (t *Table) TryAcquire(owner string, rs []Range) bool {
	return t.Acquire(owner, Exclusive, rs)
}

// Acquire atomically grants the range group to owner in the given mode.
// It reports false (and grants nothing) on conflict. An exclusive
// request that conflicts only with shared holders additionally starts a
// revocation: an invalidation event is published, the ranges are fenced
// against new shared grants, and the shared grants are released when
// their holders ack the event (or their leases expire) — the caller
// retries until the range clears.
func (t *Table) Acquire(owner string, mode Mode, rs []Range) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()

	if mode == Shared {
		for _, f := range t.fences {
			if overlapsAny(f.rs, rs) {
				return false // a writer is draining these ranges
			}
		}
	}
	// Exclusive conflicts block either mode outright.
	for other, ost := range t.owners {
		if other == owner {
			continue
		}
		if overlapsAny(ost.excl, rs) {
			return false
		}
	}
	if mode == Exclusive {
		// Shared holders conflict too, but are revocable: publish one
		// invalidation covering the request, mark each holder, fence the
		// ranges, and fail the attempt — the grant lands once holders
		// ack via heartbeat or their leases lapse.
		var holders []*ownerState
		allMarked := true
		for other, ost := range t.owners {
			if other == owner {
				continue
			}
			if overlapsAny(ost.shared, rs) {
				holders = append(holders, ost)
				if !revokedCovers(ost.revoked, rs) {
					allMarked = false
				}
			}
		}
		if len(holders) > 0 {
			if !allMarked { // first conflicting attempt: announce it once
				seq := t.appendEventLocked(owner, rs)
				for _, ost := range holders {
					// Mark the holder's own grant ranges (acks release by
					// exact match against what was granted).
					for _, h := range ost.shared {
						if overlapsAny(rs, []Range{h}) && !revokedCovers(ost.revoked, []Range{h}) {
							ost.revoked = append(ost.revoked, revocation{seq: seq, r: h})
						}
					}
				}
				t.fences = append(t.fences, fence{rs: append([]Range(nil), rs...), until: t.now().Add(fenceTTL)})
			}
			return false
		}
	}

	st := t.owners[owner]
	if st == nil {
		st = &ownerState{}
		t.owners[owner] = st
	}
	if mode == Exclusive {
		st.excl = append(st.excl, rs...)
		t.appendEventLocked(owner, rs)
		// The writer got in; lift any fence it raised on the way.
		if len(t.fences) > 0 {
			kept := t.fences[:0]
			for _, f := range t.fences {
				if !overlapsAny(f.rs, rs) {
					kept = append(kept, f)
				}
			}
			t.fences = kept
		}
	} else {
		st.shared = append(st.shared, rs...)
	}
	t.touchLocked(st)
	t.version++
	return true
}

// revokedCovers reports whether every requested range already has a
// pending revocation entry (so a retrying writer does not republish).
func revokedCovers(revs []revocation, rs []Range) bool {
	for _, r := range rs {
		found := false
		for _, rv := range revs {
			if rv.r.overlaps(r) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func dropExact(held []Range, rs []Range) []Range {
	out := held[:0]
	for _, h := range held {
		drop := false
		for _, r := range rs {
			if h == r {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, h)
		}
	}
	return out
}

// Release atomically removes exactly the given ranges from owner's
// holdings in both modes (ranges must match grants; partial overlap is
// not split).
func (t *Table) Release(owner string, rs []Range) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	st := t.owners[owner]
	if st == nil {
		return
	}
	st.shared = dropExact(st.shared, rs)
	st.excl = dropExact(st.excl, rs)
	if len(st.revoked) > 0 {
		kept := st.revoked[:0]
		for _, rv := range st.revoked {
			released := false
			for _, r := range rs {
				if rv.r == r {
					released = true
					break
				}
			}
			if !released {
				kept = append(kept, rv)
			}
		}
		st.revoked = kept
	}
	if len(st.shared) == 0 && len(st.excl) == 0 {
		delete(t.owners, owner)
	}
	t.version++
}

// ReleaseAll drops every range held by owner (client disconnect).
func (t *Table) ReleaseAll(owner string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	if _, ok := t.owners[owner]; ok {
		delete(t.owners, owner)
		t.version++
	}
}

// Holds reports whether owner currently holds a range overlapping r in
// either mode.
func (t *Table) Holds(owner string, r Range) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	st := t.owners[owner]
	if st == nil {
		return false
	}
	return overlapsAny(st.shared, []Range{r}) || overlapsAny(st.excl, []Range{r})
}

// Beat is one client heartbeat: it renews owner's lease, releases any
// revoked shared grants the client has acked (lastSeq is the newest
// invalidation sequence the client processed), and returns the
// invalidations the client has not seen yet.
func (t *Table) Beat(owner string, lastSeq uint64) BeatResult {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()

	br := BeatResult{Seq: t.seq, TTL: t.ttl}
	if st, ok := t.owners[owner]; ok {
		br.Known = true
		t.touchLocked(st)
		if len(st.revoked) > 0 {
			kept := st.revoked[:0]
			for _, rv := range st.revoked {
				if rv.seq <= lastSeq {
					st.shared = dropExact(st.shared, []Range{rv.r})
					br.Released = true
				} else {
					kept = append(kept, rv)
				}
			}
			st.revoked = kept
			if br.Released {
				t.version++
				if len(st.shared) == 0 && len(st.excl) == 0 {
					delete(t.owners, owner)
				}
			}
		}
	}
	oldest := t.seq - uint64(len(t.events))
	switch {
	case lastSeq >= t.seq:
		// up to date
	case lastSeq < oldest:
		br.Reset = true
	default:
		for _, ev := range t.events {
			if ev.Seq > lastSeq {
				br.Events = append(br.Events, ev)
			}
		}
	}
	return br
}

// Version reports a counter incremented on every table mutation (used
// by replication).
func (t *Table) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Stats reports the table's size and lifetime auto-release count, for
// observability gauges.
func (t *Table) Stats() (owners, ranges int, expired uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range t.owners {
		ranges += len(st.shared) + len(st.excl)
	}
	return len(t.owners), ranges, t.expired
}

// Snapshot returns the table contents ordered by owner (exclusive
// grants before shared per owner), for replication and introspection.
// Lease and revocation bookkeeping is deliberately not replicated: a
// replica that takes over re-arms fresh leases on Install.
func (t *Table) Snapshot() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	owners := make([]string, 0, len(t.owners))
	for o := range t.owners {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	out := make([]Record, 0, len(owners))
	for _, o := range owners {
		st := t.owners[o]
		if len(st.excl) > 0 {
			rs := make([]Range, len(st.excl))
			copy(rs, st.excl)
			out = append(out, Record{Owner: o, Mode: Exclusive, Ranges: rs})
		}
		if len(st.shared) > 0 {
			rs := make([]Range, len(st.shared))
			copy(rs, st.shared)
			out = append(out, Record{Owner: o, Mode: Shared, Ranges: rs})
		}
	}
	return out
}

// Install replaces the table contents with a replicated snapshot.
func (t *Table) Install(version uint64, recs []Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if version <= t.version && t.version != 0 {
		return // stale replica
	}
	t.owners = map[string]*ownerState{}
	for _, rec := range recs {
		st := t.owners[rec.Owner]
		if st == nil {
			st = &ownerState{}
			t.owners[rec.Owner] = st
		}
		rs := make([]Range, len(rec.Ranges))
		copy(rs, rec.Ranges)
		if rec.Mode == Exclusive {
			st.excl = append(st.excl, rs...)
		} else {
			st.shared = append(st.shared, rs...)
		}
		t.touchLocked(st)
	}
	t.version = version
}
