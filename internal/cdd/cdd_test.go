package cdd

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/store"
)

func TestLockTableAtomicGrant(t *testing.T) {
	tb := NewTable()
	if !tb.TryAcquire("a", []Range{{0, 10}, {20, 30}}) {
		t.Fatal("first grant refused")
	}
	// Conflicting group: second range overlaps — nothing must change.
	if tb.TryAcquire("b", []Range{{50, 60}, {25, 26}}) {
		t.Fatal("conflicting group granted")
	}
	// The non-conflicting part must NOT have been kept.
	if !tb.TryAcquire("c", []Range{{50, 60}}) {
		t.Fatal("range leaked from failed atomic grant")
	}
}

func TestLockTableSameOwnerReentrant(t *testing.T) {
	tb := NewTable()
	if !tb.TryAcquire("a", []Range{{0, 10}}) {
		t.Fatal("grant refused")
	}
	if !tb.TryAcquire("a", []Range{{5, 15}}) {
		t.Fatal("same-owner overlap refused")
	}
	if tb.TryAcquire("b", []Range{{12, 13}}) {
		t.Fatal("conflict with extended range granted")
	}
}

func TestLockTableReleaseExact(t *testing.T) {
	tb := NewTable()
	tb.TryAcquire("a", []Range{{0, 10}, {20, 30}})
	tb.Release("a", []Range{{0, 10}})
	if tb.TryAcquire("b", []Range{{25, 26}}) {
		t.Fatal("still-held range granted to another owner")
	}
	if !tb.TryAcquire("b", []Range{{0, 10}}) {
		t.Fatal("released range not grantable")
	}
}

func TestLockTableReleaseAll(t *testing.T) {
	tb := NewTable()
	tb.TryAcquire("a", []Range{{0, 10}, {20, 30}})
	tb.ReleaseAll("a")
	if !tb.TryAcquire("b", []Range{{0, 30}}) {
		t.Fatal("ranges survived ReleaseAll")
	}
}

func TestLockTableSnapshotInstall(t *testing.T) {
	tb := NewTable()
	tb.TryAcquire("a", []Range{{0, 10}})
	tb.TryAcquire("b", []Range{{20, 30}})
	v, snap := tb.Version(), tb.Snapshot()

	replica := NewTable()
	replica.Install(v, snap)
	if replica.TryAcquire("c", []Range{{5, 6}}) {
		t.Fatal("replica granted a held range")
	}
	// Stale installs are ignored.
	replica.Install(v-1, nil)
	if replica.TryAcquire("c", []Range{{5, 6}}) {
		t.Fatal("stale install cleared the replica")
	}
}

// Property: mutual exclusion — after any sequence of try-acquires, no
// two distinct owners hold overlapping ranges.
func TestLockTableExclusionProperty(t *testing.T) {
	f := func(ops []struct {
		Owner   uint8
		Lo, Len uint8
		Release bool
	}) bool {
		tb := NewTable()
		for _, op := range ops {
			owner := string(rune('a' + op.Owner%4))
			r := Range{uint64(op.Lo), uint64(op.Lo) + uint64(op.Len%16) + 1}
			if op.Release {
				tb.Release(owner, []Range{r})
			} else {
				tb.TryAcquire(owner, []Range{r})
			}
		}
		recs := tb.Snapshot()
		for i, a := range recs {
			for _, ra := range a.Ranges {
				for j, b := range recs {
					if i == j {
						continue
					}
					for _, rb := range b.Ranges {
						if ra.overlaps(rb) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolRoundTrips(t *testing.T) {
	i := infoResp{Disks: 3, BlockSize: 4096, Blocks: 1 << 20}
	got, err := decodeInfo(encodeInfo(i))
	if err != nil || got != i {
		t.Fatalf("info: got %+v err %v", got, err)
	}
	h := ioHeader{Disk: 7, Block: 123456789, Count: 42}
	gh, data, err := decodeIOHeader(encodeIOHeader(h, []byte("payload")))
	if err != nil || gh != h || string(data) != "payload" {
		t.Fatalf("io header: got %+v %q err %v", gh, data, err)
	}
	m := lockMsg{Owner: "node3/client9", Ranges: []Range{{1, 2}, {100, 222}}}
	gm, err := decodeLockMsg(encodeLockMsg(m))
	if err != nil || gm.Owner != m.Owner || len(gm.Ranges) != 2 || gm.Ranges[1] != m.Ranges[1] {
		t.Fatalf("lock msg: got %+v err %v", gm, err)
	}
	recs := []Record{{Owner: "a", Ranges: []Range{{1, 5}}}, {Owner: "b", Ranges: nil}}
	v, gr, err := decodeSnapshot(encodeSnapshot(9, recs))
	if err != nil || v != 9 || len(gr) != 2 || gr[0].Owner != "a" {
		t.Fatalf("snapshot: got v=%d %+v err %v", v, gr, err)
	}
}

func TestProtocolRejectsTruncation(t *testing.T) {
	if _, err := decodeInfo([]byte{1, 2}); err == nil {
		t.Error("short info accepted")
	}
	if _, _, err := decodeIOHeader([]byte{1}); err == nil {
		t.Error("short io header accepted")
	}
	if _, err := decodeLockMsg([]byte{0, 0, 0, 9, 'a'}); err == nil {
		t.Error("truncated lock msg accepted")
	}
	if _, _, err := decodeSnapshot([]byte{1}); err == nil {
		t.Error("short snapshot accepted")
	}
}

// startNode launches a CDD node with k disks.
func startNode(t *testing.T, k int, blocks int64) *Node {
	t.Helper()
	disks := make([]*disk.Disk, k)
	for i := range disks {
		disks[i] = disk.New(nil, "d", store.NewMem(512, blocks), disk.DefaultModel())
	}
	n, err := ListenAndServe("127.0.0.1:0", disks)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestRemoteDevRoundTrip(t *testing.T) {
	n := startNode(t, 2, 32)
	c, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.NumDisks() != 2 {
		t.Fatalf("NumDisks = %d, want 2", c.NumDisks())
	}
	dev := c.Dev(1)
	ctx := context.Background()
	data := make([]byte, 3*512)
	rand.New(rand.NewSource(1)).Read(data)
	if err := dev.WriteBlocks(ctx, 4, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := dev.ReadBlocks(ctx, 4, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("remote round trip mismatch")
	}
}

func TestRemoteDevBackgroundWriteThenFlush(t *testing.T) {
	n := startNode(t, 1, 16)
	c, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dev := c.Dev(0)
	ctx := context.Background()
	data := bytes.Repeat([]byte{0xCD}, 512)
	if err := dev.WriteBlocksBackground(ctx, 2, data); err != nil {
		t.Fatal(err)
	}
	if err := dev.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := dev.ReadBlocks(ctx, 2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("background write lost")
	}
}

func TestRemoteFailureInjection(t *testing.T) {
	n := startNode(t, 1, 16)
	c, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dev := c.Dev(0)
	ctx := context.Background()
	if !dev.Healthy() {
		t.Fatal("fresh disk unhealthy")
	}
	if err := c.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	dev.InvalidateHealth()
	if dev.Healthy() {
		t.Fatal("failed disk reported healthy")
	}
	if err := dev.ReadBlocks(ctx, 0, make([]byte, 512)); err == nil {
		t.Fatal("read of failed remote disk succeeded")
	}
	if err := c.ReplaceDisk(0); err != nil {
		t.Fatal(err)
	}
	dev.InvalidateHealth()
	if !dev.Healthy() {
		t.Fatal("replaced disk reported unhealthy")
	}
}

func TestRemoteLockService(t *testing.T) {
	n := startNode(t, 1, 16)
	a, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ok, err := a.TryLock("clientA", []Range{{0, 100}})
	if err != nil || !ok {
		t.Fatalf("clientA lock: ok=%v err=%v", ok, err)
	}
	ok, err = b.TryLock("clientB", []Range{{50, 60}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("conflicting lock granted")
	}
	// Blocking acquire succeeds once A releases.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- b.Lock(ctx, "clientB", []Range{{50, 60}})
	}()
	time.Sleep(10 * time.Millisecond)
	if err := a.Unlock("clientA", []Range{{0, 100}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocking lock: %v", err)
	}
}

func TestLockReplication(t *testing.T) {
	// Two nodes; node 0 is the lock coordinator, node 1 holds a replica.
	n0 := startNode(t, 1, 16)
	n1 := startNode(t, 1, 16)
	peer, err := Connect(n1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	n0.Manager.AddPeer(peer.Transport())

	c, err := Connect(n0.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if ok, err := c.TryLock("w1", []Range{{7, 9}}); err != nil || !ok {
		t.Fatalf("lock: ok=%v err=%v", ok, err)
	}
	// Replication is a notification; wait for it to land.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n1.Manager.Locks().Holds("w1", Range{7, 9}) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lock record never replicated to peer")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Release must replicate too.
	if err := c.UnlockAll("w1"); err != nil {
		t.Fatal(err)
	}
	for {
		if !n1.Manager.Locks().Holds("w1", Range{7, 9}) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("release never replicated to peer")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRemoteStats(t *testing.T) {
	n := startNode(t, 1, 16)
	c, err := Connect(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dev := c.Dev(0)
	ctx := context.Background()
	if err := dev.WriteBlocks(ctx, 0, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := dev.ReadBlocks(ctx, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads != 1 || st.Writes != 1 || st.BytesRead != 512 || st.BytesWritten != 1024 || !st.Healthy {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := c.Stats(9); err == nil {
		t.Fatal("stats for missing disk succeeded")
	}
}
