package cdd

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/raid"
	"repro/internal/transport"
)

// NodeClient is the client module of a CDD: it connects to a remote
// storage manager and masquerades its disks as local devices.
type NodeClient struct {
	c    *transport.Client
	addr string
	info infoResp
}

// Connect dials a CDD node and fetches its disk inventory.
func Connect(addr string) (*NodeClient, error) {
	c, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	raw, err := c.Call(OpInfo, nil)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("cdd: info from %s: %w", addr, err)
	}
	info, err := decodeInfo(raw)
	if err != nil {
		c.Close()
		return nil, err
	}
	return &NodeClient{c: c, addr: addr, info: info}, nil
}

// Addr reports the remote node's address.
func (n *NodeClient) Addr() string { return n.addr }

// NumDisks reports how many disks the node exports.
func (n *NodeClient) NumDisks() int { return int(n.info.Disks) }

// Transport exposes the underlying connection (peer registration).
func (n *NodeClient) Transport() *transport.Client { return n.c }

// Close tears down the connection.
func (n *NodeClient) Close() error { return n.c.Close() }

// Dev returns the i-th remote disk as a raid.Dev.
func (n *NodeClient) Dev(i int) *RemoteDev {
	return &RemoteDev{
		n:         n,
		disk:      uint32(i),
		bs:        int(n.info.BlockSize),
		blocks:    n.info.Blocks,
		healthTTL: 100 * time.Millisecond,
	}
}

// Devs returns all of the node's disks as raid.Devs.
func (n *NodeClient) Devs() []raid.Dev {
	out := make([]raid.Dev, n.NumDisks())
	for i := range out {
		out[i] = n.Dev(i)
	}
	return out
}

// FailDisk injects a failure into a remote disk (fault drills).
func (n *NodeClient) FailDisk(i int) error {
	_, err := n.c.Call(OpFail, encodeIOHeader(ioHeader{Disk: uint32(i)}, nil))
	return err
}

// ReplaceDisk installs a blank replacement for a remote disk.
func (n *NodeClient) ReplaceDisk(i int) error {
	_, err := n.c.Call(OpReplace, encodeIOHeader(ioHeader{Disk: uint32(i)}, nil))
	return err
}

// DiskStats holds a remote disk's cumulative counters.
type DiskStats struct {
	Reads, Writes, BytesRead, BytesWritten int64
	Healthy                                bool
}

// Stats fetches a remote disk's counters.
func (n *NodeClient) Stats(i int) (DiskStats, error) {
	raw, err := n.c.Call(OpStats, encodeIOHeader(ioHeader{Disk: uint32(i)}, nil))
	if err != nil {
		return DiskStats{}, err
	}
	r, err := decodeStats(raw)
	if err != nil {
		return DiskStats{}, err
	}
	return DiskStats(r), nil
}

// TryLock atomically try-acquires a range group on this node's lock
// service.
func (n *NodeClient) TryLock(owner string, rs []Range) (bool, error) {
	resp, err := n.c.Call(OpLock, encodeLockMsg(lockMsg{Owner: owner, Ranges: rs}))
	if err != nil {
		return false, err
	}
	return len(resp) == 1 && resp[0] == 1, nil
}

// Lock acquires a range group, retrying with backoff until granted or
// the context is cancelled.
func (n *NodeClient) Lock(ctx context.Context, owner string, rs []Range) error {
	backoff := time.Millisecond
	for {
		ok, err := n.TryLock(owner, rs)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 32*time.Millisecond {
			backoff *= 2
		}
	}
}

// Unlock releases a range group.
func (n *NodeClient) Unlock(owner string, rs []Range) error {
	_, err := n.c.Call(OpUnlock, encodeLockMsg(lockMsg{Owner: owner, Ranges: rs}))
	return err
}

// UnlockAll releases everything held by owner.
func (n *NodeClient) UnlockAll(owner string) error {
	_, err := n.c.Call(OpUnlockAll, encodeLockMsg(lockMsg{Owner: owner}))
	return err
}

// LockSnapshot fetches the node's replica of the lock-group table.
func (n *NodeClient) LockSnapshot() (uint64, []Record, error) {
	raw, err := n.c.Call(OpLockSnapshot, nil)
	if err != nil {
		return 0, nil, err
	}
	return decodeSnapshot(raw)
}

// RemoteDev is a remote disk masquerading as a local device. It
// implements raid.Dev, so array engines can be built transparently over
// any mix of local and remote disks — the essence of the SIOS.
type RemoteDev struct {
	n      *NodeClient
	disk   uint32
	bs     int
	blocks int64

	healthTTL time.Duration
	hmu       sync.Mutex
	healthy   bool
	checked   time.Time
}

var _ raid.Dev = (*RemoteDev)(nil)

// BlockSize implements raid.Dev.
func (d *RemoteDev) BlockSize() int { return d.bs }

// NumBlocks implements raid.Dev.
func (d *RemoteDev) NumBlocks() int64 { return d.blocks }

// ReadBlocks implements raid.Dev.
func (d *RemoteDev) ReadBlocks(_ context.Context, b int64, buf []byte) error {
	if len(buf)%d.bs != 0 {
		return fmt.Errorf("cdd: buffer length %d not a multiple of %d", len(buf), d.bs)
	}
	resp, err := d.n.c.Call(OpRead, encodeIOHeader(ioHeader{
		Disk: d.disk, Block: b, Count: uint32(len(buf) / d.bs),
	}, nil))
	if err != nil {
		d.noteOutcome(err)
		return err
	}
	if len(resp) != len(buf) {
		return fmt.Errorf("cdd: short read: %d of %d bytes", len(resp), len(buf))
	}
	copy(buf, resp)
	return nil
}

// WriteBlocks implements raid.Dev.
func (d *RemoteDev) WriteBlocks(_ context.Context, b int64, data []byte) error {
	_, err := d.n.c.Call(OpWrite, encodeIOHeader(ioHeader{Disk: d.disk, Block: b}, data))
	d.noteOutcome(err)
	return err
}

// WriteBlocksBackground implements raid.Dev: the write travels as a
// notification, so the caller does not wait for the remote disk. A
// later Flush or Call on the same connection orders after it.
func (d *RemoteDev) WriteBlocksBackground(_ context.Context, b int64, data []byte) error {
	return d.n.c.Notify(OpWriteBG, encodeIOHeader(ioHeader{Disk: d.disk, Block: b}, data))
}

// Flush implements raid.Dev.
func (d *RemoteDev) Flush(_ context.Context) error {
	_, err := d.n.c.Call(OpFlush, encodeIOHeader(ioHeader{Disk: d.disk}, nil))
	d.noteOutcome(err)
	return err
}

// Healthy implements raid.Dev. The answer is cached briefly (healthTTL)
// to keep engine health sweeps from flooding the network; InvalidateHealth
// forces the next call to re-check.
func (d *RemoteDev) Healthy() bool {
	d.hmu.Lock()
	if !d.checked.IsZero() && time.Since(d.checked) < d.healthTTL {
		h := d.healthy
		d.hmu.Unlock()
		return h
	}
	d.hmu.Unlock()
	resp, err := d.n.c.Call(OpHealth, encodeIOHeader(ioHeader{Disk: d.disk}, nil))
	h := err == nil && len(resp) == 1 && resp[0] == 1
	d.hmu.Lock()
	d.healthy = h
	d.checked = time.Now()
	d.hmu.Unlock()
	return h
}

// InvalidateHealth drops the cached health state.
func (d *RemoteDev) InvalidateHealth() {
	d.hmu.Lock()
	d.checked = time.Time{}
	d.hmu.Unlock()
}

// noteOutcome updates the cached health from an operation result: a
// remote disk-failed error marks the device unhealthy immediately.
func (d *RemoteDev) noteOutcome(err error) {
	if err == nil {
		return
	}
	// Disk failures render as "disk <id>: failed" (disk.FailedError).
	if re, ok := err.(*transport.RemoteError); ok && strings.Contains(re.Msg, "failed") {
		d.hmu.Lock()
		d.healthy = false
		d.checked = time.Now()
		d.hmu.Unlock()
	}
}
