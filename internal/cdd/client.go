package cdd

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"repro/internal/obs"
	"repro/internal/raid"
	"repro/internal/trace"
	"repro/internal/transport"
)

// RetryPolicy governs per-attempt deadlines and retry/backoff for
// remote operations. Retries apply only to idempotent opcodes (block
// reads/writes/flushes, health, stats, info — see retryableOp) and only
// to transport-level failures: a RemoteError proves the server handled
// the request, so it is returned as-is.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per operation (>= 1).
	MaxAttempts int
	// CallTimeout bounds each attempt. Zero disables per-attempt
	// deadlines (the caller's context still applies).
	CallTimeout time.Duration
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff, with ±50% jitter.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff.
	MaxBackoff time.Duration
	// ProbeInterval paces the heartbeat that re-probes a suspect node
	// until it recovers.
	ProbeInterval time.Duration
	// MinBandwidth (bytes/sec) extends the per-attempt deadline for
	// bulk transfers: an attempt moving b bytes gets CallTimeout +
	// b/MinBandwidth. Without it a fixed CallTimeout spuriously cuts
	// down multi-megabyte reads/writes — and an abandoned call tears
	// down the shared session, failing innocent concurrent operations.
	MinBandwidth int64
}

// DefaultRetryPolicy is the production default: four attempts, 2 s per
// attempt, 10 ms → 500 ms backoff, 250 ms heartbeat.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   4,
		CallTimeout:   2 * time.Second,
		BaseBackoff:   10 * time.Millisecond,
		MaxBackoff:    500 * time.Millisecond,
		ProbeInterval: 250 * time.Millisecond,
		MinBandwidth:  4 << 20, // 4 MiB/s floor for bulk-transfer deadlines
	}
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.CallTimeout <= 0 {
		p.CallTimeout = def.CallTimeout
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = def.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = def.MaxBackoff
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = def.ProbeInterval
	}
	if p.MinBandwidth <= 0 {
		p.MinBandwidth = def.MinBandwidth
	}
	return p
}

// retryableOp reports whether an opcode may be re-sent after a
// transport failure. Block reads and whole-block writes are idempotent
// (rewriting the same blocks converges to the same state), as are
// flush, health, stats, info, snapshot fetch, and lock releases.
// OpLock is excluded: a grant whose response was lost would be
// double-recorded by a blind resend.
func retryableOp(op uint8) bool {
	switch op {
	case OpInfo, OpRead, OpWrite, OpFlush, OpHealth, OpStats,
		OpLockSnapshot, OpUnlock, OpUnlockAll, OpFail, OpReplace,
		OpObsSnapshot, OpTraceSpans,
		OpIntentPut, OpIntentGet, OpRepairStatus, OpRepairCtl,
		OpCoherence,
		OpReadEpoch, OpWriteEpoch, OpLayout, OpEpochSet:
		// OpRebalanceCtl is excluded like OpLock: a start whose response
		// was lost would double-begin and bounce off ErrRebalanceActive.
		return true
	}
	return false
}

// retryableErr reports whether an error is worth retrying: transport
// breakage, per-attempt deadline expiry (surfacing as
// context.DeadlineExceeded while the caller's own context is still
// live — doCall checks ctx.Err() first), and injected faults are;
// remote application errors, response-size mismatches (the peer
// answered — just wrongly), and caller cancellation are not.
func retryableErr(err error) bool {
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return false
	}
	var rse *transport.RespSizeError
	if errors.As(err, &rse) {
		return false
	}
	if errors.Is(err, transport.ErrClosed) || errors.Is(err, transport.ErrFrameTooLarge) {
		return false
	}
	// Cancellation is the caller's decision, never a transient fault —
	// even when it arrives wrapped by an injected dialer rather than
	// through the ctx.Err() check in doCall.
	if errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// ioScratch is the per-call assembly area of one remote block
// operation: the wire-encoded I/O header plus reusable gather/scatter
// lists. Pooled so the hot path allocates nothing for framing; release
// drops payload references before returning it to the pool.
type ioScratch struct {
	hdr [ioHeaderLen]byte
	tag [epochTagLen]byte
	req [][]byte
	dst [][]byte
}

var ioScratchPool = sync.Pool{New: func() any { return new(ioScratch) }}

// getIOScratch returns a scratch with the header encoded and installed
// as the request's first gather segment.
func getIOScratch(h ioHeader) *ioScratch {
	s := ioScratchPool.Get().(*ioScratch)
	putIOHeader(&s.hdr, h)
	s.req = append(s.req[:0], s.hdr[:])
	s.dst = s.dst[:0]
	return s
}

// tagEpoch prepends the epoch generation as the request's first gather
// segment. The segment aliases s.tag, so tagging costs no allocation.
func (s *ioScratch) tagEpoch(gen uint64) {
	binary.BigEndian.PutUint64(s.tag[:], gen)
	s.req = append(s.req, nil)
	copy(s.req[1:], s.req)
	s.req[0] = s.tag[:]
}

func (s *ioScratch) release() {
	clear(s.req)
	clear(s.dst)
	ioScratchPool.Put(s)
}

// Options tune a node connection.
type Options struct {
	// Retry is the retry/deadline policy; zero fields take defaults.
	Retry RetryPolicy
	// Dialer overrides the raw connection factory (fault injection).
	Dialer transport.DialFunc
	// DialTimeout bounds each (re)connection attempt.
	DialTimeout time.Duration
	// Obs, when non-nil, receives the connection's metrics: retry and
	// backoff counters, probe outcomes, per-op latency histograms,
	// suspect/re-admission events, and the transport-level counters.
	Obs *obs.Registry
}

// clientMetrics are a node connection's instruments, resolved once at
// Connect; without a registry every field is nil and every update a
// no-op.
type clientMetrics struct {
	retries   *obs.Counter
	backoffNS *obs.Counter
	probeOK   *obs.Counter
	probeFail *obs.Counter
	suspects  *obs.Counter
	readmits  *obs.Counter
	readLat   *obs.Histogram
	writeLat  *obs.Histogram
	flushLat  *obs.Histogram
	events    *obs.EventLog
}

func newClientMetrics(r *obs.Registry) clientMetrics {
	if r == nil {
		return clientMetrics{}
	}
	return clientMetrics{
		retries:   r.Counter("cdd.retries"),
		backoffNS: r.Counter("cdd.backoff_ns"),
		probeOK:   r.Counter("cdd.probe_ok"),
		probeFail: r.Counter("cdd.probe_fail"),
		suspects:  r.Counter("cdd.suspects"),
		readmits:  r.Counter("cdd.readmits"),
		readLat:   r.Histogram("cdd.read_latency"),
		writeLat:  r.Histogram("cdd.write_latency"),
		flushLat:  r.Histogram("cdd.flush_latency"),
		events:    r.Events(),
	}
}

// NodeClient is the client module of a CDD: it connects to a remote
// storage manager and masquerades its disks as local devices.
type NodeClient struct {
	c      *transport.Client
	addr   string
	info   infoResp
	policy RetryPolicy
	met    clientMetrics
	closed atomic.Bool

	// arrayEpoch, when non-zero, tags every block I/O with the layout
	// epoch generation the client's placement map was built from (see
	// epoch.go). A stale-epoch rejection surfaces typed: recovery means
	// rebuilding the placement map, never re-tagging the same request.
	arrayEpoch atomic.Uint64
}

// Connect dials a CDD node with default options and fetches its disk
// inventory.
func Connect(addr string) (*NodeClient, error) {
	return ConnectWith(context.Background(), addr, Options{})
}

// ConnectWith dials a CDD node with explicit fault-tolerance options;
// ctx bounds the initial connection and inventory fetch.
func ConnectWith(ctx context.Context, addr string, opts Options) (*NodeClient, error) {
	c, err := transport.DialWith(ctx, addr, transport.DialOptions{
		DialTimeout: opts.DialTimeout,
		Dialer:      opts.Dialer,
		Obs:         opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	n := &NodeClient{c: c, addr: addr, policy: opts.Retry.withDefaults(), met: newClientMetrics(opts.Obs)}
	raw, err := n.call(ctx, OpInfo, nil)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("cdd: info from %s: %w", addr, err)
	}
	info, err := decodeInfo(raw)
	if err != nil {
		c.Close()
		return nil, err
	}
	n.info = info
	return n, nil
}

// call performs one remote operation under the retry policy: a
// per-attempt deadline, exponential backoff with jitter between
// attempts, and retries only for idempotent opcodes on transport-level
// failures.
func (n *NodeClient) call(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
	return n.doCall(ctx, op, [][]byte{payload}, nil, 0)
}

// doCall performs one remote operation under the retry policy. req is
// the request's gather list (written vectored, owned by the caller
// throughout). When scatter is non-empty the response lands directly in
// its segments — the bulk-read path — and the returned payload is nil;
// the per-attempt deadline then scales with respBytes, the expected
// response size, in addition to the request bytes.
func (n *NodeClient) doCall(ctx context.Context, op uint8, req [][]byte, scatter [][]byte, respBytes int) ([]byte, error) {
	pol := n.policy
	attempts := pol.MaxAttempts
	if !retryableOp(op) {
		attempts = 1
	}
	reqBytes := 0
	for _, s := range req {
		reqBytes += len(s)
	}
	timeout := pol.CallTimeout
	if xfer := int64(reqBytes + respBytes); timeout > 0 && xfer > 0 && pol.MinBandwidth > 0 {
		timeout += time.Duration(xfer * int64(time.Second) / pol.MinBandwidth)
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			n.met.retries.Inc()
			n.met.events.Append(obs.EventRetry, n.addr, fmt.Sprintf("op %d attempt %d: %v", op, a+1, lastErr))
			delay := backoffDelay(pol, a)
			n.met.backoffNS.Add(int64(delay))
			if err := sleepCtx(ctx, delay); err != nil {
				return nil, err
			}
		}
		// The per-attempt deadline travels as a plain time.Time instead
		// of a context.WithTimeout wrapper: the transport arms it as a
		// socket deadline plus a pooled timer, so a timed attempt costs
		// zero heap allocations (DESIGN.md §10).
		var dl time.Time
		if timeout > 0 {
			dl = time.Now().Add(timeout)
		}
		// One span per attempt: retries show up as sibling spans with
		// the attempt number, so backoff gaps are visible in waterfalls.
		actx, ah := trace.Start(ctx, "cdd.attempt", n.addr)
		ah.Val = int64(a + 1)
		var resp []byte
		var err error
		if len(scatter) > 0 {
			err = n.c.CallScatterDeadline(actx, op, req, scatter, dl)
		} else {
			resp, err = n.c.CallVecDeadline(actx, op, req, dl)
		}
		ah.End(err)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The caller's own deadline/cancellation — do not mask it
			// with a retries-exhausted wrapper.
			return nil, err
		}
		if !retryableErr(err) {
			// A stale-epoch rejection is deliberately NOT retried here:
			// the physical (disk, block) in this request was computed
			// from the retired epoch's placement map, so re-tagging and
			// resending the same bytes would read the wrong block — or
			// write to a dead home with an accepted tag. The typed error
			// surfaces to a layer that can rebuild the layout and
			// recompute placements (see epoch.go).
			return nil, err
		}
	}
	if attempts > 1 {
		return nil, fmt.Errorf("cdd: %s: giving up after %d attempts: %w", n.addr, attempts, lastErr)
	}
	return nil, lastErr
}

// backoffDelay is pol.BaseBackoff doubled per retry, capped at
// MaxBackoff, with ±50% jitter to keep retry storms from synchronizing.
func backoffDelay(pol RetryPolicy, attempt int) time.Duration {
	d := pol.BaseBackoff << (attempt - 1)
	if d > pol.MaxBackoff || d <= 0 {
		d = pol.MaxBackoff
	}
	half := int64(d) / 2
	if half > 0 {
		d = time.Duration(half + rand.Int63n(int64(d)))
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Addr reports the remote node's address.
func (n *NodeClient) Addr() string { return n.addr }

// NumDisks reports how many disks the node exports.
func (n *NodeClient) NumDisks() int { return int(n.info.Disks) }

// Policy reports the connection's retry policy.
func (n *NodeClient) Policy() RetryPolicy { return n.policy }

// Transport exposes the underlying connection (peer registration).
func (n *NodeClient) Transport() *transport.Client { return n.c }

// Close tears down the connection and stops any heartbeat probes.
func (n *NodeClient) Close() error {
	n.closed.Store(true)
	return n.c.Close()
}

// Dev returns the i-th remote disk as a raid.Dev. The device starts
// optimistically healthy (the node just answered OpInfo), so the first
// health sweep of an engine's planning loop never blocks on a probe.
func (n *NodeClient) Dev(i int) *RemoteDev {
	return &RemoteDev{
		n:         n,
		disk:      uint32(i),
		bs:        int(n.info.BlockSize),
		blocks:    n.info.Blocks,
		subject:   fmt.Sprintf("%s/d%d", n.addr, i),
		healthTTL: 100 * time.Millisecond,
		healthy:   true,
		checked:   time.Now(),
	}
}

// Devs returns all of the node's disks as raid.Devs.
func (n *NodeClient) Devs() []raid.Dev {
	out := make([]raid.Dev, n.NumDisks())
	for i := range out {
		out[i] = n.Dev(i)
	}
	return out
}

// FailDisk injects a failure into a remote disk (fault drills).
func (n *NodeClient) FailDisk(i int) error {
	_, err := n.call(context.Background(), OpFail, encodeIOHeader(ioHeader{Disk: uint32(i)}, nil))
	return err
}

// ReplaceDisk installs a blank replacement for a remote disk.
func (n *NodeClient) ReplaceDisk(i int) error {
	_, err := n.call(context.Background(), OpReplace, encodeIOHeader(ioHeader{Disk: uint32(i)}, nil))
	return err
}

// DiskStats holds a remote disk's cumulative counters.
type DiskStats struct {
	Reads, Writes, BytesRead, BytesWritten int64
	Healthy                                bool
}

// Stats fetches a remote disk's counters.
func (n *NodeClient) Stats(i int) (DiskStats, error) {
	raw, err := n.call(context.Background(), OpStats, encodeIOHeader(ioHeader{Disk: uint32(i)}, nil))
	if err != nil {
		return DiskStats{}, err
	}
	r, err := decodeStats(raw)
	if err != nil {
		return DiskStats{}, err
	}
	return DiskStats(r), nil
}

// TryLock atomically try-acquires an exclusive range group on this
// node's lock service.
func (n *NodeClient) TryLock(owner string, rs []Range) (bool, error) {
	return n.TryLockMode(context.Background(), owner, Exclusive, rs)
}

// TryLockMode atomically try-acquires a range group in the given mode.
func (n *NodeClient) TryLockMode(ctx context.Context, owner string, mode Mode, rs []Range) (bool, error) {
	resp, err := n.call(ctx, OpLock, encodeLockMsg(lockMsg{Owner: owner, Mode: mode, Ranges: rs}))
	if err != nil {
		return false, err
	}
	return len(resp) == 1 && resp[0] == 1, nil
}

// Lock acquires an exclusive range group, retrying with backoff until
// granted or the context is cancelled.
func (n *NodeClient) Lock(ctx context.Context, owner string, rs []Range) error {
	return n.LockMode(ctx, owner, Exclusive, rs)
}

// LockMode acquires a range group in the given mode, retrying with
// backoff until granted or the context is cancelled. An exclusive
// request blocked by shared holders keeps retrying while the service
// revokes and drains them.
func (n *NodeClient) LockMode(ctx context.Context, owner string, mode Mode, rs []Range) error {
	backoff := time.Millisecond
	for {
		ok, err := n.TryLockMode(ctx, owner, mode, rs)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 32*time.Millisecond {
			backoff *= 2
		}
	}
}

// Beat sends one coherence heartbeat: it renews owner's lease on the
// node's lock service, acks invalidations up to lastSeq, and returns
// the events the client has not processed yet. Sessions drive this
// automatically; it is exported for hand-rolled coherence loops.
func (n *NodeClient) Beat(ctx context.Context, owner string, lastSeq uint64) (BeatResult, error) {
	raw, err := n.call(ctx, OpCoherence, encodeBeat(beatMsg{Owner: owner, LastSeq: lastSeq}))
	if err != nil {
		return BeatResult{}, err
	}
	return decodeBeatResult(raw)
}

// Unlock releases a range group.
func (n *NodeClient) Unlock(owner string, rs []Range) error {
	_, err := n.call(context.Background(), OpUnlock, encodeLockMsg(lockMsg{Owner: owner, Ranges: rs}))
	return err
}

// UnlockAll releases everything held by owner.
func (n *NodeClient) UnlockAll(owner string) error {
	_, err := n.call(context.Background(), OpUnlockAll, encodeLockMsg(lockMsg{Owner: owner}))
	return err
}

// ObsSnapshot fetches the remote node's observability registry:
// per-disk gauges, served-op counters, and the node's event log.
func (n *NodeClient) ObsSnapshot(ctx context.Context) (obs.Snapshot, error) {
	raw, err := n.call(ctx, OpObsSnapshot, nil)
	if err != nil {
		return obs.Snapshot{}, err
	}
	return obs.DecodeSnapshot(raw)
}

// TraceSpans fetches the remote node's recent trace spans — the
// server-side legs (manager handlers, disk ops) of traces this client
// originated, ready to Merge into locally-assembled traces.
func (n *NodeClient) TraceSpans(ctx context.Context) ([]trace.Span, error) {
	raw, err := n.call(ctx, OpTraceSpans, nil)
	if err != nil {
		return nil, err
	}
	var spans []trace.Span
	if err := json.Unmarshal(raw, &spans); err != nil {
		return nil, fmt.Errorf("cdd: bad trace spans from %s: %w", n.addr, err)
	}
	return spans, nil
}

// PutIntent replicates a write-intent snapshot to the node under key
// (the array name). Idempotent: re-sending the same snapshot is a
// no-op, so it retries like any other write.
func (n *NodeClient) PutIntent(ctx context.Context, key string, snap []byte) error {
	_, err := n.call(ctx, OpIntentPut, encodeKeyed(key, snap))
	return err
}

// GetIntent fetches the write-intent snapshot the node holds under key
// (nil when it has none) — the crash-recovery read on array startup.
func (n *NodeClient) GetIntent(ctx context.Context, key string) ([]byte, error) {
	raw, err := n.call(ctx, OpIntentGet, encodeKeyed(key, nil))
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, nil
	}
	return raw, nil
}

// RepairStatus fetches the node's repair-supervisor status as JSON.
func (n *NodeClient) RepairStatus(ctx context.Context) ([]byte, error) {
	return n.call(ctx, OpRepairStatus, nil)
}

// RepairPause pauses the node's repair supervisor.
func (n *NodeClient) RepairPause(ctx context.Context) error {
	_, err := n.call(ctx, OpRepairCtl, []byte{repairCtlPause})
	return err
}

// RepairResume resumes the node's repair supervisor.
func (n *NodeClient) RepairResume(ctx context.Context) error {
	_, err := n.call(ctx, OpRepairCtl, []byte{repairCtlResume})
	return err
}

// LockSnapshot fetches the node's replica of the lock-group table.
func (n *NodeClient) LockSnapshot() (uint64, []Record, error) {
	raw, err := n.call(context.Background(), OpLockSnapshot, nil)
	if err != nil {
		return 0, nil, err
	}
	return decodeSnapshot(raw)
}

// RemoteDev is a remote disk masquerading as a local device. It
// implements raid.Dev, so array engines can be built transparently over
// any mix of local and remote disks — the essence of the SIOS.
//
// Fault handling: every operation runs under the node's RetryPolicy
// (per-attempt deadline, bounded retries). An operation that still
// fails at the transport level marks the device *suspect* — Healthy()
// reports false without further network traffic while a background
// heartbeat re-probes the node, re-admitting it once it answers again.
type RemoteDev struct {
	n       *NodeClient
	disk    uint32
	bs      int
	blocks  int64
	subject string // event-log identity: "addr/dN"

	healthTTL time.Duration
	hmu       sync.Mutex
	healthy   bool
	checked   time.Time
	probing   bool // heartbeat goroutine active (device is suspect)
	// refresh is non-nil while a single-flight health probe is in
	// flight; it closes when the probe lands. Concurrent callers at TTL
	// expiry share the one probe instead of racing to issue duplicates.
	refresh chan struct{}
}

var (
	_ raid.Dev    = (*RemoteDev)(nil)
	_ raid.VecDev = (*RemoteDev)(nil)
)

// BlockSize implements raid.Dev.
func (d *RemoteDev) BlockSize() int { return d.bs }

// NumBlocks implements raid.Dev.
func (d *RemoteDev) NumBlocks() int64 { return d.blocks }

// ReadBlocks implements raid.Dev. The response scatters off the socket
// directly into buf — no intermediate allocation or copy on the way
// back (the zero-copy read path of DESIGN.md §10).
func (d *RemoteDev) ReadBlocks(ctx context.Context, b int64, buf []byte) (err error) {
	if len(buf)%d.bs != 0 {
		return fmt.Errorf("cdd: buffer length %d not a multiple of %d", len(buf), d.bs)
	}
	ctx, h := trace.Start(ctx, "cdd.read", d.subject)
	h.Val = int64(len(buf))
	defer func() { h.End(err) }()
	start := time.Now()
	op := OpRead
	s := getIOScratch(ioHeader{Disk: d.disk, Block: b, Count: uint32(len(buf) / d.bs)})
	if gen := d.n.arrayEpoch.Load(); gen > 0 {
		op = OpReadEpoch
		s.tagEpoch(gen)
	}
	if len(buf) > 0 {
		s.dst = append(s.dst, buf)
	}
	_, err = d.n.doCall(ctx, op, s.req, s.dst, len(buf))
	s.release()
	d.n.met.readLat.Observe(time.Since(start))
	if err != nil {
		err = d.mapReadErr(err)
		d.noteOutcome(err)
		return err
	}
	return nil
}

// ReadBlocksVec implements raid.VecDev: one remote read whose response
// scatters into the given segments (consecutive blocks on this disk,
// each segment a positive multiple of the block size).
func (d *RemoteDev) ReadBlocksVec(ctx context.Context, b int64, segs [][]byte) (err error) {
	total := 0
	for _, sg := range segs {
		total += len(sg)
	}
	if total == 0 || total%d.bs != 0 {
		return fmt.Errorf("cdd: scatter length %d not a positive multiple of %d", total, d.bs)
	}
	ctx, h := trace.Start(ctx, "cdd.read", d.subject)
	h.Val = int64(total)
	defer func() { h.End(err) }()
	start := time.Now()
	op := OpRead
	s := getIOScratch(ioHeader{Disk: d.disk, Block: b, Count: uint32(total / d.bs)})
	if gen := d.n.arrayEpoch.Load(); gen > 0 {
		op = OpReadEpoch
		s.tagEpoch(gen)
	}
	s.dst = append(s.dst, segs...)
	_, err = d.n.doCall(ctx, op, s.req, s.dst, total)
	s.release()
	d.n.met.readLat.Observe(time.Since(start))
	if err != nil {
		err = d.mapReadErr(err)
		d.noteOutcome(err)
		return err
	}
	return nil
}

// mapReadErr rewrites a response-size mismatch as the short-read
// protocol fault health tracking knows; other errors pass through.
func (d *RemoteDev) mapReadErr(err error) error {
	var rse *transport.RespSizeError
	if errors.As(err, &rse) {
		// A short read is a protocol-level fault from this peer: it must
		// feed health tracking like any other failure, or a node that
		// truncates responses keeps being treated as a good copy.
		return fmt.Errorf("cdd: short read: %d of %d bytes", rse.Got, rse.Want)
	}
	return err
}

// WriteBlocks implements raid.Dev. The I/O header and the caller's data
// travel as separate gather segments of one vectored frame write — the
// payload is never copied into a staging buffer.
func (d *RemoteDev) WriteBlocks(ctx context.Context, b int64, data []byte) error {
	ctx, h := trace.Start(ctx, "cdd.write", d.subject)
	h.Val = int64(len(data))
	start := time.Now()
	op := OpWrite
	s := getIOScratch(ioHeader{Disk: d.disk, Block: b})
	if len(data) > 0 {
		s.req = append(s.req, data)
	}
	if gen := d.n.arrayEpoch.Load(); gen > 0 {
		op = OpWriteEpoch
		s.tagEpoch(gen)
	}
	_, err := d.n.doCall(ctx, op, s.req, nil, 0)
	s.release()
	d.n.met.writeLat.Observe(time.Since(start))
	h.End(err)
	d.noteOutcome(err)
	return err
}

// WriteBlocksVec implements raid.VecDev: one remote write gathered from
// the given segments (consecutive blocks on this disk), all segments
// going to the wire as one vectored frame.
func (d *RemoteDev) WriteBlocksVec(ctx context.Context, b int64, segs [][]byte) error {
	total := 0
	for _, sg := range segs {
		total += len(sg)
	}
	ctx, h := trace.Start(ctx, "cdd.write", d.subject)
	h.Val = int64(total)
	start := time.Now()
	op := OpWrite
	s := getIOScratch(ioHeader{Disk: d.disk, Block: b})
	s.req = append(s.req, segs...)
	if gen := d.n.arrayEpoch.Load(); gen > 0 {
		op = OpWriteEpoch
		s.tagEpoch(gen)
	}
	_, err := d.n.doCall(ctx, op, s.req, nil, 0)
	s.release()
	d.n.met.writeLat.Observe(time.Since(start))
	h.End(err)
	d.noteOutcome(err)
	return err
}

// WriteBlocksBackground implements raid.Dev: the write travels as a
// notification, so the caller does not wait for the remote disk. A
// later Flush or Call on the same connection orders after it.
func (d *RemoteDev) WriteBlocksBackground(ctx context.Context, b int64, data []byte) error {
	ctx, h := trace.Start(ctx, "cdd.bg-write", d.subject)
	h.Val = int64(len(data))
	op := OpWriteBG
	s := getIOScratch(ioHeader{Disk: d.disk, Block: b})
	if len(data) > 0 {
		s.req = append(s.req, data)
	}
	if gen := d.n.arrayEpoch.Load(); gen > 0 {
		// Tagged notification: a stale background mirror push is dropped
		// by the node instead of landing at a retired home. The node
		// counts the drop (mgr.bg_stale_drops) and the writer's intent
		// log keeps the block dirty, so resync re-mirrors it later.
		op = OpWriteBGEpoch
		s.tagEpoch(gen)
	}
	err := d.n.c.NotifyVec(ctx, op, s.req)
	s.release()
	h.End(err)
	d.noteOutcome(err)
	return err
}

// Flush implements raid.Dev.
func (d *RemoteDev) Flush(ctx context.Context) error {
	ctx, h := trace.Start(ctx, "cdd.flush", d.subject)
	start := time.Now()
	_, err := d.n.call(ctx, OpFlush, encodeIOHeader(ioHeader{Disk: d.disk}, nil))
	d.n.met.flushLat.Observe(time.Since(start))
	h.End(err)
	d.noteOutcome(err)
	return err
}

// Healthy implements raid.Dev. The answer is cached briefly (healthTTL)
// to keep engine health sweeps from flooding the network; while the
// device is suspect the cached answer (false) is served without any
// network traffic and the heartbeat probe is the only thing touching
// the peer.
//
// When the cache has merely expired, Healthy serves the stale answer
// immediately and refreshes it with ONE background probe shared by all
// concurrent callers — the engine's serial planning loops never stall
// on a network round trip, and TTL expiry cannot fan out duplicate
// probes. Only after an explicit InvalidateHealth (an administrative
// demand for a fresh answer) does Healthy block, and even then
// concurrent callers share a single probe.
func (d *RemoteDev) Healthy() bool {
	d.hmu.Lock()
	if d.probing || (!d.checked.IsZero() && time.Since(d.checked) < d.healthTTL) {
		h := d.healthy
		d.hmu.Unlock()
		return h
	}
	if d.checked.IsZero() {
		// Invalidated: block for a fresh answer, single-flight.
		ch := d.refresh
		if ch == nil {
			ch = make(chan struct{})
			d.refresh = ch
			d.hmu.Unlock()
			d.runRefresh(ch)
		} else {
			d.hmu.Unlock()
			<-ch
		}
		d.hmu.Lock()
		h := d.healthy
		d.hmu.Unlock()
		return h
	}
	// Stale: serve the cached answer, refresh in the background.
	h := d.healthy
	if d.refresh == nil {
		ch := make(chan struct{})
		d.refresh = ch
		go d.runRefresh(ch)
	}
	d.hmu.Unlock()
	return h
}

// runRefresh performs the single-flight health probe and publishes the
// result; ch closes when the cache is updated.
func (d *RemoteDev) runRefresh(ch chan struct{}) {
	h, err := d.probe(context.Background())
	d.hmu.Lock()
	d.refresh = nil
	if err == nil {
		d.n.met.probeOK.Inc()
		d.healthy = h
		d.checked = time.Now()
		d.hmu.Unlock()
		close(ch)
		return
	}
	d.hmu.Unlock()
	d.n.met.probeFail.Inc()
	d.markSuspect(err)
	close(ch)
}

// probe asks the remote manager whether the disk serves requests (one
// attempt, bounded by the policy's CallTimeout).
func (d *RemoteDev) probe(ctx context.Context) (bool, error) {
	cancel := func() {}
	if t := d.n.policy.CallTimeout; t > 0 {
		ctx, cancel = context.WithTimeout(ctx, t)
	}
	defer cancel()
	resp, err := d.n.c.Call(ctx, OpHealth, encodeIOHeader(ioHeader{Disk: d.disk}, nil))
	if err != nil {
		return false, err
	}
	return len(resp) == 1 && resp[0] == 1, nil
}

// InvalidateHealth drops the cached health state.
func (d *RemoteDev) InvalidateHealth() {
	d.hmu.Lock()
	d.checked = time.Time{}
	d.hmu.Unlock()
}

// noteOutcome updates the cached health from an operation result. A
// remote disk-failed error — identified by its wire error code, not by
// matching message text — marks the device unhealthy immediately (the
// node answered; its disk is gone). A transport-level failure — broken
// connection, timeout, injected fault — marks the device suspect and
// starts the heartbeat that re-admits the node when it recovers.
func (d *RemoteDev) noteOutcome(err error) {
	if err == nil {
		return
	}
	// The caller abandoning its own request says nothing about the
	// peer's health: a cancelled read must not mark the device suspect
	// (and from there burn the repair failure budget).
	if errors.Is(err, context.Canceled) {
		return
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		if re.Code == transport.CodeDiskFailed {
			d.hmu.Lock()
			d.healthy = false
			d.checked = time.Now()
			d.hmu.Unlock()
			d.n.met.events.Append(obs.EventDiskFailed, d.subject, re.Msg)
		}
		return
	}
	d.markSuspect(err)
}

// markSuspect records the device as unhealthy and ensures a heartbeat
// probe is running to re-admit it. cause, when non-nil, is recorded in
// the event log.
func (d *RemoteDev) markSuspect(cause error) {
	d.hmu.Lock()
	wasHealthy := d.healthy
	d.healthy = false
	d.checked = time.Now()
	start := !d.probing && !d.n.closed.Load()
	if start {
		d.probing = true
	}
	d.hmu.Unlock()
	if wasHealthy || start {
		d.n.met.suspects.Inc()
		detail := ""
		if cause != nil {
			detail = cause.Error()
		}
		d.n.met.events.Append(obs.EventSuspect, d.subject, detail)
	}
	if start {
		go d.probeLoop()
	}
}

// probeLoop is the heartbeat of a suspect device: every ProbeInterval
// it asks the node for the disk's health, and on the first answer —
// healthy or not — hands health tracking back to the normal cached
// path. It exits when the node client closes.
func (d *RemoteDev) probeLoop() {
	for {
		time.Sleep(d.n.policy.ProbeInterval)
		if d.n.closed.Load() {
			d.hmu.Lock()
			d.probing = false
			d.hmu.Unlock()
			return
		}
		h, err := d.probe(context.Background())
		if err != nil {
			d.n.met.probeFail.Inc()
			continue // still unreachable; stay suspect
		}
		d.n.met.probeOK.Inc()
		d.hmu.Lock()
		d.healthy = h
		d.checked = time.Now()
		d.probing = false
		d.hmu.Unlock()
		d.n.met.readmits.Inc()
		d.n.met.events.Append(obs.EventReadmit, d.subject, fmt.Sprintf("healthy=%v", h))
		return
	}
}
