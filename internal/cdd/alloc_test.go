package cdd_test

import (
	"context"
	"testing"

	"repro/internal/cdd"
	"repro/internal/race"
)

// allocLimit runs f and fails if it averages more than limit heap
// allocations per run. The counter is process-wide — the loopback
// cluster's server goroutines count too, so these limits pin the entire
// client + server pipeline of a remote operation.
func allocLimit(t *testing.T, limit float64, f func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	got := testing.AllocsPerRun(100, f)
	t.Logf("%.1f allocs/op (limit %.0f)", got, limit)
	if got > limit {
		t.Errorf("%.1f allocs/op, want <= %.0f", got, limit)
	}
}

// TestAllocsRemoteDevWrite pins the single-device remote write path:
// cdd client → transport → manager → disk for one 64 KiB transfer.
func TestAllocsRemoteDevWrite(t *testing.T) {
	_, devs := benchCluster(t, 1, 4096, 16<<10)
	ctx := context.Background()
	buf := make([]byte, 64<<10)
	allocLimit(t, 6, func() {
		if err := devs[0].WriteBlocks(ctx, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocsRemoteDevRead pins the single-device remote read path: the
// response must land in buf (scatter), not in a fresh allocation.
func TestAllocsRemoteDevRead(t *testing.T) {
	_, devs := benchCluster(t, 1, 4096, 16<<10)
	ctx := context.Background()
	buf := make([]byte, 64<<10)
	if err := devs[0].WriteBlocks(ctx, 0, buf); err != nil {
		t.Fatal(err)
	}
	allocLimit(t, 6, func() {
		if err := devs[0].ReadBlocks(ctx, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocsCachedRead pins the coherent cache-hit read path: a block
// under a live shared grant must be served with ZERO remote calls and
// at most 2 heap allocations per read (the context timer machinery of
// the caller is not involved — this is mutex + map lookup + copy).
func TestAllocsCachedRead(t *testing.T) {
	node, c, reg := coherenceNode(t, 256)
	s := cdd.NewSession(c, "alloc-cache", cdd.SessionConfig{Obs: reg})
	t.Cleanup(func() { s.Close() })
	ctx := context.Background()

	if err := s.AcquireBlocks(ctx, cdd.Shared, 0, 0, 16); err != nil {
		t.Fatal(err)
	}
	dev := s.Dev(0)
	buf := make([]byte, dev.BlockSize())
	if err := dev.ReadBlocks(ctx, 0, buf); err != nil {
		t.Fatal(err) // populate the cache
	}
	remoteBefore := node.Manager.Obs().Counter("mgr.read_ops").Value()
	allocLimit(t, 2, func() {
		if err := dev.ReadBlocks(ctx, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
	if remoteAfter := node.Manager.Obs().Counter("mgr.read_ops").Value(); remoteAfter != remoteBefore {
		t.Fatalf("cache-hit reads made %d remote calls, want 0", remoteAfter-remoteBefore)
	}
}
