package cdd

import (
	"container/list"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/obs"
)

// BlockCache is a per-client read cache over remote blocks: a bounded
// LRU keyed by (disk, block), with bufpool-backed entries so cache
// churn recycles buffers instead of allocating. It holds bytes only —
// coherence (when an entry may be *served*) is the Session's job: a hit
// is valid only under a live lock-group grant within the lease safety
// window (DESIGN.md §13).
type BlockCache struct {
	mu   sync.Mutex
	max  int64
	size int64
	m    map[cacheKey]*list.Element
	lru  *list.List // front = most recent

	hits, misses, evicts, invals *obs.Counter
}

type cacheKey struct {
	disk  uint32
	block int64
}

type cacheEntry struct {
	key cacheKey
	buf []byte // bufpool-owned, exactly one block
}

// NewBlockCache creates a cache bounded to maxBytes of block payloads
// (<= 0 takes 4 MiB). reg, when non-nil, receives the sess.cache_*
// hit/miss/eviction/invalidation counters, a size gauge, and a
// sess.cache_hit_ratio_pct gauge (hits per hundred lookups, lifetime).
func NewBlockCache(maxBytes int64, reg *obs.Registry) *BlockCache {
	if maxBytes <= 0 {
		maxBytes = 4 << 20
	}
	c := &BlockCache{
		max: maxBytes,
		m:   make(map[cacheKey]*list.Element),
		lru: list.New(),
	}
	if reg != nil {
		c.hits = reg.Counter("sess.cache_hits")
		c.misses = reg.Counter("sess.cache_misses")
		c.evicts = reg.Counter("sess.cache_evictions")
		c.invals = reg.Counter("sess.cache_invalidations")
		reg.RegisterGauge("sess.cache_bytes", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.size
		})
		reg.RegisterGauge("sess.cache_hit_ratio_pct", func() int64 {
			h, m := c.hits.Value(), c.misses.Value()
			if h+m == 0 {
				return 0
			}
			return h * 100 / (h + m)
		})
	}
	return c
}

// Get copies the cached block (disk, block) into dst and reports
// whether it was present. dst must be exactly one block.
func (c *BlockCache) Get(disk uint32, block int64, dst []byte) bool {
	c.mu.Lock()
	el, ok := c.m[cacheKey{disk: disk, block: block}]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return false
	}
	ent := el.Value.(*cacheEntry)
	if len(ent.buf) != len(dst) {
		c.mu.Unlock()
		c.misses.Inc()
		return false
	}
	copy(dst, ent.buf)
	c.lru.MoveToFront(el)
	c.mu.Unlock()
	c.hits.Inc()
	return true
}

// Put stores a copy of data (exactly one block) under (disk, block),
// evicting LRU entries to stay within the byte bound.
func (c *BlockCache) Put(disk uint32, block int64, data []byte) {
	if int64(len(data)) > c.max {
		return
	}
	c.mu.Lock()
	key := cacheKey{disk: disk, block: block}
	if el, ok := c.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		if len(ent.buf) == len(data) {
			copy(ent.buf, data)
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			return
		}
		c.removeLocked(el)
	}
	for c.size+int64(len(data)) > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evicts.Inc()
	}
	buf := bufpool.Get(len(data))
	copy(buf, data)
	ent := &cacheEntry{key: key, buf: buf}
	c.m[key] = c.lru.PushFront(ent)
	c.size += int64(len(buf))
	c.mu.Unlock()
}

// PutOwned is Put with buffer handoff: the cache takes ownership of
// buf (a bufpool buffer holding exactly one block) instead of copying.
// The write-back flusher uses it to move committed blocks straight
// into the cache.
func (c *BlockCache) PutOwned(disk uint32, block int64, buf []byte) {
	if int64(len(buf)) > c.max {
		bufpool.Put(buf)
		return
	}
	c.mu.Lock()
	key := cacheKey{disk: disk, block: block}
	if el, ok := c.m[key]; ok {
		c.removeLocked(el)
	}
	for c.size+int64(len(buf)) > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evicts.Inc()
	}
	ent := &cacheEntry{key: key, buf: buf}
	c.m[key] = c.lru.PushFront(ent)
	c.size += int64(len(buf))
	c.mu.Unlock()
}

// removeLocked unlinks el and returns its buffer to the pool.
func (c *BlockCache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.m, ent.key)
	c.size -= int64(len(ent.buf))
	bufpool.Put(ent.buf)
	ent.buf = nil
}

// InvalidateBlocks drops the cached blocks [start, start+count) of one
// disk.
func (c *BlockCache) InvalidateBlocks(disk uint32, start, count int64) {
	c.mu.Lock()
	n := 0
	if count > int64(len(c.m)) {
		// Wide invalidation (e.g. a whole-disk range): scan entries, not
		// blocks.
		var doomed []*list.Element
		for key, el := range c.m {
			if key.disk == disk && key.block >= start && key.block < start+count {
				doomed = append(doomed, el)
			}
		}
		for _, el := range doomed {
			c.removeLocked(el)
			n++
		}
	} else {
		for b := start; b < start+count; b++ {
			if el, ok := c.m[cacheKey{disk: disk, block: b}]; ok {
				c.removeLocked(el)
				n++
			}
		}
	}
	c.mu.Unlock()
	c.invals.Add(int64(n))
}

// InvalidateAll empties the cache (lease loss, event-ring reset).
func (c *BlockCache) InvalidateAll() {
	c.mu.Lock()
	n := len(c.m)
	for c.lru.Back() != nil {
		c.removeLocked(c.lru.Back())
	}
	c.mu.Unlock()
	c.invals.Add(int64(n))
}

// Len reports the number of cached blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Bytes reports the cached payload size.
func (c *BlockCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
