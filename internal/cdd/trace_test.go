package cdd_test

// End-to-end tracing: a degraded read over real TCP, assembled into one
// waterfall spanning the client engine and every CDD node it touched.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestTraceDegradedReadWaterfall drives the acceptance scenario: fail a
// disk behind the engine's back, run a traced read, and assert the
// assembled waterfall attributes time to the mirror-failover hop and to
// the remote nodes that served it.
func TestTraceDegradedReadWaterfall(t *testing.T) {
	devs, clients := cluster(t, 4, 1, 64)

	// Seed the array untraced, so the only trace anywhere afterwards is
	// the degraded read's.
	setup, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := make([]byte, int(setup.Blocks())*setup.BlockSize())
	rand.New(rand.NewSource(40)).Read(data)
	if err := setup.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := setup.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Fail node 1's disk out-of-band: the engine's health cache still
	// says healthy, so the traced read hits the primary, takes the
	// error, and fails over to mirror images mid-operation.
	if err := clients[1].FailDisk(0); err != nil {
		t.Fatal(err)
	}

	tr := trace.New(trace.Config{})
	a, err := core.New(devs, 4, 1, core.Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read returned wrong data")
	}

	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want exactly the read", len(traces))
	}
	wf := traces[0]
	if wf.Root.Name != "raidx.read" {
		t.Fatalf("root span = %s", wf.Root.Name)
	}
	var failover trace.Span
	for _, sp := range wf.Spans {
		if sp.Name == "raidx.failover" {
			failover = sp
		}
	}
	if failover.Name == "" {
		t.Fatalf("no raidx.failover span in the degraded read: %+v", spanNames(wf.Spans))
	}
	if failover.Dur <= 0 {
		t.Fatal("failover span carries no duration")
	}

	// Fold in each node's server-side spans, as raidxctl trace does.
	for i, c := range clients {
		remote, err := c.TraceSpans(ctx)
		if err != nil {
			t.Fatalf("node %d trace spans: %v", i, err)
		}
		wf.Merge(remote, fmt.Sprintf("n%d", i))
	}
	var mgr, dsk, serve int
	origins := map[string]bool{}
	for _, sp := range wf.Spans {
		if sp.Origin != "" {
			origins[sp.Origin] = true
		}
		switch sp.Name {
		case "mgr.read":
			mgr++
		case "disk.read":
			dsk++
		case "transport.serve":
			serve++
		}
	}
	if mgr == 0 || dsk == 0 || serve == 0 {
		t.Fatalf("merged trace missing remote spans: mgr.read=%d disk.read=%d transport.serve=%d", mgr, dsk, serve)
	}
	// The failover read touched mirror images on nodes other than the
	// failed one, so more than one origin must appear.
	if len(origins) < 2 {
		t.Fatalf("merged spans from %d origins, want the failover to reach several nodes: %v", len(origins), origins)
	}

	var sb strings.Builder
	trace.WriteWaterfall(&sb, wf)
	out := sb.String()
	for _, want := range []string{"raidx.read", "raidx.failover", "transport.serve", "mgr.read", "disk.read", "@n"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	t.Logf("degraded-read waterfall:\n%s", out)
}

func spanNames(sps []trace.Span) []string {
	names := make([]string, len(sps))
	for i, sp := range sps {
		names[i] = sp.Name
	}
	return names
}
