package cdd_test

// Coherence chaos test: concurrent writers and caching readers on
// overlapping lock groups while the network partitions underneath
// them. The invariant is zero stale reads — a reader never observes a
// value older than what was committed before it took its grant, and
// values only move forward — plus auto-release: the partitioned
// clients' grants lapse instead of wedging the writers forever.

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cdd"
	"repro/internal/disk"
	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/store"
)

func TestCoherenceChaosZeroStaleReads(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	const (
		blocks   = 128
		bs       = 1024
		region   = 16 // the contended lock group: blocks [0,16) of disk 0
		writers  = 2
		readers  = 3
		duration = 1500 * time.Millisecond
	)

	d := disk.New(nil, "chaos-coh", store.NewMem(bs, blocks), disk.DefaultModel())
	node, err := cdd.ListenAndServe("127.0.0.1:0", []*disk.Disk{d})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	// Short server lease so partitioned holders lapse within the test.
	node.Manager.Locks().SetLease(400*time.Millisecond, nil)

	fnet := faultnet.New(7)
	newSession := func(name string) (*cdd.NodeClient, *cdd.Session) {
		reg := obs.NewRegistry()
		c, err := cdd.ConnectWith(context.Background(), node.Addr(),
			cdd.Options{Retry: fastPolicy(), Dialer: fnet.Dialer(), Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		s := cdd.NewSession(c, name, cdd.SessionConfig{Obs: reg, Beat: 20 * time.Millisecond})
		return c, s
	}

	// committed is the newest value a writer flushed AND committed under
	// its exclusive grant; the stamp every block of the region carries.
	var committed atomic.Int64
	var staleReads atomic.Int64
	var readsOK, writesOK atomic.Int64
	lockRange := []cdd.Range{cdd.BlockLockRange(0, 0, region)}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deadline := time.Now().Add(duration)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, s := newSession(fmt.Sprintf("writer-%d", w))
			defer c.Close()
			defer s.Close()
			dev := s.Dev(0)
			buf := make([]byte, region*bs)
			for time.Now().Before(deadline) && ctx.Err() == nil {
				actx, acancel := context.WithTimeout(ctx, time.Second)
				if err := s.Acquire(actx, cdd.Exclusive, lockRange); err != nil {
					acancel()
					continue // contention or partition; try again
				}
				acancel()
				v := committed.Load() + 1
				for i := 0; i < region; i++ {
					binary.LittleEndian.PutUint64(buf[i*bs:], uint64(v))
				}
				octx, ocancel := context.WithTimeout(ctx, time.Second)
				err := dev.WriteBlocks(octx, 0, buf)
				if err == nil {
					err = s.Flush(octx)
				}
				if err == nil {
					// Commit point: the data is durable on the server while
					// the exclusive grant is still held.
					committed.Store(v)
					writesOK.Add(1)
				}
				_ = s.Release(octx, lockRange)
				ocancel()
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, s := newSession(fmt.Sprintf("reader-%d", r))
			defer c.Close()
			defer s.Close()
			dev := s.Dev(0)
			buf := make([]byte, bs)
			for time.Now().Before(deadline) && ctx.Err() == nil {
				floor := committed.Load() // committed before our grant
				actx, acancel := context.WithTimeout(ctx, time.Second)
				if err := s.Acquire(actx, cdd.Shared, lockRange); err != nil {
					acancel()
					continue
				}
				acancel()
				// Two reads per hold: the first may populate the cache, the
				// second may be served from it — both must respect the floor.
				var last int64 = -1
				for pass := 0; pass < 2; pass++ {
					blk := int64((r + pass) % region)
					octx, ocancel := context.WithTimeout(ctx, time.Second)
					err := dev.ReadBlocks(octx, blk, buf)
					ocancel()
					if err != nil {
						break // partitioned; an error is not a stale read
					}
					got := int64(binary.LittleEndian.Uint64(buf))
					if got < floor {
						staleReads.Add(1)
					}
					if last >= 0 && got < last {
						staleReads.Add(1) // time went backwards within a hold
					}
					last = got
					readsOK.Add(1)
				}
				rctx, rcancel := context.WithTimeout(ctx, time.Second)
				_ = s.Release(rctx, lockRange)
				rcancel()
			}
		}(r)
	}

	// The chaos: partition the node away from everyone twice, long
	// enough for leases to lapse, then heal.
	go func() {
		for i := 0; i < 2 && time.Now().Before(deadline); i++ {
			time.Sleep(300 * time.Millisecond)
			fnet.Partition(node.Addr())
			time.Sleep(150 * time.Millisecond)
			fnet.Heal(node.Addr())
		}
	}()

	wg.Wait()
	cancel()

	if n := staleReads.Load(); n != 0 {
		t.Fatalf("%d stale reads observed (reads=%d writes=%d)", n, readsOK.Load(), writesOK.Load())
	}
	if writesOK.Load() == 0 {
		t.Fatal("no writer ever committed — the lock pipeline is wedged")
	}
	if readsOK.Load() == 0 {
		t.Fatal("no reader ever completed — the grant pipeline is wedged")
	}
	t.Logf("chaos: %d reads, %d commits, 0 stale", readsOK.Load(), writesOK.Load())
}
