package cdd_test

// Fault-tolerance integration tests: the RAID-x single-fault claim
// exercised over real TCP against network faults — dead servers,
// partitions, latency spikes, injected connection resets — rather than
// only the simulated media failures of internal/disk.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/raid"
	"repro/internal/store"
)

// fastPolicy keeps retry/deadline budgets small so fault tests run in
// milliseconds instead of the production seconds.
func fastPolicy() cdd.RetryPolicy {
	return cdd.RetryPolicy{
		MaxAttempts:   4,
		CallTimeout:   250 * time.Millisecond,
		BaseBackoff:   2 * time.Millisecond,
		MaxBackoff:    20 * time.Millisecond,
		ProbeInterval: 20 * time.Millisecond,
	}
}

// budget is the worst-case time one fully-retried operation may take
// under fastPolicy, used to bound failover latency assertions.
func budget(pol cdd.RetryPolicy) time.Duration {
	per := pol.CallTimeout + pol.MaxBackoff
	return time.Duration(pol.MaxAttempts) * per
}

// faultCluster spins up n CDD nodes with k disks each, dialed through
// the given fault injector (nil for a clean network), and returns the
// global dev list in SIOS order plus the node handles for mid-test
// server kills.
func faultCluster(t *testing.T, n, k int, blocks int64, fnet *faultnet.Network) ([]raid.Dev, []*cdd.NodeClient, []*cdd.Node, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	opts := cdd.Options{Retry: fastPolicy(), DialTimeout: time.Second, Obs: reg}
	if fnet != nil {
		opts.Dialer = fnet.Dialer()
	}
	nodes := make([]*cdd.Node, n)
	clients := make([]*cdd.NodeClient, n)
	for i := 0; i < n; i++ {
		disks := make([]*disk.Disk, k)
		for j := range disks {
			disks[j] = disk.New(nil, fmt.Sprintf("n%dd%d", i, j), store.NewMem(1024, blocks), disk.DefaultModel())
		}
		node, err := cdd.ListenAndServe("127.0.0.1:0", disks)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
		c, err := cdd.ConnectWith(context.Background(), node.Addr(), opts)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		t.Cleanup(func() { c.Close() })
	}
	devs := make([]raid.Dev, n*k)
	for local := 0; local < k; local++ {
		for node := 0; node < n; node++ {
			devs[node+local*n] = clients[node].Dev(local)
		}
	}
	return devs, clients, nodes, reg
}

// countEvents tallies event-log entries of one kind whose subject
// starts with prefix ("" matches all).
func countEvents(reg *obs.Registry, kind obs.EventKind, prefix string) int {
	n := 0
	for _, e := range reg.Events().Events() {
		if e.Kind == kind && strings.HasPrefix(e.Subject, prefix) {
			n++
		}
	}
	return n
}

// waitAllHealthy polls until every device reports healthy (faults
// healed, heartbeats re-admitted the nodes) or the deadline passes.
func waitAllHealthy(t *testing.T, devs []raid.Dev, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		ok := true
		for _, d := range devs {
			if rd, is := d.(*cdd.RemoteDev); is {
				rd.InvalidateHealth()
			}
			if !d.Healthy() {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("devices never returned to healthy after faults cleared")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDegradedReadOverTCPNodeKill kills a transport.Server mid-workload
// and asserts the OSM engine completes reads through the mirror images
// on the orthogonal stripe group, within the deadline+retry budget —
// the real-socket counterpart of bench/degraded.go.
func TestDegradedReadOverTCPNodeKill(t *testing.T) {
	devs, clients, nodes, reg := faultCluster(t, 4, 1, 64, nil)
	a, err := core.New(devs, 4, 1, core.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*a.BlockSize())
	rand.New(rand.NewSource(21)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill node 2 outright: no FailDisk courtesy call, the server and
	// every one of its connections just die.
	nodes[2].Close()

	got := make([]byte, len(data))
	start := time.Now()
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("read with node 2 dead: %v", err)
	}
	took := time.Since(start)
	if !bytes.Equal(got, data) {
		t.Fatal("failover read returned wrong data")
	}
	if max := budget(fastPolicy()) + 2*time.Second; took > max {
		t.Fatalf("failover read took %v, budget %v", took, max)
	}

	// The injected fault must be visible in the observability layer: the
	// dead node's device was marked suspect, and the engine logged the
	// read failover.
	if got := countEvents(reg, obs.EventSuspect, clients[2].Addr()); got == 0 {
		t.Error("no suspect event for the killed node in the event log")
	}
	if got := reg.Counter("raidx.failover_reads").Value(); got == 0 {
		t.Error("failover read not counted")
	}
	if got := countEvents(reg, obs.EventFailover, ""); got == 0 {
		t.Error("no failover event in the event log")
	}

	// The failed reads marked the node suspect, so a second read goes
	// degraded immediately — it must be fast and still correct.
	start = time.Now()
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("second degraded read: %v", err)
	}
	if took := time.Since(start); took > budget(fastPolicy()) {
		t.Fatalf("degraded read after suspicion took %v", took)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("second degraded read returned wrong data")
	}

	// Degraded writes skip the dead node's columns.
	upd := make([]byte, 6*a.BlockSize())
	rand.New(rand.NewSource(22)).Read(upd)
	if err := a.WriteBlocks(ctx, 3, upd); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	copy(data[3*a.BlockSize():], upd)
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data wrong after degraded write")
	}
}

// TestPartitionFailoverAndReadmission partitions one node mid-workload
// (established connections hang, new dials are refused), asserts reads
// fail over to mirrors within the deadline budget, then heals the
// partition and asserts the heartbeat re-admits the node.
func TestPartitionFailoverAndReadmission(t *testing.T) {
	fnet := faultnet.New(3)
	devs, clients, _, reg := faultCluster(t, 4, 1, 64, fnet)
	a, err := core.New(devs, 4, 1, core.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*a.BlockSize())
	rand.New(rand.NewSource(31)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	victim := clients[1].Addr()
	fnet.Partition(victim)

	got := make([]byte, len(data))
	start := time.Now()
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("read with node 1 partitioned: %v", err)
	}
	took := time.Since(start)
	if !bytes.Equal(got, data) {
		t.Fatal("failover read returned wrong data")
	}
	if max := budget(fastPolicy()) + 2*time.Second; took > max {
		t.Fatalf("partitioned read took %v, budget %v", took, max)
	}

	// Heal; the heartbeat must re-admit the node, and reads must flow
	// through it again at full speed.
	fnet.Heal(victim)
	waitAllHealthy(t, devs, 5*time.Second)
	start = time.Now()
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("post-heal read took %v", took)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-heal read returned wrong data")
	}

	// The fault cycle must be mirrored in the event log: the partitioned
	// node went suspect, and the heartbeat re-admitted it.
	if got := countEvents(reg, obs.EventSuspect, victim); got == 0 {
		t.Error("no suspect event for the partitioned node")
	}
	if got := countEvents(reg, obs.EventReadmit, victim); got == 0 {
		t.Error("no re-admission event for the healed node")
	}
	if reg.Counter("cdd.suspects").Value() == 0 || reg.Counter("cdd.readmits").Value() == 0 {
		t.Error("suspect/readmit counters not updated")
	}
}

// TestChaosMixedWorkload runs a mixed read/write workload over a TCP
// cluster while random network faults — latency spikes, connection
// resets, stalls, brief partitions — hit one node at a time (the
// paper's single-fault regime), then heals everything and asserts no
// data corruption and bounded latency.
//
// Correctness contract under chaos: a read that SUCCEEDS must return
// correct data; a write that fails leaves its region ambiguous (some
// copies updated) until rewritten. The workload therefore checks
// successful reads of the never-written region against the golden
// image, and after healing rewrites every worker region before the
// final audit.
func TestChaosMixedWorkload(t *testing.T) {
	fnet := faultnet.New(42)
	devs, clients, _, reg := faultCluster(t, 4, 1, 256, fnet)
	a, err := core.New(devs, 4, 1, core.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bs := a.BlockSize()
	total := a.Blocks()

	// Lower half: stable, never written after prefill. Upper half:
	// split between the writing workers.
	stable := total / 2
	const workers = 3
	region := (total - stable) / workers

	golden := make([]byte, int(total)*bs)
	rand.New(rand.NewSource(41)).Read(golden)
	if err := a.WriteBlocks(ctx, 0, golden); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	addrs := make([]string, len(clients))
	for i, c := range clients {
		addrs[i] = c.Addr()
	}

	// Chaos driver: one faulty peer at a time, varying fault type,
	// always healing before moving on.
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		rng := rand.New(rand.NewSource(43))
		for {
			select {
			case <-stop:
				fnet.HealAll()
				return
			default:
			}
			addr := addrs[rng.Intn(len(addrs))]
			switch rng.Intn(4) {
			case 0:
				fnet.SetLatency(addr, time.Duration(1+rng.Intn(3))*time.Millisecond, time.Millisecond)
			case 1:
				fnet.SetErrorRate(addr, 0.02+0.1*rng.Float64())
			case 2:
				fnet.Stall(addr)
			case 3:
				fnet.Partition(addr)
			}
			time.Sleep(time.Duration(10+rng.Intn(30)) * time.Millisecond)
			fnet.Heal(addr)
			time.Sleep(time.Duration(5+rng.Intn(10)) * time.Millisecond)
		}
	}()

	// Workers: each loops mixed reads (stable region, audited) and
	// writes (private region, errors tolerated during chaos). Each
	// worker drives its own engine instance, like separate hosts
	// mounting the same SIOS.
	arrays := make([]*core.RAIDx, workers)
	for w := range arrays {
		if arrays[w], err = core.New(devs, 4, 1, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	final := make([][]byte, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	deadline := time.Now().Add(1200 * time.Millisecond)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			base := stable + int64(w)*region
			buf := make([]byte, int(region)*bs)
			readBuf := make([]byte, 8*bs)
			for time.Now().Before(deadline) {
				// Audited read of a stable slice.
				off := int64(rng.Intn(int(stable) - 8))
				if err := arrays[w].ReadBlocks(ctx, off, readBuf); err == nil {
					want := golden[off*int64(bs) : (off+8)*int64(bs)]
					if !bytes.Equal(readBuf, want) {
						errCh <- fmt.Errorf("worker %d: CORRUPTION in stable region at block %d", w, off)
						return
					}
				}
				// Write the private region; failures are expected while
				// faults are live.
				rng.Read(buf)
				_ = arrays[w].WriteBlocks(ctx, base, buf)
			}
			final[w] = append([]byte(nil), buf...)
		}(w)
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Faults are gone: wait for heartbeats to re-admit every node.
	fnet.HealAll()
	waitAllHealthy(t, devs, 5*time.Second)

	// Repair pass: rewrite each worker region with its final data. A
	// foreground-mirror engine makes the image writes retried calls
	// rather than fire-and-forget notifications, so after this pass
	// both copies of every block are known-good.
	repair, err := core.New(devs, 4, 1, core.Options{ForegroundMirror: true})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		base := stable + int64(w)*region
		if err := repair.WriteBlocks(ctx, base, final[w]); err != nil {
			t.Fatalf("repair write for worker %d: %v", w, err)
		}
	}
	if err := repair.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Audit: stable region intact, worker regions hold their final
	// data, mirror images consistent, and latency back to normal.
	start := time.Now()
	got := make([]byte, int(total)*bs)
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("final read: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("post-chaos full read took %v", took)
	}
	if !bytes.Equal(got[:stable*int64(bs)], golden[:stable*int64(bs)]) {
		t.Fatal("stable region corrupted")
	}
	for w := 0; w < workers; w++ {
		base := stable + int64(w)*region
		if !bytes.Equal(got[base*int64(bs):(base+region)*int64(bs)], final[w]) {
			t.Fatalf("worker %d region does not match final data", w)
		}
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("mirror verify after chaos: %v", err)
	}

	// Observability audit: every suspicion the health tracker counted
	// must have a matching event, and any node that went suspect must
	// have been re-admitted (all faults were healed above).
	suspects := reg.Counter("cdd.suspects").Value()
	if got := int64(countEvents(reg, obs.EventSuspect, "")); got != suspects {
		t.Errorf("suspect events (%d) do not match suspect counter (%d)", got, suspects)
	}
	if suspects > 0 && countEvents(reg, obs.EventReadmit, "") == 0 {
		t.Error("nodes went suspect but no re-admission event was logged")
	}
}
