package cdd

// Array-epoch fencing and membership control over the CDD wire. After
// an online rebalance completes, blocks live at homes computed from a
// newer layout epoch; a client that missed the transition would keep
// placing I/O with the retired map. The fence: clients tag block I/O
// with the epoch generation their map was built from, nodes reject
// tags older than the generation the rebalance coordinator broadcast
// (CodeStaleEpoch), and the rejection surfaces typed to the mount
// layer, which refetches the layout, rebuilds its device table and
// placement map, and re-issues the operation with recomputed homes.
// The retry can never happen below that layer: a newer generation
// implies moved homes, so resending the same physical (disk, block)
// with a fresher tag would corrupt, not recover.

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/layout"
	"repro/internal/transport"
)

// ErrStaleEpoch is the client-side classification of a CodeStaleEpoch
// rejection: the node enforces a newer array epoch than this client's
// placement map. Recovery is a rebuild — refetch the layout (OpLayout
// against the rebalance coordinator), rebuild the device table and
// placement map, and re-issue with recomputed homes.
var ErrStaleEpoch = errors.New("cdd: stale array epoch")

// errStaleEpoch marks server-side rejections so errCode maps them to
// the wire code.
var errStaleEpoch = ErrStaleEpoch

// IsStaleEpoch reports whether err is a stale-epoch rejection — either
// the local sentinel or the remote error code.
func IsStaleEpoch(err error) bool {
	if errors.Is(err, ErrStaleEpoch) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Code == transport.CodeStaleEpoch
}

// epochTagLen is the epoch generation prefix of tagged I/O payloads.
const epochTagLen = 8

// OpEpochSet phase byte: a stable broadcast installs the generation
// and returns the node to normal serving; a fence broadcast installs
// it AND rejects untagged block I/O until the next stable broadcast.
// The coordinator fences members at migration start — the window when
// an unfenced second writer's blocks could land at homes the copy is
// about to retire — and clears the fence at completion.
const (
	epochPhaseStable = 0
	epochPhaseFence  = 1
)

// epochTagged reports whether op carries an epoch tag as its first
// payload segment.
func epochTagged(op uint8) bool {
	return op == OpReadEpoch || op == OpWriteEpoch || op == OpWriteBGEpoch
}

// baseOp maps an epoch-tagged opcode to the op it wraps.
func baseOp(op uint8) uint8 {
	switch op {
	case OpReadEpoch:
		return OpRead
	case OpWriteEpoch:
		return OpWrite
	case OpWriteBGEpoch:
		return OpWriteBG
	}
	return op
}

// LayoutInfo is the OpLayout response: the epoch generation a node
// enforces and, when answered by the rebalance coordinator, the full
// layout descriptor plus migration progress.
type LayoutInfo struct {
	Gen       uint64            `json:"gen"`
	Desc      *layout.EpochDesc `json:"desc,omitempty"`
	Migrating bool              `json:"migrating,omitempty"`
	Cursor    int64             `json:"cursor,omitempty"`
	TargetGen uint64            `json:"target_gen,omitempty"`
}

// rebalanceReq is the OpRebalanceCtl payload.
type rebalanceReq struct {
	// Action is "grow" or "shrink".
	Action string `json:"action"`
	// Nodes is how many nodes join (grow) or leave (shrink).
	Nodes int `json:"nodes"`
	// Addrs are the joining nodes' CDD addresses, in node order (grow
	// only).
	Addrs []string `json:"addrs,omitempty"`
}

// RebalanceController is the slice of a rebalance coordinator the
// manager can drive remotely (raidxctl grow|shrink|rebalance status).
// Declared as an interface so cdd stays below repair in the dependency
// order; raidxnode implements it over its repair supervisor.
type RebalanceController interface {
	// LayoutJSON returns the coordinator's LayoutInfo as JSON.
	LayoutJSON() ([]byte, error)
	// Rebalance starts a membership change: "grow" dials addrs and adds
	// nodes new nodes, "shrink" retires the nodes tail nodes.
	Rebalance(action string, nodes int, addrs []string) error
}

// SetRebalance attaches the node's rebalance coordinator, enabling
// OpRebalanceCtl and the full OpLayout answer.
func (m *Manager) SetRebalance(rc RebalanceController) {
	m.mu.Lock()
	m.rebalance = rc
	m.mu.Unlock()
}

// EpochGen reports the array-epoch generation this node enforces on
// tagged I/O.
func (m *Manager) EpochGen() uint64 { return m.epochGen.Load() }

// EpochFence reports whether the node currently rejects untagged block
// I/O (a migration is in flight and the coordinator fenced the node).
func (m *Manager) EpochFence() bool { return m.epochFence.Load() }

// SetEpochFence raises or clears the migration fence locally. The
// coordinator's own node uses it directly; remote members are fenced
// over the wire via a phase-1 OpEpochSet.
func (m *Manager) SetEpochFence(on bool) { m.epochFence.Store(on) }

// AdoptEpoch raises the node's enforced array epoch to gen; lower or
// equal generations are ignored (broadcasts are idempotent and may
// arrive out of order). Returns the generation now in force.
func (m *Manager) AdoptEpoch(gen uint64) uint64 {
	for {
		cur := m.epochGen.Load()
		if gen <= cur {
			return cur
		}
		if m.epochGen.CompareAndSwap(cur, gen) {
			m.mu.Lock()
			f := m.onEpoch
			m.mu.Unlock()
			if f != nil {
				f(gen)
			}
			return gen
		}
	}
}

// SetEpochNotify installs a hook called whenever AdoptEpoch raises the
// enforced generation. raidxnode uses it to persist the adopted epoch
// into its disk images' superblocks, so a restarted node re-enforces
// the fence before any broadcast reaches it. Epoch raises are rare
// (one per membership change), so a hook that syncs to disk is fine.
func (m *Manager) SetEpochNotify(f func(gen uint64)) {
	m.mu.Lock()
	m.onEpoch = f
	m.mu.Unlock()
}

// checkEpoch gates one epoch-tagged request: tags behind the node's
// generation are rejected typed; tags ahead of it are adopted — the
// client learned of a newer epoch before this node's broadcast landed,
// and either way the node must stop honoring the older map.
func (m *Manager) checkEpoch(gen uint64) error {
	if cur := m.AdoptEpoch(gen); gen < cur {
		return fmt.Errorf("cdd: request epoch %d behind node epoch %d: %w", gen, cur, errStaleEpoch)
	}
	return nil
}

// decodeEpochTag splits an epoch-tagged payload into the generation and
// the wrapped payload.
func decodeEpochTag(b []byte) (uint64, []byte, error) {
	if len(b) < epochTagLen {
		return 0, nil, fmt.Errorf("cdd: short epoch tag: %w", errBadRequest)
	}
	return binary.BigEndian.Uint64(b[:epochTagLen]), b[epochTagLen:], nil
}

// handleEpoch serves the epoch/membership opcodes (dispatched from
// handle).
func (m *Manager) handleEpoch(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
	switch op {
	case OpReadEpoch, OpWriteEpoch, OpWriteBGEpoch:
		gen, rest, err := decodeEpochTag(payload)
		if err != nil {
			return nil, err
		}
		if err := m.checkEpoch(gen); err != nil {
			if op == OpWriteBGEpoch {
				// The client sent this as a notification and will never
				// see the rejection; count the dropped mirror write so
				// the redundancy loss is observable (mgr.bg_stale_drops).
				m.met.bgStaleDrops.Inc()
			}
			return nil, err
		}
		return m.handle(ctx, baseOp(op), rest)

	case OpEpochSet:
		// 8 bytes: legacy stable broadcast. 9 bytes: generation plus a
		// phase byte (fence or stable). Either form adopts the
		// generation; the phase decides whether untagged block I/O is
		// rejected afterwards.
		phase := byte(epochPhaseStable)
		switch len(payload) {
		case epochTagLen:
		case epochTagLen + 1:
			phase = payload[epochTagLen]
			if phase > epochPhaseFence {
				return nil, fmt.Errorf("cdd: unknown epoch-set phase %d: %w", phase, errBadRequest)
			}
		default:
			return nil, fmt.Errorf("cdd: bad epoch-set payload: %w", errBadRequest)
		}
		cur := m.AdoptEpoch(binary.BigEndian.Uint64(payload[:epochTagLen]))
		m.epochFence.Store(phase == epochPhaseFence)
		return binary.BigEndian.AppendUint64(nil, cur), nil

	case OpLayout:
		m.mu.Lock()
		rc := m.rebalance
		m.mu.Unlock()
		if rc != nil {
			return rc.LayoutJSON()
		}
		return json.Marshal(LayoutInfo{Gen: m.epochGen.Load()})

	case OpRebalanceCtl:
		m.mu.Lock()
		rc := m.rebalance
		m.mu.Unlock()
		if rc == nil {
			return nil, errors.New("cdd: no rebalance coordinator on this node")
		}
		var req rebalanceReq
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("cdd: bad rebalance request: %v: %w", err, errBadRequest)
		}
		return nil, rc.Rebalance(req.Action, req.Nodes, req.Addrs)
	}
	return nil, fmt.Errorf("cdd: op %d: %w", op, errUnknownOp)
}

// ArrayEpoch reports the epoch generation this client tags block I/O
// with (0: untagged legacy I/O).
func (n *NodeClient) ArrayEpoch() uint64 { return n.arrayEpoch.Load() }

// SetArrayEpoch raises the epoch generation the client tags block I/O
// with. Lower generations are ignored — an epoch never rolls back.
func (n *NodeClient) SetArrayEpoch(gen uint64) {
	for {
		cur := n.arrayEpoch.Load()
		if gen <= cur || n.arrayEpoch.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// Layout fetches the node's layout view: its enforced epoch generation
// and, from a rebalance coordinator, the full epoch descriptor and
// migration progress.
func (n *NodeClient) Layout(ctx context.Context) (LayoutInfo, error) {
	raw, err := n.call(ctx, OpLayout, nil)
	if err != nil {
		return LayoutInfo{}, err
	}
	var li LayoutInfo
	if err := json.Unmarshal(raw, &li); err != nil {
		return LayoutInfo{}, fmt.Errorf("cdd: bad layout from %s: %w", n.addr, err)
	}
	return li, nil
}

// EpochSet broadcasts an array-epoch generation to the node; the node
// adopts it if higher, clears any migration fence, and answers with
// the generation now in force.
func (n *NodeClient) EpochSet(ctx context.Context, gen uint64) (uint64, error) {
	return n.epochSet(ctx, gen, epochPhaseStable)
}

// FenceEpoch broadcasts gen with the fence phase: the node adopts gen
// and rejects untagged block I/O until a stable EpochSet clears the
// fence. The rebalance coordinator fences every member at migration
// start, so a mount that never learned of the migration bounces typed
// instead of writing to homes the copy is about to retire.
func (n *NodeClient) FenceEpoch(ctx context.Context, gen uint64) (uint64, error) {
	return n.epochSet(ctx, gen, epochPhaseFence)
}

func (n *NodeClient) epochSet(ctx context.Context, gen uint64, phase byte) (uint64, error) {
	p := binary.BigEndian.AppendUint64(nil, gen)
	if phase != epochPhaseStable {
		p = append(p, phase)
	}
	raw, err := n.call(ctx, OpEpochSet, p)
	if err != nil {
		return 0, err
	}
	if len(raw) != epochTagLen {
		return 0, fmt.Errorf("cdd: bad epoch-set response length %d", len(raw))
	}
	return binary.BigEndian.Uint64(raw), nil
}

// RebalanceCtl asks the node's rebalance coordinator to start a
// membership change. Not blindly retried: a lost response would
// double-start and bounce off ErrRebalanceActive.
func (n *NodeClient) RebalanceCtl(ctx context.Context, action string, nodes int, addrs []string) error {
	raw, err := json.Marshal(rebalanceReq{Action: action, Nodes: nodes, Addrs: addrs})
	if err != nil {
		return err
	}
	_, err = n.call(ctx, OpRebalanceCtl, raw)
	return err
}
