package cdd

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// lockDiskShift positions a disk index above the block number in the
// global lock space, so device-level block ranges and file-system
// region locks coexist in one table. Block b of disk d locks address
// d<<40 | b.
const lockDiskShift = 40

const lockBlockMask = (uint64(1) << lockDiskShift) - 1

// BlockLockRange maps count blocks starting at block of one disk into
// the global lock space.
func BlockLockRange(disk uint32, block, count int64) Range {
	base := uint64(disk) << lockDiskShift
	return Range{Start: base + uint64(block), End: base + uint64(block+count)}
}

// SessionConfig tunes a coherent client session.
type SessionConfig struct {
	// CacheBytes bounds the read cache (<= 0: 4 MiB).
	CacheBytes int64
	// WriteBackBytes is the dirty-byte threshold that triggers a group
	// commit (<= 0: 256 KiB).
	WriteBackBytes int
	// WriteBackAge bounds how long a dirty block may wait before the
	// heartbeat loop flushes it (<= 0: 20 ms).
	WriteBackAge time.Duration
	// Beat is the heartbeat interval (<= 0: the connection's
	// ProbeInterval). It must stay well under the server lease TTL or
	// grants expire mid-use.
	Beat time.Duration
	// Obs receives cache and session counters (nil: none).
	Obs *obs.Registry
}

func (c SessionConfig) withDefaults(pol RetryPolicy) SessionConfig {
	if c.CacheBytes <= 0 {
		c.CacheBytes = 4 << 20
	}
	if c.WriteBackBytes <= 0 {
		c.WriteBackBytes = 256 << 10
	}
	if c.WriteBackAge <= 0 {
		c.WriteBackAge = 20 * time.Millisecond
	}
	if c.Beat <= 0 {
		c.Beat = pol.ProbeInterval
	}
	return c
}

type sessionMetrics struct {
	beats, beatErrs, revocations, leaseLost *obs.Counter
	wbFlushes, wbBlocks, wbErrors           *obs.Counter
}

// Session is one client's coherence context against a CDD lock
// service: it tracks the lock-group grants the owner holds, drives the
// heartbeat that keeps their lease alive, applies invalidation events
// to the local read cache, and hosts the write-back state of the
// CachedDevs created from it.
//
// The safety rule (DESIGN.md §13): a cached block may be served only
// while (a) a local grant covers it and (b) the last successful
// heartbeat is younger than half the server lease TTL. A writer gets
// its exclusive grant only after every shared holder acked the
// revocation or outlived its lease — and an outlived holder has, by
// (b), already stopped serving hits.
type Session struct {
	n     *NodeClient
	owner string
	cfg   SessionConfig
	cache *BlockCache
	met   sessionMetrics

	mu      sync.Mutex
	shared  []Range
	excl    []Range
	lastSeq uint64
	devs    map[uint32]*CachedDev

	lastBeat atomic.Int64 // unix-nano of the last successful heartbeat
	ttl      atomic.Int64 // server lease term (ns); 0 = leases disabled
	ttlKnown atomic.Bool  // set once a Beat has reported the lease term

	stop    chan struct{}
	done    chan struct{}
	stopped atomic.Bool
}

// NewSession opens a coherent session for owner against the node's
// lock service and starts its heartbeat loop. Close flushes, releases,
// and stops it.
func NewSession(n *NodeClient, owner string, cfg SessionConfig) *Session {
	cfg = cfg.withDefaults(n.policy)
	s := &Session{
		n:     n,
		owner: owner,
		cfg:   cfg,
		cache: NewBlockCache(cfg.CacheBytes, cfg.Obs),
		devs:  map[uint32]*CachedDev{},
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if r := cfg.Obs; r != nil {
		s.met = sessionMetrics{
			beats:       r.Counter("sess.beats"),
			beatErrs:    r.Counter("sess.beat_errors"),
			revocations: r.Counter("sess.revocations"),
			leaseLost:   r.Counter("sess.lease_lost"),
			wbFlushes:   r.Counter("sess.wb_flushes"),
			wbBlocks:    r.Counter("sess.wb_blocks"),
			wbErrors:    r.Counter("sess.wb_errors"),
		}
	}
	s.lastBeat.Store(time.Now().UnixNano())
	// Synchronous first beat: learn the server's lease term before any
	// grant is acquired. Until a beat succeeds the lease term is unknown
	// and leaseFresh() refuses to serve cached state, so a client that
	// partitions before ever hearing a TTL never serves unbounded-stale
	// hits. A failure here is tolerated — the loop below keeps trying.
	s.beatOnce()
	go s.beatLoop()
	return s
}

// Owner reports the session's lock-owner identity.
func (s *Session) Owner() string { return s.owner }

// Cache exposes the session's read cache (introspection, tests).
func (s *Session) Cache() *BlockCache { return s.cache }

// Dev wraps the node's i-th disk as a coherently-cached device. One
// CachedDev exists per disk per session; repeated calls return it.
func (s *Session) Dev(i int) *CachedDev {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.devs[uint32(i)]; ok {
		return d
	}
	rd := s.n.Dev(i)
	cd := &CachedDev{
		s:     s,
		d:     rd,
		disk:  uint32(i),
		bs:    rd.BlockSize(),
		dirty: map[int64][]byte{},
	}
	s.devs[uint32(i)] = cd
	return cd
}

// Acquire obtains a lock-group grant covering rs in the given mode,
// retrying until granted or ctx expires, and records it locally so
// covered blocks become cacheable.
func (s *Session) Acquire(ctx context.Context, mode Mode, rs []Range) error {
	if err := s.n.LockMode(ctx, s.owner, mode, rs); err != nil {
		return err
	}
	s.mu.Lock()
	if mode == Exclusive {
		s.excl = append(s.excl, rs...)
	} else {
		s.shared = append(s.shared, rs...)
	}
	s.mu.Unlock()
	return nil
}

// AcquireBlocks is Acquire over one disk's block range.
func (s *Session) AcquireBlocks(ctx context.Context, mode Mode, disk uint32, block, count int64) error {
	return s.Acquire(ctx, mode, []Range{BlockLockRange(disk, block, count)})
}

// Release flushes dirty blocks under rs (the lock-handoff flush that
// keeps write-back coherent), drops the covered cache entries, and
// releases the grant.
func (s *Session) Release(ctx context.Context, rs []Range) error {
	if err := s.flushRanges(ctx, rs); err != nil {
		return err
	}
	s.mu.Lock()
	s.shared = dropExact(s.shared, rs)
	s.excl = dropExact(s.excl, rs)
	s.mu.Unlock()
	s.invalidateRanges(rs)
	return s.n.Unlock(s.owner, rs)
}

// ReleaseBlocks is Release over one disk's block range.
func (s *Session) ReleaseBlocks(ctx context.Context, disk uint32, block, count int64) error {
	return s.Release(ctx, []Range{BlockLockRange(disk, block, count)})
}

// Flush group-commits every dirty block of every device.
func (s *Session) Flush(ctx context.Context) error {
	for _, cd := range s.cachedDevs() {
		if err := cd.FlushWriteBack(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes, releases every grant, stops the heartbeat, and drops
// the cache. The NodeClient stays open (it is shared).
func (s *Session) Close() error {
	var err error
	if !s.stopped.Swap(true) {
		close(s.stop)
		<-s.done
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err = s.Flush(ctx)
		cancel()
		s.mu.Lock()
		held := len(s.shared)+len(s.excl) > 0
		s.shared, s.excl = nil, nil
		s.mu.Unlock()
		if held {
			if uerr := s.n.UnlockAll(s.owner); err == nil {
				err = uerr
			}
		}
		s.cache.InvalidateAll()
	}
	return err
}

// cachedDevs snapshots the device map.
func (s *Session) cachedDevs() []*CachedDev {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*CachedDev, 0, len(s.devs))
	for _, cd := range s.devs {
		out = append(out, cd)
	}
	return out
}

// leaseFresh reports whether cached state may be served: the last
// successful heartbeat must be younger than half the server lease TTL
// (the safety window — strictly inside the server's expiry, so an
// expired-and-auto-released holder has already stopped serving hits).
// Until the first successful beat reports the lease term the answer is
// false — assuming "no lease" before hearing otherwise would let a
// client that partitions immediately after acquiring grants serve hits
// with no staleness bound.
func (s *Session) leaseFresh() bool {
	if !s.ttlKnown.Load() {
		return false
	}
	ttl := s.ttl.Load()
	if ttl == 0 {
		return true // server runs with leases disabled
	}
	return time.Now().UnixNano()-s.lastBeat.Load() < ttl/2
}

// holdsBlocks reports whether a local grant covers the block span —
// any mode for reads (wantWrite=false), exclusive only for writes.
func (s *Session) holdsBlocks(disk uint32, block, count int64, wantWrite bool) bool {
	r := BlockLockRange(disk, block, count)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.excl {
		if g.contains(r) {
			return true
		}
	}
	if wantWrite {
		return false
	}
	for _, g := range s.shared {
		if g.contains(r) {
			return true
		}
	}
	return false
}

// beatLoop is the session's background heartbeat: one coherence beat
// per interval, then aged write-back batches are flushed. The beat runs
// FIRST so lease loss is discovered before any flush — flushing stale
// dirty blocks after a partition would clobber a new owner's writes.
func (s *Session) beatLoop() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.Beat)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.beatOnce()
		s.flushAged()
	}
}

// flushAged group-commits write-back batches older than WriteBackAge.
func (s *Session) flushAged() {
	cut := time.Now().Add(-s.cfg.WriteBackAge)
	for _, cd := range s.cachedDevs() {
		cd.flushIfOlder(cut)
	}
}

// beatOnce performs one heartbeat exchange and applies its outcome.
func (s *Session) beatOnce() {
	s.mu.Lock()
	lastSeq := s.lastSeq
	heldAny := len(s.shared)+len(s.excl) > 0
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Beat*4+s.n.policy.CallTimeout)
	br, err := s.n.Beat(ctx, s.owner, lastSeq)
	cancel()
	if err != nil {
		// No renewal: lastBeat ages, the lease safety window closes, and
		// reads fall back to remote — fail-safe, never fail-stale.
		s.met.beatErrs.Inc()
		return
	}
	s.met.beats.Inc()

	if heldAny && !br.Known {
		// Lease lost (expired while we were partitioned): our grants are
		// gone server-side. Drop everything local; dirty blocks are
		// discarded — their ranges may already have a new owner.
		s.met.leaseLost.Inc()
		s.mu.Lock()
		s.shared, s.excl = nil, nil
		s.mu.Unlock()
		for _, cd := range s.cachedDevs() {
			cd.discardWriteBack()
		}
		s.cache.InvalidateAll()
	}
	if br.Reset {
		// We fell off the event ring: treat every cached block and every
		// shared grant as suspect.
		s.mu.Lock()
		s.shared = nil
		s.mu.Unlock()
		s.cache.InvalidateAll()
	}
	for _, ev := range br.Events {
		if ev.Owner == s.owner {
			continue
		}
		s.applyInvalidation(ev)
	}

	s.mu.Lock()
	if br.Seq > s.lastSeq {
		s.lastSeq = br.Seq
	}
	s.mu.Unlock()
	s.ttl.Store(int64(br.TTL))
	s.ttlKnown.Store(true)
	// Published last: a hit is only served once the events above are
	// fully applied.
	s.lastBeat.Store(time.Now().UnixNano())
}

// applyInvalidation drops cache entries and revoked shared grants
// covered by one event.
func (s *Session) applyInvalidation(ev Invalidation) {
	s.invalidateRanges(ev.Ranges)
	s.mu.Lock()
	kept := s.shared[:0]
	revoked := 0
	for _, g := range s.shared {
		if overlapsAny(ev.Ranges, []Range{g}) {
			revoked++
		} else {
			kept = append(kept, g)
		}
	}
	s.shared = kept
	s.mu.Unlock()
	if revoked > 0 {
		s.met.revocations.Add(int64(revoked))
	}
}

// invalidateRanges maps lock-space ranges back to per-disk block spans
// and drops them from the cache.
func (s *Session) invalidateRanges(rs []Range) {
	for _, r := range rs {
		firstDisk := uint32(r.Start >> lockDiskShift)
		lastDisk := uint32((r.End - 1) >> lockDiskShift)
		if lastDisk-firstDisk > 16 {
			// A range sweeping many disks: cheaper to drop everything.
			s.cache.InvalidateAll()
			return
		}
		for d := firstDisk; d <= lastDisk; d++ {
			lo := uint64(d) << lockDiskShift
			hi := lo + lockBlockMask + 1
			start, end := r.Start, r.End
			if start < lo {
				start = lo
			}
			if end > hi {
				end = hi
			}
			if end > start {
				s.cache.InvalidateBlocks(d, int64(start-lo), int64(end-start))
			}
		}
	}
}

// flushRanges group-commits dirty blocks of any device overlapping rs.
func (s *Session) flushRanges(ctx context.Context, rs []Range) error {
	for _, cd := range s.cachedDevs() {
		devRange := BlockLockRange(cd.disk, 0, cd.d.NumBlocks())
		if overlapsAny(rs, []Range{devRange}) {
			if err := cd.FlushWriteBack(ctx); err != nil {
				return err
			}
		}
	}
	return nil
}
