package cdd

// White-box pin of the retry matrix: which opcodes may be blindly
// re-sent and which errors are worth a retry. The table is the
// contract — a change here must be a deliberate protocol decision, not
// a drive-by edit (a misclassified error either hammers a peer that
// answered correctly or gives up on a recoverable blip; a
// misclassified op double-applies a non-idempotent request).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/transport"
)

func TestRetryableOpMatrix(t *testing.T) {
	cases := []struct {
		name string
		op   uint8
		want bool
	}{
		{"info", OpInfo, true},
		{"read", OpRead, true},
		{"write", OpWrite, true}, // whole-block rewrite is idempotent
		{"flush", OpFlush, true},
		{"health", OpHealth, true},
		{"stats", OpStats, true},
		{"lock-snapshot", OpLockSnapshot, true},
		{"unlock", OpUnlock, true},
		{"unlock-all", OpUnlockAll, true},
		{"fail", OpFail, true},
		{"replace", OpReplace, true},
		{"obs-snapshot", OpObsSnapshot, true},
		{"trace-spans", OpTraceSpans, true},
		{"intent-put", OpIntentPut, true},
		{"intent-get", OpIntentGet, true},
		{"repair-status", OpRepairStatus, true},
		{"repair-ctl", OpRepairCtl, true},
		{"coherence-beat", OpCoherence, true}, // beats are pure state exchange
		// A lost OpLock response leaves the grant recorded server-side; a
		// blind resend would double-record it. Single attempt only.
		{"lock", OpLock, false},
		{"write-bg", OpWriteBG, false}, // notify-only: no response to retry on
		{"lock-replica", OpLockReplica, false},
	}
	for _, c := range cases {
		if got := retryableOp(c.op); got != c.want {
			t.Errorf("retryableOp(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRetryableErrMatrix(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		// The peer answered — retrying re-asks a question that was
		// answered; the answer will not change.
		{"remote-error", &transport.RemoteError{Code: transport.CodeBadRequest, Msg: "x"}, false},
		{"remote-error-wrapped", fmt.Errorf("call: %w", &transport.RemoteError{Code: transport.CodeDiskFailed, Msg: "d"}), false},
		{"resp-size", &transport.RespSizeError{Got: 1, Want: 2}, false},
		// Client-side terminal states.
		{"closed", transport.ErrClosed, false},
		{"frame-too-large", transport.ErrFrameTooLarge, false},
		{"canceled", context.Canceled, false},
		{"canceled-wrapped", fmt.Errorf("dial: %w", context.Canceled), false},
		// Transient transport breakage: retry.
		{"deadline", context.DeadlineExceeded, true}, // per-attempt deadline, caller ctx still live
		{"eof", io.EOF, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"conn-reset", errors.New("read tcp 127.0.0.1: connection reset by peer"), true},
	}
	for _, c := range cases {
		if got := retryableErr(c.err); got != c.want {
			t.Errorf("retryableErr(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestNoteOutcomeCancellation pins the health-marking side of the
// bugfix: a caller cancelling its own request must not mark the remote
// device suspect (which would burn the repair failure budget for a
// healthy node).
func TestNoteOutcomeCancellation(t *testing.T) {
	d := &RemoteDev{healthy: true, n: &NodeClient{}}
	d.noteOutcome(context.Canceled)
	if !d.healthy {
		t.Fatal("context.Canceled marked the device suspect")
	}
	d.noteOutcome(fmt.Errorf("call: %w", context.Canceled))
	if !d.healthy {
		t.Fatal("wrapped context.Canceled marked the device suspect")
	}
	d.noteOutcome(nil)
	if !d.healthy {
		t.Fatal("nil error changed health")
	}
}
