package cdd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Opcodes of the CDD wire protocol.
const (
	// OpInfo returns node metadata: disk count, block size, per-disk
	// capacity.
	OpInfo uint8 = iota + 1
	// OpRead reads count blocks from one disk.
	OpRead
	// OpWrite writes blocks to one disk.
	OpWrite
	// OpWriteBG is OpWrite as a notification: the deferred mirror push.
	OpWriteBG
	// OpFlush drains background work on one disk.
	OpFlush
	// OpHealth reports whether a disk is serving requests.
	OpHealth
	// OpFail injects a disk failure (testing / fault drills).
	OpFail
	// OpReplace swaps in a blank replacement disk.
	OpReplace
	// OpLock atomically try-acquires a range group.
	OpLock
	// OpUnlock releases a range group.
	OpUnlock
	// OpUnlockAll releases everything held by an owner.
	OpUnlockAll
	// OpLockSnapshot returns the replicated lock-group table.
	OpLockSnapshot
	// OpLockReplica carries a table snapshot to a peer (notification).
	OpLockReplica
	// OpStats returns one disk's cumulative operation counters.
	OpStats
	// OpObsSnapshot returns the node's observability registry as JSON:
	// counters, gauges, latency histograms, and the degraded-event log.
	OpObsSnapshot
	// OpTraceSpans returns the node's recent trace spans as JSON, so a
	// client can merge the server-side legs into its own traces
	// (raidxctl trace waterfalls).
	OpTraceSpans
	// OpIntentPut stores a write-intent snapshot under a key. The repair
	// host replicates its dirty map to every node, so a host that
	// crashes recovers the map from any survivor instead of forgetting
	// which regions were stale.
	OpIntentPut
	// OpIntentGet returns the snapshot stored under a key (empty
	// response when the node holds none).
	OpIntentGet
	// OpRepairStatus returns the node's repair-supervisor status as
	// JSON; answered with an error when no supervisor runs here.
	OpRepairStatus
	// OpRepairCtl pauses or resumes the node's repair supervisor
	// (payload: one byte, 0 = pause, 1 = resume).
	OpRepairCtl
	// OpCoherence is the client-cache heartbeat: it renews the owner's
	// lease on the lock service, acks processed invalidations, and
	// carries pending invalidation events back — the piggybacked
	// coherence channel of DESIGN.md §13.
	OpCoherence
	// OpReadEpoch / OpWriteEpoch / OpWriteBGEpoch are OpRead / OpWrite /
	// OpWriteBG with an 8-byte array-epoch generation prefixed to the
	// payload. A node whose recorded generation is newer answers
	// CodeStaleEpoch instead of serving a placement computed from a
	// retired layout — the fence that keeps clients with pre-rebalance
	// maps from corrupting moved blocks.
	OpReadEpoch
	OpWriteEpoch
	OpWriteBGEpoch
	// OpLayout returns the node's layout view as JSON (LayoutInfo): the
	// epoch generation it enforces and, when a rebalance coordinator
	// runs here, the full epoch descriptor plus migration progress —
	// what a stale client fetches to rebuild its placement map.
	OpLayout
	// OpEpochSet installs a new array-epoch generation: an 8-byte
	// payload is a stable broadcast, a 9th phase byte of 1 additionally
	// fences the node against untagged block I/O for the duration of a
	// migration. The node adopts the generation only if higher than its
	// current one and answers with the generation now in force —
	// idempotent, so the rebalance coordinator broadcasts it with
	// retries.
	OpEpochSet
	// OpRebalanceCtl asks the node's rebalance coordinator to start a
	// membership change (JSON rebalanceReq payload). Answered with an
	// error when no coordinator runs here.
	OpRebalanceCtl
)

// repairCtl payload bytes.
const (
	repairCtlPause  = 0
	repairCtlResume = 1
)

// encodeKeyed frames a string key followed by an opaque body — the
// OpIntentPut/OpIntentGet payload.
func encodeKeyed(key string, body []byte) []byte {
	b := make([]byte, 0, 4+len(key)+len(body))
	b = binary.BigEndian.AppendUint32(b, uint32(len(key)))
	b = append(b, key...)
	b = append(b, body...)
	return b
}

func decodeKeyed(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("cdd: short keyed message: %w", errBadRequest)
	}
	klen := binary.BigEndian.Uint32(b[0:4])
	b = b[4:]
	if uint32(len(b)) < klen {
		return "", nil, fmt.Errorf("cdd: truncated key: %w", errBadRequest)
	}
	return string(b[:klen]), b[klen:], nil
}

// errBadRequest marks protocol decode failures so the server can answer
// with transport.CodeBadRequest instead of a generic error.
var errBadRequest = errors.New("bad request")

// statsResp is the OpStats response.
type statsResp struct {
	Reads, Writes, BytesRead, BytesWritten int64
	Healthy                                bool
}

func encodeStats(r statsResp) []byte {
	b := make([]byte, 33)
	binary.BigEndian.PutUint64(b[0:8], uint64(r.Reads))
	binary.BigEndian.PutUint64(b[8:16], uint64(r.Writes))
	binary.BigEndian.PutUint64(b[16:24], uint64(r.BytesRead))
	binary.BigEndian.PutUint64(b[24:32], uint64(r.BytesWritten))
	if r.Healthy {
		b[32] = 1
	}
	return b
}

func decodeStats(b []byte) (statsResp, error) {
	if len(b) != 33 {
		return statsResp{}, fmt.Errorf("cdd: bad stats response length %d", len(b))
	}
	return statsResp{
		Reads:        int64(binary.BigEndian.Uint64(b[0:8])),
		Writes:       int64(binary.BigEndian.Uint64(b[8:16])),
		BytesRead:    int64(binary.BigEndian.Uint64(b[16:24])),
		BytesWritten: int64(binary.BigEndian.Uint64(b[24:32])),
		Healthy:      b[32] == 1,
	}, nil
}

// infoResp is the OpInfo response.
type infoResp struct {
	Disks     uint32
	BlockSize uint32
	Blocks    int64
}

func encodeInfo(i infoResp) []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint32(b[0:4], i.Disks)
	binary.BigEndian.PutUint32(b[4:8], i.BlockSize)
	binary.BigEndian.PutUint64(b[8:16], uint64(i.Blocks))
	return b
}

func decodeInfo(b []byte) (infoResp, error) {
	if len(b) != 16 {
		return infoResp{}, fmt.Errorf("cdd: bad info response length %d", len(b))
	}
	return infoResp{
		Disks:     binary.BigEndian.Uint32(b[0:4]),
		BlockSize: binary.BigEndian.Uint32(b[4:8]),
		Blocks:    int64(binary.BigEndian.Uint64(b[8:16])),
	}, nil
}

// ioHeader prefixes OpRead/OpWrite/OpWriteBG/OpFlush payloads.
type ioHeader struct {
	Disk  uint32
	Block int64
	Count uint32 // blocks to read; implied by payload length on writes
}

const ioHeaderLen = 16

// putIOHeader encodes h into a caller-owned 16-byte array — the
// allocation-free alternative to encodeIOHeader for the hot path, where
// the header travels as its own gather segment instead of being copied
// in front of the payload.
func putIOHeader(b *[ioHeaderLen]byte, h ioHeader) {
	binary.BigEndian.PutUint32(b[0:4], h.Disk)
	binary.BigEndian.PutUint64(b[4:12], uint64(h.Block))
	binary.BigEndian.PutUint32(b[12:16], h.Count)
}

func encodeIOHeader(h ioHeader, payload []byte) []byte {
	b := make([]byte, ioHeaderLen+len(payload))
	binary.BigEndian.PutUint32(b[0:4], h.Disk)
	binary.BigEndian.PutUint64(b[4:12], uint64(h.Block))
	binary.BigEndian.PutUint32(b[12:16], h.Count)
	copy(b[ioHeaderLen:], payload)
	return b
}

func decodeIOHeader(b []byte) (ioHeader, []byte, error) {
	if len(b) < ioHeaderLen {
		return ioHeader{}, nil, fmt.Errorf("cdd: short I/O header (%d bytes): %w", len(b), errBadRequest)
	}
	return ioHeader{
		Disk:  binary.BigEndian.Uint32(b[0:4]),
		Block: int64(binary.BigEndian.Uint64(b[4:12])),
		Count: binary.BigEndian.Uint32(b[12:16]),
	}, b[ioHeaderLen:], nil
}

// lockMsg carries an owner, a grant mode, and a range group.
type lockMsg struct {
	Owner  string
	Mode   Mode
	Ranges []Range
}

func encodeLockMsg(m lockMsg) []byte {
	b := make([]byte, 0, 4+len(m.Owner)+1+4+16*len(m.Ranges))
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Owner)))
	b = append(b, m.Owner...)
	b = append(b, byte(m.Mode))
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Ranges)))
	for _, r := range m.Ranges {
		b = binary.BigEndian.AppendUint64(b, r.Start)
		b = binary.BigEndian.AppendUint64(b, r.End)
	}
	return b
}

func decodeLockMsg(b []byte) (lockMsg, error) {
	var m lockMsg
	if len(b) < 4 {
		return m, fmt.Errorf("cdd: short lock message: %w", errBadRequest)
	}
	olen := binary.BigEndian.Uint32(b[0:4])
	b = b[4:]
	if uint32(len(b)) < olen+5 {
		return m, fmt.Errorf("cdd: truncated lock owner: %w", errBadRequest)
	}
	m.Owner = string(b[:olen])
	b = b[olen:]
	if b[0] > byte(Exclusive) {
		return m, fmt.Errorf("cdd: unknown lock mode %d: %w", b[0], errBadRequest)
	}
	m.Mode = Mode(b[0])
	b = b[1:]
	n := binary.BigEndian.Uint32(b[0:4])
	b = b[4:]
	if uint32(len(b)) != 16*n {
		return m, fmt.Errorf("cdd: truncated lock ranges: %w", errBadRequest)
	}
	m.Ranges = make([]Range, n)
	for i := range m.Ranges {
		m.Ranges[i].Start = binary.BigEndian.Uint64(b[0:8])
		m.Ranges[i].End = binary.BigEndian.Uint64(b[8:16])
		b = b[16:]
	}
	return m, nil
}

// beatMsg is the OpCoherence request: the owner's identity plus its
// invalidation ack cursor (the newest event sequence it has processed).
type beatMsg struct {
	Owner   string
	LastSeq uint64
}

func encodeBeat(m beatMsg) []byte {
	b := make([]byte, 0, 4+len(m.Owner)+8)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Owner)))
	b = append(b, m.Owner...)
	b = binary.BigEndian.AppendUint64(b, m.LastSeq)
	return b
}

func decodeBeat(b []byte) (beatMsg, error) {
	var m beatMsg
	if len(b) < 4 {
		return m, fmt.Errorf("cdd: short beat message: %w", errBadRequest)
	}
	olen := binary.BigEndian.Uint32(b[0:4])
	b = b[4:]
	if uint32(len(b)) != olen+8 {
		return m, fmt.Errorf("cdd: truncated beat message: %w", errBadRequest)
	}
	m.Owner = string(b[:olen])
	m.LastSeq = binary.BigEndian.Uint64(b[olen:])
	return m, nil
}

// OpCoherence response flag bits.
const (
	beatFlagKnown = 1 << 0
	beatFlagReset = 1 << 1
)

func encodeBeatResult(br BeatResult) []byte {
	b := make([]byte, 0, 1+4+8+4)
	var flags byte
	if br.Known {
		flags |= beatFlagKnown
	}
	if br.Reset {
		flags |= beatFlagReset
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint32(b, uint32(br.TTL/time.Millisecond))
	b = binary.BigEndian.AppendUint64(b, br.Seq)
	b = binary.BigEndian.AppendUint32(b, uint32(len(br.Events)))
	for _, ev := range br.Events {
		b = binary.BigEndian.AppendUint64(b, ev.Seq)
		b = binary.BigEndian.AppendUint32(b, uint32(len(ev.Owner)))
		b = append(b, ev.Owner...)
		b = binary.BigEndian.AppendUint32(b, uint32(len(ev.Ranges)))
		for _, r := range ev.Ranges {
			b = binary.BigEndian.AppendUint64(b, r.Start)
			b = binary.BigEndian.AppendUint64(b, r.End)
		}
	}
	return b
}

func decodeBeatResult(b []byte) (BeatResult, error) {
	var br BeatResult
	if len(b) < 17 {
		return br, fmt.Errorf("cdd: short beat response: %w", errBadRequest)
	}
	br.Known = b[0]&beatFlagKnown != 0
	br.Reset = b[0]&beatFlagReset != 0
	br.TTL = time.Duration(binary.BigEndian.Uint32(b[1:5])) * time.Millisecond
	br.Seq = binary.BigEndian.Uint64(b[5:13])
	n := binary.BigEndian.Uint32(b[13:17])
	b = b[17:]
	for i := uint32(0); i < n; i++ {
		if len(b) < 12 {
			return br, fmt.Errorf("cdd: truncated beat events: %w", errBadRequest)
		}
		var ev Invalidation
		ev.Seq = binary.BigEndian.Uint64(b[0:8])
		olen := binary.BigEndian.Uint32(b[8:12])
		b = b[12:]
		if uint32(len(b)) < olen+4 {
			return br, fmt.Errorf("cdd: truncated beat event owner: %w", errBadRequest)
		}
		ev.Owner = string(b[:olen])
		b = b[olen:]
		rn := binary.BigEndian.Uint32(b[0:4])
		b = b[4:]
		if uint32(len(b)) < 16*rn {
			return br, fmt.Errorf("cdd: truncated beat event ranges: %w", errBadRequest)
		}
		ev.Ranges = make([]Range, rn)
		for j := range ev.Ranges {
			ev.Ranges[j].Start = binary.BigEndian.Uint64(b[0:8])
			ev.Ranges[j].End = binary.BigEndian.Uint64(b[8:16])
			b = b[16:]
		}
		br.Events = append(br.Events, ev)
	}
	if len(b) != 0 {
		return br, fmt.Errorf("cdd: trailing beat response bytes: %w", errBadRequest)
	}
	return br, nil
}

// encodeSnapshot serializes a table version plus records.
func encodeSnapshot(version uint64, recs []Record) []byte {
	b := binary.BigEndian.AppendUint64(nil, version)
	b = binary.BigEndian.AppendUint32(b, uint32(len(recs)))
	for _, rec := range recs {
		sub := encodeLockMsg(lockMsg{Owner: rec.Owner, Mode: rec.Mode, Ranges: rec.Ranges})
		b = binary.BigEndian.AppendUint32(b, uint32(len(sub)))
		b = append(b, sub...)
	}
	return b
}

func decodeSnapshot(b []byte) (version uint64, recs []Record, err error) {
	if len(b) < 12 {
		return 0, nil, fmt.Errorf("cdd: short snapshot: %w", errBadRequest)
	}
	version = binary.BigEndian.Uint64(b[0:8])
	n := binary.BigEndian.Uint32(b[8:12])
	b = b[12:]
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return 0, nil, fmt.Errorf("cdd: truncated snapshot: %w", errBadRequest)
		}
		sz := binary.BigEndian.Uint32(b[0:4])
		b = b[4:]
		if uint32(len(b)) < sz {
			return 0, nil, fmt.Errorf("cdd: truncated snapshot record: %w", errBadRequest)
		}
		m, err := decodeLockMsg(b[:sz])
		if err != nil {
			return 0, nil, err
		}
		recs = append(recs, Record{Owner: m.Owner, Mode: m.Mode, Ranges: m.Ranges})
		b = b[sz:]
	}
	return version, recs, nil
}
